// Instance-file generator: writes the library's instance families in
// the text format that file_solver reads.
//
//   $ ./examples/generate_instances <family> [out.txt] [seed]
//     family ∈ { random | contended | unit | overload | lemma51 }
//
// Without arguments, prints one instance of each family to stdout.
#include <fstream>
#include <iostream>
#include <string>

#include "instances/generators.hpp"
#include "io/serialize.hpp"
#include "util/rng.hpp"

namespace {

nat::at::Instance make(const std::string& family, std::uint64_t seed) {
  using namespace nat;
  util::Rng rng(seed);
  if (family == "random") {
    at::gen::RandomLaminarParams params;
    params.g = 4;
    params.max_depth = 3;
    params.max_children = 3;
    params.max_jobs_per_node = 4;
    return at::gen::random_laminar(params, rng);
  }
  if (family == "contended") {
    at::gen::ContendedParams params;
    params.g = 4;
    return at::gen::random_contended(params, rng);
  }
  if (family == "unit") {
    at::gen::RandomLaminarParams params;
    params.g = 3;
    params.max_depth = 3;
    return at::gen::random_laminar_unit(params, rng);
  }
  if (family == "overload") return at::gen::unit_overload(4 + seed % 8);
  if (family == "lemma51") return at::gen::lemma51_gap(3 + seed % 8);
  throw std::runtime_error("unknown family: " + family);
}

}  // namespace

int main(int argc, char** argv) {
  const char* families[] = {"random", "contended", "unit", "overload",
                            "lemma51"};
  try {
    if (argc < 2) {
      for (const char* family : families) {
        std::cout << "# family: " << family << '\n';
        nat::io::write_instance(std::cout, make(family, 1));
        std::cout << '\n';
      }
      return 0;
    }
    const std::string family = argv[1];
    const std::uint64_t seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
    const nat::at::Instance inst = make(family, seed);
    if (argc > 2) {
      std::ofstream out(argv[2]);
      if (!out) {
        std::cerr << "cannot write " << argv[2] << '\n';
        return 1;
      }
      nat::io::write_instance(out, inst);
      std::cout << "wrote " << nat::at::summary(inst) << " to " << argv[2]
                << '\n';
    } else {
      nat::io::write_instance(std::cout, inst);
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }
  return 0;
}
