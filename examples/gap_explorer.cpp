// Gap explorer: interactively compare the three LP relaxations against
// the exact optimum on the paper's gap families.
//
//   $ ./examples/gap_explorer [max_g]
//
// Prints, per g: the natural LP, the Călinescu–Wang LP, our
// strengthened tree LP, and OPT — making the integrality-gap landscape
// of Sections 1 and 5 tangible.
#include <cstdlib>
#include <iostream>

#include "activetime/solver.hpp"
#include "activetime/time_indexed_lp.hpp"
#include "baselines/exact.hpp"
#include "instances/generators.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  using namespace nat;
  const std::int64_t max_g =
      argc > 1 ? std::strtoll(argv[1], nullptr, 10) : 8;

  std::cout << "Family A — unit overload (g+1 unit jobs, window [0,2)):\n"
            << "the natural LP's gap-2 example.\n\n";
  io::Table a({"g", "natural LP", "strong LP", "OPT", "gap (nat)"});
  for (std::int64_t g = 1; g <= max_g; ++g) {
    const at::Instance inst = at::gen::unit_overload(g);
    const double nat_lp = at::natural_lp_value(inst);
    const double strong = at::strong_lp_value(inst);
    const auto opt = at::baselines::exact_opt_laminar(inst);
    a.add_row({io::Table::num(g), io::Table::num(nat_lp),
               io::Table::num(strong), io::Table::num(opt->optimum),
               io::Table::ratio(static_cast<double>(opt->optimum), nat_lp)});
  }
  a.print_markdown(std::cout);

  std::cout << "\nFamily B — Lemma 5.1 (long job + g groups of g unit "
               "jobs):\nboth ceiling LPs show a gap approaching 3/2.\n\n";
  io::Table b({"g", "CW LP", "strong LP", "OPT", "gap (CW)"});
  for (std::int64_t g = 2; g <= max_g; ++g) {
    const at::Instance inst = at::gen::lemma51_gap(g);
    const double cw = at::cw_lp_value(
        inst, at::CeilingIntervals::kEventAligned);
    const double strong = at::strong_lp_value(inst);
    const std::int64_t opt = g + (g + 1) / 2;  // g + ceil(g/2), Lemma 5.1
    b.add_row({io::Table::num(g), io::Table::num(cw), io::Table::num(strong),
               io::Table::num(opt),
               io::Table::ratio(static_cast<double>(opt), cw)});
  }
  b.print_markdown(std::cout);
  std::cout << "\n(gap columns rise toward 2 and 3/2 respectively as g "
               "grows.)\n";
  return 0;
}
