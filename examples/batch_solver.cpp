// Fault-isolated batch solver over the service layer.
//
// Reads one instance per line (JSONL) or a list of instance files, fans
// the cells across a thread pool, and streams one JSON record per cell
// to stdout in completion order. A malformed, infeasible, or
// deadline-blown cell becomes a structured error record; the process
// exits 0 as long as the *batch machinery* worked, so pipelines can
// grep the records instead of parsing a crash.
//
//   $ ./examples/batch_solver batch.jsonl
//   $ ./examples/batch_solver --files a.txt b.txt c.txt
//   $ generate | ./examples/batch_solver - --solver exact --timeout-ms 500
//
// Flags:
//   --solver auto|nested|general|greedy|exact   (default auto)
//   --timeout-ms N    per-cell deadline; 0 = none (default)
//   --threads N       pool width; 0 = hardware concurrency (default)
//   --keep-going / --no-keep-going      (default --keep-going)
//   --files f1 f2 ... remaining args are native-format instance files
//   --robust          robust interval-time mode (docs/ROBUST.md): cells
//                     route through solve_robust and records carry
//                     robust_lo / robust_hi; requires --solver auto
//   --summary         print a batch summary line to stderr at the end
//   --sessions        stateful mode: lines are session ops
//                     (open/delta/close, docs/INCREMENTAL.md) routed
//                     through persistent incremental SolverSessions
//                     instead of independent cells
//
// Record schema: docs/SERVICE.md (cells), docs/INCREMENTAL.md (sessions).
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "service/batch.hpp"
#include "service/jsonl.hpp"
#include "service/sessions.hpp"

namespace {

void usage() {
  std::cerr << "usage: batch_solver [batch.jsonl | -] [--files f1 f2 ...]\n"
            << "         [--solver auto|nested|general|greedy|exact] [--timeout-ms N]\n"
            << "         [--threads N] [--no-keep-going] [--robust]\n"
            << "         [--summary] [--sessions]\n";
}

/// Stateful mode: every line is one session op (open/delta/close),
/// processed strictly in order through a SessionManager. One record per
/// line, same fault-boundary contract as the batch cells.
int run_sessions(std::istream& in, bool summary) {
  nat::service::SessionManager manager;
  std::string line;
  int index = 0;
  int solved = 0;
  int errors = 0;
  while (nat::service::read_jsonl_record(in, &line)) {
    const nat::service::SessionOpResult r =
        manager.process_line(line, index++);
    (r.status == nat::service::CellStatus::kSolved ? solved : errors) += 1;
    nat::service::write_jsonl_record(std::cout,
                                     nat::service::session_op_to_json(r));
  }
  if (summary) {
    std::cerr << "sessions: " << index << " ops, " << solved << " ok, "
              << errors << " errors, " << manager.open_sessions()
              << " left open\n";
  }
  return 0;
}

bool read_stream(std::istream& in, std::vector<nat::service::BatchItem>* out) {
  std::string line;
  while (nat::service::read_jsonl_record(in, &line)) {
    nat::service::BatchItem item;
    item.text = line;
    item.format = nat::service::BatchItem::Format::kJson;
    out->push_back(std::move(item));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nat;

  service::BatchOptions options;
  std::vector<service::BatchItem> items;
  std::string jsonl_path;
  bool summary = false;
  bool sessions = false;
  bool reading_files = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--solver" && i + 1 < argc) {
      options.solver = argv[++i];
      reading_files = false;
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      options.timeout_ms = std::strtoll(argv[++i], nullptr, 10);
      reading_files = false;
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      reading_files = false;
    } else if (arg == "--keep-going") {
      options.keep_going = true;
      reading_files = false;
    } else if (arg == "--no-keep-going") {
      options.keep_going = false;
      reading_files = false;
    } else if (arg == "--robust") {
      options.robust = true;
      reading_files = false;
    } else if (arg == "--summary") {
      summary = true;
      reading_files = false;
    } else if (arg == "--sessions") {
      sessions = true;
      reading_files = false;
    } else if (arg == "--files") {
      reading_files = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (reading_files) {
      // Each file is one cell in the native text format. A missing
      // file still becomes a cell: the unreadable payload fails inside
      // the cell's fault boundary as input:parse, keeping "one input =
      // one record" true for driver scripts.
      service::BatchItem item;
      item.id = arg;
      item.format = service::BatchItem::Format::kNative;
      std::ifstream in(arg);
      if (in.good()) {
        std::ostringstream buffer;
        buffer << in.rdbuf();
        item.text = buffer.str();
      }
      items.push_back(std::move(item));
    } else if (jsonl_path.empty()) {
      jsonl_path = arg;
    } else {
      std::cerr << "batch_solver: unexpected argument \"" << arg << "\"\n";
      usage();
      return 2;
    }
  }

  if (sessions) {
    if (!items.empty()) {
      std::cerr << "batch_solver: --sessions reads a JSONL op stream, not "
                   "--files\n";
      return 2;
    }
    if (jsonl_path.empty() || jsonl_path == "-") {
      return run_sessions(std::cin, summary);
    }
    std::ifstream in(jsonl_path);
    if (!in.good()) {
      std::cerr << "batch_solver: cannot open " << jsonl_path << "\n";
      return 2;
    }
    return run_sessions(in, summary);
  }

  if (!jsonl_path.empty()) {
    if (jsonl_path == "-") {
      read_stream(std::cin, &items);
    } else {
      std::ifstream in(jsonl_path);
      if (!in.good()) {
        std::cerr << "batch_solver: cannot open " << jsonl_path << "\n";
        return 2;
      }
      read_stream(in, &items);
    }
  }
  if (items.empty()) {
    std::cerr << "batch_solver: no cells to solve\n";
    usage();
    return 2;
  }

  const service::BatchReport report = service::solve_batch(
      items, options, [](const service::CellResult& cell) {
        service::write_jsonl_record(std::cout, service::cell_to_json(cell));
      });

  if (summary) {
    std::cerr << "batch: " << report.cells.size() << " cells, "
              << report.solved << " solved, " << report.errors << " errors, "
              << report.timeouts << " timeouts, " << report.skipped
              << " skipped\n";
  }
  return 0;
}
