// Datacenter batch window: the energy-minimization story from the
// paper's introduction, on a synthetic but realistically shaped
// workload.
//
// A rack can co-run g batch jobs per 15-minute slot, and burns the same
// power whether it runs 1 job or g. Jobs arrive in nested maintenance
// windows: the nightly window contains per-team sub-windows, which
// contain per-service deadlines — laminar by construction of the
// maintenance calendar. Active slots = slots the rack must be powered.
//
//   $ ./examples/datacenter_batch [seed]
#include <cstdlib>
#include <iostream>

#include "activetime/solver.hpp"
#include "baselines/greedy.hpp"
#include "instances/generators.hpp"
#include "io/table.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace nat;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  // Nightly window split into team sub-windows with service deadlines.
  at::gen::RandomLaminarParams params;
  params.g = 6;                  // rack co-runs 6 batch jobs per slot
  params.max_depth = 3;          // night > team > service nesting
  params.max_children = 4;
  params.min_jobs_per_node = 2;
  params.max_jobs_per_node = 6;
  params.max_processing = 5;     // up to 5 slots (75 min) per job
  params.child_probability = 0.9;
  params.gap_length = 3;
  params.fill = 0.85;            // nights are busy
  // Draw until the calendar is a busy night (the generator's recursion
  // can come up shallow for unlucky seeds).
  at::Instance night;
  for (std::uint64_t attempt = 0;; ++attempt) {
    util::Rng rng(seed + 1000 * attempt);
    night = at::gen::random_laminar(params, rng);
    if (night.num_jobs() >= 25) break;
  }

  std::cout << "Nightly batch workload: " << at::summary(night) << "\n\n";

  const at::Time horizon = night.horizon().length();
  at::NestedSolveResult lp_round = at::solve_nested(night);
  auto greedy = at::baselines::greedy_minimal_feasible(
      night, at::baselines::DeactivationOrder::kRightToLeft);

  io::Table table({"policy", "powered slots", "% of horizon"});
  auto pct = [&](std::int64_t slots) {
    return io::Table::num(100.0 * static_cast<double>(slots) /
                              static_cast<double>(horizon),
                          1) +
           "%";
  };
  table.add_row({"always-on", io::Table::num(horizon), pct(horizon)});
  table.add_row({"greedy deactivation (2018 baseline)",
                 io::Table::num(greedy.active_slots),
                 pct(greedy.active_slots)});
  table.add_row({"nested LP rounding (this paper)",
                 io::Table::num(lp_round.active_slots),
                 pct(lp_round.active_slots)});
  table.add_row({"LP lower bound", io::Table::num(lp_round.lp_value, 2),
                 pct(static_cast<std::int64_t>(lp_round.lp_value + 0.999))});
  table.print_markdown(std::cout);

  std::cout << "\nEvery policy meets every deadline; the difference is "
               "pure energy.\n";
  return 0;
}
