// Paper walkthrough: replay the full Section 3 pipeline on one
// instance, printing every intermediate object — the executable
// version of the paper's Figure 1.
//
//   $ ./examples/paper_walkthrough [--dot]
//
// With --dot, also emits the annotated window tree as Graphviz (paste
// into `dot -Tpng` to regenerate a Figure-1-style picture).
#include <iostream>
#include <numeric>
#include <string>

#include "activetime/feasibility.hpp"
#include "instances/generators.hpp"
#include "activetime/lp_transform.hpp"
#include "activetime/rounding.hpp"
#include "activetime/solver.hpp"
#include "activetime/triples.hpp"
#include "io/dot.hpp"
#include "io/serialize.hpp"
#include "lp/dense_simplex.hpp"

int main(int argc, char** argv) {
  using namespace nat;
  const bool dot = argc > 1 && std::string(argv[1]) == "--dot";

  // A Lemma 5.1-flavoured instance: fractional LP, type-C nodes.
  const std::int64_t g = 4;
  at::Instance inst = at::gen::lemma51_gap(g);
  std::cout << "Instance: " << at::summary(inst) << "  (Lemma 5.1 family, g="
            << g << ")\n\n";

  // Step 1 — window forest + canonicalization (Definition 2.1).
  at::LaminarForest forest = at::LaminarForest::build(inst);
  std::cout << "Step 1: window forest has " << forest.num_nodes()
            << " nodes";
  forest.canonicalize();
  std::cout << "; canonical (binary, rigid leaves) after adding "
            << "virtual/rigid nodes: " << forest.num_nodes() << " nodes\n";

  // Step 2 — strengthened LP (1).
  at::StrongLp lp = at::build_strong_lp(forest);
  lp::Solution sol = lp::solve(lp.model);
  std::cout << "Step 2: LP (1) with " << lp.model.num_variables()
            << " variables / " << lp.model.num_rows() << " rows"
            << "; ceiling rows at " << lp.nodes_opt_ge_2.size()
            << " OPT>=2 nodes and " << lp.nodes_opt_ge_3.size()
            << " OPT>=3 nodes; optimum = " << sol.objective << '\n';

  // Step 3 — Lemma 3.1 push-down transform.
  at::FractionalSolution frac = at::unpack(lp, sol);
  at::push_down_transform(forest, lp, frac);
  const auto topmost = at::topmost_positive(forest, frac.x);
  std::cout << "Step 3: transform done; topmost set I has "
            << topmost.size() << " nodes; Claim 1 check: "
            << (at::check_claim1(forest, frac.x, topmost, 1e-4).empty()
                    ? "holds"
                    : "VIOLATED")
            << '\n';

  // Step 4 — Algorithm 1 rounding (Lemma 3.3 budget).
  const at::RoundingResult rounded =
      at::round_solution(forest, frac.x, topmost);
  const double frac_total =
      std::accumulate(frac.x.begin(), frac.x.end(), 0.0);
  std::cout << "Step 4: rounded " << frac_total << " fractional slots to "
            << rounded.total << " integral ones (budget 9/5*x = "
            << 1.8 * frac_total << ")\n";

  // Step 4b — the analysis artifact: Algorithm 2 triples.
  const at::TripleAnalysis triples =
      at::build_triples(forest, frac.x, rounded.x_tilde, topmost);
  std::cout << "         node types: B=" << triples.num_b
            << " C1=" << triples.num_c1 << " C2=" << triples.num_c2
            << "; Algorithm 2 built " << triples.triples.size()
            << " triples (ran out: "
            << (triples.ran_out_of_c2 ? "YES (!)" : "no") << ")\n";

  // Step 5 — flow-certified schedule extraction.
  auto schedule = at::schedule_with_counts(forest, rounded.x_tilde);
  std::cout << "Step 5: extraction "
            << (schedule.has_value() ? "succeeded" : "FAILED")
            << "; active slots = " << schedule->active_slots()
            << "  (LP bound " << sol.objective << ", 9/5 certificate "
            << 1.8 * sol.objective << ")\n\n";
  at::validate_schedule(inst, *schedule);
  io::write_gantt(std::cout, inst, *schedule);

  if (dot) {
    std::cout << "\n--- annotated tree (Graphviz) ---\n";
    io::DotOptions options;
    options.x_fractional = frac.x;
    options.x_rounded = rounded.x_tilde;
    io::write_dot(std::cout, forest, options);
  }
  return 0;
}
