// Command-line solver for instances in the text format of
// io/serialize.hpp. Reads stdin (or a file), writes the schedule.
//
//   $ ./examples/file_solver < instance.txt
//   $ ./examples/file_solver instance.txt --greedy
//   $ ./examples/file_solver instance.txt --robust
//   $ ./examples/file_solver instance.txt --report run.json
//
// --robust runs the interval-time pipeline (docs/ROBUST.md): the solve
// additionally certifies the whole [p_lo, p_hi] uncertainty box and
// prints the sandwich LP(p_lo) <= ALG <= robust_hi.
//
// --report <file> dumps the run as a JSON observability report
// (schema in docs/OBSERVABILITY.md): instance stats, per-stage wall-ns
// trace spans, every pipeline counter (simplex pivots, Dinic
// augmentations, push-down moves, rounding decisions, ...), and the
// final cost against the LP lower bound.
#include <fstream>
#include <iostream>
#include <string>

#include "activetime/robust.hpp"
#include "activetime/solver.hpp"
#include "baselines/greedy.hpp"
#include "io/serialize.hpp"
#include "obs/counters.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace {

nat::obs::RunSummary base_summary(const nat::at::Instance& instance) {
  nat::obs::RunSummary s;
  s.jobs = instance.num_jobs();
  s.g = instance.g;
  const nat::at::Interval h = instance.horizon();
  s.horizon_lo = h.lo;
  s.horizon_hi = h.hi;
  s.volume = instance.total_volume();
  s.volume_lower_bound = instance.volume_lower_bound();
  s.laminar = instance.is_laminar();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nat;
  std::string path;
  std::string report_path;
  bool use_greedy = false;
  bool use_robust = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--greedy") {
      use_greedy = true;
    } else if (arg == "--robust") {
      use_robust = true;
    } else if (arg == "--report") {
      if (a + 1 >= argc) {
        std::cerr << "--report needs a file argument\n";
        return 1;
      }
      report_path = argv[++a];
    } else {
      path = arg;
    }
  }

  at::Instance instance;
  try {
    if (path.empty()) {
      instance = io::read_instance(std::cin);
    } else {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "cannot open " << path << '\n';
        return 1;
      }
      instance = io::read_instance(in);
    }
  } catch (const std::exception& e) {
    std::cerr << "bad instance: " << e.what() << '\n';
    return 1;
  }

  // Scope counters and spans to this run so the report covers exactly
  // the solve below.
  obs::reset_all();
  obs::clear_spans();

  std::cout << at::summary(instance) << '\n';
  obs::RunSummary summary = base_summary(instance);
  try {
    if (use_greedy) {
      auto r = at::baselines::greedy_minimal_feasible(instance);
      summary.solver = "greedy";
      summary.active_slots = r.active_slots;
      io::write_schedule(std::cout, instance, r.schedule);
    } else if (use_robust) {
      // Robust interval-time pipeline: nominal solve plus the
      // worst-case feasibility check and sandwich bounds for the whole
      // [p_lo, p_hi] box (docs/ROBUST.md).
      at::RobustSolveResult r = at::solve_robust(instance);
      summary.solver = at::to_string(r.nominal.backend);
      summary.active_slots = r.nominal.active_slots;
      summary.lp_objective = r.nominal.lp_value;
      summary.lp_iterations = r.nominal.lp_iterations;
      summary.repairs = r.nominal.repairs;
      summary.robust_lo = r.robust_lo;
      summary.robust_hi = r.robust_hi;
      if (r.degenerate) {
        std::cout << "point instance (no uncertainty intervals); robust "
                     "bounds collapse to the nominal solve\n";
      }
      std::cout << "robust sandwich: " << r.robust_lo
                << " <= ALG = " << r.nominal.active_slots
                << " <= " << r.robust_hi << '\n';
      io::write_schedule(std::cout, instance, r.nominal.schedule);
    } else {
      // Laminarity dispatch: the 9/5 nested pipeline when windows
      // nest, the LP-rounding 2-approx otherwise (docs/GENERAL.md).
      at::ActiveTimeResult r = at::solve_active_time(instance);
      summary.solver = at::to_string(r.backend);
      summary.active_slots = r.active_slots;
      summary.lp_objective = r.lp_value;
      summary.lp_iterations = r.lp_iterations;
      summary.repairs = r.repairs;
      if (r.backend != at::Backend::kNested) {
        std::cout << "windows are not nested; using the LP-rounding "
                     "2-approximation\n";
      }
      if (r.backend != at::Backend::kGreedy) {
        std::cout << "LP lower bound: " << r.lp_value << '\n';
      }
      io::write_schedule(std::cout, instance, r.schedule);
    }
  } catch (const std::exception& e) {
    std::cerr << "solve failed: " << e.what() << '\n';
    return 1;
  }

  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out) {
      std::cerr << "cannot write report to " << report_path << '\n';
      return 1;
    }
    obs::write_report(out, summary);
    std::cout << "report written to " << report_path << '\n';
  }
  return 0;
}
