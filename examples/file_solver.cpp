// Command-line solver for instances in the text format of
// io/serialize.hpp. Reads stdin (or a file), writes the schedule.
//
//   $ ./examples/file_solver < instance.txt
//   $ ./examples/file_solver instance.txt --greedy
#include <fstream>
#include <iostream>
#include <string>

#include "activetime/solver.hpp"
#include "baselines/greedy.hpp"
#include "io/serialize.hpp"

int main(int argc, char** argv) {
  using namespace nat;
  std::string path;
  bool use_greedy = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--greedy") {
      use_greedy = true;
    } else {
      path = arg;
    }
  }

  at::Instance instance;
  try {
    if (path.empty()) {
      instance = io::read_instance(std::cin);
    } else {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "cannot open " << path << '\n';
        return 1;
      }
      instance = io::read_instance(in);
    }
  } catch (const std::exception& e) {
    std::cerr << "bad instance: " << e.what() << '\n';
    return 1;
  }

  std::cout << at::summary(instance) << '\n';
  try {
    if (use_greedy || !instance.is_laminar()) {
      if (!instance.is_laminar()) {
        std::cout << "windows are not nested; using the greedy "
                     "3-approximation (works on any instance)\n";
      }
      auto r = at::baselines::greedy_minimal_feasible(instance);
      io::write_schedule(std::cout, instance, r.schedule);
    } else {
      at::NestedSolveResult r = at::solve_nested(instance);
      std::cout << "LP lower bound: " << r.lp_value << '\n';
      io::write_schedule(std::cout, instance, r.schedule);
    }
  } catch (const std::exception& e) {
    std::cerr << "solve failed: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
