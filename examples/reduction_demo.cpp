// NP-completeness reduction demo (Section 6): walk a Set Cover
// instance through Prefix Sum Cover into nested active-time and verify
// the optimum survives both hops.
//
//   $ ./examples/reduction_demo
#include <iostream>

#include "baselines/exact.hpp"
#include "io/serialize.hpp"
#include "reductions/transforms.hpp"

int main() {
  using namespace nat;

  // A classic set-cover instance: universe {0..3}, four sets.
  red::SetCoverInstance sc;
  sc.universe = 4;
  sc.sets = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  std::cout << "Set Cover: universe of " << sc.universe << ", "
            << sc.sets.size() << " sets; minimum cover = "
            << *red::setcover_minimum(sc) << "\n\n";

  // Hop 1: Set Cover -> Prefix Sum Cover.
  const int k = 2;
  red::PscInstance psc = red::setcover_to_psc(sc, k);
  std::cout << "Hop 1 (difference encoding, k=" << k << "): d=" << psc.dim()
            << ", vectors:\n";
  for (const auto& u : psc.u) {
    std::cout << "  u = (";
    for (std::size_t j = 0; j < u.size(); ++j) {
      std::cout << u[j] << (j + 1 < u.size() ? ", " : ")\n");
    }
  }
  std::cout << "  feasible with k=" << k << "? "
            << (red::psc_feasible_brute_force(psc) ? "yes" : "no")
            << "  (matches: minimum cover " << *red::setcover_minimum(sc)
            << " <= " << k << ")\n\n";

  // Hop 2: Prefix Sum Cover -> nested active-time. Use a small ordered
  // PSC instance directly, so the exact solver stays fast.
  red::PscInstance small;
  small.u = {{2, 1}, {2, 2}, {1, 1}};
  small.v = {3, 2};
  small.k = 2;
  red::PscToActiveTimeResult hop2 = red::psc_to_active_time(small);
  std::cout << "Hop 2: PSC (n=3, d=2, W=" << hop2.W
            << ") becomes an active-time instance with g="
            << hop2.instance.g << ", " << hop2.instance.num_jobs()
            << " jobs over horizon " << hop2.instance.horizon() << ".\n";
  const auto min_k = red::psc_minimum_brute_force(small);
  const auto opt = at::baselines::exact_opt_laminar(hop2.instance);
  std::cout << "  PSC minimum k*      = " << *min_k << '\n'
            << "  forced rigid slots  = " << hop2.non_special_slots << '\n'
            << "  active-time OPT     = " << opt->optimum << "  (= "
            << hop2.non_special_slots << " + " << *min_k << ")\n";
  std::cout << "\nOPT transferred exactly across the reduction — the "
               "nested problem is as hard as Set Cover's decision "
               "version.\n";
  return 0;
}
