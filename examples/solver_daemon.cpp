// Persistent multi-tenant solver daemon CLI (docs/DAEMON.md).
//
// Runs a daemon::Daemon over stdin/stdout (the default: one request
// line in, one record line out, exit on EOF or a shutdown op) or over
// a Unix-domain socket, where connections are served sequentially and
// hot state — open sessions, tenant weights, accrued vruntime — stays
// resident across connections:
//
//   $ ./examples/solver_daemon < requests.jsonl
//   $ ./examples/solver_daemon --socket /tmp/nat.sock &
//     ... clients connect, stream JSONL requests, read records ...
//
// Flags:
//   --socket PATH             serve connections on a Unix socket
//                             instead of stdin/stdout
//   --threads N               solver pool width; 0 = hardware (default)
//   --fifo                    arrival-order dispatch (fairness baseline)
//   --default-deadline-ms N   deadline for requests without one; 0 =
//                             none (default)
//   --solver NAME             solver for "solve" requests (default auto)
//   --max-queue-depth N       default per-tenant admission cap (256)
//   --max-in-flight N         default per-tenant concurrency cap (1)
//   --summary                 print daemon totals to stderr at exit
//
// The process exits 0 as long as the daemon machinery worked; bad
// request lines become structured error records, not crashes.
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "daemon/daemon.hpp"
#include "util/fd_streambuf.hpp"

namespace {

using nat::util::FdStreambuf;

void usage() {
  std::cerr << "usage: solver_daemon [--socket PATH] [--threads N] [--fifo]\n"
            << "         [--default-deadline-ms N] [--solver NAME]\n"
            << "         [--max-queue-depth N] [--max-in-flight N]\n"
            << "         [--robust] [--summary]\n";
}

/// Sequential accept loop: each connection is one serve() call; the
/// daemon's state persists between them. A shutdown op ends both the
/// connection and the accept loop.
int serve_socket(nat::daemon::Daemon& daemon, const std::string& path) {
  // A client that disconnects mid-record must surface as a write error,
  // not a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::cerr << "solver_daemon: socket(): " << std::strerror(errno) << "\n";
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "solver_daemon: socket path too long: " << path << "\n";
    ::close(listen_fd);
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 8) != 0) {
    std::cerr << "solver_daemon: bind/listen on " << path << ": "
              << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 1;
  }
  std::cerr << "solver_daemon: listening on " << path << "\n";
  while (!daemon.draining()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      std::cerr << "solver_daemon: accept(): " << std::strerror(errno) << "\n";
      break;
    }
    FdStreambuf buf(fd);
    std::istream in(&buf);
    std::ostream out(&buf);
    daemon.serve(in, out);
    out.flush();
    ::close(fd);
  }
  ::close(listen_fd);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  nat::daemon::DaemonOptions options;
  std::string socket_path;
  bool summary = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--fifo") {
      options.fifo = true;
    } else if (arg == "--default-deadline-ms" && i + 1 < argc) {
      options.default_deadline_ms = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--solver" && i + 1 < argc) {
      options.batch.solver = argv[++i];
    } else if (arg == "--robust") {
      options.batch.robust = true;
    } else if (arg == "--max-queue-depth" && i + 1 < argc) {
      options.tenant_defaults.max_queue_depth =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--max-in-flight" && i + 1 < argc) {
      options.tenant_defaults.max_in_flight =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "solver_daemon: unexpected argument \"" << arg << "\"\n";
      usage();
      return 2;
    }
  }

  nat::daemon::Daemon daemon(options);
  const int rc = socket_path.empty() ? daemon.serve(std::cin, std::cout)
                                     : serve_socket(daemon, socket_path);
  if (summary) {
    const nat::daemon::DaemonStats s = daemon.stats();
    std::cerr << "daemon: " << s.submitted << " submitted, " << s.admitted
              << " admitted, " << s.rejected << " rejected, " << s.solved
              << " solved, " << s.errors << " errors, " << s.timeouts
              << " timeouts, " << s.tenants.size() << " tenants\n";
  }
  return rc;
}
