// Quickstart: build a nested instance, run the 9/5-approximation, and
// inspect the schedule.
//
//   $ ./examples/quickstart
//
// The instance: a parallel machine that can run g = 2 jobs per slot, a
// long maintenance job spanning the whole horizon, and two bursts of
// short jobs with nested deadlines.
#include <iostream>

#include "activetime/solver.hpp"
#include "baselines/exact.hpp"
#include "io/serialize.hpp"

int main() {
  using namespace nat;

  at::Instance instance;
  instance.g = 2;
  instance.jobs = {
      at::Job{0, 12, 4},  // long job, flexible window [0, 12)
      at::Job{1, 4, 2},   // burst 1
      at::Job{1, 4, 1},
      at::Job{6, 10, 2},  // burst 2
      at::Job{7, 9, 1},   // nested inside burst 2
  };

  std::cout << "Instance (" << at::summary(instance) << "):\n";
  io::write_instance(std::cout, instance);

  // The paper's algorithm: strengthened LP + tree rounding.
  at::NestedSolveResult result = at::solve_nested(instance);
  std::cout << "\nLP lower bound : " << result.lp_value << '\n';
  std::cout << "active slots   : " << result.active_slots
            << "  (guarantee: <= 9/5 * OPT)\n\n";
  io::write_schedule(std::cout, instance, result.schedule);
  std::cout << '\n';
  io::write_gantt(std::cout, instance, result.schedule);

  // For an instance this small the exact optimum is cheap to verify.
  auto exact = at::baselines::exact_opt_laminar(instance);
  if (exact.has_value()) {
    std::cout << "\nexact OPT      : " << exact->optimum << '\n';
  }
  return 0;
}
