#include "activetime/instance.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "util/check.hpp"

namespace nat::at {
namespace {

TEST(Instance, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(testing::small_nested().validate());
}

TEST(Instance, ValidateRejectsBadG) {
  Instance i = testing::small_nested();
  i.g = 0;
  EXPECT_THROW(i.validate(), util::CheckError);
}

TEST(Instance, ValidateRejectsZeroProcessing) {
  Instance i;
  i.g = 1;
  i.jobs = {Job{0, 3, 0}};
  EXPECT_THROW(i.validate(), util::CheckError);
}

TEST(Instance, ValidateRejectsTightWindow) {
  Instance i;
  i.g = 1;
  i.jobs = {Job{0, 2, 3}};  // window shorter than processing
  EXPECT_THROW(i.validate(), util::CheckError);
}

TEST(Instance, HorizonAndVolume) {
  Instance i = testing::small_nested();
  EXPECT_EQ(i.horizon(), (Interval{0, 10}));
  EXPECT_EQ(i.total_volume(), 9);
  EXPECT_EQ(i.volume_lower_bound(), 5);  // ceil(9/2)
  EXPECT_TRUE(Instance{}.horizon().empty());
}

TEST(Instance, LaminarDetection) {
  EXPECT_TRUE(testing::small_nested().is_laminar());
  EXPECT_FALSE(testing::crossing().is_laminar());
  // Identical windows are laminar.
  Instance same;
  same.g = 1;
  same.jobs = {Job{0, 3, 1}, Job{0, 3, 2}};
  EXPECT_TRUE(same.is_laminar());
  // Touching (disjoint) windows are laminar.
  Instance touching;
  touching.g = 1;
  touching.jobs = {Job{0, 3, 1}, Job{3, 6, 2}};
  EXPECT_TRUE(touching.is_laminar());
  // Degenerate shapes: empty and single-job instances are laminar.
  EXPECT_TRUE(Instance{}.is_laminar());
  Instance single;
  single.g = 1;
  single.jobs = {Job{2, 7, 3}};
  EXPECT_TRUE(single.is_laminar());
}

TEST(Interval, Relations) {
  const Interval a{0, 4}, b{1, 3}, c{4, 6};
  EXPECT_TRUE(b.inside(a));
  EXPECT_TRUE(b.strictly_inside(a));
  EXPECT_FALSE(a.strictly_inside(a));
  EXPECT_TRUE(a.inside(a));
  EXPECT_TRUE(a.disjoint(c));
  EXPECT_FALSE(a.disjoint(b));
  EXPECT_TRUE(a.contains(0));
  EXPECT_FALSE(a.contains(4));
  EXPECT_EQ(a.length(), 4);
}

}  // namespace
}  // namespace nat::at
