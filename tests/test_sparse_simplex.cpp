#include "lp/sparse_simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "activetime/lp_relaxation.hpp"
#include "activetime/solver.hpp"
#include "activetime/time_indexed_lp.hpp"
#include "activetime/tree.hpp"
#include "instances/generators.hpp"
#include "lp/backend.hpp"
#include "lp/bounded_simplex.hpp"
#include "lp/exact_simplex.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace nat::lp {
namespace {

TEST(SparseSimplex, TrivialAndBounds) {
  // min -x - y with x in [1, 2], y in [0, 3], x + y <= 4.
  Model m;
  int x = m.add_variable("x", 1.0, 2.0, -1.0);
  int y = m.add_variable("y", 0.0, 3.0, -1.0);
  m.add_row(Sense::kLe, 4.0, {{x, 1.0}, {y, 1.0}});
  Solution s = solve_sparse(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -4.0, 1e-8);
}

TEST(SparseSimplex, PureBoundFlipOptimum) {
  // Optimum reached by a single bound flip, no pivots.
  Model m;
  int x = m.add_variable("x", 0.0, 5.0, -1.0);
  m.add_row(Sense::kLe, 100.0, {{x, 1.0}});
  SparseStats stats;
  Solution s = solve_sparse(m, {}, &stats);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 5.0, 1e-9);
  EXPECT_EQ(stats.pivots, 0);
  EXPECT_EQ(stats.bound_flips, 1);
}

TEST(SparseSimplex, StatusesMatchDenseBackend) {
  {
    Model m;
    int x = m.add_variable("x", 0.0, 1.0, 1.0);
    m.add_row(Sense::kGe, 2.0, {{x, 1.0}});
    EXPECT_EQ(solve_sparse(m).status, Status::kInfeasible);
  }
  {
    Model m;
    int x = m.add_variable("x", 0.0, kInf, -1.0);
    m.add_row(Sense::kGe, 0.0, {{x, 1.0}});
    EXPECT_EQ(solve_sparse(m).status, Status::kUnbounded);
  }
  {
    Model m;
    int x = m.add_variable("x", 0.0, kInf, 1.0);
    int y = m.add_variable("y", 0.0, kInf, 1.0);
    m.add_row(Sense::kEq, 4.0, {{x, 1.0}, {y, 2.0}});
    m.add_row(Sense::kEq, 1.0, {{x, 1.0}, {y, -1.0}});
    Solution s = solve_sparse(m);
    ASSERT_EQ(s.status, Status::kOptimal);
    EXPECT_NEAR(s.x[x], 2.0, 1e-8);
    EXPECT_NEAR(s.x[y], 1.0, 1e-8);
  }
}

TEST(SparseSimplex, FixedAndFreeVariables) {
  {
    Model m;
    int x = m.add_variable("x", 3.0, 3.0, -10.0);  // fixed
    int y = m.add_variable("y", 0.0, kInf, 1.0);
    m.add_row(Sense::kGe, 5.0, {{x, 1.0}, {y, 1.0}});
    Solution s = solve_sparse(m);
    ASSERT_EQ(s.status, Status::kOptimal);
    EXPECT_NEAR(s.x[x], 3.0, 1e-9);
    EXPECT_NEAR(s.x[y], 2.0, 1e-8);
  }
  {
    Model m;
    int x = m.add_variable("x", -kInf, kInf, 1.0);
    m.add_row(Sense::kGe, -7.0, {{x, 1.0}});
    Solution s = solve_sparse(m);
    ASSERT_EQ(s.status, Status::kOptimal);
    EXPECT_NEAR(s.objective, -7.0, 1e-8);
  }
}

TEST(SparseSimplex, RedundantRowsKeepArtificialsPinned) {
  // Duplicated equalities leave a basic artificial on a redundant row;
  // the revised backend pins it at zero instead of deleting the row.
  Model m;
  int x = m.add_variable("x", 0.0, kInf, 1.0);
  int y = m.add_variable("y", 0.0, kInf, 2.0);
  m.add_row(Sense::kEq, 3.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::kEq, 3.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::kEq, 6.0, {{x, 2.0}, {y, 2.0}});
  Solution s = solve_sparse(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-8);
  EXPECT_NEAR(s.x[x], 3.0, 1e-8);
}

TEST(SparseSimplex, BealeCyclingInstance) {
  // Beale's classic cycling example: Dantzig pricing with most-negative
  // tie-breaks cycles forever without an anti-cycling rule; the Bland
  // fallback must terminate it at the optimum (-0.05).
  Model m;
  int x1 = m.add_variable("x1", 0.0, kInf, -0.75);
  int x2 = m.add_variable("x2", 0.0, kInf, 150.0);
  int x3 = m.add_variable("x3", 0.0, kInf, -0.02);
  int x4 = m.add_variable("x4", 0.0, kInf, 6.0);
  m.add_row(Sense::kLe, 0.0,
            {{x1, 0.25}, {x2, -60.0}, {x3, -1.0 / 25.0}, {x4, 9.0}});
  m.add_row(Sense::kLe, 0.0,
            {{x1, 0.5}, {x2, -90.0}, {x3, -1.0 / 50.0}, {x4, 3.0}});
  m.add_row(Sense::kLe, 1.0, {{x3, 1.0}});
  Solution sparse = solve_sparse(m);
  ASSERT_EQ(sparse.status, Status::kOptimal);
  EXPECT_NEAR(sparse.objective, -0.05, 1e-9);
  Solution dense = solve(m);
  ASSERT_EQ(dense.status, Status::kOptimal);
  EXPECT_NEAR(sparse.objective, dense.objective, 1e-9);
}

TEST(SparseSimplex, HighlyDegenerateTransportation) {
  // Degenerate assignment polytope: every basic feasible solution has
  // many basic variables at zero, so most pivots make no progress.
  constexpr int kN = 6;
  Model m;
  std::vector<std::vector<int>> v(kN, std::vector<int>(kN));
  util::Rng rng(4242);
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; ++j) {
      v[i][j] = m.add_variable("a", 0.0, 1.0,
                               static_cast<double>(rng.uniform_int(1, 9)));
    }
  }
  for (int i = 0; i < kN; ++i) {
    std::vector<std::pair<int, double>> row, col;
    for (int j = 0; j < kN; ++j) {
      row.push_back({v[i][j], 1.0});
      col.push_back({v[j][i], 1.0});
    }
    m.add_row(Sense::kEq, 1.0, row);
    m.add_row(Sense::kEq, 1.0, col);
  }
  Solution sparse = solve_sparse(m);
  Solution dense = solve(m);
  ASSERT_EQ(sparse.status, Status::kOptimal);
  ASSERT_EQ(dense.status, Status::kOptimal);
  EXPECT_NEAR(sparse.objective, dense.objective, 1e-8);
  EXPECT_LE(m.max_violation(sparse.x), 1e-7);
}

TEST(SparseSimplex, RefactorizationKeepsLongSolvesAccurate) {
  // A chain LP long enough to force several refactorization cycles;
  // the final objective must still match the exact rational optimum.
  constexpr int kLinks = 120;
  Model m;
  std::vector<int> x(kLinks);
  for (int i = 0; i < kLinks; ++i) {
    x[i] = m.add_variable("x", 0.0, 10.0, i % 3 == 0 ? 1.0 : -1.0);
  }
  for (int i = 0; i + 1 < kLinks; ++i) {
    m.add_row(Sense::kLe, 12.0, {{x[i], 1.0}, {x[i + 1], 1.0}});
  }
  m.add_row(Sense::kGe, 4.0, {{x[0], 1.0}, {x[kLinks - 1], 1.0}});
  SparseStats stats;
  Solution sparse = solve_sparse(m, {}, &stats);
  ASSERT_EQ(sparse.status, Status::kOptimal);
  ExactSolution exact = solve_exact(m);
  ASSERT_EQ(exact.status, Status::kOptimal);
  EXPECT_NEAR(sparse.objective, exact.objective.to_double(),
              1e-9 * (1.0 + std::abs(sparse.objective)));
  EXPECT_LE(m.max_violation(sparse.x), 1e-7);
}

// --- differential sweep vs dense/bounded/exact on random LPs -------------

class SparseAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SparseAgreement, MatchesDenseBoundedAndExact) {
  util::Rng rng(91000 + GetParam());
  const int nvars = static_cast<int>(rng.uniform_int(1, 7));
  const int nrows = static_cast<int>(rng.uniform_int(1, 8));
  Model m;
  for (int i = 0; i < nvars; ++i) {
    const double lo = static_cast<double>(rng.uniform_int(0, 2));
    const double hi =
        rng.chance(0.7) ? lo + static_cast<double>(rng.uniform_int(0, 7))
                        : kInf;
    m.add_variable("v", lo, hi, static_cast<double>(rng.uniform_int(-4, 4)));
  }
  for (int r = 0; r < nrows; ++r) {
    std::vector<std::pair<int, double>> row;
    for (int i = 0; i < nvars; ++i) {
      if (rng.chance(0.6)) {
        row.push_back({i, static_cast<double>(rng.uniform_int(-3, 3))});
      }
    }
    if (row.empty()) row.push_back({0, 1.0});
    const Sense sense = rng.chance(0.3)   ? Sense::kEq
                        : rng.chance(0.5) ? Sense::kGe
                                          : Sense::kLe;
    m.add_row(sense, static_cast<double>(rng.uniform_int(-6, 10)), row);
  }
  Solution sparse = solve_sparse(m);
  Solution dense = solve(m);
  Solution bounded = solve_bounded(m);
  ASSERT_NE(sparse.status, Status::kIterLimit) << "sparse hit the cap";
  ASSERT_NE(dense.status, Status::kIterLimit);
  EXPECT_EQ(sparse.status, dense.status);
  EXPECT_EQ(sparse.status, bounded.status);
  if (dense.status == Status::kOptimal) {
    EXPECT_NEAR(sparse.objective, dense.objective,
                1e-6 * (1.0 + std::abs(dense.objective)));
    EXPECT_LE(m.max_violation(sparse.x), 1e-6)
        << "sparse backend returned an infeasible point";
    ExactSolution exact = solve_exact(m);
    ASSERT_EQ(exact.status, Status::kOptimal);
    EXPECT_NEAR(sparse.objective, exact.objective.to_double(),
                1e-6 * (1.0 + std::abs(dense.objective)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SparseAgreement, ::testing::Range(0, 200));

// --- the repository's real LP corpus -------------------------------------

/// Solves the strong LP of `inst` through sparse and dense and checks
/// the 1e-9-relative agreement the CI perf gate also relies on.
void check_strong_lp_agreement(const at::Instance& inst) {
  at::LaminarForest f = at::LaminarForest::build(inst);
  f.canonicalize();
  at::StrongLp lp = at::build_strong_lp(f);
  Solution sparse = solve_sparse(lp.model);
  Solution dense = solve(lp.model);
  ASSERT_EQ(sparse.status, Status::kOptimal);
  ASSERT_EQ(dense.status, Status::kOptimal);
  EXPECT_NEAR(sparse.objective, dense.objective,
              1e-9 * (1.0 + std::abs(dense.objective)));
  EXPECT_LE(lp.model.max_violation(sparse.x), 1e-7);
}

TEST(SparseSimplexCorpus, StrongLpFamilies) {
  for (int id = 0; id < 8; ++id) {
    {
      at::gen::RandomLaminarParams params;
      params.g = 3;
      params.max_depth = 3;
      params.max_children = 3;
      params.max_jobs_per_node = 3;
      params.max_processing = 4;
      util::Rng rng(100 + id);
      check_strong_lp_agreement(at::gen::random_laminar(params, rng));
    }
    {
      at::gen::ContendedParams params;
      params.g = 6;
      params.min_groups = 2;
      params.max_groups = 6;
      util::Rng rng(300 + id);
      check_strong_lp_agreement(at::gen::random_contended(params, rng));
    }
  }
}

TEST(SparseSimplexCorpus, TimeIndexedLps) {
  for (int id = 0; id < 6; ++id) {
    at::gen::ContendedParams params;
    params.g = 4;
    params.min_groups = 2;
    params.max_groups = 4;
    util::Rng rng(500 + id);
    const at::Instance inst = at::gen::random_contended(params, rng);
    at::TimeIndexedLp lp =
        at::build_time_indexed_lp(inst, at::CeilingIntervals::kEventAligned);
    Solution sparse = solve_sparse(lp.model);
    Solution dense = solve(lp.model);
    ASSERT_EQ(sparse.status, Status::kOptimal);
    ASSERT_EQ(dense.status, Status::kOptimal);
    EXPECT_NEAR(sparse.objective, dense.objective,
                1e-9 * (1.0 + std::abs(dense.objective)));
  }
}

// --- backend dispatch -----------------------------------------------------

TEST(LpBackend, ParseAndNames) {
  EXPECT_EQ(parse_backend(nullptr), BackendKind::kSparse);
  EXPECT_EQ(parse_backend(""), BackendKind::kSparse);
  EXPECT_EQ(parse_backend("sparse"), BackendKind::kSparse);
  EXPECT_EQ(parse_backend("dense"), BackendKind::kDense);
  EXPECT_EQ(parse_backend("bounded"), BackendKind::kBounded);
  EXPECT_EQ(parse_backend("check"), BackendKind::kCheck);
  EXPECT_THROW(parse_backend("tableau"), util::CheckError);
  EXPECT_STREQ(backend_name(BackendKind::kSparse), "sparse");
  EXPECT_STREQ(backend_name(BackendKind::kCheck), "check");
}

TEST(LpBackend, AllKindsAgreeOnAModel) {
  Model m;
  int x = m.add_variable("x", 0.0, 4.0, -1.0);
  int y = m.add_variable("y", 0.0, kInf, -2.0);
  m.add_row(Sense::kLe, 6.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::kLe, 10.0, {{x, 1.0}, {y, 2.0}});
  const double expected = -10.0;  // x=2, y=4
  for (BackendKind kind :
       {BackendKind::kSparse, BackendKind::kDense, BackendKind::kBounded,
        BackendKind::kCheck}) {
    Solution s = solve_with(kind, m);
    ASSERT_EQ(s.status, Status::kOptimal) << backend_name(kind);
    EXPECT_NEAR(s.objective, expected, 1e-8) << backend_name(kind);
  }
}

TEST(LpBackend, CheckModeCoversInfeasibleAndUnbounded) {
  {
    Model m;
    int x = m.add_variable("x", 0.0, 1.0, 1.0);
    m.add_row(Sense::kGe, 2.0, {{x, 1.0}});
    EXPECT_EQ(solve_with(BackendKind::kCheck, m).status, Status::kInfeasible);
  }
  {
    Model m;
    int x = m.add_variable("x", 0.0, kInf, -1.0);
    m.add_row(Sense::kGe, 0.0, {{x, 1.0}});
    EXPECT_EQ(solve_with(BackendKind::kCheck, m).status, Status::kUnbounded);
  }
}

// --- end-to-end: the solver pipeline on the sparse default ---------------

TEST(SparseSimplexPipeline, SolveNestedMatchesAcrossBackends) {
  // The full 9/5 pipeline (including the exact-arithmetic verify layer
  // in Debug builds) must produce the same LP value regardless of the
  // LP backend driving it.
  for (int id = 0; id < 4; ++id) {
    at::gen::ContendedParams params;
    params.g = 4;
    params.min_groups = 2;
    params.max_groups = 5;
    util::Rng rng(700 + id);
    const at::Instance inst = at::gen::random_contended(params, rng);
    const double sparse_value = at::strong_lp_value(inst);
    at::LaminarForest f = at::LaminarForest::build(inst);
    f.canonicalize();
    at::StrongLp lp = at::build_strong_lp(f);
    Solution dense = solve(lp.model);
    ASSERT_EQ(dense.status, Status::kOptimal);
    EXPECT_NEAR(sparse_value, dense.objective,
                1e-9 * (1.0 + std::abs(dense.objective)));
    at::NestedSolveResult result = at::solve_nested(inst);
    EXPECT_NEAR(result.lp_value, dense.objective,
                1e-7 * (1.0 + std::abs(dense.objective)));
    EXPECT_LE(static_cast<double>(result.active_slots),
              1.8 * result.lp_value + 1e-5);
  }
}

}  // namespace
}  // namespace nat::lp
