#include "reductions/prefix_sum_cover.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace nat::red {
namespace {

TEST(PrefixDominates, Definition) {
  EXPECT_TRUE(prefix_dominates({3, 1}, {2, 2}));    // 3>=2, 4>=4
  EXPECT_FALSE(prefix_dominates({1, 3}, {2, 2}));   // 1 < 2
  EXPECT_TRUE(prefix_dominates({2, 2}, {2, 2}));
  EXPECT_TRUE(prefix_dominates({5, 0}, {1, 1}));    // later shortfall ok
  EXPECT_FALSE(prefix_dominates({2, 0}, {1, 2}));   // 2 < 3 at j=2
  EXPECT_TRUE(prefix_dominates({}, {}));
}

TEST(Psc, ValidateRejectsNonPositiveU) {
  PscInstance inst;
  inst.u = {{1, 0}};
  inst.v = {1, 1};
  inst.k = 1;
  EXPECT_THROW(inst.validate(), util::CheckError);
}

TEST(Psc, BruteForceKnownCases) {
  // Two vectors; either alone dominates (2,1); both needed for (3,3).
  PscInstance inst;
  inst.u = {{2, 1}, {1, 2}};
  inst.v = {2, 1};
  inst.k = 1;
  EXPECT_TRUE(psc_feasible_brute_force(inst));
  inst.v = {3, 3};
  EXPECT_FALSE(psc_feasible_brute_force(inst));
  inst.k = 2;
  EXPECT_TRUE(psc_feasible_brute_force(inst));
  EXPECT_EQ(psc_minimum_brute_force(inst).value(), 2);
}

TEST(Psc, ZeroTargetNeedsNothing) {
  PscInstance inst;
  inst.u = {{1}};
  inst.v = {0};
  inst.k = 0;
  EXPECT_TRUE(psc_feasible_brute_force(inst));
  EXPECT_EQ(psc_minimum_brute_force(inst).value(), 0);
}

TEST(Psc, MonotoneInK) {
  // Positivity of u makes feasibility monotone in k.
  PscInstance inst;
  inst.u = {{3, 1}, {2, 2}, {1, 1}};
  inst.v = {4, 3};
  for (int k = 0; k <= 3; ++k) {
    inst.k = k;
    if (psc_feasible_brute_force(inst)) {
      for (int k2 = k; k2 <= 3; ++k2) {
        inst.k = k2;
        EXPECT_TRUE(psc_feasible_brute_force(inst)) << "k=" << k2;
      }
      break;
    }
  }
}

}  // namespace
}  // namespace nat::red
