#include "activetime/schedule.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "util/check.hpp"

namespace nat::at {
namespace {

Instance two_jobs() {
  Instance inst;
  inst.g = 2;
  inst.jobs = {Job{0, 4, 2}, Job{1, 3, 1}};
  return inst;
}

TEST(Schedule, ValidAssignmentPasses) {
  Schedule s;
  s.assignment = {{0, 1}, {1}};
  EXPECT_TRUE(is_valid_schedule(two_jobs(), s));
  EXPECT_NO_THROW(validate_schedule(two_jobs(), s));
  EXPECT_EQ(s.active_slots(), 2);
  EXPECT_EQ(s.active_times(), (std::vector<Time>{0, 1}));
}

TEST(Schedule, FailureInjection) {
  const Instance inst = two_jobs();
  std::string why;

  Schedule wrong_count;
  wrong_count.assignment = {{0}, {1}};
  EXPECT_FALSE(is_valid_schedule(inst, wrong_count, &why));
  EXPECT_NE(why.find("needs"), std::string::npos);

  Schedule outside_window;
  outside_window.assignment = {{0, 1}, {0}};  // job 1 released at 1
  EXPECT_FALSE(is_valid_schedule(inst, outside_window, &why));
  EXPECT_NE(why.find("outside window"), std::string::npos);

  Schedule duplicate_slot;
  duplicate_slot.assignment = {{1, 1}, {2}};
  EXPECT_FALSE(is_valid_schedule(inst, duplicate_slot, &why));
  EXPECT_NE(why.find("increasing"), std::string::npos);

  Schedule missing_job;
  missing_job.assignment = {{0, 1}};
  EXPECT_FALSE(is_valid_schedule(inst, missing_job, &why));

  // Overload a slot: g = 2, three jobs at t = 1.
  Instance threeg = inst;
  threeg.jobs.push_back(Job{0, 4, 1});
  Schedule overload;
  overload.assignment = {{1, 2}, {1}, {1}};
  EXPECT_FALSE(is_valid_schedule(threeg, overload, &why));
  EXPECT_NE(why.find("exceeds g"), std::string::npos);
  EXPECT_THROW(validate_schedule(threeg, overload), util::CheckError);
}

TEST(Schedule, EmptyScheduleForEmptyInstance) {
  Schedule s;
  EXPECT_TRUE(is_valid_schedule(Instance{1, {}}, s));
  EXPECT_EQ(s.active_slots(), 0);
}

}  // namespace
}  // namespace nat::at
