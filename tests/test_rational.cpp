#include "numeric/rational.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace nat::num {
namespace {

using util::Rng;

Rational Q(std::int64_t n, std::int64_t d = 1) {
  return Rational::from_int64(n, d);
}

TEST(Rational, NormalizesOnConstruction) {
  EXPECT_EQ(Q(2, 4).to_string(), "1/2");
  EXPECT_EQ(Q(-2, 4).to_string(), "-1/2");
  EXPECT_EQ(Q(2, -4).to_string(), "-1/2");
  EXPECT_EQ(Q(-2, -4).to_string(), "1/2");
  EXPECT_EQ(Q(0, 17).to_string(), "0");
  EXPECT_EQ(Q(6, 3).to_string(), "2");
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Q(1, 0), util::CheckError);
  EXPECT_THROW(Q(1) / Q(0), util::CheckError);
}

TEST(Rational, FieldArithmeticKnownValues) {
  EXPECT_EQ((Q(1, 2) + Q(1, 3)).to_string(), "5/6");
  EXPECT_EQ((Q(1, 2) - Q(1, 3)).to_string(), "1/6");
  EXPECT_EQ((Q(2, 3) * Q(3, 4)).to_string(), "1/2");
  EXPECT_EQ((Q(2, 3) / Q(4, 9)).to_string(), "3/2");
  EXPECT_EQ((-Q(5, 7)).to_string(), "-5/7");
}

TEST(Rational, RandomizedFieldAxioms) {
  Rng rng(2024);
  auto rand_q = [&rng]() {
    return Q(rng.uniform_int(-50, 50), rng.uniform_int(1, 30));
  };
  for (int iter = 0; iter < 1500; ++iter) {
    const Rational a = rand_q();
    const Rational b = rand_q();
    const Rational c = rand_q();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + Q(0), a);
    EXPECT_EQ(a * Q(1), a);
    EXPECT_EQ(a - a, Q(0));
    if (!a.is_zero()) {
      EXPECT_EQ(a / a, Q(1));
    }
  }
}

TEST(Rational, CompareIsConsistentWithDoubles) {
  Rng rng(5);
  for (int iter = 0; iter < 1500; ++iter) {
    const std::int64_t an = rng.uniform_int(-100, 100);
    const std::int64_t ad = rng.uniform_int(1, 60);
    const std::int64_t bn = rng.uniform_int(-100, 100);
    const std::int64_t bd = rng.uniform_int(1, 60);
    // Cross-multiplied exact comparison as the reference.
    const bool lt = an * bd < bn * ad;
    EXPECT_EQ(Q(an, ad) < Q(bn, bd), lt);
  }
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Q(7, 2).floor().to_int64(), 3);
  EXPECT_EQ(Q(7, 2).ceil().to_int64(), 4);
  EXPECT_EQ(Q(-7, 2).floor().to_int64(), -4);
  EXPECT_EQ(Q(-7, 2).ceil().to_int64(), -3);
  EXPECT_EQ(Q(6, 2).floor().to_int64(), 3);
  EXPECT_EQ(Q(6, 2).ceil().to_int64(), 3);
  EXPECT_EQ(Q(0).floor().to_int64(), 0);
}

TEST(Rational, FloorCeilRandomized) {
  Rng rng(77);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::int64_t n = rng.uniform_int(-10000, 10000);
    const std::int64_t d = rng.uniform_int(1, 500);
    const Rational q = Q(n, d);
    const std::int64_t f = q.floor().to_int64();
    const std::int64_t c = q.ceil().to_int64();
    EXPECT_LE(Q(f), q);
    EXPECT_LT(q, Q(f + 1));
    EXPECT_GE(Q(c), q);
    EXPECT_GT(q, Q(c - 1));
  }
}

TEST(Rational, FromDoubleExactPowersOfTwo) {
  EXPECT_EQ(Rational::from_double_exact(0.0), Q(0));
  EXPECT_EQ(Rational::from_double_exact(1.0), Q(1));
  EXPECT_EQ(Rational::from_double_exact(-3.0), Q(-3));
  EXPECT_EQ(Rational::from_double_exact(0.5), Q(1, 2));
  EXPECT_EQ(Rational::from_double_exact(0.75), Q(3, 4));
  EXPECT_EQ(Rational::from_double_exact(-2.625), Q(-21, 8));
}

TEST(Rational, FromDoubleExactIntegersRoundTrip) {
  Rng rng(31337);
  for (int iter = 0; iter < 1000; ++iter) {
    const std::int64_t v = rng.uniform_int(-1'000'000'000, 1'000'000'000);
    EXPECT_EQ(Rational::from_double_exact(static_cast<double>(v)), Q(v));
  }
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Q(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Q(-1, 3).to_double(), -1.0 / 3.0);
}

// The verify layer converts every double artifact through
// from_double_exact; these round trips are what make its exact
// re-certification trustworthy at the extremes of the double range.
TEST(Rational, RoundTripSubnormals) {
  // 5e-324 is the smallest positive subnormal; its exact value is
  // 2^-1074, whose denominator used to overflow the naive
  // num/den double conversion and collapse the round trip to 0.
  const double tiny = std::numeric_limits<double>::denorm_min();
  EXPECT_EQ(Rational::from_double_exact(tiny).to_double(), tiny);
  EXPECT_EQ(Rational::from_double_exact(-tiny).to_double(), -tiny);
  const double min_normal = std::numeric_limits<double>::min();
  EXPECT_EQ(Rational::from_double_exact(min_normal).to_double(),
            min_normal);
  EXPECT_EQ(Rational::from_double_exact(min_normal / 2).to_double(),
            min_normal / 2);
}

TEST(Rational, RoundTripExtremeMagnitudes) {
  const double huge = std::numeric_limits<double>::max();
  EXPECT_EQ(Rational::from_double_exact(huge).to_double(), huge);
  EXPECT_EQ(Rational::from_double_exact(-huge).to_double(), -huge);
  EXPECT_THROW(
      Rational::from_double_exact(std::numeric_limits<double>::infinity()),
      util::CheckError);
  EXPECT_THROW(
      Rational::from_double_exact(std::nan("")), util::CheckError);
}

TEST(Rational, ToDoubleWideNumerators) {
  // 2^60 + 1 needs 61 significant bits — more than a double's 53 — so
  // to_double must round to the nearest representable, which is 2^60.
  const BigInt wide = BigInt(1LL << 60) + BigInt(1);
  EXPECT_DOUBLE_EQ(Rational(wide, BigInt(1)).to_double(),
                   std::ldexp(1.0, 60));
  // (2^60 + 1) / 2^60 = 1 + 2^-60 rounds back to exactly 1.
  EXPECT_DOUBLE_EQ(Rational(wide, BigInt(1LL << 60)).to_double(), 1.0);
  // A 120-bit integer still converts within 1 ulp.
  const BigInt sq = wide * wide;
  EXPECT_DOUBLE_EQ(Rational(sq, BigInt(1)).to_double(),
                   std::ldexp(1.0, 120));
}

TEST(Rational, ToDoubleSaturatesOutOfRange) {
  // Magnitudes beyond DBL_MAX saturate through ldexp instead of
  // producing garbage; reciprocals underflow cleanly toward zero.
  Rational beyond = Rational::from_double_exact(
      std::numeric_limits<double>::max());
  beyond *= Q(4);
  EXPECT_TRUE(std::isinf(beyond.to_double()));
  EXPECT_GT(beyond.to_double(), 0.0);
  const Rational below = Q(1) / beyond / beyond;
  EXPECT_EQ(below.to_double(), 0.0);
}

TEST(Rational, FromDoubleExactRoundTripRandomized) {
  Rng rng(424242);
  for (int iter = 0; iter < 2000; ++iter) {
    // Random signed mantissa times a random power of two spanning
    // normals and subnormals.
    const double mant =
        static_cast<double>(rng.uniform_int(-(1LL << 53), 1LL << 53));
    const int exp = static_cast<int>(rng.uniform_int(-1080, 960));
    const double v = std::ldexp(mant, exp);
    if (!std::isfinite(v)) continue;
    EXPECT_EQ(Rational::from_double_exact(v).to_double(), v)
        << "mant=" << mant << " exp=" << exp;
  }
}

}  // namespace
}  // namespace nat::num
