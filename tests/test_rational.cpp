#include "numeric/rational.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace nat::num {
namespace {

using util::Rng;

Rational Q(std::int64_t n, std::int64_t d = 1) {
  return Rational::from_int64(n, d);
}

TEST(Rational, NormalizesOnConstruction) {
  EXPECT_EQ(Q(2, 4).to_string(), "1/2");
  EXPECT_EQ(Q(-2, 4).to_string(), "-1/2");
  EXPECT_EQ(Q(2, -4).to_string(), "-1/2");
  EXPECT_EQ(Q(-2, -4).to_string(), "1/2");
  EXPECT_EQ(Q(0, 17).to_string(), "0");
  EXPECT_EQ(Q(6, 3).to_string(), "2");
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Q(1, 0), util::CheckError);
  EXPECT_THROW(Q(1) / Q(0), util::CheckError);
}

TEST(Rational, FieldArithmeticKnownValues) {
  EXPECT_EQ((Q(1, 2) + Q(1, 3)).to_string(), "5/6");
  EXPECT_EQ((Q(1, 2) - Q(1, 3)).to_string(), "1/6");
  EXPECT_EQ((Q(2, 3) * Q(3, 4)).to_string(), "1/2");
  EXPECT_EQ((Q(2, 3) / Q(4, 9)).to_string(), "3/2");
  EXPECT_EQ((-Q(5, 7)).to_string(), "-5/7");
}

TEST(Rational, RandomizedFieldAxioms) {
  Rng rng(2024);
  auto rand_q = [&rng]() {
    return Q(rng.uniform_int(-50, 50), rng.uniform_int(1, 30));
  };
  for (int iter = 0; iter < 1500; ++iter) {
    const Rational a = rand_q();
    const Rational b = rand_q();
    const Rational c = rand_q();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + Q(0), a);
    EXPECT_EQ(a * Q(1), a);
    EXPECT_EQ(a - a, Q(0));
    if (!a.is_zero()) {
      EXPECT_EQ(a / a, Q(1));
    }
  }
}

TEST(Rational, CompareIsConsistentWithDoubles) {
  Rng rng(5);
  for (int iter = 0; iter < 1500; ++iter) {
    const std::int64_t an = rng.uniform_int(-100, 100);
    const std::int64_t ad = rng.uniform_int(1, 60);
    const std::int64_t bn = rng.uniform_int(-100, 100);
    const std::int64_t bd = rng.uniform_int(1, 60);
    // Cross-multiplied exact comparison as the reference.
    const bool lt = an * bd < bn * ad;
    EXPECT_EQ(Q(an, ad) < Q(bn, bd), lt);
  }
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Q(7, 2).floor().to_int64(), 3);
  EXPECT_EQ(Q(7, 2).ceil().to_int64(), 4);
  EXPECT_EQ(Q(-7, 2).floor().to_int64(), -4);
  EXPECT_EQ(Q(-7, 2).ceil().to_int64(), -3);
  EXPECT_EQ(Q(6, 2).floor().to_int64(), 3);
  EXPECT_EQ(Q(6, 2).ceil().to_int64(), 3);
  EXPECT_EQ(Q(0).floor().to_int64(), 0);
}

TEST(Rational, FloorCeilRandomized) {
  Rng rng(77);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::int64_t n = rng.uniform_int(-10000, 10000);
    const std::int64_t d = rng.uniform_int(1, 500);
    const Rational q = Q(n, d);
    const std::int64_t f = q.floor().to_int64();
    const std::int64_t c = q.ceil().to_int64();
    EXPECT_LE(Q(f), q);
    EXPECT_LT(q, Q(f + 1));
    EXPECT_GE(Q(c), q);
    EXPECT_GT(q, Q(c - 1));
  }
}

TEST(Rational, FromDoubleExactPowersOfTwo) {
  EXPECT_EQ(Rational::from_double_exact(0.0), Q(0));
  EXPECT_EQ(Rational::from_double_exact(1.0), Q(1));
  EXPECT_EQ(Rational::from_double_exact(-3.0), Q(-3));
  EXPECT_EQ(Rational::from_double_exact(0.5), Q(1, 2));
  EXPECT_EQ(Rational::from_double_exact(0.75), Q(3, 4));
  EXPECT_EQ(Rational::from_double_exact(-2.625), Q(-21, 8));
}

TEST(Rational, FromDoubleExactIntegersRoundTrip) {
  Rng rng(31337);
  for (int iter = 0; iter < 1000; ++iter) {
    const std::int64_t v = rng.uniform_int(-1'000'000'000, 1'000'000'000);
    EXPECT_EQ(Rational::from_double_exact(static_cast<double>(v)), Q(v));
  }
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Q(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Q(-1, 3).to_double(), -1.0 / 3.0);
}

}  // namespace
}  // namespace nat::num
