// Exact-arithmetic verify layer (src/verify/) and differential fuzz
// harness: validators certify every artifact of the correct pipeline,
// reject tampered ones, and the fuzzer catches + minimizes the
// deliberately injected Algorithm 1 budget off-by-one.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "activetime/exact_pipeline.hpp"
#include "activetime/lp_relaxation.hpp"
#include "activetime/lp_transform.hpp"
#include "activetime/rounding.hpp"
#include "activetime/solver.hpp"
#include "activetime/tree.hpp"
#include "helpers.hpp"
#include "io/serialize.hpp"
#include "lp/dense_simplex.hpp"
#include "obs/counters.hpp"
#include "util/check.hpp"
#include "verify/fuzz.hpp"
#include "verify/verify.hpp"

namespace nat {
namespace {

using at::testing::contended;
using at::testing::mixed;

/// Pipeline artifacts up to (and including) the transform, for tests
/// that tamper with individual stages.
struct PipelineArtifacts {
  at::LaminarForest forest;
  at::StrongLp lp;
  at::FractionalSolution sol;
  double lp_value = 0.0;
};

PipelineArtifacts run_to_transform(const at::Instance& instance,
                                   bool push_down) {
  PipelineArtifacts a{at::LaminarForest::build(instance), {}, {}, 0.0};
  a.forest.canonicalize();
  a.lp = at::build_strong_lp(a.forest);
  const lp::Solution s = lp::solve(a.lp.model);
  NAT_CHECK(s.status == lp::Status::kOptimal);
  a.lp_value = s.objective;
  a.sol = at::unpack(a.lp, s);
  if (push_down) at::push_down_transform(a.forest, a.lp, a.sol);
  return a;
}

TEST(VerifyLevel, ResolvesExplicitLevelsUnchanged) {
  EXPECT_EQ(verify::resolve_level(verify::VerifyLevel::kOff),
            verify::VerifyLevel::kOff);
  EXPECT_EQ(verify::resolve_level(verify::VerifyLevel::kLight),
            verify::VerifyLevel::kLight);
  EXPECT_EQ(verify::resolve_level(verify::VerifyLevel::kFull),
            verify::VerifyLevel::kFull);
}

TEST(VerifyLevel, DefaultHonorsEnvironmentOverride) {
  ::setenv("NAT_VERIFY", "light", 1);
  EXPECT_EQ(verify::resolve_level(verify::VerifyLevel::kDefault),
            verify::VerifyLevel::kLight);
  ::setenv("NAT_VERIFY", "off", 1);
  EXPECT_EQ(verify::resolve_level(verify::VerifyLevel::kDefault),
            verify::VerifyLevel::kOff);
  ::setenv("NAT_VERIFY", "full", 1);
  EXPECT_EQ(verify::resolve_level(verify::VerifyLevel::kDefault),
            verify::VerifyLevel::kFull);
  ::setenv("NAT_VERIFY", "bogus", 1);
  EXPECT_THROW(verify::resolve_level(verify::VerifyLevel::kDefault),
               util::CheckError);
  ::unsetenv("NAT_VERIFY");
}

TEST(Validators, FullVerificationPassesAcrossTheSweep) {
  const std::int64_t checks_before =
      obs::counter("at.verify.checks").value();
  at::NestedSolverOptions options;
  options.verify_level = verify::VerifyLevel::kFull;
  for (int id = 0; id < 16; ++id) {
    EXPECT_NO_THROW(at::solve_nested(mixed(id), options))
        << "full verification rejected a correct pipeline on mixed(" << id
        << ")";
  }
  EXPECT_GT(obs::counter("at.verify.checks").value(), checks_before);
}

TEST(Validators, LightLevelChecksTheSchedule) {
  at::NestedSolverOptions options;
  options.verify_level = verify::VerifyLevel::kLight;
  EXPECT_NO_THROW(at::solve_nested(at::testing::small_nested(), options));
}

TEST(Validators, LpSolutionCertifiesAndTamperingIsRejected) {
  const PipelineArtifacts a = run_to_transform(contended(3), false);
  EXPECT_EQ(verify::check_lp_solution(a.forest, a.lp, a.sol, a.lp_value),
            "");
  // Shift one open count: the objective re-derivation (and usually a
  // constraint) must notice.
  at::FractionalSolution tampered = a.sol;
  tampered.x[0] += 0.5;
  EXPECT_NE(verify::check_lp_solution(a.forest, a.lp, tampered, a.lp_value),
            "");
}

TEST(Validators, PushDownCertifiesAndMassCreationIsRejected) {
  const PipelineArtifacts before = run_to_transform(contended(4), false);
  PipelineArtifacts after = before;
  at::push_down_transform(after.forest, after.lp, after.sol);
  EXPECT_EQ(verify::check_push_down(after.forest, before.sol.x,
                                    after.sol.x),
            "");
  // Mass appearing at a root out of thin air must be rejected (either
  // as broken conservation or as an out-of-bounds open count).
  std::vector<double> forged = after.sol.x;
  for (int i = 0; i < after.forest.num_nodes(); ++i) {
    if (after.forest.node(i).parent < 0) {
      forged[i] += 0.5;
      break;
    }
  }
  EXPECT_NE(verify::check_push_down(after.forest, before.sol.x, forged),
            "");
  // Mass vanishing from a subtree must be rejected too.
  std::vector<double> drained = after.sol.x;
  for (int i = 0; i < after.forest.num_nodes(); ++i) {
    if (drained[i] >= 0.5) {
      drained[i] -= 0.5;
      break;
    }
  }
  EXPECT_NE(verify::check_push_down(after.forest, before.sol.x, drained),
            "");
}

TEST(Validators, RoundingCertifiesAndTamperingIsRejected) {
  const PipelineArtifacts a = run_to_transform(contended(5), true);
  const std::vector<int> topmost =
      at::topmost_positive(a.forest, a.sol.x);
  const at::RoundingResult rounded =
      at::round_solution(a.forest, a.sol.x, topmost);
  EXPECT_EQ(verify::check_rounding(a.forest, a.sol.x, rounded.x_tilde,
                                   topmost),
            "");
  // A +1 on a node outside I is not the value the transform produced.
  std::vector<bool> in_topmost(a.forest.num_nodes(), false);
  for (int t : topmost) in_topmost[t] = true;
  std::vector<at::Time> forged = rounded.x_tilde;
  for (int i = 0; i < a.forest.num_nodes(); ++i) {
    if (!in_topmost[i]) {
      forged[i] += 1;
      break;
    }
  }
  EXPECT_NE(verify::check_rounding(a.forest, a.sol.x, forged, topmost),
            "");
}

TEST(Validators, ScheduleChecksCountsWindowsAndBudget) {
  const at::Instance instance = at::testing::small_nested();
  at::NestedSolverOptions options;
  options.verify_level = verify::VerifyLevel::kOff;
  const at::NestedSolveResult r = at::solve_nested(instance, options);
  EXPECT_EQ(verify::check_schedule(instance, r.schedule, r.active_slots),
            "");
  // Wrong claimed count.
  EXPECT_NE(
      verify::check_schedule(instance, r.schedule, r.active_slots + 1),
      "");
  // Active slots above the opened budget.
  EXPECT_NE(verify::check_schedule(instance, r.schedule, r.active_slots,
                                   r.active_slots - 1),
            "");
  // A slot moved outside its job's window.
  at::Schedule forged = r.schedule;
  forged.assignment[0][0] = instance.jobs[0].deadline + 5;
  EXPECT_NE(verify::check_schedule(instance, forged, r.active_slots), "");
}

TEST(Validators, ExactPipelineRunsZeroToleranceChecks) {
  // solve_nested_exact wires check_rounding_exact + check_schedule
  // unconditionally; a clean run on fractional instances is the test.
  EXPECT_NO_THROW(at::solve_nested_exact(at::testing::small_nested()));
  EXPECT_NO_THROW(at::solve_nested_exact(contended(1)));
}

TEST(Fuzz, SmokeRunIsCleanAndDeterministic) {
  verify::fuzz::FuzzOptions options;
  options.instances = 40;
  options.seed = 3;
  const verify::fuzz::FuzzReport report = verify::fuzz::run_fuzz(options);
  EXPECT_EQ(report.instances_run, 40);
  for (const auto& v : report.violations) {
    ADD_FAILURE() << "fuzz violation [" << v.failure_class
                  << "] at iteration " << v.index << ": " << v.detail;
  }
}

TEST(Fuzz, InjectedBudgetBugIsCaughtAndMinimized) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "nat_verify_fuzz_repros";
  std::filesystem::remove_all(dir);

  verify::fuzz::FuzzOptions options;
  options.instances = 10;  // seed 1 trips the fault within 10 iterations
  options.seed = 1;
  options.inject_budget_fault = true;
  options.regression_dir = dir.string();
  const verify::fuzz::FuzzReport report = verify::fuzz::run_fuzz(options);

  ASSERT_FALSE(report.violations.empty())
      << "the injected Algorithm 1 budget off-by-one went undetected";
  int smallest = report.violations.front().instance.num_jobs();
  for (const auto& v : report.violations) {
    EXPECT_EQ(v.failure_class, "verify:rounding")
        << "expected the rounding-stage validator to catch the fault, "
           "got: "
        << v.detail;
    smallest = std::min(smallest, v.instance.num_jobs());
    ASSERT_FALSE(v.repro_path.empty());
    EXPECT_TRUE(std::filesystem::exists(v.repro_path));
  }
  EXPECT_LE(smallest, 6)
      << "delta-debugging failed to minimize the repro to <= 6 jobs";

  // The persisted repro is a loadable instance that still fails the
  // same way.
  const auto& v = report.violations.front();
  std::ifstream is(v.repro_path);
  const at::Instance reloaded = io::read_instance(is);
  EXPECT_EQ(reloaded.num_jobs(), v.instance.num_jobs());
  const auto [cls, detail] = verify::fuzz::check_instance(reloaded, options);
  EXPECT_EQ(cls, v.failure_class) << detail;

  // Without the fault the minimized instance is handled cleanly.
  verify::fuzz::FuzzOptions clean = options;
  clean.inject_budget_fault = false;
  EXPECT_EQ(verify::fuzz::check_instance(reloaded, clean).first, "");

  std::filesystem::remove_all(dir);
}

TEST(DeltaFuzz, SmokeRunIsClean) {
  verify::fuzz::DeltaFuzzOptions options;
  options.streams = 10;
  options.steps = 12;
  options.seed = 5;
  const verify::fuzz::DeltaFuzzReport report =
      verify::fuzz::run_delta_fuzz(options);
  EXPECT_EQ(report.streams_run, 10);
  for (const auto& v : report.violations) {
    ADD_FAILURE() << "delta fuzz violation [" << v.failure_class
                  << "] at stream " << v.index << ": " << v.detail;
  }
}

TEST(DeltaFuzz, StreamValiditySimulation) {
  at::Instance base;
  base.g = 2;
  base.jobs = {at::Job{0, 4, 2}, at::Job{1, 3, 1}};

  // A well-formed stream replays cleanly end to end.
  const std::vector<at::Delta> good = {
      at::AddJob{at::Job{0, 4, 1}},
      at::ShrinkWindow{0, at::Interval{0, 3}},
      at::RemoveJob{2},
  };
  EXPECT_TRUE(verify::fuzz::delta_stream_valid(base, good));
  const auto [cls, detail] = verify::fuzz::check_delta_stream(base, good);
  EXPECT_EQ(cls, "") << detail;

  // Out-of-range indices, broken nesting, and emptied instances are
  // all rejected by the simulation (no solver involved).
  EXPECT_FALSE(verify::fuzz::delta_stream_valid(
      base, {at::RemoveJob{5}}));
  EXPECT_FALSE(verify::fuzz::delta_stream_valid(
      base, {at::ExtendWindow{1, at::Interval{2, 3}}}));  // drops release
  EXPECT_FALSE(verify::fuzz::delta_stream_valid(
      base, {at::RemoveJob{0}, at::RemoveJob{0}}));  // nothing left
  // A remove that is valid only before an earlier drop shifts indices:
  // the simulation tracks the evolving instance, not the base.
  EXPECT_TRUE(verify::fuzz::delta_stream_valid(
      base, {at::RemoveJob{1}}));
}

TEST(DeltaFuzz, MinimizerKeepsValidityAndIsNoOpOnPassingStreams) {
  verify::fuzz::DeltaViolation v;
  v.base.g = 2;
  v.base.jobs = {at::Job{0, 4, 2}, at::Job{1, 3, 1}};
  v.deltas = {at::AddJob{at::Job{0, 4, 1}}, at::RemoveJob{2}};
  v.failure_class = "session:divergence";  // never produced by this stream
  v.original_jobs = 2;
  v.original_steps = 2;
  verify::fuzz::minimize_delta_violation(v);
  // No candidate reproduces a class the stream does not fail with, so
  // the violation is returned unchanged.
  EXPECT_EQ(v.base.num_jobs(), 2);
  EXPECT_EQ(v.deltas.size(), 2u);
}

TEST(Fuzz, MinimizerPreservesTheFailureClass) {
  // Minimizing a *passing* instance is a no-op contract: with no
  // failure class to preserve, every candidate "fails differently", so
  // the instance is returned unchanged.
  verify::fuzz::FuzzOptions options;
  const at::Instance instance = at::testing::small_nested();
  const at::Instance out =
      verify::fuzz::minimize_violation(instance, "verify:rounding",
                                       options);
  EXPECT_EQ(out.num_jobs(), instance.num_jobs());
}

}  // namespace
}  // namespace nat
