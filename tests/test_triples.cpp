#include "activetime/triples.hpp"

#include <gtest/gtest.h>

#include "activetime/feasibility.hpp"
#include "activetime/lp_transform.hpp"
#include "activetime/rounding.hpp"
#include "helpers.hpp"
#include "lp/dense_simplex.hpp"

namespace nat::at {
namespace {

struct PipelineRun {
  LaminarForest forest;
  std::vector<double> x;
  std::vector<int> topmost;
  RoundingResult rounded;
  TripleAnalysis triples;
};

PipelineRun run_pipeline(const Instance& inst) {
  PipelineRun r{LaminarForest::build(inst), {}, {}, {}, {}};
  r.forest.canonicalize();
  StrongLp lp = build_strong_lp(r.forest);
  lp::Solution s = lp::solve(lp.model);
  EXPECT_EQ(s.status, lp::Status::kOptimal);
  FractionalSolution frac = unpack(lp, s);
  push_down_transform(r.forest, lp, frac);
  r.x = frac.x;
  r.topmost = topmost_positive(r.forest, r.x);
  r.rounded = round_solution(r.forest, r.x, r.topmost);
  r.triples = build_triples(r.forest, r.x, r.rounded.x_tilde, r.topmost);
  return r;
}

TEST(Triples, Lemma51FamilyProducesTypeCNodes) {
  // On the Lemma 5.1 family the group nodes carry x = 1 + 1/g, the
  // canonical type-C regime, for g >= 4 (1 + 1/g < 4/3).
  PipelineRun r = run_pipeline(gen::lemma51_gap(8));
  EXPECT_GT(r.triples.num_c1 + r.triples.num_c2, 0)
      << "expected type-C nodes on the gap family";
  EXPECT_FALSE(r.triples.ran_out_of_c2);
}

// Property sweep over families rich in fractional nodes.
class TripleSweep : public ::testing::TestWithParam<int> {};

Instance sweep_instance(int id) {
  if (id < 12) return gen::lemma51_gap(4 + id);  // g = 4..15
  return testing::mixed(id - 12);
}

TEST_P(TripleSweep, ClassificationIsConsistent) {
  PipelineRun r = run_pipeline(sweep_instance(GetParam()));
  // Every topmost node got a type; no other node did.
  std::vector<bool> in_topmost(r.forest.num_nodes(), false);
  for (int i : r.topmost) in_topmost[i] = true;
  for (int i = 0; i < r.forest.num_nodes(); ++i) {
    EXPECT_EQ(r.triples.type[i] != NodeType::kNotInI, in_topmost[i]);
  }
}

TEST_P(TripleSweep, Lemma49NeverRunsOutOfC2) {
  PipelineRun r = run_pipeline(sweep_instance(GetParam()));
  EXPECT_FALSE(r.triples.ran_out_of_c2)
      << "Algorithm 2 ran out of unused C2 nodes (Lemma 4.9 violated)";
}

TEST_P(TripleSweep, TriplesAreDisjointAndWellTyped) {
  PipelineRun r = run_pipeline(sweep_instance(GetParam()));
  std::vector<int> use_count(r.forest.num_nodes(), 0);
  for (const auto& t : r.triples.triples) {
    EXPECT_EQ(r.triples.type[t[0]], NodeType::kC1);
    EXPECT_EQ(r.triples.type[t[1]], NodeType::kC2);
    EXPECT_EQ(r.triples.type[t[2]], NodeType::kC2);
    for (int i : t) ++use_count[i];
  }
  for (int i = 0; i < r.forest.num_nodes(); ++i) {
    EXPECT_LE(use_count[i], 1) << "node reused across triples";
  }
}

TEST_P(TripleSweep, Lemma47WhenFewCNodes) {
  PipelineRun r = run_pipeline(sweep_instance(GetParam()));
  // With <= 2 type-C nodes and >= 1 type-B node, every C is C2
  // (Lemma 4.7: the rounding could afford to round them all up).
  const int c = r.triples.num_c1 + r.triples.num_c2;
  if (c <= 2 && r.triples.num_b >= 1) {
    EXPECT_EQ(r.triples.num_c1, 0);
  }
}

TEST_P(TripleSweep, Lemma411Structure) {
  PipelineRun r = run_pipeline(sweep_instance(GetParam()));
  for (const auto& t : r.triples.triples) {
    const int i1 = t[0];
    const int par = r.forest.node(i1).parent;
    if (par < 0) continue;  // degenerate (root C1): nothing to check
    const bool a = r.forest.is_ancestor(par, t[1]) &&
                   r.forest.is_ancestor(par, t[2]);
    bool brother_pair = r.forest.node(t[1]).parent == par;
    const int grandpar = r.forest.node(par).parent;
    const bool b = brother_pair && grandpar >= 0 &&
                   r.forest.is_ancestor(grandpar, t[2]);
    EXPECT_TRUE(a || b) << "triple (" << t[0] << ',' << t[1] << ',' << t[2]
                        << ") matches neither case of Lemma 4.11";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TripleSweep, ::testing::Range(0, 60));

}  // namespace
}  // namespace nat::at
