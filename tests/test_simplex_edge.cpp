// Simplex edge cases beyond the basics in test_simplex.cpp:
// degenerate/cycling-prone LPs, fixed variables, empty models,
// duplicate coefficients, and scaling extremes.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/dense_simplex.hpp"
#include "lp/exact_simplex.hpp"
#include "util/rng.hpp"

namespace nat::lp {
namespace {

TEST(SimplexEdge, EmptyModelIsTriviallyOptimal) {
  Model m;
  Solution s = solve(m);
  EXPECT_EQ(s.status, Status::kOptimal);
  EXPECT_EQ(s.objective, 0.0);
}

TEST(SimplexEdge, VariablesOnlyNoRows) {
  Model m;
  int x = m.add_variable("x", 2.0, 5.0, 1.0);
  int y = m.add_variable("y", 0.0, kInf, -1.0);
  m.add_row(Sense::kLe, 7.0, {{y, 1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);  // pushed to its lower bound
  EXPECT_NEAR(s.x[y], 7.0, 1e-8);
}

TEST(SimplexEdge, FixedVariable) {
  Model m;
  int x = m.add_variable("x", 3.0, 3.0, 1.0);
  int y = m.add_variable("y", 0.0, kInf, 1.0);
  m.add_row(Sense::kGe, 5.0, {{x, 1.0}, {y, 1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 3.0, 1e-9);
  EXPECT_NEAR(s.x[y], 2.0, 1e-8);
}

TEST(SimplexEdge, DuplicateCoefficientsAreSummed) {
  // x appears twice in the row: effectively 2x >= 4.
  Model m;
  int x = m.add_variable("x", 0.0, kInf, 1.0);
  m.add_row(Sense::kGe, 4.0, {{x, 1.0}, {x, 1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
}

TEST(SimplexEdge, BealeCyclingExample) {
  // Beale's classic cycling LP (degenerate); Dantzig pricing can cycle
  // without safeguards — the Bland fallback must terminate at -1/20.
  // min -3/4 x4 + 150 x5 - 1/50 x6 + 6 x7
  // s.t. 1/4 x4 - 60 x5 - 1/25 x6 + 9 x7 <= 0
  //      1/2 x4 - 90 x5 - 1/50 x6 + 3 x7 <= 0
  //      x6 <= 1
  // Scaled by 100 so every coefficient is integral (hence exactly
  // representable as a double and convertible to the rational backend
  // losslessly): objective and constraints x100, optimum -5.
  Model m;
  int x4 = m.add_variable("x4", 0.0, kInf, -75.0);
  int x5 = m.add_variable("x5", 0.0, kInf, 15000.0);
  int x6 = m.add_variable("x6", 0.0, kInf, -2.0);
  int x7 = m.add_variable("x7", 0.0, kInf, 600.0);
  m.add_row(Sense::kLe, 0.0,
            {{x4, 25.0}, {x5, -6000.0}, {x6, -4.0}, {x7, 900.0}});
  m.add_row(Sense::kLe, 0.0,
            {{x4, 50.0}, {x5, -9000.0}, {x6, -2.0}, {x7, 300.0}});
  m.add_row(Sense::kLe, 100.0, {{x6, 100.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -5.0, 1e-8);
  // And exactly, via the rational backend.
  ExactSolution e = solve_exact(m);
  ASSERT_EQ(e.status, Status::kOptimal);
  EXPECT_EQ(e.objective, num::Rational(-5));
}

TEST(SimplexEdge, WideRangeOfMagnitudes) {
  // min x + y with 1e6 x + y >= 1e6, x + 1e-3 y >= 1.
  Model m;
  int x = m.add_variable("x", 0.0, kInf, 1.0);
  int y = m.add_variable("y", 0.0, kInf, 1.0);
  m.add_row(Sense::kGe, 1e6, {{x, 1e6}, {y, 1.0}});
  m.add_row(Sense::kGe, 1.0, {{x, 1.0}, {y, 1e-3}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_LE(m.max_violation(s.x), 1e-5);
}

TEST(SimplexEdge, EqualityOnlySystemWithUniquePoint) {
  // Feasible region is the single point (1, 2); any objective.
  Model m;
  int x = m.add_variable("x", 0.0, kInf, -5.0);
  int y = m.add_variable("y", 0.0, kInf, 3.0);
  m.add_row(Sense::kEq, 3.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::kEq, 1.0, {{y, 1.0}, {x, -1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 1.0, 1e-8);
  EXPECT_NEAR(s.x[y], 2.0, 1e-8);
}

TEST(SimplexEdge, InfeasibleByBoundsAlone) {
  Model m;
  int x = m.add_variable("x", 4.0, 10.0, 1.0);
  m.add_row(Sense::kLe, 3.0, {{x, 1.0}});
  EXPECT_EQ(solve(m).status, Status::kInfeasible);
  EXPECT_EQ(solve_exact(m).status, Status::kInfeasible);
}

TEST(SimplexEdge, ZeroRhsDegenerateStart) {
  // Many constraints tight at the origin; optimum away from it.
  Model m;
  int x = m.add_variable("x", 0.0, kInf, -1.0);
  int y = m.add_variable("y", 0.0, kInf, -1.0);
  m.add_row(Sense::kGe, 0.0, {{x, 1.0}, {y, -1.0}});
  m.add_row(Sense::kGe, 0.0, {{x, -1.0}, {y, 1.0}});
  m.add_row(Sense::kLe, 10.0, {{x, 1.0}, {y, 1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -10.0, 1e-8);
}

// Larger randomized agreement sweep than the basic suite, including
// equality-heavy and degenerate systems.
class BigRandomLp : public ::testing::TestWithParam<int> {};

TEST_P(BigRandomLp, DoubleBackendIsFeasibleAndMatchesExact) {
  util::Rng rng(42000 + GetParam());
  const int nvars = static_cast<int>(rng.uniform_int(3, 8));
  const int nrows = static_cast<int>(rng.uniform_int(3, 10));
  Model m;
  for (int i = 0; i < nvars; ++i) {
    m.add_variable("v", 0.0,
                   rng.chance(0.4)
                       ? static_cast<double>(rng.uniform_int(0, 6))
                       : kInf,
                   static_cast<double>(rng.uniform_int(-3, 3)));
  }
  for (int r = 0; r < nrows; ++r) {
    std::vector<std::pair<int, double>> row;
    for (int i = 0; i < nvars; ++i) {
      if (rng.chance(0.6)) {
        row.push_back({i, static_cast<double>(rng.uniform_int(-2, 3))});
      }
    }
    if (row.empty()) row.push_back({0, 1.0});
    const Sense sense = rng.chance(0.3)   ? Sense::kEq
                        : rng.chance(0.5) ? Sense::kGe
                                          : Sense::kLe;
    // Zero rhs with positive probability: degenerate vertices.
    const double rhs = rng.chance(0.3)
                           ? 0.0
                           : static_cast<double>(rng.uniform_int(-5, 8));
    m.add_row(sense, rhs, row);
  }
  Solution d = solve(m);
  ExactSolution e = solve_exact(m);
  ASSERT_NE(d.status, Status::kIterLimit);
  EXPECT_EQ(d.status, e.status);
  if (d.status == Status::kOptimal) {
    EXPECT_NEAR(d.objective, e.objective.to_double(),
                1e-6 * (1.0 + std::abs(d.objective)));
    EXPECT_LE(m.max_violation(d.x), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BigRandomLp, ::testing::Range(0, 150));

}  // namespace
}  // namespace nat::lp
