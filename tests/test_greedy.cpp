#include "baselines/greedy.hpp"

#include <gtest/gtest.h>

#include "baselines/exact.hpp"
#include "helpers.hpp"

namespace nat::at::baselines {
namespace {

TEST(Greedy, ProducesMinimalFeasibleSolutions) {
  for (int id = 0; id < 15; ++id) {
    const Instance inst = testing::random_small(id);
    for (auto order : {DeactivationOrder::kLeftToRight,
                       DeactivationOrder::kRightToLeft,
                       DeactivationOrder::kRandom,
                       DeactivationOrder::kSparsestFirst,
                       DeactivationOrder::kDensestFirst}) {
      GreedyResult r = greedy_minimal_feasible(inst, order, 7);
      EXPECT_TRUE(is_minimal_feasible(inst, r.open_slots))
          << "instance " << id << ", order " << to_string(order);
      validate_schedule(inst, r.schedule);
      // Every slot of a minimal feasible set is used by every schedule.
      EXPECT_EQ(r.active_slots,
                static_cast<std::int64_t>(r.open_slots.size()));
    }
  }
}

TEST(Greedy, RandomOrderIsSeedDeterministic) {
  const Instance inst = testing::random_small(3);
  GreedyResult a =
      greedy_minimal_feasible(inst, DeactivationOrder::kRandom, 11);
  GreedyResult b =
      greedy_minimal_feasible(inst, DeactivationOrder::kRandom, 11);
  EXPECT_EQ(a.open_slots, b.open_slots);
}

TEST(Greedy, ExactOnSingleJob) {
  Instance inst;
  inst.g = 2;
  inst.jobs = {Job{0, 9, 4}};
  GreedyResult r = greedy_minimal_feasible(inst);
  EXPECT_EQ(r.active_slots, 4);
}

// The 3-approximation guarantee of [CKM] holds for every minimal
// feasible solution; verify against the exact optimum.
class GreedyRatio : public ::testing::TestWithParam<int> {};

TEST_P(GreedyRatio, AtMostThreeTimesOptimal) {
  const Instance inst = testing::random_small(GetParam());
  auto opt = exact_opt_laminar(inst);
  ASSERT_TRUE(opt.has_value());
  for (auto order : {DeactivationOrder::kLeftToRight,
                     DeactivationOrder::kRightToLeft,
                     DeactivationOrder::kRandom,
                     DeactivationOrder::kSparsestFirst,
                     DeactivationOrder::kDensestFirst}) {
    GreedyResult r =
        greedy_minimal_feasible(inst, order, 1234 + GetParam());
    EXPECT_LE(r.active_slots, 3 * opt->optimum)
        << to_string(order) << " on instance " << GetParam();
    EXPECT_GE(r.active_slots, opt->optimum);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GreedyRatio, ::testing::Range(0, 60));

}  // namespace
}  // namespace nat::at::baselines
