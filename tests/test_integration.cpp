// Cross-module integration tests: forests with several roots, the
// Section 6 reduction instances run through the 9/5 solver, large
// instances end to end, and independent re-verification of solver
// results.
#include <gtest/gtest.h>

#include "activetime/certificates.hpp"
#include "activetime/feasibility.hpp"
#include "activetime/solver.hpp"
#include "baselines/exact.hpp"
#include "baselines/exact_unit.hpp"
#include "baselines/greedy.hpp"
#include "helpers.hpp"
#include "reductions/transforms.hpp"

namespace nat::at {
namespace {

TEST(ForestSolving, MultipleRootsSolvedJointly) {
  // Three disjoint components; the solver handles the forest in one
  // pass and the result decomposes per component.
  Instance inst;
  inst.g = 2;
  inst.jobs = {
      Job{0, 4, 2},  Job{0, 4, 1},    // component A
      Job{10, 13, 3},                 // component B (rigid)
      Job{20, 26, 2}, Job{21, 23, 1}  // component C
  };
  ASSERT_TRUE(inst.is_laminar());
  NestedSolveResult r = solve_nested(inst);
  validate_schedule(inst, r.schedule);
  auto opt = baselines::exact_opt_laminar(inst);
  ASSERT_TRUE(opt.has_value());
  EXPECT_LE(static_cast<double>(r.active_slots),
            1.8 * static_cast<double>(opt->optimum) + 1e-9);
  // Component sums: per-component OPT is 2 + 3 + 2.
  EXPECT_EQ(opt->optimum, 7);
}

TEST(ForestSolving, RandomForests) {
  // Concatenate independent components at disjoint offsets.
  for (int id = 0; id < 12; ++id) {
    Instance forest;
    forest.g = 3;
    Time offset = 0;
    for (int c = 0; c < 3; ++c) {
      Instance comp = testing::random_small(3 * id + c, forest.g);
      const Time span = comp.horizon().hi;
      for (Job job : comp.jobs) {
        job.release += offset;
        job.deadline += offset;
        forest.jobs.push_back(job);
      }
      offset += span + 2;
    }
    ASSERT_TRUE(forest.is_laminar());
    NestedSolveResult r = solve_nested(forest);
    validate_schedule(forest, r.schedule);
    EXPECT_LE(static_cast<double>(r.active_slots), 1.8 * r.lp_value + 1e-5);
  }
}

TEST(ReductionInstances, NinthFifthsSolverHandlesThem) {
  // The hop-2 instances are laminar, so the paper's algorithm applies;
  // its output must respect the 9/5 bound against the reduction's
  // exactly-known optimum.
  red::PscInstance psc;
  psc.u = {{2, 1}, {3, 2}, {1, 1}};
  psc.v = {3, 2};
  psc.k = 2;
  const auto r = red::psc_to_active_time(psc);
  const auto min_k = red::psc_minimum_brute_force(psc);
  ASSERT_TRUE(min_k.has_value());
  const std::int64_t opt = r.non_special_slots + *min_k;

  NestedSolveResult solved = solve_nested(r.instance);
  validate_schedule(r.instance, solved.schedule);
  EXPECT_GE(solved.active_slots, opt);
  EXPECT_LE(static_cast<double>(solved.active_slots),
            1.8 * static_cast<double>(opt) + 1e-9);
}

TEST(LargeInstances, EndToEndStaysFeasibleAndCertified) {
  // A few hundred jobs: LP in the thousands of rows. No exact OPT —
  // the certificate is the LP bound and the flow-validated schedule.
  gen::RandomLaminarParams params;
  params.g = 8;
  params.max_depth = 4;
  params.max_children = 4;
  params.min_jobs_per_node = 2;
  params.max_jobs_per_node = 5;
  params.max_processing = 6;
  params.child_probability = 0.9;
  util::Rng rng(99);
  Instance inst;
  for (std::uint64_t attempt = 0;; ++attempt) {
    util::Rng r2(99 + attempt);
    inst = gen::random_laminar(params, r2);
    if (inst.num_jobs() >= 150) break;
  }
  NestedSolveResult r = solve_nested(inst);
  validate_schedule(inst, r.schedule);
  EXPECT_EQ(r.repairs, 0);
  EXPECT_LE(static_cast<double>(r.active_slots), 1.8 * r.lp_value + 1e-4);
  EXPECT_GE(r.lp_value, static_cast<double>(inst.total_volume()) /
                            static_cast<double>(inst.g) -
                            1e-6);
}

TEST(LargeInstances, ContendedAtScale) {
  gen::ContendedParams params;
  params.g = 16;
  params.min_groups = 12;
  params.max_groups = 12;
  params.max_long_jobs = 4;
  util::Rng rng(7);
  const Instance inst = gen::random_contended(params, rng);
  EXPECT_GE(inst.num_jobs(), 150);
  NestedSolveResult r = solve_nested(inst);
  validate_schedule(inst, r.schedule);
  EXPECT_LE(static_cast<double>(r.active_slots), 1.8 * r.lp_value + 1e-4);
}

TEST(IndependentVerification, SolverResultsRecheckedFromScratch) {
  // Re-verify a solver result using only public oracles: schedule
  // validity, slot count consistency, and the Lemma 4.1 certificate on
  // the rounded counts.
  for (int id = 0; id < 10; ++id) {
    const Instance inst = testing::mixed(id);
    if (inst.num_jobs() > 14) continue;
    NestedSolveResult r = solve_nested(inst);
    validate_schedule(inst, r.schedule);
    EXPECT_LE(r.schedule.active_slots(), r.active_slots);

    LaminarForest f = LaminarForest::build(inst);
    f.canonicalize();
    EXPECT_FALSE(find_violating_subset(f, r.x_rounded).has_value())
        << "rounded counts violate the Lemma 4.1 condition";
  }
}

TEST(TrimOption, NeverWorseAndStillValid) {
  for (int id = 0; id < 20; ++id) {
    const Instance inst = testing::mixed(id);
    NestedSolveResult paper = solve_nested(inst);
    NestedSolverOptions opt;
    opt.trim_rounded = true;
    NestedSolveResult trimmed = solve_nested(inst, opt);
    validate_schedule(inst, trimmed.schedule);
    EXPECT_LE(trimmed.active_slots, paper.active_slots);
  }
}

}  // namespace
}  // namespace nat::at
