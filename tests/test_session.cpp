// SolverSession: incremental delta re-solves must be bit-identical to
// from-scratch solves at every step, reuse untouched groups' state, and
// roll back cleanly on invalid deltas.
#include "activetime/session.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "activetime/feasibility.hpp"
#include "activetime/solver.hpp"
#include "helpers.hpp"
#include "instances/generators.hpp"
#include "obs/counters.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace nat::at {
namespace {

/// Multi-group instance: `batches` contended clusters shifted apart in
/// time, sharing one g. Each batch's long spanning job makes it a
/// single root window group; the gaps keep the groups disjoint.
Instance make_rolling(int batches, int seed, std::int64_t g = 3) {
  Instance out;
  out.g = g;
  Time offset = 0;
  for (int b = 0; b < batches; ++b) {
    gen::ContendedParams params;
    params.g = g;
    params.min_groups = 2;
    params.max_groups = 3;
    params.max_long_jobs = 1;
    util::Rng rng(1000 * seed + b);
    Instance batch = gen::random_contended(params, rng);
    Time hi = 0;
    for (Job j : batch.jobs) {
      j.release += offset;
      j.deadline += offset;
      hi = std::max(hi, j.deadline);
      out.jobs.push_back(j);
    }
    offset = hi + 2;
  }
  return out;
}

bool all_open_feasible(const Instance& instance) {
  if (instance.jobs.empty()) return true;
  const Interval h = instance.horizon();
  std::vector<Time> slots;
  slots.reserve(static_cast<std::size_t>(h.length()));
  for (Time t = h.lo; t < h.hi; ++t) slots.push_back(t);
  return feasible_with_slots(instance, slots);
}

/// Applies `delta` to a copy; true iff the result is a valid, laminar,
/// feasible instance (the walk only takes safe steps — rejected deltas
/// have their own dedicated tests).
bool delta_is_safe(const Instance& instance, const Delta& delta) {
  Instance cand = instance;
  try {
    if (const auto* a = std::get_if<AddJob>(&delta)) {
      cand.jobs.push_back(a->job);
    } else if (const auto* r = std::get_if<RemoveJob>(&delta)) {
      if (r->job < 0 || r->job >= static_cast<int>(cand.jobs.size())) {
        return false;
      }
      cand.jobs.erase(cand.jobs.begin() + r->job);
    } else if (const auto* e = std::get_if<ExtendWindow>(&delta)) {
      Job& j = cand.jobs.at(static_cast<std::size_t>(e->job));
      if (e->window.lo > j.release || e->window.hi < j.deadline) return false;
      j.release = e->window.lo;
      j.deadline = e->window.hi;
    } else if (const auto* s = std::get_if<ShrinkWindow>(&delta)) {
      Job& j = cand.jobs.at(static_cast<std::size_t>(s->job));
      if (s->window.lo < j.release || s->window.hi > j.deadline) return false;
      if (s->window.length() < j.processing) return false;
      j.release = s->window.lo;
      j.deadline = s->window.hi;
    }
    cand.validate();
  } catch (const util::CheckError&) {
    return false;
  }
  return cand.is_laminar() && !cand.jobs.empty() && all_open_feasible(cand);
}

std::optional<Delta> propose_delta(const Instance& instance, util::Rng& rng) {
  const int n = static_cast<int>(instance.jobs.size());
  if (n == 0) return std::nullopt;
  // Bias toward removal once the walk has grown the instance.
  const int kind = n > 60 ? static_cast<int>(rng.uniform_int(0, 5)) % 4 + 1
                          : static_cast<int>(rng.uniform_int(0, 3));
  const int pick = static_cast<int>(rng.uniform_int(0, n - 1));
  const Job& j = instance.jobs[static_cast<std::size_t>(pick)];
  Delta delta;
  switch (kind) {
    case 0: {
      // Duplicate an existing window (laminar by construction) with a
      // fresh processing time.
      Job add = j;
      add.processing = rng.uniform_int(1, std::max<Time>(1, j.window().length()));
      delta = AddJob{add};
      break;
    }
    case 2: {
      // Widen by a small amount on either side; non-laminar or
      // infeasible proposals are filtered by delta_is_safe.
      Interval w = j.window();
      w.lo -= rng.uniform_int(0, 2);
      w.hi += rng.uniform_int(0, 2);
      delta = ExtendWindow{pick, w};
      break;
    }
    case 3: {
      Interval w = j.window();
      const Time slack = w.length() - j.processing;
      if (slack <= 0) return std::nullopt;
      const Time cut_lo = rng.uniform_int(0, slack);
      const Time cut_hi = rng.uniform_int(0, slack - cut_lo);
      delta = ShrinkWindow{pick, Interval{w.lo + cut_lo, w.hi - cut_hi}};
      break;
    }
    default:
      delta = RemoveJob{pick};
      break;
  }
  if (!delta_is_safe(instance, delta)) return std::nullopt;
  return delta;
}

/// The contract: an incremental session equals a fresh session built on
/// the same instance, bit for bit.
void expect_matches_scratch(SolverSession& session) {
  SolverSession fresh(session.instance());
  const SessionResult& inc = session.solve();
  const SessionResult& scr = fresh.solve();
  ASSERT_EQ(inc.schedule.assignment, scr.schedule.assignment);
  EXPECT_EQ(inc.active_slots, scr.active_slots);
  EXPECT_EQ(inc.repairs, scr.repairs);
  EXPECT_NEAR(inc.lp_value, scr.lp_value,
              1e-6 * (1.0 + std::abs(scr.lp_value)));
}

void run_walk(Instance base, int steps, int seed) {
  SolverSession session(std::move(base));
  session.solve();
  util::Rng rng(seed);
  int applied = 0;
  for (int step = 0; step < steps; ++step) {
    auto delta = propose_delta(session.instance(), rng);
    if (!delta) continue;
    session.apply(*delta);
    ++applied;
    expect_matches_scratch(session);
    if (applied % 25 == 0) {
      // The per-group LP optima must sum to the global LP optimum
      // (the LP is block-diagonal across window groups).
      const double global = strong_lp_value(session.instance());
      EXPECT_NEAR(session.solve().lp_value, global,
                  1e-6 * (1.0 + std::abs(global)));
    }
  }
  // The walk must actually exercise the machinery.
  EXPECT_GT(applied, steps / 4);
  EXPECT_GT(session.stats().groups_reused, 0);
}

TEST(WindowGroups, SplitsDisjointClustersAndKeepsOrder) {
  Instance instance;
  instance.g = 2;
  instance.jobs = {Job{10, 14, 2}, Job{0, 4, 1}, Job{2, 4, 1}, Job{20, 22, 1},
                   Job{11, 13, 1}};
  const auto groups = window_groups(instance);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<int>{1, 2}));
  EXPECT_EQ(groups[1], (std::vector<int>{0, 4}));
  EXPECT_EQ(groups[2], (std::vector<int>{3}));
}

TEST(WindowGroups, TouchingHalfOpenWindowsStaySeparate) {
  Instance instance;
  instance.g = 1;
  instance.jobs = {Job{0, 5, 1}, Job{5, 8, 1}};
  EXPECT_EQ(window_groups(instance).size(), 2u);
}

TEST(Session, MatchesSolveNestedOnFixture) {
  const Instance instance = testing::small_nested();
  SolverSession session(instance);
  const SessionResult& res = session.solve();
  const NestedSolveResult nested = solve_nested(instance);
  EXPECT_NEAR(res.lp_value, nested.lp_value, 1e-6);
  // Different LP vertices can round differently, so only the sandwich
  // is required against the global pipeline; identity is asserted
  // against fresh sessions throughout this file.
  EXPECT_GE(res.active_slots, static_cast<std::int64_t>(res.lp_value - 1e-6));
  validate_schedule(instance, res.schedule);
}

TEST(Session, RandomWalk1kStepsSmall) {
  run_walk(make_rolling(3, 7, 3), 1000, 42);
}

TEST(Session, RandomWalkMediumRolling) {
  run_walk(make_rolling(6, 11, 2), 150, 43);
}

TEST(Session, RandomWalkUnitJobs) {
  gen::RandomLaminarParams params;
  params.g = 2;
  util::Rng rng(99);
  Instance a = gen::random_laminar_unit(params, rng);
  run_walk(std::move(a), 300, 44);
}

TEST(Session, UntouchedGroupsReuseOracleNetworks) {
  SolverSession session(make_rolling(4, 3, 2));
  session.solve();
  const auto groups = window_groups(session.instance());
  ASSERT_GE(groups.size(), 3u);
  const std::int64_t builds0 = session.stats().oracle_builds;
  const std::int64_t reused0 = session.stats().groups_reused;
  const std::int64_t obs0 = obs::counter("at.oracle.builds").value();

  // Touch exactly one group by duplicating one of its windows.
  const int victim = groups.front().front();
  const Job j = session.instance().jobs[static_cast<std::size_t>(victim)];
  session.apply(AddJob{Job{j.release, j.deadline, 1}});
  const std::int64_t obs_incremental =
      obs::counter("at.oracle.builds").value() - obs0;

  // Exactly one group was re-solved: one new session-owned oracle
  // network, all other groups served from cache.
  EXPECT_EQ(session.stats().oracle_builds, builds0 + 1);
  EXPECT_EQ(session.stats().groups_reused,
            reused0 + static_cast<std::int64_t>(groups.size()) - 1);

  // Observable reuse invariant: a from-scratch solve of the same
  // instance builds networks for every group (plus its ceiling
  // probes); the incremental apply only paid for the dirty group.
  const std::int64_t obs1 = obs::counter("at.oracle.builds").value();
  SolverSession scratch(session.instance());
  scratch.solve();
  const std::int64_t obs_scratch =
      obs::counter("at.oracle.builds").value() - obs1;
  EXPECT_LT(obs_incremental, obs_scratch);
  expect_matches_scratch(session);
}

TEST(Session, WarmStartLadderEngagesOnWindowEdit) {
  Instance instance = testing::contended(1);
  SolverSession session(instance);
  session.solve();
  // Find a job with shrink slack and shrink it: same group, new model.
  int pick = -1;
  for (int i = 0; i < session.num_jobs(); ++i) {
    const Job& j = session.instance().jobs[static_cast<std::size_t>(i)];
    if (j.window().length() > j.processing) {
      pick = i;
      break;
    }
  }
  ASSERT_GE(pick, 0);
  const Job j = session.instance().jobs[static_cast<std::size_t>(pick)];
  session.apply(ShrinkWindow{pick, Interval{j.release, j.deadline}});
  // A same-window "shrink" is a content no-op only if nothing changed;
  // either way the re-solve must have consulted the warm ladder or hit
  // the cache. Now do a real edit when possible.
  const SessionStats& st = session.stats();
  EXPECT_GE(st.lp_warm_hits + st.lp_warm_repairs + st.lp_cold_fallbacks +
                st.groups_reused,
            1);
  expect_matches_scratch(session);
}

TEST(Session, AddThenRemoveRestoresCachedResult) {
  SolverSession session(make_rolling(3, 5, 2));
  const SessionResult first = session.solve();
  const std::int64_t resolved0 = session.stats().groups_resolved;
  const Job j = session.instance().jobs[0];
  session.apply(AddJob{Job{j.release, j.deadline, 1}});
  const int added = session.num_jobs() - 1;
  session.apply(RemoveJob{added});
  const SessionResult& back = session.solve();
  EXPECT_EQ(back.schedule.assignment, first.schedule.assignment);
  EXPECT_EQ(back.active_slots, first.active_slots);
  // The return trip is served from the content-addressed cache: the
  // second apply resolves at most the one group the add had dirtied.
  EXPECT_LE(session.stats().groups_resolved, resolved0 + 2);
}

TEST(Session, InvalidDeltaRollsBack) {
  SolverSession session(testing::small_nested());
  const SessionResult before = session.solve();
  const int n = session.num_jobs();
  EXPECT_THROW(session.apply(RemoveJob{-5}), util::CheckError);
  EXPECT_THROW(session.apply(RemoveJob{n}), util::CheckError);
  EXPECT_THROW(
      session.apply(ExtendWindow{0, Interval{3, 4}}),  // does not contain old
      util::CheckError);
  EXPECT_THROW(
      session.apply(ShrinkWindow{0, Interval{-1, 11}}),  // not contained
      util::CheckError);
  EXPECT_EQ(session.num_jobs(), n);
  EXPECT_EQ(session.solve().schedule.assignment, before.schedule.assignment);
}

TEST(Session, InfeasibleDeltaRollsBack) {
  Instance instance;
  instance.g = 1;
  instance.jobs = {Job{0, 2, 2}};  // saturated window
  SolverSession session(instance);
  session.solve();
  EXPECT_THROW(session.apply(AddJob{Job{0, 2, 1}}), util::CheckError);
  EXPECT_EQ(session.num_jobs(), 1);
  expect_matches_scratch(session);
}

// Robust-mode delta (docs/ROBUST.md): Retime rewrites a job's
// uncertainty box around the unchanged nominal processing time. The
// nominal schedule is untouched by construction (solvers only read
// `processing`), invalid boxes roll back, and lo = hi = 0 clears the
// box again.
TEST(Session, RetimeDeltaWidensNarrowsAndClears) {
  SolverSession session(testing::small_nested());
  const SessionResult before = session.solve();

  // Widen: nominal p of job 0 is 3; box it to [1, 3].
  const SessionResult& widened = session.apply(Retime{0, 1, 3});
  EXPECT_EQ(widened.schedule.assignment, before.schedule.assignment);
  EXPECT_EQ(widened.active_slots, before.active_slots);
  EXPECT_TRUE(session.instance().has_processing_intervals());

  // Narrow the same box.
  session.apply(Retime{0, 2, 3});
  EXPECT_EQ(session.instance().jobs[0].processing_lo, 2);

  // Invalid boxes roll back: out-of-range index, box missing the
  // nominal value, hi corner overflowing the window.
  EXPECT_THROW(session.apply(Retime{99, 1, 3}), util::CheckError);
  EXPECT_THROW(session.apply(Retime{0, 1, 2}), util::CheckError);   // p=3 > hi
  EXPECT_THROW(session.apply(Retime{2, 1, 5}), util::CheckError);   // window [2,3)
  EXPECT_EQ(session.instance().jobs[0].processing_lo, 2);

  // Clear: back to a point instance, bit-identical result.
  session.apply(Retime{0, 0, 0});
  EXPECT_FALSE(session.instance().has_processing_intervals());
  EXPECT_EQ(session.solve().schedule.assignment, before.schedule.assignment);
}

TEST(Session, NonLaminarDeltaDispatchesToGeneral) {
  Instance instance;
  instance.g = 2;
  instance.jobs = {Job{0, 4, 1}, Job{4, 8, 1}};
  SolverSession session(instance);
  EXPECT_EQ(session.solve().backend, Backend::kNested);
  // The crossing add used to be rejected; it now merges the two groups
  // and dispatches the merged group to the general 2-approx backend.
  const SessionResult& res = session.apply(AddJob{Job{2, 6, 1}});
  EXPECT_EQ(session.num_jobs(), 3);
  EXPECT_EQ(res.backend, Backend::kGeneral);
  validate_schedule(session.instance(), res.schedule);
  expect_matches_scratch(session);
  // Removing the crossing job restores the all-laminar (nested) path.
  const SessionResult& back = session.apply(RemoveJob{2});
  EXPECT_EQ(back.backend, Backend::kNested);
  expect_matches_scratch(session);
}

}  // namespace
}  // namespace nat::at
