#include "flow/dinic.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace nat::flow {
namespace {

using util::Rng;

TEST(Dinic, SingleEdge) {
  MaxFlowGraph g(2);
  int e = g.add_edge(0, 1, 7);
  EXPECT_EQ(g.max_flow(0, 1), 7);
  EXPECT_EQ(g.flow_on(e), 7);
  EXPECT_EQ(g.capacity_on(e), 7);
}

TEST(Dinic, NoPathMeansZero) {
  MaxFlowGraph g(3);
  g.add_edge(0, 1, 5);
  EXPECT_EQ(g.max_flow(0, 2), 0);
}

TEST(Dinic, ClassicDiamond) {
  // Diamond 0 -> {1, 2} -> 3 with a cross edge 1 -> 2.
  MaxFlowGraph g(4);
  g.add_edge(0, 1, 10);
  g.add_edge(0, 2, 10);
  g.add_edge(1, 3, 10);
  g.add_edge(2, 3, 10);
  g.add_edge(1, 2, 1);
  EXPECT_EQ(g.max_flow(0, 3), 20);
}

TEST(Dinic, ResetRestoresCapacities) {
  MaxFlowGraph g(2);
  int e = g.add_edge(0, 1, 4);
  EXPECT_EQ(g.max_flow(0, 1), 4);
  g.reset();
  EXPECT_EQ(g.flow_on(e), 0);
  EXPECT_EQ(g.max_flow(0, 1), 4);
}

TEST(Dinic, RejectsBadArguments) {
  MaxFlowGraph g(2);
  EXPECT_THROW(g.add_edge(0, 5, 1), util::CheckError);
  EXPECT_THROW(g.add_edge(0, 1, -1), util::CheckError);
  EXPECT_THROW(g.max_flow(0, 0), util::CheckError);
}

TEST(Dinic, MinCutSeparatesAndMatchesFlowValue) {
  MaxFlowGraph g(4);
  g.add_edge(0, 1, 3);
  g.add_edge(0, 2, 2);
  g.add_edge(1, 3, 2);
  g.add_edge(2, 3, 3);
  g.add_edge(1, 2, 5);
  // 2 via 0→1→3, 2 via 0→2→3, 1 via 0→1→2→3.
  const std::int64_t f = g.max_flow(0, 3);
  EXPECT_EQ(f, 5);
  auto side = g.min_cut_source_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[3]);
}

// Property sweep: Dinic equals the Edmonds–Karp reference on random
// graphs, and the min cut certifies optimality (max-flow = min-cut).
class RandomFlowGraphs : public ::testing::TestWithParam<int> {};

TEST_P(RandomFlowGraphs, MatchesReferenceAndCutCertificate) {
  Rng rng(500 + GetParam());
  const int n = static_cast<int>(rng.uniform_int(2, 9));
  const int edges = static_cast<int>(rng.uniform_int(1, 24));
  std::vector<std::tuple<int, int, std::int64_t>> edge_list;
  MaxFlowGraph g(n);
  std::vector<int> ids;
  for (int e = 0; e < edges; ++e) {
    int u = static_cast<int>(rng.uniform_int(0, n - 1));
    int v = static_cast<int>(rng.uniform_int(0, n - 1));
    if (u == v) continue;
    std::int64_t c = rng.uniform_int(0, 12);
    edge_list.emplace_back(u, v, c);
    ids.push_back(g.add_edge(u, v, c));
  }
  const int s = 0;
  const int t = n - 1;
  const std::int64_t f = g.max_flow(s, t);
  EXPECT_EQ(f, edmonds_karp_reference(n, edge_list, s, t));

  // Certificate: capacity of the residual-reachability cut equals f.
  auto side = g.min_cut_source_side(s);
  EXPECT_TRUE(side[s]);
  EXPECT_FALSE(side[t]);
  std::int64_t cut = 0;
  for (std::size_t k = 0; k < edge_list.size(); ++k) {
    auto [u, v, c] = edge_list[k];
    if (side[u] && !side[v]) cut += c;
  }
  EXPECT_EQ(cut, f);

  // Flow conservation at interior nodes.
  std::vector<std::int64_t> balance(n, 0);
  for (std::size_t k = 0; k < ids.size(); ++k) {
    auto [u, v, c] = edge_list[k];
    const std::int64_t fl = g.flow_on(ids[k]);
    EXPECT_GE(fl, 0);
    EXPECT_LE(fl, c);
    balance[u] -= fl;
    balance[v] += fl;
  }
  for (int v = 0; v < n; ++v) {
    if (v == s || v == t) continue;
    EXPECT_EQ(balance[v], 0) << "conservation at node " << v;
  }
  EXPECT_EQ(balance[t], f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomFlowGraphs, ::testing::Range(0, 150));

// --- incremental reuse: set_capacity + warm-started max_flow -------------

TEST(DinicIncremental, IncreaseWidensResidual) {
  MaxFlowGraph g(2);
  const int e = g.add_edge(0, 1, 4);
  EXPECT_EQ(g.max_flow(0, 1), 4);
  EXPECT_EQ(g.set_capacity(e, 9), 0);
  EXPECT_EQ(g.capacity_on(e), 9);
  EXPECT_EQ(g.max_flow(0, 1), 5);  // warm delta, not the total
  EXPECT_EQ(g.flow_value(), 9);
}

TEST(DinicIncremental, SlackDecreaseCancelsNothing) {
  MaxFlowGraph g(3);
  const int a = g.add_edge(0, 1, 10);
  g.add_edge(1, 2, 4);
  EXPECT_EQ(g.max_flow(0, 2), 4);
  // Only 4 units cross edge `a`; capacity 6 still fits them.
  EXPECT_EQ(g.set_capacity(a, 6), 0);
  EXPECT_EQ(g.flow_value(), 4);
  EXPECT_EQ(g.max_flow(0, 2), 0);
}

TEST(DinicIncremental, DecreaseReroutesThroughParallelEdge) {
  // Two parallel middle edges: pinning one to zero reroutes its flow
  // through the other, so the value is preserved and nothing cancels.
  MaxFlowGraph g(4);
  g.add_edge(0, 1, 4);
  const int a = g.add_edge(1, 2, 4);
  const int b = g.add_edge(1, 2, 4);
  g.add_edge(2, 3, 4);
  EXPECT_EQ(g.max_flow(0, 3), 4);
  EXPECT_EQ(g.set_capacity(a, 0), 0);
  EXPECT_EQ(g.flow_value(), 4);
  EXPECT_EQ(g.flow_on(a), 0);
  EXPECT_EQ(g.flow_on(b), 4);
  EXPECT_EQ(g.max_flow(0, 3), 0);
}

TEST(DinicIncremental, DecreaseCancelsStrandedFlow) {
  // Diamond with no cross edges: shrinking one branch below its flow
  // strands the excess, which must be cancelled end to end.
  MaxFlowGraph g(4);
  g.add_edge(0, 1, 10);
  g.add_edge(0, 2, 10);
  const int e = g.add_edge(1, 3, 10);
  g.add_edge(2, 3, 10);
  EXPECT_EQ(g.max_flow(0, 3), 20);
  EXPECT_EQ(g.set_capacity(e, 4), 6);
  EXPECT_EQ(g.flow_value(), 14);
  EXPECT_EQ(g.flow_on(e), 4);
  EXPECT_EQ(g.max_flow(0, 3), 0);  // already maximal at the new caps
  // Restoring the capacity recovers the lost flow as a warm delta.
  EXPECT_EQ(g.set_capacity(e, 10), 0);
  EXPECT_EQ(g.max_flow(0, 3), 6);
  EXPECT_EQ(g.flow_value(), 20);
}

TEST(DinicIncremental, ResetFlowKeepsRetunedCapacities) {
  MaxFlowGraph g(3);
  const int a = g.add_edge(0, 1, 5);
  const int b = g.add_edge(1, 2, 3);
  EXPECT_EQ(g.max_flow(0, 2), 3);
  EXPECT_EQ(g.set_capacity(b, 1), 2);
  g.reset_flow_keep_topology();
  EXPECT_EQ(g.flow_value(), 0);
  EXPECT_EQ(g.flow_on(a), 0);
  EXPECT_EQ(g.flow_on(b), 0);
  EXPECT_EQ(g.capacity_on(b), 1);  // retunes survive the flow reset
  EXPECT_EQ(g.max_flow(0, 2), 1);
}

TEST(DinicIncremental, RejectsBadRetunes) {
  MaxFlowGraph g(2);
  const int e = g.add_edge(0, 1, 3);
  EXPECT_THROW(g.set_capacity(e + 1, 3), util::CheckError);  // reverse id
  EXPECT_THROW(g.set_capacity(e, -1), util::CheckError);
  EXPECT_THROW(g.set_capacity(99, 1), util::CheckError);
}

// Property sweep: a warm graph under random capacity retunes always
// agrees with a fresh Edmonds–Karp solve at the current capacities, and
// the retained flow stays a valid flow after every retune.
class RandomRetunes : public ::testing::TestWithParam<int> {};

TEST_P(RandomRetunes, WarmRetunedFlowMatchesFreshSolve) {
  Rng rng(900 + GetParam());
  const int n = static_cast<int>(rng.uniform_int(3, 9));
  const int s = 0;
  const int t = n - 1;
  MaxFlowGraph g(n);
  std::vector<std::tuple<int, int, std::int64_t>> edge_list;
  std::vector<int> ids;
  const int edges = static_cast<int>(rng.uniform_int(4, 20));
  for (int e = 0; e < edges; ++e) {
    const int u = static_cast<int>(rng.uniform_int(0, n - 1));
    const int v = static_cast<int>(rng.uniform_int(0, n - 1));
    if (u == v) continue;
    const std::int64_t c = rng.uniform_int(0, 10);
    edge_list.emplace_back(u, v, c);
    ids.push_back(g.add_edge(u, v, c));
  }
  if (ids.empty()) {
    edge_list.emplace_back(0, 1, 5);
    ids.push_back(g.add_edge(0, 1, 5));
  }
  g.max_flow(s, t);

  for (int step = 0; step < 30; ++step) {
    const std::size_t k = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
    const std::int64_t cap = rng.uniform_int(0, 10);
    std::get<2>(edge_list[k]) = cap;
    const std::int64_t cancelled = g.set_capacity(ids[k], cap);
    ASSERT_GE(cancelled, 0);
    g.max_flow(s, t);
    ASSERT_EQ(g.flow_value(), edmonds_karp_reference(n, edge_list, s, t))
        << "seed " << GetParam() << " step " << step;

    // The retained flow is a real flow: within bounds and conserved.
    std::vector<std::int64_t> balance(n, 0);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const auto [u, v, c] = edge_list[i];
      const std::int64_t fl = g.flow_on(ids[i]);
      ASSERT_GE(fl, 0);
      ASSERT_LE(fl, c);
      balance[u] -= fl;
      balance[v] += fl;
    }
    for (int v = 0; v < n; ++v) {
      if (v == s || v == t) continue;
      ASSERT_EQ(balance[v], 0) << "conservation at node " << v;
    }
    ASSERT_EQ(balance[t], g.flow_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomRetunes, ::testing::Range(0, 60));

}  // namespace
}  // namespace nat::flow
