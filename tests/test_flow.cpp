#include "flow/dinic.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace nat::flow {
namespace {

using util::Rng;

TEST(Dinic, SingleEdge) {
  MaxFlowGraph g(2);
  int e = g.add_edge(0, 1, 7);
  EXPECT_EQ(g.max_flow(0, 1), 7);
  EXPECT_EQ(g.flow_on(e), 7);
  EXPECT_EQ(g.capacity_on(e), 7);
}

TEST(Dinic, NoPathMeansZero) {
  MaxFlowGraph g(3);
  g.add_edge(0, 1, 5);
  EXPECT_EQ(g.max_flow(0, 2), 0);
}

TEST(Dinic, ClassicDiamond) {
  // Diamond 0 -> {1, 2} -> 3 with a cross edge 1 -> 2.
  MaxFlowGraph g(4);
  g.add_edge(0, 1, 10);
  g.add_edge(0, 2, 10);
  g.add_edge(1, 3, 10);
  g.add_edge(2, 3, 10);
  g.add_edge(1, 2, 1);
  EXPECT_EQ(g.max_flow(0, 3), 20);
}

TEST(Dinic, ResetRestoresCapacities) {
  MaxFlowGraph g(2);
  int e = g.add_edge(0, 1, 4);
  EXPECT_EQ(g.max_flow(0, 1), 4);
  g.reset();
  EXPECT_EQ(g.flow_on(e), 0);
  EXPECT_EQ(g.max_flow(0, 1), 4);
}

TEST(Dinic, RejectsBadArguments) {
  MaxFlowGraph g(2);
  EXPECT_THROW(g.add_edge(0, 5, 1), util::CheckError);
  EXPECT_THROW(g.add_edge(0, 1, -1), util::CheckError);
  EXPECT_THROW(g.max_flow(0, 0), util::CheckError);
}

TEST(Dinic, MinCutSeparatesAndMatchesFlowValue) {
  MaxFlowGraph g(4);
  g.add_edge(0, 1, 3);
  g.add_edge(0, 2, 2);
  g.add_edge(1, 3, 2);
  g.add_edge(2, 3, 3);
  g.add_edge(1, 2, 5);
  // 2 via 0→1→3, 2 via 0→2→3, 1 via 0→1→2→3.
  const std::int64_t f = g.max_flow(0, 3);
  EXPECT_EQ(f, 5);
  auto side = g.min_cut_source_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[3]);
}

// Property sweep: Dinic equals the Edmonds–Karp reference on random
// graphs, and the min cut certifies optimality (max-flow = min-cut).
class RandomFlowGraphs : public ::testing::TestWithParam<int> {};

TEST_P(RandomFlowGraphs, MatchesReferenceAndCutCertificate) {
  Rng rng(500 + GetParam());
  const int n = static_cast<int>(rng.uniform_int(2, 9));
  const int edges = static_cast<int>(rng.uniform_int(1, 24));
  std::vector<std::tuple<int, int, std::int64_t>> edge_list;
  MaxFlowGraph g(n);
  std::vector<int> ids;
  for (int e = 0; e < edges; ++e) {
    int u = static_cast<int>(rng.uniform_int(0, n - 1));
    int v = static_cast<int>(rng.uniform_int(0, n - 1));
    if (u == v) continue;
    std::int64_t c = rng.uniform_int(0, 12);
    edge_list.emplace_back(u, v, c);
    ids.push_back(g.add_edge(u, v, c));
  }
  const int s = 0;
  const int t = n - 1;
  const std::int64_t f = g.max_flow(s, t);
  EXPECT_EQ(f, edmonds_karp_reference(n, edge_list, s, t));

  // Certificate: capacity of the residual-reachability cut equals f.
  auto side = g.min_cut_source_side(s);
  EXPECT_TRUE(side[s]);
  EXPECT_FALSE(side[t]);
  std::int64_t cut = 0;
  for (std::size_t k = 0; k < edge_list.size(); ++k) {
    auto [u, v, c] = edge_list[k];
    if (side[u] && !side[v]) cut += c;
  }
  EXPECT_EQ(cut, f);

  // Flow conservation at interior nodes.
  std::vector<std::int64_t> balance(n, 0);
  for (std::size_t k = 0; k < ids.size(); ++k) {
    auto [u, v, c] = edge_list[k];
    const std::int64_t fl = g.flow_on(ids[k]);
    EXPECT_GE(fl, 0);
    EXPECT_LE(fl, c);
    balance[u] -= fl;
    balance[v] += fl;
  }
  for (int v = 0; v < n; ++v) {
    if (v == s || v == t) continue;
    EXPECT_EQ(balance[v], 0) << "conservation at node " << v;
  }
  EXPECT_EQ(balance[t], f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomFlowGraphs, ::testing::Range(0, 150));

}  // namespace
}  // namespace nat::flow
