// FeasibilityOracle: the incremental oracle must be indistinguishable
// from fresh feasible_with_counts solves across arbitrary query
// sequences — that equivalence is what lets the solver, the exact
// baseline, and opt_bounds share one warm network. Also covers the
// parallel ceiling sweep (deterministic for every worker count) and
// thread-pool reentrancy.
#include "activetime/oracle.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "activetime/feasibility.hpp"
#include "activetime/opt_bounds.hpp"
#include "activetime/tree.hpp"
#include "helpers.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nat::at {
namespace {

using util::Rng;

LaminarForest forest_for(const Instance& instance) {
  LaminarForest f = LaminarForest::build(instance);
  f.canonicalize();
  return f;
}

TEST(Oracle, AgreesOnSmallNested) {
  const LaminarForest f = forest_for(testing::small_nested());
  FeasibilityOracle oracle(f);
  const int m = f.num_nodes();

  std::vector<Time> closed(m, 0);
  EXPECT_FALSE(oracle.feasible(closed));
  EXPECT_EQ(oracle.deficit(), oracle.volume());

  std::vector<Time> full(m);
  for (int i = 0; i < m; ++i) full[i] = f.node(i).length();
  EXPECT_TRUE(oracle.feasible(full));
  EXPECT_EQ(oracle.deficit(), 0);
  EXPECT_EQ(oracle.current_open(), full);
}

TEST(Oracle, RejectsOutOfRangeCounts) {
  const LaminarForest f = forest_for(testing::small_nested());
  FeasibilityOracle oracle(f);
  std::vector<Time> open(f.num_nodes(), 0);
  open[0] = f.node(0).length() + 1;
  EXPECT_THROW(oracle.feasible(open), util::CheckError);
  open[0] = -1;
  EXPECT_THROW(oracle.feasible(open), util::CheckError);
  EXPECT_THROW(oracle.feasible(std::vector<Time>(f.num_nodes() + 1, 0)),
               util::CheckError);
}

/// Random increment/decrement walk: at every step the warm oracle must
/// return exactly what a fresh region-network solve returns. The sweep
/// below runs 10 walks x 100 steps = 1k differential checks over the
/// mixed generator family (loose laminar + contended).
class OracleWalks : public ::testing::TestWithParam<int> {};

TEST_P(OracleWalks, MatchesFreshSolveOnRandomWalk) {
  const LaminarForest f = forest_for(testing::mixed(GetParam()));
  const int m = f.num_nodes();
  FeasibilityOracle oracle(f);
  Rng rng(7100 + GetParam());

  std::vector<Time> open(m, 0);
  for (int step = 0; step < 100; ++step) {
    const int i = static_cast<int>(rng.uniform_int(0, m - 1));
    const Time len = f.node(i).length();
    if (rng.uniform_int(0, 1) == 1) {
      if (open[i] < len) ++open[i];
    } else {
      if (open[i] > 0) --open[i];
    }
    const bool fresh = feasible_with_counts(f, open);
    ASSERT_EQ(oracle.feasible(open), fresh)
        << "instance " << GetParam() << " step " << step;
    ASSERT_EQ(oracle.deficit() == 0, fresh);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OracleWalks, ::testing::Range(0, 10));

/// Probes answer the +1 question without disturbing the oracle: the
/// result equals a fresh solve on the incremented vector, and the
/// current vector's answer is unchanged afterwards.
class OracleProbes : public ::testing::TestWithParam<int> {};

TEST_P(OracleProbes, ProbeMatchesFreshAndLeavesStateIntact) {
  const LaminarForest f = forest_for(testing::mixed(GetParam()));
  const int m = f.num_nodes();
  FeasibilityOracle oracle(f);
  Rng rng(7400 + GetParam());

  // A mid-density vector so probes see both answers.
  std::vector<Time> open(m, 0);
  for (int i = 0; i < m; ++i) {
    open[i] = rng.uniform_int(0, f.node(i).length());
  }
  const bool base = oracle.feasible(open);

  for (int i = 0; i < m; ++i) {
    if (open[i] >= f.node(i).length()) continue;
    ++open[i];
    const bool fresh = feasible_with_counts(f, open);
    --open[i];
    ASSERT_EQ(oracle.feasible_if_incremented(i), fresh)
        << "instance " << GetParam() << " region " << i;
    // State invariance: same vector, same answer, no rebuild.
    ASSERT_EQ(oracle.feasible(open), base);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OracleProbes, ::testing::Range(0, 10));

/// increment_can_help is a sound filter: when it rules a region out,
/// the incremented vector is provably still infeasible.
class OracleCutFilter : public ::testing::TestWithParam<int> {};

TEST_P(OracleCutFilter, RuledOutIncrementsNeverHelp) {
  const LaminarForest f = forest_for(testing::mixed(GetParam()));
  const int m = f.num_nodes();
  FeasibilityOracle oracle(f);
  Rng rng(7700 + GetParam());

  std::vector<Time> open(m, 0);
  for (int i = 0; i < m; ++i) {
    open[i] = rng.uniform_int(0, f.node(i).length() / 2);
  }
  if (oracle.feasible(open)) return;  // filter only matters when short

  for (int i = 0; i < m; ++i) {
    if (open[i] >= f.node(i).length()) continue;
    if (oracle.increment_can_help(i)) continue;
    ++open[i];
    ASSERT_FALSE(feasible_with_counts(f, open))
        << "cut filter wrongly ruled out region " << i;
    --open[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OracleCutFilter, ::testing::Range(0, 10));

TEST(Oracle, SubtreeScopeMatchesFullOracleOnSingleTree) {
  // small_nested canonicalizes to a single tree, so the root-scoped
  // oracle sees exactly the same jobs and regions as the full one.
  const LaminarForest f = forest_for(testing::small_nested());
  ASSERT_EQ(f.roots().size(), 1u);
  const int root = f.roots()[0];
  FeasibilityOracle full(f);
  FeasibilityOracle scoped(f, root);
  EXPECT_EQ(full.volume(), scoped.volume());

  Rng rng(8000);
  std::vector<Time> open(f.num_nodes(), 0);
  for (int step = 0; step < 50; ++step) {
    const int i = static_cast<int>(rng.uniform_int(0, f.num_nodes() - 1));
    open[i] = rng.uniform_int(0, f.node(i).length());
    ASSERT_EQ(scoped.feasible(open), full.feasible(open)) << "step " << step;
  }
}

// --- parallel ceiling sweep ----------------------------------------------

TEST(CeilingSweep, DeterministicAcrossWorkerCountsAndGrains) {
  for (int id : {0, 1, 2, 3}) {
    const LaminarForest f = forest_for(testing::mixed(id));
    const int m = f.num_nodes();
    std::vector<int> serial(m);
    for (int i = 0; i < m; ++i) serial[i] = opt_lower_bound(f, i);

    for (std::size_t workers : {1u, 2u, 4u, 8u}) {
      util::ThreadPool pool(workers);
      for (std::size_t grain : {1u, 4u, 16u}) {
        std::vector<int> pooled(m);
        util::parallel_for(
            pool, 0, static_cast<std::size_t>(m),
            [&](std::size_t i) {
              pooled[i] = opt_lower_bound(f, static_cast<int>(i));
            },
            grain);
        ASSERT_EQ(pooled, serial)
            << "instance " << id << " workers " << workers << " grain "
            << grain;
      }
    }
  }
}

TEST(CeilingSweep, NestedParallelForRunsInlineWithoutDeadlock) {
  util::ThreadPool pool(4);
  std::atomic<int> count{0};
  util::parallel_for(pool, 0, 8, [&](std::size_t) {
    // From inside a worker this must run inline (submitting back to the
    // pool and waiting would deadlock once all workers are blocked).
    util::parallel_for(pool, 0, 8, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(CeilingSweep, SolverIdenticalAcrossGlobalPoolUse) {
  // End-to-end determinism: the strong LP's ceiling rows are built
  // through the global pool; the per-node bounds must not depend on
  // who computed them. (The global pool's size is fixed per process,
  // so this guards the serial-merge contract rather than a specific
  // worker count.)
  const LaminarForest f = forest_for(testing::mixed(1));
  const int m = f.num_nodes();
  std::vector<int> first(m), second(m);
  util::parallel_for(0, static_cast<std::size_t>(m), [&](std::size_t i) {
    first[i] = opt_lower_bound(f, static_cast<int>(i));
  });
  for (int i = 0; i < m; ++i) second[i] = opt_lower_bound(f, i);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace nat::at
