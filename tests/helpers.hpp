// Shared fixtures for the active-time test suites.
#pragma once

#include <vector>

#include "activetime/instance.hpp"
#include "instances/generators.hpp"
#include "util/rng.hpp"

namespace nat::at::testing {

/// Small laminar instance used across suites:
///   root window [0, 10), child [2, 5), grandchild [2, 3), sibling [6, 9).
inline Instance small_nested() {
  Instance instance;
  instance.g = 2;
  instance.jobs = {
      Job{0, 10, 3},  // root window
      Job{2, 5, 2},   // child
      Job{2, 3, 1},   // grandchild
      Job{6, 9, 2},   // sibling child
      Job{6, 9, 1},
  };
  return instance;
}

/// A non-laminar (crossing windows) instance.
inline Instance crossing() {
  Instance instance;
  instance.g = 2;
  instance.jobs = {Job{0, 4, 1}, Job{2, 6, 1}};
  return instance;
}

/// Contended instance (near-saturated groups + long spanning jobs),
/// the regime where the strengthened LP is genuinely fractional.
inline Instance contended(int id) {
  gen::ContendedParams params;
  util::Rng knobs(5000 + id);
  params.g = knobs.uniform_int(2, 6);
  params.min_groups = 2;
  params.max_groups = 5;
  params.unit_slack = knobs.uniform_int(0, 2);
  params.max_long_jobs = static_cast<int>(knobs.uniform_int(1, 3));
  util::Rng rng(300 + id);
  return gen::random_contended(params, rng);
}

/// Mixed family: even ids draw from the loose random-laminar pool,
/// odd ids from the contended pool (fractional LPs).
inline Instance random_small(int id, std::int64_t g = 0);

inline Instance mixed(int id) {
  if (id % 2 == 1) return contended(id / 2);
  return random_small(id / 2);
}

/// Random laminar instance with small parameters, deterministic per id.
inline Instance random_small(int id, std::int64_t g) {
  gen::RandomLaminarParams params;
  util::Rng knobs(9000 + id);
  params.g = g > 0 ? g : knobs.uniform_int(1, 4);
  params.max_depth = static_cast<int>(knobs.uniform_int(1, 3));
  params.max_children = static_cast<int>(knobs.uniform_int(1, 3));
  params.max_jobs_per_node = static_cast<int>(knobs.uniform_int(1, 3));
  params.max_processing = knobs.uniform_int(1, 4);
  util::Rng rng(100 + id);
  return gen::random_laminar(params, rng);
}

}  // namespace nat::at::testing
