#include "lp/bounded_simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lp/exact_simplex.hpp"
#include "util/rng.hpp"

namespace nat::lp {
namespace {

TEST(BoundedSimplex, TrivialAndBounds) {
  // min -x - y with x in [1, 2], y in [0, 3], x + y <= 4.
  Model m;
  int x = m.add_variable("x", 1.0, 2.0, -1.0);
  int y = m.add_variable("y", 0.0, 3.0, -1.0);
  m.add_row(Sense::kLe, 4.0, {{x, 1.0}, {y, 1.0}});
  Solution s = solve_bounded(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -4.0, 1e-8);
}

TEST(BoundedSimplex, PureBoundFlipOptimum) {
  // No constraints at all: minimize -x with x in [0, 5] — the optimum
  // is reached by a single bound flip, no pivots.
  Model m;
  int x = m.add_variable("x", 0.0, 5.0, -1.0);
  m.add_row(Sense::kLe, 100.0, {{x, 1.0}});  // slack row, never binding
  Solution s = solve_bounded(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 5.0, 1e-9);
}

TEST(BoundedSimplex, StatusesMatchPlainBackend) {
  // Infeasible.
  {
    Model m;
    int x = m.add_variable("x", 0.0, 1.0, 1.0);
    m.add_row(Sense::kGe, 2.0, {{x, 1.0}});
    EXPECT_EQ(solve_bounded(m).status, Status::kInfeasible);
  }
  // Unbounded.
  {
    Model m;
    int x = m.add_variable("x", 0.0, kInf, -1.0);
    m.add_row(Sense::kGe, 0.0, {{x, 1.0}});
    EXPECT_EQ(solve_bounded(m).status, Status::kUnbounded);
  }
  // Equalities.
  {
    Model m;
    int x = m.add_variable("x", 0.0, kInf, 1.0);
    int y = m.add_variable("y", 0.0, kInf, 1.0);
    m.add_row(Sense::kEq, 4.0, {{x, 1.0}, {y, 2.0}});
    m.add_row(Sense::kEq, 1.0, {{x, 1.0}, {y, -1.0}});
    Solution s = solve_bounded(m);
    ASSERT_EQ(s.status, Status::kOptimal);
    EXPECT_NEAR(s.x[x], 2.0, 1e-8);
    EXPECT_NEAR(s.x[y], 1.0, 1e-8);
  }
}

TEST(BoundedSimplex, FixedVariablesAreInert) {
  Model m;
  int x = m.add_variable("x", 3.0, 3.0, -10.0);  // fixed; cost irrelevant
  int y = m.add_variable("y", 0.0, kInf, 1.0);
  m.add_row(Sense::kGe, 5.0, {{x, 1.0}, {y, 1.0}});
  Solution s = solve_bounded(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 3.0, 1e-9);
  EXPECT_NEAR(s.x[y], 2.0, 1e-8);
}

TEST(BoundedSimplex, FreeVariable) {
  Model m;
  int x = m.add_variable("x", -kInf, kInf, 1.0);
  m.add_row(Sense::kGe, -7.0, {{x, 1.0}});
  Solution s = solve_bounded(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -7.0, 1e-8);
}

// Differential sweep against both existing backends, with heavy use of
// finite bounds (the feature under test).
class BoundedAgreement : public ::testing::TestWithParam<int> {};

TEST_P(BoundedAgreement, MatchesPlainAndExactBackends) {
  util::Rng rng(81000 + GetParam());
  const int nvars = static_cast<int>(rng.uniform_int(1, 7));
  const int nrows = static_cast<int>(rng.uniform_int(1, 8));
  Model m;
  for (int i = 0; i < nvars; ++i) {
    const double lo = static_cast<double>(rng.uniform_int(0, 2));
    const double hi =
        rng.chance(0.7) ? lo + static_cast<double>(rng.uniform_int(0, 7))
                        : kInf;
    m.add_variable("v", lo, hi,
                   static_cast<double>(rng.uniform_int(-4, 4)));
  }
  for (int r = 0; r < nrows; ++r) {
    std::vector<std::pair<int, double>> row;
    for (int i = 0; i < nvars; ++i) {
      if (rng.chance(0.6)) {
        row.push_back({i, static_cast<double>(rng.uniform_int(-3, 3))});
      }
    }
    if (row.empty()) row.push_back({0, 1.0});
    const Sense sense = rng.chance(0.3)   ? Sense::kEq
                        : rng.chance(0.5) ? Sense::kGe
                                          : Sense::kLe;
    m.add_row(sense, static_cast<double>(rng.uniform_int(-6, 10)), row);
  }
  Solution plain = solve(m);
  Solution bounded = solve_bounded(m);
  ASSERT_NE(plain.status, Status::kIterLimit);
  ASSERT_NE(bounded.status, Status::kIterLimit) << "bounded hit the cap";
  EXPECT_EQ(bounded.status, plain.status);
  if (plain.status == Status::kOptimal) {
    EXPECT_NEAR(bounded.objective, plain.objective,
                1e-6 * (1.0 + std::abs(plain.objective)));
    EXPECT_LE(m.max_violation(bounded.x), 1e-6)
        << "bounded backend returned an infeasible point";
    ExactSolution exact = solve_exact(m);
    ASSERT_EQ(exact.status, Status::kOptimal);
    EXPECT_NEAR(bounded.objective, exact.objective.to_double(),
                1e-6 * (1.0 + std::abs(plain.objective)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BoundedAgreement, ::testing::Range(0, 200));

}  // namespace
}  // namespace nat::lp
