#include "baselines/online.hpp"

#include <gtest/gtest.h>

#include "activetime/feasibility.hpp"
#include "baselines/exact.hpp"
#include "helpers.hpp"
#include "util/check.hpp"

namespace nat::at::baselines {
namespace {

TEST(LazyOnline, EmptyInstance) {
  EXPECT_EQ(lazy_online(Instance{2, {}}).active_slots, 0);
}

TEST(LazyOnline, SingleRigidJobOpensExactlyItsWindow) {
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{2, 5, 3}};
  OnlineResult r = lazy_online(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.open_slots, (std::vector<Time>{2, 3, 4}));
}

TEST(LazyOnline, LazinessDefersSlackyJobs) {
  // One unit job with a window of length 4: lazy waits until the last
  // moment (slot 3).
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{0, 4, 1}};
  OnlineResult r = lazy_online(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.open_slots, (std::vector<Time>{3}));
}

TEST(LazyOnline, UnitOverloadIsSolvedOptimally) {
  for (std::int64_t g : {1, 3, 5}) {
    const Instance inst = gen::unit_overload(g);
    OnlineResult r = lazy_online(inst);
    ASSERT_TRUE(r.feasible) << "g=" << g;
    EXPECT_EQ(r.active_slots, 2) << "g=" << g;
    validate_schedule(inst, r.schedule);
  }
}

TEST(LazyOnline, AdversarialArrivalDefeatsLaziness) {
  // The impossibility example from the header: declining slot 0 for
  // job A is individually justified, but job B's arrival at t = 1
  // makes the remaining capacity 3 < demand 4. The offline instance is
  // feasible; the lazy run must report failure.
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{0, 4, 2}, Job{1, 4, 2}};
  ASSERT_TRUE(inst.is_laminar());
  auto opt = exact_opt_laminar(inst);
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(opt->optimum, 4);  // offline needs the whole horizon

  OnlineResult r = lazy_online(inst);
  EXPECT_FALSE(r.feasible);
  // It declined slot 0 and could never recover.
  EXPECT_TRUE(r.open_slots.empty() || r.open_slots.front() != 0);
}

TEST(LazyOnline, OfflineInfeasibleThrows) {
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{0, 2, 2}, Job{0, 2, 2}};
  EXPECT_THROW(lazy_online(inst), util::CheckError);
}

// Sweep: when laziness survives, the result is valid and uses every
// opened slot; failures must carry a genuine infeasibility (the flag
// is never a false alarm). No competitive ratio is claimed.
class LazyOnlineSweep : public ::testing::TestWithParam<int> {};

TEST_P(LazyOnlineSweep, FeasibleRunsAreValid) {
  const Instance inst = testing::mixed(GetParam());
  OnlineResult r = lazy_online(inst);
  if (!r.feasible) {
    // Certify the failure: the chosen slots really are insufficient.
    EXPECT_FALSE(feasible_with_slots(inst, r.open_slots));
    return;
  }
  validate_schedule(inst, r.schedule);
  auto opt = exact_opt_laminar(inst);
  ASSERT_TRUE(opt.has_value());
  EXPECT_GE(r.active_slots, opt->optimum);
  EXPECT_EQ(r.active_slots,
            static_cast<std::int64_t>(r.open_slots.size()))
      << "every lazily opened slot should end up used";
}

INSTANTIATE_TEST_SUITE_P(Sweep, LazyOnlineSweep, ::testing::Range(0, 50));

}  // namespace
}  // namespace nat::at::baselines
