#include "reductions/setcover.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace nat::red {
namespace {

using util::Rng;

TEST(SetCover, KnownMinima) {
  // Universe {0,1,2}, sets {0,1}, {1,2}, {2} -> minimum 2.
  SetCoverInstance inst{3, {{0, 1}, {1, 2}, {2}}};
  EXPECT_EQ(setcover_minimum(inst).value(), 2);

  // A single set covering everything.
  SetCoverInstance one{3, {{0, 1, 2}, {0}}};
  EXPECT_EQ(setcover_minimum(one).value(), 1);

  // Uncoverable element.
  SetCoverInstance bad{3, {{0, 1}}};
  EXPECT_FALSE(setcover_minimum(bad).has_value());
  EXPECT_FALSE(setcover_greedy(bad).has_value());

  // Empty universe needs zero sets.
  SetCoverInstance empty{0, {{}}};
  EXPECT_EQ(setcover_minimum(empty).value(), 0);
}

TEST(SetCover, ValidateRejectsOutOfRange) {
  SetCoverInstance inst{2, {{0, 5}}};
  EXPECT_THROW(inst.validate(), util::CheckError);
}

TEST(SetCover, GreedyCoversAndIsNeverBelowOptimum) {
  Rng rng(808);
  for (int iter = 0; iter < 60; ++iter) {
    const int d = static_cast<int>(rng.uniform_int(1, 8));
    const int n = static_cast<int>(rng.uniform_int(1, 7));
    SetCoverInstance inst;
    inst.universe = d;
    for (int s = 0; s < n; ++s) {
      std::vector<int> set;
      for (int e = 0; e < d; ++e) {
        if (rng.chance(0.45)) set.push_back(e);
      }
      inst.sets.push_back(std::move(set));
    }
    auto opt = setcover_minimum(inst);
    auto greedy = setcover_greedy(inst);
    ASSERT_EQ(opt.has_value(), greedy.has_value());
    if (!opt.has_value()) continue;
    // Verify the greedy pick actually covers.
    std::vector<bool> covered(d, false);
    for (int s : *greedy) {
      for (int e : inst.sets[s]) covered[e] = true;
    }
    for (int e = 0; e < d; ++e) EXPECT_TRUE(covered[e]);
    EXPECT_GE(static_cast<int>(greedy->size()), *opt);
  }
}

}  // namespace
}  // namespace nat::red
