# Asserts every tests/test_*.cpp is registered via nat_add_test in
# tests/CMakeLists.txt. Run as a ctest case:
#   cmake -DTEST_DIR=<tests dir> -P check_registration.cmake
if(NOT DEFINED TEST_DIR)
  message(FATAL_ERROR "pass -DTEST_DIR=<path to tests/>")
endif()

file(READ "${TEST_DIR}/CMakeLists.txt" _lists)
file(GLOB _sources RELATIVE "${TEST_DIR}" "${TEST_DIR}/test_*.cpp")

set(_missing "")
foreach(_src IN LISTS _sources)
  get_filename_component(_name "${_src}" NAME_WE)
  if(NOT _lists MATCHES "nat_add_test\\(${_name}\\)")
    list(APPEND _missing "${_name}")
  endif()
endforeach()

if(_missing)
  message(FATAL_ERROR
    "test sources not registered with nat_add_test in tests/CMakeLists.txt: "
    "${_missing}")
endif()
list(LENGTH _sources _count)
message(STATUS "all ${_count} test sources registered")
