#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace nat::util {
namespace {

TEST(Check, ThrowsCheckErrorWithContext) {
  try {
    NAT_CHECK_MSG(1 == 2, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    (void)c();
  }
  Rng a2(1), c2(2);
  EXPECT_NE(a2(), c2());
}

TEST(Rng, UniformIntInRangeAndCoversRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_THROW(rng.uniform_int(2, 1), CheckError);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ForkIsDeterministicAndIndexDependent) {
  // Same parent state + same index => same child stream.
  Rng g1 = Rng(5).fork(7);
  Rng g2 = Rng(5).fork(7);
  EXPECT_EQ(g1(), g2());
  // Different indices give different streams.
  Rng h1 = Rng(5).fork(1);
  Rng h2 = Rng(5).fork(2);
  EXPECT_NE(h1(), h2());
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(0, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); }, 7);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(5, 6, [&](std::size_t i) { EXPECT_EQ(i, 5u); ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(Stopwatch, MeasuresForward) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.millis(), 0.0);
}

}  // namespace
}  // namespace nat::util
