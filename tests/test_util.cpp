#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <istream>
#include <limits>
#include <mutex>
#include <ostream>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/fd_streambuf.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace nat::util {
namespace {

TEST(Check, ThrowsCheckErrorWithContext) {
  try {
    NAT_CHECK_MSG(1 == 2, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    (void)c();
  }
  Rng a2(1), c2(2);
  EXPECT_NE(a2(), c2());
}

TEST(Rng, UniformIntInRangeAndCoversRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_THROW(rng.uniform_int(2, 1), CheckError);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ForkIsDeterministicAndIndexDependent) {
  // Same parent state + same index => same child stream.
  Rng g1 = Rng(5).fork(7);
  Rng g2 = Rng(5).fork(7);
  EXPECT_EQ(g1(), g2());
  // Different indices give different streams.
  Rng h1 = Rng(5).fork(1);
  Rng h2 = Rng(5).fork(2);
  EXPECT_NE(h1(), h2());
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(0, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); }, 7);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(5, 6, [&](std::size_t i) { EXPECT_EQ(i, 5u); ++calls; });
  EXPECT_EQ(calls, 1);
}

// Regression: a throwing task used to std::terminate the process (the
// exception escaped worker_loop). Now it must be captured, rethrown at
// the join, and leave the pool fully usable.
TEST(ThreadPool, ThrowingTaskNeitherTerminatesNorHangs) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&ran, i] {
      ran.fetch_add(1);
      if (i % 4 == 0) throw std::runtime_error("task boom " + std::to_string(i));
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // In-flight accounting survived the throws: the pool still runs and
  // joins new work, and the previous error does not resurface.
  std::atomic<int> after{0};
  for (int i = 0; i < 8; ++i) pool.submit([&after] { after.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, GroupWaitRethrowsFirstAndClears) {
  ThreadPool pool(2);
  ThreadPool::Group group(pool);
  group.submit([] { throw CheckError("group boom"); });
  EXPECT_THROW(group.wait(), CheckError);
  // wait() cleared the error; the group is reusable.
  std::atomic<int> count{0};
  group.submit([&count] { count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, GroupFailFastSkipsQueuedTasks) {
  // One worker => FIFO: the first task's error is recorded before any
  // later task starts, so every queued task of the group is skipped.
  ThreadPool pool(1);
  ThreadPool::Group group(pool);
  std::atomic<int> ran{0};
  group.submit([] { throw std::runtime_error("first"); });
  for (int i = 0; i < 32; ++i) group.submit([&ran] { ran.fetch_add(1); });
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPool, GroupsAreIndependent) {
  // An error in one group must not leak into a concurrent group's join.
  ThreadPool pool(4);
  ThreadPool::Group bad(pool);
  ThreadPool::Group good(pool);
  std::atomic<int> count{0};
  bad.submit([] { throw std::runtime_error("isolated"); });
  for (int i = 0; i < 64; ++i) good.submit([&count] { count.fetch_add(1); });
  good.wait();  // must not throw
  EXPECT_EQ(count.load(), 64);
  EXPECT_THROW(bad.wait(), std::runtime_error);
}

// Regression: the inline path (1 worker / tiny range / nested call)
// and the pooled path must surface the same first exception to the
// caller, not diverge into terminate-vs-throw.
TEST(ParallelFor, ExceptionParityInlineVsPooled) {
  const auto body = [](std::size_t i) {
    if (i == 137) throw std::runtime_error("iteration 137 failed");
  };
  std::string inline_what, pooled_what;
  ThreadPool one(1);  // forces the inline path
  try {
    parallel_for(one, 0, 500, body);
  } catch (const std::runtime_error& e) {
    inline_what = e.what();
  }
  ThreadPool four(4);  // pooled path
  try {
    parallel_for(four, 0, 500, body);
  } catch (const std::runtime_error& e) {
    pooled_what = e.what();
  }
  EXPECT_EQ(inline_what, "iteration 137 failed");
  EXPECT_EQ(pooled_what, inline_what);
}

TEST(ParallelFor, ConcurrentCallersEachJoinTheirOwnIterations) {
  // Several driver threads share one pool; each parallel_for call must
  // join exactly its own iterations (per-call groups), including when a
  // sibling caller's body throws.
  ThreadPool pool(4);
  constexpr int kDrivers = 6;
  constexpr std::size_t kRange = 400;
  std::vector<std::atomic<int>> hits(kDrivers * kRange);
  std::atomic<int> throwers_caught{0};
  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      for (int round = 0; round < 5; ++round) {
        if (d == 0) {
          // This driver always fails; its exception must stay local.
          try {
            parallel_for(pool, 0, kRange, [](std::size_t i) {
              if (i == 17) throw std::runtime_error("driver 0");
            });
          } catch (const std::runtime_error&) {
            throwers_caught.fetch_add(1);
          }
        } else {
          parallel_for(pool, 0, kRange, [&, d](std::size_t i) {
            hits[d * kRange + i].fetch_add(1);
          });
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(throwers_caught.load(), 5);
  for (int d = 1; d < kDrivers; ++d) {
    for (std::size_t i = 0; i < kRange; ++i) {
      EXPECT_EQ(hits[d * kRange + i].load(), 5)
          << "driver " << d << " index " << i;
    }
  }
}

TEST(CancelToken, CancelAndCheck) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.check();  // no-op before cancellation
  poll_cancel(nullptr);  // null token never fires
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.check(), CancelledError);
  EXPECT_THROW(poll_cancel(&token), CancelledError);
}

TEST(CancelToken, DeadlineFires) {
  CancelToken token;
  token.set_timeout_ms(0);  // non-positive = already expired
  EXPECT_TRUE(token.deadline_armed());
  EXPECT_THROW(token.check(), CancelledError);

  CancelToken future;
  future.set_deadline(std::chrono::steady_clock::now() +
                      std::chrono::hours(1));
  future.check();  // far-future deadline does not fire
  // CancelledError is deliberately not a CheckError: classifiers must
  // tell cancellation apart from invariant violations.
  static_assert(!std::is_base_of_v<CheckError, CancelledError>);
}

TEST(CancelToken, RemainingMsAndDeadlineAccessor) {
  CancelToken token;
  EXPECT_EQ(token.remaining_ms(), CancelToken::kNoDeadline);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::hours(1);
  token.set_deadline(deadline);
  EXPECT_EQ(token.deadline(), deadline);
  // Slightly under an hour once the calls themselves have taken time.
  EXPECT_GT(token.remaining_ms(), 3'500'000);
  EXPECT_LE(token.remaining_ms(), 3'600'000);

  CancelToken expired;
  expired.set_timeout_ms(-100);
  EXPECT_LE(expired.remaining_ms(), -100);
}

TEST(CancelToken, HugeTimeoutSaturatesInsteadOfWrapping) {
  // Regression: `now + milliseconds(INT64_MAX / 2)` overflows the
  // steady_clock epoch, wrapping the deadline into the distant past and
  // cancelling every solve instantly. set_timeout_ms must saturate to
  // time_point::max() instead.
  CancelToken token;
  token.set_timeout_ms(std::numeric_limits<std::int64_t>::max() / 2);
  EXPECT_TRUE(token.deadline_armed());
  EXPECT_FALSE(token.cancelled());
  token.check();  // must not throw
  EXPECT_GT(token.remaining_ms(), 0);
  EXPECT_EQ(token.deadline(), std::chrono::steady_clock::time_point::max());

  // The whole saturating range behaves the same, down to values that
  // still fit: a plain hour-long timeout is untouched.
  CancelToken max_token;
  max_token.set_timeout_ms(std::numeric_limits<std::int64_t>::max());
  EXPECT_FALSE(max_token.cancelled());
  CancelToken hour;
  hour.set_timeout_ms(3'600'000);
  EXPECT_NE(hour.deadline(), std::chrono::steady_clock::time_point::max());
  EXPECT_GT(hour.remaining_ms(), 3'500'000);
}

TEST(CancelToken, CancelRequestedTellsExplicitCancelFromDeadline) {
  CancelToken expired;
  expired.set_timeout_ms(-1);
  EXPECT_TRUE(expired.cancelled());
  EXPECT_FALSE(expired.cancel_requested());  // deadline, not cancel()

  CancelToken cancelled;
  cancelled.cancel();
  EXPECT_TRUE(cancelled.cancelled());
  EXPECT_TRUE(cancelled.cancel_requested());
}

TEST(ThreadPool, StatsSnapshotTracksQueueAndInFlight) {
  ThreadPool pool(2);
  const ThreadPool::Stats idle = pool.stats();
  EXPECT_EQ(idle.queue_depth, 0u);
  EXPECT_EQ(idle.in_flight, 0u);

  // Block both workers on a gate, then queue two more tasks: the
  // snapshot must show 2 in flight and 2 queued.
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  int entered = 0;
  const auto blocker = [&] {
    std::unique_lock<std::mutex> lk(mu);
    ++entered;
    cv.notify_all();
    cv.wait(lk, [&] { return open; });
  };
  pool.submit(blocker);
  pool.submit(blocker);
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return entered == 2; });
  }
  pool.submit([] {});
  pool.submit([] {});
  const ThreadPool::Stats busy = pool.stats();
  EXPECT_EQ(busy.in_flight, 2u);
  EXPECT_EQ(busy.queue_depth, 2u);
  {
    std::lock_guard<std::mutex> lk(mu);
    open = true;
  }
  cv.notify_all();
  pool.wait_idle();
  const ThreadPool::Stats after = pool.stats();
  EXPECT_EQ(after.queue_depth, 0u);
  EXPECT_EQ(after.in_flight, 0u);
}

TEST(ThreadPool, StatsStressNeverOverOrUnderCounts) {
  // Hammer stats() from a reader thread while tasks churn: the
  // snapshot is taken under the pool lock, so queue + in-flight can
  // never exceed live work or the worker count go above the pool
  // width, and a task is never double-counted during the
  // queued -> in-flight handoff.
  ThreadPool pool(4);
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::thread reader([&] {
    while (!done.load()) {
      const ThreadPool::Stats s = pool.stats();
      if (s.in_flight > 4 || s.queue_depth > 512) violations.fetch_add(1);
    }
  });
  std::atomic<int> ran{0};
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 64; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
    pool.wait_idle();
    const ThreadPool::Stats s = pool.stats();
    if (s.queue_depth != 0 || s.in_flight != 0) violations.fetch_add(1);
  }
  done.store(true);
  reader.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(ran.load(), 8 * 64);
}

// Satellite regression (docs/ROBUST.md hardening pass): FdStreambuf
// must survive EINTR on blocking read/write and drain partial writes.
// A tiny socket buffer plus a signal storm (handler installed WITHOUT
// SA_RESTART, as supervisors and the daemon tests do) makes both
// routine; a single-shot write(2) here would truncate JSONL records.
TEST(FdStreambuf, RetriesEintrAndDrainsPartialWrites) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  int sndbuf = 2048;  // force short writes on the 4 KiB flush spans
  ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));

  struct sigaction sa = {};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction old = {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  const std::string line(509, 'x');  // +'\n' = 510 bytes per record
  const int kLines = 2000;
  std::atomic<bool> writing{true};
  std::thread writer([&] {
    FdStreambuf buf(sv[0]);
    std::ostream os(&buf);
    for (int i = 0; i < kLines; ++i) os << line << '\n';
    os.flush();
    writing.store(false);
    EXPECT_TRUE(os.good());
    ::shutdown(sv[0], SHUT_WR);
  });
  std::thread pinger([&, handle = writer.native_handle()] {
    while (writing.load()) {
      ::pthread_kill(handle, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Drain slowly so the writer blocks (and takes signals) mid-flush;
  // every byte must arrive, in order, with the framing intact.
  FdStreambuf rbuf(sv[1]);
  std::istream is(&rbuf);
  std::string got;
  int records = 0;
  bool framing_ok = true;
  while (std::getline(is, got)) {
    ++records;
    if (got != line) framing_ok = false;
    if (records % 64 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  pinger.join();
  writer.join();
  EXPECT_EQ(records, kLines);
  EXPECT_TRUE(framing_ok);

  ::sigaction(SIGUSR1, &old, nullptr);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(Stopwatch, MeasuresForward) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.millis(), 0.0);
}

}  // namespace
}  // namespace nat::util
