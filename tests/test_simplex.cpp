#include <gtest/gtest.h>

#include <cmath>

#include "lp/dense_simplex.hpp"
#include "lp/exact_simplex.hpp"
#include "lp/model.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace nat::lp {
namespace {

using util::Rng;

TEST(Model, RejectsBadInput) {
  Model m;
  EXPECT_THROW(m.add_variable("x", 2.0, 1.0), util::CheckError);  // lo > hi
  int x = m.add_variable("x");
  EXPECT_THROW(m.add_row(Sense::kLe, 1.0, {{5, 1.0}}), util::CheckError);
  EXPECT_THROW(m.set_objective(3, 1.0), util::CheckError);
  (void)x;
}

TEST(Simplex, TrivialBoundedMinimum) {
  // min x st x >= 3
  Model m;
  int x = m.add_variable("x", 0.0, kInf, 1.0);
  m.add_row(Sense::kGe, 3.0, {{x, 1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-8);
  EXPECT_NEAR(s.x[x], 3.0, 1e-8);
}

TEST(Simplex, TextbookTwoVariable) {
  // min -x - 2y st x + y <= 4, x + 3y <= 6; opt at (3,1): -5.
  Model m;
  int x = m.add_variable("x", 0.0, kInf, -1.0);
  int y = m.add_variable("y", 0.0, kInf, -2.0);
  m.add_row(Sense::kLe, 4.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::kLe, 6.0, {{x, 1.0}, {y, 3.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -5.0, 1e-8);
  EXPECT_NEAR(s.x[x], 3.0, 1e-8);
  EXPECT_NEAR(s.x[y], 1.0, 1e-8);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y st x + 2y = 4, x - y = 1 -> x = 2, y = 1.
  Model m;
  int x = m.add_variable("x", 0.0, kInf, 1.0);
  int y = m.add_variable("y", 0.0, kInf, 1.0);
  m.add_row(Sense::kEq, 4.0, {{x, 1.0}, {y, 2.0}});
  m.add_row(Sense::kEq, 1.0, {{x, 1.0}, {y, -1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
  EXPECT_NEAR(s.x[y], 1.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  int x = m.add_variable("x", 0.0, kInf, 1.0);
  m.add_row(Sense::kGe, 5.0, {{x, 1.0}});
  m.add_row(Sense::kLe, 3.0, {{x, 1.0}});
  EXPECT_EQ(solve(m).status, Status::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  int x = m.add_variable("x", 0.0, kInf, -1.0);  // min -x, x free upward
  m.add_row(Sense::kGe, 0.0, {{x, 1.0}});
  EXPECT_EQ(solve(m).status, Status::kUnbounded);
}

TEST(Simplex, VariableBoundsRespected) {
  // min -x - y with x in [1, 2], y in [0, 3], x + y <= 4.
  Model m;
  int x = m.add_variable("x", 1.0, 2.0, -1.0);
  int y = m.add_variable("y", 0.0, 3.0, -1.0);
  m.add_row(Sense::kLe, 4.0, {{x, 1.0}, {y, 1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -4.0, 1e-8);
  EXPECT_LE(s.x[x], 2.0 + 1e-8);
  EXPECT_GE(s.x[x], 1.0 - 1e-8);
}

TEST(Simplex, NonzeroLowerBoundShift) {
  // min x with x >= 5 via bound (not row).
  Model m;
  (void)m.add_variable("x", 5.0, kInf, 1.0);
  Solution s = solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
}

TEST(Simplex, FreeVariableSplit) {
  // min |style|: x free, minimize x st x >= -7 as a row; optimum -7.
  Model m;
  int x = m.add_variable("x", -kInf, kInf, 1.0);
  m.add_row(Sense::kGe, -7.0, {{x, 1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -7.0, 1e-8);
}

TEST(Simplex, DegenerateKleeMintyLike) {
  // A degenerate LP with many ties; checks anti-cycling termination.
  Model m;
  std::vector<int> v;
  for (int i = 0; i < 6; ++i) {
    v.push_back(m.add_variable("v", 0.0, kInf, -std::pow(2.0, 5 - i)));
  }
  for (int i = 0; i < 6; ++i) {
    std::vector<std::pair<int, double>> row;
    for (int j = 0; j < i; ++j) row.push_back({v[j], std::pow(2.0, i - j + 1)});
    row.push_back({v[i], 1.0});
    m.add_row(Sense::kLe, std::pow(5.0, i + 1), row);
  }
  Solution s = solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -std::pow(5.0, 6), 1e-6 * std::pow(5.0, 6));
}

TEST(Simplex, RedundantEqualityRowsHandled) {
  // Duplicate equalities leave a basic artificial at level 0.
  Model m;
  int x = m.add_variable("x", 0.0, kInf, 1.0);
  int y = m.add_variable("y", 0.0, kInf, 1.0);
  m.add_row(Sense::kEq, 2.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::kEq, 2.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::kEq, 4.0, {{x, 2.0}, {y, 2.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-8);
}

TEST(ExactSimplex, MatchesKnownFractionalOptimum) {
  // min x0+x1 st 2x0+x1 >= 1, x0+3x1 >= 1 -> x=(2/5,1/5), obj 3/5.
  Model m;
  int a = m.add_variable("a", 0.0, kInf, 1.0);
  int b = m.add_variable("b", 0.0, kInf, 1.0);
  m.add_row(Sense::kGe, 1.0, {{a, 2.0}, {b, 1.0}});
  m.add_row(Sense::kGe, 1.0, {{a, 1.0}, {b, 3.0}});
  ExactSolution s = solve_exact(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_EQ(s.objective, num::Rational::from_int64(3, 5));
  EXPECT_EQ(s.x[a], num::Rational::from_int64(2, 5));
  EXPECT_EQ(s.x[b], num::Rational::from_int64(1, 5));
}

TEST(ExactSimplex, DetectsInfeasible) {
  Model m;
  int x = m.add_variable("x", 0.0, 1.0, 1.0);
  m.add_row(Sense::kGe, 2.0, {{x, 1.0}});
  EXPECT_EQ(solve_exact(m).status, Status::kInfeasible);
}

// Property sweep: random small LPs — double backend must agree with the
// exact rational backend on status and (when optimal) objective.
class RandomLpAgreement : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpAgreement, DoubleMatchesExact) {
  Rng rng(1000 + GetParam());
  const int nvars = static_cast<int>(rng.uniform_int(1, 5));
  const int nrows = static_cast<int>(rng.uniform_int(1, 6));
  Model m;
  std::vector<int> vars;
  for (int i = 0; i < nvars; ++i) {
    const double ub = rng.chance(0.3)
                          ? static_cast<double>(rng.uniform_int(1, 10))
                          : kInf;
    vars.push_back(m.add_variable(
        "v", 0.0, ub, static_cast<double>(rng.uniform_int(-4, 5))));
  }
  for (int r = 0; r < nrows; ++r) {
    std::vector<std::pair<int, double>> row;
    for (int i = 0; i < nvars; ++i) {
      if (rng.chance(0.7)) {
        row.push_back({vars[i], static_cast<double>(rng.uniform_int(-3, 4))});
      }
    }
    if (row.empty()) row.push_back({vars[0], 1.0});
    const Sense sense = rng.chance(0.4)   ? Sense::kLe
                        : rng.chance(0.6) ? Sense::kGe
                                          : Sense::kEq;
    m.add_row(sense, static_cast<double>(rng.uniform_int(-6, 10)), row);
  }
  Solution d = solve(m);
  ExactSolution e = solve_exact(m);
  ASSERT_NE(d.status, Status::kIterLimit);
  ASSERT_NE(e.status, Status::kIterLimit);
  EXPECT_EQ(d.status, e.status) << "double vs exact status";
  if (d.status == Status::kOptimal && e.status == Status::kOptimal) {
    EXPECT_NEAR(d.objective, e.objective.to_double(),
                1e-6 * (1.0 + std::abs(d.objective)));
    EXPECT_LE(m.max_violation(d.x), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomLpAgreement, ::testing::Range(0, 120));

}  // namespace
}  // namespace nat::lp
