#include "activetime/certificates.hpp"

#include <gtest/gtest.h>

#include "activetime/feasibility.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace nat::at {
namespace {

using util::Rng;

TEST(Lemma41, LhsRhsOnSmallExample) {
  // One job p=3 window [0,4), g=2: counts (x=2 in the single region
  // after build — no canonicalization here, one node).
  Instance inst;
  inst.g = 2;
  inst.jobs = {Job{0, 4, 3}};
  LaminarForest f = LaminarForest::build(inst);
  ASSERT_EQ(f.num_nodes(), 1);
  EXPECT_EQ(lemma41_rhs(f, {0}), 3);
  // min(|J'(Anc)|, g) = min(1, 2) = 1 per open slot.
  EXPECT_EQ(lemma41_lhs(f, {2}, {0}), 2);
  EXPECT_EQ(lemma41_lhs(f, {3}, {0}), 3);
}

TEST(Lemma41, WitnessExplainsInfeasibility) {
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{0, 4, 2}, Job{0, 4, 2}};
  LaminarForest f = LaminarForest::build(inst);
  ASSERT_EQ(f.num_nodes(), 1);
  // 3 open slots < total volume 4: the full set is a witness.
  auto witness = find_violating_subset(f, {3});
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(lemma41_rhs(f, *witness), 4);
  EXPECT_FALSE(find_violating_subset(f, {4}).has_value());
}

// The paper's iff (Lemma 4.1): flow feasibility == no violating subset,
// exhaustively over all job subsets, for random instances and random
// count vectors. This is the strongest executable form of the lemma.
class Lemma41Sweep : public ::testing::TestWithParam<int> {};

TEST_P(Lemma41Sweep, FlowMatchesSubsetCondition) {
  const Instance inst = testing::mixed(GetParam());
  if (inst.num_jobs() > 14) GTEST_SKIP() << "too many jobs for 2^n sweep";
  LaminarForest f = LaminarForest::build(inst);
  f.canonicalize();
  Rng rng(4000 + GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<Time> counts(f.num_nodes());
    for (int i = 0; i < f.num_nodes(); ++i) {
      counts[i] = rng.uniform_int(0, f.node(i).length());
    }
    const bool flow = feasible_with_counts(f, counts);
    const auto witness = find_violating_subset(f, counts);
    EXPECT_EQ(flow, !witness.has_value())
        << "Lemma 4.1 violated on instance " << GetParam() << " trial "
        << trial;
    if (witness.has_value()) {
      EXPECT_LT(lemma41_lhs(f, counts, *witness),
                lemma41_rhs(f, *witness));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lemma41Sweep, ::testing::Range(0, 60));

// Lemma 4.3: whenever a violating subset exists, a violating subset
// satisfying the minimality property also exists (pruning any job that
// fails the property preserves violation).
class Lemma43Sweep : public ::testing::TestWithParam<int> {};

TEST_P(Lemma43Sweep, MinimalWitnessExists) {
  const Instance inst = testing::mixed(GetParam());
  if (inst.num_jobs() > 14) GTEST_SKIP();
  LaminarForest f = LaminarForest::build(inst);
  f.canonicalize();
  Rng rng(8000 + GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<Time> counts(f.num_nodes());
    for (int i = 0; i < f.num_nodes(); ++i) {
      counts[i] = rng.uniform_int(0, f.node(i).length());
    }
    auto witness = find_violating_subset(f, counts);
    if (!witness.has_value()) continue;
    // Lemma 4.3's pruning: repeatedly drop a job whose processing is
    // covered by its cheap regions; the proof shows each removal
    // preserves the violation of (9). Verify exactly that.
    std::vector<int> subset = *witness;
    while (!satisfies_lemma43_property(f, counts, subset)) {
      std::size_t drop = subset.size();
      for (std::size_t k = 0; k < subset.size(); ++k) {
        if (f.jobs()[subset[k]].processing <=
            lemma43_cheap_capacity(f, counts, subset, subset[k])) {
          drop = k;
          break;
        }
      }
      ASSERT_LT(drop, subset.size());
      subset.erase(subset.begin() + static_cast<std::ptrdiff_t>(drop));
      ASSERT_FALSE(subset.empty())
          << "pruning emptied the witness, contradicting Lemma 4.3";
      EXPECT_LT(lemma41_lhs(f, counts, subset), lemma41_rhs(f, subset))
          << "pruning step destroyed the violation";
    }
    EXPECT_TRUE(satisfies_lemma43_property(f, counts, subset));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lemma43Sweep, ::testing::Range(0, 40));

}  // namespace
}  // namespace nat::at
