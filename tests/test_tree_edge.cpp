// Laminar-forest edge cases: degenerate shapes that the random sweeps
// rarely produce.
#include <gtest/gtest.h>

#include <sstream>

#include "activetime/solver.hpp"
#include "activetime/tree.hpp"
#include "baselines/exact.hpp"
#include "io/dot.hpp"
#include "util/check.hpp"

namespace nat::at {
namespace {

TEST(TreeEdge, SingleJobSingleNode) {
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{5, 8, 3}};
  LaminarForest f = LaminarForest::build(inst);
  EXPECT_EQ(f.num_nodes(), 1);
  EXPECT_EQ(f.node(0).length(), 3);
  f.canonicalize();
  EXPECT_TRUE(f.is_canonical());
  EXPECT_EQ(f.num_nodes(), 1);  // already rigid: p == L
}

TEST(TreeEdge, ManyJobsSameWindowDifferentLengths) {
  Instance inst;
  inst.g = 3;
  inst.jobs = {Job{0, 6, 1}, Job{0, 6, 4}, Job{0, 6, 2}, Job{0, 6, 4}};
  LaminarForest f = LaminarForest::build(inst);
  EXPECT_EQ(f.num_nodes(), 1);
  EXPECT_EQ(f.node(0).jobs.size(), 4u);
  f.canonicalize();
  f.check_invariants();
  // Longest job (p=4 < 6) split off a rigid child; exactly one of the
  // two length-4 jobs moved.
  EXPECT_EQ(f.num_nodes(), 2);
  int moved = 0;
  for (const Job& job : f.jobs()) {
    if (job.window() == (Interval{0, 4})) ++moved;
  }
  EXPECT_EQ(moved, 1);
}

TEST(TreeEdge, DeepChain) {
  // Ten levels of strictly nested windows.
  Instance inst;
  inst.g = 2;
  for (Time d = 0; d < 10; ++d) {
    inst.jobs.push_back(Job{d, 40 - d, 1});
  }
  LaminarForest f = LaminarForest::build(inst);
  EXPECT_EQ(f.num_nodes(), 10);
  for (int i = 0; i < f.num_nodes(); ++i) {
    EXPECT_LE(f.node(i).children.size(), 1u);
  }
  EXPECT_EQ(f.depth(f.postorder().front()), 9);
  f.canonicalize();
  f.check_invariants();
  NestedSolveResult r = solve_nested(inst);
  validate_schedule(inst, r.schedule);
  // All ten unit jobs share the innermost window: OPT = ceil(10/2) = 5.
  auto opt = baselines::exact_opt_laminar(inst);
  EXPECT_EQ(opt->optimum, 5);
}

TEST(TreeEdge, VeryWideNodeBinarizesToChain) {
  Instance inst;
  inst.g = 2;
  inst.jobs.push_back(Job{0, 100, 1});
  const int kids = 12;
  for (int i = 0; i < kids; ++i) {
    inst.jobs.push_back(Job{2 + 8 * i, 2 + 8 * i + 3, 2});
  }
  LaminarForest f = LaminarForest::build(inst);
  EXPECT_EQ(f.node(f.roots()[0]).children.size(),
            static_cast<std::size_t>(kids));
  f.canonicalize();
  f.check_invariants();
  EXPECT_TRUE(f.is_canonical());
  // Binarization adds kids-2 virtual nodes for the root.
  int virtuals = 0;
  for (int i = 0; i < f.num_nodes(); ++i) {
    virtuals += f.node(i).is_virtual ? 1 : 0;
  }
  EXPECT_EQ(virtuals, kids - 2);
  NestedSolveResult r = solve_nested(inst);
  validate_schedule(inst, r.schedule);
}

TEST(TreeEdge, TouchingSiblingsShareNoSlots) {
  // Windows [0,3) and [3,6) touch; they must be siblings, not nested.
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{0, 6, 1}, Job{0, 3, 2}, Job{3, 6, 2}};
  LaminarForest f = LaminarForest::build(inst);
  EXPECT_EQ(f.num_nodes(), 3);
  const int root = f.roots()[0];
  EXPECT_EQ(f.node(root).children.size(), 2u);
  EXPECT_EQ(f.node(root).length(), 0);  // children tile the root
  NestedSolveResult r = solve_nested(inst);
  validate_schedule(inst, r.schedule);
  EXPECT_EQ(baselines::exact_opt_laminar(inst)->optimum, 5);
}

TEST(TreeEdge, DotExportMentionsEveryNode) {
  Instance inst;
  inst.g = 2;
  inst.jobs = {Job{0, 10, 2}, Job{1, 4, 1}, Job{5, 8, 1}};
  LaminarForest f = LaminarForest::build(inst);
  f.canonicalize();
  NestedSolveResult r = solve_nested(inst);
  std::ostringstream os;
  io::DotOptions opt;
  opt.x_fractional = r.x_fractional;
  opt.x_rounded = r.x_rounded;
  io::write_dot(os, f, opt);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph laminar"), std::string::npos);
  for (int i = 0; i < f.num_nodes(); ++i) {
    EXPECT_NE(dot.find("n" + std::to_string(i) + " ["), std::string::npos);
  }
  EXPECT_NE(dot.find("x~="), std::string::npos);
}

TEST(TreeEdge, GapsBetweenSiblingsBelongToParent) {
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{0, 12, 2}, Job{2, 4, 1}, Job{8, 10, 1}};
  LaminarForest f = LaminarForest::build(inst);
  const int root = f.roots()[0];
  // Root owns [0,2), [4,8), [10,12): length 8.
  EXPECT_EQ(f.node(root).length(), 8);
  EXPECT_EQ(f.node(root).owned.size(), 3u);
}

}  // namespace
}  // namespace nat::at
