#include "baselines/exact.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace nat::at::baselines {
namespace {

TEST(ExactBruteForce, KnownTinyOptima) {
  // One job of length 3 alone: OPT = 3.
  Instance a;
  a.g = 2;
  a.jobs = {Job{0, 5, 3}};
  EXPECT_EQ(exact_opt_brute_force(a).value(), 3);

  // g+1 unit jobs in [0,2): OPT = 2 (unit-overload family).
  Instance b;
  b.g = 3;
  b.jobs = {Job{0, 2, 1}, Job{0, 2, 1}, Job{0, 2, 1}, Job{0, 2, 1}};
  EXPECT_EQ(exact_opt_brute_force(b).value(), 2);

  // Two disjoint unit jobs: OPT = 2.
  Instance c;
  c.g = 5;
  c.jobs = {Job{0, 2, 1}, Job{4, 6, 1}};
  EXPECT_EQ(exact_opt_brute_force(c).value(), 2);

  // g jobs of size 1 sharing one slot of slack: OPT = 1.
  Instance d;
  d.g = 4;
  d.jobs = {Job{3, 4, 1}, Job{3, 4, 1}, Job{3, 4, 1}, Job{3, 4, 1}};
  EXPECT_EQ(exact_opt_brute_force(d).value(), 1);
}

TEST(ExactBruteForce, HorizonGuard) {
  Instance wide;
  wide.g = 1;
  wide.jobs = {Job{0, 100, 1}};
  EXPECT_FALSE(exact_opt_brute_force(wide, 22).has_value());
}

TEST(ExactLaminar, EmptyInstance) {
  EXPECT_EQ(exact_opt_laminar(Instance{1, {}})->optimum, 0);
}

TEST(ExactLaminar, MatchesBruteForceOnKnownFamilies) {
  for (std::int64_t g = 1; g <= 4; ++g) {
    Instance inst;
    inst.g = g;
    for (std::int64_t j = 0; j <= g; ++j) inst.jobs.push_back(Job{0, 2, 1});
    auto bb = exact_opt_laminar(inst);
    ASSERT_TRUE(bb.has_value());
    EXPECT_EQ(bb->optimum, 2) << "unit overload, g=" << g;
    validate_schedule(inst, bb->schedule);
  }
}

TEST(ExactCommonWindow, ClosedFormMatchesBruteForce) {
  util::Rng rng(246);
  for (int iter = 0; iter < 60; ++iter) {
    Instance inst;
    inst.g = rng.uniform_int(1, 4);
    const Time len = rng.uniform_int(1, 8);
    const int n = static_cast<int>(rng.uniform_int(1, 4));
    std::int64_t volume = 0;
    for (int j = 0; j < n; ++j) {
      const std::int64_t p = rng.uniform_int(1, len);
      inst.jobs.push_back(Job{0, len, p});
      volume += p;
    }
    if (volume > inst.g * len) continue;  // infeasible draw
    const auto brute = exact_opt_brute_force(inst, 16);
    if (!brute.has_value()) continue;
    EXPECT_EQ(exact_opt_common_window(inst), *brute)
        << "g=" << inst.g << " len=" << len;
  }
  EXPECT_EQ(exact_opt_common_window(Instance{3, {}}), 0);
}

TEST(ExactCommonWindow, RejectsMixedWindows) {
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{0, 3, 1}, Job{1, 3, 1}};
  EXPECT_THROW(exact_opt_common_window(inst), util::CheckError);
}

// Property sweep: B&B optimum equals brute-force optimum on random
// small instances, and its schedule is valid with exactly that many
// active slots.
class ExactAgreement : public ::testing::TestWithParam<int> {};

TEST_P(ExactAgreement, BranchAndBoundMatchesBruteForce) {
  const Instance inst = testing::random_small(GetParam());
  auto brute = exact_opt_brute_force(inst, 20);
  if (!brute.has_value()) GTEST_SKIP() << "horizon too wide for brute force";
  auto bb = exact_opt_laminar(inst);
  ASSERT_TRUE(bb.has_value());
  EXPECT_EQ(bb->optimum, *brute);
  validate_schedule(inst, bb->schedule);
  EXPECT_EQ(bb->schedule.active_slots(), bb->optimum);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExactAgreement, ::testing::Range(0, 80));

}  // namespace
}  // namespace nat::at::baselines
