#include "activetime/time_indexed_lp.hpp"

#include <gtest/gtest.h>

#include "activetime/solver.hpp"
#include "baselines/exact.hpp"
#include "helpers.hpp"
#include "lp/exact_simplex.hpp"

namespace nat::at {
namespace {

TEST(ForcedVolume, MatchesDefinition) {
  const Job job{2, 8, 4};  // window length 6, p = 4
  // Everything outside I open: q = max(0, p - |window \ I|).
  EXPECT_EQ(forced_volume(job, Interval{0, 10}), 4);   // window inside I
  EXPECT_EQ(forced_volume(job, Interval{2, 8}), 4);
  EXPECT_EQ(forced_volume(job, Interval{2, 4}), 0);    // 4 slots outside
  EXPECT_EQ(forced_volume(job, Interval{2, 7}), 3);    // 1 slot outside
  EXPECT_EQ(forced_volume(job, Interval{9, 12}), 0);   // disjoint
}

TEST(NaturalLp, UnitOverloadGapIsTwo) {
  // The paper's "simple example" of integrality gap 2 for the natural
  // LP: g+1 unit jobs in a window of length 2. Natural LP = (g+1)/g,
  // OPT = 2, so the gap 2g/(g+1) → 2.
  for (std::int64_t g : {1, 2, 4, 8}) {
    const Instance inst = gen::unit_overload(g);
    EXPECT_NEAR(natural_lp_value(inst),
                static_cast<double>(g + 1) / static_cast<double>(g), 1e-7)
        << "g=" << g;
    EXPECT_EQ(baselines::exact_opt_brute_force(inst).value(), 2);
  }
}

TEST(CwLp, ClosesUnitOverloadGap) {
  // One ceiling interval [0,2) forces x(0)+x(1) >= ceil((g+1)/g) = 2.
  for (std::int64_t g : {2, 4}) {
    EXPECT_NEAR(cw_lp_value(gen::unit_overload(g)), 2.0, 1e-7);
  }
}

TEST(CwLp, Lemma51PaperSolutionIsFeasibleWithValueGPlusTwo) {
  // Lemma 5.1 exhibits a feasible fractional solution of value g + 2:
  //   x(t) = (g+2)/(2g) on every slot; each group and the long job
  //   spread half a unit per slot over each group's two slots.
  // Reproduce that exact solution and certify it satisfies every CW
  // constraint, including the ceiling rows.
  for (std::int64_t g : {2, 3, 4, 6, 8}) {
    const Instance inst = gen::lemma51_gap(g);
    TimeIndexedLp lp = build_time_indexed_lp(inst, CeilingIntervals::kAll);
    std::vector<double> point(lp.model.num_variables(), 0.0);
    const double xv = static_cast<double>(g + 2) / (2.0 * g);
    for (int v : lp.x_var) point[v] = xv;
    for (const TimeIndexedClass& cls : lp.classes) {
      for (const auto& [slot, var] : cls.y_vars) {
        (void)slot;
        // Long job class (count 1, p = g): 1/2 per slot over 2g slots.
        // Group class (count g, p = 1): g jobs * 1/2 per its 2 slots.
        point[var] = cls.job.processing == 1
                         ? static_cast<double>(cls.count) * 0.5
                         : 0.5;
      }
    }
    EXPECT_LE(lp.model.max_violation(point), 1e-9) << "g=" << g;
    EXPECT_NEAR(lp.model.objective_value(point),
                static_cast<double>(g + 2), 1e-9);
  }
}

TEST(CwLp, Lemma51GapCurve) {
  // The LP optimum is at most the paper's g+2 solution (in fact lower,
  // which only widens the gap), and OPT = g + ceil(g/2), so the
  // integrality gap is at least 3g / (2(g+2)) -> 3/2.
  for (std::int64_t g : {2, 3, 4, 6, 8}) {
    const Instance inst = gen::lemma51_gap(g);
    const double lp = cw_lp_value(inst);
    EXPECT_LE(lp, static_cast<double>(g + 2) + 1e-6) << "g=" << g;
    const double opt = static_cast<double>(g + (g + 1) / 2);
    if (g <= 4) {
      // Spot-check the analytic OPT = g + ceil(g/2) with the solver.
      auto exact = baselines::exact_opt_laminar(inst);
      ASSERT_TRUE(exact.has_value());
      EXPECT_EQ(static_cast<double>(exact->optimum), opt) << "g=" << g;
    }
    EXPECT_GE(opt / lp,
              3.0 * static_cast<double>(g) /
                      (2.0 * static_cast<double>(g + 2)) -
                  1e-6)
        << "g=" << g;
  }
  // Exact certification of the LP optimum for one small case: both
  // backends agree (the optimum is genuinely below g+2).
  const Instance inst = gen::lemma51_gap(3);
  TimeIndexedLp lp = build_time_indexed_lp(inst, CeilingIntervals::kAll);
  lp::ExactSolution s = lp::solve_exact(lp.model);
  ASSERT_EQ(s.status, lp::Status::kOptimal);
  EXPECT_EQ(s.objective, num::Rational::from_int64(21, 5));
}

TEST(CwLp, EventAlignedMatchesAllOnLemma51) {
  // The paper argues the tightest ceiling constraints are unions of
  // consecutive group windows — all event-aligned.
  for (std::int64_t g : {3, 5}) {
    const Instance inst = gen::lemma51_gap(g);
    EXPECT_NEAR(cw_lp_value(inst, CeilingIntervals::kEventAligned),
                cw_lp_value(inst, CeilingIntervals::kAll), 1e-6);
  }
}

TEST(NaturalLp, MatchesStrongLpWithoutCeilingOnSimpleFamilies) {
  // Sanity: both relaxations bound OPT from below.
  for (int id = 0; id < 10; ++id) {
    const Instance inst = testing::random_small(id);
    const double natural = natural_lp_value(inst);
    auto opt = baselines::exact_opt_laminar(inst);
    ASSERT_TRUE(opt.has_value());
    EXPECT_LE(natural, static_cast<double>(opt->optimum) + 1e-6);
  }
}

// Ordering property: natural <= CW <= OPT on mixed instances.
class LpHierarchy : public ::testing::TestWithParam<int> {};

TEST_P(LpHierarchy, NaturalLeCwLeOpt) {
  const Instance inst = testing::mixed(GetParam());
  if (inst.horizon().length() > 40) GTEST_SKIP() << "horizon too wide";
  const double natural = natural_lp_value(inst);
  const double cw = cw_lp_value(inst, CeilingIntervals::kEventAligned);
  auto opt = baselines::exact_opt_laminar(inst);
  ASSERT_TRUE(opt.has_value());
  EXPECT_LE(natural, cw + 1e-6);
  EXPECT_LE(cw, static_cast<double>(opt->optimum) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LpHierarchy, ::testing::Range(0, 30));

}  // namespace
}  // namespace nat::at
