// Golden-corpus regression suite: fixed instance files under corpus/
// with exactly-known optima (MANIFEST.txt). Guards against silent
// behavioural drift anywhere in the stack: solvers must keep their
// guarantees on these exact inputs forever.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <string>

#include "activetime/solver.hpp"
#include "baselines/exact.hpp"
#include "baselines/greedy.hpp"
#include "io/serialize.hpp"

namespace nat::at {
namespace {

std::string corpus_dir() {
  // CMake passes the source directory; fall back to a relative path
  // when run by hand from the repo root.
#ifdef NAT_CORPUS_DIR
  return NAT_CORPUS_DIR;
#else
  return "corpus";
#endif
}

std::map<std::string, std::int64_t> load_manifest() {
  std::ifstream in(corpus_dir() + "/MANIFEST.txt");
  EXPECT_TRUE(static_cast<bool>(in)) << "corpus manifest not found";
  std::map<std::string, std::int64_t> manifest;
  std::string name;
  while (in >> name) {
    if (name[0] == '#') {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    std::int64_t opt = 0;
    in >> opt;
    manifest[name] = opt;
  }
  return manifest;
}

Instance load(const std::string& name) {
  std::ifstream in(corpus_dir() + "/" + name + ".txt");
  EXPECT_TRUE(static_cast<bool>(in)) << "missing corpus file " << name;
  return io::read_instance(in);
}

TEST(Corpus, ManifestIsNonTrivial) {
  EXPECT_GE(load_manifest().size(), 15u);
}

TEST(Corpus, ExactSolverReproducesRecordedOptima) {
  for (const auto& [name, opt] : load_manifest()) {
    const Instance inst = load(name);
    auto r = baselines::exact_opt_laminar(inst);
    ASSERT_TRUE(r.has_value()) << name;
    EXPECT_EQ(r->optimum, opt) << name;
  }
}

TEST(Corpus, NestedSolverKeepsItsGuarantees) {
  for (const auto& [name, opt] : load_manifest()) {
    const Instance inst = load(name);
    NestedSolveResult r = solve_nested(inst);
    validate_schedule(inst, r.schedule);
    EXPECT_EQ(r.repairs, 0) << name;
    EXPECT_GE(r.active_slots, opt) << name;
    EXPECT_LE(static_cast<double>(r.active_slots),
              1.8 * static_cast<double>(opt) + 1e-9)
        << name;
    EXPECT_LE(r.lp_value, static_cast<double>(opt) + 1e-6) << name;
  }
}

TEST(Corpus, TrimmedSolverDominatesPaperPipeline) {
  for (const auto& [name, opt] : load_manifest()) {
    const Instance inst = load(name);
    NestedSolverOptions options;
    options.trim_rounded = true;
    NestedSolveResult r = solve_nested(inst, options);
    validate_schedule(inst, r.schedule);
    EXPECT_GE(r.active_slots, opt) << name;
  }
}

TEST(Corpus, GreedyStaysWithinThreeTimesOpt) {
  for (const auto& [name, opt] : load_manifest()) {
    const Instance inst = load(name);
    auto r = baselines::greedy_minimal_feasible(inst);
    EXPECT_LE(r.active_slots, 3 * opt) << name;
  }
}

}  // namespace
}  // namespace nat::at
