#include "numeric/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "util/rng.hpp"

namespace nat::num {
namespace {

using util::Rng;

TEST(BigInt, ConstructFromInt64) {
  EXPECT_EQ(BigInt(0).to_string(), "0");
  EXPECT_EQ(BigInt(1).to_string(), "1");
  EXPECT_EQ(BigInt(-1).to_string(), "-1");
  EXPECT_EQ(BigInt(1234567890123456789LL).to_string(), "1234567890123456789");
  EXPECT_EQ(BigInt(INT64_MIN).to_string(), "-9223372036854775808");
  EXPECT_EQ(BigInt(INT64_MAX).to_string(), "9223372036854775807");
}

TEST(BigInt, ZeroIsCanonical) {
  EXPECT_TRUE(BigInt(0).is_zero());
  EXPECT_EQ(BigInt(0).sign(), 0);
  EXPECT_EQ((BigInt(5) - BigInt(5)).sign(), 0);
  EXPECT_EQ((-BigInt(0)).sign(), 0);
}

TEST(BigInt, FromStringRoundTrip) {
  const char* cases[] = {"0",  "1",     "-1",   "42",
                         "-42", "999999999999999999999999999999",
                         "-123456789012345678901234567890"};
  for (const char* s : cases) {
    EXPECT_EQ(BigInt::from_string(s).to_string(), s) << s;
  }
  EXPECT_EQ(BigInt::from_string("+7").to_string(), "7");
  EXPECT_EQ(BigInt::from_string("-0").to_string(), "0");
  EXPECT_EQ(BigInt::from_string("007").to_string(), "7");
}

TEST(BigInt, FromStringRejectsGarbage) {
  EXPECT_THROW(BigInt::from_string(""), util::CheckError);
  EXPECT_THROW(BigInt::from_string("-"), util::CheckError);
  EXPECT_THROW(BigInt::from_string("12a"), util::CheckError);
}

TEST(BigInt, ToInt64Boundaries) {
  EXPECT_EQ(BigInt(INT64_MIN).to_int64(), INT64_MIN);
  EXPECT_EQ(BigInt(INT64_MAX).to_int64(), INT64_MAX);
  EXPECT_TRUE(BigInt(INT64_MIN).fits_int64());
  BigInt too_big = BigInt(INT64_MAX) + BigInt(1);
  EXPECT_FALSE(too_big.fits_int64());
  EXPECT_THROW(too_big.to_int64(), util::CheckError);
  BigInt min_minus = BigInt(INT64_MIN) - BigInt(1);
  EXPECT_FALSE(min_minus.fits_int64());
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt(0), util::CheckError);
  EXPECT_THROW(BigInt(1) % BigInt(0), util::CheckError);
}

// Randomized cross-check of ring operations against __int128.
TEST(BigInt, RandomizedAgainstInt128) {
  Rng rng(20260707);
  for (int iter = 0; iter < 4000; ++iter) {
    const std::int64_t a = rng.uniform_int(-2'000'000'000LL, 2'000'000'000LL);
    const std::int64_t b = rng.uniform_int(-2'000'000'000LL, 2'000'000'000LL);
    const BigInt A(a), B(b);
    EXPECT_EQ((A + B).to_int64(), a + b);
    EXPECT_EQ((A - B).to_int64(), a - b);
    __int128 prod = static_cast<__int128>(a) * b;
    BigInt P = A * B;
    // Compare via string to cover the >64-bit range.
    __int128 pa = prod < 0 ? -prod : prod;
    std::string ps;
    if (pa == 0) ps = "0";
    while (pa > 0) {
      ps.insert(ps.begin(), static_cast<char>('0' + static_cast<int>(pa % 10)));
      pa /= 10;
    }
    if (prod < 0) ps.insert(ps.begin(), '-');
    EXPECT_EQ(P.to_string(), ps);
    if (b != 0) {
      EXPECT_EQ((A / B).to_int64(), a / b) << a << "/" << b;
      EXPECT_EQ((A % B).to_int64(), a % b) << a << "%" << b;
    }
  }
}

TEST(BigInt, RandomizedDivModIdentity) {
  Rng rng(7);
  for (int iter = 0; iter < 1000; ++iter) {
    // Build operands wider than 64 bits to exercise Knuth D.
    BigInt a = BigInt(rng.uniform_int(INT64_MIN / 2, INT64_MAX / 2)) *
                   BigInt(rng.uniform_int(1, INT64_MAX / 2)) +
               BigInt(rng.uniform_int(0, 1'000'000));
    BigInt b = BigInt(rng.uniform_int(1, INT64_MAX / 2)) *
                   BigInt(rng.uniform_int(1, 1'000'000));
    if (rng.chance(0.5)) a = -a;
    if (rng.chance(0.5)) b = -b;
    BigInt q, r;
    BigInt::div_mod(a, b, q, r);
    EXPECT_EQ((q * b + r).to_string(), a.to_string());
    EXPECT_TRUE(r.abs() < b.abs());
    // Remainder sign follows the dividend (truncated division).
    if (!r.is_zero()) {
      EXPECT_EQ(r.sign(), a.sign());
    }
  }
}

TEST(BigInt, DivisionBoundaryLimbs) {
  // Exhaustive sweep over boundary limb values (0, 1, 2^31, 2^32-1,
  // ...) for 3-limb / 2-limb divisions — the shapes that exercise
  // Knuth D's qhat-overestimate decrement and the rare add-back
  // branch. Verified via the division identity.
  const std::uint64_t boundary[] = {0ULL,          1ULL,
                                    0x7fffffffULL, 0x80000000ULL,
                                    0x80000001ULL, 0xfffffffeULL,
                                    0xffffffffULL};
  const BigInt base = BigInt(1LL << 32);
  for (std::uint64_t hi : boundary) {
    for (std::uint64_t mid : boundary) {
      for (std::uint64_t lo : boundary) {
        BigInt a = (BigInt(static_cast<std::int64_t>(hi)) * base +
                    BigInt(static_cast<std::int64_t>(mid))) *
                       base +
                   BigInt(static_cast<std::int64_t>(lo));
        for (std::uint64_t vh : boundary) {
          if (vh == 0) continue;  // need a genuine 2-limb divisor
          for (std::uint64_t vl : {0ULL, 1ULL, 0xffffffffULL}) {
            BigInt b = BigInt(static_cast<std::int64_t>(vh)) * base +
                       BigInt(static_cast<std::int64_t>(vl));
            BigInt q, r;
            BigInt::div_mod(a, b, q, r);
            ASSERT_EQ((q * b + r).to_string(), a.to_string())
                << hi << ' ' << mid << ' ' << lo << " / " << vh << ' '
                << vl;
            ASSERT_TRUE(r.abs() < b.abs());
            ASSERT_GE(r.sign(), 0);
          }
        }
      }
    }
  }
}

TEST(BigInt, CompareTotalOrder) {
  Rng rng(99);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::int64_t a = rng.uniform_int(-1'000'000, 1'000'000);
    const std::int64_t b = rng.uniform_int(-1'000'000, 1'000'000);
    EXPECT_EQ(BigInt(a) < BigInt(b), a < b);
    EXPECT_EQ(BigInt(a) == BigInt(b), a == b);
    EXPECT_EQ(BigInt(a) >= BigInt(b), a >= b);
  }
}

TEST(BigInt, GcdMatchesEuclid) {
  Rng rng(123);
  auto gcd64 = [](std::int64_t x, std::int64_t y) {
    x = x < 0 ? -x : x;
    y = y < 0 ? -y : y;
    while (y) {
      std::int64_t t = x % y;
      x = y;
      y = t;
    }
    return x;
  };
  for (int iter = 0; iter < 1000; ++iter) {
    const std::int64_t a = rng.uniform_int(-1'000'000'000, 1'000'000'000);
    const std::int64_t b = rng.uniform_int(-1'000'000'000, 1'000'000'000);
    EXPECT_EQ(BigInt::gcd(BigInt(a), BigInt(b)).to_int64(), gcd64(a, b));
  }
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(0)).to_int64(), 0);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(-5)).to_int64(), 5);
}

TEST(BigInt, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(0).to_double(), 0.0);
  EXPECT_DOUBLE_EQ(BigInt(-12345).to_double(), -12345.0);
  BigInt big = BigInt(1LL << 62) * BigInt(4);  // 2^64
  EXPECT_DOUBLE_EQ(big.to_double(), 18446744073709551616.0);
}

TEST(BigInt, BitLengthKnownValues) {
  EXPECT_EQ(BigInt(0).bit_length(), 0u);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(2).bit_length(), 2u);
  EXPECT_EQ(BigInt(3).bit_length(), 2u);
  EXPECT_EQ(BigInt(-8).bit_length(), 4u);  // magnitude only
  EXPECT_EQ(BigInt(INT64_MAX).bit_length(), 63u);
  // Multi-limb: 2^100 has bit length 101.
  EXPECT_EQ((BigInt(1LL << 50) * BigInt(1LL << 50)).bit_length(), 101u);
}

TEST(BigInt, ShiftedLeftMatchesMultiplication) {
  Rng rng(4096);
  for (int iter = 0; iter < 500; ++iter) {
    BigInt v(rng.uniform_int(-1'000'000'000LL, 1'000'000'000LL));
    const auto s =
        static_cast<std::size_t>(rng.uniform_int(0, 200));
    BigInt expected = v;
    for (std::size_t i = 0; i < s; ++i) expected *= BigInt(2);
    EXPECT_EQ(v.shifted_left(s).to_string(), expected.to_string())
        << v.to_string() << " << " << s;
  }
  EXPECT_EQ(BigInt(0).shifted_left(1000).to_string(), "0");
}

TEST(BigInt, ShiftedLeftGrowsBitLength) {
  const BigInt v(5);  // 101b, bit length 3
  for (std::size_t s : {0u, 1u, 31u, 32u, 33u, 64u, 130u}) {
    EXPECT_EQ(v.shifted_left(s).bit_length(), 3u + s) << s;
  }
}

TEST(BigInt, LargeMultiplicationKnownValue) {
  BigInt a = BigInt::from_string("123456789012345678901234567890");
  BigInt b = BigInt::from_string("987654321098765432109876543210");
  EXPECT_EQ((a * b).to_string(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigInt, LargeDivisionKnownValue) {
  BigInt a = BigInt::from_string(
      "121932631137021795226185032733622923332237463801111263526900");
  BigInt b = BigInt::from_string("987654321098765432109876543210");
  EXPECT_EQ((a / b).to_string(), "123456789012345678901234567890");
  EXPECT_TRUE((a % b).is_zero());
}

}  // namespace
}  // namespace nat::num
