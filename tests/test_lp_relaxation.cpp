#include "activetime/lp_relaxation.hpp"

#include <gtest/gtest.h>

#include "activetime/solver.hpp"
#include "baselines/exact.hpp"
#include "helpers.hpp"
#include "lp/exact_simplex.hpp"

namespace nat::at {
namespace {

TEST(JobClasses, AggregationGroupsByNodeAndLength) {
  Instance inst;
  inst.g = 2;
  inst.jobs = {Job{0, 4, 1}, Job{0, 4, 1}, Job{0, 4, 2}, Job{1, 3, 1}};
  LaminarForest f = LaminarForest::build(inst);
  auto agg = build_job_classes(f, /*aggregate=*/true);
  EXPECT_EQ(agg.size(), 3u);  // (root,1)x2, (root,2), (child,1)
  int total = 0;
  for (const auto& c : agg) total += c.count();
  EXPECT_EQ(total, 4);
  auto flat = build_job_classes(f, /*aggregate=*/false);
  EXPECT_EQ(flat.size(), 4u);
}

TEST(StrongLp, SingleRigidJob) {
  // One job of length 3, window [0,3): LP must open 3 slots.
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{0, 3, 3}};
  LaminarForest f = LaminarForest::build(inst);
  f.canonicalize();
  StrongLp lp = build_strong_lp(f);
  lp::Solution s = lp::solve(lp.model);
  ASSERT_EQ(s.status, lp::Status::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
}

TEST(StrongLp, CeilingConstraintClosesUnitOverloadGap) {
  // g+1 unit jobs in [0,2): without (7) the LP value is (g+1)/g; the
  // ceiling constraint lifts it to the integral optimum 2.
  const std::int64_t g = 5;
  const Instance inst = gen::unit_overload(g);
  StrongLpOptions with, without;
  without.ceiling_constraints = false;
  EXPECT_NEAR(strong_lp_value(inst, without),
              static_cast<double>(g + 1) / static_cast<double>(g), 1e-7);
  EXPECT_NEAR(strong_lp_value(inst, with), 2.0, 1e-7);
}

TEST(StrongLp, EmitsExpectedCeilingRows) {
  const Instance inst = gen::unit_overload(3);
  LaminarForest f = LaminarForest::build(inst);
  f.canonicalize();
  StrongLp lp = build_strong_lp(f);
  // 4 unit jobs > g=3 in one window: OPT >= 2 at the root; no node
  // needs three slots.
  EXPECT_FALSE(lp.nodes_opt_ge_2.empty());
  EXPECT_TRUE(lp.nodes_opt_ge_3.empty());
}

TEST(StrongLp, ValueCertifiedByExactSimplexOnGapFamily) {
  // Certify the double backend's strengthened-LP value exactly.
  const Instance inst = gen::unit_overload(4);
  LaminarForest f = LaminarForest::build(inst);
  f.canonicalize();
  StrongLpOptions opt;
  opt.ceiling_constraints = false;
  StrongLp lp = build_strong_lp(f, opt);
  lp::ExactSolution exact = lp::solve_exact(lp.model);
  ASSERT_EQ(exact.status, lp::Status::kOptimal);
  EXPECT_EQ(exact.objective, num::Rational::from_int64(5, 4));
}

// Property sweeps over random instances.
class StrongLpSweep : public ::testing::TestWithParam<int> {};

TEST_P(StrongLpSweep, AggregatedEqualsNonAggregated) {
  const Instance inst = testing::random_small(GetParam());
  StrongLpOptions agg, flat;
  flat.aggregate_classes = false;
  EXPECT_NEAR(strong_lp_value(inst, agg), strong_lp_value(inst, flat), 1e-5)
      << "class aggregation must preserve the LP optimum";
}

TEST_P(StrongLpSweep, LpLowerBoundsOptAndVolume) {
  const Instance inst = testing::random_small(GetParam());
  const double lp = strong_lp_value(inst);
  auto opt = baselines::exact_opt_laminar(inst);
  ASSERT_TRUE(opt.has_value());
  EXPECT_LE(lp, static_cast<double>(opt->optimum) + 1e-6)
      << "LP must lower-bound OPT";
  EXPECT_GE(lp, static_cast<double>(inst.total_volume()) /
                    static_cast<double>(inst.g) -
                1e-6)
      << "LP dominates the volume bound";
}

TEST_P(StrongLpSweep, UnpackedSolutionIsLpFeasible) {
  const Instance inst = testing::random_small(GetParam());
  LaminarForest f = LaminarForest::build(inst);
  f.canonicalize();
  StrongLp lp = build_strong_lp(f);
  lp::Solution s = lp::solve(lp.model);
  ASSERT_EQ(s.status, lp::Status::kOptimal);
  FractionalSolution frac = unpack(lp, s);
  EXPECT_LE(lp_violation(f, lp, frac), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, StrongLpSweep, ::testing::Range(0, 40));

}  // namespace
}  // namespace nat::at
