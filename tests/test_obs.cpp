// Observability subsystem: counter sharding under the thread pool,
// span nesting and bounding, the Json round trip, and the golden-key
// schema check of a real solver run report.
#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <fstream>
#include <locale>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "activetime/solver.hpp"
#include "io/serialize.hpp"
#include "obs/counters.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace nat {
namespace {

TEST(Counters, SingleThreadAddAndReset) {
  obs::Counter& c = obs::counter("test.single");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Counters, SameNameSameCounter) {
  obs::Counter& a = obs::counter("test.alias");
  obs::Counter& b = obs::counter("test.alias");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(3);
  EXPECT_EQ(b.value(), 3);
}

TEST(Counters, ShardingCorrectUnderThreadPool) {
  obs::Counter& c = obs::counter("test.sharded");
  c.reset();
  constexpr std::size_t kTasks = 64;
  constexpr std::int64_t kPerTask = 10000;
  util::parallel_for(0, kTasks, [&](std::size_t) {
    for (std::int64_t k = 0; k < kPerTask; ++k) c.add();
  });
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kTasks) * kPerTask);
}

TEST(Counters, ConcurrentDistinctCountersDoNotCross) {
  obs::Counter& a = obs::counter("test.cross.a");
  obs::Counter& b = obs::counter("test.cross.b");
  a.reset();
  b.reset();
  util::parallel_for(0, 32, [&](std::size_t i) {
    (i % 2 ? a : b).add(static_cast<std::int64_t>(i));
  });
  std::int64_t odd = 0, even = 0;
  for (std::int64_t i = 0; i < 32; ++i) (i % 2 ? odd : even) += i;
  EXPECT_EQ(a.value(), odd);
  EXPECT_EQ(b.value(), even);
}

TEST(Counters, SnapshotIsNameSortedAndContainsRegistered) {
  obs::counter("test.snap.x").reset();
  auto snap = obs::counters_snapshot();
  ASSERT_FALSE(snap.empty());
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].first, snap[i].first);
  }
  bool found = false;
  for (const auto& [name, value] : snap) found |= name == "test.snap.x";
  EXPECT_TRUE(found);
}

TEST(Gauges, SetAddValue) {
  obs::Gauge& g = obs::gauge("test.gauge");
  g.set(1.5);
  g.add(2.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.75);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Gauges, ConcurrentAddIsLossless) {
  obs::Gauge& g = obs::gauge("test.gauge.concurrent");
  g.reset();
  util::parallel_for(0, 64, [&](std::size_t) {
    for (int k = 0; k < 1000; ++k) g.add(0.5);
  });
  EXPECT_DOUBLE_EQ(g.value(), 64 * 1000 * 0.5);
}

TEST(Trace, NestingParentAndDepth) {
  obs::clear_spans();
  {
    obs::Span outer("outer");
    {
      obs::Span inner("inner");
      obs::Span sibling_after("innermost");
    }
  }
  auto spans = obs::spans_snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Recorded on close: children first.
  EXPECT_EQ(spans[0].name, "innermost");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[2].name, "outer");
  EXPECT_EQ(spans[2].parent, -1);
  EXPECT_EQ(spans[2].depth, 0);
  EXPECT_EQ(spans[1].parent, spans[2].id);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[0].parent, spans[1].id);
  EXPECT_EQ(spans[0].depth, 2);
  EXPECT_GE(spans[2].dur_ns, spans[1].dur_ns);
  EXPECT_GE(spans[1].dur_ns, 0);
  EXPECT_GE(spans[1].start_ns, spans[2].start_ns);
}

TEST(Trace, BoundedBufferDropsAndClears) {
  obs::clear_spans();
  obs::set_span_capacity(2);
  for (int i = 0; i < 5; ++i) obs::Span s("overflow");
  EXPECT_EQ(obs::spans_snapshot().size(), 2u);
  EXPECT_EQ(obs::spans_dropped(), 3);
  obs::set_span_capacity(4096);
  obs::clear_spans();
  EXPECT_TRUE(obs::spans_snapshot().empty());
  EXPECT_EQ(obs::spans_dropped(), 0);
}

TEST(Json, DumpParseRoundTrip) {
  obs::Json j = obs::Json::object();
  j["int"] = std::int64_t{42};
  j["neg"] = std::int64_t{-7};
  j["pi"] = 3.25;
  j["flag"] = true;
  j["nul"] = obs::Json();
  j["text"] = "line\n\"quoted\"\\and\ttab";
  obs::Json arr = obs::Json::array();
  arr.push_back(std::int64_t{1});
  arr.push_back("two");
  j["arr"] = std::move(arr);

  for (int indent : {-1, 2}) {
    obs::Json back = obs::Json::parse(j.dump(indent));
    EXPECT_EQ(back.find("int")->as_int(), 42);
    EXPECT_EQ(back.find("neg")->as_int(), -7);
    EXPECT_DOUBLE_EQ(back.find("pi")->as_double(), 3.25);
    EXPECT_TRUE(back.find("flag")->as_bool());
    EXPECT_TRUE(back.find("nul")->is_null());
    EXPECT_EQ(back.find("text")->as_string(), "line\n\"quoted\"\\and\ttab");
    ASSERT_EQ(back.find("arr")->size(), 2u);
    EXPECT_EQ(back.find("arr")->at(0).as_int(), 1);
    EXPECT_EQ(back.find("arr")->at(1).as_string(), "two");
  }
}

TEST(Json, ObjectKeepsInsertionOrder) {
  obs::Json j = obs::Json::object();
  j["zeta"] = 1;
  j["alpha"] = 2;
  const std::string text = j.dump();
  EXPECT_LT(text.find("zeta"), text.find("alpha"));
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  obs::Json j = obs::Json::object();
  j["nan"] = std::nan("");
  EXPECT_EQ(j.dump(), "{\"nan\":null}");
}

// Satellite regression: JSONL emitters went through ostream <<, which
// honours the global locale — under de_DE a double prints "2,5" and
// every downstream parser chokes. dump() now formats via to_chars, so
// the emitted bytes are identical whatever locale the host process
// (or an embedding application) has installed.
TEST(Json, DumpIsLocaleIndependent) {
  obs::Json j = obs::Json::object();
  j["lp_value"] = 1234.5625;
  j["ratio"] = 0.001;
  j["count"] = std::int64_t{1000000};
  const std::string reference = j.dump();

  // Prefer the real de_DE locale; fall back to a synthetic comma
  // numpunct when the host has no locale data installed (minimal
  // containers usually don't), so the regression is exercised either
  // way.
  struct CommaPunct : std::numpunct<char> {
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
  };
  const std::locale saved = std::locale();
  const char* c_saved = std::setlocale(LC_ALL, nullptr);
  const std::string c_saved_name = c_saved ? c_saved : "C";
  const bool have_de = std::setlocale(LC_ALL, "de_DE.UTF-8") != nullptr ||
                       std::setlocale(LC_ALL, "de_DE.utf8") != nullptr;
  bool cxx_locale_set = false;
  if (have_de) {
    try {
      std::locale::global(std::locale("de_DE.UTF-8"));
      cxx_locale_set = true;
    } catch (const std::runtime_error&) {
    }
  }
  if (!cxx_locale_set) {
    std::locale::global(std::locale(std::locale::classic(), new CommaPunct));
  }

  const std::string under_locale = j.dump();
  const obs::Json parsed = obs::Json::parse(under_locale);
  const double lp = parsed.find("lp_value")->as_double();
  const double ratio = parsed.find("ratio")->as_double();
  const std::int64_t count = parsed.find("count")->as_int();

  std::locale::global(saved);
  std::setlocale(LC_ALL, c_saved_name.c_str());

  EXPECT_EQ(under_locale, reference);
  EXPECT_NE(under_locale.find("1234.5625"), std::string::npos);
  EXPECT_DOUBLE_EQ(lp, 1234.5625);
  EXPECT_DOUBLE_EQ(ratio, 0.001);
  EXPECT_EQ(count, 1000000);
}

TEST(Json, ParseRejectsMalformed) {
  EXPECT_THROW(obs::Json::parse("{"), util::CheckError);
  EXPECT_THROW(obs::Json::parse("[1,]"), util::CheckError);
  EXPECT_THROW(obs::Json::parse("{} trailing"), util::CheckError);
  EXPECT_THROW(obs::Json::parse("\"unterminated"), util::CheckError);
  EXPECT_THROW(obs::Json::parse("nulL"), util::CheckError);
}

/// Resolves "a/b" paths against the report; counters' own names
/// contain dots, so '/' separates levels.
const obs::Json* resolve(const obs::Json& root, const std::string& path) {
  const obs::Json* cur = &root;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    const std::string key = path.substr(
        pos, slash == std::string::npos ? std::string::npos : slash - pos);
    cur = cur->find(key);
    if (!cur || slash == std::string::npos) break;
    pos = slash + 1;
  }
  return cur;
}

TEST(Report, GoldenKeysOnCorpusInstance) {
  std::ifstream in(std::string(NAT_CORPUS_DIR) + "/binary_nest_d3.txt");
  ASSERT_TRUE(in) << "corpus instance missing";
  const at::Instance instance = io::read_instance(in);

  obs::reset_all();
  obs::clear_spans();
  const at::NestedSolveResult r = at::solve_nested(instance);

  obs::RunSummary summary;
  summary.solver = "nested";
  summary.jobs = instance.num_jobs();
  summary.g = instance.g;
  summary.horizon_lo = instance.horizon().lo;
  summary.horizon_hi = instance.horizon().hi;
  summary.volume = instance.total_volume();
  summary.volume_lower_bound = instance.volume_lower_bound();
  summary.laminar = instance.is_laminar();
  summary.active_slots = r.active_slots;
  summary.lp_objective = r.lp_value;
  summary.lp_iterations = r.lp_iterations;
  summary.repairs = r.repairs;

  // Serialize, reparse, and check the parsed document — the golden
  // file lists every key the schema promises.
  const obs::Json report =
      obs::Json::parse(obs::run_report(summary).dump(2));

  std::ifstream golden(std::string(NAT_GOLDEN_DIR) +
                       "/report_required_keys.txt");
  ASSERT_TRUE(golden) << "golden key list missing";
  std::string line;
  int checked = 0;
  while (std::getline(golden, line)) {
    if (line.empty() || line[0] == '#') continue;
    const obs::Json* v = resolve(report, line);
    EXPECT_NE(v, nullptr) << "report is missing required key: " << line;
    ++checked;
  }
  EXPECT_GT(checked, 15) << "golden key list suspiciously short";

  // Headline numbers survived the round trip.
  EXPECT_EQ(resolve(report, "run/active_slots")->as_int(), r.active_slots);
  EXPECT_NEAR(resolve(report, "run/lp_objective")->as_double(), r.lp_value,
              1e-9);
  EXPECT_GT(resolve(report, "counters/lp.sparse.pivots")->as_int(), 0);
  EXPECT_GT(resolve(report, "counters/flow.dinic.aug_paths")->as_int(), 0);

  // Per-stage spans are present and the lp_solve span nests under the
  // end-to-end solve_nested span.
  const obs::Json* spans = resolve(report, "spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  std::int64_t total_id = -1, lp_parent = -2;
  std::set<std::string> names;
  for (std::size_t i = 0; i < spans->size(); ++i) {
    const obs::Json& s = spans->at(i);
    names.insert(s.find("name")->as_string());
    EXPECT_GE(s.find("dur_ns")->as_int(), 0);
    if (s.find("name")->as_string() == "solve_nested") {
      total_id = s.find("id")->as_int();
    }
    if (s.find("name")->as_string() == "solve_nested/lp_solve") {
      lp_parent = s.find("parent")->as_int();
    }
  }
  EXPECT_TRUE(names.count("solve_nested"));
  EXPECT_TRUE(names.count("solve_nested/lp_solve"));
  EXPECT_TRUE(names.count("solve_nested/rounding"));
  EXPECT_TRUE(names.count("solve_nested/extract"));
  EXPECT_EQ(lp_parent, total_id);
}

}  // namespace
}  // namespace nat
