#include "baselines/exact_lp.hpp"

#include <gtest/gtest.h>

#include "baselines/exact.hpp"
#include "helpers.hpp"

namespace nat::at::baselines {
namespace {

TEST(LpBnb, EmptyAndKnownFamilies) {
  EXPECT_EQ(exact_opt_lp_bnb(Instance{2, {}})->optimum, 0);
  for (std::int64_t g : {2, 4}) {
    EXPECT_EQ(exact_opt_lp_bnb(gen::unit_overload(g))->optimum, 2);
  }
  for (std::int64_t g : {3, 5}) {
    EXPECT_EQ(exact_opt_lp_bnb(gen::lemma51_gap(g))->optimum,
              g + (g + 1) / 2)
        << "g=" << g;
  }
}

TEST(LpBnb, SchedulesAreValid) {
  for (int id = 0; id < 10; ++id) {
    const Instance inst = testing::contended(id);
    auto r = exact_opt_lp_bnb(inst);
    ASSERT_TRUE(r.has_value());
    validate_schedule(inst, r->schedule);
    EXPECT_EQ(r->schedule.active_slots(), r->optimum);
  }
}

// The two exact solvers must agree everywhere (different search
// strategies, same NP-hard problem).
class LpBnbAgreement : public ::testing::TestWithParam<int> {};

TEST_P(LpBnbAgreement, MatchesCountDfs) {
  const Instance inst = testing::mixed(GetParam());
  auto dfs = exact_opt_laminar(inst);
  auto bnb = exact_opt_lp_bnb(inst);
  ASSERT_TRUE(dfs.has_value());
  ASSERT_TRUE(bnb.has_value()) << "LP B&B budget exhausted";
  EXPECT_EQ(bnb->optimum, dfs->optimum) << "instance " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, LpBnbAgreement, ::testing::Range(0, 120));

TEST(LpBnb, HandlesLargerInstancesThanCountDfsComfortably) {
  // A mid-size contended instance; the LP bound collapses the search
  // to a handful of LP solves.
  gen::ContendedParams params;
  params.g = 10;
  params.min_groups = 8;
  params.max_groups = 8;
  util::Rng rng(11);
  const Instance inst = gen::random_contended(params, rng);
  auto r = exact_opt_lp_bnb(inst);
  ASSERT_TRUE(r.has_value());
  validate_schedule(inst, r->schedule);
  EXPECT_LT(r->lp_solves, 2000);
}

}  // namespace
}  // namespace nat::at::baselines
