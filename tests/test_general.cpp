// The general (non-laminar) LP-rounding 2-approx backend
// (activetime/general.hpp) and the laminarity dispatcher
// (at::solve_active_time): differential 2-approx vs the brute-force
// optimum, bit-identity with solve_nested on laminar input, the hard
// crossing family, cancellation, and the O(n log n) is_laminar rewrite.
#include "activetime/general.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "activetime/instance.hpp"
#include "activetime/solver.hpp"
#include "baselines/exact.hpp"
#include "helpers.hpp"
#include "instances/generators.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "verify/verify.hpp"

namespace nat::at {
namespace {

GeneralSolverOptions full_verify() {
  GeneralSolverOptions options;
  options.verify_level = verify::VerifyLevel::kFull;
  return options;
}

/// LP <= ALG <= 2*LP (+ float slack), schedule valid, slots consistent.
void expect_certified(const Instance& instance,
                      const GeneralSolveResult& res) {
  ASSERT_FALSE(res.lp_failed);
  validate_schedule(instance, res.schedule);
  EXPECT_EQ(res.active_slots,
            static_cast<std::int64_t>(res.open_slots.size()));
  EXPECT_GE(static_cast<double>(res.active_slots), res.lp_value - 1e-6);
  EXPECT_LE(static_cast<double>(res.active_slots),
            2.0 * res.lp_value + 1e-6 * (1.0 + res.lp_value));
}

TEST(General, EmptyInstanceSolvesToZero) {
  const GeneralSolveResult res = solve_general(Instance{3, {}});
  EXPECT_EQ(res.active_slots, 0);
  EXPECT_TRUE(res.open_slots.empty());
}

TEST(General, CrossingFixtureCertifies) {
  const Instance instance = testing::crossing();
  ASSERT_FALSE(instance.is_laminar());
  const GeneralSolveResult res = solve_general(instance, full_verify());
  expect_certified(instance, res);
  const auto opt = baselines::exact_opt_brute_force(instance);
  ASSERT_TRUE(opt.has_value());
  EXPECT_GE(res.active_slots, *opt);
  EXPECT_LE(res.active_slots, 2 * *opt);
}

TEST(General, InfeasibleInstanceThrows) {
  Instance instance;
  instance.g = 1;
  instance.jobs = {Job{0, 2, 2}, Job{0, 2, 1}};  // volume 3 > g * 2
  EXPECT_THROW(solve_general(instance), util::CheckError);
}

TEST(General, SingleSaturatedWindow) {
  // g+1 unit jobs in one window of length 2: LP = (g+1)/g, OPT = 2.
  const Instance instance = gen::unit_overload(4);
  const GeneralSolveResult res = solve_general(instance, full_verify());
  expect_certified(instance, res);
  EXPECT_EQ(res.active_slots, 2);
}

TEST(General, TwoApproxVsExactBruteForce) {
  // The differential core: random general instances small enough for
  // the slot-subset oracle; assert LP <= OPT <= ALG <= 2*OPT.
  for (int id = 0; id < 40; ++id) {
    util::Rng knobs(7100 + id);
    gen::RandomGeneralParams params;
    params.g = knobs.uniform_int(1, 4);
    params.jobs = static_cast<int>(knobs.uniform_int(3, 12));
    params.horizon = knobs.uniform_int(5, 14);
    params.max_length = knobs.uniform_int(2, 6);
    params.max_processing = knobs.uniform_int(1, 4);
    util::Rng rng(400 + id);
    const Instance instance = gen::random_general(params, rng);
    const GeneralSolveResult res = solve_general(instance, full_verify());
    expect_certified(instance, res);
    const auto opt = baselines::exact_opt_brute_force(instance, 16);
    ASSERT_TRUE(opt.has_value()) << "id " << id;
    EXPECT_GE(res.active_slots, *opt) << "id " << id;
    EXPECT_LE(res.active_slots, 2 * *opt) << "id " << id;
    EXPECT_LE(res.lp_value, static_cast<double>(*opt) + 1e-6) << "id " << id;
  }
}

TEST(General, HardCrossingFamilyCertifies) {
  for (std::int64_t g = 2; g <= 4; ++g) {
    for (int k = 2; k <= 5; ++k) {
      const Instance instance = gen::hard_crossing(g, k);
      ASSERT_FALSE(instance.is_laminar());
      const GeneralSolveResult res = solve_general(instance, full_verify());
      expect_certified(instance, res);
      // Each of the k chained windows needs two open slots somewhere in
      // its three slots; windows overlap in one slot, so at least
      // ceil(3k/2)-ish slots are forced — k+1 is a safe lower bound.
      EXPECT_GE(res.active_slots, k + 1) << "g " << g << " k " << k;
    }
  }
}

TEST(General, LaminarInputAcceptedToo) {
  // solve_general does not require crossing windows.
  const Instance instance = testing::small_nested();
  ASSERT_TRUE(instance.is_laminar());
  const GeneralSolveResult res = solve_general(instance, full_verify());
  expect_certified(instance, res);
}

TEST(General, CancellationPollsInsideRoundingLoop) {
  // A pre-fired token must abort the solve with CancelledError, not a
  // wrong result — the poll sites include the oracle feasibility test
  // inside the repair/trim loops.
  const Instance instance = gen::hard_crossing(3, 4);
  util::CancelToken token;
  token.cancel();
  GeneralSolverOptions options;
  options.cancel = &token;
  EXPECT_THROW(solve_general(instance, options), util::CancelledError);
}

// ---------------------------------------------------------------------------
// The dispatcher.

TEST(Dispatch, LaminarBitIdenticalToSolveNested) {
  for (int id = 0; id < 20; ++id) {
    const Instance instance = testing::mixed(id);
    ASSERT_TRUE(instance.is_laminar());
    const ActiveTimeResult via = solve_active_time(instance);
    const NestedSolveResult direct = solve_nested(instance);
    EXPECT_EQ(via.backend, Backend::kNested) << "id " << id;
    EXPECT_EQ(via.schedule.assignment, direct.schedule.assignment)
        << "id " << id;
    EXPECT_EQ(via.active_slots, direct.active_slots) << "id " << id;
    EXPECT_EQ(via.repairs, direct.repairs) << "id " << id;
    EXPECT_DOUBLE_EQ(via.lp_value, direct.lp_value) << "id " << id;
  }
}

TEST(Dispatch, CrossingRoutesToGeneralBackend) {
  const Instance instance = testing::crossing();
  const ActiveTimeResult res = solve_active_time(instance);
  EXPECT_EQ(res.backend, Backend::kGeneral);
  validate_schedule(instance, res.schedule);
  EXPECT_GE(static_cast<double>(res.active_slots), res.lp_value - 1e-6);
}

// Degenerate laminarity shapes must keep routing to the nested solver:
// a false-negative is_laminar would silently downgrade them to the
// 2-approx general backend (still correct, but no longer exact-LP
// certified), so the backend choice is pinned here.
TEST(Dispatch, DegenerateLaminarShapesRouteToNested) {
  // Empty instance.
  EXPECT_EQ(solve_active_time(Instance{2, {}}).backend, Backend::kNested);
  // Single job.
  const Instance single{2, {Job{1, 5, 2}}};
  EXPECT_TRUE(single.is_laminar());
  EXPECT_EQ(solve_active_time(single).backend, Backend::kNested);
  // All windows identical.
  const Instance same{2, {Job{0, 4, 1}, Job{0, 4, 2}, Job{0, 4, 1}}};
  EXPECT_TRUE(same.is_laminar());
  EXPECT_EQ(solve_active_time(same).backend, Backend::kNested);
  // Touching half-open windows are disjoint, not crossing.
  const Instance touching{2, {Job{0, 3, 2}, Job{3, 6, 2}}};
  EXPECT_TRUE(touching.is_laminar());
  EXPECT_EQ(solve_active_time(touching).backend, Backend::kNested);
  // Control: an actual crossing pair leaves the nested path.
  EXPECT_EQ(solve_active_time(testing::crossing()).backend,
            Backend::kGeneral);
}

TEST(Dispatch, CancelReachesBothBackends) {
  util::CancelToken token;
  token.cancel();
  ActiveTimeOptions options;
  options.cancel = &token;
  EXPECT_THROW(solve_active_time(testing::small_nested(), options),
               util::CancelledError);
  EXPECT_THROW(solve_active_time(testing::crossing(), options),
               util::CancelledError);
}

// ---------------------------------------------------------------------------
// The O(n log n) is_laminar sweep (satellite of the same PR): randomized
// differential test against the obvious quadratic reference.

bool is_laminar_quadratic(const Instance& instance) {
  for (std::size_t a = 0; a < instance.jobs.size(); ++a) {
    for (std::size_t b = a + 1; b < instance.jobs.size(); ++b) {
      const Interval wa = instance.jobs[a].window();
      const Interval wb = instance.jobs[b].window();
      if (wa.disjoint(wb) || wa.inside(wb) || wb.inside(wa)) continue;
      return false;
    }
  }
  return true;
}

TEST(IsLaminar, MatchesQuadraticReferenceOn1kRandomInstances) {
  util::Rng rng(20260808);
  int laminar_seen = 0, crossing_seen = 0;
  for (int it = 0; it < 1000; ++it) {
    Instance instance;
    instance.g = 1;
    const int n = static_cast<int>(rng.uniform_int(0, 12));
    // Small coordinate range so nesting, duplication, touching, and
    // crossing all occur with useful frequency.
    for (int j = 0; j < n; ++j) {
      const Time lo = rng.uniform_int(0, 8);
      const Time hi = lo + rng.uniform_int(1, 6);
      instance.jobs.push_back(Job{lo, hi, 1});
    }
    const bool fast = instance.is_laminar();
    ASSERT_EQ(fast, is_laminar_quadratic(instance)) << "iteration " << it;
    (fast ? laminar_seen : crossing_seen) += 1;
  }
  // The distribution must exercise both answers.
  EXPECT_GT(laminar_seen, 50);
  EXPECT_GT(crossing_seen, 50);
}

TEST(IsLaminar, EdgeCases) {
  Instance empty{2, {}};
  EXPECT_TRUE(empty.is_laminar());
  // Equal-lo windows sorted hi-descending: [0,4) then [0,2) nests.
  Instance equal_lo{2, {Job{0, 2, 1}, Job{0, 4, 1}}};
  EXPECT_TRUE(equal_lo.is_laminar());
  // Touching half-open windows are disjoint, not crossing.
  Instance touching{2, {Job{0, 3, 1}, Job{3, 5, 1}}};
  EXPECT_TRUE(touching.is_laminar());
  // A window crossing a *grandparent* (popped ancestor stays relevant).
  Instance deep{2, {Job{0, 10, 1}, Job{1, 3, 1}, Job{4, 12, 1}}};
  EXPECT_FALSE(deep.is_laminar());
}

}  // namespace
}  // namespace nat::at
