#include "activetime/exact_pipeline.hpp"

#include <gtest/gtest.h>

#include "activetime/solver.hpp"
#include "baselines/exact.hpp"
#include "helpers.hpp"

namespace nat::at {
namespace {

TEST(ExactPipeline, EmptyAndSingleJob) {
  EXPECT_EQ(solve_nested_exact(Instance{1, {}}).active_slots, 0);
  Instance inst;
  inst.g = 2;
  inst.jobs = {Job{0, 7, 4}};
  ExactPipelineResult r = solve_nested_exact(inst);
  EXPECT_EQ(r.active_slots, 4);
  EXPECT_EQ(r.lp_value, num::Rational(4));
}

TEST(ExactPipeline, UnitOverloadLpValueIsExactlyTwo) {
  const Instance inst = gen::unit_overload(7);
  ExactPipelineResult r = solve_nested_exact(inst);
  EXPECT_EQ(r.lp_value, num::Rational(2));
  EXPECT_EQ(r.active_slots, 2);
}

TEST(ExactPipeline, Lemma51LpValueIsExactlyGPlusOne) {
  // The strengthened tree LP's optimum on the Lemma 5.1 family is
  // exactly g + 1 (the long job spreads 1/g per group) — the kind of
  // statement only exact arithmetic can assert with EQ.
  for (std::int64_t g : {3, 4, 5}) {
    const Instance inst = gen::lemma51_gap(g);
    ExactPipelineResult r = solve_nested_exact(inst);
    EXPECT_EQ(r.lp_value, num::Rational(g + 1)) << "g=" << g;
    EXPECT_LE(static_cast<double>(r.active_slots),
              1.8 * static_cast<double>(g + 1) + 1e-12);
  }
}

// Cross-check against the double pipeline and the exact optimum. The
// two pipelines may pick different LP vertices, so slot counts can
// differ; the LP value, validity and the 9/5 certificate must agree.
class ExactPipelineSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExactPipelineSweep, AgreesWithDoublePipeline) {
  const Instance inst = testing::mixed(GetParam());
  if (inst.num_jobs() > 30) GTEST_SKIP() << "rational simplex too slow";
  ExactPipelineResult exact = solve_nested_exact(inst);
  validate_schedule(inst, exact.schedule);
  NestedSolveResult dbl = solve_nested(inst);
  EXPECT_NEAR(exact.lp_value.to_double(), dbl.lp_value, 1e-6)
      << "LP optima must agree across arithmetic";
  auto opt = baselines::exact_opt_laminar(inst);
  ASSERT_TRUE(opt.has_value());
  EXPECT_GE(exact.active_slots, opt->optimum);
  EXPECT_LE(static_cast<double>(exact.active_slots),
            1.8 * static_cast<double>(opt->optimum) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExactPipelineSweep, ::testing::Range(0, 40));

}  // namespace
}  // namespace nat::at
