// Multi-tenant daemon: deterministic vruntime fairness on the pure
// FairQueue (synthetic charges are the simulated clock), and the
// Daemon's fault boundary / admission / deadline / shutdown contract
// end-to-end over in-memory streams.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include "daemon/daemon.hpp"
#include "daemon/fair_queue.hpp"
#include "obs/report.hpp"
#include "util/check.hpp"
#include "util/fd_streambuf.hpp"

namespace nat::daemon {
namespace {

constexpr std::int64_t kMs = 1'000'000;  // synthetic charge: 1 ms in ns

/// Runs one pick+charge step and returns the dispatched tenant.
std::string step(FairQueue& q, std::int64_t charge_ns = kMs) {
  std::uint64_t ticket = 0;
  std::string tenant;
  EXPECT_TRUE(q.pick(&ticket, &tenant));
  q.charge(tenant, charge_ns);
  return tenant;
}

TEST(FairQueue, WeightedDispatchOrderIsDeterministic) {
  FairQueue q;
  q.configure_tenant("a", TenantConfig{1.0, 256, 1});
  q.configure_tenant("b", TenantConfig{2.0, 256, 1});
  for (std::uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(q.try_enqueue("a", 100 + i));
    ASSERT_TRUE(q.try_enqueue("b", 200 + i));
  }
  // Equal 1 ms charges, weights 1:2. Ties break to "a" by name; each
  // "a" completion costs 1.0 virtual ms, each "b" 0.5, so the steady
  // pattern is one "a" per two "b"s until b's queue runs dry.
  const std::vector<std::string> expected = {"a", "b", "b", "a", "b", "b",
                                             "a", "b", "b", "a", "a", "a"};
  std::vector<std::string> got;
  for (std::size_t i = 0; i < expected.size(); ++i) got.push_back(step(q));
  EXPECT_EQ(got, expected);
  EXPECT_EQ(q.queued(), 0u);
}

TEST(FairQueue, InteractiveArrivalJumpsAFlood) {
  FairQueue q;
  for (std::uint64_t i = 0; i < 50; ++i) ASSERT_TRUE(q.try_enqueue("flood", i));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(step(q), "flood");
  // A tenant arriving mid-flood starts at min_vruntime, not 0 — but
  // that still beats the flood's accrued vruntime, so it runs next
  // even with 40 flood requests queued ahead of it.
  ASSERT_TRUE(q.try_enqueue("ui", 999));
  EXPECT_EQ(step(q), "ui");
  EXPECT_EQ(step(q), "flood");
}

TEST(FairQueue, IdleTenantDoesNotBankCredit) {
  FairQueue q;
  ASSERT_TRUE(q.try_enqueue("a", 0));
  EXPECT_EQ(step(q), "a");  // a has worked 1 virtual ms; now goes idle
  for (std::uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(q.try_enqueue("b", i));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(step(q), "b");
  EXPECT_NEAR(q.vruntime_ms("b"), 10.0, 1e-9);
  // Waking up, a re-enters at max(own, min_vruntime): the 9 ms it
  // "slept" is not banked as credit.
  ASSERT_TRUE(q.try_enqueue("a", 100));
  EXPECT_GE(q.vruntime_ms("a"), 9.0);
}

TEST(FairQueue, QueueDepthCapRejects) {
  FairQueue q;
  q.configure_tenant("t", TenantConfig{1.0, 2, 1});
  EXPECT_TRUE(q.try_enqueue("t", 0));
  EXPECT_TRUE(q.try_enqueue("t", 1));
  EXPECT_FALSE(q.try_enqueue("t", 2));
  EXPECT_EQ(q.queued("t"), 2u);
  EXPECT_EQ(q.counters().at("t").rejected, 1);
  // Dispatching one frees a slot.
  step(q);
  EXPECT_TRUE(q.try_enqueue("t", 3));
}

TEST(FairQueue, InFlightCapHoldsBackSecondPick) {
  FairQueue q;
  ASSERT_TRUE(q.try_enqueue("t", 0));
  ASSERT_TRUE(q.try_enqueue("t", 1));
  std::uint64_t ticket = 0;
  std::string tenant;
  ASSERT_TRUE(q.pick(&ticket, &tenant));
  EXPECT_EQ(ticket, 0u);
  // Default max_in_flight = 1: the second request must wait for the
  // first to be charged back.
  EXPECT_FALSE(q.pick(&ticket, &tenant));
  q.charge("t", kMs);
  ASSERT_TRUE(q.pick(&ticket, &tenant));
  EXPECT_EQ(ticket, 1u);
}

TEST(FairQueue, FifoModeIgnoresWeightsAndCaps) {
  FairQueueOptions options;
  options.fifo = true;
  FairQueue q(options);
  q.configure_tenant("a", TenantConfig{100.0, 256, 1});
  ASSERT_TRUE(q.try_enqueue("b", 0));
  ASSERT_TRUE(q.try_enqueue("a", 1));
  ASSERT_TRUE(q.try_enqueue("b", 2));
  std::uint64_t ticket = 0;
  std::string tenant;
  // Pure arrival order, and the in-flight cap is ignored (both "b"
  // requests dispatch without an intervening charge).
  ASSERT_TRUE(q.pick(&ticket, &tenant));
  EXPECT_EQ(tenant, "b");
  ASSERT_TRUE(q.pick(&ticket, &tenant));
  EXPECT_EQ(tenant, "a");
  ASSERT_TRUE(q.pick(&ticket, &tenant));
  EXPECT_EQ(tenant, "b");
  EXPECT_EQ(q.in_flight("b"), 2);
}

TEST(FairQueue, ConfigValidation) {
  FairQueue q;
  EXPECT_THROW(q.configure_tenant("t", TenantConfig{0.0, 1, 1}),
               util::CheckError);
  EXPECT_THROW(q.configure_tenant("t", TenantConfig{1.0, 0, 1}),
               util::CheckError);
  EXPECT_THROW(q.configure_tenant("t", TenantConfig{1.0, 1, 0}),
               util::CheckError);
  EXPECT_FALSE(q.has_tenant("t"));
}

// ---------------------------------------------------------------------------
// Daemon end-to-end.

/// Thread-safe record collector used as the daemon sink.
struct Collector {
  std::mutex mu;
  std::vector<std::string> records;

  RecordSink sink() {
    return [this](const std::string& r) {
      std::lock_guard<std::mutex> lk(mu);
      records.push_back(r);
    };
  }

  std::vector<obs::Json> parsed() {
    std::lock_guard<std::mutex> lk(mu);
    std::vector<obs::Json> out;
    for (const std::string& r : records) out.push_back(obs::Json::parse(r));
    return out;
  }

  /// The record whose "index" field is `index` (every daemon record
  /// carries one except the stats snapshot before indexing).
  obs::Json find_index(std::int64_t index) {
    for (obs::Json& j : parsed()) {
      const obs::Json* idx = j.find("index");
      if (idx != nullptr && idx->is_number() && idx->as_int() == index) {
        return std::move(j);
      }
    }
    ADD_FAILURE() << "no record with index " << index;
    return obs::Json::object();
  }
};

std::string field(const obs::Json& j, const char* key) {
  const obs::Json* v = j.find(key);
  return v != nullptr && v->type() == obs::Json::Type::kString ? v->as_string()
                                                               : "";
}

/// g=2, three jobs in nested (laminar) windows; solves in microseconds.
constexpr const char* kQuickJobs =
    R"("g":2,"jobs":[[0,4,2],[0,4,2],[1,3,1]])";

TEST(Daemon, PoisonedStreamOneRecordPerLineExitsClean) {
  Collector out;
  DaemonOptions options;
  options.threads = 2;
  options.sink = out.sink();
  Daemon daemon(options);

  const std::vector<std::string> lines = {
      std::string(R"({"op":"solve","tenant":"ui","id":"q1",)") + kQuickJobs +
          "}",                                                        // 0
      "this is not json",                                             // 1
      R"({"op":"frobnicate"})",                                       // 2
      R"({"op":"solve","id":"bad","g":2,"jobs":[[5,3,9]]})",          // 3
      std::string(R"({"op":"open","tenant":"ui","session":"s",)") +
          kQuickJobs + "}",                                           // 4
      R"({"op":"delta","tenant":"ui","session":"s","kind":"warp"})",  // 5
      R"({"op":"delta","tenant":"ui","session":"zz","kind":"remove","index":0})",  // 6
      std::string(R"({"op":"solve","id":"late","deadline_ms":-1,)") +
          kQuickJobs + "}",                                           // 7
      R"({"op":"close","tenant":"ui","session":"s"})",                // 8
  };
  for (const std::string& line : lines) {
    EXPECT_TRUE(daemon.submit_line(line));
  }
  daemon.drain();

  ASSERT_EQ(out.parsed().size(), lines.size());  // one record per line
  EXPECT_EQ(field(out.find_index(0), "status"), "solved");
  EXPECT_EQ(field(out.find_index(1), "failure_class"), "input:parse");
  EXPECT_EQ(field(out.find_index(2), "failure_class"), "input:op");
  EXPECT_EQ(field(out.find_index(3), "failure_class"), "input:validate");
  EXPECT_EQ(field(out.find_index(4), "status"), "solved");
  EXPECT_EQ(field(out.find_index(5), "failure_class"), "input:parse");
  EXPECT_EQ(field(out.find_index(6), "failure_class"), "session:unknown");
  const obs::Json late = out.find_index(7);
  EXPECT_EQ(field(late, "status"), "timeout");
  EXPECT_EQ(field(late, "failure_class"), "timeout");
  EXPECT_EQ(field(late, "error"), "deadline expired while queued");
  EXPECT_EQ(field(out.find_index(8), "status"), "solved");

  const DaemonStats s = daemon.stats();
  EXPECT_EQ(s.submitted, static_cast<std::int64_t>(lines.size()));
  EXPECT_EQ(s.solved, 3);
  EXPECT_EQ(s.errors, 5);
  EXPECT_EQ(s.timeouts, 1);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.in_flight, 0u);
}

TEST(Daemon, ServeStreamsRecordsAndDrains) {
  DaemonOptions options;
  options.threads = 2;
  Daemon daemon(options);
  std::istringstream in(
      "# a comment, then a blank line, then two requests\n"
      "\n" +
      std::string(R"({"op":"solve","id":"a",)") + kQuickJobs + "}\n" +
      R"({"op":"stats"})" + "\n");
  std::ostringstream out;
  EXPECT_EQ(daemon.serve(in, out), 0);
  std::istringstream records(out.str());
  std::string line;
  int count = 0;
  while (std::getline(records, line)) {
    const obs::Json j = obs::Json::parse(line);  // every record parses
    EXPECT_TRUE(j.is_object());
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(Daemon, AdmissionRejectsOverQueueDepthCap) {
  Collector out;
  DaemonOptions options;
  options.threads = 1;
  options.start_paused = true;  // requests pile up deterministically
  options.tenant_defaults.max_queue_depth = 2;
  options.sink = out.sink();
  Daemon daemon(options);

  const std::string solve =
      std::string(R"({"op":"solve","tenant":"t",)") + kQuickJobs + "}";
  EXPECT_TRUE(daemon.submit_line(solve));
  EXPECT_TRUE(daemon.submit_line(solve));
  EXPECT_TRUE(daemon.submit_line(solve));  // over cap: rejected inline

  const obs::Json rejected = out.find_index(2);
  EXPECT_EQ(field(rejected, "status"), "rejected");
  EXPECT_EQ(field(rejected, "failure_class"), "admission:rejected");

  daemon.resume();
  daemon.drain();
  EXPECT_EQ(out.parsed().size(), 3u);
  const DaemonStats s = daemon.stats();
  EXPECT_EQ(s.admitted, 2);
  EXPECT_EQ(s.rejected, 1);
  EXPECT_EQ(s.solved, 2);
  EXPECT_EQ(s.tenants.at("t").queue.rejected, 1);
}

TEST(Daemon, DeadlineArmedAtEnqueueCountsQueueWait) {
  Collector out;
  DaemonOptions options;
  options.threads = 1;
  options.start_paused = true;
  options.sink = out.sink();
  Daemon daemon(options);

  // Deadline expires while the daemon is paused, i.e. purely in queue.
  EXPECT_TRUE(daemon.submit_line(
      std::string(R"({"op":"solve","id":"d","deadline_ms":1,)") + kQuickJobs +
      "}"));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  daemon.resume();
  daemon.drain();

  const obs::Json j = out.find_index(0);
  EXPECT_EQ(field(j, "status"), "timeout");
  EXPECT_EQ(field(j, "failure_class"), "timeout");
  EXPECT_EQ(field(j, "error"), "deadline expired while queued");
  const obs::Json* left = j.find("deadline_left_ms");
  ASSERT_NE(left, nullptr);
  EXPECT_LT(left->as_double(), 0.0);  // already past due when dispatched
  EXPECT_EQ(daemon.stats().timeouts, 1);
}

TEST(Daemon, ShutdownCancelsQueuedWorkAndFlushesRecords) {
  Collector out;
  DaemonOptions options;
  options.threads = 1;
  options.start_paused = true;
  options.sink = out.sink();
  Daemon daemon(options);

  const std::string solve = std::string(R"({"op":"solve",)") + kQuickJobs + "}";
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(daemon.submit_line(solve));
  daemon.shutdown();
  daemon.drain();

  ASSERT_EQ(out.parsed().size(), 3u);
  for (int i = 0; i < 3; ++i) {
    const obs::Json j = out.find_index(i);
    EXPECT_EQ(field(j, "status"), "timeout");
    EXPECT_EQ(field(j, "failure_class"), "cancelled");
  }
  // After shutdown the daemon refuses new work with a structured record.
  EXPECT_FALSE(daemon.submit_line(solve));
  const obs::Json refused = out.find_index(3);
  EXPECT_EQ(field(refused, "status"), "rejected");
  EXPECT_EQ(field(refused, "failure_class"), "daemon:draining");
  EXPECT_TRUE(daemon.draining());
}

TEST(Daemon, ShutdownOpViaServe) {
  DaemonOptions options;
  options.threads = 1;
  Daemon daemon(options);
  std::istringstream in(R"({"op":"shutdown"})"
                        "\n"
                        R"({"op":"stats"})"
                        "\n");  // never reached
  std::ostringstream out;
  EXPECT_EQ(daemon.serve(in, out), 0);
  EXPECT_TRUE(daemon.draining());
  // Only the shutdown ack was emitted; the stats line was not consumed.
  std::istringstream records(out.str());
  std::string line;
  int count = 0;
  while (std::getline(records, line)) ++count;
  EXPECT_EQ(count, 1);
}

TEST(Daemon, TenantsGetIsolatedSessionNamespaces) {
  Collector out;
  DaemonOptions options;
  options.threads = 2;
  options.sink = out.sink();
  Daemon daemon(options);

  // Both tenants open a session named "s": no collision.
  for (const char* tenant : {"alpha", "beta"}) {
    EXPECT_TRUE(daemon.submit_line(
        std::string(R"({"op":"open","tenant":")") + tenant +
        R"(","session":"s",)" + kQuickJobs + "}"));
  }
  daemon.drain();
  EXPECT_TRUE(daemon.submit_line(
      std::string(R"({"op":"delta","tenant":"alpha","session":"s",)") +
      R"("kind":"add","job":[0,4,2]})"));
  daemon.drain();

  for (const obs::Json& j : out.parsed()) {
    EXPECT_EQ(field(j, "status"), "solved") << field(j, "error");
  }
  const DaemonStats s = daemon.stats();
  EXPECT_EQ(s.tenants.at("alpha").open_sessions, 1);
  EXPECT_EQ(s.tenants.at("beta").open_sessions, 1);
}

TEST(Daemon, TenantOpConfiguresAndValidates) {
  Collector out;
  DaemonOptions options;
  options.threads = 1;
  options.sink = out.sink();
  Daemon daemon(options);

  EXPECT_TRUE(daemon.submit_line(
      R"({"op":"tenant","tenant":"t","weight":4,"max_queue_depth":8})"));
  const obs::Json ok = out.find_index(0);
  EXPECT_EQ(field(ok, "status"), "ok");
  EXPECT_EQ(ok.find("weight")->as_double(), 4.0);
  EXPECT_EQ(ok.find("max_queue_depth")->as_int(), 8);
  EXPECT_EQ(ok.find("max_in_flight")->as_int(), 1);  // default kept

  EXPECT_TRUE(
      daemon.submit_line(R"({"op":"tenant","tenant":"t","weight":0})"));
  const obs::Json bad = out.find_index(1);
  EXPECT_EQ(field(bad, "status"), "error");
  EXPECT_EQ(field(bad, "failure_class"), "input:validate");
}

TEST(Daemon, StatsRecordRoundTrips) {
  Collector out;
  DaemonOptions options;
  options.threads = 1;
  options.sink = out.sink();
  Daemon daemon(options);
  EXPECT_TRUE(daemon.submit_line(std::string(R"({"op":"solve","tenant":"t",)") +
                                 kQuickJobs + "}"));
  daemon.drain();

  const obs::Json j = obs::Json::parse(daemon.stats_record().dump());
  EXPECT_EQ(field(j, "op"), "stats");
  EXPECT_EQ(j.find("submitted")->as_int(), 1);
  EXPECT_EQ(j.find("solved")->as_int(), 1);
  const obs::Json* tenants = j.find("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_TRUE(tenants->is_array());
  ASSERT_EQ(tenants->size(), 1u);
  EXPECT_EQ(field(tenants->at(0), "tenant"), "t");
  EXPECT_EQ(tenants->at(0).find("dispatched")->as_int(), 1);
  const obs::Json* pool = j.find("pool");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->find("workers")->as_int(), 1);
}

// Robust mode (docs/ROBUST.md) threads through DaemonOptions.batch:
// solve records gain the certified robust_lo/robust_hi sandwich, boxed
// 5-element job rows parse, and plain mode keeps the old record shape.
TEST(Daemon, RobustModeEmitsSandwichFields) {
  Collector out;
  DaemonOptions options;
  options.threads = 1;
  options.batch.robust = true;
  options.sink = out.sink();
  Daemon daemon(options);
  EXPECT_TRUE(daemon.submit_line(
      R"({"op":"solve","id":"boxed","g":2,)"
      R"("jobs":[[0,4,2,1,2],[0,4,2],[1,3,1]]})"));
  EXPECT_TRUE(daemon.submit_line(std::string(R"({"op":"solve","id":"pt",)") +
                                 kQuickJobs + "}"));
  daemon.drain();

  ASSERT_EQ(out.parsed().size(), 2u);
  const obs::Json boxed = out.find_index(0);
  EXPECT_EQ(field(boxed, "status"), "solved");
  const obs::Json* lo = boxed.find("robust_lo");
  const obs::Json* hi = boxed.find("robust_hi");
  ASSERT_NE(lo, nullptr);
  ASSERT_NE(hi, nullptr);
  const std::int64_t alg = boxed.find("active_slots")->as_int();
  EXPECT_LE(lo->as_double(), static_cast<double>(alg) + 1e-9);
  EXPECT_GE(hi->as_int(), alg);

  // The point request rides the degenerate path: sandwich closed at
  // the nominal cost.
  const obs::Json pt = out.find_index(1);
  EXPECT_EQ(field(pt, "status"), "solved");
  ASSERT_NE(pt.find("robust_hi"), nullptr);
  EXPECT_EQ(pt.find("robust_hi")->as_int(),
            pt.find("active_slots")->as_int());

  // Control: without the flag the record shape is unchanged.
  Collector plain_out;
  DaemonOptions plain;
  plain.threads = 1;
  plain.sink = plain_out.sink();
  Daemon plain_daemon(plain);
  EXPECT_TRUE(plain_daemon.submit_line(
      std::string(R"({"op":"solve","id":"pt",)") + kQuickJobs + "}"));
  plain_daemon.drain();
  ASSERT_EQ(plain_out.parsed().size(), 1u);
  EXPECT_EQ(plain_out.find_index(0).find("robust_hi"), nullptr);
}

// Satellite regression: a benign signal (handler installed without
// SA_RESTART — what supervisors wire up for SIGHUP/SIGUSR1 stats
// dumps) must not truncate the record stream. serve() runs over
// FdStreambuf-backed iostreams on a socketpair while SIGUSR1 lands on
// the serving thread under load; every request must still produce
// exactly one well-formed record.
TEST(Daemon, ServeSurvivesBenignSignalsUnderLoad) {
  int request_fds[2];
  int record_fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, request_fds), 0);
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, record_fds), 0);
  int sndbuf = 2048;  // force short writes on the record stream
  ::setsockopt(record_fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf,
               sizeof(sndbuf));

  struct sigaction sa = {};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction old = {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  const int kRequests = 200;
  std::atomic<bool> serving{true};
  std::thread server([&] {
    util::FdStreambuf in_buf(request_fds[1]);
    util::FdStreambuf out_buf(record_fds[0]);
    std::istream in(&in_buf);
    std::ostream out(&out_buf);
    DaemonOptions options;
    options.threads = 2;
    Daemon daemon(options);
    EXPECT_EQ(daemon.serve(in, out), 0);
    serving.store(false);
    ::shutdown(record_fds[0], SHUT_WR);
  });
  std::thread pinger([&, handle = server.native_handle()] {
    while (serving.load()) {
      ::pthread_kill(handle, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  // Feed requests from a third thread so the reader below can drain
  // records concurrently (the tiny send buffer would deadlock a
  // sequential write-then-read).
  std::thread feeder([&] {
    util::FdStreambuf req_buf(request_fds[0]);
    std::ostream req(&req_buf);
    for (int i = 0; i < kRequests; ++i) {
      req << R"({"op":"solve","id":"q)" << i << R"(",)" << kQuickJobs
          << "}\n";
    }
    req.flush();
    EXPECT_TRUE(req.good());
    ::shutdown(request_fds[0], SHUT_WR);
  });

  util::FdStreambuf rec_buf(record_fds[1]);
  std::istream records(&rec_buf);
  std::string line;
  int count = 0;
  int solved = 0;
  while (std::getline(records, line)) {
    const obs::Json j = obs::Json::parse(line);  // framing intact
    if (j.find("status") && j.find("status")->as_string() == "solved") {
      ++solved;
    }
    ++count;
  }
  feeder.join();
  pinger.join();
  server.join();
  EXPECT_EQ(count, kRequests);
  EXPECT_EQ(solved, kRequests);

  ::sigaction(SIGUSR1, &old, nullptr);
  ::close(request_fds[0]);
  ::close(request_fds[1]);
  ::close(record_fds[0]);
  ::close(record_fds[1]);
}

}  // namespace
}  // namespace nat::daemon
