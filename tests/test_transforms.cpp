#include "reductions/transforms.hpp"

#include <gtest/gtest.h>

#include "baselines/exact.hpp"
#include "baselines/greedy.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace nat::red {
namespace {

using util::Rng;

SetCoverInstance random_setcover(Rng& rng, int max_d = 5, int max_n = 4) {
  SetCoverInstance inst;
  inst.universe = static_cast<int>(rng.uniform_int(1, max_d));
  const int n = static_cast<int>(rng.uniform_int(1, max_n));
  for (int s = 0; s < n; ++s) {
    std::vector<int> set;
    for (int e = 0; e < inst.universe; ++e) {
      if (rng.chance(0.5)) set.push_back(e);
    }
    inst.sets.push_back(std::move(set));
  }
  return inst;
}

TEST(SetCoverToPsc, ProducesOrderedPositiveVectors) {
  Rng rng(41);
  for (int iter = 0; iter < 40; ++iter) {
    const SetCoverInstance sc = random_setcover(rng);
    const int k = static_cast<int>(
        rng.uniform_int(1, static_cast<int>(sc.sets.size())));
    const PscInstance psc = setcover_to_psc(sc, k);
    EXPECT_EQ(psc.dim(), sc.universe);
    EXPECT_EQ(psc.u.size(), sc.sets.size());
    EXPECT_EQ(psc.k, k);
    // validate() (called inside) already enforces positivity; the
    // builder additionally certifies the ordering hop 2 needs.
  }
}

// Hop-1 equivalence: cover of size <= k exists iff the PSC instance is
// feasible, across random small instances and every k.
TEST(SetCoverToPsc, EquivalenceBruteForce) {
  Rng rng(99);
  for (int iter = 0; iter < 60; ++iter) {
    const SetCoverInstance sc = random_setcover(rng);
    const auto opt = setcover_minimum(sc);
    for (int k = 1; k <= static_cast<int>(sc.sets.size()); ++k) {
      const PscInstance psc = setcover_to_psc(sc, k);
      const bool cover_exists = opt.has_value() && *opt <= k;
      EXPECT_EQ(psc_feasible_brute_force(psc), cover_exists)
          << "iter " << iter << " k=" << k;
    }
  }
}

TEST(PscToActiveTime, RequiresOrderedInput) {
  PscInstance bad;
  bad.u = {{1, 2}};  // increasing: rejected
  bad.v = {1, 1};
  bad.k = 1;
  EXPECT_THROW(psc_to_active_time(bad), util::CheckError);
}

TEST(PscToActiveTime, StructureOfTheEncoding) {
  PscInstance psc;
  psc.u = {{3, 1}, {2, 2}};
  psc.v = {2, 1};
  psc.k = 1;
  const PscToActiveTimeResult r = psc_to_active_time(psc);
  EXPECT_EQ(r.W, 3);
  EXPECT_EQ(r.instance.g, 2 * 3);  // g = dW
  EXPECT_EQ(r.non_special_slots, 2 * (3 - 1));
  EXPECT_TRUE(r.instance.is_laminar());
  EXPECT_EQ(r.instance.horizon(), (at::Interval{0, 2 * 3}));
}

// Hop-2 equivalence: OPT(active time) = n(W-1) + min-k(PSC), verified
// with the exact solvers on tiny ordered instances.
class PscReductionEquivalence : public ::testing::TestWithParam<int> {};

PscInstance random_ordered_psc(Rng& rng) {
  PscInstance psc;
  const int d = static_cast<int>(rng.uniform_int(1, 3));
  const int n = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < n; ++i) {
    Vec u(d);
    std::int64_t cur = rng.uniform_int(1, 3);
    for (int j = 0; j < d; ++j) {
      u[j] = cur;
      cur = rng.uniform_int(1, cur);
    }
    psc.u.push_back(std::move(u));
  }
  Vec v(d);
  std::int64_t cur = rng.uniform_int(0, 4);
  for (int j = 0; j < d; ++j) {
    v[j] = cur;
    cur = rng.uniform_int(0, cur);
  }
  psc.v = std::move(v);
  psc.k = 1;  // unused by the minimum computation
  return psc;
}

TEST_P(PscReductionEquivalence, OptEqualsNonSpecialPlusMinK) {
  Rng rng(7000 + GetParam());
  const PscInstance psc = random_ordered_psc(rng);
  const PscToActiveTimeResult r = psc_to_active_time(psc);

  const auto min_k = psc_minimum_brute_force(psc);
  if (!min_k.has_value()) {
    // Even all specials open cannot fit S3: the instance is infeasible;
    // the exact solver's greedy bootstrap throws.
    EXPECT_THROW(at::baselines::greedy_minimal_feasible(r.instance),
                 util::CheckError);
    return;
  }
  auto opt = at::baselines::exact_opt_laminar(
      r.instance, at::baselines::ExactOptions{100'000'000});
  ASSERT_TRUE(opt.has_value()) << "exact solver budget exhausted";
  EXPECT_EQ(opt->optimum, r.non_special_slots + *min_k)
      << "n=" << psc.u.size() << " d=" << psc.dim() << " W=" << r.W;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PscReductionEquivalence,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace nat::red
