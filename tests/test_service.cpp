// Fault isolation of the batch service layer: one poisoned cell must
// become one structured record while its neighbors solve normally —
// never a process abort, never a hang, never a leaked exception.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/report.hpp"
#include "service/batch.hpp"
#include "util/check.hpp"

namespace nat::service {
namespace {

std::string healthy_cell() {
  // g=2, three jobs in nested windows; solves in microseconds.
  return R"({"g": 2, "jobs": [[0, 4, 2], [0, 4, 2], [1, 3, 1]]})";
}

/// Deep chain of nested windows with slack everywhere: the exact B&B
/// explores this for seconds (measured ~9 s unbounded), so a deadline
/// of a few hundred ms reliably fires mid-search even on much faster
/// hardware, while the healthy microsecond cells stay untouched.
std::string slow_cell(int levels = 200) {
  std::string jobs;
  for (int k = 1; k <= levels; ++k) {
    for (int i = 0; i < 3; ++i) {
      if (!jobs.empty()) jobs += ",";
      jobs += "[0," + std::to_string(5 * k) + ",2]";
    }
  }
  return "{\"g\": 3, \"jobs\": [" + jobs + "]}";
}

BatchItem json_item(std::string id, std::string text) {
  BatchItem item;
  item.id = std::move(id);
  item.text = std::move(text);
  item.format = BatchItem::Format::kJson;
  return item;
}

TEST(Service, ParseJsonInstanceRoundTrip) {
  const at::Instance inst = parse_json_instance(healthy_cell());
  EXPECT_EQ(inst.g, 2);
  ASSERT_EQ(inst.num_jobs(), 3);
  EXPECT_EQ(inst.jobs[2].release, 1);
  EXPECT_EQ(inst.jobs[2].deadline, 3);
  EXPECT_EQ(inst.jobs[2].processing, 1);
}

TEST(Service, ParseJsonInstanceRejectsGarbage) {
  EXPECT_THROW(parse_json_instance("not json"), util::CheckError);
  EXPECT_THROW(parse_json_instance("[1, 2]"), util::CheckError);
  EXPECT_THROW(parse_json_instance(R"({"jobs": []})"), util::CheckError);
  EXPECT_THROW(parse_json_instance(R"({"g": 1})"), util::CheckError);
  EXPECT_THROW(parse_json_instance(R"({"g": 1, "jobs": [[0, 1]]})"),
               util::CheckError);
}

// The PR's acceptance scenario: a batch with one infeasible, one
// malformed, and one invalid cell completes with N-3 solved records and
// 3 structured error records — no terminate, no hang, exit normal.
TEST(Service, MixedBatchIsolatesEachFailure) {
  std::vector<BatchItem> items;
  const int kHealthy = 9;
  for (int i = 0; i < kHealthy; ++i) {
    items.push_back(json_item("ok-" + std::to_string(i), healthy_cell()));
  }
  // g=1 and two unit jobs in a one-slot window: structurally valid but
  // infeasible.
  items.insert(items.begin() + 2,
               json_item("bad-infeasible",
                         R"({"g": 1, "jobs": [[0, 1, 1], [0, 1, 1]]})"));
  items.insert(items.begin() + 5, json_item("bad-parse", "{\"g\": 2,"));
  items.insert(items.begin() + 8,
               json_item("bad-validate", R"({"g": 1, "jobs": [[5, 2, 1]]})"));

  BatchOptions options;
  options.threads = 4;
  int callbacks = 0;
  const BatchReport report =
      solve_batch(items, options, [&](const CellResult&) { ++callbacks; });

  EXPECT_EQ(report.solved, kHealthy);
  EXPECT_EQ(report.errors, 3);
  EXPECT_EQ(report.timeouts, 0);
  EXPECT_EQ(report.skipped, 0);
  EXPECT_EQ(callbacks, static_cast<int>(items.size()));
  ASSERT_EQ(report.cells.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const CellResult& cell = report.cells[i];
    EXPECT_EQ(cell.index, static_cast<int>(i));  // batch order preserved
    EXPECT_EQ(cell.id, items[i].id);
    if (cell.id == "bad-infeasible") {
      EXPECT_EQ(cell.status, CellStatus::kError);
      EXPECT_EQ(cell.failure_class, "infeasible");
    } else if (cell.id == "bad-parse") {
      EXPECT_EQ(cell.status, CellStatus::kError);
      EXPECT_EQ(cell.failure_class, "input:parse");
      EXPECT_EQ(cell.jobs, -1);  // never parsed
    } else if (cell.id == "bad-validate") {
      EXPECT_EQ(cell.status, CellStatus::kError);
      EXPECT_EQ(cell.failure_class, "input:validate");
    } else {
      EXPECT_EQ(cell.status, CellStatus::kSolved);
      EXPECT_EQ(cell.failure_class, "");
      EXPECT_EQ(cell.active_slots, 3);  // all healthy cells are identical
      EXPECT_FALSE(cell.error.empty() && cell.status != CellStatus::kSolved);
    }
    EXPECT_GT(cell.wall_ns, 0);
  }
}

// A deadline fired mid-B&B yields a timeout record; the rest of the
// batch is unaffected.
TEST(Service, DeadlineMidSearchYieldsTimeoutRecord) {
  std::vector<BatchItem> items;
  items.push_back(json_item("fast-0", healthy_cell()));
  items.push_back(json_item("slow", slow_cell()));
  items.push_back(json_item("fast-1", healthy_cell()));

  BatchOptions options;
  options.solver = "exact";
  options.timeout_ms = 300;
  options.threads = 2;
  const BatchReport report = solve_batch(items, options);

  EXPECT_EQ(report.solved, 2);
  EXPECT_EQ(report.timeouts, 1);
  EXPECT_EQ(report.errors, 0);
  const CellResult& slow = report.cells[1];
  EXPECT_EQ(slow.status, CellStatus::kTimeout);
  EXPECT_EQ(slow.failure_class, "timeout");
  EXPECT_NE(slow.error.find("deadline"), std::string::npos);
  // The deadline actually bounded the cell (unbounded solve is ~9 s;
  // generous slack for slow CI between poll points).
  EXPECT_LT(slow.wall_ns, 5'000'000'000LL);
  EXPECT_EQ(report.cells[0].status, CellStatus::kSolved);
  EXPECT_EQ(report.cells[2].status, CellStatus::kSolved);
}

TEST(Service, KeepGoingOffSkipsAfterFailure) {
  // One worker => cells run in order; the failure at index 1 must mark
  // every later cell skipped, with a record for each.
  std::vector<BatchItem> items;
  items.push_back(json_item("a", healthy_cell()));
  items.push_back(json_item("boom", "{"));
  items.push_back(json_item("b", healthy_cell()));
  items.push_back(json_item("c", healthy_cell()));

  BatchOptions options;
  options.threads = 1;
  options.keep_going = false;
  const BatchReport report = solve_batch(items, options);

  EXPECT_EQ(report.solved, 1);
  EXPECT_EQ(report.errors, 1);
  EXPECT_EQ(report.skipped, 2);
  EXPECT_EQ(report.cells[2].status, CellStatus::kSkipped);
  EXPECT_EQ(report.cells[2].failure_class, "skipped");
  EXPECT_EQ(report.cells[3].status, CellStatus::kSkipped);
}

TEST(Service, NativeFormatAndSolverDispatch) {
  BatchItem native;
  native.id = "native";
  native.format = BatchItem::Format::kNative;
  native.text = "activetime v1\ng 2\njobs 2\n0 4 2\n1 3 1\n";
  // Unreadable/empty native payloads fail as input:parse.
  BatchItem empty;
  empty.id = "empty";
  empty.format = BatchItem::Format::kNative;

  BatchOptions options;
  options.solver = "greedy";
  const BatchReport report = solve_batch({native, empty}, options);
  EXPECT_EQ(report.cells[0].status, CellStatus::kSolved);
  EXPECT_EQ(report.cells[0].solver, "greedy");
  EXPECT_GT(report.cells[0].active_slots, 0);
  EXPECT_EQ(report.cells[1].status, CellStatus::kError);
  EXPECT_EQ(report.cells[1].failure_class, "input:parse");

  BatchOptions bad;
  bad.solver = "frobnicate";
  EXPECT_THROW(solve_batch({native}, bad), util::CheckError);
}

TEST(Service, CellToJsonIsParseableAndEscaped) {
  CellResult cell;
  cell.index = 7;
  cell.id = "weird \"id\"\nwith newline";
  cell.status = CellStatus::kError;
  cell.solver = "nested";
  cell.failure_class = "input:parse";
  cell.error = "quote \" backslash \\ done";
  cell.wall_ns = 1'500'000;
  const std::string line = cell_to_json(cell);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one JSONL line

  const obs::Json j = obs::Json::parse(line);
  EXPECT_EQ(j.find("index")->as_int(), 7);
  EXPECT_EQ(j.find("status")->as_string(), "error");
  EXPECT_EQ(j.find("id")->as_string(), cell.id);
  EXPECT_EQ(j.find("error")->as_string(), cell.error);
  EXPECT_EQ(j.find("jobs"), nullptr);  // unset fields are omitted
}

}  // namespace
}  // namespace nat::service
