// Fault isolation of the batch service layer: one poisoned cell must
// become one structured record while its neighbors solve normally —
// never a process abort, never a hang, never a leaked exception.
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "obs/report.hpp"
#include "service/batch.hpp"
#include "service/sessions.hpp"
#include "util/check.hpp"

namespace nat::service {
namespace {

std::string healthy_cell() {
  // g=2, three jobs in nested windows; solves in microseconds.
  return R"({"g": 2, "jobs": [[0, 4, 2], [0, 4, 2], [1, 3, 1]]})";
}

/// Deep chain of nested windows with slack everywhere: the exact B&B
/// explores this for seconds (measured ~9 s unbounded), so a deadline
/// of a few hundred ms reliably fires mid-search even on much faster
/// hardware, while the healthy microsecond cells stay untouched.
std::string slow_cell(int levels = 200) {
  std::string jobs;
  for (int k = 1; k <= levels; ++k) {
    for (int i = 0; i < 3; ++i) {
      if (!jobs.empty()) jobs += ",";
      jobs += "[0," + std::to_string(5 * k) + ",2]";
    }
  }
  return "{\"g\": 3, \"jobs\": [" + jobs + "]}";
}

BatchItem json_item(std::string id, std::string text) {
  BatchItem item;
  item.id = std::move(id);
  item.text = std::move(text);
  item.format = BatchItem::Format::kJson;
  return item;
}

TEST(Service, ParseJsonInstanceRoundTrip) {
  const at::Instance inst = parse_json_instance(healthy_cell());
  EXPECT_EQ(inst.g, 2);
  ASSERT_EQ(inst.num_jobs(), 3);
  EXPECT_EQ(inst.jobs[2].release, 1);
  EXPECT_EQ(inst.jobs[2].deadline, 3);
  EXPECT_EQ(inst.jobs[2].processing, 1);
}

TEST(Service, ParseJsonInstanceRejectsGarbage) {
  EXPECT_THROW(parse_json_instance("not json"), util::CheckError);
  EXPECT_THROW(parse_json_instance("[1, 2]"), util::CheckError);
  EXPECT_THROW(parse_json_instance(R"({"jobs": []})"), util::CheckError);
  EXPECT_THROW(parse_json_instance(R"({"g": 1})"), util::CheckError);
  EXPECT_THROW(parse_json_instance(R"({"g": 1, "jobs": [[0, 1]]})"),
               util::CheckError);
}

// The PR's acceptance scenario: a batch with one infeasible, one
// malformed, and one invalid cell completes with N-3 solved records and
// 3 structured error records — no terminate, no hang, exit normal.
TEST(Service, MixedBatchIsolatesEachFailure) {
  std::vector<BatchItem> items;
  const int kHealthy = 9;
  for (int i = 0; i < kHealthy; ++i) {
    items.push_back(json_item("ok-" + std::to_string(i), healthy_cell()));
  }
  // g=1 and two unit jobs in a one-slot window: structurally valid but
  // infeasible.
  items.insert(items.begin() + 2,
               json_item("bad-infeasible",
                         R"({"g": 1, "jobs": [[0, 1, 1], [0, 1, 1]]})"));
  items.insert(items.begin() + 5, json_item("bad-parse", "{\"g\": 2,"));
  items.insert(items.begin() + 8,
               json_item("bad-validate", R"({"g": 1, "jobs": [[5, 2, 1]]})"));

  BatchOptions options;
  options.threads = 4;
  int callbacks = 0;
  const BatchReport report =
      solve_batch(items, options, [&](const CellResult&) { ++callbacks; });

  EXPECT_EQ(report.solved, kHealthy);
  EXPECT_EQ(report.errors, 3);
  EXPECT_EQ(report.timeouts, 0);
  EXPECT_EQ(report.skipped, 0);
  EXPECT_EQ(callbacks, static_cast<int>(items.size()));
  ASSERT_EQ(report.cells.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const CellResult& cell = report.cells[i];
    EXPECT_EQ(cell.index, static_cast<int>(i));  // batch order preserved
    EXPECT_EQ(cell.id, items[i].id);
    if (cell.id == "bad-infeasible") {
      EXPECT_EQ(cell.status, CellStatus::kError);
      EXPECT_EQ(cell.failure_class, "infeasible");
    } else if (cell.id == "bad-parse") {
      EXPECT_EQ(cell.status, CellStatus::kError);
      EXPECT_EQ(cell.failure_class, "input:parse");
      EXPECT_EQ(cell.jobs, -1);  // never parsed
    } else if (cell.id == "bad-validate") {
      EXPECT_EQ(cell.status, CellStatus::kError);
      EXPECT_EQ(cell.failure_class, "input:validate");
    } else {
      EXPECT_EQ(cell.status, CellStatus::kSolved);
      EXPECT_EQ(cell.failure_class, "");
      EXPECT_EQ(cell.active_slots, 3);  // all healthy cells are identical
      EXPECT_FALSE(cell.error.empty() && cell.status != CellStatus::kSolved);
    }
    EXPECT_GT(cell.wall_ns, 0);
  }
}

// A deadline fired mid-B&B yields a timeout record; the rest of the
// batch is unaffected.
TEST(Service, DeadlineMidSearchYieldsTimeoutRecord) {
  std::vector<BatchItem> items;
  items.push_back(json_item("fast-0", healthy_cell()));
  items.push_back(json_item("slow", slow_cell()));
  items.push_back(json_item("fast-1", healthy_cell()));

  BatchOptions options;
  options.solver = "exact";
  options.timeout_ms = 300;
  options.threads = 2;
  const BatchReport report = solve_batch(items, options);

  EXPECT_EQ(report.solved, 2);
  EXPECT_EQ(report.timeouts, 1);
  EXPECT_EQ(report.errors, 0);
  const CellResult& slow = report.cells[1];
  EXPECT_EQ(slow.status, CellStatus::kTimeout);
  EXPECT_EQ(slow.failure_class, "timeout");
  EXPECT_NE(slow.error.find("deadline"), std::string::npos);
  // The deadline actually bounded the cell (unbounded solve is ~9 s;
  // generous slack for slow CI between poll points).
  EXPECT_LT(slow.wall_ns, 5'000'000'000LL);
  EXPECT_EQ(report.cells[0].status, CellStatus::kSolved);
  EXPECT_EQ(report.cells[2].status, CellStatus::kSolved);
}

TEST(Service, KeepGoingOffSkipsAfterFailure) {
  // One worker => cells run in order; the failure at index 1 must mark
  // every later cell skipped, with a record for each.
  std::vector<BatchItem> items;
  items.push_back(json_item("a", healthy_cell()));
  items.push_back(json_item("boom", "{"));
  items.push_back(json_item("b", healthy_cell()));
  items.push_back(json_item("c", healthy_cell()));

  BatchOptions options;
  options.threads = 1;
  options.keep_going = false;
  const BatchReport report = solve_batch(items, options);

  EXPECT_EQ(report.solved, 1);
  EXPECT_EQ(report.errors, 1);
  EXPECT_EQ(report.skipped, 2);
  EXPECT_EQ(report.cells[2].status, CellStatus::kSkipped);
  EXPECT_EQ(report.cells[2].failure_class, "skipped");
  EXPECT_EQ(report.cells[3].status, CellStatus::kSkipped);
}

TEST(Service, NativeFormatAndSolverDispatch) {
  BatchItem native;
  native.id = "native";
  native.format = BatchItem::Format::kNative;
  native.text = "activetime v1\ng 2\njobs 2\n0 4 2\n1 3 1\n";
  // Unreadable/empty native payloads fail as input:parse.
  BatchItem empty;
  empty.id = "empty";
  empty.format = BatchItem::Format::kNative;

  BatchOptions options;
  options.solver = "greedy";
  const BatchReport report = solve_batch({native, empty}, options);
  EXPECT_EQ(report.cells[0].status, CellStatus::kSolved);
  EXPECT_EQ(report.cells[0].solver, "greedy");
  EXPECT_GT(report.cells[0].active_slots, 0);
  EXPECT_EQ(report.cells[1].status, CellStatus::kError);
  EXPECT_EQ(report.cells[1].failure_class, "input:parse");

  BatchOptions bad;
  bad.solver = "frobnicate";
  EXPECT_THROW(solve_batch({native}, bad), util::CheckError);
}

std::string crossing_cell() {
  // g=2, windows [0,4) / [2,6) / [1,5): pairwise crossing, non-laminar.
  return R"({"g": 2, "jobs": [[0, 4, 2], [2, 6, 2], [1, 5, 1]]})";
}

// Regression for the stale input:* classification paths: auto used to
// reject non-laminar cells; they now dispatch to the general backend,
// and every record names the pipeline that produced its numbers.
TEST(Service, MixedLaminarityBatchDispatchesPerCell) {
  std::vector<BatchItem> items = {
      json_item("laminar-0", healthy_cell()),
      json_item("crossing-0", crossing_cell()),
      json_item("laminar-1", healthy_cell()),
      json_item("crossing-1", crossing_cell()),
  };
  const BatchReport report = solve_batch(items, {});
  EXPECT_EQ(report.solved, 4);
  EXPECT_EQ(report.errors, 0);
  for (const CellResult& cell : report.cells) {
    ASSERT_EQ(cell.status, CellStatus::kSolved) << cell.id << ": "
                                                << cell.error;
    const bool crossing = cell.id.rfind("crossing", 0) == 0;
    EXPECT_EQ(cell.backend, crossing ? "general" : "nested") << cell.id;
    EXPECT_EQ(cell.solver, cell.backend) << cell.id;  // auto echoes the path
    EXPECT_GT(cell.active_slots, 0) << cell.id;
    EXPECT_GE(static_cast<double>(cell.active_slots), cell.lp_value - 1e-6)
        << cell.id;
    // The JSONL record carries the tag.
    const obs::Json j = obs::Json::parse(cell_to_json(cell));
    ASSERT_NE(j.find("backend"), nullptr) << cell.id;
    EXPECT_EQ(j.find("backend")->as_string(), cell.backend) << cell.id;
  }
}

// The other side of the regression: forced nested/exact still reject
// crossing windows with the same stable class, and genuinely malformed
// windows keep their input:validate class on every solver.
TEST(Service, ForcedSolversKeepStableErrorClasses) {
  for (const std::string solver : {"nested", "exact"}) {
    BatchOptions options;
    options.solver = solver;
    const BatchReport report =
        solve_batch({json_item("x", crossing_cell())}, options);
    ASSERT_EQ(report.cells.size(), 1u);
    EXPECT_EQ(report.cells[0].status, CellStatus::kError) << solver;
    EXPECT_EQ(report.cells[0].failure_class, "input:laminar") << solver;
  }
  for (const std::string solver : {"auto", "nested", "general", "greedy"}) {
    BatchOptions options;
    options.solver = solver;
    const BatchReport report = solve_batch(
        {json_item("bad", R"({"g": 2, "jobs": [[5, 2, 1]]})")}, options);
    EXPECT_EQ(report.cells[0].failure_class, "input:validate") << solver;
  }
}

TEST(Service, ForcedGeneralSolverTagsRecords) {
  BatchOptions options;
  options.solver = "general";
  const BatchReport report = solve_batch(
      {json_item("a", healthy_cell()), json_item("b", crossing_cell())},
      options);
  EXPECT_EQ(report.solved, 2);
  for (const CellResult& cell : report.cells) {
    EXPECT_EQ(cell.solver, "general");
    EXPECT_EQ(cell.backend, "general");
  }
}

// --robust threading through the batch layer (docs/ROBUST.md): boxed
// cells carry the certified sandwich, point cells ride the degenerate
// path, and the JSONL record gains robust_lo/robust_hi only in robust
// mode.
TEST(Service, RobustBatchEmitsSandwichFields) {
  std::vector<BatchItem> items;
  items.push_back(json_item(
      "boxed",
      R"({"g": 2, "jobs": [[0, 4, 2, 1, 2], [0, 4, 2], [1, 3, 1, 1, 1]]})"));
  items.push_back(json_item("point", healthy_cell()));
  BatchOptions options;
  options.robust = true;
  const BatchReport report = solve_batch(items, options);
  ASSERT_EQ(report.cells.size(), 2u);
  EXPECT_EQ(report.solved, 2);

  const CellResult& boxed = report.cells[0];
  EXPECT_EQ(boxed.status, CellStatus::kSolved);
  EXPECT_LE(boxed.robust_lo, static_cast<double>(boxed.active_slots) + 1e-9);
  EXPECT_GE(boxed.robust_hi, boxed.active_slots);

  // The point cell's degenerate path reproduces the plain solver and
  // closes the sandwich at the nominal cost.
  const CellResult& point = report.cells[1];
  EXPECT_EQ(point.status, CellStatus::kSolved);
  EXPECT_EQ(point.active_slots, 3);  // same cell as the non-robust suites
  EXPECT_EQ(point.robust_hi, point.active_slots);

  const obs::Json j = obs::Json::parse(cell_to_json(boxed));
  ASSERT_NE(j.find("robust_lo"), nullptr);
  ASSERT_NE(j.find("robust_hi"), nullptr);
  EXPECT_EQ(j.find("robust_hi")->as_int(), boxed.robust_hi);

  // Outside robust mode the record must not change shape.
  const BatchReport plain = solve_batch(
      std::vector<BatchItem>{json_item("p", healthy_cell())}, BatchOptions{});
  const obs::Json pj = obs::Json::parse(cell_to_json(plain.cells[0]));
  EXPECT_EQ(pj.find("robust_lo"), nullptr);
  EXPECT_EQ(pj.find("robust_hi"), nullptr);
}

// Robust mode owns per-corner dispatch, so a forced solver is a
// structured input error, not a silent downgrade.
TEST(Service, RobustBatchRequiresAutoSolver) {
  std::vector<BatchItem> items{json_item("a", healthy_cell())};
  BatchOptions options;
  options.robust = true;
  options.solver = "exact";
  const BatchReport report = solve_batch(items, options);
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_EQ(report.cells[0].status, CellStatus::kError);
  EXPECT_EQ(report.cells[0].failure_class, "input:solver");
}

// A 5-element job row outside robust mode still parses (the intervals
// simply ride along), and a malformed interval is an input error.
TEST(Service, ParseJsonInstanceAcceptsIntervalRows) {
  const at::Instance inst = parse_json_instance(
      R"({"g": 2, "jobs": [[0, 4, 2, 1, 3], [1, 3, 1]]})");
  ASSERT_EQ(inst.num_jobs(), 2);
  EXPECT_EQ(inst.jobs[0].processing_lo, 1);
  EXPECT_EQ(inst.jobs[0].processing_hi, 3);
  EXPECT_FALSE(inst.jobs[1].has_processing_interval());
  EXPECT_THROW(parse_json_instance(R"({"g": 2, "jobs": [[0, 4, 2, 1]]})"),
               util::CheckError);
}

TEST(Service, CellToJsonIsParseableAndEscaped) {
  CellResult cell;
  cell.index = 7;
  cell.id = "weird \"id\"\nwith newline";
  cell.status = CellStatus::kError;
  cell.solver = "nested";
  cell.failure_class = "input:parse";
  cell.error = "quote \" backslash \\ done";
  cell.wall_ns = 1'500'000;
  const std::string line = cell_to_json(cell);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one JSONL line

  const obs::Json j = obs::Json::parse(line);
  EXPECT_EQ(j.find("index")->as_int(), 7);
  EXPECT_EQ(j.find("status")->as_string(), "error");
  EXPECT_EQ(j.find("id")->as_string(), cell.id);
  EXPECT_EQ(j.find("error")->as_string(), cell.error);
  EXPECT_EQ(j.find("jobs"), nullptr);  // unset fields are omitted
}

// ---------------------------------------------------------------------------
// Session protocol (service/sessions.hpp): stateful JSONL ops routed
// through persistent incremental SolverSessions, same per-line fault
// boundary as the batch cells.

TEST(Sessions, OpenDeltaCloseLifecycle) {
  SessionManager manager;
  SessionOpResult r = manager.process_line(
      R"({"op":"open","session":"s","g":1,"jobs":[[0,4,2],[1,4,1]]})", 0);
  ASSERT_EQ(r.status, CellStatus::kSolved) << r.error;
  EXPECT_EQ(r.op, "open");
  EXPECT_EQ(r.session, "s");
  EXPECT_EQ(r.jobs, 2);
  EXPECT_GT(r.active_slots, 0);
  EXPECT_EQ(manager.open_sessions(), 1);
  const std::int64_t slots_before = r.active_slots;

  r = manager.process_line(
      R"({"op":"delta","session":"s","kind":"add","job":[10,14,3]})", 1);
  ASSERT_EQ(r.status, CellStatus::kSolved) << r.error;
  EXPECT_EQ(r.jobs, 3);
  EXPECT_GT(r.active_slots, slots_before);
  // The new job lands in its own window group: one group re-solved, the
  // untouched group reused from cache.
  EXPECT_EQ(r.groups_resolved, 1);
  EXPECT_EQ(r.groups_reused, 1);

  r = manager.process_line(
      R"({"op":"delta","session":"s","kind":"remove","index":2})", 2);
  ASSERT_EQ(r.status, CellStatus::kSolved) << r.error;
  EXPECT_EQ(r.jobs, 2);
  EXPECT_EQ(r.active_slots, slots_before);

  r = manager.process_line(R"({"op":"close","session":"s"})", 3);
  EXPECT_EQ(r.status, CellStatus::kSolved);
  EXPECT_EQ(manager.open_sessions(), 0);
}

TEST(Sessions, FaultBoundaryKeepsSessionUsable) {
  SessionManager manager;
  ASSERT_EQ(manager
                .process_line(
                    R"({"op":"open","session":"s","g":1,"jobs":[[0,4,2]]})", 0)
                .status,
            CellStatus::kSolved);

  // Out-of-range delta: error record, session survives on the pre-delta
  // instance.
  SessionOpResult r = manager.process_line(
      R"({"op":"delta","session":"s","kind":"remove","index":9})", 1);
  EXPECT_EQ(r.status, CellStatus::kError);
  EXPECT_EQ(manager.open_sessions(), 1);

  // Malformed kinds and payloads are input errors, not crashes.
  EXPECT_EQ(manager.process_line(R"({"op":"delta","session":"s"})", 2)
                .failure_class,
            "input:parse");
  EXPECT_EQ(
      manager
          .process_line(
              R"({"op":"delta","session":"s","kind":"warp","index":0})", 3)
          .failure_class,
      "input:parse");
  EXPECT_EQ(manager.process_line("not json", 4).failure_class, "input:parse");

  // The session still accepts valid deltas afterwards.
  r = manager.process_line(
      R"({"op":"delta","session":"s","kind":"extend","index":0,"window":[0,5]})",
      5);
  EXPECT_EQ(r.status, CellStatus::kSolved) << r.error;
}

TEST(Sessions, TaxonomyClassesForProtocolMisuse) {
  SessionManager manager;
  EXPECT_EQ(manager.process_line(R"({"op":"close","session":"x"})", 0)
                .failure_class,
            "session:unknown");
  EXPECT_EQ(
      manager
          .process_line(
              R"({"op":"delta","session":"x","kind":"remove","index":0})", 1)
          .failure_class,
      "session:unknown");
  ASSERT_EQ(manager
                .process_line(
                    R"({"op":"open","session":"x","g":1,"jobs":[[0,2,1]]})", 2)
                .status,
            CellStatus::kSolved);
  EXPECT_EQ(manager
                .process_line(
                    R"({"op":"open","session":"x","g":1,"jobs":[[0,2,1]]})", 3)
                .failure_class,
            "session:exists");
  EXPECT_EQ(manager.process_line(R"({"op":"ping","session":"x"})", 4)
                .failure_class,
            "input:op");
  // A job that cannot fit its own window fails validation.
  EXPECT_EQ(manager
                .process_line(
                    R"({"op":"open","session":"y","g":1,"jobs":[[0,2,9]]})", 5)
                .failure_class,
            "input:validate");
  // A valid but overcommitted instance (volume 4 into g*|window| = 2)
  // is classified like the batch cells; no session is left behind.
  const SessionOpResult r = manager.process_line(
      R"({"op":"open","session":"y","g":1,"jobs":[[0,2,2],[0,2,2]]})", 6);
  EXPECT_EQ(r.status, CellStatus::kError);
  EXPECT_EQ(r.failure_class, "infeasible");
  EXPECT_EQ(manager.open_sessions(), 1);
}

// Sessions used to reject non-laminar opens and crossing deltas
// outright; both now dispatch the affected window groups to the general
// 2-approx and tag the record with the most-degraded backend used.
TEST(Sessions, NonLaminarOpenAndDeltaDispatchToGeneral) {
  SessionManager manager;
  SessionOpResult r = manager.process_line(
      R"({"op":"open","session":"s","g":2,"jobs":[[0,4,2],[2,6,2]]})", 0);
  ASSERT_EQ(r.status, CellStatus::kSolved) << r.error;
  EXPECT_EQ(r.backend, "general");
  EXPECT_GT(r.active_slots, 0);

  // A laminar-only session reports the nested backend...
  r = manager.process_line(
      R"({"op":"open","session":"t","g":2,"jobs":[[0,4,2],[1,3,1]]})", 1);
  ASSERT_EQ(r.status, CellStatus::kSolved) << r.error;
  EXPECT_EQ(r.backend, "nested");

  // ...until a crossing delta merges its groups; removing it restores
  // the nested path.
  r = manager.process_line(
      R"({"op":"delta","session":"t","kind":"add","job":[2,6,1]})", 2);
  ASSERT_EQ(r.status, CellStatus::kSolved) << r.error;
  EXPECT_EQ(r.backend, "general");
  const obs::Json j = session_op_record(r);
  ASSERT_NE(j.find("backend"), nullptr);
  EXPECT_EQ(j.find("backend")->as_string(), "general");
  r = manager.process_line(
      R"({"op":"delta","session":"t","kind":"remove","index":2})", 3);
  ASSERT_EQ(r.status, CellStatus::kSolved) << r.error;
  EXPECT_EQ(r.backend, "nested");
}

TEST(Sessions, RecordJsonRoundTrips) {
  SessionManager manager;
  const SessionOpResult r = manager.process_line(
      R"({"op":"open","session":"s","g":2,"jobs":[[0,3,2],[0,3,2]]})", 11);
  const std::string line = session_op_to_json(r);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const obs::Json j = obs::Json::parse(line);
  EXPECT_EQ(j.find("index")->as_int(), 11);
  EXPECT_EQ(j.find("op")->as_string(), "open");
  EXPECT_EQ(j.find("session")->as_string(), "s");
  EXPECT_EQ(j.find("status")->as_string(), "solved");
  EXPECT_EQ(j.find("jobs")->as_int(), 2);
  EXPECT_NE(j.find("active_slots"), nullptr);
  EXPECT_NE(j.find("groups_resolved"), nullptr);
  EXPECT_NE(j.find("lp_warm_hits"), nullptr);
}

TEST(Sessions, ParseDeltaMatchesSessionTypes) {
  const obs::Json add = obs::Json::parse(
      R"({"kind":"add","job":[1,5,2]})");
  const at::Delta d1 = parse_delta(add);
  ASSERT_TRUE(std::holds_alternative<at::AddJob>(d1));
  EXPECT_EQ(std::get<at::AddJob>(d1).job.release, 1);
  EXPECT_EQ(std::get<at::AddJob>(d1).job.deadline, 5);
  EXPECT_EQ(std::get<at::AddJob>(d1).job.processing, 2);

  const at::Delta d2 = parse_delta(
      obs::Json::parse(R"({"kind":"shrink","index":3,"window":[2,4]})"));
  ASSERT_TRUE(std::holds_alternative<at::ShrinkWindow>(d2));
  EXPECT_EQ(std::get<at::ShrinkWindow>(d2).job, 3);
  EXPECT_EQ(std::get<at::ShrinkWindow>(d2).window.lo, 2);
  EXPECT_EQ(std::get<at::ShrinkWindow>(d2).window.hi, 4);

  EXPECT_THROW(parse_delta(obs::Json::parse(R"({"kind":"add"})")),
               util::CheckError);
  EXPECT_THROW(parse_delta(obs::Json::parse(R"({"kind":"extend","index":0})")),
               util::CheckError);
}

// Robust-mode deltas (docs/ROBUST.md): "add" takes 5-element rows with
// an uncertainty box, and "retime" rewrites (or clears) the box on an
// existing job.
TEST(Sessions, ParseDeltaHandlesIntervalsAndRetime) {
  const at::Delta add = parse_delta(
      obs::Json::parse(R"({"kind":"add","job":[1,5,2,1,3]})"));
  ASSERT_TRUE(std::holds_alternative<at::AddJob>(add));
  EXPECT_EQ(std::get<at::AddJob>(add).job.processing_lo, 1);
  EXPECT_EQ(std::get<at::AddJob>(add).job.processing_hi, 3);

  const at::Delta retime = parse_delta(
      obs::Json::parse(R"({"kind":"retime","index":2,"interval":[1,4]})"));
  ASSERT_TRUE(std::holds_alternative<at::Retime>(retime));
  EXPECT_EQ(std::get<at::Retime>(retime).job, 2);
  EXPECT_EQ(std::get<at::Retime>(retime).processing_lo, 1);
  EXPECT_EQ(std::get<at::Retime>(retime).processing_hi, 4);

  const at::Delta clear = parse_delta(
      obs::Json::parse(R"({"kind":"retime","index":0,"interval":[0,0]})"));
  ASSERT_TRUE(std::holds_alternative<at::Retime>(clear));
  EXPECT_EQ(std::get<at::Retime>(clear).processing_hi, 0);

  EXPECT_THROW(parse_delta(obs::Json::parse(R"({"kind":"retime","index":0})")),
               util::CheckError);
}

}  // namespace
}  // namespace nat::service
