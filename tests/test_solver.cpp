#include "activetime/solver.hpp"

#include <gtest/gtest.h>

#include "baselines/exact.hpp"
#include "helpers.hpp"
#include "util/check.hpp"

namespace nat::at {
namespace {

TEST(NestedSolver, EmptyInstance) {
  NestedSolveResult r = solve_nested(Instance{1, {}});
  EXPECT_EQ(r.active_slots, 0);
}

TEST(NestedSolver, SingleJob) {
  Instance inst;
  inst.g = 3;
  inst.jobs = {Job{0, 7, 4}};
  NestedSolveResult r = solve_nested(inst);
  EXPECT_EQ(r.active_slots, 4);  // trivially optimal
  EXPECT_EQ(r.repairs, 0);
}

TEST(NestedSolver, UnitOverloadFamilyIsSolvedOptimally) {
  for (std::int64_t g = 1; g <= 6; ++g) {
    NestedSolveResult r = solve_nested(gen::unit_overload(g));
    EXPECT_EQ(r.active_slots, 2) << "g=" << g;
    EXPECT_EQ(r.repairs, 0);
  }
}

TEST(NestedSolver, RejectsNonLaminar) {
  EXPECT_THROW(solve_nested(testing::crossing()), util::CheckError);
}

TEST(NestedSolver, RejectsInfeasible) {
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{0, 2, 2}, Job{0, 2, 2}};  // volume 4 > capacity 2
  EXPECT_THROW(solve_nested(inst), util::CheckError);
}

TEST(NestedSolver, Lemma51FamilyWithinBound) {
  for (std::int64_t g : {2, 3, 4, 5}) {
    const Instance inst = gen::lemma51_gap(g);
    NestedSolveResult r = solve_nested(inst);
    EXPECT_EQ(r.repairs, 0) << "g=" << g;
    // OPT = 3g/2 rounded up (Lemma 5.1's integral argument).
    EXPECT_LE(static_cast<double>(r.active_slots), 1.8 * r.lp_value + 1e-6);
  }
}

// The headline guarantee (Theorem 4.15), end to end, on sweeps:
// valid schedule, no repairs, active <= 9/5 * LP <= 9/5 * OPT.
class SolverSweep : public ::testing::TestWithParam<int> {};

TEST_P(SolverSweep, TheoremFourFifteen) {
  const Instance inst = testing::mixed(GetParam());
  NestedSolveResult r = solve_nested(inst);
  validate_schedule(inst, r.schedule);
  EXPECT_EQ(r.repairs, 0) << "fp repair should never trigger";
  EXPECT_LE(static_cast<double>(r.active_slots), 1.8 * r.lp_value + 1e-5)
      << "9/5 bound against the LP value";
  auto opt = baselines::exact_opt_laminar(inst);
  ASSERT_TRUE(opt.has_value());
  EXPECT_GE(r.active_slots, opt->optimum);
  EXPECT_LE(static_cast<double>(r.active_slots),
            1.8 * static_cast<double>(opt->optimum) + 1e-9)
      << "9/5 bound against OPT on instance " << GetParam();
  EXPECT_LE(r.lp_value, static_cast<double>(opt->optimum) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SolverSweep, ::testing::Range(0, 200));

// Unit processing times (E8): the poly-solvable special case; the
// solver stays within the bound and typically hits OPT.
class UnitSweep : public ::testing::TestWithParam<int> {};

TEST_P(UnitSweep, UnitJobsStayWithinBound) {
  gen::RandomLaminarParams params;
  params.g = 3;
  params.max_depth = 2;
  util::Rng rng(700 + GetParam());
  const Instance inst = gen::random_laminar_unit(params, rng);
  NestedSolveResult r = solve_nested(inst);
  validate_schedule(inst, r.schedule);
  auto opt = baselines::exact_opt_laminar(inst);
  ASSERT_TRUE(opt.has_value());
  EXPECT_LE(static_cast<double>(r.active_slots),
            1.8 * static_cast<double>(opt->optimum) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnitSweep, ::testing::Range(0, 30));

TEST(NestedSolver, NaiveRoundingAblationStillValid) {
  for (int id = 0; id < 10; ++id) {
    const Instance inst = testing::random_small(id);
    NestedSolverOptions opt;
    opt.naive_rounding = true;
    NestedSolveResult r = solve_nested(inst, opt);
    validate_schedule(inst, r.schedule);
  }
}

}  // namespace
}  // namespace nat::at
