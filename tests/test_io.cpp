#include <gtest/gtest.h>

#include <locale>
#include <sstream>

#include "helpers.hpp"
#include "io/serialize.hpp"
#include "io/table.hpp"
#include "util/check.hpp"

namespace nat::io {
namespace {

TEST(Serialize, RoundTripsInstances) {
  for (int id = 0; id < 20; ++id) {
    const at::Instance inst = at::testing::mixed(id);
    const at::Instance back = instance_from_string(to_string(inst));
    EXPECT_EQ(back.g, inst.g);
    EXPECT_EQ(back.jobs, inst.jobs);
  }
}

TEST(Serialize, RejectsBadHeader) {
  EXPECT_THROW(instance_from_string("bogus v9\n"), util::CheckError);
  EXPECT_THROW(instance_from_string("activetime v1\ng 1\njobs 2\n0 2 1\n"),
               util::CheckError);  // truncated
}

// Hardened read_instance: hostile or corrupted headers fail with a
// clear CheckError instead of garbage instances or unbounded loops.
TEST(Serialize, RejectsMalformedHeaders) {
  // Non-numeric g leaves the stream failed.
  EXPECT_THROW(instance_from_string("activetime v1\ng two\njobs 0\n"),
               util::CheckError);
  // g = 0 machines cannot schedule anything.
  EXPECT_THROW(instance_from_string("activetime v1\ng 0\njobs 0\n"),
               util::CheckError);
  // Missing g section entirely.
  EXPECT_THROW(instance_from_string("activetime v1\njobs 1\n0 1 1\n"),
               util::CheckError);
  // Non-numeric job count.
  EXPECT_THROW(instance_from_string("activetime v1\ng 2\njobs many\n"),
               util::CheckError);
}

TEST(Serialize, RejectsHostileJobCount) {
  // A declared count above the format cap must be rejected up front,
  // not drive a ten-quintillion-iteration parse loop.
  EXPECT_THROW(
      instance_from_string("activetime v1\ng 2\njobs 99999999999999\n"),
      util::CheckError);
}

TEST(Serialize, RejectsNonNumericJobFields) {
  EXPECT_THROW(
      instance_from_string("activetime v1\ng 2\njobs 1\n0 x 1\n"),
      util::CheckError);
}

TEST(Serialize, WriteScheduleIsHumanReadable) {
  at::Instance inst;
  inst.g = 2;
  inst.jobs = {at::Job{0, 3, 2}, at::Job{0, 3, 1}};
  at::Schedule sched;
  sched.assignment = {{0, 1}, {1}};
  std::ostringstream os;
  write_schedule(os, inst, sched);
  const std::string out = os.str();
  EXPECT_NE(out.find("active slots: 2"), std::string::npos);
  EXPECT_NE(out.find("t=1: j0 j1"), std::string::npos);
}

TEST(Serialize, GanttChart) {
  at::Instance inst;
  inst.g = 2;
  inst.jobs = {at::Job{0, 4, 2}, at::Job{1, 3, 1}};
  at::Schedule sched;
  sched.assignment = {{0, 1}, {1}};
  std::ostringstream os;
  write_gantt(os, inst, sched);
  const std::string out = os.str();
  EXPECT_NE(out.find("j0  |##..|"), std::string::npos) << out;
  EXPECT_NE(out.find("j1  | #. |"), std::string::npos) << out;
  EXPECT_NE(out.find("on  |^^  |"), std::string::npos) << out;
}

TEST(Serialize, GanttRefusesWideHorizons) {
  at::Instance inst;
  inst.g = 1;
  inst.jobs = {at::Job{0, 500, 1}};
  at::Schedule sched;
  sched.assignment = {{0}};
  std::ostringstream os;
  EXPECT_THROW(write_gantt(os, inst, sched, 120), util::CheckError);
}

TEST(Table, MarkdownLayout) {
  Table t({"g", "value"});
  t.add_row({"2", Table::num(1.5)});
  t.add_row({"10", Table::num(static_cast<std::int64_t>(42))});
  std::ostringstream os;
  t.print_markdown(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| g  | value |"), std::string::npos);
  EXPECT_NE(out.find("| 10 | 42"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2);
}

TEST(Table, CsvLayout) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), util::CheckError);
}

TEST(Table, RatioHelper) {
  EXPECT_EQ(Table::ratio(3.0, 2.0), "1.500");
  EXPECT_EQ(Table::ratio(1.0, 0.0), "-");
}

// Satellite regression: Table::num formatted through an ostringstream
// that inherited the global locale — a comma-decimal locale turned
// "1234.5625" into "1.234,5625" and broke every CSV consumer. The
// formatter now imbues locale::classic explicitly.
TEST(Table, NumberFormattingIsLocaleIndependent) {
  struct CommaPunct : std::numpunct<char> {
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
  };
  const std::string reference = Table::num(1234.5625, 4);
  const std::string int_reference = Table::num(std::int64_t{1000000});

  const std::locale saved = std::locale();
  std::locale::global(std::locale(std::locale::classic(), new CommaPunct));
  const std::string under_locale = Table::num(1234.5625, 4);
  const std::string int_under_locale = Table::num(std::int64_t{1000000});
  std::locale::global(saved);

  EXPECT_EQ(under_locale, reference);
  EXPECT_EQ(under_locale.find(','), std::string::npos);
  EXPECT_EQ(int_under_locale, int_reference);
  EXPECT_EQ(int_under_locale, "1000000");
}

}  // namespace
}  // namespace nat::io
