#include "lp/presolve.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lp/exact_simplex.hpp"
#include "util/rng.hpp"

namespace nat::lp {
namespace {

TEST(Presolve, SubstitutesFixedVariables) {
  Model m;
  int x = m.add_variable("x", 3.0, 3.0, 1.0);  // fixed at 3
  int y = m.add_variable("y", 0.0, kInf, 1.0);
  m.add_row(Sense::kGe, 5.0, {{x, 1.0}, {y, 1.0}});
  Presolved pre = presolve(m);
  EXPECT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.vars_removed, 1);
  EXPECT_EQ(pre.reduced.num_variables(), 1);
  // The row should have become y >= 2, which is itself a singleton and
  // is absorbed into y's bounds — no rows left.
  EXPECT_EQ(pre.reduced.num_rows(), 0);
  EXPECT_NEAR(pre.reduced.variable(0).lower, 2.0, 1e-12);
  Solution s = solve_with_presolve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
  EXPECT_NEAR(s.x[x], 3.0, 1e-12);
  EXPECT_NEAR(s.x[y], 2.0, 1e-9);
}

TEST(Presolve, DropsConsistentEmptyRows) {
  Model m;
  int x = m.add_variable("x", 0.0, 1.0, 1.0);
  m.add_row(Sense::kLe, 4.0, {});  // 0 <= 4: fine
  m.add_row(Sense::kGe, -1.0, {});
  m.add_row(Sense::kEq, 0.0, {});
  (void)x;
  Presolved pre = presolve(m);
  EXPECT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.rows_removed, 3);
}

TEST(Presolve, DetectsInconsistentEmptyRow) {
  Model m;
  (void)m.add_variable("x", 0.0, 1.0, 1.0);
  m.add_row(Sense::kGe, 2.0, {});  // 0 >= 2: impossible
  EXPECT_TRUE(presolve(m).infeasible);
  EXPECT_EQ(solve_with_presolve(m).status, Status::kInfeasible);
}

TEST(Presolve, SingletonRowsTightenBothSides) {
  Model m;
  int x = m.add_variable("x", 0.0, kInf, 1.0);
  m.add_row(Sense::kGe, 2.0, {{x, 1.0}});    // x >= 2
  m.add_row(Sense::kLe, 10.0, {{x, 2.0}});   // x <= 5
  m.add_row(Sense::kGe, -8.0, {{x, -2.0}});  // x <= 4
  Presolved pre = presolve(m);
  EXPECT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.reduced.num_rows(), 0);
  EXPECT_NEAR(pre.reduced.variable(0).lower, 2.0, 1e-12);
  EXPECT_NEAR(pre.reduced.variable(0).upper, 4.0, 1e-12);
}

TEST(Presolve, CascadeOfFixings) {
  // x == 2 (singleton eq) fixes x; substituting into the second row
  // makes it a singleton for y, fixing y too; third row collapses.
  Model m;
  int x = m.add_variable("x", 0.0, kInf, 1.0);
  int y = m.add_variable("y", 0.0, kInf, 1.0);
  int z = m.add_variable("z", 0.0, kInf, 1.0);
  m.add_row(Sense::kEq, 2.0, {{x, 1.0}});
  m.add_row(Sense::kEq, 5.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::kGe, 6.0, {{x, 1.0}, {y, 1.0}, {z, 1.0}});
  Presolved pre = presolve(m);
  EXPECT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.vars_removed, 2);
  Solution s = solve_with_presolve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
  EXPECT_NEAR(s.x[y], 3.0, 1e-9);
  EXPECT_NEAR(s.x[z], 1.0, 1e-9);
}

TEST(Presolve, DetectsBoundCrossingViaSingletons) {
  Model m;
  int x = m.add_variable("x", 0.0, kInf, 1.0);
  m.add_row(Sense::kGe, 5.0, {{x, 1.0}});
  m.add_row(Sense::kLe, 3.0, {{x, 1.0}});
  EXPECT_TRUE(presolve(m).infeasible);
}

TEST(Presolve, MergesDuplicateCoefficients) {
  Model m;
  int x = m.add_variable("x", 0.0, kInf, 1.0);
  m.add_row(Sense::kGe, 6.0, {{x, 1.0}, {x, 2.0}});  // 3x >= 6
  Presolved pre = presolve(m);
  EXPECT_NEAR(pre.reduced.variable(0).lower, 2.0, 1e-12);
}

// Agreement sweep: presolve must never change status or optimum.
class PresolveAgreement : public ::testing::TestWithParam<int> {};

TEST_P(PresolveAgreement, MatchesPlainSolve) {
  util::Rng rng(60000 + GetParam());
  const int nvars = static_cast<int>(rng.uniform_int(1, 6));
  const int nrows = static_cast<int>(rng.uniform_int(1, 8));
  Model m;
  for (int i = 0; i < nvars; ++i) {
    const double lo = static_cast<double>(rng.uniform_int(0, 2));
    // Fixed variables with positive probability.
    const double hi = rng.chance(0.25)
                          ? lo
                          : (rng.chance(0.5)
                                 ? lo + static_cast<double>(
                                            rng.uniform_int(0, 8))
                                 : kInf);
    m.add_variable("v", lo, hi,
                   static_cast<double>(rng.uniform_int(-3, 3)));
  }
  for (int r = 0; r < nrows; ++r) {
    std::vector<std::pair<int, double>> row;
    for (int i = 0; i < nvars; ++i) {
      if (rng.chance(0.5)) {
        row.push_back({i, static_cast<double>(rng.uniform_int(-2, 3))});
      }
    }
    // Singleton and empty rows occur naturally with these densities.
    const Sense sense = rng.chance(0.3)   ? Sense::kEq
                        : rng.chance(0.5) ? Sense::kGe
                                          : Sense::kLe;
    m.add_row(sense, static_cast<double>(rng.uniform_int(-4, 8)), row);
  }
  Solution plain = solve(m);
  Solution pre = solve_with_presolve(m);
  ASSERT_NE(plain.status, Status::kIterLimit);
  EXPECT_EQ(pre.status, plain.status);
  if (plain.status == Status::kOptimal) {
    EXPECT_NEAR(pre.objective, plain.objective,
                1e-6 * (1.0 + std::abs(plain.objective)));
    EXPECT_LE(m.max_violation(pre.x), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PresolveAgreement, ::testing::Range(0, 120));

}  // namespace
}  // namespace nat::lp
