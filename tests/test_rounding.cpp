#include "activetime/rounding.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "activetime/feasibility.hpp"
#include "helpers.hpp"
#include "lp/dense_simplex.hpp"
#include "util/check.hpp"

namespace nat::at {
namespace {

TEST(EpsRounding, SnapsNearIntegers) {
  EXPECT_EQ(eps_floor(2.9999999), 3);
  EXPECT_EQ(eps_floor(3.0000001), 3);
  EXPECT_EQ(eps_floor(2.5), 2);
  EXPECT_EQ(eps_ceil(3.0000001), 3);
  EXPECT_EQ(eps_ceil(2.9999999), 3);
  EXPECT_EQ(eps_ceil(2.5), 3);
  EXPECT_EQ(eps_floor(0.0), 0);
  EXPECT_EQ(eps_ceil(0.0), 0);
}

struct Rounded {
  LaminarForest forest;
  std::vector<double> x;
  std::vector<int> topmost;
  RoundingResult result;
};

Rounded run(const Instance& inst) {
  Rounded r{LaminarForest::build(inst), {}, {}, {}};
  r.forest.canonicalize();
  StrongLp lp = build_strong_lp(r.forest);
  lp::Solution s = lp::solve(lp.model);
  EXPECT_EQ(s.status, lp::Status::kOptimal);
  FractionalSolution frac = unpack(lp, s);
  push_down_transform(r.forest, lp, frac);
  r.x = frac.x;
  r.topmost = topmost_positive(r.forest, r.x);
  r.result = round_solution(r.forest, r.x, r.topmost);
  return r;
}

// Property sweep: Lemma 3.3 (the 9/5 budget), per-node sanity, and —
// the heart of Section 4 — feasibility of the rounded vector.
class RoundingSweep : public ::testing::TestWithParam<int> {};

TEST_P(RoundingSweep, Lemma33Budget) {
  Rounded r = run(testing::mixed(GetParam()));
  const double frac_total =
      std::accumulate(r.x.begin(), r.x.end(), 0.0);
  EXPECT_LE(static_cast<double>(r.result.total), 1.8 * frac_total + 1e-4)
      << "x~([m]) must stay within (9/5) x([m])";
}

TEST_P(RoundingSweep, PerNodeBoundsAndMonotonicity) {
  Rounded r = run(testing::mixed(GetParam()));
  for (int i = 0; i < r.forest.num_nodes(); ++i) {
    EXPECT_GE(r.result.x_tilde[i], 0);
    EXPECT_LE(r.result.x_tilde[i], r.forest.node(i).length());
    // Never rounds below the floor of the fractional value.
    EXPECT_GE(r.result.x_tilde[i], eps_floor(r.x[i]) )
        << "node " << i;
    EXPECT_LE(r.result.x_tilde[i], eps_ceil(r.x[i]))
        << "rounding only floors or ceils, node " << i;
  }
}

TEST_P(RoundingSweep, RoundedVectorIsFeasible) {
  // Theorem 4.5: the rounded slot counts schedule all jobs. This is the
  // paper's main technical claim; zero repairs expected.
  Rounded r = run(testing::mixed(GetParam()));
  EXPECT_TRUE(feasible_with_counts(r.forest, r.result.x_tilde))
      << "rounded vector infeasible on instance " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, RoundingSweep, ::testing::Range(0, 160));

TEST(Rounding, RejectsDriftedNonTopmostInput) {
  // Nodes outside I must be integral up to kFracEps. A 5e-5 drift sits
  // above that radius but below the 1e-4 ad-hoc slack the old check
  // used — it would previously be floored to the wrong integer
  // silently; the exact-rational integrality check rejects it.
  Rounded r = run(testing::small_nested());
  std::vector<bool> in_topmost(r.forest.num_nodes(), false);
  for (int i : r.topmost) in_topmost[i] = true;
  int outside = -1;
  for (int i = 0; i < r.forest.num_nodes(); ++i) {
    if (!in_topmost[i]) {
      outside = i;
      break;
    }
  }
  ASSERT_GE(outside, 0) << "test instance has no node outside I";
  std::vector<double> drifted = r.x;
  drifted[outside] += 5e-5;
  EXPECT_THROW(round_solution(r.forest, drifted, r.topmost),
               util::CheckError);
}

}  // namespace
}  // namespace nat::at
