#include "activetime/multi_window.hpp"

#include <gtest/gtest.h>

#include "baselines/exact_unit.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace nat::at {
namespace {

using util::Rng;

TEST(MultiWindow, ValidationRejectsMalformed) {
  MultiWindowInstance inst;
  inst.g = 0;
  EXPECT_THROW(inst.validate(), util::CheckError);
  inst.g = 1;
  inst.jobs.push_back(MultiWindowJob{{}});
  EXPECT_THROW(inst.validate(), util::CheckError);
  inst.jobs[0].windows = {Interval{3, 3}};
  EXPECT_THROW(inst.validate(), util::CheckError);
}

TEST(MultiWindow, AllowsChecksEveryWindow) {
  const MultiWindowJob job{{Interval{0, 2}, Interval{5, 6}}};
  EXPECT_TRUE(job.allows(0));
  EXPECT_TRUE(job.allows(1));
  EXPECT_FALSE(job.allows(2));
  EXPECT_TRUE(job.allows(5));
  EXPECT_FALSE(job.allows(6));
}

TEST(MultiWindow, CoverageIsMaxMatchingSize) {
  // Two jobs sharing one g=1 slot: only one can be covered.
  MultiWindowInstance inst;
  inst.g = 1;
  inst.jobs = {MultiWindowJob{{Interval{0, 1}}},
               MultiWindowJob{{Interval{0, 1}}}};
  EXPECT_EQ(max_coverage(inst, {0}), 1);
  inst.g = 2;
  EXPECT_EQ(max_coverage(inst, {0}), 2);
  EXPECT_EQ(max_coverage(inst, {}), 0);
}

TEST(MultiWindow, HarmonicNumbers) {
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_DOUBLE_EQ(harmonic(2), 1.5);
  EXPECT_NEAR(harmonic(4), 25.0 / 12.0, 1e-12);
}

TEST(MultiWindow, GreedySolvesDisjointWindows) {
  // Jobs in disjoint windows: one slot each.
  MultiWindowInstance inst;
  inst.g = 3;
  inst.jobs = {MultiWindowJob{{Interval{0, 2}}},
               MultiWindowJob{{Interval{4, 6}}}};
  const HgResult r = solve_multi_window_hg(inst);
  EXPECT_EQ(r.active_slots, 2);
  EXPECT_TRUE(inst.jobs[0].allows(r.assignment[0]));
  EXPECT_TRUE(inst.jobs[1].allows(r.assignment[1]));
}

TEST(MultiWindow, SecondWindowCanMergeSlots) {
  // Two jobs with disjoint primary windows but one shared secondary
  // slot: the greedy should find the single shared slot.
  MultiWindowInstance inst;
  inst.g = 2;
  inst.jobs = {MultiWindowJob{{Interval{0, 1}, Interval{10, 11}}},
               MultiWindowJob{{Interval{5, 6}, Interval{10, 11}}}};
  const HgResult r = solve_multi_window_hg(inst);
  EXPECT_EQ(r.active_slots, 1);
  EXPECT_EQ(r.assignment[0], 10);
  EXPECT_EQ(r.assignment[1], 10);
}

TEST(MultiWindow, InfeasibleThrows) {
  MultiWindowInstance inst;
  inst.g = 1;
  inst.jobs = {MultiWindowJob{{Interval{0, 1}}},
               MultiWindowJob{{Interval{0, 1}}}};
  EXPECT_THROW(solve_multi_window_hg(inst), util::CheckError);
  EXPECT_THROW(exact_multi_window(inst), util::CheckError);
}

TEST(MultiWindow, CoverageIsMonotoneAndSubmodular) {
  // Spot-check f(S+t) - f(S) >= f(T+t) - f(T) for S ⊆ T on random
  // instances — the property Wolsey's guarantee rests on.
  Rng rng(606);
  for (int iter = 0; iter < 30; ++iter) {
    MultiWindowInstance inst;
    inst.g = rng.uniform_int(1, 3);
    const int n = static_cast<int>(rng.uniform_int(1, 5));
    for (int j = 0; j < n; ++j) {
      MultiWindowJob job;
      const int w = static_cast<int>(rng.uniform_int(1, 2));
      for (int i = 0; i < w; ++i) {
        const Time lo = rng.uniform_int(0, 8);
        job.windows.push_back(Interval{lo, lo + rng.uniform_int(1, 3)});
      }
      inst.jobs.push_back(std::move(job));
    }
    std::vector<Time> small_set, big_set;
    for (Time t = 0; t < 11; ++t) {
      const bool in_big = rng.chance(0.5);
      if (in_big) big_set.push_back(t);
      if (in_big && rng.chance(0.5)) small_set.push_back(t);
    }
    const Time extra = rng.uniform_int(0, 10);
    auto with = [&](std::vector<Time> v) {
      v.push_back(extra);
      return v;
    };
    const std::int64_t fs = max_coverage(inst, small_set);
    const std::int64_t ft = max_coverage(inst, big_set);
    EXPECT_LE(fs, ft) << "monotone";
    EXPECT_GE(max_coverage(inst, with(small_set)) - fs,
              max_coverage(inst, with(big_set)) - ft)
        << "submodular";
  }
}

// The Wolsey guarantee: greedy <= H_g * OPT on random instances.
class MultiWindowSweep : public ::testing::TestWithParam<int> {};

MultiWindowInstance random_instance(int id) {
  Rng rng(2500 + id);
  MultiWindowInstance inst;
  inst.g = rng.uniform_int(1, 4);
  const int n = static_cast<int>(rng.uniform_int(1, 6));
  for (int j = 0; j < n; ++j) {
    MultiWindowJob job;
    const int w = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < w; ++i) {
      const Time lo = rng.uniform_int(0, 10);
      job.windows.push_back(Interval{lo, lo + rng.uniform_int(1, 3)});
    }
    inst.jobs.push_back(std::move(job));
  }
  return inst;
}

TEST_P(MultiWindowSweep, GreedyWithinHgOfOptimal) {
  const MultiWindowInstance inst = random_instance(GetParam());
  if (max_coverage(inst, inst.candidate_slots()) < inst.num_jobs()) {
    GTEST_SKIP() << "randomly drawn instance is infeasible";
  }
  const auto opt = exact_multi_window(inst);
  if (!opt.has_value()) GTEST_SKIP() << "too many candidate slots";
  const HgResult r = solve_multi_window_hg(inst);
  EXPECT_GE(r.active_slots, *opt);
  EXPECT_LE(static_cast<double>(r.active_slots),
            harmonic(inst.g) * static_cast<double>(*opt) + 1e-9)
      << "Wolsey bound violated on instance " << GetParam();
  // Assignment validity: every job at an allowed, opened slot; load.
  for (int j = 0; j < inst.num_jobs(); ++j) {
    EXPECT_TRUE(inst.jobs[j].allows(r.assignment[j]));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MultiWindowSweep, ::testing::Range(0, 60));

// Single-window unit jobs are a special case of both this module and
// the exact unit solver — they must agree.
class MultiWindowVsUnit : public ::testing::TestWithParam<int> {};

TEST_P(MultiWindowVsUnit, ExactValuesAgreeOnSingleWindowInstances) {
  Rng rng(3500 + GetParam());
  Instance unit_inst;
  unit_inst.g = rng.uniform_int(1, 3);
  MultiWindowInstance multi;
  multi.g = unit_inst.g;
  const int n = static_cast<int>(rng.uniform_int(1, 5));
  // Nested windows to keep the instance laminar for the unit solver.
  Time lo = 0, hi = 12;
  for (int j = 0; j < n; ++j) {
    unit_inst.jobs.push_back(Job{lo, hi, 1});
    multi.jobs.push_back(MultiWindowJob{{Interval{lo, hi}}});
    if (hi - lo > 2 && rng.chance(0.7)) {
      ++lo;
      --hi;
    }
  }
  const auto exact_multi = exact_multi_window(multi, 14);
  if (!exact_multi.has_value()) GTEST_SKIP();
  const auto exact_unit = baselines::exact_opt_unit_laminar(unit_inst);
  EXPECT_EQ(*exact_multi, exact_unit.optimum);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MultiWindowVsUnit, ::testing::Range(0, 30));

}  // namespace
}  // namespace nat::at
