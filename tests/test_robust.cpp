// Robust interval-time scheduling (activetime/robust.hpp): corner
// materialization, validation of uncertainty boxes, v2 serialization,
// and the sandwich LP(p_lo) <= ALG(p) <= robust_hi certified by
// solve_robust — including the contract that point instances take a
// degenerate path bit-identical to solve_active_time.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "activetime/robust.hpp"
#include "activetime/solver.hpp"
#include "baselines/exact.hpp"
#include "helpers.hpp"
#include "instances/generators.hpp"
#include "io/serialize.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "verify/verify.hpp"

namespace nat::at {
namespace {

/// small_nested with an uncertainty box on two of its jobs: the base
/// draw is the hi corner, so worst-case feasibility is inherited.
Instance boxed_nested() {
  Instance instance = testing::small_nested();
  instance.jobs[0].processing_lo = 1;  // nominal 3
  instance.jobs[0].processing_hi = 3;
  instance.jobs[3].processing_lo = 1;  // nominal 2
  instance.jobs[3].processing_hi = 2;
  return instance;
}

Instance strip(Instance instance) {
  for (Job& job : instance.jobs) {
    job.processing_lo = 0;
    job.processing_hi = 0;
  }
  return instance;
}

TEST(RobustInstance, ValidateAcceptsAndRejectsBoxes) {
  Instance ok = boxed_nested();
  ok.validate();

  // p_lo must stay >= 1.
  Instance bad = boxed_nested();
  bad.jobs[0].processing_lo = 0;
  bad.jobs[0].processing_hi = 3;
  // lo=0 with hi!=0 is an interval with an out-of-range endpoint.
  EXPECT_THROW(bad.validate(), util::CheckError);

  // The box must bracket the nominal value: lo <= p <= hi.
  bad = boxed_nested();
  bad.jobs[0].processing_lo = 4;  // above nominal 3
  bad.jobs[0].processing_hi = 5;
  EXPECT_THROW(bad.validate(), util::CheckError);
  bad = boxed_nested();
  bad.jobs[0].processing_hi = 2;  // below nominal 3
  bad.jobs[0].processing_lo = 1;
  EXPECT_THROW(bad.validate(), util::CheckError);

  // The hi corner must still fit the window.
  bad = testing::small_nested();
  bad.jobs[2].processing_lo = 1;  // window [2, 3) has length 1
  bad.jobs[2].processing_hi = 2;
  EXPECT_THROW(bad.validate(), util::CheckError);
}

TEST(RobustInstance, CornersMaterializePointInstances) {
  const Instance boxed = boxed_nested();
  EXPECT_TRUE(boxed.has_processing_intervals());
  EXPECT_FALSE(testing::small_nested().has_processing_intervals());

  const Instance lo = boxed.lo_corner();
  const Instance hi = boxed.hi_corner();
  EXPECT_FALSE(lo.has_processing_intervals());
  EXPECT_FALSE(hi.has_processing_intervals());
  EXPECT_EQ(lo.jobs[0].processing, 1);
  EXPECT_EQ(hi.jobs[0].processing, 3);
  EXPECT_EQ(lo.jobs[3].processing, 1);
  EXPECT_EQ(hi.jobs[3].processing, 2);
  // Point jobs pass through both corners untouched.
  EXPECT_EQ(lo.jobs[1].processing, boxed.jobs[1].processing);
  EXPECT_EQ(hi.jobs[1].processing, boxed.jobs[1].processing);
  lo.validate();
  hi.validate();
}

TEST(RobustSerialize, PointInstancesStayByteIdenticalV1) {
  // The pre-robust corpus format must not change underneath anyone:
  // a point instance serializes with the v1 header, byte for byte.
  const Instance point = testing::small_nested();
  const std::string text = io::to_string(point);
  EXPECT_EQ(text.rfind("activetime v1\n", 0), 0u);
  EXPECT_EQ(text.find("v2"), std::string::npos);
  const Instance back = io::instance_from_string(text);
  EXPECT_EQ(back.jobs, point.jobs);
}

TEST(RobustSerialize, IntervalInstancesRoundTripV2) {
  const Instance boxed = boxed_nested();
  const std::string text = io::to_string(boxed);
  EXPECT_EQ(text.rfind("activetime v2\n", 0), 0u);
  const Instance back = io::instance_from_string(text);
  EXPECT_EQ(back.g, boxed.g);
  EXPECT_EQ(back.jobs, boxed.jobs);  // includes the lo/hi fields
}

TEST(RobustSolve, DegeneratePathIsBitIdenticalToPointSolver) {
  for (int id = 0; id < 12; ++id) {
    const Instance instance = testing::mixed(id);
    const ActiveTimeResult point = solve_active_time(instance);
    const RobustSolveResult res = solve_robust(instance);
    EXPECT_TRUE(res.degenerate);
    EXPECT_EQ(res.nominal.schedule.assignment, point.schedule.assignment);
    EXPECT_EQ(res.nominal.active_slots, point.active_slots);
    EXPECT_EQ(res.nominal.backend, point.backend);
    EXPECT_EQ(res.hi_backend, point.backend);
    EXPECT_EQ(res.robust_hi, point.active_slots);
    EXPECT_LE(res.robust_lo, static_cast<double>(point.active_slots) + 1e-9);
  }
}

TEST(RobustSolve, SandwichHoldsOnBoxedFixture) {
  const Instance boxed = boxed_nested();
  const RobustSolveResult res = solve_robust(boxed);
  EXPECT_FALSE(res.degenerate);
  // The nominal leg matches the plain dispatcher on the stripped
  // instance (the solvers only ever read `processing`).
  const ActiveTimeResult point = solve_active_time(strip(boxed));
  EXPECT_EQ(res.nominal.schedule.assignment, point.schedule.assignment);
  EXPECT_EQ(res.nominal.active_slots, point.active_slots);
  // LP(p_lo) <= ALG(p) <= robust_hi.
  EXPECT_LE(res.robust_lo,
            static_cast<double>(res.nominal.active_slots) + 1e-9);
  EXPECT_GE(res.robust_hi, res.nominal.active_slots);
  // The corners bracket the brute-force optima.
  const auto lo_opt = baselines::exact_opt_brute_force(boxed.lo_corner());
  const auto hi_opt = baselines::exact_opt_brute_force(boxed.hi_corner());
  ASSERT_TRUE(lo_opt.has_value());
  ASSERT_TRUE(hi_opt.has_value());
  EXPECT_LE(res.robust_lo, static_cast<double>(*lo_opt) + 1e-9);
  EXPECT_GE(res.robust_hi, *hi_opt);
}

TEST(RobustSolve, GeneralWindowsTakeTheGeneralBackend) {
  Instance instance = testing::crossing();
  instance.jobs[0].processing_lo = 1;
  instance.jobs[0].processing_hi = 1;
  instance.validate();
  const RobustSolveResult res = solve_robust(instance);
  EXPECT_FALSE(res.degenerate);
  EXPECT_EQ(res.nominal.backend, Backend::kGeneral);
  EXPECT_EQ(res.hi_backend, Backend::kGeneral);
  EXPECT_LE(res.robust_lo,
            static_cast<double>(res.nominal.active_slots) + 1e-9);
  EXPECT_GE(res.robust_hi, res.nominal.active_slots);
}

TEST(RobustSolve, InfeasibleWorstCornerThrows) {
  // Nominal corner fits (two unit jobs, two slots, g=2) but the hi
  // corner asks for 2+2 units in a 2-slot window with g=2.
  Instance instance;
  instance.g = 2;
  instance.jobs = {Job{0, 2, 1, 1, 2}, Job{0, 2, 1, 1, 2},
                   Job{0, 2, 1, 1, 2}};
  instance.validate();
  EXPECT_EQ(solve_active_time(strip(instance)).active_slots, 2);
  try {
    solve_robust(instance);
    FAIL() << "worst-case corner should be infeasible";
  } catch (const util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("infeasible"), std::string::npos);
  }
}

TEST(RobustSolve, RandomIntervalFamilySandwiches) {
  for (int id = 0; id < 24; ++id) {
    gen::RandomIntervalParams params;
    params.laminar = (id % 2 == 0);
    params.interval_probability = 0.8;
    if (!params.laminar) {
      params.general_params.jobs = 8;
      params.general_params.horizon = 16;
    }
    util::Rng rng(4242 + id);
    const Instance instance = gen::random_interval(params, rng);
    const RobustSolveResult res = solve_robust(instance);
    EXPECT_LE(res.robust_lo,
              static_cast<double>(res.nominal.active_slots) + 1e-9)
        << "id " << id;
    EXPECT_GE(res.robust_hi, res.nominal.active_slots) << "id " << id;
    EXPECT_EQ(res.degenerate, !instance.has_processing_intervals())
        << "id " << id;
  }
}

TEST(RobustVerify, SandwichCheckCatchesViolations) {
  // A valid sandwich passes...
  EXPECT_TRUE(verify::check_robust_sandwich(3.5, 4, 5, 16).empty());
  EXPECT_TRUE(verify::check_robust_sandwich(4.0, 4, 4, 16).empty());
  // ...a lower bound above the algorithm's cost fails...
  EXPECT_FALSE(verify::check_robust_sandwich(4.5, 4, 5, 16).empty());
  // ...and an upper bound below it fails too.
  EXPECT_FALSE(verify::check_robust_sandwich(3.0, 4, 3, 16).empty());
}

}  // namespace
}  // namespace nat::at
