#include "activetime/feasibility.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "helpers.hpp"
#include "util/rng.hpp"

namespace nat::at {
namespace {

using util::Rng;

TEST(SlotFeasibility, AllSlotsOpenIsFeasibleForGenerated) {
  for (int id = 0; id < 10; ++id) {
    const Instance inst = testing::random_small(id);
    std::vector<Time> all;
    for (const Job& job : inst.jobs) {
      for (Time t = job.release; t < job.deadline; ++t) all.push_back(t);
    }
    EXPECT_TRUE(feasible_with_slots(inst, all));
  }
}

TEST(SlotFeasibility, TooFewSlotsInfeasible) {
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{0, 4, 3}};
  EXPECT_TRUE(feasible_with_slots(inst, {0, 1, 2}));
  EXPECT_FALSE(feasible_with_slots(inst, {0, 1}));
  EXPECT_FALSE(feasible_with_slots(inst, {}));
}

TEST(SlotFeasibility, CapacityBinds) {
  Instance inst;
  inst.g = 2;
  inst.jobs = {Job{0, 2, 1}, Job{0, 2, 1}, Job{0, 2, 1}};
  EXPECT_FALSE(feasible_with_slots(inst, {0}));   // 3 units > g=2
  EXPECT_TRUE(feasible_with_slots(inst, {0, 1}));
}

TEST(SlotFeasibility, ExtractedScheduleIsValid) {
  const Instance inst = testing::small_nested();
  std::vector<Time> all;
  for (Time t = 0; t < 10; ++t) all.push_back(t);
  auto sched = schedule_with_slots(inst, all);
  ASSERT_TRUE(sched.has_value());
  validate_schedule(inst, *sched);
}

TEST(SlotFeasibility, DuplicateSlotsAreDeduplicated) {
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{0, 3, 2}};
  EXPECT_FALSE(feasible_with_slots(inst, {1, 1, 1}));  // really one slot
  EXPECT_TRUE(feasible_with_slots(inst, {1, 2, 2}));
}

// Satellite regression: the former dense job x slot matrix indexed
// with `int` products — 5000 jobs over a 500k-slot array puts
// n*S = 2.5e9 past INT_MAX (and the matrix itself past any sane
// allocation). The sparse builder stores one edge per *covered* slot,
// so this instance costs ~510k edges and must answer correctly.
TEST(SlotFeasibility, WideHorizonManyJobsDoesNotOverflowIndexing) {
  constexpr Time kHorizon = 500'000;
  constexpr int kNarrowJobs = 5'000;
  Instance inst;
  inst.g = 2;
  // One spanning job pins the slot array to the full horizon...
  inst.jobs.push_back(Job{0, kHorizon, 4});
  // ...and thousands of narrow jobs push n*S far past 32 bits while
  // total covered slots stays small.
  for (int j = 0; j < kNarrowJobs; ++j) {
    const Time lo = (static_cast<Time>(j) * 97) % (kHorizon - 4);
    inst.jobs.push_back(Job{lo, lo + 4, 1});
  }
  inst.validate();
  std::vector<Time> all;
  all.reserve(static_cast<std::size_t>(kHorizon));
  for (Time t = 0; t < kHorizon; ++t) all.push_back(t);
  EXPECT_TRUE(feasible_with_slots(inst, all));

  // The same network must still see capacity: squeeze every narrow job
  // into one 4-slot window with g=2 (capacity 8 < 5000 units).
  Instance tight = inst;
  for (int j = 1; j <= kNarrowJobs; ++j) {
    tight.jobs[static_cast<std::size_t>(j)].release = 0;
    tight.jobs[static_cast<std::size_t>(j)].deadline = 4;
  }
  EXPECT_FALSE(feasible_with_slots(tight, all));
}

TEST(RegionFeasibility, MatchesSlotLevelOnMaterializedSlots) {
  Rng rng(42);
  for (int id = 0; id < 40; ++id) {
    const Instance inst = testing::random_small(id);
    LaminarForest f = LaminarForest::build(inst);
    f.canonicalize();
    // Random per-region counts.
    std::vector<Time> open(f.num_nodes());
    for (int i = 0; i < f.num_nodes(); ++i) {
      open[i] = rng.uniform_int(0, f.node(i).length());
    }
    const bool region = feasible_with_counts(f, open);
    // Slot-level test on the materialized slots, with the forest's
    // (canonical) jobs.
    Instance canon;
    canon.g = f.g();
    canon.jobs = f.jobs();
    const bool slot =
        feasible_with_slots(canon, materialize_slots(f, open));
    EXPECT_EQ(region, slot) << "instance " << id;
  }
}

TEST(RegionFeasibility, ExtractionValidAndUsesOnlyOpenSlots) {
  Rng rng(17);
  int feasible_cases = 0;
  for (int id = 0; id < 60 && feasible_cases < 25; ++id) {
    const Instance inst = testing::random_small(id);
    LaminarForest f = LaminarForest::build(inst);
    f.canonicalize();
    std::vector<Time> open(f.num_nodes());
    for (int i = 0; i < f.num_nodes(); ++i) {
      // Bias toward open so a good share of cases are feasible.
      open[i] = rng.chance(0.8) ? f.node(i).length()
                                : rng.uniform_int(0, f.node(i).length());
    }
    auto sched = schedule_with_counts(f, open);
    if (!sched.has_value()) continue;
    ++feasible_cases;
    Instance canon;
    canon.g = f.g();
    canon.jobs = f.jobs();
    validate_schedule(canon, *sched);
    validate_schedule(inst, *sched);  // canonical windows only shrink
    // Every used slot must be one of the materialized open slots.
    const std::vector<Time> slots = materialize_slots(f, open);
    for (const auto& js : sched->assignment) {
      for (Time t : js) {
        EXPECT_TRUE(std::binary_search(slots.begin(), slots.end(), t));
      }
    }
  }
  EXPECT_GE(feasible_cases, 10);
}

TEST(RegionFeasibility, CountBoundsChecked) {
  LaminarForest f = LaminarForest::build(testing::small_nested());
  std::vector<Time> open(f.num_nodes(), 0);
  open[0] = f.node(0).length() + 1;
  EXPECT_THROW(feasible_with_counts(f, open), util::CheckError);
}

}  // namespace
}  // namespace nat::at
