#include "instances/generators.hpp"

#include <gtest/gtest.h>

#include "activetime/feasibility.hpp"
#include "baselines/exact.hpp"

namespace nat::at::gen {
namespace {

TEST(Generators, UnitOverloadShape) {
  const Instance inst = unit_overload(4);
  EXPECT_EQ(inst.g, 4);
  EXPECT_EQ(inst.num_jobs(), 5);
  for (const Job& job : inst.jobs) {
    EXPECT_EQ(job.window(), (Interval{0, 2}));
    EXPECT_EQ(job.processing, 1);
  }
  EXPECT_TRUE(inst.is_laminar());
}

TEST(Generators, Lemma51Shape) {
  const std::int64_t g = 3;
  const Instance inst = lemma51_gap(g);
  EXPECT_EQ(inst.num_jobs(), static_cast<int>(g * g + 1));
  EXPECT_EQ(inst.horizon(), (Interval{0, 2 * g}));
  EXPECT_EQ(inst.jobs[0].processing, g);  // the long job
  EXPECT_TRUE(inst.is_laminar());
  EXPECT_EQ(inst.total_volume(), g * g + g);
}

TEST(Generators, LongPlusGroupsGuardrails) {
  EXPECT_THROW(long_plus_groups(2, 1, 1, 5), util::CheckError);  // p > horizon
  const Instance ok = long_plus_groups(2, 3, 1, 4);
  EXPECT_TRUE(ok.is_laminar());
}

TEST(Generators, RandomLaminarIsDeterministicPerSeed) {
  RandomLaminarParams params;
  util::Rng a(42), b(42), c(43);
  const Instance ia = random_laminar(params, a);
  const Instance ib = random_laminar(params, b);
  const Instance ic = random_laminar(params, c);
  EXPECT_EQ(ia.jobs, ib.jobs);
  EXPECT_NE(ia.jobs, ic.jobs);
}

TEST(Generators, RandomLaminarAlwaysFeasibleAndLaminar) {
  // The generator NAT_CHECKs feasibility internally; run a spread of
  // parameterizations to exercise the volume-budget logic.
  for (int seed = 0; seed < 40; ++seed) {
    RandomLaminarParams params;
    util::Rng knobs(seed);
    params.g = knobs.uniform_int(1, 6);
    params.max_depth = static_cast<int>(knobs.uniform_int(1, 4));
    params.max_children = static_cast<int>(knobs.uniform_int(1, 4));
    params.max_jobs_per_node = static_cast<int>(knobs.uniform_int(1, 4));
    params.max_processing = knobs.uniform_int(1, 5);
    params.fill = 0.5 + 0.4 * knobs.uniform01();
    util::Rng rng(1000 + seed);
    const Instance inst = random_laminar(params, rng);
    EXPECT_TRUE(inst.is_laminar());
    EXPECT_GE(inst.num_jobs(), 1);
  }
}

TEST(Generators, RandomLaminarUnitHasOnlyUnitJobs) {
  RandomLaminarParams params;
  params.max_processing = 9;  // overridden by the unit variant
  util::Rng rng(7);
  const Instance inst = random_laminar_unit(params, rng);
  for (const Job& job : inst.jobs) EXPECT_EQ(job.processing, 1);
}

TEST(Generators, StaircaseIsAMaximalChain) {
  const Instance inst = staircase(3, 5, 2);
  EXPECT_TRUE(inst.is_laminar());
  EXPECT_EQ(inst.num_jobs(), 10);
  LaminarForest f = LaminarForest::build(inst);
  EXPECT_EQ(f.num_nodes(), 5);
  for (int i = 0; i < f.num_nodes(); ++i) {
    EXPECT_LE(f.node(i).children.size(), 1u) << "chain expected";
  }
}

TEST(Generators, BinaryNestShape) {
  const Instance inst = binary_nest(3, 3);
  EXPECT_TRUE(inst.is_laminar());
  LaminarForest f = LaminarForest::build(inst);
  // Depth-3 recursion: every internal original node has two children.
  int with_two = 0;
  for (int i = 0; i < f.num_nodes(); ++i) {
    if (f.node(i).children.size() == 2) ++with_two;
  }
  EXPECT_GE(with_two, 3);
  EXPECT_GE(f.depth(f.postorder().front()), 2);
}

TEST(Generators, StaircaseGuardsInfeasibleParameters) {
  // levels*per_level units inside the innermost window of length
  // 2*levels - ... — the guard catches gross overloads.
  EXPECT_THROW(staircase(1, 4, 20), util::CheckError);
}

TEST(Generators, ContendedFamilyIsTight) {
  // Contended instances should sit near capacity: LP distinctly above
  // the group count, OPT below 2x the group count + longs.
  ContendedParams params;
  params.g = 4;
  util::Rng rng(5);
  const Instance inst = random_contended(params, rng);
  EXPECT_TRUE(inst.is_laminar());
  // Volume within global capacity (feasibility was flow-checked).
  EXPECT_LE(inst.total_volume(), inst.g * inst.horizon().length());
}

}  // namespace
}  // namespace nat::at::gen
