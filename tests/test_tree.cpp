#include "activetime/tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "helpers.hpp"
#include "util/check.hpp"

namespace nat::at {
namespace {

TEST(LaminarForest, BuildSmallNested) {
  const Instance inst = testing::small_nested();
  LaminarForest f = LaminarForest::build(inst);
  f.check_invariants();
  // Windows: [0,10), [2,5), [2,3), [6,9) -> 4 nodes, 1 root.
  EXPECT_EQ(f.num_nodes(), 4);
  ASSERT_EQ(f.roots().size(), 1u);
  const int root = f.roots()[0];
  EXPECT_EQ(f.node(root).interval, (Interval{0, 10}));
  EXPECT_EQ(f.node(root).children.size(), 2u);
  // Root exclusive length: 10 - 3 - 3 = 4.
  EXPECT_EQ(f.node(root).length(), 4);
}

TEST(LaminarForest, JobsMapToTheirWindows) {
  const Instance inst = testing::small_nested();
  LaminarForest f = LaminarForest::build(inst);
  for (int j = 0; j < inst.num_jobs(); ++j) {
    EXPECT_EQ(f.node(f.node_of_job(j)).interval, inst.jobs[j].window());
  }
  // Jobs 3 and 4 share the window [6,9) and thus the node.
  EXPECT_EQ(f.node_of_job(3), f.node_of_job(4));
}

TEST(LaminarForest, RejectsCrossingWindows) {
  EXPECT_THROW(LaminarForest::build(testing::crossing()), util::CheckError);
}

TEST(LaminarForest, ForestWithMultipleRoots) {
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{0, 2, 1}, Job{5, 8, 2}, Job{5, 7, 1}};
  LaminarForest f = LaminarForest::build(inst);
  f.check_invariants();
  EXPECT_EQ(f.roots().size(), 2u);
}

TEST(LaminarForest, AncestorAndDepth) {
  LaminarForest f = LaminarForest::build(testing::small_nested());
  const int root = f.roots()[0];
  for (int i = 0; i < f.num_nodes(); ++i) {
    EXPECT_TRUE(f.is_ancestor(root, i));
    EXPECT_TRUE(f.is_ancestor(i, i));
    if (i != root) {
      EXPECT_FALSE(f.is_ancestor(i, root));
      EXPECT_GT(f.depth(i), 0);
    }
  }
}

TEST(LaminarForest, PostorderVisitsChildrenFirst) {
  LaminarForest f = LaminarForest::build(testing::small_nested());
  std::vector<int> pos(f.num_nodes());
  const auto& order = f.postorder();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(f.num_nodes()));
  for (std::size_t p = 0; p < order.size(); ++p) pos[order[p]] = static_cast<int>(p);
  for (int i = 0; i < f.num_nodes(); ++i) {
    for (int c : f.node(i).children) EXPECT_LT(pos[c], pos[i]);
  }
}

TEST(LaminarForest, CanonicalizeMakesLeavesRigid) {
  Instance inst;
  inst.g = 2;
  inst.jobs = {Job{0, 8, 3}, Job{0, 8, 2}};  // one window, longest job 3 < 8
  LaminarForest f = LaminarForest::build(inst);
  EXPECT_FALSE(f.is_canonical());
  f.canonicalize();
  f.check_invariants();
  EXPECT_TRUE(f.is_canonical());
  // The longest job's window shrank to the new rigid leaf [0, 3).
  bool found = false;
  for (const Job& job : f.jobs()) {
    if (job.processing == 3) {
      EXPECT_EQ(job.window(), (Interval{0, 3}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LaminarForest, CanonicalizeBinarizesWideNodes) {
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{0, 20, 1},  Job{1, 3, 2},  Job{4, 6, 2},
               Job{7, 9, 2},   Job{10, 12, 2}};  // root with 4 children
  LaminarForest f = LaminarForest::build(inst);
  f.canonicalize();
  f.check_invariants();
  EXPECT_TRUE(f.is_canonical());
  for (int i = 0; i < f.num_nodes(); ++i) {
    EXPECT_LE(f.node(i).children.size(), 2u);
    if (f.node(i).is_virtual) {
      EXPECT_EQ(f.node(i).length(), 0);
      EXPECT_TRUE(f.node(i).jobs.empty());
    }
  }
}

TEST(LaminarForest, CanonicalizePreservesJobCountAndShrinksWindows) {
  for (int id = 0; id < 30; ++id) {
    const Instance inst = testing::random_small(id);
    LaminarForest f = LaminarForest::build(inst);
    f.canonicalize();
    f.check_invariants();
    EXPECT_TRUE(f.is_canonical());
    ASSERT_EQ(f.jobs().size(), inst.jobs.size());
    for (std::size_t j = 0; j < inst.jobs.size(); ++j) {
      EXPECT_EQ(f.jobs()[j].processing, inst.jobs[j].processing);
      EXPECT_TRUE(f.jobs()[j].window().inside(inst.jobs[j].window()))
          << "canonicalization must only shrink windows";
    }
  }
}

// Property sweep: invariants hold for random instances, and exclusive
// lengths always partition the root span.
class TreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(TreeSweep, InvariantsBeforeAndAfterCanonicalize) {
  const Instance inst = testing::random_small(GetParam());
  LaminarForest f = LaminarForest::build(inst);
  f.check_invariants();
  Time pre_total = 0;
  for (int i = 0; i < f.num_nodes(); ++i) pre_total += f.node(i).length();
  f.canonicalize();
  f.check_invariants();
  Time post_total = 0;
  for (int i = 0; i < f.num_nodes(); ++i) post_total += f.node(i).length();
  EXPECT_EQ(pre_total, post_total)
      << "canonicalization must not create or destroy slots";
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreeSweep, ::testing::Range(0, 60));

}  // namespace
}  // namespace nat::at
