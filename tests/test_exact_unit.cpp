#include "baselines/exact_unit.hpp"

#include <gtest/gtest.h>

#include "activetime/solver.hpp"
#include "baselines/exact.hpp"
#include "helpers.hpp"
#include "util/check.hpp"

namespace nat::at::baselines {
namespace {

TEST(ExactUnit, RejectsNonUnitJobs) {
  Instance inst;
  inst.g = 2;
  inst.jobs = {Job{0, 4, 2}};
  EXPECT_THROW(exact_opt_unit_laminar(inst), util::CheckError);
}

TEST(ExactUnit, EmptyInstance) {
  EXPECT_EQ(exact_opt_unit_laminar(Instance{3, {}}).optimum, 0);
}

TEST(ExactUnit, KnownCases) {
  // g+1 unit jobs in [0,2): ceil((g+1)/g) = 2.
  for (std::int64_t g : {1, 2, 5}) {
    const Instance inst = gen::unit_overload(g);
    const ExactUnitResult r = exact_opt_unit_laminar(inst);
    EXPECT_EQ(r.optimum, 2) << "g=" << g;
    validate_schedule(inst, r.schedule);
  }
  // Nested chain sharing one slot.
  Instance chain;
  chain.g = 3;
  chain.jobs = {Job{0, 9, 1}, Job{2, 6, 1}, Job{3, 5, 1}};
  EXPECT_EQ(exact_opt_unit_laminar(chain).optimum, 1);
  // Disjoint children force one slot each.
  Instance split;
  split.g = 5;
  split.jobs = {Job{0, 10, 1}, Job{1, 3, 1}, Job{5, 7, 1}};
  EXPECT_EQ(exact_opt_unit_laminar(split).optimum, 2);
}

TEST(ExactUnit, DetectsInfeasibleUnitInstance) {
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{0, 1, 1}, Job{0, 1, 1}};  // 2 jobs, 1 slot, g=1
  EXPECT_THROW(exact_opt_unit_laminar(inst), util::CheckError);
}

// The headline property: the polynomial greedy equals the exponential
// branch-and-bound on random unit instances (E8's "exactly solvable"
// claim), and the 9/5 solver stays within bound against it.
class ExactUnitSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExactUnitSweep, MatchesBranchAndBound) {
  gen::RandomLaminarParams params;
  util::Rng knobs(600 + GetParam());
  params.g = knobs.uniform_int(1, 5);
  params.max_depth = static_cast<int>(knobs.uniform_int(1, 3));
  params.max_children = static_cast<int>(knobs.uniform_int(1, 3));
  params.max_jobs_per_node = static_cast<int>(knobs.uniform_int(1, 4));
  util::Rng rng(1234 + GetParam());
  const Instance inst = gen::random_laminar_unit(params, rng);

  const ExactUnitResult unit = exact_opt_unit_laminar(inst);
  validate_schedule(inst, unit.schedule);
  // The B&B is exponential; keep its budget finite and skip the
  // comparison (but not the validity checks above) when it blows up.
  auto bb = exact_opt_laminar(inst, ExactOptions{2'000'000});
  if (bb.has_value()) {
    EXPECT_EQ(unit.optimum, bb->optimum)
        << "polynomial unit solver disagrees with B&B on instance "
        << GetParam();
  }

  NestedSolveResult nested = solve_nested(inst);
  EXPECT_LE(static_cast<double>(nested.active_slots),
            1.8 * static_cast<double>(unit.optimum) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExactUnitSweep, ::testing::Range(0, 80));

}  // namespace
}  // namespace nat::at::baselines
