#include "activetime/lp_transform.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "helpers.hpp"
#include "lp/dense_simplex.hpp"

namespace nat::at {
namespace {

struct Pipeline {
  LaminarForest forest;
  StrongLp lp;
  FractionalSolution before;
  FractionalSolution after;
};

Pipeline run_pipeline(const Instance& inst) {
  Pipeline p{LaminarForest::build(inst), {}, {}, {}};
  p.forest.canonicalize();
  p.lp = build_strong_lp(p.forest);
  lp::Solution s = lp::solve(p.lp.model);
  EXPECT_EQ(s.status, lp::Status::kOptimal);
  p.before = unpack(p.lp, s);
  p.after = p.before;
  push_down_transform(p.forest, p.lp, p.after);
  return p;
}

double total(const std::vector<double>& x) {
  return std::accumulate(x.begin(), x.end(), 0.0);
}

TEST(PushDownTransform, SmallNestedEndsAtFixedPoint) {
  Pipeline p = run_pipeline(testing::small_nested());
  // Lemma 3.1 property: a positive node has all strict descendants full.
  for (int i = 0; i < p.forest.num_nodes(); ++i) {
    if (p.after.x[i] <= kFracEps) continue;
    for (int d : p.forest.subtree(i)) {
      if (d == i) continue;
      EXPECT_NEAR(p.after.x[d],
                  static_cast<double>(p.forest.node(d).length()), 1e-5)
          << "node " << i << " positive but descendant " << d << " not full";
    }
  }
}

// Property sweep over random instances: the transform preserves the
// objective and LP feasibility, reaches the Lemma 3.1 fixed point, and
// the resulting topmost set satisfies Claim 1.
class TransformSweep : public ::testing::TestWithParam<int> {};

TEST_P(TransformSweep, PreservesObjectiveAndFeasibility) {
  Pipeline p = run_pipeline(testing::mixed(GetParam()));
  EXPECT_NEAR(total(p.before.x), total(p.after.x), 1e-5)
      << "transform must not change the number of open slots";
  EXPECT_LE(lp_violation(p.forest, p.lp, p.after), 1e-4)
      << "transform must keep the solution LP-feasible";
}

TEST_P(TransformSweep, Lemma31FixedPoint) {
  Pipeline p = run_pipeline(testing::mixed(GetParam()));
  for (int i = 0; i < p.forest.num_nodes(); ++i) {
    if (p.after.x[i] <= kFracEps) continue;
    for (int d : p.forest.subtree(i)) {
      if (d == i) continue;
      EXPECT_GE(p.after.x[d],
                static_cast<double>(p.forest.node(d).length()) - 1e-4);
    }
  }
}

TEST_P(TransformSweep, Claim1Holds) {
  Pipeline p = run_pipeline(testing::mixed(GetParam()));
  const std::vector<int> topmost = topmost_positive(p.forest, p.after.x);
  EXPECT_FALSE(topmost.empty());
  const std::string violation =
      check_claim1(p.forest, p.after.x, topmost, 1e-4);
  EXPECT_TRUE(violation.empty()) << violation;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TransformSweep, ::testing::Range(0, 160));

// Regression for the O(n^2) rescan: the transform used to rebuild and
// sort the full descendant set of every positive node, which is
// quadratic on deep forests. The single-postorder-pass rewrite must
// handle a 50k-deep chain (and still land on the Lemma 3.1 fixed
// point); the old code needed ~200 million subtree visits here and
// would time the test out.
TEST(PushDownTransform, DeepChainReachesFixedPointFast) {
  const int kDepth = 20'000;
  Instance inst;
  inst.g = 1;
  for (int k = 0; k < kDepth; ++k) {
    inst.jobs.push_back({0, 2 * (k + 1), 1});
  }
  LaminarForest forest = LaminarForest::build(inst);
  forest.canonicalize();
  const int m = forest.num_nodes();
  ASSERT_GE(m, kDepth);

  // x-only transform: no y classes, all mass piled on the roots.
  StrongLp lp;
  FractionalSolution sol;
  sol.x.assign(m, 0.0);
  double before = 0.0;
  for (int r : forest.roots()) {
    sol.x[r] = static_cast<double>(forest.node(r).length()) / 2.0 + 0.25;
    before += sol.x[r];
  }

  push_down_transform(forest, lp, sol);

  double after = 0.0;
  for (int i = 0; i < m; ++i) {
    after += sol.x[i];
    EXPECT_GE(sol.x[i], 0.0);
    EXPECT_LE(sol.x[i], static_cast<double>(forest.node(i).length()) + 1e-6);
  }
  EXPECT_NEAR(before, after, 1e-4) << "mass must be conserved";

  // Lemma 3.1 fixed point in O(n): bottom-up "whole subtree full"
  // flags; a positive node must have every strict descendant full.
  std::vector<char> subtree_full(m, 1);
  for (int i : forest.postorder()) {
    bool full =
        std::abs(sol.x[i] - static_cast<double>(forest.node(i).length())) <=
        1e-5;
    for (int c : forest.node(i).children) full = full && subtree_full[c];
    subtree_full[i] = full ? 1 : 0;
    if (sol.x[i] > kFracEps) {
      for (int c : forest.node(i).children) {
        EXPECT_TRUE(subtree_full[c])
            << "node " << i << " positive but child subtree " << c
            << " not full";
      }
    }
  }
}

TEST(PushDownTransform, NearEpsDrainLeavesNoStrandedAssignments) {
  // Regression: when a move drains x(i) to within kFracEps, the split
  // ratio must be exactly 1. Forming theta / x(i) against the
  // sub-epsilon remainder moves slightly less than all of the y mass;
  // the snap then zeroes x(i) with a residue stranded at i, breaking
  // y <= |c| * x(i).
  Pipeline p = run_pipeline(testing::small_nested());
  // A class with slots at both a node and one of its strict
  // descendants, so the relocation has somewhere to go.
  int cls = -1, node = -1;
  for (std::size_t c = 0; c < p.lp.y_vars.size() && cls < 0; ++c) {
    for (const auto& [a, ka] : p.lp.y_vars[c]) {
      for (const auto& [b, kb] : p.lp.y_vars[c]) {
        if (a != b && p.forest.is_ancestor(a, b)) {
          cls = static_cast<int>(c);
          node = a;
          break;
        }
      }
      if (cls >= 0) break;
    }
  }
  ASSERT_GE(cls, 0) << "test instance has no nested class pair";

  FractionalSolution sol = p.before;
  std::fill(sol.x.begin(), sol.x.end(), 0.0);
  for (auto& ys : sol.y) std::fill(ys.begin(), ys.end(), 0.0);
  // The move leaves a 5e-7 remainder — below kFracEps, so the drain
  // guard (ratio = 1) must take over.
  sol.x[node] = 1.0 + 5e-7;
  for (std::size_t k = 0; k < p.lp.y_vars[cls].size(); ++k) {
    if (p.lp.y_vars[cls][k].first == node) sol.y[cls][k] = 0.8;
  }

  push_down_transform(p.forest, p.lp, sol);

  EXPECT_EQ(sol.x[node], 0.0) << "sub-eps residue must snap to zero";
  double at_node = 0.0, total = 0.0;
  for (std::size_t c = 0; c < p.lp.y_vars.size(); ++c) {
    for (std::size_t k = 0; k < p.lp.y_vars[c].size(); ++k) {
      total += sol.y[c][k];
      if (p.lp.y_vars[c][k].first == node) at_node += sol.y[c][k];
    }
  }
  EXPECT_EQ(at_node, 0.0) << "assignment mass stranded on a zeroed node";
  EXPECT_NEAR(total, 0.8, 1e-12) << "transform must conserve y mass";
}

}  // namespace
}  // namespace nat::at
