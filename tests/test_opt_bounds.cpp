#include "activetime/opt_bounds.hpp"

#include <gtest/gtest.h>

#include "baselines/exact.hpp"
#include "helpers.hpp"

namespace nat::at {
namespace {

/// Exact OPT_i: restrict the instance to the jobs of Des(i) and solve.
std::int64_t subtree_opt(const LaminarForest& forest, int node) {
  Instance sub;
  sub.g = forest.g();
  for (int v : forest.subtree(node)) {
    for (int j : forest.node(v).jobs) sub.jobs.push_back(forest.jobs()[j]);
  }
  if (sub.jobs.empty()) return 0;
  auto r = baselines::exact_opt_laminar(sub);
  EXPECT_TRUE(r.has_value());
  return r->optimum;
}

TEST(OptBounds, SingleUnitJob) {
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{0, 3, 1}};
  LaminarForest f = LaminarForest::build(inst);
  EXPECT_TRUE(opt_le_1(f, f.roots()[0]));
  EXPECT_EQ(opt_lower_bound(f, f.roots()[0]), 1);
}

TEST(OptBounds, CapacityForcesTwoSlots) {
  Instance inst;
  inst.g = 2;
  inst.jobs = {Job{0, 2, 1}, Job{0, 2, 1}, Job{0, 2, 1}};  // 3 > g
  LaminarForest f = LaminarForest::build(inst);
  EXPECT_FALSE(opt_le_1(f, f.roots()[0]));
  EXPECT_TRUE(opt_le_2(f, f.roots()[0]));
}

TEST(OptBounds, DisjointChildrenForceTwoSlots) {
  Instance inst;
  inst.g = 5;
  inst.jobs = {Job{0, 10, 1}, Job{1, 3, 1}, Job{5, 7, 1}};
  LaminarForest f = LaminarForest::build(inst);
  // The two children are disjoint, so no single slot serves both.
  EXPECT_FALSE(opt_le_1(f, f.roots()[0]));
  EXPECT_TRUE(opt_le_2(f, f.roots()[0]));
}

TEST(OptBounds, LongJobForcesThree) {
  Instance inst;
  inst.g = 4;
  inst.jobs = {Job{0, 6, 3}};
  LaminarForest f = LaminarForest::build(inst);
  EXPECT_FALSE(opt_le_2(f, f.roots()[0]));
  EXPECT_EQ(opt_lower_bound(f, f.roots()[0]), 3);
}

TEST(OptBounds, ChainOfNestedUnitJobsIsOneSlot) {
  Instance inst;
  inst.g = 3;
  inst.jobs = {Job{0, 9, 1}, Job{2, 6, 1}, Job{3, 5, 1}};
  LaminarForest f = LaminarForest::build(inst);
  EXPECT_TRUE(opt_le_1(f, f.roots()[0]));
}

// Property sweep: the cheap decision procedures agree exactly with the
// exact solver on every subtree of random instances (this is the
// separation oracle for LP constraints (7)/(8), so exactness matters).
class OptBoundAgreement : public ::testing::TestWithParam<int> {};

TEST_P(OptBoundAgreement, MatchesExactSolverOnEverySubtree) {
  const Instance inst = testing::random_small(GetParam());
  LaminarForest f = LaminarForest::build(inst);
  f.canonicalize();
  for (int i = 0; i < f.num_nodes(); ++i) {
    const std::int64_t opt = subtree_opt(f, i);
    if (opt == 0) continue;  // virtual-path subtrees with no jobs
    EXPECT_EQ(opt_le_1(f, i), opt <= 1) << "node " << i;
    EXPECT_EQ(opt_le_2(f, i), opt <= 2) << "node " << i;
    EXPECT_LE(opt_lower_bound(f, i), opt);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptBoundAgreement, ::testing::Range(0, 40));

}  // namespace
}  // namespace nat::at
