#include "activetime/opt_bounds.hpp"

#include <gtest/gtest.h>

#include "baselines/exact.hpp"
#include "helpers.hpp"
#include "instances/generators.hpp"
#include "util/thread_pool.hpp"

namespace nat::at {
namespace {

/// Exact OPT_i: restrict the instance to the jobs of Des(i) and solve.
std::int64_t subtree_opt(const LaminarForest& forest, int node) {
  Instance sub;
  sub.g = forest.g();
  for (int v : forest.subtree(node)) {
    for (int j : forest.node(v).jobs) sub.jobs.push_back(forest.jobs()[j]);
  }
  if (sub.jobs.empty()) return 0;
  auto r = baselines::exact_opt_laminar(sub);
  EXPECT_TRUE(r.has_value());
  return r->optimum;
}

TEST(OptBounds, SingleUnitJob) {
  Instance inst;
  inst.g = 1;
  inst.jobs = {Job{0, 3, 1}};
  LaminarForest f = LaminarForest::build(inst);
  EXPECT_TRUE(opt_le_1(f, f.roots()[0]));
  EXPECT_EQ(opt_lower_bound(f, f.roots()[0]), 1);
}

TEST(OptBounds, CapacityForcesTwoSlots) {
  Instance inst;
  inst.g = 2;
  inst.jobs = {Job{0, 2, 1}, Job{0, 2, 1}, Job{0, 2, 1}};  // 3 > g
  LaminarForest f = LaminarForest::build(inst);
  EXPECT_FALSE(opt_le_1(f, f.roots()[0]));
  EXPECT_TRUE(opt_le_2(f, f.roots()[0]));
}

TEST(OptBounds, DisjointChildrenForceTwoSlots) {
  Instance inst;
  inst.g = 5;
  inst.jobs = {Job{0, 10, 1}, Job{1, 3, 1}, Job{5, 7, 1}};
  LaminarForest f = LaminarForest::build(inst);
  // The two children are disjoint, so no single slot serves both.
  EXPECT_FALSE(opt_le_1(f, f.roots()[0]));
  EXPECT_TRUE(opt_le_2(f, f.roots()[0]));
}

TEST(OptBounds, LongJobForcesThree) {
  Instance inst;
  inst.g = 4;
  inst.jobs = {Job{0, 6, 3}};
  LaminarForest f = LaminarForest::build(inst);
  EXPECT_FALSE(opt_le_2(f, f.roots()[0]));
  EXPECT_EQ(opt_lower_bound(f, f.roots()[0]), 3);
}

TEST(OptBounds, ChainOfNestedUnitJobsIsOneSlot) {
  Instance inst;
  inst.g = 3;
  inst.jobs = {Job{0, 9, 1}, Job{2, 6, 1}, Job{3, 5, 1}};
  LaminarForest f = LaminarForest::build(inst);
  EXPECT_TRUE(opt_le_1(f, f.roots()[0]));
}

// Property sweep: the cheap decision procedures agree exactly with the
// exact solver on every subtree of random instances (this is the
// separation oracle for LP constraints (7)/(8), so exactness matters).
class OptBoundAgreement : public ::testing::TestWithParam<int> {};

TEST_P(OptBoundAgreement, MatchesExactSolverOnEverySubtree) {
  const Instance inst = testing::random_small(GetParam());
  LaminarForest f = LaminarForest::build(inst);
  f.canonicalize();
  for (int i = 0; i < f.num_nodes(); ++i) {
    const std::int64_t opt = subtree_opt(f, i);
    if (opt == 0) continue;  // virtual-path subtrees with no jobs
    EXPECT_EQ(opt_le_1(f, i), opt <= 1) << "node " << i;
    EXPECT_EQ(opt_le_2(f, i), opt <= 2) << "node " << i;
    EXPECT_LE(opt_lower_bound(f, i), opt);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptBoundAgreement, ::testing::Range(0, 40));

/// A forest big enough to clear kCeilingSweepSerialCutoff, so pooled
/// runs take the chunked path rather than the serial fallback.
LaminarForest big_sweep_forest() {
  gen::RandomLaminarParams params;
  params.g = 3;
  params.max_depth = 5;
  params.max_children = 4;
  params.max_jobs_per_node = 2;
  params.max_processing = 3;
  util::Rng rng(2026);
  for (int attempt = 0; attempt < 64; ++attempt) {
    LaminarForest f = LaminarForest::build(gen::random_laminar(params, rng));
    f.canonicalize();
    if (f.num_nodes() >= kCeilingSweepSerialCutoff) return f;
  }
  ADD_FAILURE() << "could not generate a forest above the sweep cutoff";
  return LaminarForest::build(Instance{1, {Job{0, 1, 1}}});
}

TEST(CeilingSweep, MatchesPerNodeBounds) {
  const LaminarForest f = big_sweep_forest();
  const std::vector<int> lower = ceiling_lower_bounds(f);
  ASSERT_EQ(static_cast<int>(lower.size()), f.num_nodes());
  for (int i = 0; i < f.num_nodes(); ++i) {
    EXPECT_EQ(lower[i], opt_lower_bound(f, i)) << "node " << i;
  }
}

TEST(CeilingSweep, BitIdenticalAcrossWorkerCounts) {
  // The sweep must produce the same vector at 1, 2, and 4 workers —
  // the strong LP (and therefore every downstream result) is built
  // from it, so any divergence would make solver output depend on the
  // machine's core count.
  const LaminarForest f = big_sweep_forest();
  ASSERT_GE(f.num_nodes(), kCeilingSweepSerialCutoff);
  std::vector<int> serial(f.num_nodes());
  for (int i = 0; i < f.num_nodes(); ++i) {
    serial[i] = opt_lower_bound(f, i);
  }
  for (std::size_t workers : {1u, 2u, 4u}) {
    util::ThreadPool pool(workers);
    EXPECT_EQ(ceiling_lower_bounds(f, pool), serial)
        << "sweep diverged at " << workers << " workers";
  }
}

TEST(CeilingSweep, SmallForestTakesSerialPath) {
  Instance inst;
  inst.g = 2;
  inst.jobs = {Job{0, 4, 1}, Job{1, 3, 2}};
  LaminarForest f = LaminarForest::build(inst);
  f.canonicalize();
  ASSERT_LT(f.num_nodes(), kCeilingSweepSerialCutoff);
  const std::vector<int> lower = ceiling_lower_bounds(f);
  ASSERT_EQ(static_cast<int>(lower.size()), f.num_nodes());
  for (int i = 0; i < f.num_nodes(); ++i) {
    EXPECT_EQ(lower[i], opt_lower_bound(f, i));
  }
}

}  // namespace
}  // namespace nat::at
