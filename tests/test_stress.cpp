// Heavy randomized end-to-end fuzzing across families, plus structural
// idempotence properties that only show up under volume.
#include <gtest/gtest.h>

#include "activetime/certificates.hpp"
#include "activetime/feasibility.hpp"
#include "activetime/solver.hpp"
#include "baselines/exact.hpp"
#include "baselines/greedy.hpp"
#include "helpers.hpp"
#include "util/thread_pool.hpp"

namespace nat::at {
namespace {

TEST(Stress, CanonicalizeIsIdempotent) {
  for (int id = 0; id < 30; ++id) {
    const Instance inst = testing::mixed(id);
    LaminarForest once = LaminarForest::build(inst);
    once.canonicalize();
    const int nodes_once = once.num_nodes();
    once.canonicalize();
    once.check_invariants();
    EXPECT_EQ(once.num_nodes(), nodes_once)
        << "second canonicalize changed the tree";
    EXPECT_TRUE(once.is_canonical());
  }
}

TEST(Stress, SolverWithAndWithoutAggregationAgree) {
  // End-to-end: the class-aggregated LP and the per-job LP must lead
  // to equally priced solutions (same LP value; active counts may
  // differ by rounding tie-breaks but both stay certified).
  for (int id = 0; id < 25; ++id) {
    const Instance inst = testing::mixed(id);
    NestedSolverOptions agg, flat;
    flat.lp.aggregate_classes = false;
    NestedSolveResult a = solve_nested(inst, agg);
    NestedSolveResult b = solve_nested(inst, flat);
    validate_schedule(inst, a.schedule);
    validate_schedule(inst, b.schedule);
    EXPECT_NEAR(a.lp_value, b.lp_value, 1e-5) << "instance " << id;
    EXPECT_LE(static_cast<double>(b.active_slots), 1.8 * b.lp_value + 1e-5);
  }
}

TEST(Stress, LargeMixedFuzz) {
  // 200 instances end-to-end in parallel; every pipeline guarantee
  // checked, exact OPT where affordable.
  std::atomic<int> failures{0};
  util::parallel_for(0, 200, [&](std::size_t id) {
    const Instance inst = testing::mixed(static_cast<int>(id));
    NestedSolveResult r = solve_nested(inst);
    std::string why;
    if (!is_valid_schedule(inst, r.schedule, &why)) {
      ++failures;
      ADD_FAILURE() << "instance " << id << ": " << why;
      return;
    }
    if (r.repairs != 0 ||
        static_cast<double>(r.active_slots) > 1.8 * r.lp_value + 1e-4) {
      ++failures;
      ADD_FAILURE() << "instance " << id << ": certificate broken";
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(Stress, GreedyAllOrdersLargeFuzz) {
  util::parallel_for(0, 60, [&](std::size_t id) {
    const Instance inst = testing::mixed(static_cast<int>(id));
    for (auto order : {baselines::DeactivationOrder::kSparsestFirst,
                       baselines::DeactivationOrder::kDensestFirst}) {
      auto r = baselines::greedy_minimal_feasible(inst, order, id);
      if (!baselines::is_minimal_feasible(inst, r.open_slots)) {
        ADD_FAILURE() << "order " << baselines::to_string(order)
                      << " not minimal on instance " << id;
      }
    }
  });
}

TEST(Stress, BoundedBackendMatchesDenseOnRealLps) {
  // The strengthened LPs of real instances are the workload the
  // bounded-variable backend exists for; the two backends must agree
  // on the optimum, and the end-to-end result must keep every
  // guarantee.
  for (int id = 0; id < 30; ++id) {
    const Instance inst = testing::mixed(id);
    NestedSolveResult dense = solve_nested(inst);
    NestedSolverOptions options;
    options.bounded_lp_backend = true;
    NestedSolveResult bounded = solve_nested(inst, options);
    validate_schedule(inst, bounded.schedule);
    EXPECT_NEAR(dense.lp_value, bounded.lp_value, 1e-5) << "instance " << id;
    EXPECT_EQ(bounded.repairs, 0);
    EXPECT_LE(static_cast<double>(bounded.active_slots),
              1.8 * bounded.lp_value + 1e-5);
  }
}

TEST(Stress, CertificateAgreesWithFlowOnDenseSweeps) {
  util::Rng rng(31);
  int checked = 0;
  for (int id = 0; id < 80 && checked < 30; ++id) {
    const Instance inst = testing::mixed(id);
    if (inst.num_jobs() > 12) continue;
    ++checked;
    LaminarForest f = LaminarForest::build(inst);
    f.canonicalize();
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<Time> counts(f.num_nodes());
      for (int i = 0; i < f.num_nodes(); ++i) {
        counts[i] = rng.uniform_int(0, f.node(i).length());
      }
      EXPECT_EQ(feasible_with_counts(f, counts),
                !find_violating_subset(f, counts).has_value());
    }
  }
  EXPECT_GE(checked, 20);
}

}  // namespace
}  // namespace nat::at
