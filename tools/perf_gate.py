#!/usr/bin/env python3
"""CI perf gate: compare fresh BENCH_*.json documents against the
checked-in baselines in bench/baselines/ and fail on regression.

Usage:
    python3 tools/perf_gate.py --current-dir build/bench-out
    python3 tools/perf_gate.py --current-dir build/bench-out --update
    python3 tools/perf_gate.py --current-dir build/bench-out \
        --inject-slowdown 2.0   # self-test: must exit non-zero

Comparison rules (docs/PERFORMANCE.md, "The perf gate"):

  * Structural integers (models, instances, rows, cols, nodes, reps,
    queries) must match the baseline EXACTLY — they are fully
    deterministic, so any drift means the workload changed and the
    baseline must be re-recorded deliberately.
  * Algorithmic counts (pivots, iterations, bound flips,
    refactorizations) get a small relative tolerance
    (PIVOT_TOL) — they are deterministic on one binary but may shift
    slightly across compilers through floating-point tie-breaks.
  * Wall-clock seconds (*_seconds keys) get SECONDS_TOL relative
    headroom, and are only compared when the baseline and the current
    document were recorded at the same hardware concurrency (the cpu
    stamp written by bench::write_bench_json). Seconds from different
    machines are not comparable; counts still are.
  * Speedup floors: the sparse-vs-dense speedup of the deep-forest LP
    cell must stay >= 1.0 (that cell is why the sparse backend exists),
    and the ceiling-sweep worker speedups must stay >= SWEEP_FLOOR —
    the latter only on machines with >1 hardware thread, since the
    sweep intentionally falls back to serial on single-core hosts.
    The incremental-vs-scratch geometric-mean speedup of
    BENCH_delta.json must stay >= DELTA_FLOOR on any hardware (it is
    a ratio of two measurements on the same machine).

Bumping a baseline intentionally (new workload, new hardware, accepted
slowdown): re-run the benches and either pass --update here or copy the
fresh BENCH_*.json over bench/baselines/ by hand, then commit the diff
with a justification. If the recording machine's core count changed,
the benches themselves refuse to overwrite unless
NAT_BENCH_ALLOW_CONCURRENCY_MISMATCH=1 is set (bench/common.hpp).
"""

import argparse
import json
import os
import shutil
import sys

SECONDS_TOL = 1.25      # current may be up to 25% slower than baseline
SECONDS_ABS_SLACK = 0.02  # absolute slack: sub-slack cells are timer noise
PIVOT_TOL = 0.10        # +-10% on pivot/iteration-style counts
SWEEP_FLOOR = 0.90      # ceiling-sweep speedup floor (multi-core only)

EXACT_KEYS = {"models", "instances", "rows", "cols", "nodes", "reps",
              "queries", "jobs", "groups", "steps"}
COUNT_KEYS = {"sparse_pivots", "sparse_bound_flips",
              "sparse_refactorizations", "dense_iterations",
              "groups_resolved", "groups_reused", "lp_warm_hits",
              "lp_warm_repairs", "lp_cold_fallbacks"}

# (file, cell-array key, cell name, speedup key, floor, needs_multicore)
SPEEDUP_FLOORS = [
    ("BENCH_lp.json", "lp_cells", "strong LP, deep forests",
     "speedup_vs_dense", 1.0, False),
    ("BENCH_oracle.json", "ceiling_cells", None,
     "speedup_workers2", SWEEP_FLOOR, True),
    ("BENCH_oracle.json", "ceiling_cells", None,
     "speedup_workers4", SWEEP_FLOOR, True),
]

CELL_ARRAY_KEYS = ("lp_cells", "oracle_cells", "ceiling_cells",
                   "delta_cells", "general_cells", "robust_cells")

# Top-level (document-wide) ratio floors: (file, key, floor). The
# incremental session engine must beat from-scratch re-solves by at
# least DELTA_FLOOR in geometric mean or it has lost its reason to
# exist (docs/INCREMENTAL.md).
DELTA_FLOOR = 2.0
# The daemon's FIFO baseline must starve the interactive tenant by at
# least FAIRNESS_BOUND: it proves the flood workload is hostile enough
# that the fair-queue ceiling below is a non-trivial claim.
FAIRNESS_BOUND = 5.0
DOC_FLOORS = [
    ("BENCH_delta.json", "geomean_speedup", DELTA_FLOOR),
    ("BENCH_daemon.json", "fifo_p99_ratio", FAIRNESS_BOUND),
]

# Top-level ratio ceilings: (file, key, ceiling). Under the same flood
# that wrecks FIFO, min-vruntime dispatch must keep the interactive
# tenant's p99 within FAIRNESS_BOUND of its unloaded p99
# (docs/DAEMON.md).
# The general backend's worst observed ALG/LP must honor the 2-approx
# guarantee (docs/GENERAL.md) — this is a correctness ceiling, checked
# on any hardware.
GENERAL_APPROX_BOUND = 2.0
# The robust pipeline runs a worst-case feasibility flow, a lo-corner
# LP, and a hi-corner solve on top of the nominal solve, so its wall
# clock sits near 3x the point solver's (docs/ROBUST.md). A ratio above
# ROBUST_OVERHEAD_BOUND means an accidental extra solve or a lost warm
# path; the ratio is hardware-relative, so it is checked on any host.
ROBUST_OVERHEAD_BOUND = 4.5
DOC_CEILINGS = [
    ("BENCH_daemon.json", "interactive_p99_ratio", FAIRNESS_BOUND),
    ("BENCH_general.json", "max_ratio_vs_lp", GENERAL_APPROX_BOUND),
    ("BENCH_robust.json", "overhead_ratio", ROBUST_OVERHEAD_BOUND),
]


def recorded_concurrency(doc):
    """Mirror of bench::recorded_concurrency (bench/common.hpp)."""
    cpu = doc.get("cpu")
    if isinstance(cpu, dict) and "hardware_concurrency" in cpu:
        return int(cpu["hardware_concurrency"])
    if "hardware_concurrency" in doc:
        return int(doc["hardware_concurrency"])
    return -1


class Gate:
    def __init__(self):
        self.failures = []
        self.notes = []

    def fail(self, msg):
        self.failures.append(msg)

    def note(self, msg):
        self.notes.append(msg)

    def compare_cell(self, where, base, cur, seconds_comparable, slowdown):
        for key, bval in base.items():
            if key == "name":
                continue
            cval = cur.get(key)
            if cval is None:
                self.fail(f"{where}: key '{key}' missing from current run")
                continue
            if key in EXACT_KEYS:
                if int(cval) != int(bval):
                    self.fail(f"{where}/{key}: expected exactly {bval}, "
                              f"got {cval} (workload changed? re-baseline "
                              f"deliberately)")
            elif key in COUNT_KEYS:
                lo = bval * (1 - PIVOT_TOL) - 1
                hi = bval * (1 + PIVOT_TOL) + 1
                if not (lo <= cval <= hi):
                    self.fail(f"{where}/{key}: {cval} outside "
                              f"{PIVOT_TOL:.0%} of baseline {bval}")
            elif key.endswith("_seconds"):
                if not seconds_comparable:
                    continue
                cval = cval * slowdown
                if bval > 0 and cval > bval * SECONDS_TOL + SECONDS_ABS_SLACK:
                    self.fail(f"{where}/{key}: {cval:.4f}s vs baseline "
                              f"{bval:.4f}s (> {SECONDS_TOL}x + "
                              f"{SECONDS_ABS_SLACK}s)")
            # Ratios (speedup_*, warm_hit_rate) are gated by the explicit
            # floors below, not per-key.

    def compare_doc(self, fname, base, cur, slowdown):
        where = fname
        if base.get("schema") != cur.get("schema"):
            self.fail(f"{where}: schema changed "
                      f"({base.get('schema')} -> {cur.get('schema')}); "
                      f"re-baseline deliberately")
            return
        if bool(base.get("smoke")) != bool(cur.get("smoke")):
            self.fail(f"{where}: smoke flag mismatch (baseline "
                      f"{base.get('smoke')}, current {cur.get('smoke')}) — "
                      f"different workloads are not comparable")
            return

        base_hc = recorded_concurrency(base)
        cur_hc = recorded_concurrency(cur)
        seconds_comparable = base_hc > 0 and base_hc == cur_hc
        if not seconds_comparable:
            self.note(f"{where}: seconds skipped (baseline recorded at "
                      f"hardware_concurrency={base_hc}, current={cur_hc})")

        for arr_key in CELL_ARRAY_KEYS:
            if arr_key not in base:
                continue
            if arr_key not in cur:
                self.fail(f"{where}: cell array '{arr_key}' missing")
                continue
            cur_by_name = {c.get("name"): c for c in cur[arr_key]}
            for bcell in base[arr_key]:
                name = bcell.get("name")
                ccell = cur_by_name.get(name)
                if ccell is None:
                    self.fail(f"{where}/{arr_key}: cell '{name}' missing "
                              f"from current run")
                    continue
                self.compare_cell(f"{where}/{arr_key}/{name}", bcell, ccell,
                                  seconds_comparable, slowdown)

        for (f, arr_key, cell_name, key, floor, multicore) in SPEEDUP_FLOORS:
            if f != fname or arr_key not in cur:
                continue
            if multicore and cur_hc < 2:
                self.note(f"{where}: {key} floor skipped "
                          f"(single-core host, sweep is serial)")
                continue
            for ccell in cur[arr_key]:
                if cell_name is not None and ccell.get("name") != cell_name:
                    continue
                val = ccell.get(key)
                if val is None:
                    continue
                # A slowdown injected into the parallel side drags the
                # speedup down too, so the self-test trips these floors
                # on any hardware.
                val = val / slowdown
                if val < floor:
                    self.fail(f"{where}/{arr_key}/{ccell.get('name')}/{key}: "
                              f"{val:.2f} below floor {floor:.2f}")

        for (f, key, floor) in DOC_FLOORS:
            if f != fname:
                continue
            val = cur.get(key)
            if val is None:
                self.fail(f"{where}: document key '{key}' missing")
                continue
            # The injected slowdown hits the fast (incremental) side of
            # the ratio, so the self-test trips this floor too.
            val = val / slowdown
            if val < floor:
                self.fail(f"{where}/{key}: {val:.2f} below floor "
                          f"{floor:.2f}")

        for (f, key, ceiling) in DOC_CEILINGS:
            if f != fname:
                continue
            val = cur.get(key)
            if val is None:
                self.fail(f"{where}: document key '{key}' missing")
                continue
            # The injected slowdown inflates the loaded p99 numerator,
            # so the self-test trips this ceiling too.
            val = val * slowdown
            if val > ceiling:
                self.fail(f"{where}/{key}: {val:.2f} above ceiling "
                          f"{ceiling:.2f}")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--current-dir", default=".",
                    help="directory holding the freshly produced BENCH_*.json")
    ap.add_argument("--update", action="store_true",
                    help="copy current documents over the baselines instead "
                         "of comparing (intentional re-baseline)")
    ap.add_argument("--inject-slowdown", type=float, default=1.0,
                    metavar="FACTOR",
                    help="multiply current seconds by FACTOR (gate self-test;"
                         " the CI job asserts the gate fails at 2.0)")
    ap.add_argument("--self-test-floors", action="store_true",
                    help="verify the multicore sweep floors engage: feed the "
                         "gate a synthetic BENCH_oracle.json stamped with 4 "
                         "cores and a sub-floor sweep speedup, and exit 0 "
                         "only if it trips. Works on any host — single-core "
                         "runners skip the real floors, so without this "
                         "check a regression there would go unnoticed until "
                         "someone happens to run on multicore hardware.")
    args = ap.parse_args()

    if args.self_test_floors:
        doc = {
            "schema": "self-test",
            "smoke": True,
            "cpu": {"hardware_concurrency": 4, "pool_workers": 4},
            "ceiling_cells": [
                {"name": "synthetic", "speedup_workers2": SWEEP_FLOOR - 0.2,
                 "speedup_workers4": SWEEP_FLOOR - 0.2},
            ],
        }
        gate = Gate()
        gate.compare_doc("BENCH_oracle.json", doc, doc, 1.0)
        tripped = {msg.split(": ")[0] for msg in gate.failures}
        expected = {f"BENCH_oracle.json/ceiling_cells/synthetic/{key}"
                    for key in ("speedup_workers2", "speedup_workers4")}
        if tripped != expected:
            print("perf gate: floor self-test FAILED — the sweep floors "
                  f"did not engage on a 4-core document (got {tripped})",
                  file=sys.stderr)
            return 1
        print("perf gate: floor self-test OK (2- and 4-worker sweep floors "
              "engage on multicore documents)")
        return 0

    baselines = sorted(f for f in os.listdir(args.baseline_dir)
                       if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print(f"perf gate: no baselines in {args.baseline_dir}",
              file=sys.stderr)
        return 2

    if args.update:
        for fname in baselines:
            src = os.path.join(args.current_dir, fname)
            dst = os.path.join(args.baseline_dir, fname)
            if not os.path.exists(src):
                print(f"perf gate: --update: {src} not found",
                      file=sys.stderr)
                return 2
            shutil.copyfile(src, dst)
            print(f"perf gate: baseline updated: {dst}")
        return 0

    gate = Gate()
    for fname in baselines:
        cur_path = os.path.join(args.current_dir, fname)
        if not os.path.exists(cur_path):
            gate.fail(f"{fname}: current run produced no such document "
                      f"(looked in {args.current_dir})")
            continue
        with open(os.path.join(args.baseline_dir, fname)) as f:
            base = json.load(f)
        with open(cur_path) as f:
            cur = json.load(f)
        gate.compare_doc(fname, base, cur, args.inject_slowdown)

    for note in gate.notes:
        print(f"perf gate: note: {note}")
    if gate.failures:
        print(f"\nperf gate: FAILED ({len(gate.failures)} regression(s)):",
              file=sys.stderr)
        for msg in gate.failures:
            print(f"  - {msg}", file=sys.stderr)
        print("\nIf this regression is intentional, re-baseline: run the "
              "benches and commit the refreshed bench/baselines/*.json "
              "(tools/perf_gate.py --update; see docs/PERFORMANCE.md, "
              "'Bumping a baseline').", file=sys.stderr)
        return 1
    print(f"perf gate: OK ({len(baselines)} document(s) within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
