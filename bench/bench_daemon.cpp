// bench_daemon — tail-latency fairness of the multi-tenant daemon.
//
// A flooder tenant submits a burst of solve requests immediately
// before EVERY request of an interactive tenant, which runs
// closed-loop (one outstanding at a time, waiting for its record).
// The burst-per-request shape matters: with a single preloaded flood
// only the first interactive request would ever queue behind it, and a
// p99 over the run would not see the starvation at all. Every request
// carries the SAME payload, so solve time is a constant and the
// measured spread is pure scheduling. Three phases, one daemon each:
//
//   unloaded   interactive tenant alone — the latency floor
//   fair       bursts + interactive under min-vruntime dispatch
//   fifo       bursts + interactive under arrival-order dispatch
//
// Headline doc keys (gated by tools/perf_gate.py):
//
//   interactive_p99_ratio = fair p99 / unloaded p99. The fair queue
//     bounds an interactive request's wait to roughly one in-flight
//     flood solve, so this must stay <= 5.0.
//   fifo_p99_ratio = fifo p99 / unloaded p99. FIFO parks each
//     interactive request behind its whole preceding burst (~17x the
//     floor at burst 16), so this must stay >= 5.0 — if it does not,
//     the flood is too small to demonstrate starvation and the bench
//     is meaningless.
//
//   $ ./bench/bench_daemon [--full] [--threads N] [--out file]
#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "daemon/daemon.hpp"
#include "io/table.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

using namespace nat;

namespace {

/// Completion bus: resolves record waits by daemon request index.
class RecordBus {
 public:
  nat::daemon::RecordSink sink() {
    return [this](const std::string& record) {
      obs::Json j = obs::Json::parse(record);
      const obs::Json* idx = j.find("index");
      NAT_CHECK_MSG(idx != nullptr && idx->is_number(),
                    "daemon record without an index: " << record);
      std::lock_guard<std::mutex> lk(mu_);
      by_index_.emplace(idx->as_int(), std::move(j));
      cv_.notify_all();
    };
  }

  obs::Json wait(std::int64_t index) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return by_index_.count(index) != 0; });
    return by_index_.at(index);
  }

  /// wall_ms (queue + solve) of one completed request.
  double wall_ms(std::int64_t index) {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = by_index_.find(index);
    NAT_CHECK_MSG(it != by_index_.end(), "no record for index " << index);
    const obs::Json* status = it->second.find("status");
    NAT_CHECK_MSG(status != nullptr && status->as_string() == "solved",
                  "request " << index << " did not solve: "
                             << it->second.dump());
    return it->second.find("wall_ms")->as_double();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::int64_t, obs::Json> by_index_;
};

std::string payload_json(const at::Instance& inst) {
  std::string s = "\"g\":" + std::to_string(inst.g) + ",\"jobs\":[";
  for (std::size_t i = 0; i < inst.jobs.size(); ++i) {
    const at::Job& job = inst.jobs[i];
    if (i != 0) s += ",";
    s += "[" + std::to_string(job.release) + "," +
         std::to_string(job.deadline) + "," + std::to_string(job.processing) +
         "]";
  }
  return s + "]";
}

std::string solve_line(const std::string& tenant, const std::string& payload) {
  return "{\"op\":\"solve\",\"tenant\":\"" + tenant + "\"," + payload + "}";
}

double percentile(std::vector<double> v, double p) {
  NAT_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  std::size_t idx = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(v.size())));
  if (idx > 0) --idx;
  return v[std::min(idx, v.size() - 1)];
}

struct PhaseResult {
  std::vector<double> interactive_ms;  // wall_ms per interactive request
  double wall_seconds = 0.0;           // whole phase, incl. flood drain
  std::int64_t completed = 0;          // flood + interactive
};

/// Submits `burst` flooder requests immediately before each of the
/// `inter_n` closed-loop interactive requests, then drains the rest.
PhaseResult run_phase(bool fifo, int burst, int inter_n,
                      const std::string& payload, std::size_t threads) {
  RecordBus bus;
  nat::daemon::DaemonOptions options;
  options.threads = threads;
  options.fifo = fifo;
  options.tenant_defaults.max_queue_depth =
      static_cast<std::size_t>(burst) * inter_n + inter_n + 8;
  options.sink = bus.sink();
  nat::daemon::Daemon daemon(options);

  PhaseResult result;
  const util::Stopwatch wall;
  std::int64_t next_index = 0;
  for (int i = 0; i < inter_n; ++i) {
    for (int b = 0; b < burst; ++b) {
      NAT_CHECK(daemon.submit_line(solve_line("flood", payload)));
      ++next_index;
    }
    const std::int64_t index = next_index++;
    NAT_CHECK(daemon.submit_line(solve_line("ui", payload)));
    bus.wait(index);
    result.interactive_ms.push_back(bus.wall_ms(index));
  }
  daemon.drain();
  result.wall_seconds = wall.seconds();
  const std::int64_t expected =
      static_cast<std::int64_t>(burst + 1) * inter_n;
  const nat::daemon::DaemonStats stats = daemon.stats();
  NAT_CHECK_MSG(stats.solved == expected,
                "phase lost requests: " << stats.solved << " of " << expected
                                        << " solved");
  result.completed = stats.solved;
  return result;
}

obs::Json phase_json(const PhaseResult& r) {
  obs::Json j = obs::Json::object();
  j["p50_ms"] = percentile(r.interactive_ms, 50.0);
  j["p99_ms"] = percentile(r.interactive_ms, 99.0);
  j["wall_seconds"] = r.wall_seconds;
  j["throughput_rps"] =
      static_cast<double>(r.completed) / std::max(r.wall_seconds, 1e-9);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  std::size_t threads = 1;  // pinned: dispatch order is the experiment
  std::string out_path = "BENCH_daemon.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      full = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_daemon [--full] [--threads N] [--out file]\n";
      return 2;
    }
  }
  const int burst = 16;
  // Enough interactive samples that p99 survives one stray OS hiccup
  // (nearest-rank p99 of 120+ samples is not the max).
  const int inter_n = full ? 240 : 120;

  // One fixed contended instance for every request: constant solve
  // cost, so latency spread is scheduling, not workload. The largest
  // generator output (~0.4ms/solve) keeps per-request scheduler jitter
  // small relative to a solve.
  const at::Instance instance = bench::contended_instance(33, 10);
  const std::string payload = payload_json(instance);
  std::cout << "# bench_daemon — tenant fairness under flood\n\n"
            << "payload: " << instance.num_jobs() << " jobs, g=" << instance.g
            << "; burst=" << burst << ", interactive=" << inter_n
            << ", threads=" << threads << (full ? "" : " (smoke)") << "\n\n";

  const PhaseResult unloaded =
      run_phase(/*fifo=*/false, /*burst=*/0, inter_n, payload, threads);
  const PhaseResult fair =
      run_phase(/*fifo=*/false, burst, inter_n, payload, threads);
  const PhaseResult fifo =
      run_phase(/*fifo=*/true, burst, inter_n, payload, threads);

  const double unloaded_p99 = percentile(unloaded.interactive_ms, 99.0);
  const double fair_ratio =
      percentile(fair.interactive_ms, 99.0) / unloaded_p99;
  const double fifo_ratio =
      percentile(fifo.interactive_ms, 99.0) / unloaded_p99;

  io::Table table({"phase", "inter p50 ms", "inter p99 ms", "phase s",
                   "req/s"});
  const auto row = [&](const char* name, const PhaseResult& r) {
    table.add_row(
        {name, io::Table::num(percentile(r.interactive_ms, 50.0)),
         io::Table::num(percentile(r.interactive_ms, 99.0)),
         io::Table::num(r.wall_seconds),
         io::Table::num(static_cast<double>(r.completed) /
                            std::max(r.wall_seconds, 1e-9),
                        1)});
  };
  row("unloaded", unloaded);
  row("fair", fair);
  row("fifo", fifo);
  table.print_markdown(std::cout);
  std::cout << "\ninteractive_p99_ratio (fair/unloaded): "
            << io::Table::num(fair_ratio, 2) << "  (gate: <= 5)\n"
            << "fifo_p99_ratio (fifo/unloaded):        "
            << io::Table::num(fifo_ratio, 2) << "  (gate: >= 5)\n";

  obs::Json doc = obs::Json::object();
  doc["schema"] = "nat-bench-daemon-v1";
  doc["smoke"] = !full;
  doc["daemon_threads"] = static_cast<std::int64_t>(threads);
  doc["flood_burst"] = static_cast<std::int64_t>(burst);
  doc["interactive_requests"] = static_cast<std::int64_t>(inter_n);
  doc["payload_jobs"] = static_cast<std::int64_t>(instance.num_jobs());
  doc["unloaded"] = phase_json(unloaded);
  doc["fair"] = phase_json(fair);
  doc["fifo"] = phase_json(fifo);
  doc["interactive_p99_ratio"] = fair_ratio;
  doc["fifo_p99_ratio"] = fifo_ratio;
  bench::write_bench_json(doc, out_path);
  return 0;
}
