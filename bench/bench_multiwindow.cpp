// EXT — the multi-interval generalization from the paper's related
// work (Section 1): unit jobs with window *collections*, NP-hard for
// g >= 3 [2], H_g-approximable via Wolsey's submodular cover [12].
//
// Shape to reproduce: the greedy stays within H_g = 1 + 1/2 + ... + 1/g
// of the exact optimum, with plenty of slack on random instances.
#include <iostream>
#include <mutex>

#include "activetime/multi_window.hpp"
#include "bench/common.hpp"
#include "io/table.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace nat;

namespace {

at::MultiWindowInstance random_instance(int id, std::int64_t g) {
  util::Rng rng(4200 + id);
  at::MultiWindowInstance inst;
  inst.g = g;
  const int n = static_cast<int>(rng.uniform_int(2, 7));
  for (int j = 0; j < n; ++j) {
    at::MultiWindowJob job;
    const int w = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < w; ++i) {
      const at::Time lo = rng.uniform_int(0, 10);
      job.windows.push_back(at::Interval{lo, lo + rng.uniform_int(1, 3)});
    }
    inst.jobs.push_back(std::move(job));
  }
  return inst;
}

}  // namespace

int main() {
  std::cout << "# EXT — multi-interval unit jobs: Wolsey greedy vs "
               "exact (paper bound H_g)\n\n";
  io::Table table({"g", "H_g bound", "instances", "avg greedy/OPT",
                   "max greedy/OPT", "bound holds"});
  for (std::int64_t g = 1; g <= 4; ++g) {
    bench::RatioStats stats;
    std::mutex mu;
    util::parallel_for(0, 120, [&](std::size_t id) {
      const at::MultiWindowInstance inst =
          random_instance(static_cast<int>(id), g);
      if (at::max_coverage(inst, inst.candidate_slots()) <
          inst.num_jobs()) {
        return;  // infeasible draw
      }
      const auto opt = at::exact_multi_window(inst);
      if (!opt.has_value() || *opt == 0) return;
      const at::HgResult r = at::solve_multi_window_hg(inst);
      std::lock_guard lk(mu);
      stats.add(static_cast<double>(r.active_slots) /
                static_cast<double>(*opt));
    });
    table.add_row(
        {io::Table::num(g), io::Table::num(at::harmonic(g)),
         io::Table::num(static_cast<std::int64_t>(stats.count)),
         io::Table::num(stats.avg()), io::Table::num(stats.max),
         stats.max <= at::harmonic(g) + 1e-9 ? "yes" : "NO"});
  }
  table.print_markdown(std::cout);
  std::cout << "\nEvery row respects Wolsey's H_g guarantee.\n";
  return 0;
}
