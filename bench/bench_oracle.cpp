// bench_oracle — the incremental feasibility oracle vs fresh
// per-query solves, and the serial vs parallel ceiling sweep.
//
// Two measurements, both recorded to BENCH_oracle.json (--out) so the
// perf trajectory accumulates across PRs (docs/PERFORMANCE.md):
//
//  * oracle replay: the solver's real query traffic — feasibility
//    precheck, trim to minimality, then a repair walk with probe
//    scans — replayed once per instance against (a) fresh
//    feasible_with_counts solves and (b) one warm-started
//    FeasibilityOracle. Final count vectors are asserted identical.
//  * ceiling sweep: the per-node OPT_i lower bounds feeding the strong
//    LP's constraints (7)/(8), computed serially and across thread
//    pools of increasing size; results are asserted identical per
//    worker count.
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "activetime/feasibility.hpp"
#include "activetime/opt_bounds.hpp"
#include "activetime/oracle.hpp"
#include "activetime/tree.hpp"
#include "bench/common.hpp"
#include "io/table.hpp"
#include "obs/report.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

using namespace nat;
using at::LaminarForest;
using at::Time;

namespace {

/// The three oracle operations the replay needs, so the same driver
/// runs against fresh solves and the incremental oracle.
struct Engine {
  std::function<bool(const std::vector<Time>&)> feasible;
  // Probe "+1 on region i" against `counts` (may briefly mutate it).
  std::function<bool(std::vector<Time>&, int)> probe;
  // Min-cut filter; the fresh engine has no certificate and probes all.
  std::function<bool(int)> can_help;
};

Engine fresh_engine(const LaminarForest& forest) {
  Engine e;
  e.feasible = [&forest](const std::vector<Time>& c) {
    return at::feasible_with_counts(forest, c);
  };
  e.probe = [&forest](std::vector<Time>& c, int i) {
    ++c[i];
    const bool ok = at::feasible_with_counts(forest, c);
    --c[i];
    return ok;
  };
  e.can_help = [](int) { return true; };
  return e;
}

Engine incremental_engine(at::FeasibilityOracle& oracle) {
  Engine e;
  e.feasible = [&oracle](const std::vector<Time>& c) {
    return oracle.feasible(c);
  };
  e.probe = [&oracle](std::vector<Time>&, int i) {
    return oracle.feasible_if_incremented(i);
  };
  e.can_help = [&oracle](int i) { return oracle.increment_can_help(i); };
  return e;
}

/// Replays the solver's oracle traffic on one forest: precheck at
/// all-open, trim to minimality, close every other open region, repair
/// back with probe scans. Returns the query count; writes the final
/// vector for cross-engine equality checks.
std::int64_t replay(const LaminarForest& forest, const Engine& eng,
                    std::vector<Time>* final_counts) {
  const int m = forest.num_nodes();
  std::int64_t queries = 0;
  auto feasible = [&](const std::vector<Time>& c) {
    ++queries;
    return eng.feasible(c);
  };

  std::vector<Time> counts(m);
  for (int i = 0; i < m; ++i) counts[i] = forest.node(i).length();
  NAT_CHECK_MSG(feasible(counts), "generator produced infeasible instance");
  for (int i = 0; i < m; ++i) {
    while (counts[i] > 0) {
      --counts[i];
      if (feasible(counts)) continue;
      ++counts[i];
      break;
    }
  }

  int closed = 0;
  for (int i = 0; i < m && closed < 8; i += 2) {
    if (counts[i] > 0) {
      --counts[i];
      ++closed;
    }
  }
  while (!feasible(counts)) {
    int chosen = -1;
    for (int i = 0; i < m; ++i) {
      if (counts[i] >= forest.node(i).length()) continue;
      if (chosen < 0) chosen = i;
      if (!eng.can_help(i)) continue;
      ++queries;
      if (eng.probe(counts, i)) {
        chosen = i;
        break;
      }
    }
    NAT_CHECK(chosen >= 0);
    ++counts[chosen];
  }
  *final_counts = counts;
  return queries;
}

at::Instance large_instance(int id, std::int64_t g) {
  at::gen::RandomLaminarParams params;
  params.g = g;
  params.max_depth = 5;
  params.max_children = 3;
  params.max_jobs_per_node = 4;
  params.max_processing = 6;
  util::Rng rng(700 + id);
  return at::gen::random_laminar(params, rng);
}

struct OracleCell {
  std::string name;
  at::Instance (*make)(int, std::int64_t);
  std::int64_t g;
  int instances;
};

/// Dense laminar forest (high child probability): hundreds of regions,
/// so the per-node ceiling sweep has enough independent tasks for the
/// pool to matter. Seeds that roll a degenerate single-window tree are
/// skipped by probing until a forest with >= 64 nodes appears.
at::Instance dense_instance(int id, std::int64_t g) {
  at::gen::RandomLaminarParams params;
  params.g = g;
  params.max_depth = 6;
  params.max_children = 4;
  params.child_probability = 0.95;
  params.max_jobs_per_node = 6;
  params.max_processing = 8;
  for (int seed = 1100 + 8 * id;; ++seed) {
    util::Rng rng(seed);
    at::Instance inst = at::gen::random_laminar(params, rng);
    if (LaminarForest::build(inst).num_nodes() >= 64) return inst;
  }
}

struct CeilingCell {
  std::string name;
  at::Instance (*make)(int, std::int64_t);
  std::int64_t g;
  int instances;
  int reps;  // sweep repetitions per measurement (tasks are microseconds)
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_oracle.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") smoke = true;
    if (arg == "--out" && a + 1 < argc) out_path = argv[++a];
  }

  obs::Json doc = obs::Json::object();
  // v2: cpu stamp replaces the top-level hardware_concurrency field
  // (kept by write_bench_json under "cpu"), and the ceiling cells
  // measure at::ceiling_lower_bounds — the production sweep — instead
  // of an ad-hoc fixed-grain parallel_for.
  doc["schema"] = "nat-bench-oracle-v2";
  doc["smoke"] = smoke;

  // --- oracle replay: fresh vs incremental --------------------------------
  const std::vector<OracleCell> cells = {
      {"loose laminar (g=3)", bench::loose_instance, 3, 40},
      {"contended (g=6)", bench::contended_instance, 6, 40},
      {"large laminar (g=8)", large_instance, 8, 12},
  };

  std::cout << "# bench_oracle — incremental feasibility oracle\n\n"
            << "Replay of the solver's precheck/trim/repair query traffic"
               " per instance;\nfresh = rebuild + solve per query,"
               " incremental = one warm-started oracle.\n\n";
  io::Table table({"cell", "instances", "queries", "fresh s", "incr s",
                   "speedup", "warm hit rate"});
  obs::Json cells_json = obs::Json::array();
  for (const OracleCell& cell : cells) {
    const int instances = smoke ? std::min(cell.instances, 3) : cell.instances;
    std::vector<LaminarForest> forests;
    for (int id = 0; id < instances; ++id) {
      LaminarForest f = LaminarForest::build(cell.make(id, cell.g));
      f.canonicalize();
      forests.push_back(std::move(f));
    }

    std::int64_t queries = 0;
    std::vector<std::vector<Time>> fresh_counts(forests.size());
    util::Stopwatch fresh_watch;
    for (std::size_t k = 0; k < forests.size(); ++k) {
      Engine eng = fresh_engine(forests[k]);
      queries += replay(forests[k], eng, &fresh_counts[k]);
    }
    const double fresh_s = fresh_watch.seconds();

    bench::begin_cell_metrics();
    obs::counter("at.oracle.queries").reset();  // scope the hit rate
    obs::counter("at.oracle.warm_queries").reset();
    util::Stopwatch incr_watch;
    for (std::size_t k = 0; k < forests.size(); ++k) {
      at::FeasibilityOracle oracle(forests[k]);
      Engine eng = incremental_engine(oracle);
      std::vector<Time> counts;
      replay(forests[k], eng, &counts);
      NAT_CHECK_MSG(counts == fresh_counts[k],
                    "engines disagree on " << cell.name << " #" << k);
    }
    const double incr_s = incr_watch.seconds();
    const std::int64_t oracle_queries =
        obs::counter("at.oracle.queries").value();
    const double hit_rate =
        oracle_queries > 0
            ? static_cast<double>(
                  obs::counter("at.oracle.warm_queries").value()) /
                  static_cast<double>(oracle_queries)
            : 0.0;
    const double speedup = incr_s > 0 ? fresh_s / incr_s : 0.0;

    table.add_row({cell.name, io::Table::num(std::int64_t{instances}),
                   io::Table::num(queries), io::Table::num(fresh_s, 4),
                   io::Table::num(incr_s, 4), io::Table::num(speedup, 2),
                   io::Table::num(hit_rate, 3)});

    obs::Json j = obs::Json::object();
    j["name"] = cell.name;
    j["instances"] = std::int64_t{instances};
    j["queries"] = queries;
    j["fresh_seconds"] = fresh_s;
    j["incremental_seconds"] = incr_s;
    j["speedup"] = speedup;
    j["warm_hit_rate"] = hit_rate;
    cells_json.push_back(std::move(j));

    obs::RunSummary summary;
    summary.solver = "oracle_replay";
    summary.jobs = instances;
    bench::emit_cell_report("bench_oracle", cell.name, summary, incr_s);
  }
  table.print_markdown(std::cout);
  doc["oracle_cells"] = std::move(cells_json);

  // --- ceiling sweep: serial vs pooled ------------------------------------
  const std::vector<CeilingCell> ceiling_cells = {
      {"contended (g=6)", bench::contended_instance, 6, 24, 50},
      {"large laminar (g=8)", large_instance, 8, 8, 50},
      {"dense laminar (g=8)", dense_instance, 8, 6, 20},
  };
  const std::vector<std::size_t> worker_counts = {2, 4};

  std::cout << "\nPer-node OPT_i ceiling sweep (constraints (7)/(8)),"
               " serial vs thread pool.\n\n";
  io::Table ceiling_table({"cell", "nodes", "serial s", "2 workers s",
                           "4 workers s", "speedup@2", "speedup@4"});
  obs::Json ceiling_json = obs::Json::array();
  for (const CeilingCell& cell : ceiling_cells) {
    const int instances = smoke ? std::min(cell.instances, 2) : cell.instances;
    const int reps = smoke ? std::min(cell.reps, 3) : cell.reps;
    std::vector<LaminarForest> forests;
    std::int64_t nodes = 0;
    for (int id = 0; id < instances; ++id) {
      LaminarForest f = LaminarForest::build(cell.make(id, cell.g));
      f.canonicalize();
      nodes += f.num_nodes();
      forests.push_back(std::move(f));
    }

    std::vector<std::vector<int>> serial_lb(forests.size());
    util::Stopwatch serial_watch;
    for (int r = 0; r < reps; ++r) {
      for (std::size_t k = 0; k < forests.size(); ++k) {
        const int m = forests[k].num_nodes();
        serial_lb[k].resize(m);
        for (int i = 0; i < m; ++i) {
          serial_lb[k][i] = at::opt_lower_bound(forests[k], i);
        }
      }
    }
    const double serial_s = serial_watch.seconds();

    std::vector<double> pooled_s;
    for (std::size_t workers : worker_counts) {
      util::ThreadPool pool(workers);
      util::Stopwatch watch;
      for (int r = 0; r < reps; ++r) {
        for (std::size_t k = 0; k < forests.size(); ++k) {
          // The production sweep (adaptive grain, chunk-local arenas,
          // serial fallback below its cutoff) — what lp_relaxation's
          // strong-LP build actually runs.
          const std::vector<int> lb =
              at::ceiling_lower_bounds(forests[k], pool);
          NAT_CHECK_MSG(lb == serial_lb[k],
                        "pooled sweep diverged at " << workers << " workers");
        }
      }
      pooled_s.push_back(watch.seconds());
    }

    ceiling_table.add_row(
        {cell.name, io::Table::num(nodes), io::Table::num(serial_s, 4),
         io::Table::num(pooled_s[0], 4), io::Table::num(pooled_s[1], 4),
         io::Table::ratio(serial_s, pooled_s[0], 2),
         io::Table::ratio(serial_s, pooled_s[1], 2)});

    obs::Json j = obs::Json::object();
    j["name"] = cell.name;
    j["instances"] = std::int64_t{instances};
    j["reps"] = std::int64_t{reps};
    j["nodes"] = nodes;
    j["serial_seconds"] = serial_s;
    j["workers2_seconds"] = pooled_s[0];
    j["workers4_seconds"] = pooled_s[1];
    j["speedup_workers2"] = pooled_s[0] > 0 ? serial_s / pooled_s[0] : 0.0;
    j["speedup_workers4"] = pooled_s[1] > 0 ? serial_s / pooled_s[1] : 0.0;
    ceiling_json.push_back(std::move(j));
  }
  ceiling_table.print_markdown(std::cout);
  doc["ceiling_cells"] = std::move(ceiling_json);

  bench::write_bench_json(doc, out_path);
  return 0;
}
