// E7 — runtime scaling of the pipeline stages (google-benchmark).
//
// The paper's algorithm is polynomial; this harness shows where the
// time goes as the instance grows: LP build, LP solve, transform +
// rounding, the flow oracle, and the end-to-end solve, plus the greedy
// baseline and (on small sizes) the exact B&B for contrast.
#include <benchmark/benchmark.h>

#include "activetime/feasibility.hpp"
#include "activetime/lp_transform.hpp"
#include "activetime/rounding.hpp"
#include "activetime/solver.hpp"
#include "activetime/time_indexed_lp.hpp"
#include "baselines/exact.hpp"
#include "baselines/greedy.hpp"
#include "instances/generators.hpp"
#include "lp/bounded_simplex.hpp"
#include "lp/dense_simplex.hpp"
#include "lp/sparse_simplex.hpp"
#include "util/rng.hpp"

using namespace nat;

namespace {

/// Deterministic laminar instance with roughly `groups * 3` jobs.
at::Instance sized_instance(int groups) {
  at::gen::ContendedParams params;
  params.g = 4;
  params.min_groups = groups;
  params.max_groups = groups;
  params.max_long_jobs = 2;
  util::Rng rng(77);
  return at::gen::random_contended(params, rng);
}

void BM_TreeBuild(benchmark::State& state) {
  const at::Instance inst = sized_instance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    at::LaminarForest f = at::LaminarForest::build(inst);
    f.canonicalize();
    benchmark::DoNotOptimize(f.num_nodes());
  }
  state.SetLabel("n=" + std::to_string(inst.num_jobs()));
}
BENCHMARK(BM_TreeBuild)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_LpBuild(benchmark::State& state) {
  const at::Instance inst = sized_instance(static_cast<int>(state.range(0)));
  at::LaminarForest f = at::LaminarForest::build(inst);
  f.canonicalize();
  for (auto _ : state) {
    at::StrongLp lp = at::build_strong_lp(f);
    benchmark::DoNotOptimize(lp.model.num_rows());
  }
  state.SetLabel("n=" + std::to_string(inst.num_jobs()));
}
BENCHMARK(BM_LpBuild)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_LpSolve(benchmark::State& state) {
  const at::Instance inst = sized_instance(static_cast<int>(state.range(0)));
  at::LaminarForest f = at::LaminarForest::build(inst);
  f.canonicalize();
  at::StrongLp lp = at::build_strong_lp(f);
  for (auto _ : state) {
    lp::Solution s = lp::solve(lp.model);
    benchmark::DoNotOptimize(s.objective);
  }
  state.SetLabel("rows=" + std::to_string(lp.model.num_rows()));
}
BENCHMARK(BM_LpSolve)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_TransformAndRound(benchmark::State& state) {
  const at::Instance inst = sized_instance(static_cast<int>(state.range(0)));
  at::LaminarForest f = at::LaminarForest::build(inst);
  f.canonicalize();
  at::StrongLp lp = at::build_strong_lp(f);
  lp::Solution s = lp::solve(lp.model);
  const at::FractionalSolution base = at::unpack(lp, s);
  for (auto _ : state) {
    at::FractionalSolution frac = base;
    at::push_down_transform(f, lp, frac);
    auto topmost = at::topmost_positive(f, frac.x);
    auto rounded = at::round_solution(f, frac.x, topmost);
    benchmark::DoNotOptimize(rounded.total);
  }
}
BENCHMARK(BM_TransformAndRound)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_FlowOracle(benchmark::State& state) {
  const at::Instance inst = sized_instance(static_cast<int>(state.range(0)));
  at::LaminarForest f = at::LaminarForest::build(inst);
  f.canonicalize();
  std::vector<at::Time> full(f.num_nodes());
  for (int i = 0; i < f.num_nodes(); ++i) full[i] = f.node(i).length();
  for (auto _ : state) {
    benchmark::DoNotOptimize(at::feasible_with_counts(f, full));
  }
}
BENCHMARK(BM_FlowOracle)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_EndToEnd(benchmark::State& state) {
  const at::Instance inst = sized_instance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    at::NestedSolveResult r = at::solve_nested(inst);
    benchmark::DoNotOptimize(r.active_slots);
  }
  state.SetLabel("n=" + std::to_string(inst.num_jobs()));
}
BENCHMARK(BM_EndToEnd)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_GreedyBaseline(benchmark::State& state) {
  const at::Instance inst = sized_instance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = at::baselines::greedy_minimal_feasible(inst);
    benchmark::DoNotOptimize(r.active_slots);
  }
}
BENCHMARK(BM_GreedyBaseline)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ExactBranchAndBound(benchmark::State& state) {
  const at::Instance inst = sized_instance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = at::baselines::exact_opt_laminar(inst);
    benchmark::DoNotOptimize(r.has_value());
  }
}
BENCHMARK(BM_ExactBranchAndBound)->Arg(4)->Arg(6)->Arg(8);

void BM_LpSolveBounded(benchmark::State& state) {
  const at::Instance inst = sized_instance(static_cast<int>(state.range(0)));
  at::LaminarForest f = at::LaminarForest::build(inst);
  f.canonicalize();
  at::StrongLp lp = at::build_strong_lp(f);
  for (auto _ : state) {
    lp::Solution s = lp::solve_bounded(lp.model);
    benchmark::DoNotOptimize(s.objective);
  }
  state.SetLabel("rows=" + std::to_string(lp.model.num_rows()));
}
BENCHMARK(BM_LpSolveBounded)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_LpSolveSparse(benchmark::State& state) {
  const at::Instance inst = sized_instance(static_cast<int>(state.range(0)));
  at::LaminarForest f = at::LaminarForest::build(inst);
  f.canonicalize();
  at::StrongLp lp = at::build_strong_lp(f);
  for (auto _ : state) {
    lp::Solution s = lp::solve_sparse(lp.model);
    benchmark::DoNotOptimize(s.objective);
  }
  state.SetLabel("rows=" + std::to_string(lp.model.num_rows()));
}
BENCHMARK(BM_LpSolveSparse)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_TimeIndexedCwLp(benchmark::State& state) {
  const at::Instance inst =
      at::gen::lemma51_gap(static_cast<std::int64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        at::cw_lp_value(inst, at::CeilingIntervals::kEventAligned));
  }
}
BENCHMARK(BM_TimeIndexedCwLp)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
