// E2 — Lemma 5.1: the integrality gap of the ceiling LPs on the nested
// gap family (one long job of length g over [0, 2g), plus g groups of g
// unit jobs with windows [2i, 2i+2)).
//
// Paper claims reproduced here:
//   * the explicit fractional solution x(t) = (g+2)/(2g) is feasible
//     for the Călinescu–Wang LP with value g + 2 (so LP <= g + 2);
//   * every integral solution opens >= 3g/2 slots (OPT = g + ceil(g/2));
//   * hence the gap is at least 3g/(2(g+2)) → 3/2. The strengthened
//     tree LP of this paper shows the same behaviour on the family.
#include <iostream>

#include "activetime/solver.hpp"
#include "activetime/time_indexed_lp.hpp"
#include "baselines/exact.hpp"
#include "instances/generators.hpp"
#include "io/table.hpp"

using namespace nat;

int main() {
  std::cout << "# E2 — Lemma 5.1 gap family\n\n"
            << "paper curve: gap >= 3g / (2(g+2)) -> 3/2\n\n";
  io::Table table({"g", "CW LP", "strong LP", "paper sol (g+2)", "OPT",
                   "gap (CW)", "gap (strong)", "paper curve"});
  for (std::int64_t g = 2; g <= 14; ++g) {
    const at::Instance inst = at::gen::lemma51_gap(g);
    const double cw =
        at::cw_lp_value(inst, at::CeilingIntervals::kEventAligned);
    const double strong = at::strong_lp_value(inst);
    const std::int64_t opt = g + (g + 1) / 2;  // proven in Lemma 5.1
    if (g <= 5) {
      // Spot-check the analytic OPT with the exact solver.
      auto exact = at::baselines::exact_opt_laminar(inst);
      if (!exact || exact->optimum != opt) {
        std::cerr << "OPT mismatch at g=" << g << "!\n";
        return 1;
      }
    }
    table.add_row(
        {io::Table::num(g), io::Table::num(cw), io::Table::num(strong),
         io::Table::num(g + 2), io::Table::num(opt),
         io::Table::ratio(static_cast<double>(opt), cw),
         io::Table::ratio(static_cast<double>(opt), strong),
         io::Table::num(3.0 * static_cast<double>(g) /
                        (2.0 * static_cast<double>(g + 2)))});
  }
  table.print_markdown(std::cout);
  std::cout << "\nBoth gap columns dominate the paper curve and climb "
               "toward 3/2; the LP optima stay at or below the paper's "
               "exhibited g+2 solution.\n";
  return 0;
}
