// E5 — ablations of the paper's two LP/rounding ingredients:
//
//   (a) ceiling constraints (7)/(8): without them the LP drops to the
//       natural bound on overload windows and the *certified* ratio
//       active/LP blows past 9/5 (on the unit-overload family it
//       approaches 2g/(g+1) * ... = 2);
//   (b) the Lemma 3.1 transform + Algorithm 1: replaced by naive
//       per-region ceil rounding, which stays feasible but wastes
//       slots on fractional mass spread across the tree.
//
// This is the executable version of the paper's "why these pieces"
// argument (Section 1: "a different LP formulation is needed").
#include <iostream>
#include <mutex>

#include "activetime/solver.hpp"
#include "baselines/exact.hpp"
#include "bench/common.hpp"
#include "io/table.hpp"
#include "util/thread_pool.hpp"

using namespace nat;

namespace {

struct Variant {
  std::string name;
  bool ceiling;
  bool naive;
  bool trim;
};

}  // namespace

int main() {
  const std::vector<Variant> variants = {
      {"paper algorithm", true, false, false},
      {"paper + trim (engineering)", true, false, true},
      {"no ceiling constraints", false, false, false},
      {"naive ceil rounding", true, true, false},
      {"neither", false, true, false},
  };

  // (a) the unit-overload family with the ceiling constraints ablated:
  // the LP drops to (g+1)/g, Algorithm 1's 9/5 budget is no longer
  // enough to reach a feasible vector once g >= 10, the repair loop has
  // to fire, and the LP-certified ratio blows past 9/5 toward 2.
  std::cout << "# E5a — ceiling-constraint ablation on unit overload\n\n";
  io::Table a({"g", "LP (with 7/8)", "LP (without)", "active (ablated)",
               "repairs", "cert. ratio with", "cert. ratio without"});
  for (std::int64_t g : {2, 4, 8, 12, 16}) {
    const at::Instance inst = at::gen::unit_overload(g);
    at::StrongLpOptions with, without;
    without.ceiling_constraints = false;
    const double lp_with = at::strong_lp_value(inst, with);
    const double lp_without = at::strong_lp_value(inst, without);
    at::NestedSolverOptions ablated;
    ablated.lp.ceiling_constraints = false;
    at::NestedSolveResult r = at::solve_nested(inst, ablated);
    a.add_row({io::Table::num(g), io::Table::num(lp_with),
               io::Table::num(lp_without), io::Table::num(r.active_slots),
               io::Table::num(static_cast<std::int64_t>(r.repairs)),
               io::Table::ratio(static_cast<double>(r.active_slots),
                                lp_with),
               io::Table::ratio(static_cast<double>(r.active_slots),
                                lp_without)});
  }
  a.print_markdown(std::cout);
  std::cout << "\nWithout (7)/(8) the LP certificate exceeds 9/5 = 1.8 "
               "and approaches 2 — the integrality-gap wall the paper "
               "breaks through — and the rounding alone stops being "
               "feasible (repair column).\n\n";

  // (b) full pipeline vs ablated variants on contended instances,
  // measured against the exact optimum.
  std::cout << "# E5b — pipeline ablation on contended instances "
               "(avg ratio vs OPT over 50 instances, g=4)\n\n";
  io::Table b({"variant", "avg vs OPT", "max vs OPT", "avg slots",
               "total repairs"});
  for (const Variant& variant : variants) {
    bench::RatioStats stats;
    double slot_sum = 0.0;
    std::int64_t repairs = 0;
    std::mutex mu;
    util::parallel_for(0, 50, [&](std::size_t id) {
      const at::Instance inst =
          bench::contended_instance(static_cast<int>(id), 4);
      auto opt = at::baselines::exact_opt_laminar(inst);
      if (!opt.has_value()) return;
      at::NestedSolverOptions options;
      options.lp.ceiling_constraints = variant.ceiling;
      options.naive_rounding = variant.naive;
      options.trim_rounded = variant.trim;
      at::NestedSolveResult r = at::solve_nested(inst, options);
      std::lock_guard lk(mu);
      stats.add(static_cast<double>(r.active_slots) /
                static_cast<double>(opt->optimum));
      slot_sum += static_cast<double>(r.active_slots);
      repairs += r.repairs;
    });
    b.add_row({variant.name, io::Table::num(stats.avg()),
               io::Table::num(stats.max),
               io::Table::num(slot_sum / stats.count),
               io::Table::num(repairs)});
  }
  b.print_markdown(std::cout);

  // The Lemma 5.1 family separates the variants most clearly.
  std::cout << "\n# E5c — variants on the Lemma 5.1 family\n\n";
  io::Table c({"g", "OPT", "paper", "paper+trim", "no ceiling",
               "naive ceil"});
  for (std::int64_t g : {4, 8, 12}) {
    const at::Instance inst = at::gen::lemma51_gap(g);
    const std::int64_t opt = g + (g + 1) / 2;
    std::vector<std::string> row{io::Table::num(g), io::Table::num(opt)};
    for (const Variant& variant :
         {variants[0], variants[1], variants[2], variants[3]}) {
      at::NestedSolverOptions options;
      options.lp.ceiling_constraints = variant.ceiling;
      options.naive_rounding = variant.naive;
      options.trim_rounded = variant.trim;
      row.push_back(
          io::Table::num(at::solve_nested(inst, options).active_slots));
    }
    c.add_row(std::move(row));
  }
  c.print_markdown(std::cout);
  std::cout << "\nThe paper pipeline keeps its 9/5 certificate "
               "everywhere; the trim pass recovers the optimum on the "
               "gap family without giving up the guarantee.\n";
  return 0;
}
