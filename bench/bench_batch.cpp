// bench_batch — throughput scaling of the fault-isolated batch layer.
//
// Builds a mixed workload of healthy cells (contended + loose laminar
// instances) laced with poisoned cells (malformed JSON, invalid
// windows, infeasible contention) and solves the same batch at
// increasing pool widths. Measured per width:
//
//  * wall time and cells/second,
//  * speedup over the 1-thread run,
//  * the record mix (solved / error / timeout), asserted identical at
//    every width — fault isolation must not depend on scheduling.
//
// The poisoned cells are the point of the bench: before the completion
// -group pool fix, one throwing cell tore down the process, so this
// workload could not finish at all. Results append to
// BENCH_batch.json (--out) like the other benches.
//
//   $ ./bench/bench_batch [--cells N] [--max-threads N] [--out file]
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "io/serialize.hpp"
#include "io/table.hpp"
#include "service/batch.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

using namespace nat;

namespace {

std::string native_text(const at::Instance& instance) {
  return io::to_string(instance);
}

/// ~1/8 of the cells are poisoned, cycling through the three failure
/// families the service must isolate.
std::vector<service::BatchItem> build_workload(int cells) {
  std::vector<service::BatchItem> items;
  items.reserve(static_cast<std::size_t>(cells));
  for (int i = 0; i < cells; ++i) {
    service::BatchItem item;
    item.id = "cell-" + std::to_string(i);
    if (i % 8 == 3) {
      switch ((i / 8) % 3) {
        case 0:  // malformed payload -> input:parse
          item.text = "{\"g\": 2, \"jobs\": [[0, 4,";
          break;
        case 1:  // deadline before release -> input:validate
          item.text = "{\"g\": 1, \"jobs\": [[5, 2, 1]]}";
          break;
        default:  // g=1, two unit jobs in a length-1 window -> infeasible
          item.text = "{\"g\": 1, \"jobs\": [[0, 1, 1], [0, 1, 1]]}";
          break;
      }
    } else {
      const at::Instance inst = (i % 2 == 0)
                                    ? bench::contended_instance(i, 3)
                                    : bench::loose_instance(i, 3);
      item.format = service::BatchItem::Format::kNative;
      item.text = native_text(inst);
    }
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace

int main(int argc, char** argv) {
  int cells = 160;
  unsigned max_threads = std::max(1u, std::thread::hardware_concurrency());
  std::string out_path = "BENCH_batch.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cells" && i + 1 < argc) {
      cells = std::atoi(argv[++i]);
    } else if (arg == "--max-threads" && i + 1 < argc) {
      max_threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  const std::vector<service::BatchItem> items = build_workload(cells);
  std::cout << "# bench_batch: " << items.size()
            << " cells (1/8 poisoned), widths 1.." << max_threads << "\n\n";

  io::Table table({"threads", "wall_ms", "cells_per_s", "speedup", "solved",
                   "errors", "timeouts"});
  obs::Json runs = obs::Json::array();
  double base_ms = 0.0;
  for (unsigned t = 1; t <= max_threads; t *= 2) {
    service::BatchOptions options;
    options.threads = t;
    const util::Stopwatch sw;
    const service::BatchReport report = service::solve_batch(items, options);
    const double ms = static_cast<double>(sw.nanos()) / 1e6;
    if (t == 1) base_ms = ms;

    // The record mix is a scheduling invariant: same batch, same
    // records, at any width.
    NAT_CHECK(report.solved + report.errors + report.timeouts ==
              static_cast<int>(items.size()));
    NAT_CHECK_MSG(report.errors == static_cast<int>(items.size()) / 8,
                  "poisoned-cell count drifted at " << t << " threads");

    table.add_row(
        {std::to_string(t), io::Table::num(ms, 1),
         io::Table::num(1e3 * static_cast<double>(items.size()) / ms, 1),
         io::Table::num(base_ms / ms, 2), std::to_string(report.solved),
         std::to_string(report.errors), std::to_string(report.timeouts)});

    obs::Json run = obs::Json::object();
    run["threads"] = static_cast<std::int64_t>(t);
    run["wall_ms"] = ms;
    run["solved"] = report.solved;
    run["errors"] = report.errors;
    runs.push_back(run);
  }
  table.print_markdown(std::cout);

  obs::Json doc = obs::Json::object();
  doc["bench"] = "batch";
  doc["cells"] = static_cast<std::int64_t>(items.size());
  doc["runs"] = runs;
  std::ofstream os(out_path);
  os << doc.dump(2) << '\n';
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
