// E1 + E8 — Theorem 4.15 end to end: the measured approximation ratio
// of the nested LP-rounding algorithm against the exact optimum and
// against its own LP lower bound, per instance family.
//
// Paper claim: active <= (9/5) * OPT, via x~([m]) <= (9/5) x([m])
// (Lemma 3.3) and feasibility of the rounding (Theorem 4.5). The
// harness asserts the hard 1.8 bound on every instance and reports the
// observed averages (typically far below the bound).
#include <algorithm>
#include <iostream>
#include <mutex>
#include <string>

#include "activetime/solver.hpp"
#include "baselines/exact.hpp"
#include "bench/common.hpp"
#include "io/table.hpp"
#include "util/thread_pool.hpp"

using namespace nat;

namespace {

struct FamilyRow {
  std::string name;
  at::Instance (*make)(int, std::int64_t);
  std::int64_t g;
  int instances;
};

}  // namespace

int main(int argc, char** argv) {
  // --smoke: a tiny CI cell — few instances per family — so the binary
  // is exercised end to end without the full sweep's runtime.
  bool smoke = false;
  for (int a = 1; a < argc; ++a) {
    if (std::string(argv[a]) == "--smoke") smoke = true;
  }

  const std::vector<FamilyRow> families = {
      {"loose laminar (g=3)", bench::loose_instance, 3, 60},
      {"loose laminar (g=6)", bench::loose_instance, 6, 60},
      {"contended (g=4)", bench::contended_instance, 4, 60},
      {"contended (g=8)", bench::contended_instance, 8, 60},
      {"unit jobs (g=3, E8)", bench::unit_instance, 3, 60},
      {"staircase (g=3)",
       +[](int id, std::int64_t g) {
         return at::gen::staircase(g, 3 + id % 5, 1 + id % 3);
       },
       3, 40},
      {"binary nest (g=4)",
       +[](int id, std::int64_t g) {
         return at::gen::binary_nest(g, 1 + id % 3);
       },
       4, 30},
  };

  std::cout << "# E1/E8 — approximation ratio of the 9/5 algorithm\n\n"
            << "Hard guarantee asserted per instance: ratio <= 1.8.\n\n";
  io::Table table({"family", "instances", "avg vs OPT", "max vs OPT",
                   "avg vs LP", "max vs LP", "opt hits", "violations"});

  for (const FamilyRow& family : families) {
    bench::RatioStats vs_opt, vs_lp;
    int opt_hits = 0;
    int violations = 0;
    std::mutex mu;
    const int instances = smoke ? std::min(family.instances, 3)
                                : family.instances;
    bench::begin_cell_metrics();
    util::parallel_for(0, static_cast<std::size_t>(instances),
                       [&](std::size_t id) {
      const at::Instance inst =
          family.make(static_cast<int>(id), family.g);
      at::NestedSolveResult r = at::solve_nested(inst);
      auto opt = at::baselines::exact_opt_laminar(inst);
      std::lock_guard lk(mu);
      if (r.repairs != 0) ++violations;
      vs_lp.add(static_cast<double>(r.active_slots) / r.lp_value);
      if (opt.has_value()) {
        const double ratio = static_cast<double>(r.active_slots) /
                             static_cast<double>(opt->optimum);
        vs_opt.add(ratio);
        if (r.active_slots == opt->optimum) ++opt_hits;
        if (ratio > 1.8 + 1e-9) ++violations;
      }
    });
    table.add_row({family.name,
                   io::Table::num(static_cast<std::int64_t>(instances)),
                   io::Table::num(vs_opt.avg()), io::Table::num(vs_opt.max),
                   io::Table::num(vs_lp.avg()), io::Table::num(vs_lp.max),
                   io::Table::num(static_cast<std::int64_t>(opt_hits)),
                   io::Table::num(static_cast<std::int64_t>(violations))});
    // Per-cell metrics dump (no-op unless NAT_BENCH_REPORT_DIR is set);
    // instance stats are the family's id-0 representative, counters
    // and spans aggregate the whole cell.
    obs::RunSummary cell = bench::instance_summary(family.make(0, family.g));
    cell.solver = "nested";
    bench::emit_cell_report("bench_approx_ratio", family.name, cell);
  }
  table.print_markdown(std::cout);

  std::cout << "\n# Lemma 5.1 family (worst known for the LP bound)\n\n";
  io::Table gap({"g", "active", "OPT", "LP", "ratio vs OPT",
                 "9/5 bound holds"});
  for (std::int64_t g = 2; g <= (smoke ? 3 : 10); ++g) {
    const at::Instance inst = at::gen::lemma51_gap(g);
    at::NestedSolveResult r = at::solve_nested(inst);
    const std::int64_t opt = g + (g + 1) / 2;
    gap.add_row({io::Table::num(g), io::Table::num(r.active_slots),
                 io::Table::num(opt), io::Table::num(r.lp_value, 2),
                 io::Table::ratio(static_cast<double>(r.active_slots),
                                  static_cast<double>(opt)),
                 r.active_slots <= 1.8 * opt ? "yes" : "NO"});
  }
  gap.print_markdown(std::cout);
  return 0;
}
