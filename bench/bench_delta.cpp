// bench_delta — incremental delta re-solves vs from-scratch solves.
//
// Each cell builds a multi-group rolling instance (>= 200 jobs even in
// --smoke), precomputes a stream of safe single-job deltas (add /
// remove / extend / shrink), and then pays for the stream twice:
//
//  * incremental: one persistent SolverSession absorbing the deltas —
//    per-group caching plus the warm-started sparse simplex
//    (docs/INCREMENTAL.md);
//  * scratch: a fresh SolverSession built and solved on every post-
//    delta instance, the cost an engine without sessions would pay.
//
// The determinism contract is re-asserted while timing: every step's
// incremental schedule must be bit-identical to the scratch schedule
// (assignment vectors compared verbatim, not just costs). Results land
// in BENCH_delta.json (--out) for the CI perf gate, which enforces a
// floor on the geometric-mean speedup (tools/perf_gate.py,
// docs/PERFORMANCE.md).
#include <cmath>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "activetime/feasibility.hpp"
#include "activetime/session.hpp"
#include "bench/common.hpp"
#include "io/table.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace nat;

namespace {

/// Multi-group instance: contended clusters shifted apart in time until
/// the job floor is met (same construction as tests/test_session.cpp).
at::Instance make_rolling(int min_jobs, int seed, std::int64_t g) {
  at::Instance out;
  out.g = g;
  at::Time offset = 0;
  for (int b = 0; static_cast<int>(out.jobs.size()) < min_jobs; ++b) {
    at::gen::ContendedParams params;
    params.g = g;
    params.min_groups = 2;
    params.max_groups = 3;
    params.max_long_jobs = 1;
    util::Rng rng(1000 * seed + b);
    at::Instance batch = at::gen::random_contended(params, rng);
    at::Time hi = 0;
    for (at::Job j : batch.jobs) {
      j.release += offset;
      j.deadline += offset;
      hi = std::max(hi, j.deadline);
      out.jobs.push_back(j);
    }
    offset = hi + 2;
  }
  return out;
}

bool all_open_feasible(const at::Instance& instance) {
  if (instance.jobs.empty()) return true;
  const at::Interval h = instance.horizon();
  std::vector<at::Time> slots;
  slots.reserve(static_cast<std::size_t>(h.length()));
  for (at::Time t = h.lo; t < h.hi; ++t) slots.push_back(t);
  return at::feasible_with_slots(instance, slots);
}

/// Applies `delta` to a copy of `instance`; empty when the result would
/// be invalid or infeasible. Non-laminar results are also skipped —
/// sessions solve them fine (general-backend dispatch, docs/GENERAL.md),
/// but this bench measures the nested pipeline's warm-start economics,
/// so its streams stay laminar on purpose.
std::optional<at::Instance> after_delta(const at::Instance& instance,
                                        const at::Delta& delta) {
  at::Instance cand = instance;
  try {
    if (const auto* a = std::get_if<at::AddJob>(&delta)) {
      cand.jobs.push_back(a->job);
    } else if (const auto* r = std::get_if<at::RemoveJob>(&delta)) {
      if (r->job < 0 || r->job >= static_cast<int>(cand.jobs.size())) {
        return std::nullopt;
      }
      cand.jobs.erase(cand.jobs.begin() + r->job);
    } else if (const auto* e = std::get_if<at::ExtendWindow>(&delta)) {
      at::Job& j = cand.jobs.at(static_cast<std::size_t>(e->job));
      if (e->window.lo > j.release || e->window.hi < j.deadline) {
        return std::nullopt;
      }
      j.release = e->window.lo;
      j.deadline = e->window.hi;
    } else if (const auto* s = std::get_if<at::ShrinkWindow>(&delta)) {
      at::Job& j = cand.jobs.at(static_cast<std::size_t>(s->job));
      if (s->window.lo < j.release || s->window.hi > j.deadline ||
          s->window.length() < j.processing) {
        return std::nullopt;
      }
      j.release = s->window.lo;
      j.deadline = s->window.hi;
    }
    cand.validate();
  } catch (const util::CheckError&) {
    return std::nullopt;
  }
  if (!cand.is_laminar() || cand.jobs.empty() || !all_open_feasible(cand)) {
    return std::nullopt;
  }
  return cand;
}

std::optional<at::Delta> propose_delta(const at::Instance& instance,
                                       util::Rng& rng) {
  const int n = static_cast<int>(instance.jobs.size());
  if (n == 0) return std::nullopt;
  const int kind = static_cast<int>(rng.uniform_int(0, 3));
  const int pick = static_cast<int>(rng.uniform_int(0, n - 1));
  const at::Job& j = instance.jobs[static_cast<std::size_t>(pick)];
  switch (kind) {
    case 0: {
      at::Job add = j;
      add.processing =
          rng.uniform_int(1, std::max<at::Time>(1, j.window().length()));
      return at::AddJob{add};
    }
    case 1:
      return at::RemoveJob{pick};
    case 2: {
      at::Interval w = j.window();
      w.lo -= rng.uniform_int(0, 2);
      w.hi += rng.uniform_int(0, 2);
      return at::ExtendWindow{pick, w};
    }
    default: {
      at::Interval w = j.window();
      const at::Time slack = w.length() - j.processing;
      if (slack <= 0) return std::nullopt;
      const at::Time cut_lo = rng.uniform_int(0, slack);
      const at::Time cut_hi = rng.uniform_int(0, slack - cut_lo);
      return at::ShrinkWindow{pick,
                              at::Interval{w.lo + cut_lo, w.hi - cut_hi}};
    }
  }
}

struct CellSpec {
  std::string name;
  int min_jobs = 200;
  std::int64_t g = 3;
  int seed = 7;
  int steps = 30;
};

struct StepResult {
  std::vector<int> assignment_jobs;  // flattened schedule fingerprint
  std::vector<at::Time> assignment_slots;
  std::int64_t active_slots = 0;
};

StepResult fingerprint(const at::SessionResult& r) {
  StepResult out;
  out.active_slots = r.active_slots;
  for (std::size_t j = 0; j < r.schedule.assignment.size(); ++j) {
    for (at::Time t : r.schedule.assignment[j]) {
      out.assignment_jobs.push_back(static_cast<int>(j));
      out.assignment_slots.push_back(t);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_delta.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") smoke = true;
    if (arg == "--out" && a + 1 < argc) out_path = argv[++a];
  }

  obs::Json doc = obs::Json::object();
  doc["schema"] = "nat-bench-delta-v1";
  doc["smoke"] = smoke;

  std::cout << "# bench_delta — persistent sessions vs from-scratch"
               " re-solves\n\n"
            << "Single-job delta streams over multi-group instances;"
               " schedules asserted\nbit-identical between the incremental"
               " and scratch paths at every step.\n\n";

  // --smoke trims the stream length, never the instance size: the >=200
  // job floor is what makes the speedup structural (many clean groups
  // per delta) instead of an artifact of tiny LPs.
  std::vector<CellSpec> specs = {
      {"rolling contended (g=3)", 200, 3, 7, smoke ? 8 : 30},
      {"rolling contended (g=2)", 240, 2, 11, smoke ? 6 : 24},
  };
  if (!smoke) specs.push_back({"rolling contended wide (g=4)", 320, 4, 13, 20});

  io::Table table({"cell", "jobs", "groups", "steps", "incremental s",
                   "scratch s", "speedup", "warm", "cold"});
  obs::Json cells_json = obs::Json::array();
  double log_speedup_sum = 0.0;

  for (const CellSpec& spec : specs) {
    const at::Instance initial =
        make_rolling(spec.min_jobs, spec.seed, spec.g);
    NAT_CHECK_MSG(initial.num_jobs() >= 200,
                  spec.name << ": job floor not met");
    const std::int64_t groups =
        static_cast<std::int64_t>(at::window_groups(initial).size());

    // Precompute the delta stream and its post-delta instances outside
    // both timers.
    std::vector<std::pair<at::Delta, at::Instance>> stream;
    {
      at::Instance cur = initial;
      util::Rng rng(100 + spec.seed);
      int guard = 0;
      while (static_cast<int>(stream.size()) < spec.steps &&
             ++guard < 50 * spec.steps) {
        const auto delta = propose_delta(cur, rng);
        if (!delta) continue;
        auto next = after_delta(cur, *delta);
        if (!next) continue;
        cur = *next;
        stream.emplace_back(*delta, std::move(*next));
      }
    }
    NAT_CHECK_MSG(static_cast<int>(stream.size()) == spec.steps,
                  spec.name << ": could not build the delta stream");

    // Incremental: one session, per-delta apply.
    at::SolverSession session(initial);
    session.solve();  // initial build is amortized session setup
    std::vector<StepResult> incremental;
    incremental.reserve(stream.size());
    util::Stopwatch inc_watch;
    for (const auto& [delta, post] : stream) {
      incremental.push_back(fingerprint(session.apply(delta)));
    }
    const double inc_s = inc_watch.seconds();
    const at::SessionStats stats = session.stats();

    // Scratch: a fresh session per post-delta instance.
    std::vector<StepResult> scratch;
    scratch.reserve(stream.size());
    util::Stopwatch scr_watch;
    for (const auto& [delta, post] : stream) {
      at::SolverSession fresh(post);
      scratch.push_back(fingerprint(fresh.solve()));
    }
    const double scr_s = scr_watch.seconds();

    for (std::size_t k = 0; k < stream.size(); ++k) {
      NAT_CHECK_MSG(
          incremental[k].assignment_jobs == scratch[k].assignment_jobs &&
              incremental[k].assignment_slots == scratch[k].assignment_slots &&
              incremental[k].active_slots == scratch[k].active_slots,
          spec.name << " step " << k
                    << ": incremental schedule diverged from scratch");
    }

    const double speedup = inc_s > 0 ? scr_s / inc_s : 0.0;
    NAT_CHECK_MSG(speedup > 0, spec.name << ": degenerate timing");
    log_speedup_sum += std::log(speedup);

    const std::int64_t warm = stats.lp_warm_hits + stats.lp_warm_repairs;
    table.add_row({spec.name,
                   io::Table::num(std::int64_t(initial.num_jobs())),
                   io::Table::num(groups),
                   io::Table::num(std::int64_t(stream.size())),
                   io::Table::num(inc_s, 4), io::Table::num(scr_s, 4),
                   io::Table::num(speedup, 2), io::Table::num(warm),
                   io::Table::num(stats.lp_cold_fallbacks)});

    obs::Json j = obs::Json::object();
    j["name"] = spec.name;
    j["jobs"] = static_cast<std::int64_t>(initial.num_jobs());
    j["groups"] = groups;
    j["steps"] = static_cast<std::int64_t>(stream.size());
    j["incremental_seconds"] = inc_s;
    j["scratch_seconds"] = scr_s;
    j["speedup_vs_scratch"] = speedup;
    j["groups_resolved"] = stats.groups_resolved;
    j["groups_reused"] = stats.groups_reused;
    j["lp_warm_hits"] = stats.lp_warm_hits;
    j["lp_warm_repairs"] = stats.lp_warm_repairs;
    j["lp_cold_fallbacks"] = stats.lp_cold_fallbacks;
    cells_json.push_back(std::move(j));
  }
  table.print_markdown(std::cout);
  doc["delta_cells"] = std::move(cells_json);
  const double geomean =
      std::exp(log_speedup_sum / static_cast<double>(specs.size()));
  doc["geomean_speedup"] = geomean;
  std::cout << "\ngeomean speedup (incremental vs scratch): " << geomean
            << "\n";

  bench::write_bench_json(doc, out_path);
  return 0;
}
