// Shared helpers for the experiment harness binaries.
//
// Each bench prints markdown tables with the paper's expected value
// next to the measured one; EXPERIMENTS.md is assembled from this
// output. All sweeps are seeded and deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "activetime/instance.hpp"
#include "instances/generators.hpp"
#include "util/rng.hpp"

namespace nat::bench {

/// Loose random laminar instance (mostly integral LPs).
inline at::Instance loose_instance(int id, std::int64_t g) {
  at::gen::RandomLaminarParams params;
  util::Rng knobs(9000 + id);
  params.g = g;
  params.max_depth = 3;
  params.max_children = 3;
  params.max_jobs_per_node = 3;
  params.max_processing = 4;
  util::Rng rng(100 + id);
  return at::gen::random_laminar(params, rng);
}

/// Contended instance (fractional LPs; the interesting regime).
inline at::Instance contended_instance(int id, std::int64_t g) {
  at::gen::ContendedParams params;
  params.g = g;
  params.min_groups = 2;
  params.max_groups = 6;
  util::Rng knobs(5000 + id);
  params.unit_slack = knobs.uniform_int(0, 2);
  params.max_long_jobs = static_cast<int>(knobs.uniform_int(1, 3));
  util::Rng rng(300 + id);
  return at::gen::random_contended(params, rng);
}

/// Unit-processing instance (the poly-solvable case of [2]).
inline at::Instance unit_instance(int id, std::int64_t g) {
  at::gen::RandomLaminarParams params;
  params.g = g;
  params.max_depth = 3;
  params.max_children = 3;
  params.max_jobs_per_node = 4;
  util::Rng rng(200 + id);
  return at::gen::random_laminar_unit(params, rng);
}

struct RatioStats {
  double sum = 0.0;
  double max = 0.0;
  int count = 0;

  void add(double r) {
    sum += r;
    if (r > max) max = r;
    ++count;
  }
  double avg() const { return count ? sum / count : 0.0; }
};

}  // namespace nat::bench
