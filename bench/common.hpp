// Shared helpers for the experiment harness binaries.
//
// Each bench prints markdown tables with the paper's expected value
// next to the measured one; EXPERIMENTS.md is assembled from this
// output. All sweeps are seeded and deterministic.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "activetime/instance.hpp"
#include "instances/generators.hpp"
#include "obs/counters.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nat::bench {

/// Loose random laminar instance (mostly integral LPs).
inline at::Instance loose_instance(int id, std::int64_t g) {
  at::gen::RandomLaminarParams params;
  util::Rng knobs(9000 + id);
  params.g = g;
  params.max_depth = 3;
  params.max_children = 3;
  params.max_jobs_per_node = 3;
  params.max_processing = 4;
  util::Rng rng(100 + id);
  return at::gen::random_laminar(params, rng);
}

/// Contended instance (fractional LPs; the interesting regime).
inline at::Instance contended_instance(int id, std::int64_t g) {
  at::gen::ContendedParams params;
  params.g = g;
  params.min_groups = 2;
  params.max_groups = 6;
  util::Rng knobs(5000 + id);
  params.unit_slack = knobs.uniform_int(0, 2);
  params.max_long_jobs = static_cast<int>(knobs.uniform_int(1, 3));
  util::Rng rng(300 + id);
  return at::gen::random_contended(params, rng);
}

/// Unit-processing instance (the poly-solvable case of [2]).
inline at::Instance unit_instance(int id, std::int64_t g) {
  at::gen::RandomLaminarParams params;
  params.g = g;
  params.max_depth = 3;
  params.max_children = 3;
  params.max_jobs_per_node = 4;
  util::Rng rng(200 + id);
  return at::gen::random_laminar_unit(params, rng);
}

struct RatioStats {
  double sum = 0.0;
  double max = 0.0;
  int count = 0;

  void add(double r) {
    sum += r;
    if (r > max) max = r;
    ++count;
  }
  double avg() const { return count ? sum / count : 0.0; }
};

/// --- per-cell observability reports --------------------------------------
///
/// When NAT_BENCH_REPORT_DIR is set, every bench cell can dump its
/// counters/spans as a JSON run report (schema: docs/OBSERVABILITY.md).
/// Usage per cell:
///
///   begin_cell_metrics();                    // zero counters + spans
///   ... run the cell's solves ...
///   emit_cell_report("bench_foo", "cell-name", summary);
///
/// Reports land at <dir>/<bench>__<cell>.json with the cell name
/// sanitized for filenames. No-ops (returning false) when the env var
/// is unset, so benches pay nothing by default.

inline const char* report_dir() { return std::getenv("NAT_BENCH_REPORT_DIR"); }

inline void begin_cell_metrics() {
  if (!report_dir()) return;
  obs::reset_all();
  obs::clear_spans();
}

/// Derives the incremental-oracle headline gauges from the at.oracle.*
/// counters so per-cell reports carry them directly: the warm-start hit
/// rate (share of queries answered on a retained network) and, when the
/// cell's elapsed wall-clock is known, the mean wall-time per oracle
/// query in microseconds. emit_cell_report calls this automatically.
inline void set_oracle_gauges(double cell_seconds = -1.0) {
  const std::int64_t queries = obs::counter("at.oracle.queries").value();
  if (queries <= 0) return;
  const std::int64_t warm = obs::counter("at.oracle.warm_queries").value();
  obs::gauge("at.oracle.warm_hit_rate")
      .set(static_cast<double>(warm) / static_cast<double>(queries));
  if (cell_seconds >= 0.0) {
    obs::gauge("at.oracle.query_wall_us")
        .set(cell_seconds * 1e6 / static_cast<double>(queries));
  }
}

inline bool emit_cell_report(const std::string& bench,
                             const std::string& cell,
                             const obs::RunSummary& summary,
                             double cell_seconds = -1.0) {
  const char* dir = report_dir();
  if (!dir) return false;
  set_oracle_gauges(cell_seconds);
  std::string safe;
  for (char c : cell) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    safe += ok ? c : '_';
  }
  std::ofstream out(std::string(dir) + "/" + bench + "__" + safe + ".json");
  if (!out) return false;
  obs::write_report(out, summary);
  return true;
}

/// --- bench JSON output ---------------------------------------------------
///
/// Every BENCH_*.json carries a `cpu` stamp so readers (and the CI perf
/// gate, tools/perf_gate.py) know what hardware produced the numbers:
///
///   "cpu": {"hardware_concurrency": N, "pool_workers": N}
///
/// Older documents (pre-stamp) carry at most a top-level
/// `hardware_concurrency`; recorded_concurrency() reads both layouts.

/// Hardware concurrency recorded in a bench document, or -1 when the
/// document predates both the `cpu` stamp and the v1 top-level field.
inline std::int64_t recorded_concurrency(const obs::Json& doc) {
  if (const obs::Json* cpu = doc.find("cpu")) {
    if (const obs::Json* hc = cpu->find("hardware_concurrency")) {
      return hc->as_int();
    }
  }
  if (const obs::Json* hc = doc.find("hardware_concurrency")) {
    return hc->as_int();
  }
  return -1;
}

/// Stamps `doc` with the current cpu metadata and writes it to
/// `out_path`.
///
/// Guard: seconds measured at one worker count are meaningless next to
/// seconds measured at another, so if `out_path` already holds a bench
/// document recorded at a *different* hardware concurrency, the write
/// is refused (NAT_CHECK) instead of silently corrupting the perf
/// trajectory. Set NAT_BENCH_ALLOW_CONCURRENCY_MISMATCH=1 to replace
/// the file anyway (intentional re-baselining on new hardware).
inline void write_bench_json(obs::Json& doc, const std::string& out_path) {
  obs::Json cpu = obs::Json::object();
  const std::int64_t hc =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  cpu["hardware_concurrency"] = hc;
  cpu["pool_workers"] =
      static_cast<std::int64_t>(util::global_pool().thread_count());
  doc["cpu"] = std::move(cpu);

  if (std::ifstream existing(out_path); existing) {
    std::ostringstream buf;
    buf << existing.rdbuf();
    std::int64_t prev = -1;
    try {
      prev = recorded_concurrency(obs::Json::parse(buf.str()));
    } catch (const std::exception&) {
      prev = -1;  // unparseable / foreign file: overwrite freely
    }
    const char* allow = std::getenv("NAT_BENCH_ALLOW_CONCURRENCY_MISMATCH");
    const bool allowed = allow != nullptr && std::string(allow) == "1";
    NAT_CHECK_MSG(
        prev < 0 || prev == hc || allowed,
        out_path << " was recorded at hardware_concurrency=" << prev
                 << " but this machine has " << hc
                 << "; refusing to overwrite (seconds are not comparable"
                    " across machines). Set"
                    " NAT_BENCH_ALLOW_CONCURRENCY_MISMATCH=1 to re-baseline.");
  }

  std::ofstream out(out_path);
  NAT_CHECK_MSG(static_cast<bool>(out), "cannot open " << out_path);
  out << doc.dump(2) << "\n";
  std::cout << "\nwrote " << out_path << "\n";
}

/// RunSummary prefilled with `instance`'s stats (outcome fields are
/// left for the caller).
inline obs::RunSummary instance_summary(const at::Instance& instance) {
  obs::RunSummary s;
  s.jobs = instance.num_jobs();
  s.g = instance.g;
  const at::Interval h = instance.horizon();
  s.horizon_lo = h.lo;
  s.horizon_hi = h.hi;
  s.volume = instance.total_volume();
  s.volume_lower_bound = instance.volume_lower_bound();
  s.laminar = instance.is_laminar();
  return s;
}

}  // namespace nat::bench
