// E3 — the natural LP's integrality gap of 2 (Section 1), on the
// nested unit-overload family: g+1 unit jobs sharing a window of
// length 2.
//
// Paper claims reproduced here:
//   * natural LP value = (g+1)/g (open both slots to extent (g+1)/2g);
//   * OPT = 2, so the gap 2g/(g+1) → 2;
//   * the strengthened LP's ceiling constraint (7) closes the gap to 1
//     on this family — the separation that motivates the paper's LP.
#include <cmath>
#include <iostream>

#include "activetime/solver.hpp"
#include "activetime/time_indexed_lp.hpp"
#include "baselines/exact.hpp"
#include "instances/generators.hpp"
#include "io/table.hpp"

using namespace nat;

int main() {
  std::cout << "# E3 — natural-LP gap-2 family (unit overload)\n\n"
            << "paper curve: gap = 2g / (g+1) -> 2\n\n";
  io::Table table({"g", "natural LP", "expected (g+1)/g", "strong LP",
                   "OPT", "gap (natural)", "paper curve", "gap (strong)"});
  bool all_match = true;
  for (std::int64_t g = 1; g <= 16; ++g) {
    const at::Instance inst = at::gen::unit_overload(g);
    const double nat_lp = at::natural_lp_value(inst);
    const double expected =
        static_cast<double>(g + 1) / static_cast<double>(g);
    const double strong = at::strong_lp_value(inst);
    const auto opt = at::baselines::exact_opt_laminar(inst);
    const double optv = static_cast<double>(opt->optimum);
    all_match = all_match && std::abs(nat_lp - expected) < 1e-6 &&
                opt->optimum == 2;
    table.add_row({io::Table::num(g), io::Table::num(nat_lp),
                   io::Table::num(expected), io::Table::num(strong),
                   io::Table::num(opt->optimum),
                   io::Table::ratio(optv, nat_lp),
                   io::Table::num(2.0 * static_cast<double>(g) /
                                  static_cast<double>(g + 1)),
                   io::Table::ratio(optv, strong)});
  }
  table.print_markdown(std::cout);
  std::cout << (all_match
                    ? "\nnatural LP matches (g+1)/g exactly on every row; "
                      "the strong LP sits at OPT (gap closed).\n"
                    : "\nMISMATCH against the analytic values!\n");
  return all_match ? 0 : 1;
}
