// bench_general — the LP-rounding 2-approx on general (non-laminar)
// windows, plus the laminarity dispatcher's overhead on laminar input.
//
// Three cell families:
//
//  * random crossing: random_general instances (loose and tight), each
//    solved by solve_general; the headline number is the worst observed
//    ALG / LP ratio, which the 2-approx guarantee caps at 2 (+ float
//    slack). The CI perf gate enforces that ceiling on every run
//    (tools/perf_gate.py, DOC_CEILINGS).
//  * hard crossing chain: the Saha–Purohit-style gadget family
//    (instances/generators.hpp) at growing sizes — the fractional
//    regime where the threshold support sits near 1/2 everywhere and
//    the repair loop actually fires.
//  * laminar via dispatcher: laminar instances through
//    solve_active_time, asserted bit-identical to solve_nested while
//    timing both — the dispatcher must stay a transparent wrapper.
//
// Results land in BENCH_general.json (--out) for the CI perf gate:
// structural integers exact, seconds gated when the hardware stamp
// matches, max_ratio_vs_lp gated at 2.0 + slack on any hardware.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "activetime/general.hpp"
#include "activetime/solver.hpp"
#include "bench/common.hpp"
#include "io/table.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace nat;

namespace {

at::Instance crossing_instance(int id, bool tight) {
  util::Rng knobs(7000 + id);
  at::gen::RandomGeneralParams params;
  if (tight) {
    params.g = knobs.uniform_int(1, 3);
    params.jobs = static_cast<int>(knobs.uniform_int(8, 16));
    params.horizon = knobs.uniform_int(6, 12);
    params.max_length = params.horizon;
    params.max_processing = knobs.uniform_int(2, 5);
  } else {
    params.g = knobs.uniform_int(2, 5);
    params.jobs = static_cast<int>(knobs.uniform_int(10, 24));
    params.horizon = knobs.uniform_int(16, 40);
    params.max_length = knobs.uniform_int(4, 12);
    params.max_processing = knobs.uniform_int(1, 4);
  }
  util::Rng rng(500 + id);
  return at::gen::random_general(params, rng);
}

struct RoundingMix {
  std::int64_t threshold = 0;
  std::int64_t sweep = 0;
  std::int64_t greedy = 0;

  void add(at::GeneralRounding r) {
    switch (r) {
      case at::GeneralRounding::kThreshold: ++threshold; break;
      case at::GeneralRounding::kSweep: ++sweep; break;
      case at::GeneralRounding::kGreedy: ++greedy; break;
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_general.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") smoke = true;
    if (arg == "--out" && a + 1 < argc) out_path = argv[++a];
  }

  obs::Json doc = obs::Json::object();
  doc["schema"] = "nat-bench-general-v1";
  doc["smoke"] = smoke;

  std::cout << "# bench_general — LP-rounding 2-approx on general"
               " windows\n\nWorst ALG/LP ratio per family (guarantee: 2),"
               " rounding-path mix, and the\ndispatcher's overhead on"
               " laminar input.\n\n";

  io::Table table({"cell", "instances", "jobs", "solve s", "avg ALG/LP",
                   "max ALG/LP", "repairs", "thr/sweep/greedy"});
  obs::Json cells_json = obs::Json::array();
  double doc_max_ratio = 0.0;

  struct CrossingSpec {
    std::string name;
    bool tight;
    int count;
  };
  const std::vector<CrossingSpec> crossing_specs = {
      {"random crossing loose", false, smoke ? 12 : 60},
      {"random crossing tight", true, smoke ? 12 : 60},
  };
  for (const CrossingSpec& spec : crossing_specs) {
    bench::RatioStats ratios;
    std::int64_t jobs = 0, repairs = 0;
    RoundingMix mix;
    util::Stopwatch watch;
    for (int id = 0; id < spec.count; ++id) {
      const at::Instance instance = crossing_instance(id, spec.tight);
      jobs += instance.num_jobs();
      const at::GeneralSolveResult res = at::solve_general(instance);
      NAT_CHECK_MSG(!res.lp_failed, spec.name << ": LP failed on id " << id);
      NAT_CHECK_MSG(res.lp_value > 0, spec.name << ": degenerate LP");
      ratios.add(static_cast<double>(res.active_slots) / res.lp_value);
      repairs += res.repairs;
      mix.add(res.rounding);
    }
    const double secs = watch.seconds();
    doc_max_ratio = std::max(doc_max_ratio, ratios.max);

    table.add_row({spec.name, io::Table::num(std::int64_t(spec.count)),
                   io::Table::num(jobs), io::Table::num(secs, 4),
                   io::Table::num(ratios.avg(), 3),
                   io::Table::num(ratios.max, 3), io::Table::num(repairs),
                   io::Table::num(mix.threshold) + "/" +
                       io::Table::num(mix.sweep) + "/" +
                       io::Table::num(mix.greedy)});

    obs::Json j = obs::Json::object();
    j["name"] = spec.name;
    j["instances"] = static_cast<std::int64_t>(spec.count);
    j["jobs"] = jobs;
    j["solve_seconds"] = secs;
    j["avg_ratio_vs_lp"] = ratios.avg();
    j["max_ratio_vs_lp"] = ratios.max;
    j["repairs"] = repairs;
    j["rounding_threshold"] = mix.threshold;
    j["rounding_sweep"] = mix.sweep;
    j["rounding_greedy"] = mix.greedy;
    cells_json.push_back(std::move(j));
  }

  // Hard crossing chain: deterministic gadget sizes.
  {
    struct ChainSpec {
      std::int64_t g;
      int k;
    };
    std::vector<ChainSpec> chain = {{2, 4}, {3, 8}, {4, 12}};
    if (!smoke) chain.push_back({4, 24});
    bench::RatioStats ratios;
    std::int64_t jobs = 0, repairs = 0;
    RoundingMix mix;
    util::Stopwatch watch;
    for (const ChainSpec& c : chain) {
      const at::Instance instance = at::gen::hard_crossing(c.g, c.k);
      jobs += instance.num_jobs();
      const at::GeneralSolveResult res = at::solve_general(instance);
      NAT_CHECK_MSG(!res.lp_failed, "hard_crossing: LP failed");
      ratios.add(static_cast<double>(res.active_slots) / res.lp_value);
      repairs += res.repairs;
      mix.add(res.rounding);
    }
    const double secs = watch.seconds();
    doc_max_ratio = std::max(doc_max_ratio, ratios.max);

    table.add_row({"hard crossing chain",
                   io::Table::num(std::int64_t(chain.size())),
                   io::Table::num(jobs), io::Table::num(secs, 4),
                   io::Table::num(ratios.avg(), 3),
                   io::Table::num(ratios.max, 3), io::Table::num(repairs),
                   io::Table::num(mix.threshold) + "/" +
                       io::Table::num(mix.sweep) + "/" +
                       io::Table::num(mix.greedy)});

    obs::Json j = obs::Json::object();
    j["name"] = "hard crossing chain";
    j["instances"] = static_cast<std::int64_t>(chain.size());
    j["jobs"] = jobs;
    j["solve_seconds"] = secs;
    j["avg_ratio_vs_lp"] = ratios.avg();
    j["max_ratio_vs_lp"] = ratios.max;
    j["repairs"] = repairs;
    j["rounding_threshold"] = mix.threshold;
    j["rounding_sweep"] = mix.sweep;
    j["rounding_greedy"] = mix.greedy;
    cells_json.push_back(std::move(j));
  }

  // Laminar through the dispatcher: identity asserted, overhead timed.
  {
    const int count = smoke ? 10 : 40;
    std::int64_t jobs = 0;
    util::Stopwatch direct_watch;
    std::vector<at::NestedSolveResult> direct;
    for (int id = 0; id < count; ++id) {
      direct.push_back(at::solve_nested(bench::contended_instance(id, 3)));
    }
    const double direct_s = direct_watch.seconds();
    util::Stopwatch via_watch;
    for (int id = 0; id < count; ++id) {
      const at::Instance instance = bench::contended_instance(id, 3);
      jobs += instance.num_jobs();
      const at::ActiveTimeResult via = at::solve_active_time(instance);
      NAT_CHECK_MSG(via.backend == at::Backend::kNested,
                    "dispatcher sent laminar input to "
                        << at::to_string(via.backend));
      NAT_CHECK_MSG(via.schedule.assignment ==
                            direct[static_cast<std::size_t>(id)]
                                .schedule.assignment &&
                        via.active_slots ==
                            direct[static_cast<std::size_t>(id)].active_slots,
                    "dispatcher diverged from solve_nested on id " << id);
    }
    const double via_s = via_watch.seconds();

    table.add_row({"laminar via dispatcher",
                   io::Table::num(std::int64_t(count)), io::Table::num(jobs),
                   io::Table::num(via_s, 4), "-", "-", "-", "-"});

    obs::Json j = obs::Json::object();
    j["name"] = "laminar via dispatcher";
    j["instances"] = static_cast<std::int64_t>(count);
    j["jobs"] = jobs;
    j["solve_seconds"] = via_s;
    j["direct_seconds"] = direct_s;
    cells_json.push_back(std::move(j));
  }

  table.print_markdown(std::cout);
  doc["general_cells"] = std::move(cells_json);
  doc["max_ratio_vs_lp"] = doc_max_ratio;
  std::cout << "\nworst ALG/LP ratio: " << doc_max_ratio
            << " (2-approx guarantee: 2)\n";

  bench::write_bench_json(doc, out_path);
  return 0;
}
