// E9 (tightness exploration) — how close does the pipeline get to its
// own 9/5 certificate, and where?
//
// Two searches:
//   * the LP-certified ratio active/LP over a large randomized pool
//     (its supremum is the algorithm's *observable* tightness; the
//     strengthened LP's >= 3/2 integrality gap on nested instances
//     means ratios above 1.5 are expected to appear);
//   * the true ratio active/OPT (bounded by 9/5 per Theorem 4.15).
// The harness reports the frontier instances it found, so worst cases
// are reproducible by seed.
#include <iostream>
#include <mutex>

#include "activetime/solver.hpp"
#include "baselines/exact.hpp"
#include "bench/common.hpp"
#include "instances/generators.hpp"
#include "io/table.hpp"
#include "util/thread_pool.hpp"

using namespace nat;

int main() {
  struct Worst {
    double ratio = 0.0;
    int id = -1;
    std::int64_t g = 0;
  };
  Worst worst_lp, worst_opt;
  std::int64_t histogram[6] = {0, 0, 0, 0, 0, 0};  // [1.0,1.1), ... [1.5,1.8]
  std::mutex mu;

  const int kPool = 600;
  util::parallel_for(0, kPool, [&](std::size_t id) {
    util::Rng knobs(7700 + id);
    const std::int64_t g = knobs.uniform_int(2, 10);
    const at::Instance inst =
        bench::contended_instance(static_cast<int>(id), g);
    at::NestedSolveResult r = at::solve_nested(inst);
    const double vs_lp = static_cast<double>(r.active_slots) / r.lp_value;
    auto opt = at::baselines::exact_opt_laminar(
        inst, at::baselines::ExactOptions{1'000'000});
    std::lock_guard lk(mu);
    if (vs_lp > worst_lp.ratio) worst_lp = {vs_lp, static_cast<int>(id), g};
    int bucket = static_cast<int>((vs_lp - 1.0) * 10.0);
    histogram[std::min(bucket, 5)]++;
    if (opt.has_value()) {
      const double vs_opt = static_cast<double>(r.active_slots) /
                            static_cast<double>(opt->optimum);
      if (vs_opt > worst_opt.ratio) {
        worst_opt = {vs_opt, static_cast<int>(id), g};
      }
    }
  });

  std::cout << "# E9 — tightness frontier (600 contended instances, "
               "g in [2,10])\n\n";
  io::Table hist({"certified ratio bucket", "instances"});
  const char* labels[6] = {"[1.0, 1.1)", "[1.1, 1.2)", "[1.2, 1.3)",
                           "[1.3, 1.4)", "[1.4, 1.5)", "[1.5, 1.8]"};
  for (int b = 0; b < 6; ++b) {
    hist.add_row({labels[b], io::Table::num(histogram[b])});
  }
  hist.print_markdown(std::cout);
  std::cout << "\nworst active/LP  = " << io::Table::num(worst_lp.ratio)
            << "  (seed id " << worst_lp.id << ", g=" << worst_lp.g
            << "; certificate bound 1.8)\n";
  std::cout << "worst active/OPT = " << io::Table::num(worst_opt.ratio)
            << "  (seed id " << worst_opt.id << ", g=" << worst_opt.g
            << "; Theorem 4.15 bound 1.8)\n";

  // The Lemma 5.1 family pushes the certified ratio hardest as g grows.
  std::cout << "\n# certified ratio on the Lemma 5.1 family\n\n";
  io::Table gap({"g", "active", "LP", "active/LP"});
  for (std::int64_t g : {4, 8, 12, 16, 20}) {
    const at::Instance inst = at::gen::lemma51_gap(g);
    at::NestedSolveResult r = at::solve_nested(inst);
    gap.add_row({io::Table::num(g), io::Table::num(r.active_slots),
                 io::Table::num(r.lp_value, 2),
                 io::Table::ratio(static_cast<double>(r.active_slots),
                                  r.lp_value)});
  }
  gap.print_markdown(std::cout);
  const bool ok = worst_lp.ratio <= 1.8 + 1e-9 && worst_opt.ratio <= 1.8 + 1e-9;
  std::cout << (ok ? "\nno instance crossed the 9/5 line.\n"
                   : "\nBOUND VIOLATED!\n");
  return ok ? 0 : 1;
}
