// Differential fuzzer CLI for the 9/5 pipeline (see verify/fuzz.hpp).
//
//   fuzz_differential [--instances N] [--seed S] [--max-jobs M]
//                     [--time-budget SECONDS] [--regressions DIR]
//                     [--inject-budget-bug]
//
// Runs N random laminar instances through the double pipeline with the
// exact-arithmetic verify layer at full strength and asserts
// LP <= OPT <= ALG <= ceil((9/5) OPT). Violations are minimized by
// delta-debugging and written to --regressions (default
// corpus/regressions when the flag is given without a value elsewhere).
// Exit status: 0 on a clean run, 1 when any violation survived, 2 on
// bad usage.
//
// --inject-budget-bug enables the deliberate Algorithm 1 off-by-one
// (rounding.hpp) to demonstrate the harness catches a real
// approximation bug; such a run is *expected* to report violations and
// therefore exits 0 iff at least one violation was found.
#include <cstdlib>
#include <iostream>
#include <string>

#include "verify/fuzz.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--instances N] [--seed S] [--max-jobs M]"
               " [--time-budget SECONDS] [--regressions DIR]"
               " [--inject-budget-bug]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  nat::verify::fuzz::FuzzOptions options;
  options.regression_dir = "corpus/regressions";

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto value = [&]() -> const char* {
      return a + 1 < argc ? argv[++a] : nullptr;
    };
    try {
      if (arg == "--instances") {
        const char* v = value();
        if (!v) return usage(argv[0]);
        options.instances = std::stoi(v);
      } else if (arg == "--seed") {
        const char* v = value();
        if (!v) return usage(argv[0]);
        options.seed = std::stoull(v);
      } else if (arg == "--max-jobs") {
        const char* v = value();
        if (!v) return usage(argv[0]);
        options.max_jobs = std::stoi(v);
      } else if (arg == "--time-budget") {
        const char* v = value();
        if (!v) return usage(argv[0]);
        options.time_budget_seconds = std::stod(v);
      } else if (arg == "--regressions") {
        const char* v = value();
        if (!v) return usage(argv[0]);
        options.regression_dir = v;
      } else if (arg == "--inject-budget-bug") {
        options.inject_budget_fault = true;
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception&) {
      return usage(argv[0]);
    }
  }

  const nat::verify::fuzz::FuzzReport report =
      nat::verify::fuzz::run_fuzz(options);

  std::cout << "fuzz_differential: " << report.instances_run
            << " instances, " << report.violations.size()
            << " violations (seed " << options.seed
            << (options.inject_budget_fault ? ", budget bug injected" : "")
            << ")\n";
  for (const auto& v : report.violations) {
    std::cout << "  [" << v.failure_class << "] iteration " << v.index
              << ": minimized " << v.original_jobs << " -> "
              << v.instance.num_jobs() << " jobs";
    if (!v.repro_path.empty()) std::cout << " (" << v.repro_path << ")";
    std::cout << "\n    " << v.detail << '\n';
  }

  if (options.inject_budget_fault) {
    // Self-test mode: the harness must catch the injected bug.
    if (report.violations.empty()) {
      std::cout << "FAIL: injected budget bug was not detected\n";
      return 1;
    }
    std::cout << "OK: injected budget bug detected and minimized\n";
    return 0;
  }
  return report.violations.empty() ? 0 : 1;
}
