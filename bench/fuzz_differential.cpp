// Differential fuzzer CLI for the 9/5 pipeline (see verify/fuzz.hpp).
//
//   fuzz_differential [--instances N] [--seed S] [--max-jobs M]
//                     [--time-budget SECONDS] [--regressions DIR]
//                     [--inject-budget-bug]
//   fuzz_differential --delta-streams N [--delta-steps K] [--seed S]
//                     [--max-jobs M] [--time-budget SECONDS]
//                     [--regressions DIR]
//   fuzz_differential --general N [--seed S] [--max-jobs M]
//                     [--time-budget SECONDS] [--regressions DIR]
//   fuzz_differential --robust N [--seed S] [--max-jobs M]
//                     [--time-budget SECONDS] [--regressions DIR]
//
// Runs N random laminar instances through the double pipeline with the
// exact-arithmetic verify layer at full strength and asserts
// LP <= OPT <= ALG <= ceil((9/5) OPT). Violations are minimized by
// delta-debugging and written to --regressions (default
// corpus/regressions when the flag is given without a value elsewhere).
// Exit status: 0 on a clean run, 1 when any violation survived, 2 on
// bad usage.
//
// --inject-budget-bug enables the deliberate Algorithm 1 off-by-one
// (rounding.hpp) to demonstrate the harness catches a real
// approximation bug; such a run is *expected* to report violations and
// therefore exits 0 iff at least one violation was found.
//
// --delta-streams switches to the delta-mutation family: random safe
// delta streams replayed through a persistent SolverSession, asserting
// bit-identical schedules against from-scratch sessions at every step
// (verify/fuzz.hpp, run_delta_fuzz). Violations are minimized (deltas
// first, then base jobs) and written as instance files with `# delta`
// comment lines.
//
// --general switches to the general-windows family: crossing-window
// instances (random + the hard chain) through the laminarity
// dispatcher, asserting LP <= OPT <= ALG <= 2*LP with the rational
// certificate (verify/fuzz.hpp, run_general_fuzz).
//
// --robust switches to the robust interval-time family: instances with
// [p_lo, p_hi] uncertainty boxes through solve_robust, asserting the
// sandwich LP(p_lo) <= ALG <= robust_hi, corner consistency against the
// brute-force oracle, and that degenerate (point) draws reproduce the
// point solver bit-identically (verify/fuzz.hpp, run_robust_fuzz).
#include <cstdlib>
#include <iostream>
#include <string>

#include "verify/fuzz.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--instances N] [--seed S] [--max-jobs M]"
               " [--time-budget SECONDS] [--regressions DIR]"
               " [--inject-budget-bug]"
               " [--delta-streams N [--delta-steps K]]"
               " [--general N] [--robust N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  nat::verify::fuzz::FuzzOptions options;
  options.regression_dir = "corpus/regressions";
  int delta_streams = 0;  // > 0 switches to the delta-mutation family
  int delta_steps = 25;
  int general_instances = 0;  // > 0 switches to the general family
  int robust_instances = 0;   // > 0 switches to the robust family

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto value = [&]() -> const char* {
      return a + 1 < argc ? argv[++a] : nullptr;
    };
    try {
      if (arg == "--instances") {
        const char* v = value();
        if (!v) return usage(argv[0]);
        options.instances = std::stoi(v);
      } else if (arg == "--seed") {
        const char* v = value();
        if (!v) return usage(argv[0]);
        options.seed = std::stoull(v);
      } else if (arg == "--max-jobs") {
        const char* v = value();
        if (!v) return usage(argv[0]);
        options.max_jobs = std::stoi(v);
      } else if (arg == "--time-budget") {
        const char* v = value();
        if (!v) return usage(argv[0]);
        options.time_budget_seconds = std::stod(v);
      } else if (arg == "--regressions") {
        const char* v = value();
        if (!v) return usage(argv[0]);
        options.regression_dir = v;
      } else if (arg == "--inject-budget-bug") {
        options.inject_budget_fault = true;
      } else if (arg == "--delta-streams") {
        const char* v = value();
        if (!v) return usage(argv[0]);
        delta_streams = std::stoi(v);
      } else if (arg == "--delta-steps") {
        const char* v = value();
        if (!v) return usage(argv[0]);
        delta_steps = std::stoi(v);
      } else if (arg == "--general") {
        const char* v = value();
        if (!v) return usage(argv[0]);
        general_instances = std::stoi(v);
      } else if (arg == "--robust") {
        const char* v = value();
        if (!v) return usage(argv[0]);
        robust_instances = std::stoi(v);
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception&) {
      return usage(argv[0]);
    }
  }

  if (robust_instances > 0) {
    nat::verify::fuzz::RobustFuzzOptions robust_options;
    robust_options.instances = robust_instances;
    robust_options.seed = options.seed;
    robust_options.max_jobs = options.max_jobs;
    robust_options.time_budget_seconds = options.time_budget_seconds;
    robust_options.regression_dir = options.regression_dir;
    const nat::verify::fuzz::FuzzReport report =
        nat::verify::fuzz::run_robust_fuzz(robust_options);
    std::cout << "fuzz_differential: " << report.instances_run
              << " robust instances, " << report.violations.size()
              << " violations (seed " << options.seed << ")\n";
    for (const auto& v : report.violations) {
      std::cout << "  [" << v.failure_class << "] iteration " << v.index
                << ": minimized " << v.original_jobs << " -> "
                << v.instance.num_jobs() << " jobs";
      if (!v.repro_path.empty()) std::cout << " (" << v.repro_path << ")";
      std::cout << "\n    " << v.detail << '\n';
    }
    return report.violations.empty() ? 0 : 1;
  }

  if (general_instances > 0) {
    nat::verify::fuzz::GeneralFuzzOptions general_options;
    general_options.instances = general_instances;
    general_options.seed = options.seed;
    general_options.max_jobs = options.max_jobs;
    general_options.time_budget_seconds = options.time_budget_seconds;
    general_options.regression_dir = options.regression_dir;
    const nat::verify::fuzz::FuzzReport report =
        nat::verify::fuzz::run_general_fuzz(general_options);
    std::cout << "fuzz_differential: " << report.instances_run
              << " general instances, " << report.violations.size()
              << " violations (seed " << options.seed << ")\n";
    for (const auto& v : report.violations) {
      std::cout << "  [" << v.failure_class << "] iteration " << v.index
                << ": minimized " << v.original_jobs << " -> "
                << v.instance.num_jobs() << " jobs";
      if (!v.repro_path.empty()) std::cout << " (" << v.repro_path << ")";
      std::cout << "\n    " << v.detail << '\n';
    }
    return report.violations.empty() ? 0 : 1;
  }

  if (delta_streams > 0) {
    nat::verify::fuzz::DeltaFuzzOptions delta_options;
    delta_options.streams = delta_streams;
    delta_options.steps = delta_steps;
    delta_options.seed = options.seed;
    delta_options.max_jobs = options.max_jobs;
    delta_options.time_budget_seconds = options.time_budget_seconds;
    delta_options.regression_dir = options.regression_dir;
    const nat::verify::fuzz::DeltaFuzzReport report =
        nat::verify::fuzz::run_delta_fuzz(delta_options);
    std::cout << "fuzz_differential: " << report.streams_run
              << " delta streams, " << report.violations.size()
              << " violations (seed " << options.seed << ")\n";
    for (const auto& v : report.violations) {
      std::cout << "  [" << v.failure_class << "] stream " << v.index
                << ": minimized " << v.original_jobs << " jobs / "
                << v.original_steps << " deltas -> " << v.base.num_jobs()
                << " / " << v.deltas.size();
      if (!v.repro_path.empty()) std::cout << " (" << v.repro_path << ")";
      std::cout << "\n    " << v.detail << '\n';
    }
    return report.violations.empty() ? 0 : 1;
  }

  const nat::verify::fuzz::FuzzReport report =
      nat::verify::fuzz::run_fuzz(options);

  std::cout << "fuzz_differential: " << report.instances_run
            << " instances, " << report.violations.size()
            << " violations (seed " << options.seed
            << (options.inject_budget_fault ? ", budget bug injected" : "")
            << ")\n";
  for (const auto& v : report.violations) {
    std::cout << "  [" << v.failure_class << "] iteration " << v.index
              << ": minimized " << v.original_jobs << " -> "
              << v.instance.num_jobs() << " jobs";
    if (!v.repro_path.empty()) std::cout << " (" << v.repro_path << ")";
    std::cout << "\n    " << v.detail << '\n';
  }

  if (options.inject_budget_fault) {
    // Self-test mode: the harness must catch the injected bug.
    if (report.violations.empty()) {
      std::cout << "FAIL: injected budget bug was not detected\n";
      return 1;
    }
    std::cout << "OK: injected budget bug detected and minimized\n";
    return 0;
  }
  return report.violations.empty() ? 0 : 1;
}
