// E6 — the Section 6 NP-completeness chain, executed:
//
//   Set Cover → Prefix Sum Cover → nested active-time,
//
// with exact solvers on both ends certifying that the optimum survives
// each hop, plus a size table showing the reduction is polynomial
// (machines p = dW, horizon nW) as claimed.
#include <iostream>

#include "baselines/exact.hpp"
#include "baselines/greedy.hpp"
#include "io/table.hpp"
#include "reductions/transforms.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

using namespace nat;

int main() {
  util::Rng rng(20220616);  // SPAA'22 vintage

  // Hop 1 equivalence sweep.
  int hop1_checked = 0;
  int hop1_ok = 0;
  for (int iter = 0; iter < 150; ++iter) {
    red::SetCoverInstance sc;
    sc.universe = static_cast<int>(rng.uniform_int(1, 6));
    const int n = static_cast<int>(rng.uniform_int(1, 5));
    for (int s = 0; s < n; ++s) {
      std::vector<int> set;
      for (int e = 0; e < sc.universe; ++e) {
        if (rng.chance(0.5)) set.push_back(e);
      }
      sc.sets.push_back(std::move(set));
    }
    const auto opt = red::setcover_minimum(sc);
    for (int k = 1; k <= n; ++k) {
      const red::PscInstance psc = red::setcover_to_psc(sc, k);
      const bool cover = opt.has_value() && *opt <= k;
      ++hop1_checked;
      hop1_ok += red::psc_feasible_brute_force(psc) == cover ? 1 : 0;
    }
  }
  std::cout << "# E6 — reduction chain verification\n\n"
            << "hop 1 (Set Cover <-> PSC): " << hop1_ok << "/"
            << hop1_checked << " (k, instance) cells agree\n";

  // Hop 2 equivalence sweep with exact solvers.
  int hop2_checked = 0;
  int hop2_ok = 0;
  int hop2_infeasible = 0;
  for (int iter = 0; iter < 60; ++iter) {
    red::PscInstance psc;
    const int d = static_cast<int>(rng.uniform_int(1, 3));
    const int n = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < n; ++i) {
      red::Vec u(d);
      std::int64_t cur = rng.uniform_int(1, 3);
      for (int j = 0; j < d; ++j) {
        u[j] = cur;
        cur = rng.uniform_int(1, cur);
      }
      psc.u.push_back(std::move(u));
    }
    red::Vec v(d);
    std::int64_t cur = rng.uniform_int(0, 4);
    for (int j = 0; j < d; ++j) {
      v[j] = cur;
      cur = rng.uniform_int(0, cur);
    }
    psc.v = std::move(v);
    psc.k = 1;
    const auto r = red::psc_to_active_time(psc);
    const auto min_k = red::psc_minimum_brute_force(psc);
    if (!min_k.has_value()) {
      ++hop2_infeasible;
      continue;
    }
    const auto opt = at::baselines::exact_opt_laminar(
        r.instance, at::baselines::ExactOptions{100'000'000});
    ++hop2_checked;
    if (opt.has_value() &&
        opt->optimum == r.non_special_slots + *min_k) {
      ++hop2_ok;
    }
  }
  std::cout << "hop 2 (PSC <-> active-time OPT): " << hop2_ok << "/"
            << hop2_checked << " instances agree (" << hop2_infeasible
            << " infeasible cases skipped on both sides)\n\n";

  // Reduction size table: polynomial blow-up, as Section 6 claims.
  std::cout << "# reduction size (Set Cover -> active-time, k = 2)\n\n";
  io::Table sizes({"universe d", "sets n", "W", "g = dW", "jobs",
                   "horizon nW"});
  for (int d : {2, 4, 6, 8}) {
    red::SetCoverInstance sc;
    sc.universe = d;
    for (int s = 0; s < d; ++s) {
      std::vector<int> set;
      for (int e = 0; e < d; ++e) {
        if ((e + s) % 2 == 0) set.push_back(e);
      }
      sc.sets.push_back(std::move(set));
    }
    const red::PscInstance psc = red::setcover_to_psc(sc, 2);
    const auto r = red::psc_to_active_time(psc);
    sizes.add_row({io::Table::num(static_cast<std::int64_t>(d)),
                   io::Table::num(static_cast<std::int64_t>(sc.sets.size())),
                   io::Table::num(r.W), io::Table::num(r.instance.g),
                   io::Table::num(
                       static_cast<std::int64_t>(r.instance.num_jobs())),
                   io::Table::num(r.instance.horizon().length())});
  }
  sizes.print_markdown(std::cout);
  const bool all_ok = hop1_ok == hop1_checked && hop2_ok == hop2_checked;
  std::cout << (all_ok ? "\nall equivalences verified.\n"
                       : "\nEQUIVALENCE FAILURES!\n");
  return all_ok ? 0 : 1;
}
