// bench_robust — the robust interval-time pipeline (docs/ROBUST.md)
// against the point solver it wraps.
//
// Three cell families:
//
//  * interval laminar / interval general: random_interval draws, each
//    solved twice — once as the stripped point instance through
//    solve_active_time, once with its [p_lo, p_hi] boxes through
//    solve_robust. The headline number is the overhead ratio
//    (robust wall / point wall): the robust pipeline adds a worst-case
//    feasibility flow, a lo-corner LP, and a hi-corner solve on top of
//    the nominal solve, so the ratio should sit near 3 and is gated by
//    the CI perf gate (tools/perf_gate.py, DOC_CEILINGS) on any
//    hardware. The sandwich LP(p_lo) <= ALG <= robust_hi is asserted on
//    every draw, as is bit-identity of the nominal schedule with the
//    point solve.
//  * degenerate point: point instances through solve_robust — the
//    degenerate path must be a transparent wrapper, so its overhead is
//    timed (and its bit-identity asserted) separately.
//
// Results land in BENCH_robust.json (--out): structural integers exact,
// seconds gated when the hardware stamp matches, overhead_ratio gated
// on any hardware.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "activetime/robust.hpp"
#include "activetime/solver.hpp"
#include "bench/common.hpp"
#include "io/table.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace nat;

namespace {

at::Instance interval_instance(int id, bool laminar) {
  util::Rng knobs(11000 + id);
  at::gen::RandomIntervalParams params;
  params.laminar = laminar;
  params.interval_probability = 0.8;
  if (laminar) {
    params.laminar_params.g = knobs.uniform_int(2, 4);
    params.laminar_params.max_depth = 3;
    params.laminar_params.max_children = 3;
    params.laminar_params.max_processing = 4;
  } else {
    params.general_params.g = knobs.uniform_int(2, 4);
    params.general_params.jobs = static_cast<int>(knobs.uniform_int(8, 18));
    params.general_params.horizon = knobs.uniform_int(12, 28);
    params.general_params.max_length = knobs.uniform_int(4, 10);
    params.general_params.max_processing = knobs.uniform_int(1, 4);
  }
  util::Rng rng(800 + id);
  return at::gen::random_interval(params, rng);
}

at::Instance strip_intervals(at::Instance instance) {
  for (at::Job& job : instance.jobs) {
    job.processing_lo = 0;
    job.processing_hi = 0;
  }
  return instance;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_robust.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") smoke = true;
    if (arg == "--out" && a + 1 < argc) out_path = argv[++a];
  }

  obs::Json doc = obs::Json::object();
  doc["schema"] = "nat-bench-robust-v1";
  doc["smoke"] = smoke;

  std::cout << "# bench_robust — interval-time certification vs the point"
               " solver\n\nOverhead of solve_robust (worst-case"
               " feasibility + lo-corner LP + hi-corner\nsolve) over the"
               " nominal point solve, and the width of the certified\n"
               "sandwich LP(p_lo) <= ALG <= robust_hi.\n\n";

  io::Table table({"cell", "instances", "jobs", "point s", "robust s",
                   "overhead", "avg width", "max width"});
  obs::Json cells_json = obs::Json::array();
  double total_point_s = 0.0;
  double total_robust_s = 0.0;

  struct Spec {
    std::string name;
    bool laminar;
    int count;
  };
  const std::vector<Spec> specs = {
      {"interval laminar", true, smoke ? 10 : 40},
      {"interval general", false, smoke ? 10 : 40},
  };
  for (const Spec& spec : specs) {
    std::int64_t jobs = 0;
    bench::RatioStats widths;  // (robust_hi - robust_lo) / max(1, ALG)

    // Point leg: the stripped instances through the plain dispatcher.
    util::Stopwatch point_watch;
    std::vector<at::ActiveTimeResult> point;
    point.reserve(static_cast<std::size_t>(spec.count));
    for (int id = 0; id < spec.count; ++id) {
      point.push_back(at::solve_active_time(
          strip_intervals(interval_instance(id, spec.laminar))));
    }
    const double point_s = point_watch.seconds();

    // Robust leg: the same draws with their boxes.
    util::Stopwatch robust_watch;
    for (int id = 0; id < spec.count; ++id) {
      const at::Instance instance = interval_instance(id, spec.laminar);
      jobs += instance.num_jobs();
      const at::RobustSolveResult res = at::solve_robust(instance);
      const at::ActiveTimeResult& p =
          point[static_cast<std::size_t>(id)];
      NAT_CHECK_MSG(res.nominal.schedule.assignment ==
                            p.schedule.assignment &&
                        res.nominal.active_slots == p.active_slots,
                    spec.name << ": nominal solve diverged from the point"
                                 " solver on id "
                              << id);
      NAT_CHECK_MSG(res.robust_lo <=
                            static_cast<double>(res.nominal.active_slots) +
                                1e-6 &&
                        res.nominal.active_slots <= res.robust_hi,
                    spec.name << ": sandwich violated on id " << id);
      widths.add(static_cast<double>(res.robust_hi) - res.robust_lo);
    }
    const double robust_s = robust_watch.seconds();
    total_point_s += point_s;
    total_robust_s += robust_s;
    const double overhead = robust_s / std::max(point_s, 1e-9);

    table.add_row({spec.name, io::Table::num(std::int64_t(spec.count)),
                   io::Table::num(jobs), io::Table::num(point_s, 4),
                   io::Table::num(robust_s, 4), io::Table::num(overhead, 2),
                   io::Table::num(widths.avg(), 2),
                   io::Table::num(widths.max, 2)});

    obs::Json j = obs::Json::object();
    j["name"] = spec.name;
    j["instances"] = static_cast<std::int64_t>(spec.count);
    j["jobs"] = jobs;
    j["point_seconds"] = point_s;
    j["robust_seconds"] = robust_s;
    j["overhead_ratio"] = overhead;
    j["avg_sandwich_width"] = widths.avg();
    j["max_sandwich_width"] = widths.max;
    cells_json.push_back(std::move(j));
  }

  // Degenerate path: point instances through solve_robust must be a
  // transparent (and cheap) wrapper around solve_active_time.
  {
    const int count = smoke ? 10 : 40;
    std::int64_t jobs = 0;
    util::Stopwatch point_watch;
    std::vector<at::ActiveTimeResult> point;
    point.reserve(static_cast<std::size_t>(count));
    for (int id = 0; id < count; ++id) {
      point.push_back(at::solve_active_time(bench::contended_instance(id, 3)));
    }
    const double point_s = point_watch.seconds();

    util::Stopwatch robust_watch;
    for (int id = 0; id < count; ++id) {
      const at::Instance instance = bench::contended_instance(id, 3);
      jobs += instance.num_jobs();
      const at::RobustSolveResult res = at::solve_robust(instance);
      const at::ActiveTimeResult& p = point[static_cast<std::size_t>(id)];
      NAT_CHECK_MSG(res.degenerate, "point instance missed the degenerate"
                                    " path on id "
                                        << id);
      NAT_CHECK_MSG(res.nominal.schedule.assignment ==
                            p.schedule.assignment &&
                        res.nominal.active_slots == p.active_slots &&
                        res.robust_hi == p.active_slots,
                    "degenerate robust solve diverged from the point solver"
                    " on id "
                        << id);
    }
    const double robust_s = robust_watch.seconds();
    const double overhead = robust_s / std::max(point_s, 1e-9);

    table.add_row({"degenerate point", io::Table::num(std::int64_t(count)),
                   io::Table::num(jobs), io::Table::num(point_s, 4),
                   io::Table::num(robust_s, 4), io::Table::num(overhead, 2),
                   "-", "-"});

    obs::Json j = obs::Json::object();
    j["name"] = "degenerate point";
    j["instances"] = static_cast<std::int64_t>(count);
    j["jobs"] = jobs;
    j["point_seconds"] = point_s;
    j["robust_seconds"] = robust_s;
    j["overhead_ratio"] = overhead;
    cells_json.push_back(std::move(j));
  }

  table.print_markdown(std::cout);
  doc["robust_cells"] = std::move(cells_json);
  // Headline: interval-cell overhead only (the degenerate path is a
  // separate contract — it must stay near 1 but is not the headline).
  const double overhead_ratio = total_robust_s / std::max(total_point_s, 1e-9);
  doc["overhead_ratio"] = overhead_ratio;
  std::cout << "\nrobust/point overhead ratio: " << overhead_ratio
            << " (nominal + feasibility flow + lo LP + hi solve)\n";

  bench::write_bench_json(doc, out_path);
  return 0;
}
