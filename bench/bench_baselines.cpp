// E4 — problem-history baselines vs the paper's algorithm.
//
// Reproduced shape: any minimal-feasible greedy stays within 3x OPT
// [CKM17]; careful orders behave like the 2-approximation of [KK18];
// the nested LP rounding wins on laminar instances. Since [KK18] is a
// brief announcement without a full rule specification, the harness
// additionally runs an adversarial random search for the worst greedy
// ratio per order (substitution documented in DESIGN.md §5).
#include <iostream>
#include <mutex>

#include "activetime/solver.hpp"
#include "baselines/exact.hpp"
#include "baselines/greedy.hpp"
#include "baselines/online.hpp"
#include "bench/common.hpp"
#include "io/table.hpp"
#include "util/thread_pool.hpp"

using namespace nat;
using at::baselines::DeactivationOrder;

namespace {

struct FamilyRow {
  std::string name;
  at::Instance (*make)(int, std::int64_t);
  std::int64_t g;
  int instances;
};

}  // namespace

int main() {
  const std::vector<FamilyRow> families = {
      {"loose laminar (g=3)", bench::loose_instance, 3, 50},
      {"contended (g=4)", bench::contended_instance, 4, 50},
      {"contended (g=8)", bench::contended_instance, 8, 50},
      {"unit jobs (g=3)", bench::unit_instance, 3, 50},
  };
  const std::vector<DeactivationOrder> orders = {
      DeactivationOrder::kLeftToRight, DeactivationOrder::kRightToLeft,
      DeactivationOrder::kRandom};

  std::cout << "# E4 — baselines vs nested LP rounding (avg ratio vs "
               "OPT; max in parentheses)\n\n";
  io::Table table({"family", "greedy L2R", "greedy R2L", "greedy random",
                   "LP rounding (paper)", "LP rounding + trim"});
  for (const FamilyRow& family : families) {
    std::vector<bench::RatioStats> greedy(orders.size());
    bench::RatioStats lp_round, lp_trim;
    std::mutex mu;
    util::parallel_for(0, static_cast<std::size_t>(family.instances),
                       [&](std::size_t id) {
      const at::Instance inst = family.make(static_cast<int>(id), family.g);
      auto opt = at::baselines::exact_opt_laminar(inst);
      if (!opt.has_value()) return;
      const double optv = static_cast<double>(opt->optimum);
      std::vector<double> ratios;
      for (DeactivationOrder order : orders) {
        auto r = at::baselines::greedy_minimal_feasible(inst, order, id);
        ratios.push_back(static_cast<double>(r.active_slots) / optv);
      }
      at::NestedSolveResult nested = at::solve_nested(inst);
      at::NestedSolverOptions trim_opt;
      trim_opt.trim_rounded = true;
      at::NestedSolveResult trimmed = at::solve_nested(inst, trim_opt);
      std::lock_guard lk(mu);
      for (std::size_t o = 0; o < orders.size(); ++o) {
        greedy[o].add(ratios[o]);
      }
      lp_round.add(static_cast<double>(nested.active_slots) / optv);
      lp_trim.add(static_cast<double>(trimmed.active_slots) / optv);
    });
    auto cell = [](const bench::RatioStats& s) {
      return io::Table::num(s.avg()) + " (" + io::Table::num(s.max) + ")";
    };
    table.add_row({family.name, cell(greedy[0]), cell(greedy[1]),
                   cell(greedy[2]), cell(lp_round), cell(lp_trim)});
  }
  table.print_markdown(std::cout);

  // Adversarial search: the worst greedy ratio found over a larger
  // randomized pool of contended instances (empirical stand-in for the
  // 2 - 1/g lower-bound family of [KK18]).
  std::cout << "\n# adversarial search (400 contended instances, g=4)\n\n";
  io::Table adv({"order", "worst ratio found", "3x bound intact"});
  for (DeactivationOrder order : orders) {
    bench::RatioStats stats;
    std::mutex mu;
    util::parallel_for(0, 400, [&](std::size_t id) {
      const at::Instance inst =
          bench::contended_instance(static_cast<int>(id), 4);
      auto opt = at::baselines::exact_opt_laminar(inst);
      if (!opt.has_value()) return;
      auto r = at::baselines::greedy_minimal_feasible(inst, order, id);
      std::lock_guard lk(mu);
      stats.add(static_cast<double>(r.active_slots) /
                static_cast<double>(opt->optimum));
    });
    adv.add_row({at::baselines::to_string(order),
                 io::Table::num(stats.max),
                 stats.max <= 3.0 + 1e-9 ? "yes" : "NO"});
  }
  adv.print_markdown(std::cout);

  // Price of non-clairvoyance: the lazy online heuristic vs offline
  // OPT — including how often adversarial arrivals defeat laziness
  // outright (the impossibility discussed in baselines/online.hpp).
  std::cout << "\n# online lazy activation (no competitive ratio "
               "claimed; see DESIGN.md §5)\n\n";
  io::Table online({"family", "survived", "failed", "avg ratio vs OPT",
                    "max ratio vs OPT"});
  for (const FamilyRow& family : families) {
    bench::RatioStats stats;
    int failed = 0;
    std::mutex mu;
    util::parallel_for(0, static_cast<std::size_t>(family.instances),
                       [&](std::size_t id) {
      const at::Instance inst = family.make(static_cast<int>(id), family.g);
      auto opt = at::baselines::exact_opt_laminar(inst);
      if (!opt.has_value()) return;
      auto r = at::baselines::lazy_online(inst);
      std::lock_guard lk(mu);
      if (!r.feasible) {
        ++failed;
        return;
      }
      stats.add(static_cast<double>(r.active_slots) /
                static_cast<double>(opt->optimum));
    });
    online.add_row({family.name,
                    io::Table::num(static_cast<std::int64_t>(stats.count)),
                    io::Table::num(static_cast<std::int64_t>(failed)),
                    io::Table::num(stats.avg()), io::Table::num(stats.max)});
  }
  online.print_markdown(std::cout);

  std::cout
      << "\nReading: on *random* instances every method is near-optimal "
         "— the paper's contribution is the worst-case certificate "
         "(9/5 < 2 [KK18] < 3 [CKM17]). The paper pipeline's rounding "
         "deliberately spends its whole 9/5 budget; the trim column "
         "shows the same algorithm with unneeded slots closed "
         "afterwards (guarantee preserved).\n";
  return 0;
}
