// bench_lp — the LP backends head to head on the repository's real
// LP families.
//
// For each cell, the same set of models is solved with the dense
// two-phase tableau (lp::solve), the dense bounded-variable tableau
// (lp::solve_bounded), and the sparse revised simplex
// (lp::solve_sparse, the default backend). Objectives are asserted to
// agree within 1e-9 relative per model; per-backend wall-clock plus the
// sparse backend's deterministic pivot / bound-flip / refactorization
// totals are recorded to BENCH_lp.json (--out) for the CI perf gate
// (tools/perf_gate.py, docs/PERFORMANCE.md).
//
// Model families:
//  * strong LPs of contended instances — fractional, ceiling-heavy,
//    the solve_nested hot path;
//  * strong LPs of deep forests (binary_nest / staircase) — many
//    nodes, extreme sparsity, where the revised simplex should win big;
//  * time-indexed CW LPs — wide dense-ish rows, the stress case for
//    sparse pricing.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "activetime/lp_relaxation.hpp"
#include "activetime/time_indexed_lp.hpp"
#include "activetime/tree.hpp"
#include "bench/common.hpp"
#include "io/table.hpp"
#include "lp/bounded_simplex.hpp"
#include "lp/sparse_simplex.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

using namespace nat;

namespace {

constexpr double kAgreeTol = 1e-9;

at::LaminarForest make_forest(const at::Instance& inst) {
  at::LaminarForest f = at::LaminarForest::build(inst);
  f.canonicalize();
  return f;
}

struct Cell {
  std::string name;
  std::vector<lp::Model> models;
};

std::vector<Cell> build_cells(bool smoke) {
  std::vector<Cell> cells;

  {
    Cell cell;
    cell.name = "strong LP, contended (g=6)";
    const int n = smoke ? 4 : 24;
    for (int id = 0; id < n; ++id) {
      cell.models.push_back(
          at::build_strong_lp(make_forest(bench::contended_instance(id, 6)))
              .model);
    }
    cells.push_back(std::move(cell));
  }
  {
    Cell cell;
    cell.name = "strong LP, loose laminar (g=3)";
    const int n = smoke ? 4 : 24;
    for (int id = 0; id < n; ++id) {
      cell.models.push_back(
          at::build_strong_lp(make_forest(bench::loose_instance(id, 3)))
              .model);
    }
    cells.push_back(std::move(cell));
  }
  {
    Cell cell;
    cell.name = "strong LP, deep forests";
    // Smoke stays big enough that the cell's seconds clear the perf
    // gate's absolute noise slack — it's the cell whose wall-clock the
    // gate (and the injected-slowdown self-test) actually bites on.
    const int depth = smoke ? 5 : 6;
    const int levels = smoke ? 16 : 24;
    cell.models.push_back(
        at::build_strong_lp(make_forest(at::gen::binary_nest(4, depth)))
            .model);
    cell.models.push_back(
        at::build_strong_lp(make_forest(at::gen::staircase(3, levels, 2)))
            .model);
    cells.push_back(std::move(cell));
  }
  {
    Cell cell;
    cell.name = "time-indexed CW LP (g=4)";
    const int n = smoke ? 2 : 8;
    for (int id = 0; id < n; ++id) {
      cell.models.push_back(
          at::build_time_indexed_lp(bench::contended_instance(id, 4),
                                    at::CeilingIntervals::kEventAligned)
              .model);
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_lp.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") smoke = true;
    if (arg == "--out" && a + 1 < argc) out_path = argv[++a];
  }

  obs::Json doc = obs::Json::object();
  doc["schema"] = "nat-bench-lp-v1";
  doc["smoke"] = smoke;

  std::cout << "# bench_lp — dense vs bounded vs sparse revised simplex\n\n"
            << "Same models through all three floating-point backends;"
               " objectives asserted\nidentical to "
            << kAgreeTol << " relative. Pivot counts are deterministic.\n\n";

  io::Table table({"cell", "models", "rows", "cols", "dense s", "bounded s",
                   "sparse s", "speedup", "pivots", "refactor"});
  obs::Json cells_json = obs::Json::array();

  for (Cell& cell : build_cells(smoke)) {
    std::int64_t rows = 0, cols = 0;
    for (const lp::Model& m : cell.models) {
      rows += m.num_rows();
      cols += m.num_variables();
    }

    std::vector<lp::Solution> dense_sols;
    util::Stopwatch dense_watch;
    for (const lp::Model& m : cell.models) dense_sols.push_back(lp::solve(m));
    const double dense_s = dense_watch.seconds();

    util::Stopwatch bounded_watch;
    for (const lp::Model& m : cell.models) lp::solve_bounded(m);
    const double bounded_s = bounded_watch.seconds();

    lp::SparseStats stats;  // cell totals (solve_sparse reports per solve)
    std::int64_t dense_iterations = 0;
    util::Stopwatch sparse_watch;
    for (std::size_t k = 0; k < cell.models.size(); ++k) {
      lp::SparseStats one;
      lp::Solution s = lp::solve_sparse(cell.models[k], {}, &one);
      stats.pivots += one.pivots;
      stats.bound_flips += one.bound_flips;
      stats.degenerate += one.degenerate;
      stats.refactorizations += one.refactorizations;
      const lp::Solution& d = dense_sols[k];
      NAT_CHECK_MSG(s.status == d.status,
                    cell.name << " #" << k << ": status mismatch");
      if (d.status == lp::Status::kOptimal) {
        NAT_CHECK_MSG(
            std::abs(s.objective - d.objective) <=
                kAgreeTol * (1.0 + std::abs(d.objective)),
            cell.name << " #" << k << ": sparse=" << s.objective
                      << " dense=" << d.objective);
      }
    }
    const double sparse_s = sparse_watch.seconds();
    for (const lp::Solution& d : dense_sols) dense_iterations += d.iterations;

    const double speedup = sparse_s > 0 ? dense_s / sparse_s : 0.0;
    table.add_row(
        {cell.name, io::Table::num(std::int64_t(cell.models.size())),
         io::Table::num(rows), io::Table::num(cols),
         io::Table::num(dense_s, 4), io::Table::num(bounded_s, 4),
         io::Table::num(sparse_s, 4), io::Table::num(speedup, 2),
         io::Table::num(stats.pivots), io::Table::num(stats.refactorizations)});

    obs::Json j = obs::Json::object();
    j["name"] = cell.name;
    j["models"] = std::int64_t(cell.models.size());
    j["rows"] = rows;
    j["cols"] = cols;
    j["dense_seconds"] = dense_s;
    j["bounded_seconds"] = bounded_s;
    j["sparse_seconds"] = sparse_s;
    j["speedup_vs_dense"] = speedup;
    j["dense_iterations"] = dense_iterations;
    j["sparse_pivots"] = stats.pivots;
    j["sparse_bound_flips"] = stats.bound_flips;
    j["sparse_refactorizations"] = stats.refactorizations;
    cells_json.push_back(std::move(j));
  }
  table.print_markdown(std::cout);
  doc["lp_cells"] = std::move(cells_json);

  bench::write_bench_json(doc, out_path);
  return 0;
}
