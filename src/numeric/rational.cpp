#include "numeric/rational.hpp"

#include <cmath>
#include <ostream>

#include "util/check.hpp"

namespace nat::num {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  NAT_CHECK_MSG(!den_.is_zero(), "Rational: zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_.sign() < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ /= g;
    den_ /= g;
  }
}

Rational Rational::operator-() const {
  Rational r = *this;
  r.num_ = -r.num_;
  return r;
}

Rational& Rational::operator+=(const Rational& o) {
  num_ = num_ * o.den_ + o.num_ * den_;
  den_ = den_ * o.den_;
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& o) {
  num_ = num_ * o.den_ - o.num_ * den_;
  den_ = den_ * o.den_;
  normalize();
  return *this;
}

Rational& Rational::operator*=(const Rational& o) {
  num_ *= o.num_;
  den_ *= o.den_;
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& o) {
  NAT_CHECK_MSG(!o.is_zero(), "Rational: division by zero");
  num_ *= o.den_;
  den_ *= o.num_;
  normalize();
  return *this;
}

int Rational::compare(const Rational& a, const Rational& b) {
  // Denominators are positive, so cross-multiplication preserves order.
  return BigInt::compare(a.num_ * b.den_, b.num_ * a.den_);
}

BigInt Rational::floor() const {
  BigInt q, r;
  BigInt::div_mod(num_, den_, q, r);
  if (r.sign() < 0) q -= BigInt(1);  // truncation rounds toward zero
  return q;
}

BigInt Rational::ceil() const {
  BigInt q, r;
  BigInt::div_mod(num_, den_, q, r);
  if (r.sign() > 0) q += BigInt(1);
  return q;
}

double Rational::to_double() const {
  if (num_.is_zero()) return 0.0;
  // Scale |num|/den so the integer quotient carries 63-64 significant
  // bits, divide in BigInt, and apply the power of two with ldexp. The
  // naive num.to_double()/den.to_double() overflows its intermediates:
  // a subnormal's denominator (~2^1074) converts to inf and the value
  // collapses to 0. This path is exact for dyadic rationals (so
  // from_double_exact round-trips bit-for-bit, subnormals included) and
  // within ~1 ulp otherwise; out-of-range magnitudes saturate to
  // +/-inf / +/-0 through ldexp.
  const long nb = static_cast<long>(num_.bit_length());
  const long db = static_cast<long>(den_.bit_length());
  const long shift = 63 - (nb - db);
  BigInt n = num_.abs();
  BigInt d = den_;
  if (shift > 0) {
    n = n.shifted_left(static_cast<std::size_t>(shift));
  } else if (shift < 0) {
    d = d.shifted_left(static_cast<std::size_t>(-shift));
  }
  const BigInt q = n / d;  // in [2^62, 2^64)
  const double r = std::ldexp(q.to_double(), static_cast<int>(-shift));
  return num_.sign() < 0 ? -r : r;
}

std::string Rational::to_string() const {
  if (is_integer()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

std::ostream& operator<<(std::ostream& os, const Rational& v) {
  return os << v.to_string();
}

Rational Rational::from_double_exact(double v) {
  NAT_CHECK_MSG(std::isfinite(v), "from_double_exact: non-finite input");
  if (v == 0.0) return Rational(0);
  int exp = 0;
  double mant = std::frexp(v, &exp);  // v = mant * 2^exp, |mant| in [0.5, 1)
  // Scale the mantissa to a 53-bit integer; exactly representable.
  auto mant_int = static_cast<std::int64_t>(std::ldexp(mant, 53));
  exp -= 53;
  BigInt num(mant_int);
  BigInt den(1);
  const BigInt two(2);
  for (int i = 0; i < exp; ++i) num *= two;
  for (int i = 0; i < -exp; ++i) den *= two;
  return Rational(std::move(num), std::move(den));
}

}  // namespace nat::num
