// Arbitrary-precision signed integer (sign + base-2^32 magnitude).
//
// This is the substrate for exact rational arithmetic in the exact
// simplex solver (src/lp/exact_simplex.*), which certifies LP optima
// on small instances where floating-point values feed integrality-gap
// tables. Schoolbook algorithms throughout (Knuth vol.2 algorithm D for
// division): LP coefficients here stay small, so asymptotics do not
// matter — correctness does, and the test suite cross-checks every
// operation against __int128.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace nat::num {

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t v);  // NOLINT: implicit by design, mirrors int
  static BigInt from_string(std::string_view s);

  bool is_zero() const { return limbs_.empty(); }
  /// -1, 0, +1.
  int sign() const { return limbs_.empty() ? 0 : (negative_ ? -1 : 1); }

  BigInt operator-() const;
  BigInt abs() const;

  BigInt& operator+=(const BigInt& o);
  BigInt& operator-=(const BigInt& o);
  BigInt& operator*=(const BigInt& o);
  BigInt& operator/=(const BigInt& o);  // truncates toward zero
  BigInt& operator%=(const BigInt& o);  // sign follows dividend

  friend BigInt operator+(BigInt a, const BigInt& b) { return a += b; }
  friend BigInt operator-(BigInt a, const BigInt& b) { return a -= b; }
  friend BigInt operator*(BigInt a, const BigInt& b) { return a *= b; }
  friend BigInt operator/(BigInt a, const BigInt& b) { return a /= b; }
  friend BigInt operator%(BigInt a, const BigInt& b) { return a %= b; }

  /// Quotient and remainder in one division (rem sign = dividend sign).
  static void div_mod(const BigInt& a, const BigInt& b, BigInt& quot,
                      BigInt& rem);

  /// Three-way compare: negative/zero/positive as a<b / a==b / a>b.
  static int compare(const BigInt& a, const BigInt& b);

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return compare(a, b) == 0;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) {
    return compare(a, b) != 0;
  }
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return compare(a, b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return compare(a, b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return compare(a, b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return compare(a, b) >= 0;
  }

  static BigInt gcd(BigInt a, BigInt b);  // non-negative result

  /// Bits in the magnitude: floor(log2 |v|) + 1, and 0 for zero.
  std::size_t bit_length() const;
  /// this * 2^k (sign preserved).
  BigInt shifted_left(std::size_t k) const;

  /// True iff the value fits in int64_t.
  bool fits_int64() const;
  /// Value as int64_t; NAT_CHECKs fits_int64().
  std::int64_t to_int64() const;
  /// Nearest double (may lose precision / overflow to inf for huge values).
  double to_double() const;

  std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const BigInt& v);

 private:
  // Little-endian base-2^32 magnitude; empty vector means zero, and a
  // zero value always has negative_ == false (canonical form).
  std::vector<std::uint32_t> limbs_;
  bool negative_ = false;

  void trim();
  static int compare_mag(const std::vector<std::uint32_t>& a,
                         const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> add_mag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> sub_mag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_mag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  static void div_mod_mag(const std::vector<std::uint32_t>& a,
                          const std::vector<std::uint32_t>& b,
                          std::vector<std::uint32_t>& quot,
                          std::vector<std::uint32_t>& rem);
};

}  // namespace nat::num
