// Exact rational number: normalized BigInt fraction (den > 0, gcd = 1).
//
// Used by the exact simplex solver and by tests that certify LP values
// on integrality-gap families (e.g. "the CW LP value on the Lemma 5.1
// family is exactly g+2"), where floating point would only show
// "close to".
#pragma once

#include <iosfwd>
#include <string>

#include "numeric/bigint.hpp"

namespace nat::num {

class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  Rational(std::int64_t v) : num_(v), den_(1) {}  // NOLINT: implicit
  Rational(BigInt num, BigInt den);
  static Rational from_int64(std::int64_t num, std::int64_t den) {
    return Rational(BigInt(num), BigInt(den));
  }

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }
  int sign() const { return num_.sign(); }
  bool is_integer() const { return den_ == BigInt(1); }

  Rational operator-() const;
  Rational& operator+=(const Rational& o);
  Rational& operator-=(const Rational& o);
  Rational& operator*=(const Rational& o);
  Rational& operator/=(const Rational& o);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }

  static int compare(const Rational& a, const Rational& b);
  friend bool operator==(const Rational& a, const Rational& b) {
    return compare(a, b) == 0;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return compare(a, b) != 0;
  }
  friend bool operator<(const Rational& a, const Rational& b) {
    return compare(a, b) < 0;
  }
  friend bool operator<=(const Rational& a, const Rational& b) {
    return compare(a, b) <= 0;
  }
  friend bool operator>(const Rational& a, const Rational& b) {
    return compare(a, b) > 0;
  }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return compare(a, b) >= 0;
  }

  /// Largest integer <= value / smallest integer >= value.
  BigInt floor() const;
  BigInt ceil() const;

  double to_double() const;
  /// "p/q" (or just "p" when q == 1).
  std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const Rational& v);

  /// Exact value of a finite double (every finite double is m * 2^e).
  static Rational from_double_exact(double v);

 private:
  BigInt num_;
  BigInt den_;  // invariant: den_ > 0, gcd(|num_|, den_) == 1
  void normalize();
};

}  // namespace nat::num
