#include "numeric/bigint.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <ostream>

#include "util/check.hpp"

namespace nat::num {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}

BigInt::BigInt(std::int64_t v) {
  negative_ = v < 0;
  // Careful with INT64_MIN: negate in unsigned space.
  std::uint64_t mag =
      negative_ ? ~static_cast<std::uint64_t>(v) + 1 : static_cast<std::uint64_t>(v);
  while (mag != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(mag & 0xffffffffULL));
    mag >>= 32;
  }
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::from_string(std::string_view s) {
  NAT_CHECK_MSG(!s.empty(), "BigInt::from_string: empty string");
  bool neg = false;
  std::size_t pos = 0;
  if (s[0] == '+' || s[0] == '-') {
    neg = s[0] == '-';
    pos = 1;
  }
  NAT_CHECK_MSG(pos < s.size(), "BigInt::from_string: sign only");
  BigInt r;
  for (; pos < s.size(); ++pos) {
    NAT_CHECK_MSG(std::isdigit(static_cast<unsigned char>(s[pos])),
                  "BigInt::from_string: bad digit in '" << s << "'");
    r *= BigInt(10);
    r += BigInt(s[pos] - '0');
  }
  if (neg && !r.is_zero()) r.negative_ = true;
  return r;
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::compare_mag(const std::vector<std::uint32_t>& a,
                        const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<std::uint32_t> BigInt::add_mag(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  const auto& lo = a.size() >= b.size() ? b : a;
  const auto& hi = a.size() >= b.size() ? a : b;
  std::vector<std::uint32_t> r;
  r.reserve(hi.size() + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < hi.size(); ++i) {
    std::uint64_t sum = carry + hi[i] + (i < lo.size() ? lo[i] : 0);
    r.push_back(static_cast<std::uint32_t>(sum & 0xffffffffULL));
    carry = sum >> 32;
  }
  if (carry) r.push_back(static_cast<std::uint32_t>(carry));
  return r;
}

std::vector<std::uint32_t> BigInt::sub_mag(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  NAT_DCHECK(compare_mag(a, b) >= 0);
  std::vector<std::uint32_t> r;
  r.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    r.push_back(static_cast<std::uint32_t>(diff));
  }
  while (!r.empty() && r.back() == 0) r.pop_back();
  return r;
}

std::vector<std::uint32_t> BigInt::mul_mag(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> r(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(a[i]) * b[j] + r[i + j] +
                          carry;
      r[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry) {
      std::uint64_t cur = r[k] + carry;
      r[k] = static_cast<std::uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
      ++k;
    }
  }
  while (!r.empty() && r.back() == 0) r.pop_back();
  return r;
}

// Knuth TAOCP vol.2 algorithm D, base 2^32.
void BigInt::div_mod_mag(const std::vector<std::uint32_t>& a,
                         const std::vector<std::uint32_t>& b,
                         std::vector<std::uint32_t>& quot,
                         std::vector<std::uint32_t>& rem) {
  NAT_CHECK_MSG(!b.empty(), "BigInt division by zero");
  quot.clear();
  rem.clear();
  if (compare_mag(a, b) < 0) {
    rem = a;
    return;
  }
  if (b.size() == 1) {
    // Short division by a single limb.
    quot.assign(a.size(), 0);
    std::uint64_t r = 0;
    for (std::size_t i = a.size(); i-- > 0;) {
      std::uint64_t cur = (r << 32) | a[i];
      quot[i] = static_cast<std::uint32_t>(cur / b[0]);
      r = cur % b[0];
    }
    while (!quot.empty() && quot.back() == 0) quot.pop_back();
    if (r) rem.push_back(static_cast<std::uint32_t>(r));
    return;
  }

  // Normalize so the divisor's top limb has its high bit set.
  int shift = 0;
  for (std::uint32_t top = b.back(); !(top & 0x80000000u); top <<= 1) ++shift;
  const std::size_t n = b.size();
  const std::size_t m = a.size() - n;

  auto shl = [shift](const std::vector<std::uint32_t>& v) {
    std::vector<std::uint32_t> out(v.size() + 1, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] |= static_cast<std::uint32_t>(static_cast<std::uint64_t>(v[i])
                                           << shift);
      if (shift)
        out[i + 1] |= static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(v[i]) >> (32 - shift));
    }
    return out;
  };

  std::vector<std::uint32_t> u = shl(a);            // size a.size()+1
  std::vector<std::uint32_t> v = shl(b);            // top limb normalized
  v.resize(n);                                      // drop the spare limb
  NAT_DCHECK(v.back() & 0x80000000u);

  quot.assign(m + 1, 0);
  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate quotient digit qhat from the top two limbs of u.
    std::uint64_t top2 =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = top2 / v[n - 1];
    std::uint64_t rhat = top2 % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply-subtract qhat*v from u[j..j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t prod = qhat * v[i] + carry;
      carry = prod >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                          static_cast<std::int64_t>(prod & 0xffffffffULL) -
                          borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t diff = static_cast<std::int64_t>(u[j + n]) -
                        static_cast<std::int64_t>(carry) - borrow;
    if (diff < 0) {
      // qhat was one too large (rare): add v back and decrement qhat.
      diff += static_cast<std::int64_t>(kBase);
      --qhat;
      std::uint64_t c2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = static_cast<std::uint64_t>(u[i + j]) + v[i] + c2;
        u[i + j] = static_cast<std::uint32_t>(sum & 0xffffffffULL);
        c2 = sum >> 32;
      }
      diff += static_cast<std::int64_t>(c2);
      diff &= static_cast<std::int64_t>(kBase) - 1;
    }
    u[j + n] = static_cast<std::uint32_t>(diff);
    quot[j] = static_cast<std::uint32_t>(qhat);
  }
  while (!quot.empty() && quot.back() == 0) quot.pop_back();

  // Denormalize the remainder (shift right).
  rem.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  if (shift) {
    for (std::size_t i = 0; i < n; ++i) {
      rem[i] >>= shift;
      if (i + 1 < n)
        rem[i] |= static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(rem.size() > i + 1 ? u[i + 1] : 0)
            << (32 - shift));
    }
  }
  while (!rem.empty() && rem.back() == 0) rem.pop_back();
}

BigInt BigInt::operator-() const {
  BigInt r = *this;
  if (!r.is_zero()) r.negative_ = !r.negative_;
  return r;
}

BigInt BigInt::abs() const {
  BigInt r = *this;
  r.negative_ = false;
  return r;
}

BigInt& BigInt::operator+=(const BigInt& o) {
  if (negative_ == o.negative_) {
    limbs_ = add_mag(limbs_, o.limbs_);
  } else {
    int c = compare_mag(limbs_, o.limbs_);
    if (c == 0) {
      limbs_.clear();
      negative_ = false;
    } else if (c > 0) {
      limbs_ = sub_mag(limbs_, o.limbs_);
    } else {
      limbs_ = sub_mag(o.limbs_, limbs_);
      negative_ = o.negative_;
    }
  }
  trim();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& o) { return *this += -o; }

BigInt& BigInt::operator*=(const BigInt& o) {
  negative_ = negative_ != o.negative_;
  limbs_ = mul_mag(limbs_, o.limbs_);
  trim();
  return *this;
}

void BigInt::div_mod(const BigInt& a, const BigInt& b, BigInt& quot,
                     BigInt& rem) {
  std::vector<std::uint32_t> q, r;
  div_mod_mag(a.limbs_, b.limbs_, q, r);
  quot.limbs_ = std::move(q);
  quot.negative_ = a.negative_ != b.negative_;
  quot.trim();
  rem.limbs_ = std::move(r);
  rem.negative_ = a.negative_;
  rem.trim();
}

BigInt& BigInt::operator/=(const BigInt& o) {
  BigInt q, r;
  div_mod(*this, o, q, r);
  *this = std::move(q);
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& o) {
  BigInt q, r;
  div_mod(*this, o, q, r);
  *this = std::move(r);
  return *this;
}

int BigInt::compare(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_) return a.negative_ ? -1 : 1;
  int c = compare_mag(a.limbs_, b.limbs_);
  return a.negative_ ? -c : c;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt q, r;
    div_mod(a, b, q, r);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();  // non-zero by the trim invariant
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

BigInt BigInt::shifted_left(std::size_t k) const {
  if (is_zero() || k == 0) return *this;
  BigInt out;
  out.negative_ = negative_;
  const std::size_t limb_shift = k / 32;
  const unsigned bit_shift = static_cast<unsigned>(k % 32);
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

bool BigInt::fits_int64() const {
  if (limbs_.size() > 2) return false;
  if (limbs_.size() < 2) return true;
  std::uint64_t mag =
      (static_cast<std::uint64_t>(limbs_[1]) << 32) | limbs_[0];
  if (negative_) return mag <= 0x8000000000000000ULL;
  return mag <= 0x7fffffffffffffffULL;
}

std::int64_t BigInt::to_int64() const {
  NAT_CHECK_MSG(fits_int64(), "BigInt::to_int64 overflow: " << to_string());
  std::uint64_t mag = 0;
  if (!limbs_.empty()) mag = limbs_[0];
  if (limbs_.size() > 1) mag |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return negative_ ? -static_cast<std::int64_t>(mag - 1) - 1
                   : static_cast<std::int64_t>(mag);
}

double BigInt::to_double() const {
  double r = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    r = r * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -r : r;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  std::vector<std::uint32_t> mag = limbs_;
  std::string digits;
  // Repeated short division by 10^9 to pull out decimal chunks.
  while (!mag.empty()) {
    std::uint64_t rem = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<std::uint32_t>(cur / 1000000000ULL);
      rem = cur % 1000000000ULL;
    }
    while (!mag.empty() && mag.back() == 0) mag.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.to_string();
}

}  // namespace nat::num
