// RAII wall-clock trace spans with parent links and a bounded buffer.
//
// A Span measures the wall time between its construction and
// destruction (util::Stopwatch underneath) and records itself into a
// process-global, mutex-guarded, bounded buffer on close. Spans nest:
// each thread keeps a stack of open spans, and a new span's parent is
// the innermost open span on the same thread (ids are assigned at
// construction, so a parent's id is known before it closes even though
// children are recorded first).
//
// The buffer is bounded (default 4096 records); once full, further
// spans are counted as dropped rather than recorded, so instrumented
// hot loops cannot grow memory without bound. Span construction costs
// one clock read + a relaxed id fetch; recording takes the buffer lock
// once at destruction. Do not create spans inside per-element inner
// loops — use counters there and span the enclosing stage instead.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/stopwatch.hpp"

namespace nat::obs {

struct SpanRecord {
  std::string name;
  std::int64_t id = 0;        // construction order, process-wide
  std::int64_t parent = -1;   // id of the enclosing span, -1 at root
  int depth = 0;              // nesting depth on the owning thread
  std::int64_t start_ns = 0;  // relative to the process trace epoch
  std::int64_t dur_ns = 0;
};

class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  std::int64_t id() const { return id_; }

 private:
  std::string name_;
  util::Stopwatch watch_;
  std::int64_t id_ = 0;
  std::int64_t parent_ = -1;
  int depth_ = 0;
  std::int64_t start_ns_ = 0;
};

/// Copy of all recorded (closed) spans, in recording order — children
/// before their parents, since a span is recorded when it closes.
std::vector<SpanRecord> spans_snapshot();

/// Discards all recorded spans and the dropped-span count. Open spans
/// are unaffected (they record as usual when they close).
void clear_spans();

/// Caps the record buffer; excess spans are dropped, not recorded.
void set_span_capacity(std::size_t capacity);

/// Spans dropped since the last clear_spans() because the buffer was full.
std::int64_t spans_dropped();

}  // namespace nat::obs
