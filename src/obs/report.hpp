// JSON run reports for solver pipelines.
//
// Two pieces, both zero-dependency:
//
//  * Json — a minimal ordered JSON value with a serializer (dump) and a
//    strict recursive-descent parser (parse). Object keys keep
//    insertion order so reports diff cleanly. Non-finite doubles
//    serialize as null (JSON has no NaN/Inf).
//
//  * run_report — packages one solver run as a single JSON object:
//    instance stats, the run's headline numbers (LP objective, rounded
//    cost, approximation ratio vs the LP lower bound), every registered
//    counter and gauge (counters.hpp), and all recorded trace spans
//    (trace.hpp). Callers reset_all() + clear_spans() before the run so
//    the report is scoped to it. The schema is documented in
//    docs/OBSERVABILITY.md and guarded by tests/test_obs.cpp.
//
// RunSummary is plain numbers on purpose: obs/ sits below activetime/
// in the dependency order, so solver front-ends (examples, bench)
// translate their result structs into a RunSummary rather than obs
// linking against them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nat::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;
  Json(bool v) : type_(Type::kBool), bool_(v) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(std::int64_t v) : type_(Type::kInt), int_(v) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(const char* v) : type_(Type::kString), string_(v) {}
  Json(std::string v) : type_(Type::kString), string_(std::move(v)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }

  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;       // ints widen
  const std::string& as_string() const;

  /// Object access. operator[] inserts a null member when absent
  /// (making `j["a"]["b"] = 1` work); find returns nullptr when absent.
  Json& operator[](std::string_view key);
  const Json* find(std::string_view key) const;

  /// Array access.
  void push_back(Json v);
  std::size_t size() const;       // elements (array) or members (object)
  const Json& at(std::size_t i) const;  // array element
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Serializes; indent < 0 is compact, otherwise pretty with that
  /// many spaces per level.
  std::string dump(int indent = -1) const;

  /// Strict parse of a complete JSON document. Throws util::CheckError
  /// on malformed input or trailing garbage.
  static Json parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Headline numbers of one solver run; fill what applies and leave the
/// rest at their defaults (negative / NaN sentinels serialize as null).
struct RunSummary {
  std::string solver;  // "nested", "greedy", "exact", ...

  // Instance stats.
  std::int64_t jobs = 0;
  std::int64_t g = 0;
  std::int64_t horizon_lo = 0;
  std::int64_t horizon_hi = 0;
  std::int64_t volume = 0;
  std::int64_t volume_lower_bound = 0;
  bool laminar = false;

  // Outcome.
  std::int64_t active_slots = -1;   // rounded cost; -1 when not solved
  double lp_objective = -1.0;       // LP lower bound; < 0 when unused
  std::int64_t lp_iterations = -1;
  std::int64_t repairs = -1;

  // Robust interval-time certificate (docs/ROBUST.md); robust_hi = -1
  // means the run was not robust and neither field serializes.
  double robust_lo = -1.0;
  std::int64_t robust_hi = -1;
};

/// Builds the full report object: {"schema", "instance", "run",
/// "counters", "gauges", "spans"}. Reads the current counter/gauge
/// registries and the span buffer.
Json run_report(const RunSummary& summary);

/// run_report + pretty-print to `os` with a trailing newline.
void write_report(std::ostream& os, const RunSummary& summary);

}  // namespace nat::obs
