#include "obs/report.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <system_error>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace nat::obs {

// --- Json accessors --------------------------------------------------------

bool Json::as_bool() const {
  NAT_CHECK_MSG(type_ == Type::kBool, "json: not a bool");
  return bool_;
}

std::int64_t Json::as_int() const {
  NAT_CHECK_MSG(type_ == Type::kInt, "json: not an integer");
  return int_;
}

double Json::as_double() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  NAT_CHECK_MSG(type_ == Type::kDouble, "json: not a number");
  return double_;
}

const std::string& Json::as_string() const {
  NAT_CHECK_MSG(type_ == Type::kString, "json: not a string");
  return string_;
}

Json& Json::operator[](std::string_view key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  NAT_CHECK_MSG(type_ == Type::kObject, "json: not an object");
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(std::string(key), Json());
  return object_.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  NAT_CHECK_MSG(type_ == Type::kArray, "json: not an array");
  array_.push_back(std::move(v));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

const Json& Json::at(std::size_t i) const {
  NAT_CHECK_MSG(type_ == Type::kArray, "json: not an array");
  NAT_CHECK_MSG(i < array_.size(), "json: index " << i << " out of range");
  return array_[i];
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  NAT_CHECK_MSG(type_ == Type::kObject, "json: not an object");
  return object_;
}

// --- serialization ---------------------------------------------------------

namespace {

void escape_to(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_to(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  // std::to_chars, not snprintf("%g"): printf obeys LC_NUMERIC, so a
  // host locale like de_DE.UTF-8 would emit "0,5" and corrupt every
  // JSONL record. to_chars is locale-independent and shortest
  // round-trip by construction.
  char buf[64];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof buf, v);
  NAT_CHECK_MSG(r.ec == std::errc(), "json: to_chars failed");
  out.append(buf, r.ptr);
}

}  // namespace

namespace {

void dump_to(const Json& j, std::string& out, int indent, int depth);

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

void dump_to(const Json& j, std::string& out, int indent, int depth) {
  switch (j.type()) {
    case Json::Type::kNull:
      out += "null";
      break;
    case Json::Type::kBool:
      out += j.as_bool() ? "true" : "false";
      break;
    case Json::Type::kInt:
      out += std::to_string(j.as_int());
      break;
    case Json::Type::kDouble:
      number_to(out, j.as_double());
      break;
    case Json::Type::kString:
      escape_to(out, j.as_string());
      break;
    case Json::Type::kArray: {
      if (j.size() == 0) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < j.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        dump_to(j.at(i), out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Json::Type::kObject: {
      if (j.size() == 0) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : j.members()) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_to(out, k);
        out += indent < 0 ? ":" : ": ";
        dump_to(v, out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(*this, out, indent, 0);
  return out;
}

// --- parsing ---------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    NAT_CHECK_MSG(pos_ == text_.size(),
                  "json: trailing characters at offset " << pos_);
    return v;
  }

 private:
  char peek() {
    NAT_CHECK_MSG(pos_ < text_.size(), "json: unexpected end of input");
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    NAT_CHECK_MSG(take() == c, "json: expected '" << c << "' at offset "
                                                  << (pos_ - 1));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (consume_literal("null")) return Json();
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        char e = take();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code += static_cast<unsigned>(h - 'A' + 10);
              else
                NAT_CHECK_MSG(false, "json: bad \\u escape");
            }
            // Reports only ever emit \u00xx for control characters;
            // decode the Latin-1 range and reject the rest.
            NAT_CHECK_MSG(code < 0x80, "json: unsupported \\u escape");
            out += static_cast<char>(code);
            break;
          }
          default:
            NAT_CHECK_MSG(false, "json: bad escape '\\" << e << "'");
        }
      } else {
        NAT_CHECK_MSG(static_cast<unsigned char>(c) >= 0x20,
                      "json: raw control character in string");
        out += c;
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    NAT_CHECK_MSG(pos_ > start, "json: expected a value at offset " << pos_);
    // std::from_chars, not stoll/stod: the sto* family routes through
    // strtod and honors LC_NUMERIC, so records written with '.' would
    // fail to parse back under a comma-decimal locale. from_chars is
    // locale-independent and round-trips what number_to emits exactly.
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t iv = 0;
      const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), iv);
      NAT_CHECK_MSG(r.ec == std::errc() && r.ptr == tok.data() + tok.size(),
                    "json: bad number '" << std::string(tok) << "'");
      return Json(iv);
    }
    double dv = 0.0;
    const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), dv);
    NAT_CHECK_MSG(r.ec == std::errc() && r.ptr == tok.data() + tok.size(),
                  "json: bad number '" << std::string(tok) << "'");
    return Json(dv);
  }

  Json parse_array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(parse_value());
      skip_ws();
      char c = take();
      if (c == ']') return out;
      NAT_CHECK_MSG(c == ',', "json: expected ',' or ']' in array");
    }
  }

  Json parse_object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out[key] = parse_value();
      skip_ws();
      char c = take();
      if (c == '}') return out;
      NAT_CHECK_MSG(c == ',', "json: expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

// --- run report ------------------------------------------------------------

Json run_report(const RunSummary& summary) {
  Json report = Json::object();
  report["schema"] = "nat-report-v1";

  Json& instance = report["instance"];
  instance["jobs"] = summary.jobs;
  instance["g"] = summary.g;
  instance["horizon_lo"] = summary.horizon_lo;
  instance["horizon_hi"] = summary.horizon_hi;
  instance["volume"] = summary.volume;
  instance["volume_lower_bound"] = summary.volume_lower_bound;
  instance["laminar"] = summary.laminar;

  Json& run = report["run"];
  run["solver"] = summary.solver;
  run["active_slots"] =
      summary.active_slots >= 0 ? Json(summary.active_slots) : Json();
  run["lp_objective"] =
      summary.lp_objective >= 0.0 ? Json(summary.lp_objective) : Json();
  if (summary.active_slots >= 0 && summary.lp_objective > 0.0) {
    run["ratio_vs_lp"] =
        static_cast<double>(summary.active_slots) / summary.lp_objective;
  } else {
    run["ratio_vs_lp"] = Json();
  }
  run["lp_iterations"] =
      summary.lp_iterations >= 0 ? Json(summary.lp_iterations) : Json();
  run["repairs"] = summary.repairs >= 0 ? Json(summary.repairs) : Json();
  if (summary.robust_hi >= 0) {
    run["robust_lo"] = summary.robust_lo;
    run["robust_hi"] = summary.robust_hi;
  }

  Json& counters = report["counters"];
  counters = Json::object();  // present even when empty
  for (const auto& [name, value] : counters_snapshot()) {
    counters[name] = value;
  }
  Json& gauges = report["gauges"];
  gauges = Json::object();
  for (const auto& [name, value] : gauges_snapshot()) {
    gauges[name] = value;
  }

  Json& spans = report["spans"];
  spans = Json::array();
  for (const SpanRecord& rec : spans_snapshot()) {
    Json s = Json::object();
    s["name"] = rec.name;
    s["id"] = rec.id;
    s["parent"] = rec.parent;
    s["depth"] = rec.depth;
    s["start_ns"] = rec.start_ns;
    s["dur_ns"] = rec.dur_ns;
    spans.push_back(std::move(s));
  }
  report["spans_dropped"] = spans_dropped();
  return report;
}

void write_report(std::ostream& os, const RunSummary& summary) {
  os << run_report(summary).dump(2) << '\n';
}

}  // namespace nat::obs
