#include "obs/counters.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace nat::obs {

namespace detail {

unsigned shard_index() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned idx =
      next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

}  // namespace detail

namespace {

// Ordered maps keep snapshots name-sorted for free; the registry is
// heap-allocated and never freed so counter references cached by other
// translation units stay valid through static destruction.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

}  // namespace

Counter& counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return *it->second;
}

Gauge& gauge(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end()) {
    it = r.gauges
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, std::int64_t>> counters_snapshot() {
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> gauges_snapshot() {
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges) out.emplace_back(name, g->value());
  return out;
}

void reset_all() {
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, g] : r.gauges) g->reset();
}

}  // namespace nat::obs
