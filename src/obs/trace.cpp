#include "obs/trace.hpp"

#include <atomic>
#include <mutex>

namespace nat::obs {

namespace {

struct Buffer {
  std::mutex mu;
  std::vector<SpanRecord> records;
  std::size_t capacity = 4096;
  std::int64_t dropped = 0;
};

Buffer& buffer() {
  static Buffer* b = new Buffer;  // never destroyed; see counters.cpp
  return *b;
}

/// Process trace epoch: all start_ns values are relative to this.
const util::Stopwatch& epoch() {
  static const util::Stopwatch* e = new util::Stopwatch;
  return *e;
}

std::atomic<std::int64_t> next_id{0};

struct OpenFrame {
  std::int64_t id;
};

thread_local std::vector<OpenFrame> open_stack;

}  // namespace

Span::Span(std::string_view name)
    : name_(name),
      id_(next_id.fetch_add(1, std::memory_order_relaxed)),
      start_ns_(epoch().nanos()) {
  if (!open_stack.empty()) {
    parent_ = open_stack.back().id;
    depth_ = static_cast<int>(open_stack.size());
  }
  open_stack.push_back(OpenFrame{id_});
  watch_.reset();
}

Span::~Span() {
  const std::int64_t dur = watch_.nanos();
  // Robust against mismatched lifetimes (e.g. a span member outliving
  // its scope): pop our own frame and anything opened after it.
  while (!open_stack.empty()) {
    const bool mine = open_stack.back().id == id_;
    open_stack.pop_back();
    if (mine) break;
  }
  Buffer& b = buffer();
  std::lock_guard lk(b.mu);
  if (b.records.size() >= b.capacity) {
    ++b.dropped;
    return;
  }
  SpanRecord rec;
  rec.name = std::move(name_);
  rec.id = id_;
  rec.parent = parent_;
  rec.depth = depth_;
  rec.start_ns = start_ns_;
  rec.dur_ns = dur;
  b.records.push_back(std::move(rec));
}

std::vector<SpanRecord> spans_snapshot() {
  Buffer& b = buffer();
  std::lock_guard lk(b.mu);
  return b.records;
}

void clear_spans() {
  Buffer& b = buffer();
  std::lock_guard lk(b.mu);
  b.records.clear();
  b.dropped = 0;
}

void set_span_capacity(std::size_t capacity) {
  Buffer& b = buffer();
  std::lock_guard lk(b.mu);
  b.capacity = capacity;
}

std::int64_t spans_dropped() {
  Buffer& b = buffer();
  std::lock_guard lk(b.mu);
  return b.dropped;
}

}  // namespace nat::obs
