// Cheap named monotonic counters and gauges for pipeline observability.
//
// Counters are process-global, created on first use and kept alive for
// the whole process (the registry is intentionally never destroyed, so
// handles cached in function-local statics stay valid during shutdown).
// Writes go to one of a small number of cache-line-padded shards chosen
// per thread, so concurrent hot loops pay a single relaxed fetch_add on
// a line they do not share; reads aggregate the shards.
//
// Hot-path idiom — accumulate locally, flush once per call:
//
//   std::int64_t scanned = 0;
//   ... ++scanned in the loop ...
//   static obs::Counter& c = obs::counter("flow.dinic.edges_scanned");
//   c.add(scanned);
//
// Counters are monotonic int64 totals; gauges are double-valued and
// support both set() (last write wins) and add(). Both reset to zero
// via reset_all(), which report.hpp callers use to scope one solver run.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nat::obs {

inline constexpr unsigned kCounterShards = 8;  // power of two

namespace detail {
/// Stable per-thread shard index (round-robin over live threads).
unsigned shard_index() noexcept;
}  // namespace detail

class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::int64_t delta = 1) noexcept {
    shards_[detail::shard_index() & (kCounterShards - 1)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }

  std::int64_t value() const noexcept {
    std::int64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() noexcept {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  std::string name_;
  Shard shards_[kCounterShards];
};

class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }

  void add(double delta) noexcept {
    // CAS loop instead of fetch_add(double): portable to pre-C++20
    // standard libraries and to every sanitizer configuration.
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }

  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> v_{0.0};
};

/// Returns the process-wide counter/gauge registered under `name`,
/// creating it on first use. Thread-safe; the reference stays valid for
/// the rest of the process.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);

/// Name-sorted snapshots of every registered counter / gauge.
std::vector<std::pair<std::string, std::int64_t>> counters_snapshot();
std::vector<std::pair<std::string, double>> gauges_snapshot();

/// Zeroes every registered counter and gauge (names stay registered).
/// Call before a solver run to scope a report to that run.
void reset_all();

}  // namespace nat::obs
