#include "daemon/fair_queue.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace nat::daemon {

FairQueue::FairQueue(FairQueueOptions options) : options_(options) {
  NAT_CHECK_MSG(options_.tenant_defaults.weight > 0.0,
                "tenant default weight must be > 0");
}

FairQueue::Tenant& FairQueue::ensure(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    Tenant t;
    t.config = options_.tenant_defaults;
    // A newborn tenant starts at the current min_vruntime, not at 0:
    // joining late must not grant a backlog of virtual time.
    t.vruntime_ns = min_vruntime_ns_;
    it = tenants_.emplace(tenant, std::move(t)).first;
  }
  return it->second;
}

void FairQueue::configure_tenant(const std::string& tenant,
                                 TenantConfig config) {
  NAT_CHECK_MSG(config.weight > 0.0,
                "tenant \"" << tenant << "\": weight must be > 0, got "
                            << config.weight);
  NAT_CHECK_MSG(config.max_queue_depth >= 1 && config.max_in_flight >= 1,
                "tenant \"" << tenant
                            << "\": queue-depth and in-flight caps must be"
                               " >= 1");
  ensure(tenant).config = config;
}

bool FairQueue::has_tenant(const std::string& tenant) const {
  return tenants_.count(tenant) != 0;
}

TenantConfig FairQueue::config(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? options_.tenant_defaults : it->second.config;
}

bool FairQueue::try_enqueue(const std::string& tenant, std::uint64_t ticket) {
  Tenant& t = ensure(tenant);
  if (t.queue.size() >= static_cast<std::size_t>(t.config.max_queue_depth)) {
    ++t.rejected;
    return false;
  }
  if (t.queue.empty() && t.in_flight == 0) {
    // Waking from idle: clamp forward so time spent sleeping is not
    // banked as credit against the tenants that kept working.
    t.vruntime_ns = std::max(t.vruntime_ns, min_vruntime_ns_);
  }
  t.queue.emplace_back(next_seq_++, ticket);
  ++queued_total_;
  return true;
}

bool FairQueue::pick(std::uint64_t* ticket, std::string* tenant) {
  Tenant* best = nullptr;
  const std::string* best_name = nullptr;
  double min_runnable = std::numeric_limits<double>::infinity();
  for (auto& [name, t] : tenants_) {
    if (t.queue.empty()) continue;
    if (options_.fifo) {
      // Global arrival order; caps and vruntime intentionally ignored
      // (this is the starvation-prone baseline).
      if (best == nullptr || t.queue.front().first < best->queue.front().first) {
        best = &t;
        best_name = &name;
      }
      continue;
    }
    if (t.in_flight >= t.config.max_in_flight) continue;
    min_runnable = std::min(min_runnable, t.vruntime_ns);
    // Strict < plus name-ordered iteration = deterministic tie-break.
    if (best == nullptr || t.vruntime_ns < best->vruntime_ns) {
      best = &t;
      best_name = &name;
    }
  }
  if (best == nullptr) return false;
  if (!options_.fifo) {
    // min_vruntime advances monotonically with the runnable frontier.
    min_vruntime_ns_ = std::max(min_vruntime_ns_, min_runnable);
  }
  *ticket = best->queue.front().second;
  *tenant = *best_name;
  best->queue.pop_front();
  --queued_total_;
  ++best->in_flight;
  ++best->dispatched;
  return true;
}

void FairQueue::charge(const std::string& tenant, std::int64_t wall_ns) {
  const auto it = tenants_.find(tenant);
  NAT_CHECK_MSG(it != tenants_.end() && it->second.in_flight > 0,
                "charge(\"" << tenant << "\") without a matching pick()");
  Tenant& t = it->second;
  t.vruntime_ns += static_cast<double>(std::max<std::int64_t>(wall_ns, 0)) /
                   t.config.weight;
  --t.in_flight;
}

std::size_t FairQueue::queued(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.queue.size();
}

int FairQueue::in_flight(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.in_flight;
}

double FairQueue::vruntime_ms(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0.0 : it->second.vruntime_ns / 1e6;
}

double FairQueue::vruntime_lag_ms() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  int active = 0;
  for (const auto& [name, t] : tenants_) {
    if (t.queue.empty() && t.in_flight == 0) continue;
    lo = std::min(lo, t.vruntime_ns);
    hi = std::max(hi, t.vruntime_ns);
    ++active;
  }
  return active >= 2 ? (hi - lo) / 1e6 : 0.0;
}

std::map<std::string, TenantCounters> FairQueue::counters() const {
  std::map<std::string, TenantCounters> out;
  for (const auto& [name, t] : tenants_) {
    TenantCounters c;
    c.weight = t.config.weight;
    c.queued = t.queue.size();
    c.in_flight = t.in_flight;
    c.dispatched = t.dispatched;
    c.rejected = t.rejected;
    c.vruntime_ms = t.vruntime_ns / 1e6;
    out.emplace(name, c);
  }
  return out;
}

}  // namespace nat::daemon
