#include "daemon/daemon.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <utility>

#include "obs/counters.hpp"
#include "service/jsonl.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace nat::daemon {

namespace {

/// Shared skeleton of every daemon-originated record (solver records
/// come from cell_record/session_op_record instead and only get the
/// envelope overlaid).
obs::Json base_record(std::uint64_t seq, const std::string& tenant,
                      const std::string& op, const std::string& id) {
  obs::Json j = obs::Json::object();
  j["index"] = static_cast<std::int64_t>(seq);
  if (!id.empty()) j["id"] = id;
  if (!tenant.empty()) j["tenant"] = tenant;
  if (!op.empty()) j["op"] = op;
  return j;
}

obs::Json failure_record(std::uint64_t seq, const std::string& tenant,
                         const std::string& op, const std::string& id,
                         const char* status, const std::string& failure_class,
                         const std::string& error) {
  obs::Json j = base_record(seq, tenant, op, id);
  j["status"] = status;
  j["failure_class"] = failure_class;
  j["error"] = error;
  return j;
}

/// Nearest-rank percentile over a copy (the windows are small).
double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  std::size_t idx = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(v.size())));
  if (idx > 0) --idx;
  if (idx >= v.size()) idx = v.size() - 1;
  return v[idx];
}

}  // namespace

/// One admitted request, owned by pending_ from admission until its
/// record has been emitted (shutdown finds the token here, and drain
/// cannot observe "idle" before the record is on the sink).
struct Daemon::Request {
  std::uint64_t seq = 0;
  std::string tenant;
  std::string op;
  std::string id;
  std::string line;
  util::CancelToken token;     // armed at enqueue: queue wait counts
  util::Stopwatch queue_sw;    // admission -> dispatch
};

struct Daemon::TenantState {
  explicit TenantState(const at::SessionOptions& options)
      : sessions(options) {}
  std::mutex mu;  // serializes ops when max_in_flight > 1 / FIFO mode
  service::SessionManager sessions;
};

void Daemon::LatencyWindow::add(double ms) {
  constexpr std::size_t kCap = 4096;
  if (window.size() < kCap) {
    window.push_back(ms);
  } else {
    window[next] = ms;
    next = (next + 1) % kCap;
  }
  ++completed;
}

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      pool_(options_.threads),
      fair_queue_(FairQueueOptions{options_.fifo, options_.tenant_defaults}) {
  paused_ = options_.start_paused;
  sink_ = options_.sink;
}

Daemon::~Daemon() {
  shutdown();
  drain();
  // drain() waits for the *requests*, not the worker loops: a loop can
  // still be between its last unlock and its final failed pick. Join
  // every pool task before the scheduler members are destroyed.
  try {
    pool_.wait_idle();
  } catch (...) {
  }
}

void Daemon::emit(const std::string& record) {
  std::lock_guard<std::mutex> lk(emit_mu_);
  if (!sink_) return;
  try {
    sink_(record);
  } catch (...) {
    // A sink failure (e.g. a broken pipe wrapper that throws) must not
    // unwind through the scheduler accounting; the record is dropped.
  }
}

void Daemon::emit(const obs::Json& record) { emit(record.dump()); }

void Daemon::set_sink(RecordSink sink) {
  std::lock_guard<std::mutex> lk(emit_mu_);
  sink_ = std::move(sink);
}

void Daemon::maybe_dispatch_locked(std::size_t slots) {
  if (paused_) return;
  const std::size_t width = pool_.thread_count();
  for (std::size_t i = 0; i < slots && active_workers_ < width; ++i) {
    ++active_workers_;
    pool_.submit([this] { worker_body(); });
  }
}

bool Daemon::submit_line(const std::string& line) {
  static obs::Counter& c_requests = obs::counter("at.daemon.requests");
  c_requests.add(1);

  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    seq = seq_++;
    ++submitted_;
  }

  std::string tenant = "default";
  std::string op;
  std::string id;
  std::int64_t deadline_ms = options_.default_deadline_ms;
  bool explicit_deadline = false;
  obs::Json parsed;
  try {
    parsed = obs::Json::parse(line);
    NAT_CHECK_MSG(parsed.is_object(), "request line is not a JSON object");
    const obs::Json* opf = parsed.find("op");
    NAT_CHECK_MSG(opf != nullptr && opf->type() == obs::Json::Type::kString,
                  "request line: missing string \"op\"");
    op = opf->as_string();
    if (const obs::Json* t = parsed.find("tenant")) {
      NAT_CHECK_MSG(t->type() == obs::Json::Type::kString &&
                        !t->as_string().empty(),
                    "request line: \"tenant\" must be a non-empty string");
      tenant = t->as_string();
    }
    if (const obs::Json* i = parsed.find("id")) {
      NAT_CHECK_MSG(i->type() == obs::Json::Type::kString,
                    "request line: \"id\" must be a string");
      id = i->as_string();
    }
    if (const obs::Json* d = parsed.find("deadline_ms")) {
      NAT_CHECK_MSG(d->is_number(),
                    "request line: \"deadline_ms\" must be a number");
      deadline_ms = d->as_int();
      explicit_deadline = true;
    }
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++errors_;
    }
    emit(failure_record(seq, tenant, op, id, "error", "input:parse",
                        e.what()));
    return !draining();
  }

  // Inline ops are answered on the submitting thread.
  if (op == "tenant") {
    emit(handle_tenant_op(seq, tenant, parsed));
    return !draining();
  }
  if (op == "stats") {
    obs::Json j = stats_record();
    j["index"] = static_cast<std::int64_t>(seq);
    emit(j);
    return !draining();
  }
  if (op == "shutdown") {
    obs::Json j = base_record(seq, tenant, op, id);
    j["status"] = "ok";
    emit(j);
    shutdown();
    return false;
  }

  if (op != "solve" && op != "open" && op != "delta" && op != "close") {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++errors_;
    }
    emit(failure_record(seq, tenant, op, id, "error", "input:op",
                        "request line: unknown op \"" + op + "\""));
    return !draining();
  }

  auto request = std::make_unique<Request>();
  request->seq = seq;
  request->tenant = tenant;
  request->op = op;
  request->id = (id.empty() && op == "solve")
                    ? tenant + "-" + std::to_string(seq)
                    : id;
  request->line = line;
  // Armed before the token is shared with workers; an explicit
  // "deadline_ms" <= 0 means already expired (a default of 0 means no
  // deadline at all).
  if (explicit_deadline || deadline_ms > 0) {
    request->token.set_timeout_ms(deadline_ms);
  }

  static obs::Counter& c_rejects = obs::counter("at.daemon.admission_rejects");
  static obs::Gauge& g_queue = obs::gauge("at.daemon.queue_depth");
  std::unique_lock<std::mutex> lk(mu_);
  if (draining_) {
    ++rejected_;
    lk.unlock();
    emit(failure_record(seq, tenant, op, request->id, "rejected",
                        "daemon:draining", "daemon is shutting down"));
    return false;
  }
  if (!fair_queue_.try_enqueue(tenant, seq)) {
    ++rejected_;
    const TenantConfig config = fair_queue_.config(tenant);
    lk.unlock();
    c_rejects.add(1);
    emit(failure_record(
        seq, tenant, op, request->id, "rejected", "admission:rejected",
        "tenant \"" + tenant + "\" queue-depth cap (" +
            std::to_string(config.max_queue_depth) + ") reached"));
    return true;
  }
  ++admitted_;
  pending_.emplace(seq, std::move(request));
  g_queue.set(static_cast<double>(fair_queue_.queued()));
  maybe_dispatch_locked(1);
  return true;
}

obs::Json Daemon::handle_tenant_op(std::uint64_t seq, const std::string& tenant,
                                   const obs::Json& parsed) {
  obs::Json j = base_record(seq, tenant, "tenant", "");
  try {
    std::lock_guard<std::mutex> lk(mu_);
    TenantConfig config = fair_queue_.config(tenant);
    if (const obs::Json* w = parsed.find("weight")) {
      NAT_CHECK_MSG(w->is_number(), "tenant line: \"weight\" must be a number");
      config.weight = w->as_double();
    }
    if (const obs::Json* q = parsed.find("max_queue_depth")) {
      NAT_CHECK_MSG(q->is_number(),
                    "tenant line: \"max_queue_depth\" must be a number");
      config.max_queue_depth = static_cast<int>(q->as_int());
    }
    if (const obs::Json* f = parsed.find("max_in_flight")) {
      NAT_CHECK_MSG(f->is_number(),
                    "tenant line: \"max_in_flight\" must be a number");
      config.max_in_flight = static_cast<int>(f->as_int());
    }
    fair_queue_.configure_tenant(tenant, config);  // validates ranges
    j["status"] = "ok";
    j["weight"] = config.weight;
    j["max_queue_depth"] = static_cast<std::int64_t>(config.max_queue_depth);
    j["max_in_flight"] = static_cast<std::int64_t>(config.max_in_flight);
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++errors_;
    }
    j["status"] = "error";
    j["failure_class"] = "input:validate";
    j["error"] = e.what();
  }
  return j;
}

void Daemon::worker_body() {
  static obs::Gauge& g_queue = obs::gauge("at.daemon.queue_depth");
  static obs::Gauge& g_in_flight = obs::gauge("at.daemon.in_flight");
  static obs::Gauge& g_lag = obs::gauge("at.daemon.vruntime_lag_ms");
  static obs::Counter& c_solved = obs::counter("at.daemon.solved");
  static obs::Counter& c_errors = obs::counter("at.daemon.errors");
  static obs::Counter& c_timeouts = obs::counter("at.daemon.timeouts");

  for (;;) {
    std::uint64_t ticket = 0;
    std::string tenant;
    std::unique_lock<std::mutex> lk(mu_);
    if (paused_ || !fair_queue_.pick(&ticket, &tenant)) {
      --active_workers_;
      return;
    }
    // The map node is stable: only this worker erases this ticket, and
    // it does so after the record is emitted.
    Request* request = pending_.at(ticket).get();
    ++in_flight_;
    g_queue.set(static_cast<double>(fair_queue_.queued()));
    g_in_flight.set(static_cast<double>(in_flight_));
    lk.unlock();

    Executed done = execute(*request);

    lk.lock();
    fair_queue_.charge(tenant, done.solve_ns);
    latencies_[tenant].add(done.total_ms);
    switch (done.status) {
      case service::CellStatus::kSolved:
        ++solved_;
        c_solved.add(1);
        break;
      case service::CellStatus::kTimeout:
        ++timeouts_;
        c_timeouts.add(1);
        break;
      default:
        ++errors_;
        c_errors.add(1);
        break;
    }
    g_lag.set(fair_queue_.vruntime_lag_ms());
    lk.unlock();

    emit(done.record);

    // Erase only after the record is on the sink, so drain() implies
    // every terminal record has been flushed.
    lk.lock();
    pending_.erase(ticket);
    --in_flight_;
    g_in_flight.set(static_cast<double>(in_flight_));
    if (pending_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    lk.unlock();
  }
}

Daemon::Executed Daemon::execute(Request& request) {
  const double queue_ms = request.queue_sw.millis();
  Executed done;
  obs::Json j;
  const util::Stopwatch solve_sw;
  if (request.token.cancelled()) {
    // Expired (or shutdown-cancelled) while queued: terminal record
    // without ever touching a solver.
    const bool explicit_cancel = request.token.cancel_requested();
    j = failure_record(request.seq, request.tenant, request.op, request.id,
                       "timeout", explicit_cancel ? "cancelled" : "timeout",
                       explicit_cancel
                           ? "cancelled while queued (daemon shutdown)"
                           : "deadline expired while queued");
    done.status = service::CellStatus::kTimeout;
  } else if (request.op == "solve") {
    service::BatchItem item;
    item.id = request.id;
    item.text = request.line;
    item.format = service::BatchItem::Format::kJson;
    const service::CellResult cell = service::solve_cell(
        item, static_cast<int>(request.seq), options_.batch, &request.token);
    j = service::cell_record(cell);
    j["tenant"] = request.tenant;
    j["op"] = request.op;
    done.status = cell.status;
  } else {
    TenantState& state = tenant_state(request.tenant);
    std::lock_guard<std::mutex> slk(state.mu);
    const service::SessionOpResult r = state.sessions.process_line(
        request.line, static_cast<int>(request.seq), &request.token);
    j = service::session_op_record(r);
    j["tenant"] = request.tenant;
    done.status = r.status;
  }
  done.solve_ns = solve_sw.nanos();
  const double solve_ms = static_cast<double>(done.solve_ns) / 1e6;
  j["queue_ms"] = queue_ms;
  j["solve_ms"] = solve_ms;
  j["wall_ms"] = queue_ms + solve_ms;
  if (request.token.deadline_armed()) {
    j["deadline_left_ms"] = static_cast<double>(request.token.remaining_ms());
  }
  done.total_ms = queue_ms + solve_ms;
  done.record = j.dump();
  return done;
}

Daemon::TenantState& Daemon::tenant_state(const std::string& tenant) {
  std::lock_guard<std::mutex> lk(mu_);
  std::unique_ptr<TenantState>& slot = tenant_state_[tenant];
  if (!slot) slot = std::make_unique<TenantState>(options_.session);
  return *slot;
}

void Daemon::pause() {
  std::lock_guard<std::mutex> lk(mu_);
  paused_ = true;
}

void Daemon::resume() {
  std::lock_guard<std::mutex> lk(mu_);
  paused_ = false;
  maybe_dispatch_locked(pool_.thread_count());
}

void Daemon::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  paused_ = false;
  maybe_dispatch_locked(pool_.thread_count());
  idle_cv_.wait(lk, [&] { return pending_.empty() && in_flight_ == 0; });
}

void Daemon::shutdown() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!draining_) {
    draining_ = true;
    // Queued requests fast-fail with "cancelled" records; in-flight
    // solves unwind at their next poll point.
    for (auto& [seq, request] : pending_) request->token.cancel();
  }
  paused_ = false;
  maybe_dispatch_locked(pool_.thread_count());
}

bool Daemon::draining() const {
  std::lock_guard<std::mutex> lk(mu_);
  return draining_;
}

DaemonStats Daemon::stats_locked() {
  DaemonStats s;
  s.submitted = submitted_;
  s.admitted = admitted_;
  s.rejected = rejected_;
  s.solved = solved_;
  s.errors = errors_;
  s.timeouts = timeouts_;
  s.queue_depth = fair_queue_.queued();
  s.in_flight = in_flight_;
  s.vruntime_lag_ms = fair_queue_.vruntime_lag_ms();
  s.pool_workers = pool_.thread_count();
  s.pool = pool_.stats();
  std::vector<double> all;
  for (const auto& [name, counters] : fair_queue_.counters()) {
    TenantStats t;
    t.queue = counters;
    const auto lit = latencies_.find(name);
    if (lit != latencies_.end()) {
      t.completed = lit->second.completed;
      t.p50_ms = percentile(lit->second.window, 50.0);
      t.p99_ms = percentile(lit->second.window, 99.0);
      all.insert(all.end(), lit->second.window.begin(),
                 lit->second.window.end());
    }
    const auto tit = tenant_state_.find(name);
    if (tit != tenant_state_.end()) {
      std::lock_guard<std::mutex> tl(tit->second->mu);
      t.open_sessions = tit->second->sessions.open_sessions();
    }
    s.tenants.emplace(name, std::move(t));
  }
  s.p50_ms = percentile(all, 50.0);
  s.p99_ms = percentile(std::move(all), 99.0);
  obs::gauge("at.daemon.p50_ms").set(s.p50_ms);
  obs::gauge("at.daemon.p99_ms").set(s.p99_ms);
  return s;
}

DaemonStats Daemon::stats() {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_locked();
}

obs::Json Daemon::stats_record() {
  const DaemonStats s = stats();
  obs::Json j = obs::Json::object();
  j["op"] = "stats";
  j["status"] = "ok";
  j["submitted"] = s.submitted;
  j["admitted"] = s.admitted;
  j["rejected"] = s.rejected;
  j["solved"] = s.solved;
  j["errors"] = s.errors;
  j["timeouts"] = s.timeouts;
  j["queue_depth"] = static_cast<std::int64_t>(s.queue_depth);
  j["in_flight"] = static_cast<std::int64_t>(s.in_flight);
  j["vruntime_lag_ms"] = s.vruntime_lag_ms;
  j["p50_ms"] = s.p50_ms;
  j["p99_ms"] = s.p99_ms;
  obs::Json pool = obs::Json::object();
  pool["workers"] = static_cast<std::int64_t>(s.pool_workers);
  pool["queue_depth"] = static_cast<std::int64_t>(s.pool.queue_depth);
  pool["in_flight"] = static_cast<std::int64_t>(s.pool.in_flight);
  j["pool"] = std::move(pool);
  obs::Json tenants = obs::Json::array();
  for (const auto& [name, t] : s.tenants) {
    obs::Json tj = obs::Json::object();
    tj["tenant"] = name;
    tj["weight"] = t.queue.weight;
    tj["queued"] = static_cast<std::int64_t>(t.queue.queued);
    tj["in_flight"] = static_cast<std::int64_t>(t.queue.in_flight);
    tj["dispatched"] = t.queue.dispatched;
    tj["rejected"] = t.queue.rejected;
    tj["vruntime_ms"] = t.queue.vruntime_ms;
    tj["completed"] = t.completed;
    tj["open_sessions"] = static_cast<std::int64_t>(t.open_sessions);
    tj["p50_ms"] = t.p50_ms;
    tj["p99_ms"] = t.p99_ms;
    tenants.push_back(std::move(tj));
  }
  j["tenants"] = std::move(tenants);
  return j;
}

int Daemon::serve(std::istream& in, std::ostream& out) {
  set_sink([&out](const std::string& record) {
    service::write_jsonl_record(out, record);
  });
  std::string line;
  bool accepting = true;
  while (accepting && service::read_jsonl_record(in, &line)) {
    accepting = submit_line(line);
  }
  drain();
  // Drop the reference to `out` before it can dangle; state (tenants,
  // vruntime, sessions) stays resident for the next serve() call.
  set_sink(options_.sink);
  return 0;
}

}  // namespace nat::daemon
