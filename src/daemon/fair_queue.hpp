// CFS-style virtual-runtime fair queue for multi-tenant request
// dispatch (docs/DAEMON.md).
//
// Each tenant owns a FIFO of queued request tickets and a *virtual
// runtime*: every completed request charges
//
//     vruntime += measured_wall_ns / weight
//
// and the dispatcher always runs the head request of the runnable
// tenant with the minimum vruntime (ties broken by tenant name, so
// dispatch order is a deterministic function of the charge sequence).
// A tenant with weight w therefore converges to a w-proportional share
// of solver time, and a tenant flooding thousands of heavy requests
// cannot starve a small interactive tenant: after one interactive
// completion the interactive vruntime is still minimal, so its next
// request jumps the flood regardless of queue depths.
//
// Two CFS details matter for fairness and are kept here:
//  * min_vruntime is the monotone maximum of the minimum runnable
//    vruntime ever observed; a tenant that goes idle and comes back
//    re-enters at max(own, min_vruntime), so sleeping never banks
//    credit that would later let it monopolize the workers.
//  * Admission control is per tenant: a queue-depth cap bounds how
//    much latency a flood can buy itself, and an in-flight cap (1 by
//    default) keeps a tenant's requests serial — which is also what
//    makes per-tenant session streams well-ordered.
//
// The queue is a pure, clock-free data structure: it never reads a
// timer, the caller measures and charges wall time (the daemon) or
// synthetic time (the deterministic fairness tests in
// tests/test_daemon.cpp). Not thread-safe; the daemon drives it under
// its scheduler mutex.
//
// FIFO mode (`FairQueueOptions::fifo`) dispatches by global arrival
// order, ignoring vruntime and in-flight caps — the naive single-queue
// baseline that bench_daemon compares fairness against.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

namespace nat::daemon {

struct TenantConfig {
  // Share multiplier: vruntime accrues at 1/weight. Must be > 0.
  double weight = 1.0;
  // Admission: queued (not yet dispatched) requests per tenant.
  int max_queue_depth = 256;
  // Concurrently executing requests per tenant. 1 keeps a tenant's
  // requests strictly serial (required for its session stream order).
  int max_in_flight = 1;
};

struct FairQueueOptions {
  bool fifo = false;
  TenantConfig tenant_defaults;
};

/// Per-tenant counters exposed to the daemon's stats op.
struct TenantCounters {
  double weight = 1.0;
  std::size_t queued = 0;
  int in_flight = 0;
  std::int64_t dispatched = 0;
  std::int64_t rejected = 0;
  double vruntime_ms = 0.0;
};

class FairQueue {
 public:
  explicit FairQueue(FairQueueOptions options = {});

  /// Registers `tenant` (or reconfigures it in place; queued work and
  /// accrued vruntime are kept). Weight must be > 0.
  void configure_tenant(const std::string& tenant, TenantConfig config);

  bool has_tenant(const std::string& tenant) const;

  /// The tenant's current config (the defaults when unknown) — the
  /// base for partial reconfiguration by the daemon's tenant op.
  TenantConfig config(const std::string& tenant) const;

  /// Admission + enqueue of an opaque caller-owned ticket. Creates the
  /// tenant with the default config on first contact. Returns false —
  /// and counts a rejection — when the tenant's queue-depth cap is
  /// reached.
  bool try_enqueue(const std::string& tenant, std::uint64_t ticket);

  /// Dequeues the next ticket to run: the FIFO head of the minimum-
  /// vruntime runnable tenant (queue non-empty, in-flight below cap),
  /// or the globally oldest ticket in FIFO mode. Marks the tenant one
  /// more in flight; pair every successful pick with a later charge().
  /// Returns false when no tenant is runnable.
  bool pick(std::uint64_t* ticket, std::string* tenant);

  /// Completion: charges `wall_ns / weight` of virtual runtime and
  /// releases the in-flight slot taken by pick().
  void charge(const std::string& tenant, std::int64_t wall_ns);

  std::size_t queued() const { return queued_total_; }
  std::size_t queued(const std::string& tenant) const;
  int in_flight(const std::string& tenant) const;
  double vruntime_ms(const std::string& tenant) const;

  /// Spread between the largest and smallest vruntime over tenants
  /// that currently have queued or in-flight work (0 when fewer than
  /// two are active) — the at.daemon.vruntime_lag_ms gauge.
  double vruntime_lag_ms() const;

  /// Name-sorted per-tenant counters (every tenant ever seen).
  std::map<std::string, TenantCounters> counters() const;

 private:
  struct Tenant {
    TenantConfig config;
    std::deque<std::pair<std::uint64_t, std::uint64_t>> queue;  // (seq, ticket)
    int in_flight = 0;
    double vruntime_ns = 0.0;
    std::int64_t dispatched = 0;
    std::int64_t rejected = 0;
  };

  Tenant& ensure(const std::string& tenant);

  FairQueueOptions options_;
  // Ordered by name: the min-vruntime scan breaks ties by iteration
  // order, so dispatch stays deterministic across runs.
  std::map<std::string, Tenant> tenants_;
  std::uint64_t next_seq_ = 0;
  std::size_t queued_total_ = 0;
  double min_vruntime_ns_ = 0.0;
};

}  // namespace nat::daemon
