// Persistent multi-tenant solver daemon (docs/DAEMON.md).
//
// A Daemon is the long-running counterpart of service::solve_batch:
// it accepts a stream of JSONL requests, keeps hot state resident
// across them — per-tenant SessionManagers whose open SolverSessions
// retain warm FeasibilityOracle networks, cached group solves, and
// exported sparse-simplex bases — and schedules queued requests across
// tenants with the CFS-style vruntime fair queue (fair_queue.hpp), so
// one tenant flooding heavy instances cannot starve another tenant's
// small interactive requests.
//
// Request lines (all fields beyond "op" optional unless noted):
//
//   {"op":"solve", "tenant":"t", "id":"r1", "deadline_ms":500,
//    "g":2, "jobs":[[r,d,p],...]}                    stateless cell
//   {"op":"open"|"delta"|"close", "tenant":"t", "session":"s", ...}
//                             session ops, schema of docs/INCREMENTAL.md
//   {"op":"tenant", "tenant":"t", "weight":4,
//    "max_queue_depth":64, "max_in_flight":1}        tenant config
//   {"op":"stats"}                                   inline snapshot
//   {"op":"shutdown"}                 cancel everything, drain, stop
//
// Every submitted line produces exactly one terminal record on the
// sink, in completion order:
//
//   * solve/session records are the batch/session records
//     (docs/SERVICE.md, docs/INCREMENTAL.md) plus the daemon envelope:
//     "tenant", "op", "queue_ms", "solve_ms", "wall_ms" (queue+solve),
//     and "deadline_left_ms" when a deadline was armed;
//   * admission failures are {"status":"rejected",
//     "failure_class":"admission:rejected"} records — the tenant's
//     queue-depth cap was hit at enqueue;
//   * a request whose deadline expires *in the queue* becomes a
//     "timeout" record without ever touching a solver: tokens are
//     armed at enqueue, so queue wait counts against the deadline;
//   * requests cancelled by shutdown become "cancelled" records.
//
// Threading: submit_line() parses, admits, and enqueues on the calling
// thread (inline ops — tenant/stats/shutdown — are also answered
// there); solver work runs on a private util::ThreadPool whose workers
// pull from the fair queue under the scheduler mutex. The sink is
// serialized. Tenants with max_in_flight == 1 (the default) execute
// strictly in submission order, which is what keeps their session
// streams well-ordered; per-tenant SessionManagers are additionally
// mutex-guarded so raising the cap cannot corrupt session state.
//
// Observability: at.daemon.* counters and gauges (queue depth,
// in-flight, vruntime lag, p50/p99 latency, admission rejects), plus
// the stats op for a structured snapshot.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "daemon/fair_queue.hpp"
#include "obs/report.hpp"
#include "service/batch.hpp"
#include "service/sessions.hpp"
#include "util/thread_pool.hpp"

namespace nat::daemon {

/// Receives each terminal record (already serialized, unframed).
/// Calls are serialized; the sink must not re-enter the daemon.
using RecordSink = std::function<void(const std::string& record)>;

struct DaemonOptions {
  // Solver pool width; 0 = hardware concurrency.
  std::size_t threads = 0;
  // Dispatch by global arrival order instead of min-vruntime — the
  // starvation-prone baseline bench_daemon compares against.
  bool fifo = false;
  // Deadline armed at enqueue for requests that carry none; 0 = no
  // deadline. A request's "deadline_ms" field overrides this.
  std::int64_t default_deadline_ms = 0;
  // Weight / queue-depth / in-flight caps for first-contact tenants.
  TenantConfig tenant_defaults;
  // Solver knobs for "solve" requests (timeout_ms is ignored: daemon
  // deadlines ride the per-request token instead).
  service::BatchOptions batch;
  // Engine knobs for session ops.
  at::SessionOptions session;
  // Start with dispatch paused so tests and load generators can
  // preload queues deterministically, then resume().
  bool start_paused = false;
  RecordSink sink;
};

/// Per-tenant slice of a stats snapshot.
struct TenantStats {
  TenantCounters queue;           // fair-queue view (vruntime, caps, ...)
  std::int64_t completed = 0;     // terminal records emitted
  int open_sessions = 0;
  double p50_ms = 0.0;            // total latency (queue + solve) over
  double p99_ms = 0.0;            // the retained completion window
};

struct DaemonStats {
  std::int64_t submitted = 0;     // request lines seen (incl. rejects)
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;      // admission:rejected records
  std::int64_t solved = 0;
  std::int64_t errors = 0;
  std::int64_t timeouts = 0;      // deadline + cancelled records
  std::size_t queue_depth = 0;    // admitted, not yet dispatched
  std::size_t in_flight = 0;
  double vruntime_lag_ms = 0.0;
  double p50_ms = 0.0;            // all-tenant completion latency
  double p99_ms = 0.0;
  std::size_t pool_workers = 0;
  util::ThreadPool::Stats pool;
  std::map<std::string, TenantStats> tenants;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  /// Cancels outstanding work and drains (every admitted request still
  /// gets its terminal record) before the pool is torn down.
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Processes one request line: parse + admit + enqueue, or answer
  /// inline (tenant/stats/shutdown). Exactly one record reaches the
  /// sink per call, now or when the request completes. Never throws on
  /// a bad line — malformed input becomes an "input:parse" record.
  /// Returns false once the daemon is shutting down (including the
  /// call that carried the shutdown op): callers should stop feeding.
  bool submit_line(const std::string& line);

  /// Dispatch control: while paused, submit_line still admits and
  /// queues but no request starts executing.
  void pause();
  void resume();

  /// Blocks until every admitted request has emitted its record and
  /// no solver work is queued or running. Resumes dispatch if paused.
  void drain();

  /// Stops accepting (`submit_line` → "daemon:draining" rejects),
  /// cancels queued and in-flight requests via their tokens, and wakes
  /// dispatch so the cancelled records flush. Pair with drain().
  void shutdown();

  bool draining() const;

  DaemonStats stats();

  /// stats() as the {"op":"stats"} record object.
  obs::Json stats_record();

  /// Swaps the record sink (serialized against in-flight emits).
  void set_sink(RecordSink sink);

  /// Convenience loop: read request lines from `in` (service JSONL
  /// framing: blank lines and # comments skipped), stream records to
  /// `out`, drain at EOF or shutdown. Returns 0. State — tenants,
  /// vruntime, open sessions — persists across serve() calls, which is
  /// how the socket CLI keeps hot state across connections.
  int serve(std::istream& in, std::ostream& out);

  std::size_t threads() const { return pool_.thread_count(); }

 private:
  struct Request;
  struct TenantState;
  struct LatencyWindow {
    std::vector<double> window;  // ring of recent total latencies (ms)
    std::size_t next = 0;
    std::int64_t completed = 0;
    void add(double ms);
  };
  struct Executed {
    std::string record;
    service::CellStatus status = service::CellStatus::kError;
    std::int64_t solve_ns = 0;
    double total_ms = 0.0;
  };

  void emit(const std::string& record);
  void emit(const obs::Json& record);
  /// Tops up to `slots` pulling workers (bounded by the pool width).
  void maybe_dispatch_locked(std::size_t slots);
  void worker_body();
  Executed execute(Request& request);
  TenantState& tenant_state(const std::string& tenant);
  DaemonStats stats_locked();
  obs::Json handle_tenant_op(std::uint64_t seq, const std::string& tenant,
                             const obs::Json& parsed);

  DaemonOptions options_;
  util::ThreadPool pool_;

  mutable std::mutex mu_;  // scheduler state below
  std::condition_variable idle_cv_;
  FairQueue fair_queue_;
  std::map<std::uint64_t, std::unique_ptr<Request>> pending_;
  std::map<std::string, std::unique_ptr<TenantState>> tenant_state_;
  std::map<std::string, LatencyWindow> latencies_;
  std::uint64_t seq_ = 0;
  std::size_t active_workers_ = 0;  // worker_body loops on the pool
  std::size_t in_flight_ = 0;       // requests currently executing
  bool paused_ = false;
  bool draining_ = false;
  std::int64_t submitted_ = 0;
  std::int64_t admitted_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t solved_ = 0;
  std::int64_t errors_ = 0;
  std::int64_t timeouts_ = 0;

  std::mutex emit_mu_;  // serializes the sink
  RecordSink sink_;
};

}  // namespace nat::daemon
