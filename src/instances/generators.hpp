// Instance families used by the experiments (DESIGN.md §4).
//
// Every generator returns a *feasible* instance (verified by a flow
// test before returning) and is deterministic given its seed. The
// families above the "General" marker are laminar; random_general and
// hard_crossing produce arbitrary (crossing) windows for the general
// 2-approx backend.
#pragma once

#include <cstdint>

#include "activetime/instance.hpp"
#include "util/rng.hpp"

namespace nat::at::gen {

/// Natural-LP gap-2 family: g+1 unit jobs, shared window [0, 2).
/// Natural LP opens (g+1)/g fractional slots; OPT = 2 (E3).
Instance unit_overload(std::int64_t g);

/// Lemma 5.1 gap family: one long job (p = g, window [0, 2g)) plus g
/// groups of g unit jobs with windows [2i, 2i+2). CW-LP value g+2,
/// OPT = 3g/2, gap → 3/2 (E2).
Instance lemma51_gap(std::int64_t g);

/// Generalization of the Lemma 5.1 family: `groups` groups of `per_group`
/// unit jobs plus a long job of length `long_p` spanning everything.
Instance long_plus_groups(std::int64_t g, int groups, int per_group,
                          std::int64_t long_p);

struct RandomLaminarParams {
  std::int64_t g = 3;
  int max_depth = 3;          // nesting depth of the window tree
  int max_children = 3;       // fan-out per window
  double child_probability = 0.7;
  int min_jobs_per_node = 1;
  int max_jobs_per_node = 3;
  std::int64_t max_processing = 4;
  Time gap_length = 2;        // exclusive slots around children
  double fill = 0.8;          // volume budget fraction of g * |K(i)|
};

/// Random laminar instance: recursive window splitting; each window
/// carries jobs whose volume respects the per-subtree capacity
/// g * |K(i)| * fill, which guarantees feasibility for nested windows.
Instance random_laminar(const RandomLaminarParams& params, util::Rng& rng);

/// Random laminar instance with all-unit processing times (the
/// polynomial-time special case of Chang–Gabow–Khuller; E8).
Instance random_laminar_unit(const RandomLaminarParams& params,
                             util::Rng& rng);

struct ContendedParams {
  std::int64_t g = 4;
  int min_groups = 2;
  int max_groups = 5;
  Time group_width = 2;
  // Unit jobs per group, drawn from [g - unit_slack, g].
  std::int64_t unit_slack = 1;
  int max_long_jobs = 2;
};

/// Contended family (randomized generalization of the Lemma 5.1 gap
/// instance): sibling groups nearly saturated with unit jobs, plus long
/// jobs spanning all groups. These instances make the strengthened LP
/// genuinely fractional — the regime where Algorithm 1's type-C
/// machinery actually fires — unlike loose random laminar instances,
/// whose LPs are almost always integral.
Instance random_contended(const ContendedParams& params, util::Rng& rng);

/// Staircase family: k strictly nested windows [i, 2k - i) each
/// carrying `per_level` unit jobs — a maximal-depth chain stressing the
/// ancestor machinery (every node is an ancestor or descendant of
/// every other).
Instance staircase(std::int64_t g, int levels, int per_level);

/// Perfect binary nesting of the given depth: each window splits into
/// two children, unit jobs at every node, plus one long job per
/// internal window. Stresses binarization-free deep recursion.
Instance binary_nest(std::int64_t g, int depth);

/// --- General (non-laminar) families --------------------------------------

struct RandomGeneralParams {
  std::int64_t g = 3;
  int jobs = 12;
  Time horizon = 24;
  Time max_length = 8;
  std::int64_t max_processing = 4;
  // Re-draws per job before it is skipped (keeps the instance feasible
  // by construction: a job is only kept if the all-open flow test still
  // passes with it added).
  int max_attempts_per_job = 16;
};

/// Random instance with arbitrary (usually crossing) windows for the
/// general 2-approx backend. Feasible by construction; NOT guaranteed
/// non-laminar — small draws occasionally nest, which is exactly what
/// the laminarity dispatcher should absorb.
Instance random_general(const RandomGeneralParams& params, util::Rng& rng);

/// --- Robust (interval processing time) families ---------------------------

struct RandomIntervalParams {
  // Base family the intervals are attached to: a random laminar draw
  // when true, a random general (crossing-window) draw otherwise.
  bool laminar = true;
  RandomLaminarParams laminar_params;
  RandomGeneralParams general_params;
  // Per-job probability of carrying an uncertainty box; the rest stay
  // point jobs, so degenerate and interval jobs mix in one instance.
  double interval_probability = 0.7;
};

/// Attaches processing-time uncertainty boxes to the jobs of `instance`
/// in place: each selected job's current p becomes the box's p_hi, the
/// nominal is redrawn uniformly from [1, p_hi], and p_lo uniformly from
/// [1, nominal]. Because the original instance was feasible at p = p_hi,
/// the worst-case corner stays feasible by construction. Deterministic
/// given `rng`. Exposed for the robust fuzz family.
void add_processing_intervals(Instance& instance, double probability,
                              util::Rng& rng);

/// Random robust instance (docs/ROBUST.md): a base draw from the
/// laminar or general family, with uncertainty boxes attached by
/// add_processing_intervals. Worst-case feasible by construction.
Instance random_interval(const RandomIntervalParams& params, util::Rng& rng);

/// Hard crossing family in the style of the Saha–Purohit NP-hardness
/// constructions (PAPERS.md, arXiv 2112.03255): a chain of k
/// overlapping length-3 windows [2i, 2i+3), each saturated with g+1
/// unit jobs (the unit_overload gadget, forcing 2 slots per window
/// while the LP pays (g+1)/g), glued by one long job crossing the whole
/// chain. Every adjacent window pair crosses, so the instance is
/// non-laminar for k >= 2; the fractional optimum sits near 1/2 per
/// slot, the regime the threshold rounding and repair loop must handle.
Instance hard_crossing(std::int64_t g, int k);

}  // namespace nat::at::gen
