#include "instances/generators.hpp"

#include <algorithm>

#include "activetime/feasibility.hpp"
#include "util/check.hpp"

namespace nat::at::gen {

namespace {

/// All generators promise feasible instances; enforce it.
void check_feasible(const Instance& instance) {
  std::vector<Time> all;
  for (const Job& job : instance.jobs) {
    for (Time t = job.release; t < job.deadline; ++t) all.push_back(t);
  }
  NAT_CHECK_MSG(feasible_with_slots(instance, all),
                "generator produced an infeasible instance");
}

}  // namespace

Instance unit_overload(std::int64_t g) {
  NAT_CHECK(g >= 1);
  Instance instance;
  instance.g = g;
  for (std::int64_t j = 0; j <= g; ++j) {
    instance.jobs.push_back(Job{0, 2, 1});
  }
  check_feasible(instance);
  return instance;
}

Instance long_plus_groups(std::int64_t g, int groups, int per_group,
                          std::int64_t long_p) {
  NAT_CHECK(g >= 1 && groups >= 1 && per_group >= 0);
  Instance instance;
  instance.g = g;
  const Time horizon = 2 * static_cast<Time>(groups);
  NAT_CHECK_MSG(long_p <= horizon, "long job does not fit the horizon");
  instance.jobs.push_back(Job{0, horizon, long_p});
  for (int i = 0; i < groups; ++i) {
    for (int j = 0; j < per_group; ++j) {
      instance.jobs.push_back(Job{2 * i, 2 * i + 2, 1});
    }
  }
  check_feasible(instance);
  return instance;
}

Instance lemma51_gap(std::int64_t g) {
  return long_plus_groups(g, static_cast<int>(g), static_cast<int>(g), g);
}

namespace {

struct BuildState {
  Instance instance;
  const RandomLaminarParams* params;
  util::Rng* rng;
};

/// Lays out a window starting at `lo`; returns its end. Adds jobs with
/// this exact window; volume budget keeps the subtree feasible.
Time build_window(BuildState& state, Time lo, int depth) {
  const RandomLaminarParams& p = *state.params;
  util::Rng& rng = *state.rng;

  // Children first (so the window length is known afterwards).
  Time cursor = lo + rng.uniform_int(1, p.gap_length);
  std::vector<std::int64_t> child_volumes;
  std::size_t first_child_job = state.instance.jobs.size();
  if (depth < p.max_depth) {
    const int kids = static_cast<int>(rng.uniform_int(0, p.max_children));
    for (int c = 0; c < kids; ++c) {
      if (!rng.chance(p.child_probability)) continue;
      cursor = build_window(state, cursor, depth + 1);
      cursor += rng.uniform_int(1, p.gap_length);
    }
  }
  Time hi = cursor;

  // Volume already inside (children jobs were appended after
  // first_child_job).
  std::int64_t inner_volume = 0;
  for (std::size_t j = first_child_job; j < state.instance.jobs.size(); ++j) {
    inner_volume += state.instance.jobs[j].processing;
  }

  // Own jobs: window will be [lo, hi'), where hi' grows to fit the
  // longest own job if needed.
  const int own = static_cast<int>(
      rng.uniform_int(p.min_jobs_per_node, p.max_jobs_per_node));
  std::vector<std::int64_t> lengths;
  for (int j = 0; j < own; ++j) {
    lengths.push_back(rng.uniform_int(1, p.max_processing));
  }
  if (!lengths.empty()) {
    hi = std::max(hi, lo + *std::max_element(lengths.begin(), lengths.end()));
  }
  // Respect the volume budget g * |K| * fill; grow the window when the
  // budget is short (keeps every generated instance feasible).
  std::int64_t volume = inner_volume;
  for (std::int64_t len : lengths) volume += len;
  while (static_cast<double>(volume) >
         static_cast<double>(state.instance.g) *
             static_cast<double>(hi - lo) * p.fill) {
    ++hi;
  }
  for (std::int64_t len : lengths) {
    state.instance.jobs.push_back(Job{lo, hi, len});
  }
  return hi;
}

}  // namespace

Instance random_laminar(const RandomLaminarParams& params, util::Rng& rng) {
  BuildState state;
  state.instance.g = params.g;
  state.params = &params;
  state.rng = &rng;
  build_window(state, 0, 0);
  state.instance.validate();
  NAT_CHECK(state.instance.is_laminar());
  check_feasible(state.instance);
  return state.instance;
}

Instance random_laminar_unit(const RandomLaminarParams& params,
                             util::Rng& rng) {
  RandomLaminarParams unit = params;
  unit.max_processing = 1;
  return random_laminar(unit, rng);
}

Instance staircase(std::int64_t g, int levels, int per_level) {
  NAT_CHECK(g >= 1 && levels >= 1 && per_level >= 1);
  NAT_CHECK_MSG(static_cast<std::int64_t>(levels) * per_level <=
                    g * (2 * static_cast<std::int64_t>(levels)),
                "staircase would be infeasible");
  Instance instance;
  instance.g = g;
  const Time width = 2 * static_cast<Time>(levels);
  for (int i = 0; i < levels; ++i) {
    for (int j = 0; j < per_level; ++j) {
      instance.jobs.push_back(
          Job{static_cast<Time>(i), width - static_cast<Time>(i), 1});
    }
  }
  check_feasible(instance);
  return instance;
}

namespace {

void binary_nest_rec(Instance& instance, Time lo, Time hi, int depth) {
  // One unit job with this exact window; a long job at internal levels.
  instance.jobs.push_back(Job{lo, hi, 1});
  if (depth == 0) return;
  const Time len = hi - lo;
  instance.jobs.push_back(Job{lo, hi, std::max<Time>(2, len / 4)});
  // Children: left and right halves, separated by a one-slot gap when
  // it fits (keeps the windows strictly nested, not tiling).
  const Time mid = lo + len / 2;
  if (mid - 1 > lo) binary_nest_rec(instance, lo + 1, mid - 1, depth - 1);
  if (hi - 1 > mid) binary_nest_rec(instance, mid, hi - 1, depth - 1);
}

}  // namespace

Instance binary_nest(std::int64_t g, int depth) {
  NAT_CHECK(g >= 2 && depth >= 0 && depth <= 6);
  Instance instance;
  instance.g = g;
  const Time width = Time{8} << depth;  // enough room to keep nesting
  binary_nest_rec(instance, 0, width, depth);
  instance.validate();
  NAT_CHECK(instance.is_laminar());
  check_feasible(instance);
  return instance;
}

Instance random_contended(const ContendedParams& params, util::Rng& rng) {
  NAT_CHECK(params.g >= 1 && params.min_groups >= 1 &&
            params.max_groups >= params.min_groups &&
            params.group_width >= 1);
  Instance instance;
  instance.g = params.g;
  const int groups = static_cast<int>(
      rng.uniform_int(params.min_groups, params.max_groups));
  const Time w = params.group_width;
  const Time horizon = static_cast<Time>(groups) * w;

  // Groups: almost saturated with unit jobs — each group forces about
  // one slot of its own and leaves little slack for the long jobs.
  std::int64_t used = 0;
  for (int i = 0; i < groups; ++i) {
    const std::int64_t units = rng.uniform_int(
        std::max<std::int64_t>(1, params.g - params.unit_slack), params.g);
    for (std::int64_t u = 0; u < units; ++u) {
      instance.jobs.push_back(
          Job{static_cast<Time>(i) * w, static_cast<Time>(i + 1) * w, 1});
    }
    used += units;
  }

  // Long jobs spanning the whole horizon, within the leftover capacity
  // (keeps vol(Des(root)) <= g * horizon, hence feasibility).
  std::int64_t spare = params.g * horizon - used;
  const int longs =
      static_cast<int>(rng.uniform_int(1, params.max_long_jobs));
  for (int l = 0; l < longs && spare > 0; ++l) {
    const std::int64_t p =
        rng.uniform_int(1, std::min<std::int64_t>(horizon, spare));
    instance.jobs.push_back(Job{0, horizon, p});
    spare -= p;
  }
  check_feasible(instance);
  return instance;
}

Instance random_general(const RandomGeneralParams& params, util::Rng& rng) {
  NAT_CHECK(params.g >= 1 && params.jobs >= 1 && params.horizon >= 1 &&
            params.max_length >= 1 && params.max_processing >= 1 &&
            params.max_attempts_per_job >= 1);
  Instance instance;
  instance.g = params.g;
  // Greedy incremental construction: keep a drawn job only if the
  // all-open flow test still passes, so the result is feasible by
  // construction without a global rejection loop (which would skew the
  // distribution toward sparse instances).
  for (int j = 0; j < params.jobs; ++j) {
    for (int attempt = 0; attempt < params.max_attempts_per_job; ++attempt) {
      const Time len =
          rng.uniform_int(1, std::min<Time>(params.max_length, params.horizon));
      const Time lo = rng.uniform_int(0, params.horizon - len);
      const std::int64_t p =
          rng.uniform_int(1, std::min<std::int64_t>(len, params.max_processing));
      instance.jobs.push_back(Job{lo, lo + len, p});
      std::vector<Time> all;
      for (const Job& job : instance.jobs) {
        for (Time t = job.release; t < job.deadline; ++t) all.push_back(t);
      }
      if (feasible_with_slots(instance, all)) break;
      instance.jobs.pop_back();
    }
  }
  NAT_CHECK_MSG(!instance.jobs.empty(),
                "random_general produced an empty instance");
  instance.validate();
  check_feasible(instance);
  return instance;
}

void add_processing_intervals(Instance& instance, double probability,
                              util::Rng& rng) {
  NAT_CHECK(probability >= 0.0 && probability <= 1.0);
  for (Job& job : instance.jobs) {
    if (!rng.chance(probability)) continue;
    // The pre-interval p becomes the worst corner, so the instance's
    // all-open feasibility at p = p_hi is inherited from the base draw.
    const std::int64_t hi = job.processing;
    const std::int64_t nominal = rng.uniform_int(1, hi);
    const std::int64_t lo = rng.uniform_int(1, nominal);
    job.processing = nominal;
    job.processing_lo = lo;
    job.processing_hi = hi;
  }
}

Instance random_interval(const RandomIntervalParams& params, util::Rng& rng) {
  Instance instance = params.laminar
                          ? random_laminar(params.laminar_params, rng)
                          : random_general(params.general_params, rng);
  add_processing_intervals(instance, params.interval_probability, rng);
  instance.validate();
  return instance;
}

Instance hard_crossing(std::int64_t g, int k) {
  NAT_CHECK(g >= 2 && k >= 2);
  Instance instance;
  instance.g = g;
  const Time horizon = 2 * static_cast<Time>(k) + 1;
  // Glue job crossing every window of the chain.
  instance.jobs.push_back(Job{0, horizon, static_cast<std::int64_t>(k)});
  // Chain of overlapping unit_overload gadgets: window i = [2i, 2i+3)
  // carries g+1 unit jobs, so it needs two open slots while the LP pays
  // (g+1)/g; adjacent windows cross (share exactly one slot).
  for (int i = 0; i < k; ++i) {
    const Time lo = 2 * static_cast<Time>(i);
    for (std::int64_t u = 0; u <= g; ++u) {
      instance.jobs.push_back(Job{lo, lo + 3, 1});
    }
  }
  instance.validate();
  NAT_CHECK(!instance.is_laminar());
  check_feasible(instance);
  return instance;
}

}  // namespace nat::at::gen
