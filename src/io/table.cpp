#include "io/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <locale>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace nat::io {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  NAT_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  NAT_CHECK_MSG(cells.size() == header_.size(),
                "row width " << cells.size() << " != header width "
                             << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  // Classic locale always: a global de_DE-style locale would print
  // decimal commas and break the CSV/markdown output downstream.
  os.imbue(std::locale::classic());
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::ratio(double numerator, double denominator,
                         int precision) {
  if (denominator == 0.0) return "-";
  return num(numerator / denominator, precision);
}

void Table::print_markdown(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(width[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  line(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) line(row);
}

void Table::print_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  line(header_);
  for (const auto& row : rows_) line(row);
}

}  // namespace nat::io
