// Graphviz export of the laminar window forest, optionally annotated
// with fractional/rounded open counts — the executable version of the
// paper's Figure 1(b)/(c) tree pictures.
#pragma once

#include <iosfwd>
#include <vector>

#include "activetime/tree.hpp"

namespace nat::io {

struct DotOptions {
  // Optional per-node annotations (pass empty vectors to omit).
  std::vector<double> x_fractional;
  std::vector<at::Time> x_rounded;
  bool show_jobs = true;
};

/// Writes the forest as a Graphviz digraph. Virtual nodes are drawn
/// dashed; each label carries K(i), L(i), the jobs, and any provided
/// x / x~ values.
void write_dot(std::ostream& os, const at::LaminarForest& forest,
               const DotOptions& options = {});

}  // namespace nat::io
