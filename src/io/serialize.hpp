// Plain-text serialization of instances and schedules:
//
//   activetime v1
//   g <g>
//   jobs <n>
//   <release> <deadline> <processing>     (n lines)
//
// Instances whose jobs carry [p_lo, p_hi] uncertainty intervals
// (docs/ROBUST.md) use the v2 header with five tokens per job line:
//
//   activetime v2
//   g <g>
//   jobs <n>
//   <release> <deadline> <processing> <p_lo> <p_hi>   (n lines;
//       p_lo = p_hi = 0 marks a point job inside a v2 file)
//
// write_instance picks v1 for point instances (byte-identical with the
// pre-robust format) and v2 only when an interval is present;
// read_instance accepts both. Round-trips exactly; used by the
// examples and by anyone who wants to feed instances in from files.
#pragma once

#include <iosfwd>
#include <string>

#include "activetime/instance.hpp"
#include "activetime/schedule.hpp"

namespace nat::io {

void write_instance(std::ostream& os, const at::Instance& instance);
at::Instance read_instance(std::istream& is);

std::string to_string(const at::Instance& instance);
at::Instance instance_from_string(const std::string& text);

/// Human-readable schedule dump (one line per active slot).
void write_schedule(std::ostream& os, const at::Instance& instance,
                    const at::Schedule& schedule);

/// ASCII Gantt chart: one row per job over the instance horizon.
///   '#' = job runs in this slot, '.' = slot inside the window but
///   idle, ' ' = outside the window; footer row marks active slots.
/// Refuses horizons wider than `max_width` columns.
void write_gantt(std::ostream& os, const at::Instance& instance,
                 const at::Schedule& schedule, int max_width = 120);

}  // namespace nat::io
