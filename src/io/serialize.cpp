#include "io/serialize.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace nat::io {

namespace {
// Upper bound on the job count a v1 file may declare. Generously above
// every real workload, yet small enough that a hostile "jobs <huge>"
// header cannot turn the parse loop into a resource sink.
constexpr std::size_t kMaxSerializedJobs = 10'000'000;
}  // namespace

void write_instance(std::ostream& os, const at::Instance& instance) {
  // v1 for point instances so the pre-robust format stays byte-for-byte
  // identical; v2 (five tokens per job) only when an uncertainty
  // interval is actually present.
  const bool v2 = instance.has_processing_intervals();
  os << (v2 ? "activetime v2\n" : "activetime v1\n");
  os << "g " << instance.g << '\n';
  os << "jobs " << instance.jobs.size() << '\n';
  for (const at::Job& job : instance.jobs) {
    os << job.release << ' ' << job.deadline << ' ' << job.processing;
    if (v2) os << ' ' << job.processing_lo << ' ' << job.processing_hi;
    os << '\n';
  }
}

at::Instance read_instance(std::istream& is) {
  std::string magic, version, key;
  is >> magic >> version;
  NAT_CHECK_MSG(magic == "activetime" && (version == "v1" || version == "v2"),
                "bad header: '" << magic << ' ' << version << "'");
  const bool v2 = version == "v2";
  at::Instance instance;
  std::size_t n = 0;
  is >> key;
  NAT_CHECK_MSG(key == "g", "expected 'g', got '" << key << "'");
  is >> instance.g;
  NAT_CHECK_MSG(static_cast<bool>(is), "missing or non-numeric g value");
  NAT_CHECK_MSG(instance.g >= 1, "g must be >= 1, got " << instance.g);
  is >> key;
  NAT_CHECK_MSG(key == "jobs", "expected 'jobs', got '" << key << "'");
  is >> n;
  NAT_CHECK_MSG(static_cast<bool>(is), "missing or non-numeric job count");
  // Cap the declared count before trusting it: a hostile header must
  // not drive allocation or a near-endless parse loop. The loop below
  // still stops at the first truncated job, so the cap only bounds the
  // damage of a count that the stream could actually back.
  NAT_CHECK_MSG(n <= kMaxSerializedJobs,
                "job count " << n << " exceeds the format cap "
                             << kMaxSerializedJobs);
  for (std::size_t j = 0; j < n; ++j) {
    at::Job job;
    is >> job.release >> job.deadline >> job.processing;
    if (v2) is >> job.processing_lo >> job.processing_hi;
    NAT_CHECK_MSG(static_cast<bool>(is), "truncated job list at " << j);
    instance.jobs.push_back(job);
  }
  instance.validate();
  return instance;
}

std::string to_string(const at::Instance& instance) {
  std::ostringstream os;
  write_instance(os, instance);
  return os.str();
}

at::Instance instance_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_instance(is);
}

void write_gantt(std::ostream& os, const at::Instance& instance,
                 const at::Schedule& schedule, int max_width) {
  const at::Interval horizon = instance.horizon();
  NAT_CHECK_MSG(horizon.length() <= max_width,
                "horizon too wide for a Gantt chart ("
                    << horizon.length() << " > " << max_width << ")");
  os << "t=" << horizon.lo << " ... " << horizon.hi << "  (g="
     << instance.g << ")\n";
  for (std::size_t j = 0; j < instance.jobs.size(); ++j) {
    const at::Job& job = instance.jobs[j];
    std::string row(static_cast<std::size_t>(horizon.length()), ' ');
    for (at::Time t = job.release; t < job.deadline; ++t) {
      row[static_cast<std::size_t>(t - horizon.lo)] = '.';
    }
    if (j < schedule.assignment.size()) {
      for (at::Time t : schedule.assignment[j]) {
        row[static_cast<std::size_t>(t - horizon.lo)] = '#';
      }
    }
    os << "  j" << j << (j < 10 ? " " : "") << " |" << row << "|\n";
  }
  std::string active(static_cast<std::size_t>(horizon.length()), ' ');
  for (at::Time t : schedule.active_times()) {
    active[static_cast<std::size_t>(t - horizon.lo)] = '^';
  }
  os << "  on  |" << active << "|\n";
}

void write_schedule(std::ostream& os, const at::Instance& instance,
                    const at::Schedule& schedule) {
  std::map<at::Time, std::vector<int>> by_slot;
  for (std::size_t j = 0; j < schedule.assignment.size(); ++j) {
    for (at::Time t : schedule.assignment[j]) {
      by_slot[t].push_back(static_cast<int>(j));
    }
  }
  os << "active slots: " << by_slot.size() << " (g=" << instance.g << ")\n";
  for (const auto& [t, jobs] : by_slot) {
    os << "  t=" << t << ':';
    for (int j : jobs) os << " j" << j;
    os << '\n';
  }
}

}  // namespace nat::io
