#include "io/dot.hpp"

#include <iomanip>
#include <ostream>

#include "util/check.hpp"

namespace nat::io {

void write_dot(std::ostream& os, const at::LaminarForest& forest,
               const DotOptions& options) {
  if (!options.x_fractional.empty()) {
    NAT_CHECK(static_cast<int>(options.x_fractional.size()) ==
              forest.num_nodes());
  }
  if (!options.x_rounded.empty()) {
    NAT_CHECK(static_cast<int>(options.x_rounded.size()) ==
              forest.num_nodes());
  }
  os << "digraph laminar {\n  node [shape=box, fontname=\"monospace\"];\n";
  for (int i = 0; i < forest.num_nodes(); ++i) {
    const at::TreeNode& n = forest.node(i);
    os << "  n" << i << " [label=\"#" << i << " " << '[' << n.interval.lo
       << ',' << n.interval.hi << ")\\nL=" << n.length();
    if (options.show_jobs && !n.jobs.empty()) {
      os << "\\njobs:";
      for (int j : n.jobs) {
        os << " j" << j << "(p=" << forest.jobs()[j].processing << ')';
      }
    }
    if (!options.x_fractional.empty()) {
      os << "\\nx=" << std::fixed << std::setprecision(3)
         << options.x_fractional[i];
    }
    if (!options.x_rounded.empty()) {
      os << "\\nx~=" << options.x_rounded[i];
    }
    os << '"';
    if (n.is_virtual) os << ", style=dashed";
    os << "];\n";
  }
  for (int i = 0; i < forest.num_nodes(); ++i) {
    for (int c : forest.node(i).children) {
      os << "  n" << i << " -> n" << c << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace nat::io
