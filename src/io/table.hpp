// Markdown/CSV table writer for the bench harness. Every experiment
// binary prints the paper's expected value next to the measured one
// through this, so EXPERIMENTS.md rows can be pasted straight from
// bench output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nat::io {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Formatting helpers for numeric cells.
  static std::string num(double v, int precision = 3);
  static std::string num(std::int64_t v);
  static std::string ratio(double num, double den, int precision = 3);

  void print_markdown(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nat::io
