#include "verify/fuzz.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "activetime/exact_pipeline.hpp"
#include "activetime/feasibility.hpp"
#include "activetime/robust.hpp"
#include "activetime/rounding.hpp"
#include "activetime/solver.hpp"
#include "baselines/exact.hpp"
#include "instances/generators.hpp"
#include "io/serialize.hpp"
#include "obs/counters.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "verify/verify.hpp"

namespace nat::verify::fuzz {

namespace {

/// Restores the fault-injection flag even when a check throws.
class FaultScope {
 public:
  explicit FaultScope(bool on) { at::set_rounding_budget_fault(on); }
  ~FaultScope() { at::set_rounding_budget_fault(false); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

// The stable failure key ("verify:<stage>" / "check:<file>:<line>")
// lives in verify::classify_failure, shared with the batch service.

/// ceil((9/5) * opt) in integers.
std::int64_t nine_fifths_ceil(std::int64_t opt) { return (9 * opt + 4) / 5; }

/// Rotating generator mix. Families 1 and 4 (contended, tight slack)
/// are the genuinely fractional regime where Algorithm 1's round-up
/// machinery fires; the rest cover structure (depth, fan-out, units).
at::Instance generate(int index, util::Rng& rng, int max_jobs) {
  at::Instance inst;
  switch (index % 5) {
    case 0: {
      at::gen::RandomLaminarParams p;
      p.g = rng.uniform_int(1, 4);
      p.max_depth = static_cast<int>(rng.uniform_int(1, 4));
      p.max_children = static_cast<int>(rng.uniform_int(1, 3));
      p.max_processing = rng.uniform_int(1, 4);
      inst = at::gen::random_laminar(p, rng);
      break;
    }
    case 1: {
      at::gen::ContendedParams p;
      p.g = rng.uniform_int(2, 5);
      p.max_groups = static_cast<int>(rng.uniform_int(2, 5));
      p.unit_slack = rng.uniform_int(0, 2);
      p.max_long_jobs = static_cast<int>(rng.uniform_int(1, 2));
      inst = at::gen::random_contended(p, rng);
      break;
    }
    case 2: {
      at::gen::RandomLaminarParams p;
      p.g = rng.uniform_int(1, 3);
      p.max_depth = static_cast<int>(rng.uniform_int(1, 3));
      inst = at::gen::random_laminar_unit(p, rng);
      break;
    }
    case 3: {
      const std::int64_t g = rng.uniform_int(1, 4);
      // Feasibility precondition: per_level <= 2g unit jobs per window.
      const int per_level = static_cast<int>(
          rng.uniform_int(1, std::min<std::int64_t>(3, 2 * g)));
      inst = at::gen::staircase(
          g, static_cast<int>(rng.uniform_int(2, 5)), per_level);
      break;
    }
    default: {
      at::gen::ContendedParams p;
      p.g = rng.uniform_int(3, 6);
      p.min_groups = 3;
      p.max_groups = 6;
      p.unit_slack = rng.uniform_int(1, 2);
      inst = at::gen::random_contended(p, rng);
      break;
    }
  }
  // Hard cap on size: dropping trailing jobs preserves laminarity and
  // feasibility (fewer jobs only relax the instance).
  if (inst.num_jobs() > max_jobs) {
    inst.jobs.resize(static_cast<std::size_t>(max_jobs));
  }
  return inst;
}

std::string sanitize(const std::string& s) {
  std::string out;
  for (char c : s) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '-');
  }
  return out;
}

std::string write_repro(const std::string& dir, const Violation& v) {
  std::filesystem::create_directories(dir);
  std::ostringstream name;
  name << "repro_" << sanitize(v.failure_class) << "_seed" << v.index
       << ".txt";
  const std::filesystem::path path =
      std::filesystem::path(dir) / name.str();
  std::ofstream os(path);
  NAT_CHECK_MSG(os.good(), "cannot write repro file " << path.string());
  io::write_instance(os, v.instance);
  // Trailing metadata: read_instance stops after the declared job
  // lines, so the repro file stays loadable as-is.
  os << "# failure_class " << v.failure_class << '\n';
  os << "# minimized_from_jobs " << v.original_jobs << '\n';
  os << "# detail " << v.detail << '\n';
  return path.string();
}

}  // namespace

std::pair<std::string, std::string> check_instance(
    const at::Instance& instance, const FuzzOptions& options) {
  if (instance.jobs.empty()) return {};
  try {
    FaultScope fault(options.inject_budget_fault);

    // Full exact-arithmetic verification regardless of build type: the
    // fuzzer is the differential harness, so it always pays for rigor.
    at::NestedSolverOptions solver_options;
    solver_options.verify_level = VerifyLevel::kFull;
    const at::NestedSolveResult result =
        at::solve_nested(instance, solver_options);

    // OPT oracle (branch and bound). A blown budget only skips the OPT
    // legs; LP <= ALG still holds unconditionally.
    at::baselines::ExactOptions exact_options;
    exact_options.node_budget = options.exact_node_budget;
    const auto exact =
        at::baselines::exact_opt_laminar(instance, exact_options);

    const double lp = result.lp_value;
    const std::int64_t alg = result.active_slots;
    if (lp > static_cast<double>(alg) + 1e-6) {
      std::ostringstream os;
      os << "LP value " << lp << " exceeds ALG " << alg;
      return {"sandwich:lp_above_alg", os.str()};
    }
    if (exact.has_value()) {
      const std::int64_t opt = exact->optimum;
      if (lp > static_cast<double>(opt) + 1e-6) {
        std::ostringstream os;
        os << "LP value " << lp << " exceeds OPT " << opt
           << " (the LP must lower-bound the optimum)";
        return {"sandwich:lp_above_opt", os.str()};
      }
      if (alg < opt) {
        std::ostringstream os;
        os << "ALG " << alg << " beats OPT " << opt
           << " (either schedule is invalid or the oracle is wrong)";
        return {"sandwich:alg_below_opt", os.str()};
      }
      if (alg > nine_fifths_ceil(opt)) {
        std::ostringstream os;
        os << "ALG " << alg << " exceeds ceil((9/5) OPT) = "
           << nine_fifths_ceil(opt) << " (OPT " << opt << ", repairs "
           << result.repairs << ")";
        return {"sandwich:budget", os.str()};
      }

      // Differential leg: the all-Rational pipeline must obey the same
      // sandwich on instances small enough to afford exact simplex.
      if (instance.num_jobs() <= options.exact_pipeline_max_jobs) {
        const at::ExactPipelineResult er =
            at::solve_nested_exact(instance);
        if (er.active_slots < opt ||
            er.active_slots > nine_fifths_ceil(opt)) {
          std::ostringstream os;
          os << "exact pipeline ALG " << er.active_slots
             << " outside [OPT, ceil(9/5 OPT)] = [" << opt << ", "
             << nine_fifths_ceil(opt) << "]";
          return {"sandwich:exact_pipeline", os.str()};
        }
      }
    }
  } catch (const util::CheckError& e) {
    return {classify_failure(e.what()), e.what()};
  }
  return {};
}

namespace {

/// Shared greedy reduction loop behind both minimizers: drop jobs (back
/// to front), shrink g, shrink processing times — keeping only
/// candidates for which `fails_same` holds — until no single reduction
/// applies.
template <typename FailsSame>
at::Instance shrink_instance(at::Instance current,
                             const FailsSame& fails_same) {
  bool improved = true;
  while (improved) {
    improved = false;
    // Drop one job at a time (back to front, so indices stay valid).
    for (int j = current.num_jobs() - 1; j >= 0; --j) {
      at::Instance candidate = current;
      candidate.jobs.erase(candidate.jobs.begin() + j);
      if (fails_same(candidate)) {
        current = std::move(candidate);
        improved = true;
      }
    }
    // Shrink the parallelism.
    while (current.g > 1) {
      at::Instance candidate = current;
      --candidate.g;
      if (!fails_same(candidate)) break;
      current = std::move(candidate);
      improved = true;
    }
    // Shrink processing times.
    for (std::size_t j = 0; j < current.jobs.size(); ++j) {
      while (current.jobs[j].processing > 1) {
        at::Instance candidate = current;
        --candidate.jobs[j].processing;
        if (!fails_same(candidate)) break;
        current = std::move(candidate);
        improved = true;
      }
    }
  }
  return current;
}

}  // namespace

at::Instance minimize_violation(const at::Instance& instance,
                                const std::string& failure_class,
                                const FuzzOptions& options) {
  return shrink_instance(instance, [&](const at::Instance& candidate) {
    if (candidate.jobs.empty()) return false;
    return check_instance(candidate, options).first == failure_class;
  });
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  FuzzReport report;
  util::Rng root(options.seed);
  const auto start = std::chrono::steady_clock::now();
  static obs::Counter& c_instances = obs::counter("at.fuzz.instances");
  static obs::Counter& c_violations = obs::counter("at.fuzz.violations");

  for (int i = 0; i < options.instances; ++i) {
    if (options.time_budget_seconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() > options.time_budget_seconds) break;
    }
    util::Rng rng = root.fork(static_cast<std::uint64_t>(i));
    const at::Instance instance = generate(i, rng, options.max_jobs);
    ++report.instances_run;
    c_instances.add(1);

    auto [failure_class, detail] = check_instance(instance, options);
    if (failure_class.empty()) continue;
    c_violations.add(1);

    Violation v;
    v.index = i;
    v.failure_class = std::move(failure_class);
    v.detail = std::move(detail);
    v.original_jobs = instance.num_jobs();
    v.instance = minimize_violation(instance, v.failure_class, options);
    if (!options.regression_dir.empty()) {
      v.repro_path = write_repro(options.regression_dir, v);
    }
    report.violations.push_back(std::move(v));
  }
  return report;
}

// --------------------------------------------------------------------------
// General-windows family.

namespace {

/// Rotating general-family mix: random crossing windows (loose and
/// contended), the Saha–Purohit-style hard chain, and every fourth
/// draw a laminar instance so the dispatcher's nested leg is fuzzed
/// through the same entry point.
at::Instance generate_general(int index, util::Rng& rng, int max_jobs) {
  at::Instance inst;
  switch (index % 4) {
    case 0: {
      at::gen::RandomGeneralParams p;
      p.g = rng.uniform_int(1, 4);
      p.jobs = static_cast<int>(rng.uniform_int(3, 14));
      p.horizon = rng.uniform_int(6, 16);
      p.max_length = rng.uniform_int(2, 8);
      p.max_processing = rng.uniform_int(1, 4);
      inst = at::gen::random_general(p, rng);
      break;
    }
    case 1:
      inst = at::gen::hard_crossing(rng.uniform_int(2, 4),
                                    static_cast<int>(rng.uniform_int(2, 4)));
      break;
    case 2: {
      // Tight variant: short horizon, long jobs — high contention, so
      // the LP goes genuinely fractional and the repair loop fires.
      at::gen::RandomGeneralParams p;
      p.g = rng.uniform_int(1, 3);
      p.jobs = static_cast<int>(rng.uniform_int(4, 12));
      p.horizon = rng.uniform_int(5, 10);
      p.max_length = p.horizon;
      p.max_processing = rng.uniform_int(2, 5);
      inst = at::gen::random_general(p, rng);
      break;
    }
    default:
      return generate(index, rng, max_jobs);
  }
  // Dropping trailing jobs preserves feasibility (fewer jobs only relax
  // the instance); crossing windows may collapse to laminar, which the
  // dispatcher legs handle.
  if (inst.num_jobs() > max_jobs) {
    inst.jobs.resize(static_cast<std::size_t>(max_jobs));
  }
  return inst;
}

}  // namespace

std::pair<std::string, std::string> check_general_instance(
    const at::Instance& instance, const GeneralFuzzOptions& options) {
  if (instance.jobs.empty()) return {};
  try {
    at::ActiveTimeOptions dispatch;
    dispatch.nested.verify_level = VerifyLevel::kFull;
    dispatch.general.verify_level = VerifyLevel::kFull;
    const at::ActiveTimeResult result =
        at::solve_active_time(instance, dispatch);

    if (instance.is_laminar()) {
      if (result.backend != at::Backend::kNested) {
        return {"general:dispatch",
                "laminar instance dispatched to backend \"" +
                    std::string(at::to_string(result.backend)) + "\""};
      }
      // The dispatcher must be a transparent wrapper on laminar input.
      at::NestedSolverOptions nested_options;
      nested_options.verify_level = VerifyLevel::kFull;
      const at::NestedSolveResult nested =
          at::solve_nested(instance, nested_options);
      if (result.schedule.assignment != nested.schedule.assignment ||
          result.active_slots != nested.active_slots) {
        std::ostringstream os;
        os << "dispatcher result (slots " << result.active_slots
           << ") not bit-identical to solve_nested (slots "
           << nested.active_slots << ")";
        return {"general:laminar_identity", os.str()};
      }
    } else if (result.backend == at::Backend::kNested) {
      return {"general:dispatch",
              "crossing instance dispatched to the nested backend"};
    }

    const std::int64_t alg = result.active_slots;
    const double lp = result.lp_value;
    const at::Interval h = instance.horizon();
    // The greedy backend fires only when the LP itself failed; it has
    // no LP value to sandwich against.
    const bool have_lp = result.backend != at::Backend::kGreedy;
    if (have_lp) {
      if (lp > static_cast<double>(alg) + 1e-6) {
        std::ostringstream os;
        os << "LP value " << lp << " exceeds ALG " << alg;
        return {"sandwich:lp_above_alg", os.str()};
      }
      if (result.backend == at::Backend::kGeneral) {
        // Rational certification of the 2-approx budget (the same
        // certificate solve_general runs at kFull, re-asserted here so
        // the fuzzer fails even if the in-solver gate regresses).
        const std::string err =
            check_general_budget(alg, lp, h.length());
        if (!err.empty()) return {"general:budget", err};
      }
    }

    if (h.length() <= options.brute_force_max_horizon) {
      const auto opt = at::baselines::exact_opt_brute_force(
          instance, options.brute_force_max_horizon);
      if (opt.has_value()) {
        if (have_lp && lp > static_cast<double>(*opt) + 1e-6) {
          std::ostringstream os;
          os << "LP value " << lp << " exceeds OPT " << *opt
             << " (the LP must lower-bound the optimum)";
          return {"sandwich:lp_above_opt", os.str()};
        }
        if (alg < *opt) {
          std::ostringstream os;
          os << "ALG " << alg << " beats OPT " << *opt
             << " (either schedule is invalid or the oracle is wrong)";
          return {"sandwich:alg_below_opt", os.str()};
        }
        if (result.backend == at::Backend::kGeneral && alg > 2 * *opt) {
          std::ostringstream os;
          os << "ALG " << alg << " exceeds 2 * OPT = " << 2 * *opt
             << " (OPT " << *opt << ")";
          return {"general:budget_vs_opt", os.str()};
        }
      }
    }
  } catch (const util::CheckError& e) {
    return {classify_failure(e.what()), e.what()};
  }
  return {};
}

at::Instance minimize_general_violation(const at::Instance& instance,
                                        const std::string& failure_class,
                                        const GeneralFuzzOptions& options) {
  return shrink_instance(instance, [&](const at::Instance& candidate) {
    if (candidate.jobs.empty()) return false;
    return check_general_instance(candidate, options).first == failure_class;
  });
}

FuzzReport run_general_fuzz(const GeneralFuzzOptions& options) {
  FuzzReport report;
  util::Rng root(options.seed);
  const auto start = std::chrono::steady_clock::now();
  static obs::Counter& c_instances =
      obs::counter("at.fuzz.general_instances");
  static obs::Counter& c_violations =
      obs::counter("at.fuzz.general_violations");

  for (int i = 0; i < options.instances; ++i) {
    if (options.time_budget_seconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() > options.time_budget_seconds) break;
    }
    util::Rng rng = root.fork(static_cast<std::uint64_t>(i));
    const at::Instance instance = generate_general(i, rng, options.max_jobs);
    ++report.instances_run;
    c_instances.add(1);

    auto [failure_class, detail] = check_general_instance(instance, options);
    if (failure_class.empty()) continue;
    c_violations.add(1);

    Violation v;
    v.index = i;
    v.failure_class = std::move(failure_class);
    v.detail = std::move(detail);
    v.original_jobs = instance.num_jobs();
    v.instance =
        minimize_general_violation(instance, v.failure_class, options);
    if (!options.regression_dir.empty()) {
      v.repro_path = write_repro(options.regression_dir, v);
    }
    report.violations.push_back(std::move(v));
  }
  return report;
}

// --------------------------------------------------------------------------
// Robust interval-time family.

namespace {

/// Rotating robust mix: interval-carrying laminar and general draws,
/// and every fourth draw a pure point instance so the degenerate path
/// is fuzzed through the same entry point.
at::Instance generate_robust(int index, util::Rng& rng, int max_jobs) {
  if (index % 4 == 3) return generate_general(index, rng, max_jobs);
  at::gen::RandomIntervalParams p;
  p.laminar = (index % 2 == 0);
  p.laminar_params.g = rng.uniform_int(1, 4);
  p.laminar_params.max_depth = static_cast<int>(rng.uniform_int(1, 3));
  p.laminar_params.max_processing = rng.uniform_int(1, 4);
  p.general_params.g = rng.uniform_int(1, 4);
  p.general_params.jobs = static_cast<int>(rng.uniform_int(3, 12));
  p.general_params.horizon = rng.uniform_int(6, 14);
  p.general_params.max_length = rng.uniform_int(2, 8);
  p.general_params.max_processing = rng.uniform_int(1, 4);
  p.interval_probability = 0.8;
  at::Instance inst = at::gen::random_interval(p, rng);
  // Dropping trailing jobs preserves worst-case feasibility (fewer jobs
  // only relax the p_hi corner).
  if (inst.num_jobs() > max_jobs) {
    inst.jobs.resize(static_cast<std::size_t>(max_jobs));
  }
  return inst;
}

/// The point projection: the same instance with every box cleared.
at::Instance strip_intervals(const at::Instance& instance) {
  at::Instance point = instance;
  for (at::Job& job : point.jobs) {
    job.processing_lo = 0;
    job.processing_hi = 0;
  }
  return point;
}

}  // namespace

std::pair<std::string, std::string> check_robust_instance(
    const at::Instance& instance, const RobustFuzzOptions& options) {
  if (instance.jobs.empty()) return {};
  try {
    at::RobustSolverOptions ropts;
    ropts.base.nested.verify_level = VerifyLevel::kFull;
    ropts.base.general.verify_level = VerifyLevel::kFull;
    ropts.verify_level = VerifyLevel::kFull;
    const at::RobustSolveResult res = at::solve_robust(instance, ropts);

    if (res.degenerate == instance.has_processing_intervals()) {
      return {"robust:degenerate_flag",
              std::string("degenerate flag ") +
                  (res.degenerate ? "set" : "clear") +
                  " disagrees with the instance's intervals"};
    }

    // Degenerate-path contract: the nominal solve must be bit-identical
    // to the point solver on the stripped instance (solvers only read
    // the nominal p, so the boxes must not perturb anything).
    at::ActiveTimeOptions dispatch;
    dispatch.nested.verify_level = VerifyLevel::kFull;
    dispatch.general.verify_level = VerifyLevel::kFull;
    const at::ActiveTimeResult point =
        at::solve_active_time(strip_intervals(instance), dispatch);
    if (res.nominal.schedule.assignment != point.schedule.assignment ||
        res.nominal.active_slots != point.active_slots ||
        res.nominal.backend != point.backend) {
      std::ostringstream os;
      os << "nominal robust solve (slots " << res.nominal.active_slots
         << ", backend " << at::to_string(res.nominal.backend)
         << ") not bit-identical to the point solver (slots "
         << point.active_slots << ", backend "
         << at::to_string(point.backend) << ")";
      return {"robust:point_identity", os.str()};
    }

    // The sandwich LP(p_lo) <= ALG(p) <= robust_hi.
    const std::int64_t alg = res.nominal.active_slots;
    if (res.robust_lo > static_cast<double>(alg) + 1e-6) {
      std::ostringstream os;
      os << "robust_lo " << res.robust_lo << " exceeds ALG " << alg;
      return {"robust:lo_above_alg", os.str()};
    }
    if (alg > res.robust_hi) {
      std::ostringstream os;
      os << "ALG " << alg << " exceeds robust_hi " << res.robust_hi;
      return {"robust:alg_above_hi", os.str()};
    }

    // Corner OPT legs: robust_lo must lower-bound the best corner's
    // optimum, robust_hi must cover the worst corner's.
    const at::Interval h = instance.horizon();
    if (h.length() <= options.brute_force_max_horizon) {
      const auto opt_lo = at::baselines::exact_opt_brute_force(
          instance.lo_corner(), options.brute_force_max_horizon);
      if (opt_lo.has_value() &&
          res.robust_lo > static_cast<double>(*opt_lo) + 1e-6) {
        std::ostringstream os;
        os << "robust_lo " << res.robust_lo << " exceeds OPT(p_lo) = "
           << *opt_lo;
        return {"robust:lo_above_opt", os.str()};
      }
      const auto opt_hi = at::baselines::exact_opt_brute_force(
          instance.hi_corner(), options.brute_force_max_horizon);
      if (opt_hi.has_value() && res.robust_hi < *opt_hi) {
        std::ostringstream os;
        os << "robust_hi " << res.robust_hi << " below OPT(p_hi) = "
           << *opt_hi << " (that many slots cannot cover the worst case)";
        return {"robust:hi_below_opt", os.str()};
      }
    }
  } catch (const util::CheckError& e) {
    return {classify_failure(e.what()), e.what()};
  }
  return {};
}

at::Instance minimize_robust_violation(const at::Instance& instance,
                                       const std::string& failure_class,
                                       const RobustFuzzOptions& options) {
  const auto fails_same = [&](const at::Instance& candidate) {
    if (candidate.jobs.empty()) return false;
    try {
      candidate.validate();
    } catch (const util::CheckError&) {
      return false;  // e.g. a processing shrink that broke its box
    }
    return check_robust_instance(candidate, options).first == failure_class;
  };

  at::Instance current = shrink_instance(instance, fails_same);
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t j = 0; j < current.jobs.size(); ++j) {
      // Clear the whole box (point jobs are the simplest repro).
      if (current.jobs[j].has_processing_interval()) {
        at::Instance cand = current;
        cand.jobs[j].processing_lo = 0;
        cand.jobs[j].processing_hi = 0;
        if (fails_same(cand)) {
          current = std::move(cand);
          improved = true;
          continue;
        }
      }
      // Narrow the box toward the nominal from both ends.
      while (current.jobs[j].processing_hi > current.jobs[j].processing) {
        at::Instance cand = current;
        --cand.jobs[j].processing_hi;
        if (!fails_same(cand)) break;
        current = std::move(cand);
        improved = true;
      }
      while (current.jobs[j].has_processing_interval() &&
             current.jobs[j].processing_lo < current.jobs[j].processing) {
        at::Instance cand = current;
        ++cand.jobs[j].processing_lo;
        if (!fails_same(cand)) break;
        current = std::move(cand);
        improved = true;
      }
    }
    if (improved) current = shrink_instance(current, fails_same);
  }
  return current;
}

FuzzReport run_robust_fuzz(const RobustFuzzOptions& options) {
  FuzzReport report;
  util::Rng root(options.seed);
  const auto start = std::chrono::steady_clock::now();
  static obs::Counter& c_instances = obs::counter("at.fuzz.robust_instances");
  static obs::Counter& c_violations =
      obs::counter("at.fuzz.robust_violations");

  for (int i = 0; i < options.instances; ++i) {
    if (options.time_budget_seconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() > options.time_budget_seconds) break;
    }
    util::Rng rng = root.fork(static_cast<std::uint64_t>(i));
    const at::Instance instance = generate_robust(i, rng, options.max_jobs);
    ++report.instances_run;
    c_instances.add(1);

    auto [failure_class, detail] = check_robust_instance(instance, options);
    if (failure_class.empty()) continue;
    c_violations.add(1);

    Violation v;
    v.index = i;
    v.failure_class = std::move(failure_class);
    v.detail = std::move(detail);
    v.original_jobs = instance.num_jobs();
    v.instance =
        minimize_robust_violation(instance, v.failure_class, options);
    if (!options.regression_dir.empty()) {
      v.repro_path = write_repro(options.regression_dir, v);
    }
    report.violations.push_back(std::move(v));
  }
  return report;
}

// --------------------------------------------------------------------------
// Delta-mutation family.

namespace {

/// Applies one delta to a plain instance copy; empty when it would be
/// out of range, break window nesting, lose the last job, or make the
/// instance infeasible (same safety rules the session enforces,
/// simulated without a solve). Laminarity is NOT required: sessions
/// dispatch crossing groups to the general 2-approx, so the fuzz walks
/// freely across the laminar boundary.
std::optional<at::Instance> apply_delta_plain(const at::Instance& instance,
                                              const at::Delta& delta) {
  at::Instance cand = instance;
  try {
    if (const auto* a = std::get_if<at::AddJob>(&delta)) {
      cand.jobs.push_back(a->job);
    } else if (const auto* r = std::get_if<at::RemoveJob>(&delta)) {
      if (r->job < 0 || r->job >= static_cast<int>(cand.jobs.size())) {
        return std::nullopt;
      }
      cand.jobs.erase(cand.jobs.begin() + r->job);
    } else if (const auto* e = std::get_if<at::ExtendWindow>(&delta)) {
      if (e->job < 0 || e->job >= static_cast<int>(cand.jobs.size())) {
        return std::nullopt;
      }
      at::Job& j = cand.jobs[static_cast<std::size_t>(e->job)];
      if (e->window.lo > j.release || e->window.hi < j.deadline) {
        return std::nullopt;
      }
      j.release = e->window.lo;
      j.deadline = e->window.hi;
    } else if (const auto* s = std::get_if<at::ShrinkWindow>(&delta)) {
      if (s->job < 0 || s->job >= static_cast<int>(cand.jobs.size())) {
        return std::nullopt;
      }
      at::Job& j = cand.jobs[static_cast<std::size_t>(s->job)];
      if (s->window.lo < j.release || s->window.hi > j.deadline ||
          s->window.length() < j.processing) {
        return std::nullopt;
      }
      j.release = s->window.lo;
      j.deadline = s->window.hi;
    }
    cand.validate();
  } catch (const util::CheckError&) {
    return std::nullopt;
  }
  if (cand.jobs.empty()) return std::nullopt;
  const at::Interval h = cand.horizon();
  std::vector<at::Time> slots;
  slots.reserve(static_cast<std::size_t>(h.length()));
  for (at::Time t = h.lo; t < h.hi; ++t) slots.push_back(t);
  if (!at::feasible_with_slots(cand, slots)) return std::nullopt;
  return cand;
}

std::optional<at::Delta> propose_session_delta(const at::Instance& instance,
                                               util::Rng& rng) {
  const int n = static_cast<int>(instance.jobs.size());
  if (n == 0) return std::nullopt;
  const int kind = static_cast<int>(rng.uniform_int(0, 3));
  const int pick = static_cast<int>(rng.uniform_int(0, n - 1));
  const at::Job& j = instance.jobs[static_cast<std::size_t>(pick)];
  switch (kind) {
    case 0: {
      at::Job add = j;
      add.processing =
          rng.uniform_int(1, std::max<at::Time>(1, j.window().length()));
      return at::AddJob{add};
    }
    case 1:
      return at::RemoveJob{pick};
    case 2: {
      at::Interval w = j.window();
      w.lo -= rng.uniform_int(0, 2);
      w.hi += rng.uniform_int(0, 2);
      return at::ExtendWindow{pick, w};
    }
    default: {
      at::Interval w = j.window();
      const at::Time slack = w.length() - j.processing;
      if (slack <= 0) return std::nullopt;
      const at::Time cut_lo = rng.uniform_int(0, slack);
      const at::Time cut_hi = rng.uniform_int(0, slack - cut_lo);
      return at::ShrinkWindow{pick,
                              at::Interval{w.lo + cut_lo, w.hi - cut_hi}};
    }
  }
}

std::string delta_comment(const at::Delta& delta) {
  std::ostringstream os;
  if (const auto* a = std::get_if<at::AddJob>(&delta)) {
    os << "# delta add " << a->job.release << ' ' << a->job.deadline << ' '
       << a->job.processing;
  } else if (const auto* r = std::get_if<at::RemoveJob>(&delta)) {
    os << "# delta remove " << r->job;
  } else if (const auto* e = std::get_if<at::ExtendWindow>(&delta)) {
    os << "# delta extend " << e->job << ' ' << e->window.lo << ' '
       << e->window.hi;
  } else if (const auto* s = std::get_if<at::ShrinkWindow>(&delta)) {
    os << "# delta shrink " << s->job << ' ' << s->window.lo << ' '
       << s->window.hi;
  }
  return os.str();
}

std::string write_delta_repro(const std::string& dir,
                              const DeltaViolation& v) {
  std::filesystem::create_directories(dir);
  std::ostringstream name;
  name << "repro_" << sanitize(v.failure_class) << "_stream" << v.index
       << ".txt";
  const std::filesystem::path path = std::filesystem::path(dir) / name.str();
  std::ofstream os(path);
  NAT_CHECK_MSG(os.good(), "cannot write repro file " << path.string());
  io::write_instance(os, v.base);
  // read_instance stops after the declared job lines, so the file stays
  // loadable as the base instance; the stream rides along as comments.
  for (const at::Delta& d : v.deltas) os << delta_comment(d) << '\n';
  os << "# failure_class " << v.failure_class << '\n';
  os << "# minimized_from " << v.original_jobs << " jobs, "
     << v.original_steps << " deltas\n";
  os << "# detail " << v.detail << '\n';
  return path.string();
}

}  // namespace

bool delta_stream_valid(const at::Instance& base,
                        const std::vector<at::Delta>& deltas) {
  at::Instance cur = base;
  try {
    cur.validate();
  } catch (const util::CheckError&) {
    return false;
  }
  if (cur.jobs.empty()) return false;
  for (const at::Delta& d : deltas) {
    auto next = apply_delta_plain(cur, d);
    if (!next) return false;
    cur = std::move(*next);
  }
  return true;
}

std::pair<std::string, std::string> check_delta_stream(
    const at::Instance& base, const std::vector<at::Delta>& deltas) {
  try {
    at::SolverSession session(base);
    session.solve();
    for (std::size_t k = 0; k < deltas.size(); ++k) {
      const at::SessionResult& inc = session.apply(deltas[k]);
      at::SolverSession fresh(session.instance());
      const at::SessionResult& scr = fresh.solve();
      if (inc.schedule.assignment != scr.schedule.assignment ||
          inc.active_slots != scr.active_slots ||
          inc.repairs != scr.repairs) {
        std::ostringstream os;
        os << "step " << k << ": incremental (slots " << inc.active_slots
           << ", repairs " << inc.repairs
           << ") diverged from scratch (slots " << scr.active_slots
           << ", repairs " << scr.repairs << ")";
        return {"session:divergence", os.str()};
      }
      if (std::abs(inc.lp_value - scr.lp_value) >
          1e-6 * (1.0 + std::abs(scr.lp_value))) {
        std::ostringstream os;
        os << "step " << k << ": incremental LP " << inc.lp_value
           << " != scratch LP " << scr.lp_value;
        return {"session:lp_divergence", os.str()};
      }
    }
    // The per-group LP optima must sum to the global strengthened LP
    // (the LP is block-diagonal across window groups). Only defined on
    // laminar instances — crossing groups solve the plain time-indexed
    // LP, which is a different (weaker) bound.
    if (session.instance().is_laminar()) {
      const double global = at::strong_lp_value(session.instance());
      const double inc_lp = session.solve().lp_value;
      if (std::abs(inc_lp - global) > 1e-6 * (1.0 + std::abs(global))) {
        std::ostringstream os;
        os << "final: session LP " << inc_lp << " != global strengthened LP "
           << global;
        return {"session:lp_mismatch", os.str()};
      }
    }
  } catch (const util::CheckError& e) {
    return {classify_failure(e.what()), e.what()};
  }
  return {};
}

void minimize_delta_violation(DeltaViolation& v) {
  const auto fails_same = [&](const at::Instance& base,
                              const std::vector<at::Delta>& deltas) {
    if (!delta_stream_valid(base, deltas)) return false;
    return check_delta_stream(base, deltas).first == v.failure_class;
  };

  bool improved = true;
  while (improved) {
    improved = false;
    // Drop deltas one at a time (back to front). Dropping can shift the
    // meaning of later job indices; delta_stream_valid keeps candidates
    // well-formed and fails_same keeps them on the original bug.
    for (int k = static_cast<int>(v.deltas.size()) - 1; k >= 0; --k) {
      std::vector<at::Delta> cand = v.deltas;
      cand.erase(cand.begin() + k);
      if (fails_same(v.base, cand)) {
        v.deltas = std::move(cand);
        improved = true;
      }
    }
    // Drop base jobs.
    for (int j = v.base.num_jobs() - 1; j >= 0; --j) {
      at::Instance cand = v.base;
      cand.jobs.erase(cand.jobs.begin() + j);
      if (fails_same(cand, v.deltas)) {
        v.base = std::move(cand);
        improved = true;
      }
    }
    // Shrink the parallelism.
    while (v.base.g > 1) {
      at::Instance cand = v.base;
      --cand.g;
      if (!fails_same(cand, v.deltas)) break;
      v.base = std::move(cand);
      improved = true;
    }
  }
}

DeltaFuzzReport run_delta_fuzz(const DeltaFuzzOptions& options) {
  DeltaFuzzReport report;
  util::Rng root(options.seed);
  const auto start = std::chrono::steady_clock::now();
  static obs::Counter& c_streams = obs::counter("at.fuzz.delta_streams");
  static obs::Counter& c_violations =
      obs::counter("at.fuzz.delta_violations");

  for (int i = 0; i < options.streams; ++i) {
    if (options.time_budget_seconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() > options.time_budget_seconds) break;
    }
    util::Rng rng = root.fork(static_cast<std::uint64_t>(i));
    const at::Instance base = generate(i, rng, options.max_jobs);
    if (base.jobs.empty()) continue;

    // Safe stream: each proposal is simulated and unsafe ones skipped,
    // so every replayed delta is one the session must accept.
    std::vector<at::Delta> deltas;
    {
      at::Instance cur = base;
      int guard = 0;
      while (static_cast<int>(deltas.size()) < options.steps &&
             ++guard < 20 * options.steps) {
        const auto delta = propose_session_delta(cur, rng);
        if (!delta) continue;
        auto next = apply_delta_plain(cur, *delta);
        if (!next) continue;
        cur = std::move(*next);
        deltas.push_back(*delta);
      }
    }

    ++report.streams_run;
    c_streams.add(1);
    auto [failure_class, detail] = check_delta_stream(base, deltas);
    if (failure_class.empty()) continue;
    c_violations.add(1);

    DeltaViolation v;
    v.index = i;
    v.failure_class = std::move(failure_class);
    v.detail = std::move(detail);
    v.base = base;
    v.deltas = std::move(deltas);
    v.original_jobs = base.num_jobs();
    v.original_steps = static_cast<int>(v.deltas.size());
    minimize_delta_violation(v);
    if (!options.regression_dir.empty()) {
      v.repro_path = write_delta_repro(options.regression_dir, v);
    }
    report.violations.push_back(std::move(v));
  }
  return report;
}

}  // namespace nat::verify::fuzz
