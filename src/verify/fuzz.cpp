#include "verify/fuzz.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "activetime/exact_pipeline.hpp"
#include "activetime/rounding.hpp"
#include "activetime/solver.hpp"
#include "baselines/exact.hpp"
#include "instances/generators.hpp"
#include "io/serialize.hpp"
#include "obs/counters.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "verify/verify.hpp"

namespace nat::verify::fuzz {

namespace {

/// Restores the fault-injection flag even when a check throws.
class FaultScope {
 public:
  explicit FaultScope(bool on) { at::set_rounding_budget_fault(on); }
  ~FaultScope() { at::set_rounding_budget_fault(false); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

// The stable failure key ("verify:<stage>" / "check:<file>:<line>")
// lives in verify::classify_failure, shared with the batch service.

/// ceil((9/5) * opt) in integers.
std::int64_t nine_fifths_ceil(std::int64_t opt) { return (9 * opt + 4) / 5; }

/// Rotating generator mix. Families 1 and 4 (contended, tight slack)
/// are the genuinely fractional regime where Algorithm 1's round-up
/// machinery fires; the rest cover structure (depth, fan-out, units).
at::Instance generate(int index, util::Rng& rng, int max_jobs) {
  at::Instance inst;
  switch (index % 5) {
    case 0: {
      at::gen::RandomLaminarParams p;
      p.g = rng.uniform_int(1, 4);
      p.max_depth = static_cast<int>(rng.uniform_int(1, 4));
      p.max_children = static_cast<int>(rng.uniform_int(1, 3));
      p.max_processing = rng.uniform_int(1, 4);
      inst = at::gen::random_laminar(p, rng);
      break;
    }
    case 1: {
      at::gen::ContendedParams p;
      p.g = rng.uniform_int(2, 5);
      p.max_groups = static_cast<int>(rng.uniform_int(2, 5));
      p.unit_slack = rng.uniform_int(0, 2);
      p.max_long_jobs = static_cast<int>(rng.uniform_int(1, 2));
      inst = at::gen::random_contended(p, rng);
      break;
    }
    case 2: {
      at::gen::RandomLaminarParams p;
      p.g = rng.uniform_int(1, 3);
      p.max_depth = static_cast<int>(rng.uniform_int(1, 3));
      inst = at::gen::random_laminar_unit(p, rng);
      break;
    }
    case 3: {
      const std::int64_t g = rng.uniform_int(1, 4);
      // Feasibility precondition: per_level <= 2g unit jobs per window.
      const int per_level = static_cast<int>(
          rng.uniform_int(1, std::min<std::int64_t>(3, 2 * g)));
      inst = at::gen::staircase(
          g, static_cast<int>(rng.uniform_int(2, 5)), per_level);
      break;
    }
    default: {
      at::gen::ContendedParams p;
      p.g = rng.uniform_int(3, 6);
      p.min_groups = 3;
      p.max_groups = 6;
      p.unit_slack = rng.uniform_int(1, 2);
      inst = at::gen::random_contended(p, rng);
      break;
    }
  }
  // Hard cap on size: dropping trailing jobs preserves laminarity and
  // feasibility (fewer jobs only relax the instance).
  if (inst.num_jobs() > max_jobs) {
    inst.jobs.resize(static_cast<std::size_t>(max_jobs));
  }
  return inst;
}

std::string sanitize(const std::string& s) {
  std::string out;
  for (char c : s) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '-');
  }
  return out;
}

std::string write_repro(const std::string& dir, const Violation& v) {
  std::filesystem::create_directories(dir);
  std::ostringstream name;
  name << "repro_" << sanitize(v.failure_class) << "_seed" << v.index
       << ".txt";
  const std::filesystem::path path =
      std::filesystem::path(dir) / name.str();
  std::ofstream os(path);
  NAT_CHECK_MSG(os.good(), "cannot write repro file " << path.string());
  io::write_instance(os, v.instance);
  // Trailing metadata: read_instance stops after the declared job
  // lines, so the repro file stays loadable as-is.
  os << "# failure_class " << v.failure_class << '\n';
  os << "# minimized_from_jobs " << v.original_jobs << '\n';
  os << "# detail " << v.detail << '\n';
  return path.string();
}

}  // namespace

std::pair<std::string, std::string> check_instance(
    const at::Instance& instance, const FuzzOptions& options) {
  if (instance.jobs.empty()) return {};
  try {
    FaultScope fault(options.inject_budget_fault);

    // Full exact-arithmetic verification regardless of build type: the
    // fuzzer is the differential harness, so it always pays for rigor.
    at::NestedSolverOptions solver_options;
    solver_options.verify_level = VerifyLevel::kFull;
    const at::NestedSolveResult result =
        at::solve_nested(instance, solver_options);

    // OPT oracle (branch and bound). A blown budget only skips the OPT
    // legs; LP <= ALG still holds unconditionally.
    at::baselines::ExactOptions exact_options;
    exact_options.node_budget = options.exact_node_budget;
    const auto exact =
        at::baselines::exact_opt_laminar(instance, exact_options);

    const double lp = result.lp_value;
    const std::int64_t alg = result.active_slots;
    if (lp > static_cast<double>(alg) + 1e-6) {
      std::ostringstream os;
      os << "LP value " << lp << " exceeds ALG " << alg;
      return {"sandwich:lp_above_alg", os.str()};
    }
    if (exact.has_value()) {
      const std::int64_t opt = exact->optimum;
      if (lp > static_cast<double>(opt) + 1e-6) {
        std::ostringstream os;
        os << "LP value " << lp << " exceeds OPT " << opt
           << " (the LP must lower-bound the optimum)";
        return {"sandwich:lp_above_opt", os.str()};
      }
      if (alg < opt) {
        std::ostringstream os;
        os << "ALG " << alg << " beats OPT " << opt
           << " (either schedule is invalid or the oracle is wrong)";
        return {"sandwich:alg_below_opt", os.str()};
      }
      if (alg > nine_fifths_ceil(opt)) {
        std::ostringstream os;
        os << "ALG " << alg << " exceeds ceil((9/5) OPT) = "
           << nine_fifths_ceil(opt) << " (OPT " << opt << ", repairs "
           << result.repairs << ")";
        return {"sandwich:budget", os.str()};
      }

      // Differential leg: the all-Rational pipeline must obey the same
      // sandwich on instances small enough to afford exact simplex.
      if (instance.num_jobs() <= options.exact_pipeline_max_jobs) {
        const at::ExactPipelineResult er =
            at::solve_nested_exact(instance);
        if (er.active_slots < opt ||
            er.active_slots > nine_fifths_ceil(opt)) {
          std::ostringstream os;
          os << "exact pipeline ALG " << er.active_slots
             << " outside [OPT, ceil(9/5 OPT)] = [" << opt << ", "
             << nine_fifths_ceil(opt) << "]";
          return {"sandwich:exact_pipeline", os.str()};
        }
      }
    }
  } catch (const util::CheckError& e) {
    return {classify_failure(e.what()), e.what()};
  }
  return {};
}

at::Instance minimize_violation(const at::Instance& instance,
                                const std::string& failure_class,
                                const FuzzOptions& options) {
  at::Instance current = instance;
  const auto fails_same = [&](const at::Instance& candidate) {
    if (candidate.jobs.empty()) return false;
    return check_instance(candidate, options).first == failure_class;
  };

  bool improved = true;
  while (improved) {
    improved = false;
    // Drop one job at a time (back to front, so indices stay valid).
    for (int j = current.num_jobs() - 1; j >= 0; --j) {
      at::Instance candidate = current;
      candidate.jobs.erase(candidate.jobs.begin() + j);
      if (fails_same(candidate)) {
        current = std::move(candidate);
        improved = true;
      }
    }
    // Shrink the parallelism.
    while (current.g > 1) {
      at::Instance candidate = current;
      --candidate.g;
      if (!fails_same(candidate)) break;
      current = std::move(candidate);
      improved = true;
    }
    // Shrink processing times.
    for (std::size_t j = 0; j < current.jobs.size(); ++j) {
      while (current.jobs[j].processing > 1) {
        at::Instance candidate = current;
        --candidate.jobs[j].processing;
        if (!fails_same(candidate)) break;
        current = std::move(candidate);
        improved = true;
      }
    }
  }
  return current;
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  FuzzReport report;
  util::Rng root(options.seed);
  const auto start = std::chrono::steady_clock::now();
  static obs::Counter& c_instances = obs::counter("at.fuzz.instances");
  static obs::Counter& c_violations = obs::counter("at.fuzz.violations");

  for (int i = 0; i < options.instances; ++i) {
    if (options.time_budget_seconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() > options.time_budget_seconds) break;
    }
    util::Rng rng = root.fork(static_cast<std::uint64_t>(i));
    const at::Instance instance = generate(i, rng, options.max_jobs);
    ++report.instances_run;
    c_instances.add(1);

    auto [failure_class, detail] = check_instance(instance, options);
    if (failure_class.empty()) continue;
    c_violations.add(1);

    Violation v;
    v.index = i;
    v.failure_class = std::move(failure_class);
    v.detail = std::move(detail);
    v.original_jobs = instance.num_jobs();
    v.instance = minimize_violation(instance, v.failure_class, options);
    if (!options.regression_dir.empty()) {
      v.repro_path = write_repro(options.regression_dir, v);
    }
    report.violations.push_back(std::move(v));
  }
  return report;
}

}  // namespace nat::verify::fuzz
