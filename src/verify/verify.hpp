// Exact-arithmetic self-check layer for the 9/5 pipeline.
//
// The paper's guarantee chain — LP (1) constraints (2)-(8), the
// Lemma 3.1 push-down, Algorithm 1's (9/5)-budget, Lemma 4.1
// feasibility — is proved over exact rationals, but the production
// pipeline executes it in double with kFracEps snapping. This layer
// re-certifies every pipeline artifact in nat::num::Rational arithmetic
// within a *declared rounding radius* of the double values, so a drift
// bug upstream fails loudly instead of shipping a silently wrong
// schedule.
//
// Design constraint: the validators are an independent re-derivation.
// They recompute subtrees, depths and ancestor relations from the raw
// parent/child fields and re-state the LP rows from the StrongLp
// structure rather than calling back into the code they check — which
// also keeps this library *below* nat_activetime in the link graph, so
// solver.cpp can invoke it without a dependency cycle.
//
// Every validator returns "" when the artifact certifies and a
// diagnostic string otherwise; require() is the throwing wrapper the
// pipelines use, and it maintains the at.verify.* counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "activetime/instance.hpp"
#include "activetime/lp_relaxation.hpp"
#include "activetime/schedule.hpp"
#include "activetime/tree.hpp"
#include "numeric/rational.hpp"

namespace nat::verify {

/// How much of the self-check layer runs inside a solve.
///  kOff    — nothing (the Release hot path).
///  kLight  — integer/structural checks only: final schedule coverage,
///            per-slot load, claimed active-slot count. Cheap.
///  kFull   — everything, in exact rationals: LP re-certification,
///            push-down mass/fixed-point invariants, Algorithm 1
///            budget. The Debug/CI setting.
///  kDefault — resolve from the NAT_VERIFY environment variable
///            ("off" | "light" | "full"); else kFull in Debug builds
///            (!NDEBUG) and kOff in Release builds.
enum class VerifyLevel { kOff = 0, kLight = 1, kFull = 2, kDefault = 3 };

/// Resolves kDefault as documented above; other values pass through.
VerifyLevel resolve_level(VerifyLevel requested);
const char* to_string(VerifyLevel level);

/// Declared rounding radius: how far a double-path artifact may sit
/// from the exact value it stands for. kFracEps (1e-6) is the snapping
/// tolerance the double pipeline itself commits to (eps_floor/eps_ceil,
/// push-down residue snaps), so per-value drift up to one radius is
/// legitimate; validators scale it by the number of accumulated terms.
inline constexpr double kDefaultRadius = 1e-6;

/// LP (1): bounds (4), coverage (2), capacity (3), per-job cap (5),
/// window containment (6), ceiling rows (7)/(8) — each re-stated from
/// the StrongLp structure and evaluated in Rational within the radius.
/// Also certifies that `lp_value` equals sum x(i) within radius.
std::string check_lp_solution(const at::LaminarForest& forest,
                              const at::StrongLp& lp,
                              const at::FractionalSolution& sol,
                              double lp_value,
                              double radius = kDefaultRadius);

/// Lemma 3.1 push-down: per-root mass conservation, monotone
/// non-decreasing subtree mass at every node, bounds, and the fixed
/// point — every strictly positive node has fully-open strict
/// descendants (within radius).
std::string check_push_down(const at::LaminarForest& forest,
                            const std::vector<double>& x_before,
                            const std::vector<double>& x_after,
                            double radius = kDefaultRadius);

/// Algorithm 1 output: x~(i) is the floor or ceiling of x(i) on the
/// topmost set I and exactly x(i) elsewhere; Claim 1 holds for I
/// (antichain, positive, zero ancestors, full strict descendants); and
/// the Lemma 3.3 budget x~(Des(r)) <= (9/5) x(Des(r)) holds per root,
/// evaluated in Rational within radius.
std::string check_rounding(const at::LaminarForest& forest,
                           const std::vector<double>& x,
                           const std::vector<at::Time>& x_tilde,
                           const std::vector<int>& topmost,
                           double radius = kDefaultRadius);

/// Zero-radius variant for the exact pipeline's Rational solution.
std::string check_rounding_exact(const at::LaminarForest& forest,
                                 const std::vector<num::Rational>& x,
                                 const std::vector<at::Time>& x_tilde,
                                 const std::vector<int>& topmost);

/// Final schedule, in integer arithmetic (exact by construction):
/// every job receives exactly p_j distinct slots inside its window, no
/// slot carries more than g jobs, the distinct-active-slot count equals
/// `claimed_active_slots`, and — when `open_budget >= 0` — the active
/// count stays within the opened-slot budget sum x~.
std::string check_schedule(const at::Instance& instance,
                           const at::Schedule& schedule,
                           std::int64_t claimed_active_slots,
                           std::int64_t open_budget = -1);

/// General-backend 2-approx budget (docs/GENERAL.md): the claimed
/// active-slot count satisfies ALG <= 2·(LP + slack) in Rational, where
/// the slack covers `num_slots` radius-accurate x(t) terms accumulated
/// by the double-path LP objective. LP <= OPT makes this a certified
/// 2·OPT bound whenever the LP value is trusted.
std::string check_general_budget(std::int64_t active_slots, double lp_value,
                                 std::int64_t num_slots,
                                 double radius = kDefaultRadius);

/// Robust sandwich certificate (docs/ROBUST.md): the best-case LP lower
/// bound on the p_lo corner must not exceed the nominal algorithmic
/// cost — LP(p_lo) <= OPT(p_lo) <= OPT(p) <= ALG(p) — and the nominal
/// cost must not exceed the reported worst-case bound. The LP side is
/// evaluated in Rational with slack for `num_lp_terms` radius-accurate
/// objective terms; the ALG <= robust_hi side is exact integers.
std::string check_robust_sandwich(double robust_lo, std::int64_t alg,
                                  std::int64_t robust_hi,
                                  std::int64_t num_lp_terms,
                                  double radius = kDefaultRadius);

/// Throwing wrapper for pipeline wiring: bumps at.verify.checks and
/// at.verify.stage.<stage>, and on a non-empty report bumps
/// at.verify.failures and throws util::CheckError with the diagnostic.
void require(const char* stage, const std::string& report);

/// Stable failure key from a CheckError message (the taxonomy of
/// docs/CORRECTNESS.md): verify-layer failures ("verify[stage] ...")
/// map to "verify:<stage>"; other NAT_CHECKs map to
/// "check:<file>:<line>". Shared by the differential fuzzer (so
/// delta-debugging cannot silently morph one failure into another) and
/// by service::solve_batch's per-cell error records.
std::string classify_failure(const std::string& what);

}  // namespace nat::verify
