#include "verify/verify.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>

#include "obs/counters.hpp"
#include "util/check.hpp"

namespace nat::verify {

namespace {

using at::LaminarForest;
using num::Rational;

Rational rat(double v) { return Rational::from_double_exact(v); }

/// Des(i), inclusive — recomputed from the raw child lists so the
/// validator does not depend on the traversal code it is checking.
std::vector<int> subtree_of(const LaminarForest& forest, int root) {
  std::vector<int> out;
  std::vector<int> stack = {root};
  while (!stack.empty()) {
    const int i = stack.back();
    stack.pop_back();
    out.push_back(i);
    for (int c : forest.node(i).children) stack.push_back(c);
  }
  return out;
}

/// anc ∈ Anc(node), inclusive — by parent walk.
bool in_ancestors(const LaminarForest& forest, int anc, int node) {
  for (int a = node; a >= 0; a = forest.node(a).parent) {
    if (a == anc) return true;
  }
  return false;
}

/// Nodes ordered deepest-first, so children precede parents and
/// subtree sums accumulate in one pass.
std::vector<int> deepest_first(const LaminarForest& forest) {
  const int m = forest.num_nodes();
  std::vector<int> depth(m, 0), order(m);
  for (int i = 0; i < m; ++i) {
    int d = 0;
    for (int a = forest.node(i).parent; a >= 0; a = forest.node(a).parent) {
      ++d;
    }
    depth[i] = d;
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return depth[a] > depth[b]; });
  return order;
}

/// Per-subtree sums: sum[i] = value[i] + sum over children subtrees.
std::vector<Rational> subtree_sums(const LaminarForest& forest,
                                   const std::vector<Rational>& value) {
  std::vector<Rational> sum(value);
  for (int i : deepest_first(forest)) {
    for (int c : forest.node(i).children) sum[i] += sum[c];
  }
  return sum;
}

/// Slack for a comparison accumulating `terms` radius-accurate values
/// of magnitude scale at most `scale`.
Rational slack(const Rational& radius, std::int64_t terms,
               std::int64_t scale = 1) {
  return radius * Rational(terms + 2) * Rational(std::max<std::int64_t>(
                                            1, scale));
}

std::string describe(const char* what, int node, const Rational& lhs,
                     const Rational& rhs) {
  std::ostringstream os;
  os << what << " at node " << node << ": " << lhs.to_string()
     << " vs bound " << rhs.to_string();
  return os.str();
}

}  // namespace

VerifyLevel resolve_level(VerifyLevel requested) {
  if (requested != VerifyLevel::kDefault) return requested;
  if (const char* env = std::getenv("NAT_VERIFY")) {
    const std::string v(env);
    if (v == "off") return VerifyLevel::kOff;
    if (v == "light") return VerifyLevel::kLight;
    if (v == "full") return VerifyLevel::kFull;
    NAT_CHECK_MSG(false, "NAT_VERIFY must be off|light|full, got '" << v
                                                                   << "'");
  }
#ifndef NDEBUG
  return VerifyLevel::kFull;
#else
  return VerifyLevel::kOff;
#endif
}

const char* to_string(VerifyLevel level) {
  switch (level) {
    case VerifyLevel::kOff:
      return "off";
    case VerifyLevel::kLight:
      return "light";
    case VerifyLevel::kFull:
      return "full";
    case VerifyLevel::kDefault:
      return "default";
  }
  return "?";
}

std::string check_lp_solution(const at::LaminarForest& forest,
                              const at::StrongLp& lp,
                              const at::FractionalSolution& sol,
                              double lp_value, double radius) {
  const int m = forest.num_nodes();
  if (static_cast<int>(sol.x.size()) != m) return "x size mismatch";
  if (sol.y.size() != lp.y_vars.size()) return "y class-count mismatch";
  const Rational r = rat(radius);
  const std::int64_t g = forest.g();

  std::vector<Rational> xe(m);
  for (int i = 0; i < m; ++i) xe[i] = rat(sol.x[i]);

  // Bounds (4): 0 <= x(i) <= L(i), within one radius.
  for (int i = 0; i < m; ++i) {
    if (xe[i] < -slack(r, 1)) return describe("(4) x below 0", i, xe[i], -r);
    const Rational cap(forest.node(i).length());
    if (xe[i] > cap + slack(r, 1)) {
      return describe("(4) x above L", i, xe[i], cap);
    }
  }

  // Coverage (2), capacity (3), per-job cap (5), containment (6).
  std::vector<Rational> node_load(m);
  std::vector<std::int64_t> node_terms(m, 0);
  for (std::size_t c = 0; c < lp.classes.size(); ++c) {
    const at::JobClass& cls = lp.classes[c];
    if (sol.y[c].size() != lp.y_vars[c].size()) {
      return "y slot-count mismatch in class " + std::to_string(c);
    }
    Rational covered;
    for (std::size_t k = 0; k < lp.y_vars[c].size(); ++k) {
      const int i = lp.y_vars[c][k].first;
      if (i < 0 || i >= m) return "y slot node out of range";
      // (6): assignment slots only exist inside Des(k(class)).
      if (!in_ancestors(forest, cls.node, i)) {
        std::ostringstream os;
        os << "(6) class " << c << " has a slot at node " << i
           << " outside Des(" << cls.node << ")";
        return os.str();
      }
      const Rational y = rat(sol.y[c][k]);
      if (y < -slack(r, 1)) return describe("y below 0", i, y, -r);
      // (5) aggregated: Y(i,c) <= |c| * x(i).
      const Rational cap = Rational(cls.count()) * xe[i];
      if (y > cap + slack(r, 2, cls.count())) {
        return describe("(5) per-class cap breached", i, y, cap);
      }
      covered += y;
      node_load[i] += y;
      ++node_terms[i];
    }
    // (2): the class volume is covered.
    const Rational volume =
        Rational(cls.count()) * Rational(cls.processing);
    const std::int64_t terms =
        static_cast<std::int64_t>(lp.y_vars[c].size());
    if (covered < volume - slack(r, terms)) {
      std::ostringstream os;
      os << "(2) class " << c << " undercovered: " << covered.to_string()
         << " of " << volume.to_string();
      return os.str();
    }
  }
  // (3): per-node load at most g * x(i).
  for (int i = 0; i < m; ++i) {
    const Rational cap = Rational(g) * xe[i];
    if (node_load[i] > cap + slack(r, node_terms[i] + 1, g)) {
      return describe("(3) node load above g*x", i, node_load[i], cap);
    }
  }

  // Ceiling constraints (7)/(8) from the OPT_i tests.
  const std::vector<Rational> sums = subtree_sums(forest, xe);
  auto check_ceiling = [&](int i, std::int64_t lb) -> std::string {
    const std::int64_t des =
        static_cast<std::int64_t>(subtree_of(forest, i).size());
    if (sums[i] < Rational(lb) - slack(r, des)) {
      std::ostringstream os;
      os << "(7)/(8) ceiling x(Des(" << i << ")) >= " << lb
         << " violated: " << sums[i].to_string();
      return os.str();
    }
    return {};
  };
  for (int i : lp.nodes_opt_ge_2) {
    if (std::string e = check_ceiling(i, 2); !e.empty()) return e;
  }
  for (int i : lp.nodes_opt_ge_3) {
    if (std::string e = check_ceiling(i, 3); !e.empty()) return e;
  }

  // Reported objective == sum x(i), within radius per term.
  Rational total;
  for (int i = 0; i < m; ++i) total += xe[i];
  const Rational reported = rat(lp_value);
  const Rational diff =
      total > reported ? total - reported : reported - total;
  if (diff > slack(r, m + 1)) {
    std::ostringstream os;
    os << "objective mismatch: sum x = " << total.to_string()
       << ", reported " << reported.to_string();
    return os.str();
  }
  return {};
}

std::string check_push_down(const at::LaminarForest& forest,
                            const std::vector<double>& x_before,
                            const std::vector<double>& x_after,
                            double radius) {
  const int m = forest.num_nodes();
  if (static_cast<int>(x_before.size()) != m ||
      static_cast<int>(x_after.size()) != m) {
    return "x size mismatch";
  }
  const Rational r = rat(radius);

  std::vector<Rational> before(m), after(m);
  for (int i = 0; i < m; ++i) {
    before[i] = rat(x_before[i]);
    after[i] = rat(x_after[i]);
    if (after[i] < -slack(r, 1)) {
      return describe("transform made x negative", i, after[i], -r);
    }
    const Rational cap(forest.node(i).length());
    if (after[i] > cap + slack(r, 1)) {
      return describe("transform pushed x above L", i, after[i], cap);
    }
  }

  const std::vector<Rational> sum_before = subtree_sums(forest, before);
  const std::vector<Rational> sum_after = subtree_sums(forest, after);
  std::vector<std::int64_t> des_count(m, 1);
  for (int i : deepest_first(forest)) {
    for (int c : forest.node(i).children) des_count[i] += des_count[c];
  }
  for (int i = 0; i < m; ++i) {
    // Mass only ever moves downward: no subtree loses open mass (the
    // sub-tolerance snap may shed up to one radius per node).
    if (sum_after[i] < sum_before[i] - slack(r, des_count[i])) {
      return describe("subtree mass lost", i, sum_after[i], sum_before[i]);
    }
    // Per-root conservation: nothing enters a root from above.
    if (forest.node(i).parent < 0 &&
        sum_after[i] > sum_before[i] + slack(r, des_count[i])) {
      return describe("root mass created", i, sum_after[i], sum_before[i]);
    }
  }

  // Lemma 3.1 fixed point: strictly positive nodes have fully-open
  // strict descendants.
  for (int i = 0; i < m; ++i) {
    if (after[i] <= slack(r, 1)) continue;
    for (int d : subtree_of(forest, i)) {
      if (d == i) continue;
      const Rational full(forest.node(d).length());
      if (after[d] < full - slack(r, 2)) {
        std::ostringstream os;
        os << "fixed point broken: node " << i << " positive ("
           << after[i].to_string() << ") but descendant " << d
           << " not full (" << after[d].to_string() << " of "
           << full.to_string() << ")";
        return os.str();
      }
    }
  }
  return {};
}

namespace {

/// Shared core of check_rounding / check_rounding_exact. `radius` is
/// zero for the exact pipeline.
std::string check_rounding_impl(const at::LaminarForest& forest,
                                const std::vector<Rational>& xe,
                                const std::vector<at::Time>& x_tilde,
                                const std::vector<int>& topmost,
                                const Rational& r) {
  const int m = forest.num_nodes();
  if (static_cast<int>(xe.size()) != m ||
      static_cast<int>(x_tilde.size()) != m) {
    return "size mismatch";
  }
  std::vector<bool> in_topmost(m, false);
  for (int i : topmost) {
    if (i < 0 || i >= m) return "topmost index out of range";
    in_topmost[i] = true;
  }

  // Lemma 3.3 budget first — it is the theorem the stage exists to
  // enforce, so a breach reports as such even when per-node bounds are
  // also broken. Checked per root (= per tree; the rounding never moves
  // mass across trees, so the lemma applies to each independently):
  // x~(Des(root)) <= (9/5) x(Des(root)).
  {
    const std::vector<Rational> frac_sums = subtree_sums(forest, xe);
    std::vector<Rational> tilde(m);
    for (int i = 0; i < m; ++i) tilde[i] = Rational(x_tilde[i]);
    const std::vector<Rational> tilde_sums = subtree_sums(forest, tilde);
    std::vector<std::int64_t> des_count(m, 1);
    for (int i : deepest_first(forest)) {
      for (int c : forest.node(i).children) des_count[i] += des_count[c];
    }
    const Rational nine_fifths = Rational::from_int64(9, 5);
    for (int i = 0; i < m; ++i) {
      if (forest.node(i).parent >= 0) continue;
      const Rational budget = nine_fifths * frac_sums[i];
      if (tilde_sums[i] > budget + slack(r, des_count[i] + 1, 2)) {
        std::ostringstream os;
        os << "(Lemma 3.3) 9/5 budget exceeded at root " << i
           << ": x~ = " << tilde_sums[i].to_string() << " > (9/5) x = "
           << budget.to_string();
        return os.str();
      }
    }
  }

  // Claim 1 on I: antichain, positive, zero strict ancestors, full
  // strict descendants.
  for (int t : topmost) {
    if (xe[t] <= slack(r, 1)) {
      return describe("(Claim 1) topmost not positive", t, xe[t],
                      Rational(0));
    }
    for (int a = forest.node(t).parent; a >= 0; a = forest.node(a).parent) {
      if (in_topmost[a]) {
        std::ostringstream os;
        os << "(Claim 1) topmost " << a << " is an ancestor of topmost "
           << t;
        return os.str();
      }
      if (xe[a] > slack(r, 1)) {
        return describe("(Claim 1) ancestor of topmost positive", a, xe[a],
                        Rational(0));
      }
    }
    for (int d : subtree_of(forest, t)) {
      if (d == t) continue;
      const Rational full(forest.node(d).length());
      if (xe[d] < full - slack(r, 2)) {
        return describe("(Claim 1) descendant of topmost not full", d,
                        xe[d], full);
      }
    }
  }

  // Per-node membership: floor/ceil on I, the value itself elsewhere.
  for (int i = 0; i < m; ++i) {
    if (x_tilde[i] < 0 || x_tilde[i] > forest.node(i).length()) {
      return describe("x~ out of [0, L]", i, Rational(x_tilde[i]),
                      Rational(forest.node(i).length()));
    }
    const Rational v(x_tilde[i]);
    const Rational lo = xe[i] - slack(r, 1);
    const Rational hi = xe[i] + slack(r, 1);
    if (!in_topmost[i]) {
      // Must be (radius-)integral and preserved exactly.
      if (v < lo || v > hi) {
        return describe("node outside I changed by rounding", i, v, xe[i]);
      }
      continue;
    }
    // Floor or ceiling of a value within one radius of xe. When xe is
    // (radius-)integral the two coincide, so only that integer is
    // admissible — a +1 overshoot on an integral node must not pass as
    // "the ceiling".
    const Rational fl(xe[i].floor(), num::BigInt(1));
    const Rational frac_part = xe[i] - fl;  // in [0, 1)
    Rational lo_allowed = fl;
    Rational hi_allowed = fl + Rational(1);
    if (frac_part <= slack(r, 1)) {
      hi_allowed = fl;  // xe ~ floor: ceiling is the same integer
    } else if (Rational(1) - frac_part <= slack(r, 1)) {
      lo_allowed = fl + Rational(1);  // xe ~ floor+1: floor snaps up
    }
    if (v < lo_allowed || v > hi_allowed) {
      return describe("x~ not the floor or ceiling of x", i, v, xe[i]);
    }
  }

  return {};
}

}  // namespace

std::string check_rounding(const at::LaminarForest& forest,
                           const std::vector<double>& x,
                           const std::vector<at::Time>& x_tilde,
                           const std::vector<int>& topmost, double radius) {
  std::vector<Rational> xe(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xe[i] = rat(x[i]);
  return check_rounding_impl(forest, xe, x_tilde, topmost, rat(radius));
}

std::string check_rounding_exact(const at::LaminarForest& forest,
                                 const std::vector<num::Rational>& x,
                                 const std::vector<at::Time>& x_tilde,
                                 const std::vector<int>& topmost) {
  return check_rounding_impl(forest, x, x_tilde, topmost, Rational(0));
}

std::string check_schedule(const at::Instance& instance,
                           const at::Schedule& schedule,
                           std::int64_t claimed_active_slots,
                           std::int64_t open_budget) {
  const std::size_t n = instance.jobs.size();
  if (schedule.assignment.size() != n) return "assignment size mismatch";
  std::vector<at::Time> active;
  for (std::size_t j = 0; j < n; ++j) {
    const at::Job& job = instance.jobs[j];
    const std::vector<at::Time>& slots = schedule.assignment[j];
    if (static_cast<std::int64_t>(slots.size()) != job.processing) {
      std::ostringstream os;
      os << "job " << j << " receives " << slots.size() << " slots, needs "
         << job.processing;
      return os.str();
    }
    for (std::size_t k = 0; k < slots.size(); ++k) {
      if (k > 0 && slots[k] <= slots[k - 1]) {
        std::ostringstream os;
        os << "job " << j << " slots not strictly increasing at index "
           << k;
        return os.str();
      }
      if (slots[k] < job.release || slots[k] >= job.deadline) {
        std::ostringstream os;
        os << "job " << j << " runs at t=" << slots[k]
           << " outside its window [" << job.release << ", "
           << job.deadline << ")";
        return os.str();
      }
      active.push_back(slots[k]);
    }
  }
  std::sort(active.begin(), active.end());
  // Per-slot load: at most g jobs share one slot time.
  std::int64_t load = 0;
  for (std::size_t k = 0; k < active.size(); ++k) {
    load = (k > 0 && active[k] == active[k - 1]) ? load + 1 : 1;
    if (load > instance.g) {
      std::ostringstream os;
      os << "slot t=" << active[k] << " carries more than g="
         << instance.g << " jobs";
      return os.str();
    }
  }
  active.erase(std::unique(active.begin(), active.end()), active.end());
  const std::int64_t distinct = static_cast<std::int64_t>(active.size());
  if (distinct != claimed_active_slots) {
    std::ostringstream os;
    os << "claimed " << claimed_active_slots << " active slots, schedule "
       << "has " << distinct;
    return os.str();
  }
  if (open_budget >= 0 && distinct > open_budget) {
    std::ostringstream os;
    os << "active slots " << distinct << " exceed the opened budget "
       << open_budget;
    return os.str();
  }
  return {};
}

std::string check_general_budget(std::int64_t active_slots, double lp_value,
                                 std::int64_t num_slots, double radius) {
  const Rational lp = rat(lp_value);
  if (lp.sign() < 0) {
    return "LP value is negative: " + lp.to_string();
  }
  // The double-path LP objective accumulates one x(t) per slot, each
  // radius-accurate, so the certified bound is 2·(LP + slack).
  const Rational bound =
      Rational(2) * (lp + slack(rat(radius), num_slots, 1));
  if (Rational(active_slots) > bound) {
    std::ostringstream os;
    os << "2-approx budget violated: ALG " << active_slots << " > 2·LP = "
       << bound.to_string() << " (LP " << lp.to_string() << ")";
    return os.str();
  }
  return {};
}

std::string check_robust_sandwich(double robust_lo, std::int64_t alg,
                                  std::int64_t robust_hi,
                                  std::int64_t num_lp_terms, double radius) {
  const Rational lo = rat(robust_lo);
  if (lo < -slack(rat(radius), num_lp_terms, 1)) {
    return "robust_lo is negative: " + lo.to_string();
  }
  // LP(p_lo) <= OPT(p_lo) <= OPT(p) <= ALG(p): the double-path LP
  // objective accumulates one radius-accurate term per variable.
  if (lo > Rational(alg) + slack(rat(radius), num_lp_terms, 1)) {
    std::ostringstream os;
    os << "robust sandwich violated: LP(p_lo) = " << lo.to_string()
       << " > ALG = " << alg;
    return os.str();
  }
  // ALG(p) <= robust_hi: both sides are exact slot counts.
  if (alg > robust_hi) {
    std::ostringstream os;
    os << "robust sandwich violated: ALG = " << alg << " > robust_hi = "
       << robust_hi;
    return os.str();
  }
  return {};
}

void require(const char* stage, const std::string& report) {
  static obs::Counter& c_checks = obs::counter("at.verify.checks");
  c_checks.add(1);
  obs::counter(std::string("at.verify.stage.") + stage).add(1);
  if (!report.empty()) {
    static obs::Counter& c_failures = obs::counter("at.verify.failures");
    c_failures.add(1);
  }
  NAT_CHECK_MSG(report.empty(), "verify[" << stage << "] " << report);
}

std::string classify_failure(const std::string& what) {
  if (const std::size_t v = what.find("verify["); v != std::string::npos) {
    const std::size_t end = what.find(']', v);
    if (end != std::string::npos) {
      return "verify:" + what.substr(v + 7, end - v - 7);
    }
  }
  const std::size_t at = what.find(" at ");
  if (at != std::string::npos) {
    std::size_t end = what.find(" — ", at);
    if (end == std::string::npos) end = what.size();
    return "check:" + what.substr(at + 4, end - at - 4);
  }
  return "check:?";
}

}  // namespace nat::verify
