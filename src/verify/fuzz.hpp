// Differential fuzz harness for the 9/5 pipeline and the general
// (non-laminar) 2-approx backend.
//
// The laminar family generates random laminar instances (rotating over
// the generator families, deterministic per seed), runs the double
// pipeline with the full exact-arithmetic verify layer enabled, and
// asserts the sandwich
//
//   LP <= OPT <= ALG <= ceil((9/5) * OPT)
//
// against the branch-and-bound OPT oracle; small instances are also
// cross-checked against the all-Rational exact pipeline. The general
// family (run_general_fuzz) mixes crossing-window instances (including
// the Saha–Purohit-style hard chain) with laminar ones, routes them
// through the laminarity dispatcher, and asserts
//
//   LP <= OPT <= ALG <= 2 * LP  (rationally certified)
//
// against the slot-subset brute-force oracle, plus bit-identity with
// solve_nested on the laminar draws. Every violation is classified by a
// stable failure key, greedily delta-debugged down to a minimal
// instance that still fails the same way, and (optionally) written to
// corpus/regressions/ as a self-contained `activetime v1` repro file.
//
// Used by bench/fuzz_differential (CLI) and tests/test_verify (smoke +
// fault-injection coverage).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "activetime/instance.hpp"
#include "activetime/session.hpp"

namespace nat::verify::fuzz {

struct FuzzOptions {
  int instances = 500;
  std::uint64_t seed = 1;
  int max_jobs = 40;
  // Stop early after this many seconds (0 = no time limit). The run
  // stays deterministic in what it *checks*; the limit only truncates.
  double time_budget_seconds = 0.0;
  // Directory for minimized repro files; empty = do not write.
  std::string regression_dir;
  // Enables the Algorithm 1 off-by-one fault (rounding.hpp) for the
  // whole run — the self-test that the verify layer catches a real
  // approximation-budget bug. Never set outside tests.
  bool inject_budget_fault = false;
  // Search budget for the branch-and-bound OPT oracle; instances whose
  // oracle run exceeds it skip the OPT legs of the sandwich.
  std::int64_t exact_node_budget = 4'000'000;
  // Instances up to this many jobs are also cross-checked against the
  // all-Rational exact pipeline.
  int exact_pipeline_max_jobs = 10;
};

struct Violation {
  int index = -1;             // fuzz iteration that produced it
  std::string failure_class;  // stable key, e.g. "verify:rounding"
  std::string detail;         // full diagnostic of the original failure
  at::Instance instance;      // minimized repro
  int original_jobs = 0;      // size before minimization
  std::string repro_path;     // written file ("" when not persisted)
};

struct FuzzReport {
  int instances_run = 0;
  std::vector<Violation> violations;
};

/// Runs the pipeline + sandwich on one instance. Returns
/// {failure_class, detail}; both empty when the instance certifies.
std::pair<std::string, std::string> check_instance(
    const at::Instance& instance, const FuzzOptions& options);

/// Greedy delta-debugging: drops jobs, shrinks g and processing times —
/// keeping only changes that preserve `failure_class` — until no single
/// reduction applies.
at::Instance minimize_violation(const at::Instance& instance,
                                const std::string& failure_class,
                                const FuzzOptions& options);

/// The full loop: generate, check, minimize, persist.
FuzzReport run_fuzz(const FuzzOptions& options);

// --------------------------------------------------------------------------
// General-windows family: crossing-window instances through the
// laminarity dispatcher (at::solve_active_time) and the LP-rounding
// 2-approx, certified with the rational verify layer.

struct GeneralFuzzOptions {
  int instances = 300;
  std::uint64_t seed = 1;
  int max_jobs = 16;
  double time_budget_seconds = 0.0;
  std::string regression_dir;  // empty = do not write repro files
  // Horizon cap for the slot-subset brute-force OPT oracle; instances
  // with longer horizons skip the OPT legs of the sandwich (the
  // LP <= ALG <= 2*LP legs always run).
  int brute_force_max_horizon = 18;
};

/// Runs the dispatcher + 2-approx sandwich on one instance. Returns
/// {failure_class, detail}; both empty when the instance certifies.
/// Checks, in order: dispatch correctness (laminar -> nested backend,
/// bit-identical to solve_nested; crossing -> general/greedy), the
/// rational budget ALG <= 2*LP (general:budget), and the OPT sandwich
/// LP <= OPT <= ALG against exact_opt_brute_force when the horizon
/// allows it.
std::pair<std::string, std::string> check_general_instance(
    const at::Instance& instance, const GeneralFuzzOptions& options);

/// Greedy delta-debugging against check_general_instance (same loop as
/// minimize_violation: drop jobs, shrink g and processing times).
at::Instance minimize_general_violation(const at::Instance& instance,
                                        const std::string& failure_class,
                                        const GeneralFuzzOptions& options);

/// The full loop: generate (random_general / hard_crossing / laminar
/// mix), check, minimize, persist. Reuses FuzzReport / Violation.
FuzzReport run_general_fuzz(const GeneralFuzzOptions& options);

// --------------------------------------------------------------------------
// Robust interval-time family (docs/ROBUST.md): instances with
// per-job [p_lo, p_hi] uncertainty boxes through at::solve_robust,
// checking the sandwich LP(p_lo) <= ALG(p) <= robust_hi, corner
// consistency against the brute-force OPT oracle on small horizons, and
// — on every draw — that stripping the boxes reproduces the point
// solver bit-identically (the degenerate-path contract).

struct RobustFuzzOptions {
  int instances = 200;
  std::uint64_t seed = 1;
  int max_jobs = 16;
  double time_budget_seconds = 0.0;
  std::string regression_dir;  // empty = do not write repro files
  // Horizon cap for the brute-force OPT legs on the lo/hi corners;
  // longer-horizon instances keep the LP/ALG sandwich legs only.
  int brute_force_max_horizon = 16;
};

/// Runs solve_robust + the sandwich/corner/degenerate legs on one
/// instance. Returns {failure_class, detail}; both empty when the
/// instance certifies. Point instances exercise the degenerate path
/// (bit-identity with solve_active_time).
std::pair<std::string, std::string> check_robust_instance(
    const at::Instance& instance, const RobustFuzzOptions& options);

/// Greedy delta-debugging against check_robust_instance: drops jobs,
/// shrinks g, narrows and clears uncertainty boxes — keeping only
/// candidates that stay valid and fail with the same class.
at::Instance minimize_robust_violation(const at::Instance& instance,
                                       const std::string& failure_class,
                                       const RobustFuzzOptions& options);

/// The full loop: generate (random_interval laminar/general mix plus
/// point draws), check, minimize, persist. Reuses FuzzReport/Violation;
/// repro files use the "activetime v2" format when boxes survive
/// minimization.
FuzzReport run_robust_fuzz(const RobustFuzzOptions& options);

// --------------------------------------------------------------------------
// Delta-mutation family: random safe delta streams through a persistent
// SolverSession, checking at every step that the incremental result is
// bit-identical to a from-scratch session on the same instance, and at
// the end of the stream that the session's LP value matches the global
// strengthened LP (docs/INCREMENTAL.md, "The determinism contract").

struct DeltaFuzzOptions {
  int streams = 100;
  std::uint64_t seed = 1;
  int steps = 25;     // deltas per stream (proposals, some are skipped)
  int max_jobs = 30;  // base-instance size cap
  double time_budget_seconds = 0.0;
  std::string regression_dir;  // empty = do not persist repros
};

struct DeltaViolation {
  int index = -1;             // stream index that produced it
  std::string failure_class;  // e.g. "session:divergence"
  std::string detail;
  at::Instance base;               // minimized base instance
  std::vector<at::Delta> deltas;   // minimized stream
  int original_steps = 0;          // stream length before minimization
  int original_jobs = 0;           // base size before minimization
  std::string repro_path;          // written file ("" when not persisted)
};

struct DeltaFuzzReport {
  int streams_run = 0;
  std::vector<DeltaViolation> violations;
};

/// Replays `deltas` through one SolverSession over `base`, comparing
/// against fresh sessions. Returns {failure_class, detail}; both empty
/// when every step matches. Streams must be *valid* (each delta applies
/// cleanly in sequence) — use delta_stream_valid to pre-check.
std::pair<std::string, std::string> check_delta_stream(
    const at::Instance& base, const std::vector<at::Delta>& deltas);

/// True iff every delta applies to the evolving instance without
/// violating bounds/nesting/feasibility (plain simulation, no solves).
/// Crossing windows are allowed — the session dispatches those groups
/// to the general backend. The minimizer uses this to keep candidate
/// streams valid while dropping deltas and base jobs.
bool delta_stream_valid(const at::Instance& base,
                        const std::vector<at::Delta>& deltas);

/// Greedy minimization: drops deltas (back to front), then base jobs,
/// then shrinks g — keeping only candidates that stay valid and fail
/// with the same class.
void minimize_delta_violation(DeltaViolation& v);

/// The full loop: generate base + stream, replay, minimize, persist.
/// Repro files are `activetime v1` instances followed by `# delta ...`
/// comment lines (one per delta), so they stay loadable as instances.
DeltaFuzzReport run_delta_fuzz(const DeltaFuzzOptions& options);

}  // namespace nat::verify::fuzz
