// Set Cover: the NP-complete anchor of the Section 6 reduction chain.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace nat::red {

struct SetCoverInstance {
  int universe = 0;                    // elements 0..universe-1
  std::vector<std::vector<int>> sets;  // each sorted, elements in range

  void validate() const;
};

/// Minimum cover size via bitmask DP over the universe (exact;
/// universe must be <= 20). Nullopt when no cover exists.
std::optional<int> setcover_minimum(const SetCoverInstance& instance);

/// Greedy H_g-approximation (largest uncovered gain first); returns the
/// chosen set indices, empty when no cover exists.
std::optional<std::vector<int>> setcover_greedy(
    const SetCoverInstance& instance);

}  // namespace nat::red
