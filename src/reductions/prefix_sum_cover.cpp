#include "reductions/prefix_sum_cover.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace nat::red {

void PscInstance::validate() const {
  NAT_CHECK_MSG(k >= 0, "negative k");
  for (const Vec& vec : u) {
    NAT_CHECK_MSG(vec.size() == v.size(), "dimension mismatch");
    for (std::int64_t x : vec) {
      NAT_CHECK_MSG(x >= 1, "u entries must be positive (N+), got " << x);
    }
  }
  for (std::int64_t x : v) NAT_CHECK_MSG(x >= 0, "negative target entry");
}

bool prefix_dominates(const Vec& sum, const Vec& target) {
  NAT_CHECK(sum.size() == target.size());
  std::int64_t ps = 0;
  std::int64_t pt = 0;
  for (std::size_t j = 0; j < sum.size(); ++j) {
    ps += sum[j];
    pt += target[j];
    if (ps < pt) return false;
  }
  return true;
}

namespace {

bool feasible_with_k(const PscInstance& instance, int k) {
  const int n = static_cast<int>(instance.u.size());
  if (k > n) return false;
  const int d = instance.dim();
  // Enumerate k-combinations of distinct indices.
  std::vector<int> idx(k);
  for (int i = 0; i < k; ++i) idx[i] = i;
  if (k == 0) {
    return prefix_dominates(Vec(d, 0), instance.v);
  }
  for (;;) {
    Vec sum(d, 0);
    for (int i : idx) {
      for (int j = 0; j < d; ++j) sum[j] += instance.u[i][j];
    }
    if (prefix_dominates(sum, instance.v)) return true;
    // Next combination.
    int pos = k - 1;
    while (pos >= 0 && idx[pos] == n - k + pos) --pos;
    if (pos < 0) break;
    ++idx[pos];
    for (int i = pos + 1; i < k; ++i) idx[i] = idx[i - 1] + 1;
  }
  return false;
}

}  // namespace

bool psc_feasible_brute_force(const PscInstance& instance) {
  instance.validate();
  return feasible_with_k(instance, instance.k);
}

std::optional<int> psc_minimum_brute_force(const PscInstance& instance) {
  instance.validate();
  const int n = static_cast<int>(instance.u.size());
  for (int k = 0; k <= n; ++k) {
    if (feasible_with_k(instance, k)) return k;
  }
  return std::nullopt;
}

}  // namespace nat::red
