#include "reductions/setcover.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace nat::red {

void SetCoverInstance::validate() const {
  NAT_CHECK_MSG(universe >= 0, "negative universe");
  for (const auto& set : sets) {
    for (int e : set) {
      NAT_CHECK_MSG(e >= 0 && e < universe, "element out of range: " << e);
    }
  }
}

std::optional<int> setcover_minimum(const SetCoverInstance& instance) {
  instance.validate();
  NAT_CHECK_MSG(instance.universe <= 20, "universe too large for DP");
  const int full = (1 << instance.universe) - 1;
  std::vector<std::uint32_t> set_masks;
  for (const auto& set : instance.sets) {
    std::uint32_t mask = 0;
    for (int e : set) mask |= 1u << e;
    set_masks.push_back(mask);
  }
  constexpr int kInf = 1 << 28;
  std::vector<int> dp(full + 1, kInf);
  dp[0] = 0;
  for (int mask = 0; mask <= full; ++mask) {
    if (dp[mask] == kInf) continue;
    for (std::uint32_t sm : set_masks) {
      const int next = static_cast<int>(mask | sm);
      dp[next] = std::min(dp[next], dp[mask] + 1);
    }
  }
  if (dp[full] == kInf) return std::nullopt;
  return dp[full];
}

std::optional<std::vector<int>> setcover_greedy(
    const SetCoverInstance& instance) {
  instance.validate();
  std::vector<bool> covered(instance.universe, false);
  int remaining = instance.universe;
  std::vector<int> chosen;
  while (remaining > 0) {
    int best = -1;
    int best_gain = 0;
    for (std::size_t s = 0; s < instance.sets.size(); ++s) {
      int gain = 0;
      for (int e : instance.sets[s]) gain += covered[e] ? 0 : 1;
      if (gain > best_gain) {
        best_gain = gain;
        best = static_cast<int>(s);
      }
    }
    if (best < 0) return std::nullopt;  // uncoverable element
    chosen.push_back(best);
    for (int e : instance.sets[best]) {
      if (!covered[e]) {
        covered[e] = true;
        --remaining;
      }
    }
  }
  return chosen;
}

}  // namespace nat::red
