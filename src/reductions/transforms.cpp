#include "reductions/transforms.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace nat::red {

PscInstance setcover_to_psc(const SetCoverInstance& instance, int k) {
  instance.validate();
  NAT_CHECK(k >= 1);
  const int d = instance.universe;
  NAT_CHECK(d >= 1);

  // 0/1 membership vectors (1-indexed j in the math; [.]_0 := 0).
  auto membership = [&](const std::vector<int>& set) {
    Vec m(d, 0);
    for (int e : set) m[e] = 1;
    return m;
  };

  // Difference encoding with slope 2(d - j). NOTE (DESIGN.md §5): the
  // paper writes offset 2 + (d - j), but its own monotonicity algebra
  // drops a term — with 0/1 inputs that offset does not make u'
  // non-increasing, which hop 2 requires. Slope 2 telescopes
  // identically (the per-index constants cancel between Σu' and v', so
  // the prefix-domination test reduces to the set-cover domination
  // test) and does guarantee the ordering.
  PscInstance out;
  out.k = k;
  out.v.resize(d);
  for (int j = 1; j <= d; ++j) {
    const std::int64_t vj = 1;                  // target is 1^d
    const std::int64_t vjm1 = (j >= 2) ? 1 : 0;  // [v]_0 = 0
    out.v[j - 1] = vj - vjm1 + 2 * k + 2 * static_cast<std::int64_t>(k) *
                                           (d - j);
  }
  for (const auto& set : instance.sets) {
    const Vec m = membership(set);
    Vec enc(d);
    for (int j = 1; j <= d; ++j) {
      const std::int64_t uj = m[j - 1];
      const std::int64_t ujm1 = (j >= 2) ? m[j - 2] : 0;
      enc[j - 1] = uj - ujm1 + 2 + 2 * static_cast<std::int64_t>(d - j);
    }
    out.u.push_back(std::move(enc));
  }
  out.validate();
  // Hop 2 requires non-increasing vectors; certify the encoding.
  for (const Vec& vec : out.u) {
    NAT_CHECK(std::is_sorted(vec.rbegin(), vec.rend()));
  }
  NAT_CHECK(std::is_sorted(out.v.rbegin(), out.v.rend()));
  return out;
}

PscToActiveTimeResult psc_to_active_time(const PscInstance& psc) {
  psc.validate();
  const int n = static_cast<int>(psc.u.size());
  const int d = psc.dim();
  NAT_CHECK(n >= 1 && d >= 1);
  for (const Vec& vec : psc.u) {
    NAT_CHECK_MSG(std::is_sorted(vec.rbegin(), vec.rend()),
                  "hop 2 requires non-increasing u vectors");
  }
  NAT_CHECK_MSG(std::is_sorted(psc.v.rbegin(), psc.v.rend()),
                "hop 2 requires a non-increasing target");

  std::int64_t W = 1;
  for (const Vec& vec : psc.u) {
    for (std::int64_t x : vec) W = std::max(W, x);
  }
  for (std::int64_t x : psc.v) W = std::max(W, x);

  const std::int64_t p = static_cast<std::int64_t>(d) * W;  // machines = g

  PscToActiveTimeResult out;
  out.W = W;
  out.instance.g = p;
  out.non_special_slots = static_cast<std::int64_t>(n) * (W - 1);

  for (int i = 1; i <= n; ++i) {
    const Vec& u = psc.u[i - 1];
    const at::Time block_lo = static_cast<at::Time>(i - 1) * W;
    // S1: rigid unit jobs pinning every non-special slot of the block.
    for (std::int64_t w = 2; w <= W; ++w) {
      std::int64_t at_least_w = 0;
      for (std::int64_t x : u) at_least_w += (x >= w) ? 1 : 0;
      const std::int64_t count = p - at_least_w;
      const at::Time slot = block_lo + w - 1;
      for (std::int64_t c = 0; c < count; ++c) {
        out.instance.jobs.push_back(at::Job{slot, slot + 1, 1});
      }
    }
    // S2: flexible unit jobs over the whole block.
    std::int64_t total = 0;
    for (std::int64_t x : u) total += x;
    for (std::int64_t c = 0; c < total - d; ++c) {
      out.instance.jobs.push_back(
          at::Job{block_lo, block_lo + W, 1});
    }
  }
  // S3: target jobs spanning the whole horizon.
  for (std::int64_t len : psc.v) {
    if (len == 0) continue;
    out.instance.jobs.push_back(
        at::Job{0, static_cast<at::Time>(n) * W, len});
  }
  out.instance.validate();
  NAT_CHECK(out.instance.is_laminar());
  return out;
}

}  // namespace nat::red
