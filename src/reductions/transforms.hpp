// The Section 6 reduction chain, both hops:
//
//   Set Cover  →  Prefix Sum Cover  →  nested active-time.
//
// Hop 1 (proof of NP-completeness of PSC): each set becomes the
// difference-encoded vector u'_i[j] = u_i[j] − u_i[j−1] + 2 + (d − j)
// and the all-ones target becomes v'[j] = v[j] − v[j−1] + 2k + k(d − j)
// (1-indexed j, index 0 defined as 0). A cover of size ≤ k exists iff
// k of the u' prefix-dominate v'.
//
// Hop 2: a PSC instance (u, v, k) with max scalar W and dimension d
// becomes a nested active-time instance on g = dW parallel capacity:
//   S1: for each vector i and w ∈ [2, W], g − |{j : u_i[j] >= w}| rigid
//       unit jobs pinned to slot (i−1)W + w − 1;
//   S2: Σ_j u_i[j] − d flexible unit jobs with window [(i−1)W, iW);
//   S3: for each j, one job of length v[j] with window [0, nW).
// All non-special slots must open; opening the special slot of block i
// frees exactly the profile u_i for S3 (Lemma 6.2), so
//   OPT = n(W−1) + (minimum feasible k of the PSC instance).
#pragma once

#include "activetime/instance.hpp"
#include "reductions/prefix_sum_cover.hpp"
#include "reductions/setcover.hpp"

namespace nat::red {

/// Hop 1. Requires k >= 1 and universe >= 1; sets are encoded as 0/1
/// membership vectors first.
PscInstance setcover_to_psc(const SetCoverInstance& instance, int k);

struct PscToActiveTimeResult {
  at::Instance instance;
  std::int64_t non_special_slots = 0;  // n * (W - 1)
  std::int64_t W = 0;                  // max scalar in the PSC data
};

/// Hop 2. Requires nondecreasing-prefix ("ordered") inputs as the paper
/// does: u_i[1] >= u_i[2] >= ... and v[1] >= v[2] >= ..., all u >= 1.
PscToActiveTimeResult psc_to_active_time(const PscInstance& instance);

}  // namespace nat::red
