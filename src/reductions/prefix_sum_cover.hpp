// Prefix Sum Cover (Section 6): given vectors u_1..u_n ∈ N₊^d, a target
// v ∈ N^d and an integer k, pick k vectors whose sum prefix-dominates
// v — i.e. every prefix sum of the chosen sum is >= the corresponding
// prefix sum of v (the paper's ≺ relation).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace nat::red {

using Vec = std::vector<std::int64_t>;

struct PscInstance {
  std::vector<Vec> u;  // all entries >= 1 (N₊), equal dimension d
  Vec v;               // target, entries >= 0
  int k = 0;

  int dim() const { return static_cast<int>(v.size()); }
  void validate() const;
};

/// sum ≺ target: every prefix sum of `sum` is >= that of `target`.
bool prefix_dominates(const Vec& sum, const Vec& target);

/// Exhaustive search over k-subsets of distinct indices; true iff some
/// choice prefix-dominates v. Intended for small n (reduction tests).
bool psc_feasible_brute_force(const PscInstance& instance);

/// Smallest k' <= n for which a k'-subset prefix-dominates v
/// (brute force); nullopt if even all n vectors do not.
std::optional<int> psc_minimum_brute_force(const PscInstance& instance);

}  // namespace nat::red
