#include "flow/dinic.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <tuple>

#include "obs/counters.hpp"
#include "util/check.hpp"

namespace nat::flow {

MaxFlowGraph::MaxFlowGraph(int num_nodes) : head_(num_nodes) {}

int MaxFlowGraph::add_node() {
  head_.emplace_back();
  return static_cast<int>(head_.size()) - 1;
}

int MaxFlowGraph::add_edge(int from, int to, std::int64_t capacity) {
  NAT_CHECK(from >= 0 && from < num_nodes());
  NAT_CHECK(to >= 0 && to < num_nodes());
  NAT_CHECK_MSG(capacity >= 0, "negative capacity " << capacity);
  int id = static_cast<int>(edges_.size());
  edges_.push_back(Edge{to, capacity, capacity});
  edges_.push_back(Edge{from, 0, 0});
  head_[from].push_back(id);
  head_[to].push_back(id + 1);
  return id;
}

bool MaxFlowGraph::bfs(int s, int t) {
  level_.assign(head_.size(), -1);
  std::queue<int> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    int v = q.front();
    q.pop();
    edges_scanned_ += static_cast<std::int64_t>(head_[v].size());
    for (int id : head_[v]) {
      const Edge& e = edges_[id];
      if (e.cap > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        q.push(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

std::int64_t MaxFlowGraph::dfs(int v, int t, std::int64_t pushed) {
  if (v == t) return pushed;
  for (std::size_t& i = iter_[v]; i < head_[v].size(); ++i) {
    ++edges_scanned_;
    int id = head_[v][i];
    Edge& e = edges_[id];
    if (e.cap <= 0 || level_[e.to] != level_[v] + 1) continue;
    std::int64_t got = dfs(e.to, t, std::min(pushed, e.cap));
    if (got > 0) {
      e.cap -= got;
      edges_[id ^ 1].cap += got;
      return got;
    }
  }
  return 0;
}

std::int64_t MaxFlowGraph::max_flow(int source, int sink) {
  NAT_CHECK(source >= 0 && source < num_nodes());
  NAT_CHECK(sink >= 0 && sink < num_nodes());
  NAT_CHECK(source != sink);
  NAT_CHECK_MSG(flow_value_ == 0 ||
                    (source == last_source_ && sink == last_sink_),
                "max_flow: endpoint change while flow is retained");
  last_source_ = source;
  last_sink_ = sink;
  std::int64_t total = 0;
  std::int64_t phases = 0;
  std::int64_t aug_paths = 0;
  edges_scanned_ = 0;
  while (bfs(source, sink)) {
    ++phases;
    iter_.assign(head_.size(), 0);
    while (std::int64_t pushed =
               dfs(source, sink, std::numeric_limits<std::int64_t>::max())) {
      ++aug_paths;
      total += pushed;
    }
  }
  // Flushed once per call: the hot loops above touch only plain members.
  static obs::Counter& c_calls = obs::counter("flow.dinic.calls");
  static obs::Counter& c_phases = obs::counter("flow.dinic.phases");
  static obs::Counter& c_paths = obs::counter("flow.dinic.aug_paths");
  static obs::Counter& c_scanned = obs::counter("flow.dinic.edges_scanned");
  c_calls.add(1);
  c_phases.add(phases);
  c_paths.add(aug_paths);
  c_scanned.add(edges_scanned_);
  flow_value_ += total;
  return total;
}

std::int64_t MaxFlowGraph::push_residual(int a, int b, std::int64_t amount) {
  if (a == b || amount <= 0) return amount;
  std::int64_t pushed = 0;
  std::vector<int> via(head_.size());  // arriving edge id; -1 unseen, -2 root
  while (pushed < amount) {
    std::fill(via.begin(), via.end(), -1);
    via[a] = -2;
    std::queue<int> q;
    q.push(a);
    while (!q.empty() && via[b] < 0) {
      int x = q.front();
      q.pop();
      for (int id : head_[x]) {
        const Edge& e = edges_[id];
        if (e.cap > 0 && via[e.to] == -1) {
          via[e.to] = id;
          q.push(e.to);
        }
      }
    }
    if (via[b] == -1) break;
    std::int64_t aug = amount - pushed;
    for (int x = b; x != a; x = edges_[via[x] ^ 1].to) {
      aug = std::min(aug, edges_[via[x]].cap);
    }
    for (int x = b; x != a;) {
      const int id = via[x];
      edges_[id].cap -= aug;
      edges_[id ^ 1].cap += aug;
      x = edges_[id ^ 1].to;
    }
    pushed += aug;
  }
  return pushed;
}

std::int64_t MaxFlowGraph::set_capacity(int id, std::int64_t capacity) {
  NAT_CHECK(id >= 0 && static_cast<std::size_t>(id) < edges_.size());
  NAT_CHECK_MSG((id & 1) == 0, "set_capacity expects a forward edge id");
  NAT_CHECK_MSG(capacity >= 0, "negative capacity " << capacity);
  Edge& fwd = edges_[id];
  Edge& rev = edges_[id ^ 1];
  const std::int64_t flow = fwd.original - fwd.cap;
  fwd.original = capacity;
  if (flow <= capacity) {
    fwd.cap = capacity - flow;
    return 0;
  }
  // The decrease strands `excess` units. Pin the edge at its new
  // capacity, then rebalance the tail's surplus and the head's deficit:
  // first reroute tail→head through the residual graph (preserves the
  // flow value), then cancel the remainder back to the endpoints —
  // tail→source and sink→head residual paths carry it by flow
  // decomposition (see docs/PERFORMANCE.md for the argument).
  const std::int64_t excess = flow - capacity;
  NAT_CHECK_MSG(last_source_ >= 0,
                "set_capacity: stranding decrease before any max_flow");
  fwd.cap = 0;
  rev.cap = capacity;
  const int tail = rev.to;
  const int head = fwd.to;
  const std::int64_t rerouted = push_residual(tail, head, excess);
  const std::int64_t cancel = excess - rerouted;
  if (cancel > 0) {
    NAT_CHECK_MSG(push_residual(tail, last_source_, cancel) == cancel,
                  "set_capacity: tail→source cancellation fell short");
    NAT_CHECK_MSG(push_residual(last_sink_, head, cancel) == cancel,
                  "set_capacity: sink→head cancellation fell short");
    flow_value_ -= cancel;
    static obs::Counter& c_cancelled =
        obs::counter("flow.dinic.flow_cancelled");
    c_cancelled.add(cancel);
  }
  return cancel;
}

std::int64_t MaxFlowGraph::flow_on(int id) const {
  NAT_CHECK(id >= 0 && static_cast<std::size_t>(id) < edges_.size());
  NAT_CHECK_MSG((id & 1) == 0, "flow_on expects a forward edge id");
  return edges_[id].original - edges_[id].cap;
}

std::int64_t MaxFlowGraph::capacity_on(int id) const {
  NAT_CHECK(id >= 0 && static_cast<std::size_t>(id) < edges_.size());
  return edges_[id].original;
}

void MaxFlowGraph::reset() {
  for (Edge& e : edges_) e.cap = e.original;
  flow_value_ = 0;
}

void MaxFlowGraph::reset_flow_keep_topology() {
  // Same restore as reset(): reverse edges have original == 0, so this
  // zeroes every residual back-arc without touching the adjacency
  // arrays or edge storage.
  reset();
}

std::vector<bool> MaxFlowGraph::min_cut_source_side(int source) const {
  std::vector<bool> side(head_.size(), false);
  std::queue<int> q;
  side[source] = true;
  q.push(source);
  while (!q.empty()) {
    int v = q.front();
    q.pop();
    for (int id : head_[v]) {
      const Edge& e = edges_[id];
      if (e.cap > 0 && !side[e.to]) {
        side[e.to] = true;
        q.push(e.to);
      }
    }
  }
  return side;
}

std::int64_t edmonds_karp_reference(
    int num_nodes,
    const std::vector<std::tuple<int, int, std::int64_t>>& edges, int source,
    int sink) {
  // Dense residual matrix: fine for the small random graphs in tests.
  std::vector<std::vector<std::int64_t>> cap(
      num_nodes, std::vector<std::int64_t>(num_nodes, 0));
  for (const auto& [u, v, c] : edges) cap[u][v] += c;
  std::int64_t total = 0;
  for (;;) {
    std::vector<int> parent(num_nodes, -1);
    parent[source] = source;
    std::queue<int> q;
    q.push(source);
    while (!q.empty() && parent[sink] < 0) {
      int u = q.front();
      q.pop();
      for (int v = 0; v < num_nodes; ++v) {
        if (cap[u][v] > 0 && parent[v] < 0) {
          parent[v] = u;
          q.push(v);
        }
      }
    }
    if (parent[sink] < 0) break;
    std::int64_t aug = std::numeric_limits<std::int64_t>::max();
    for (int v = sink; v != source; v = parent[v]) {
      aug = std::min(aug, cap[parent[v]][v]);
    }
    for (int v = sink; v != source; v = parent[v]) {
      cap[parent[v]][v] -= aug;
      cap[v][parent[v]] += aug;
    }
    total += aug;
  }
  return total;
}

}  // namespace nat::flow
