#include "flow/dinic.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <tuple>

#include "obs/counters.hpp"
#include "util/check.hpp"

namespace nat::flow {

MaxFlowGraph::MaxFlowGraph(int num_nodes) : head_(num_nodes) {}

int MaxFlowGraph::add_node() {
  head_.emplace_back();
  return static_cast<int>(head_.size()) - 1;
}

int MaxFlowGraph::add_edge(int from, int to, std::int64_t capacity) {
  NAT_CHECK(from >= 0 && from < num_nodes());
  NAT_CHECK(to >= 0 && to < num_nodes());
  NAT_CHECK_MSG(capacity >= 0, "negative capacity " << capacity);
  int id = static_cast<int>(edges_.size());
  edges_.push_back(Edge{to, capacity, capacity});
  edges_.push_back(Edge{from, 0, 0});
  head_[from].push_back(id);
  head_[to].push_back(id + 1);
  return id;
}

bool MaxFlowGraph::bfs(int s, int t) {
  level_.assign(head_.size(), -1);
  std::queue<int> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    int v = q.front();
    q.pop();
    edges_scanned_ += static_cast<std::int64_t>(head_[v].size());
    for (int id : head_[v]) {
      const Edge& e = edges_[id];
      if (e.cap > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        q.push(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

std::int64_t MaxFlowGraph::dfs(int v, int t, std::int64_t pushed) {
  if (v == t) return pushed;
  for (std::size_t& i = iter_[v]; i < head_[v].size(); ++i) {
    ++edges_scanned_;
    int id = head_[v][i];
    Edge& e = edges_[id];
    if (e.cap <= 0 || level_[e.to] != level_[v] + 1) continue;
    std::int64_t got = dfs(e.to, t, std::min(pushed, e.cap));
    if (got > 0) {
      e.cap -= got;
      edges_[id ^ 1].cap += got;
      return got;
    }
  }
  return 0;
}

std::int64_t MaxFlowGraph::max_flow(int source, int sink) {
  NAT_CHECK(source >= 0 && source < num_nodes());
  NAT_CHECK(sink >= 0 && sink < num_nodes());
  NAT_CHECK(source != sink);
  std::int64_t total = 0;
  std::int64_t phases = 0;
  std::int64_t aug_paths = 0;
  edges_scanned_ = 0;
  while (bfs(source, sink)) {
    ++phases;
    iter_.assign(head_.size(), 0);
    while (std::int64_t pushed =
               dfs(source, sink, std::numeric_limits<std::int64_t>::max())) {
      ++aug_paths;
      total += pushed;
    }
  }
  // Flushed once per call: the hot loops above touch only plain members.
  static obs::Counter& c_calls = obs::counter("flow.dinic.calls");
  static obs::Counter& c_phases = obs::counter("flow.dinic.phases");
  static obs::Counter& c_paths = obs::counter("flow.dinic.aug_paths");
  static obs::Counter& c_scanned = obs::counter("flow.dinic.edges_scanned");
  c_calls.add(1);
  c_phases.add(phases);
  c_paths.add(aug_paths);
  c_scanned.add(edges_scanned_);
  return total;
}

std::int64_t MaxFlowGraph::flow_on(int id) const {
  NAT_CHECK(id >= 0 && static_cast<std::size_t>(id) < edges_.size());
  NAT_CHECK_MSG((id & 1) == 0, "flow_on expects a forward edge id");
  return edges_[id].original - edges_[id].cap;
}

std::int64_t MaxFlowGraph::capacity_on(int id) const {
  NAT_CHECK(id >= 0 && static_cast<std::size_t>(id) < edges_.size());
  return edges_[id].original;
}

void MaxFlowGraph::reset() {
  for (Edge& e : edges_) e.cap = e.original;
}

std::vector<bool> MaxFlowGraph::min_cut_source_side(int source) const {
  std::vector<bool> side(head_.size(), false);
  std::queue<int> q;
  side[source] = true;
  q.push(source);
  while (!q.empty()) {
    int v = q.front();
    q.pop();
    for (int id : head_[v]) {
      const Edge& e = edges_[id];
      if (e.cap > 0 && !side[e.to]) {
        side[e.to] = true;
        q.push(e.to);
      }
    }
  }
  return side;
}

std::int64_t edmonds_karp_reference(
    int num_nodes,
    const std::vector<std::tuple<int, int, std::int64_t>>& edges, int source,
    int sink) {
  // Dense residual matrix: fine for the small random graphs in tests.
  std::vector<std::vector<std::int64_t>> cap(
      num_nodes, std::vector<std::int64_t>(num_nodes, 0));
  for (const auto& [u, v, c] : edges) cap[u][v] += c;
  std::int64_t total = 0;
  for (;;) {
    std::vector<int> parent(num_nodes, -1);
    parent[source] = source;
    std::queue<int> q;
    q.push(source);
    while (!q.empty() && parent[sink] < 0) {
      int u = q.front();
      q.pop();
      for (int v = 0; v < num_nodes; ++v) {
        if (cap[u][v] > 0 && parent[v] < 0) {
          parent[v] = u;
          q.push(v);
        }
      }
    }
    if (parent[sink] < 0) break;
    std::int64_t aug = std::numeric_limits<std::int64_t>::max();
    for (int v = sink; v != source; v = parent[v]) {
      aug = std::min(aug, cap[parent[v]][v]);
    }
    for (int v = sink; v != source; v = parent[v]) {
      cap[parent[v]][v] -= aug;
      cap[v][parent[v]] += aug;
    }
    total += aug;
  }
  return total;
}

}  // namespace nat::flow
