// Max-flow via Dinic's algorithm (BFS level graph + blocking DFS).
//
// The feasibility oracles of the active-time library (slot-level and
// node-level, Lemma 4.1) reduce "can these jobs be scheduled in these
// open slots?" to a max-flow saturation test, and schedule extraction
// reads per-edge flows back. Integer capacities only — every capacity
// in this repository is a job volume or g * slot count.
#pragma once

#include <cstdint>
#include <tuple>
#include <vector>

namespace nat::flow {

class MaxFlowGraph {
 public:
  explicit MaxFlowGraph(int num_nodes = 0);

  int add_node();
  int num_nodes() const { return static_cast<int>(head_.size()); }

  /// Adds a directed edge with the given capacity; returns its id.
  /// (A residual reverse edge with capacity 0 is created internally.)
  int add_edge(int from, int to, std::int64_t capacity);

  /// Computes the maximum s-t flow. May be called once per graph state;
  /// call reset() to rerun with the same capacities.
  std::int64_t max_flow(int source, int sink);

  /// Flow pushed across edge `id` by the last max_flow() call.
  std::int64_t flow_on(int id) const;
  std::int64_t capacity_on(int id) const;

  /// Restores all edge capacities to their originals (undoes max_flow).
  void reset();

  /// Nodes reachable from `source` in the residual graph after
  /// max_flow(): the source side of a minimum cut.
  std::vector<bool> min_cut_source_side(int source) const;

 private:
  struct Edge {
    int to;
    std::int64_t cap;       // residual capacity
    std::int64_t original;  // as given at add_edge
  };

  bool bfs(int s, int t);
  std::int64_t dfs(int v, int t, std::int64_t pushed);

  std::vector<Edge> edges_;                // edge 2k and 2k+1 are paired
  std::vector<std::vector<int>> head_;     // adjacency: edge ids per node
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::int64_t edges_scanned_ = 0;  // per-max_flow work, flushed to obs
};

/// Reference Edmonds–Karp implementation used by property tests to
/// cross-check Dinic on random graphs. `edges` are (from, to, cap).
std::int64_t edmonds_karp_reference(
    int num_nodes,
    const std::vector<std::tuple<int, int, std::int64_t>>& edges, int source,
    int sink);

}  // namespace nat::flow
