// Max-flow via Dinic's algorithm (BFS level graph + blocking DFS).
//
// The feasibility oracles of the active-time library (slot-level and
// node-level, Lemma 4.1) reduce "can these jobs be scheduled in these
// open slots?" to a max-flow saturation test, and schedule extraction
// reads per-edge flows back. Integer capacities only — every capacity
// in this repository is a job volume or g * slot count.
//
// The graph supports incremental reuse (activetime/oracle.hpp): edge
// capacities can be retuned in place with set_capacity(), and
// max_flow() augments on top of whatever flow is already present, so a
// sequence of related feasibility queries pays for one build and the
// flow delta between queries instead of a fresh solve each time. See
// docs/PERFORMANCE.md for the warm-start invariants.
#pragma once

#include <cstdint>
#include <tuple>
#include <vector>

namespace nat::flow {

class MaxFlowGraph {
 public:
  explicit MaxFlowGraph(int num_nodes = 0);

  int add_node();
  int num_nodes() const { return static_cast<int>(head_.size()); }

  /// Adds a directed edge with the given capacity; returns its id.
  /// (A residual reverse edge with capacity 0 is created internally.)
  int add_edge(int from, int to, std::int64_t capacity);

  /// Augments the current flow to an s-t maximum and returns the
  /// *additional* flow pushed by this call. On a freshly built (or
  /// reset) graph that is the max-flow value; called again after
  /// capacity updates it is the warm-started delta. The current total
  /// is tracked in flow_value().
  std::int64_t max_flow(int source, int sink);

  /// Flow pushed across edge `id` by the last max_flow() call.
  std::int64_t flow_on(int id) const;
  std::int64_t capacity_on(int id) const;

  /// Total flow currently routed from the last max_flow() source to its
  /// sink (sum of all augmentations minus cancellations).
  std::int64_t flow_value() const { return flow_value_; }

  /// Retunes the capacity of forward edge `id` in place. Increases
  /// simply widen the residual arc (retained flow stays valid). A
  /// decrease below the flow currently on the edge strands that excess:
  /// it is cancelled by pushing it back along residual paths tail→source
  /// and sink→head (both exist by flow decomposition), shrinking the
  /// total flow. Returns the amount of flow cancelled (0 for increases
  /// or slack decreases). Requires max_flow() to have been called
  /// before any cancelling decrease, so the source/sink are known.
  std::int64_t set_capacity(int id, std::int64_t capacity);

  /// Restores all edge capacities to their originals (undoes max_flow).
  void reset();

  /// Zeroes the flow but keeps nodes, edges, and all edge storage —
  /// the allocation-free between-solves reset used by the incremental
  /// oracle. Equivalent to reset() plus forgetting the flow value.
  void reset_flow_keep_topology();

  /// Nodes reachable from `source` in the residual graph after
  /// max_flow(): the source side of a minimum cut.
  std::vector<bool> min_cut_source_side(int source) const;

 private:
  struct Edge {
    int to;
    std::int64_t cap;       // residual capacity
    std::int64_t original;  // as given at add_edge
  };

  bool bfs(int s, int t);
  std::int64_t dfs(int v, int t, std::int64_t pushed);
  /// Pushes up to `amount` units along residual paths from `a` to `b`;
  /// returns the amount actually pushed.
  std::int64_t push_residual(int a, int b, std::int64_t amount);

  std::vector<Edge> edges_;                // edge 2k and 2k+1 are paired
  std::vector<std::vector<int>> head_;     // adjacency: edge ids per node
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::int64_t edges_scanned_ = 0;  // per-max_flow work, flushed to obs
  std::int64_t flow_value_ = 0;
  int last_source_ = -1, last_sink_ = -1;  // endpoints of the last solve
};

/// Reference Edmonds–Karp implementation used by property tests to
/// cross-check Dinic on random graphs. `edges` are (from, to, cap).
std::int64_t edmonds_karp_reference(
    int num_nodes,
    const std::vector<std::tuple<int, int, std::int64_t>>& edges, int source,
    int sink);

}  // namespace nat::flow
