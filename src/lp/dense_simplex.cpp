#include "lp/dense_simplex.hpp"

#include "obs/counters.hpp"

namespace nat::lp {

Solution solve(const Model& model, const SolveOptions& options) {
  TableauSimplex<DoubleTraits> solver;
  TableauSimplex<DoubleTraits>::Options opt;
  opt.tol = options.tol;
  opt.feas_tol = options.feas_tol;
  opt.max_iterations = options.max_iterations;
  opt.cancel = options.cancel;
  Solution sol = solver.solve(model, opt);
  // Every iteration of the dense tableau backend is a pivot.
  static obs::Counter& c_solves = obs::counter("lp.dense.solves");
  static obs::Counter& c_pivots = obs::counter("lp.dense.pivots");
  c_solves.add(1);
  c_pivots.add(sol.iterations);
  return sol;
}

}  // namespace nat::lp
