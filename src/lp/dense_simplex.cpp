#include "lp/dense_simplex.hpp"

namespace nat::lp {

Solution solve(const Model& model, const SolveOptions& options) {
  TableauSimplex<DoubleTraits> solver;
  TableauSimplex<DoubleTraits>::Options opt;
  opt.tol = options.tol;
  opt.feas_tol = options.feas_tol;
  opt.max_iterations = options.max_iterations;
  return solver.solve(model, opt);
}

}  // namespace nat::lp
