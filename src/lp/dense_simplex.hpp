// Floating-point LP solver front-end (see lp/simplex.hpp for the
// algorithm). This is the backend every experiment uses.
#pragma once

#include <cstdint>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace nat::lp {

using Solution = GenericSolution<double>;

struct SolveOptions {
  double tol = 1e-9;
  double feas_tol = 1e-7;
  std::int64_t max_iterations = -1;  // -1: auto
  // Cooperative cancellation, polled per pivot (util/cancel.hpp).
  const util::CancelToken* cancel = nullptr;
};

/// Solves `model` (minimization) with the dense two-phase simplex.
Solution solve(const Model& model, const SolveOptions& options = {});

}  // namespace nat::lp
