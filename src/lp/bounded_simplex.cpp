#include "lp/bounded_simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "obs/counters.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"

namespace nat::lp {

namespace {

constexpr double kInfU = std::numeric_limits<double>::infinity();

class BoundedSimplex {
 public:
  Solution run(const Model& model, const SolveOptions& options) {
    tol_ = options.tol;
    feas_tol_ = options.feas_tol;
    cancel_ = options.cancel;
    build(model);
    max_iterations_ = options.max_iterations >= 0
                          ? options.max_iterations
                          : 200 * static_cast<std::int64_t>(rows_ + cols_) +
                                2000;
    bland_after_ = 4 * static_cast<std::int64_t>(rows_ + cols_) + 200;

    Solution sol;
    Status st = phase1();
    if (st != Status::kOptimal) {
      sol.status = st == Status::kUnbounded ? Status::kInfeasible : st;
      sol.iterations = iterations_;
      flush_counters();
      return sol;
    }
    st = phase2();
    sol.status = st;
    sol.iterations = iterations_;
    if (st == Status::kOptimal) extract(model, sol);
    flush_counters();
    return sol;
  }

 private:
  struct VarMap {
    int col_pos = -1;
    int col_neg = -1;
    double shift = 0.0;
  };

  double& at(std::size_t r, std::size_t c) { return tab_[r * cols_ + c]; }

  void build(const Model& model) {
    varmap_.assign(model.num_variables(), VarMap{});
    std::vector<double> ub;  // per standardized column
    int next = 0;
    for (int i = 0; i < model.num_variables(); ++i) {
      const Variable& v = model.variable(i);
      VarMap& vm = varmap_[i];
      if (std::isfinite(v.lower)) {
        vm.shift = v.lower;
        vm.col_pos = next++;
        ub.push_back(std::isfinite(v.upper) ? v.upper - v.lower : kInfU);
      } else {
        NAT_CHECK_MSG(!std::isfinite(v.upper),
                      "free variable with finite upper bound unsupported");
        vm.col_pos = next++;
        vm.col_neg = next++;
        ub.push_back(kInfU);
        ub.push_back(kInfU);
      }
    }
    structural_ = next;

    // Rows to equalities with slack/surplus; rhs >= 0 after negation.
    struct StdRow {
      double rhs;
      std::vector<std::pair<int, double>> coeffs;
      bool needs_artificial;
    };
    std::vector<StdRow> srows;
    for (const Row& row : model.rows()) {
      StdRow sr;
      sr.rhs = row.rhs;
      std::vector<double> dense(structural_, 0.0);
      for (const auto& [var, coeff] : row.coeffs) {
        const VarMap& vm = varmap_[var];
        sr.rhs -= coeff * vm.shift;
        dense[vm.col_pos] += coeff;
        if (vm.col_neg >= 0) dense[vm.col_neg] -= coeff;
      }
      double slack_sign = 0.0;  // 0 for equality
      Sense sense = row.sense;
      if (sr.rhs < 0.0) {
        sr.rhs = -sr.rhs;
        for (double& d : dense) d = -d;
        if (sense == Sense::kLe) sense = Sense::kGe;
        else if (sense == Sense::kGe) sense = Sense::kLe;
      }
      if (sense == Sense::kLe) slack_sign = 1.0;
      else if (sense == Sense::kGe) slack_sign = -1.0;
      for (int c = 0; c < structural_; ++c) {
        if (dense[c] != 0.0) sr.coeffs.push_back({c, dense[c]});
      }
      // Slack with +1 coefficient can serve as the starting basis;
      // surplus (-1) and equalities need an artificial.
      sr.needs_artificial = slack_sign <= 0.0;
      if (slack_sign != 0.0) {
        sr.coeffs.push_back({next, slack_sign});
        ub.push_back(kInfU);
        ++next;
      }
      srows.push_back(std::move(sr));
    }
    // Artificial columns.
    art_begin_ = next;
    for (const StdRow& sr : srows) {
      if (sr.needs_artificial) {
        ub.push_back(kInfU);
        ++next;
      }
    }
    cols_ = static_cast<std::size_t>(next);
    rows_ = srows.size();
    ub_ = std::move(ub);
    tab_.assign(rows_ * cols_, 0.0);
    beta_.assign(rows_, 0.0);
    basis_.assign(rows_, -1);
    at_upper_.assign(cols_, false);

    int art = static_cast<int>(art_begin_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (const auto& [c, v] : srows[r].coeffs) at(r, c) = v;
      beta_[r] = srows[r].rhs;
      if (srows[r].needs_artificial) {
        at(r, static_cast<std::size_t>(art)) = 1.0;
        basis_[r] = art++;
      } else {
        basis_[r] = srows[r].coeffs.back().first;  // the +1 slack
      }
    }

    cost_.assign(cols_, 0.0);
    for (int i = 0; i < model.num_variables(); ++i) {
      const double c = model.variable(i).objective;
      if (c == 0.0) continue;
      cost_[varmap_[i].col_pos] += c;
      if (varmap_[i].col_neg >= 0) cost_[varmap_[i].col_neg] -= c;
    }
    iterations_ = 0;
    use_bland_ = false;
    pivots_ = 0;
    bound_flips_ = 0;
    degenerate_ = 0;
  }

  void flush_counters() const {
    static obs::Counter& c_solves = obs::counter("lp.bounded.solves");
    static obs::Counter& c_pivots = obs::counter("lp.bounded.pivots");
    static obs::Counter& c_flips = obs::counter("lp.bounded.bound_flips");
    static obs::Counter& c_degen = obs::counter("lp.bounded.degenerate");
    c_solves.add(1);
    c_pivots.add(pivots_);
    c_flips.add(bound_flips_);
    c_degen.add(degenerate_);
  }

  void reset_objrow(const std::vector<double>& c) {
    objrow_.assign(cols_, 0.0);
    for (std::size_t j = 0; j < cols_; ++j) objrow_[j] = c[j];
    for (std::size_t r = 0; r < rows_; ++r) {
      const double cb = c[basis_[r]];
      if (cb == 0.0) continue;
      for (std::size_t j = 0; j < cols_; ++j) objrow_[j] -= cb * at(r, j);
    }
  }

  /// Performs the Gaussian pivot on the coefficient columns (beta_ is
  /// maintained separately as explicit basic values).
  void pivot_columns(std::size_t prow, std::size_t pcol) {
    const double p = at(prow, pcol);
    NAT_DCHECK(std::abs(p) > tol_);
    for (std::size_t j = 0; j < cols_; ++j) at(prow, j) /= p;
    at(prow, pcol) = 1.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == prow) continue;
      const double f = at(r, pcol);
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < cols_; ++j) at(r, j) -= f * at(prow, j);
      at(r, pcol) = 0.0;
    }
    const double f = objrow_[pcol];
    if (f != 0.0) {
      for (std::size_t j = 0; j < cols_; ++j) objrow_[j] -= f * at(prow, j);
      objrow_[pcol] = 0.0;
    }
    basis_[prow] = static_cast<int>(pcol);
  }

  template <class Allow>
  Status iterate(const Allow& allow) {
    for (;;) {
      util::poll_cancel(cancel_);
      if (iterations_ >= max_iterations_) return Status::kIterLimit;
      if (!use_bland_ && iterations_ >= bland_after_) use_bland_ = true;

      // Entering column: improving direction depends on which bound
      // the nonbasic sits at. Columns with no room (ub ~ 0) are inert.
      std::ptrdiff_t enter = -1;
      bool decreasing = false;  // true when entering from its upper bound
      double best = 0.0;
      std::vector<bool> is_basic(cols_, false);
      for (std::size_t r = 0; r < rows_; ++r) is_basic[basis_[r]] = true;
      for (std::size_t j = 0; j < cols_; ++j) {
        if (!allow(j) || is_basic[j]) continue;
        if (ub_[j] <= tol_) continue;  // fixed at 0
        const double d = objrow_[j];
        const bool improving =
            at_upper_[j] ? d > tol_ : d < -tol_;
        if (!improving) continue;
        const double score = std::abs(d);
        if (use_bland_) {
          enter = static_cast<std::ptrdiff_t>(j);
          decreasing = at_upper_[j];
          break;
        }
        if (score > best) {
          best = score;
          enter = static_cast<std::ptrdiff_t>(j);
          decreasing = at_upper_[j];
        }
      }
      if (enter < 0) return Status::kOptimal;
      const std::size_t j = static_cast<std::size_t>(enter);

      // Ratio test. Moving the entering variable by t (increase from
      // lower, or decrease from upper), basic values move along
      // -+ T_col respectively.
      const double sign = decreasing ? -1.0 : 1.0;
      double limit = ub_[j];  // own bound: ends in a flip
      std::ptrdiff_t leave = -1;
      bool leave_at_upper = false;
      for (std::size_t r = 0; r < rows_; ++r) {
        const double a = sign * at(r, j);
        // basic value moves to beta_[r] - t * a
        double cap = kInfU;
        bool blocks_at_upper = false;
        if (a > tol_) {
          cap = beta_[r] / a;  // hits lower bound 0
        } else if (a < -tol_) {
          const double u = ub_[basis_[r]];
          if (std::isfinite(u)) {
            cap = (u - beta_[r]) / (-a);
            blocks_at_upper = true;
          }
        }
        if (cap < limit - tol_ ||
            (cap < limit + tol_ && leave >= 0 &&
             basis_[r] < basis_[leave])) {
          // strict improvement, or Bland-compatible tie-break
          if (cap <= limit + tol_) {
            limit = std::max(cap, 0.0);
            leave = static_cast<std::ptrdiff_t>(r);
            leave_at_upper = blocks_at_upper;
          }
        }
      }
      if (!std::isfinite(limit)) return Status::kUnbounded;

      if (leave < 0) {
        // Bound flip: the entering variable runs to its other bound.
        NAT_DCHECK(std::isfinite(ub_[j]));
        for (std::size_t r = 0; r < rows_; ++r) {
          beta_[r] -= ub_[j] * sign * at(r, j);
        }
        at_upper_[j] = !at_upper_[j];
        ++iterations_;
        ++bound_flips_;
        continue;
      }

      const std::size_t prow = static_cast<std::size_t>(leave);
      // Update basic values along the direction.
      for (std::size_t r = 0; r < rows_; ++r) {
        beta_[r] -= limit * sign * at(r, j);
      }
      // Leaving variable exits at whichever bound blocked.
      at_upper_[basis_[prow]] = leave_at_upper;
      // Entering variable's new value.
      const double enter_value =
          decreasing ? ub_[j] - limit : limit;
      pivot_columns(prow, j);
      beta_[prow] = enter_value;
      at_upper_[j] = false;  // basic now; flag meaningless but keep clean
      ++iterations_;
      ++pivots_;
      if (limit <= tol_) ++degenerate_;
    }
  }

  Status phase1() {
    if (art_begin_ == cols_) {
      reset_objrow(std::vector<double>(cols_, 0.0));
      return Status::kOptimal;
    }
    std::vector<double> d(cols_, 0.0);
    for (std::size_t jj = art_begin_; jj < cols_; ++jj) d[jj] = 1.0;
    reset_objrow(d);
    Status st = iterate([](std::size_t) { return true; });
    if (st != Status::kOptimal) return st;
    double p1 = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (static_cast<std::size_t>(basis_[r]) >= art_begin_) {
        p1 += beta_[r];
      }
    }
    if (p1 > feas_tol_) return Status::kInfeasible;
    drive_out_artificials();
    return Status::kOptimal;
  }

  void drive_out_artificials() {
    for (std::size_t r = 0; r < rows_;) {
      if (static_cast<std::size_t>(basis_[r]) < art_begin_) {
        ++r;
        continue;
      }
      std::ptrdiff_t col = -1;
      for (std::size_t jj = 0; jj < art_begin_; ++jj) {
        if (std::abs(at(r, jj)) > tol_) {
          col = static_cast<std::ptrdiff_t>(jj);
          break;
        }
      }
      if (col >= 0) {
        // The pivot re-expresses the same point in a new basis: the
        // incoming column keeps its current value (its upper bound if
        // it was parked there, else ~0 like the artificial it
        // replaces); every other basic value is untouched.
        const std::size_t c = static_cast<std::size_t>(col);
        const double incoming_value =
            at_upper_[c] && std::isfinite(ub_[c]) ? ub_[c] : beta_[r];
        pivot_columns(r, c);
        beta_[r] = incoming_value;
        at_upper_[c] = false;
        ++r;
      } else {
        remove_row(r);
      }
    }
  }

  void remove_row(std::size_t r) {
    const std::size_t last = rows_ - 1;
    if (r != last) {
      for (std::size_t j = 0; j < cols_; ++j) at(r, j) = at(last, j);
      beta_[r] = beta_[last];
      basis_[r] = basis_[last];
    }
    basis_.pop_back();
    beta_.pop_back();
    --rows_;
    tab_.resize(rows_ * cols_);
  }

  Status phase2() {
    reset_objrow(cost_);
    const std::size_t ab = art_begin_;
    return iterate([ab](std::size_t j) { return j < ab; });
  }

  void extract(const Model& model, Solution& sol) {
    std::vector<double> xs(cols_, 0.0);
    for (std::size_t j = 0; j < cols_; ++j) {
      if (at_upper_[j] && std::isfinite(ub_[j])) xs[j] = ub_[j];
    }
    for (std::size_t r = 0; r < rows_; ++r) xs[basis_[r]] = beta_[r];
    sol.x.assign(model.num_variables(), 0.0);
    sol.objective = 0.0;
    for (int i = 0; i < model.num_variables(); ++i) {
      const VarMap& vm = varmap_[i];
      double v = vm.shift + xs[vm.col_pos];
      if (vm.col_neg >= 0) v -= xs[vm.col_neg];
      sol.x[i] = v;
      sol.objective += model.variable(i).objective * v;
    }
  }

  std::vector<double> tab_;      // rows_ x cols_ coefficients (no rhs)
  std::vector<double> beta_;     // current basic values
  std::vector<double> objrow_;   // reduced costs
  std::vector<double> cost_;     // phase-2 costs
  std::vector<double> ub_;       // per-column upper bound (lower is 0)
  std::vector<int> basis_;
  std::vector<bool> at_upper_;   // nonbasic bound status
  std::vector<VarMap> varmap_;
  std::size_t rows_ = 0, cols_ = 0, art_begin_ = 0;
  int structural_ = 0;
  double tol_ = 1e-9, feas_tol_ = 1e-7;
  std::int64_t iterations_ = 0, max_iterations_ = 0, bland_after_ = 0;
  const util::CancelToken* cancel_ = nullptr;
  std::int64_t pivots_ = 0, bound_flips_ = 0, degenerate_ = 0;
  bool use_bland_ = false;
};

}  // namespace

Solution solve_bounded(const Model& model, const SolveOptions& options) {
  BoundedSimplex solver;
  return solver.run(model, options);
}

}  // namespace nat::lp
