// Two-phase primal simplex on a dense tableau, templated over the
// number field.
//
// One implementation, two instantiations:
//   * double  (lp/dense_simplex.*)  — the workhorse for experiments;
//   * Rational (lp/exact_simplex.*) — exact certification on small LPs
//     (integrality-gap tables, cross-checking the double backend).
//
// Algorithm: textbook full-tableau two-phase simplex.
//   * Standardization: lower bounds are shifted out, free variables are
//     split, finite upper bounds become rows; every structural variable
//     of the standardized problem is >= 0.
//   * Phase 1 minimizes the sum of artificials; residual basic
//     artificials at level 0 are pivoted out or their (redundant) rows
//     deleted.
//   * Pricing is Dantzig (most negative reduced cost) with a permanent
//     switch to Bland's rule after a stall threshold, which guarantees
//     finite termination; the leaving row tie-break is smallest basis
//     column (Bland-compatible).
// Dense storage is deliberate: the LPs in this repository are small
// enough (thousands of rows) that robustness beats sparse machinery.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"

namespace nat::lp {

enum class Status { kOptimal, kInfeasible, kUnbounded, kIterLimit };

inline const char* to_string(Status s) {
  switch (s) {
    case Status::kOptimal: return "optimal";
    case Status::kInfeasible: return "infeasible";
    case Status::kUnbounded: return "unbounded";
    case Status::kIterLimit: return "iteration-limit";
  }
  return "?";
}

template <class NumT>
struct GenericSolution {
  Status status = Status::kIterLimit;
  NumT objective{};
  std::vector<NumT> x;  // one value per original model variable
  std::int64_t iterations = 0;
};

/// Numeric policy for the tableau. `tol(..)` comparisons collapse to
/// exact sign tests when `exact` is true.
struct DoubleTraits {
  using Num = double;
  static constexpr bool exact = false;
  static Num from_double(double v) { return v; }
  static double to_double(const Num& v) { return v; }
  static bool is_zero(const Num& v, double tol) { return std::abs(v) <= tol; }
  static bool less(const Num& a, const Num& b, double tol) {
    return a < b - tol;
  }
};

template <class Traits>
class TableauSimplex {
 public:
  using Num = typename Traits::Num;

  struct Options {
    double tol = 1e-9;        // pivot/zero tolerance (ignored when exact)
    double feas_tol = 1e-7;   // phase-1 residual treated as infeasible above
    std::int64_t max_iterations = -1;  // -1: auto from problem size
    std::int64_t bland_after = -1;     // -1: auto
    // Polled once per pivot; check() aborts the solve by throwing
    // CancelledError. One clock read per pivot is noise next to the
    // O(rows * cols) pivot itself.
    const util::CancelToken* cancel = nullptr;
  };

  GenericSolution<Num> solve(const Model& model, const Options& opt = {}) {
    opt_ = opt;
    build(model);
    GenericSolution<Num> sol;
    if (opt_.max_iterations < 0) {
      opt_.max_iterations =
          200 * static_cast<std::int64_t>(rows_ + cols_) + 2000;
    }
    if (opt_.bland_after < 0) {
      opt_.bland_after = 4 * static_cast<std::int64_t>(rows_ + cols_) + 200;
    }

    Status st = phase1();
    if (st != Status::kOptimal) {
      sol.status = st == Status::kUnbounded ? Status::kInfeasible : st;
      sol.iterations = iterations_;
      return sol;
    }
    st = phase2();
    sol.status = st;
    sol.iterations = iterations_;
    if (st == Status::kOptimal) {
      extract(model, sol);
    }
    return sol;
  }

 private:
  // --- standardized problem ------------------------------------------------
  // Each model variable maps to one (or two, if free) standardized columns
  // plus a constant shift: x_model = shift + col_pos - col_neg.
  struct VarMap {
    int col_pos = -1;
    int col_neg = -1;
    Num shift{};
  };

  Num& at(std::size_t r, std::size_t c) { return tab_[r * stride_ + c]; }
  const Num& at(std::size_t r, std::size_t c) const {
    return tab_[r * stride_ + c];
  }
  Num& rhs(std::size_t r) { return tab_[r * stride_ + cols_]; }

  bool near_zero(const Num& v) const { return Traits::is_zero(v, opt_.tol); }
  bool negative(const Num& v) const {
    return Traits::less(v, Num(Traits::from_double(0.0)), opt_.tol);
  }

  void build(const Model& model) {
    const Num zero = Traits::from_double(0.0);
    const Num one = Traits::from_double(1.0);

    varmap_.assign(model.num_variables(), VarMap{});
    int next_col = 0;
    // Rows produced by finite upper bounds: (structural col, bound value).
    std::vector<std::pair<int, Num>> ub_rows;
    for (int i = 0; i < model.num_variables(); ++i) {
      const Variable& v = model.variable(i);
      VarMap& vm = varmap_[i];
      if (std::isfinite(v.lower)) {
        vm.shift = Traits::from_double(v.lower);
        vm.col_pos = next_col++;
        if (std::isfinite(v.upper)) {
          ub_rows.emplace_back(vm.col_pos,
                               Traits::from_double(v.upper - v.lower));
        }
      } else {
        vm.shift = zero;
        vm.col_pos = next_col++;
        vm.col_neg = next_col++;
        NAT_CHECK_MSG(!std::isfinite(v.upper),
                      "free variable with finite upper bound unsupported");
      }
    }
    structural_ = next_col;

    // Assemble standardized rows: (sense, rhs, dense coefficient slice).
    struct StdRow {
      Sense sense;
      Num rhs;
      std::vector<std::pair<int, Num>> coeffs;
    };
    std::vector<StdRow> srows;
    srows.reserve(model.num_rows() + ub_rows.size());
    for (const Row& row : model.rows()) {
      StdRow sr;
      sr.sense = row.sense;
      Num r = Traits::from_double(row.rhs);
      for (const auto& [var, coeff] : row.coeffs) {
        const VarMap& vm = varmap_[var];
        Num c = Traits::from_double(coeff);
        r -= c * vm.shift;
        sr.coeffs.emplace_back(vm.col_pos, c);
        if (vm.col_neg >= 0) sr.coeffs.emplace_back(vm.col_neg, zero - c);
      }
      sr.rhs = r;
      srows.push_back(std::move(sr));
    }
    for (const auto& [col, bound] : ub_rows) {
      StdRow sr;
      sr.sense = Sense::kLe;
      sr.rhs = bound;
      sr.coeffs.emplace_back(col, one);
      srows.push_back(std::move(sr));
    }

    rows_ = srows.size();
    // Column layout: [structural | slack/surplus | artificial].
    // Count slack and artificial columns after rhs-sign normalization.
    std::size_t n_slack = 0;
    std::size_t n_art = 0;
    for (auto& sr : srows) {
      if (Traits::less(sr.rhs, zero, 0.0)) {
        // Negate so rhs >= 0 (flips Le <-> Ge).
        sr.rhs = zero - sr.rhs;
        for (auto& [c, v] : sr.coeffs) v = zero - v;
        if (sr.sense == Sense::kLe) sr.sense = Sense::kGe;
        else if (sr.sense == Sense::kGe) sr.sense = Sense::kLe;
      }
      if (sr.sense != Sense::kEq) ++n_slack;
      if (sr.sense != Sense::kLe) ++n_art;
    }
    art_begin_ = structural_ + n_slack;
    cols_ = art_begin_ + n_art;
    stride_ = cols_ + 1;

    tab_.assign(rows_ * stride_, zero);
    basis_.assign(rows_, -1);

    std::size_t slack = static_cast<std::size_t>(structural_);
    std::size_t art = art_begin_;
    for (std::size_t r = 0; r < rows_; ++r) {
      StdRow& sr = srows[r];
      for (const auto& [c, v] : sr.coeffs) at(r, c) += v;
      rhs(r) = sr.rhs;
      switch (sr.sense) {
        case Sense::kLe:
          at(r, slack) = one;
          basis_[r] = static_cast<int>(slack++);
          break;
        case Sense::kGe:
          at(r, slack++) = zero - one;  // surplus
          at(r, art) = one;
          basis_[r] = static_cast<int>(art++);
          break;
        case Sense::kEq:
          at(r, art) = one;
          basis_[r] = static_cast<int>(art++);
          break;
      }
    }
    NAT_DCHECK(slack == art_begin_ && art == cols_);

    // Phase-2 costs per standardized column (structural only).
    cost_.assign(cols_, zero);
    obj_shift_ = zero;
    for (int i = 0; i < model.num_variables(); ++i) {
      const Variable& v = model.variable(i);
      if (v.objective == 0.0) continue;
      const VarMap& vm = varmap_[i];
      Num c = Traits::from_double(v.objective);
      cost_[vm.col_pos] += c;
      if (vm.col_neg >= 0) cost_[vm.col_neg] -= c;
      obj_shift_ += c * vm.shift;
    }

    iterations_ = 0;
    use_bland_ = false;
  }

  /// Rebuilds the objective row for costs `c` from the current basis.
  void reset_objrow(const std::vector<Num>& c) {
    const Num zero = Traits::from_double(0.0);
    objrow_.assign(stride_, zero);
    for (std::size_t j = 0; j < cols_; ++j) objrow_[j] = c[j];
    for (std::size_t r = 0; r < rows_; ++r) {
      const Num& cb = c[basis_[r]];
      if (Traits::is_zero(cb, 0.0)) continue;
      for (std::size_t j = 0; j <= cols_; ++j) {
        objrow_[j] -= cb * at(r, j);
      }
    }
  }

  /// One pricing + ratio-test + pivot step. `allow(col)` filters the
  /// entering candidates. Returns kOptimal when no candidate remains.
  template <class Allow>
  Status iterate(const Allow& allow) {
    for (;;) {
      util::poll_cancel(opt_.cancel);
      if (iterations_ >= opt_.max_iterations) return Status::kIterLimit;
      if (!use_bland_ && iterations_ >= opt_.bland_after) use_bland_ = true;

      // Entering column.
      std::ptrdiff_t enter = -1;
      if (use_bland_) {
        for (std::size_t j = 0; j < cols_; ++j) {
          if (allow(j) && negative(objrow_[j])) {
            enter = static_cast<std::ptrdiff_t>(j);
            break;
          }
        }
      } else {
        Num best = Traits::from_double(0.0);
        for (std::size_t j = 0; j < cols_; ++j) {
          if (allow(j) && Traits::less(objrow_[j], best, opt_.tol)) {
            best = objrow_[j];
            enter = static_cast<std::ptrdiff_t>(j);
          }
        }
      }
      if (enter < 0) return Status::kOptimal;

      // Leaving row: min ratio rhs/col over positive column entries;
      // tie-break on smallest basis index (Bland-compatible).
      std::ptrdiff_t leave = -1;
      Num best_ratio = Traits::from_double(0.0);
      for (std::size_t r = 0; r < rows_; ++r) {
        const Num& a = at(r, enter);
        if (!Traits::less(Num(Traits::from_double(0.0)), a, opt_.tol))
          continue;  // need a > 0
        Num ratio = rhs(r) / a;
        if (leave < 0 || Traits::less(ratio, best_ratio, 0.0) ||
            (!Traits::less(best_ratio, ratio, 0.0) &&
             basis_[r] < basis_[leave])) {
          leave = static_cast<std::ptrdiff_t>(r);
          best_ratio = ratio;
        }
      }
      if (leave < 0) return Status::kUnbounded;

      pivot(static_cast<std::size_t>(leave), static_cast<std::size_t>(enter));
      ++iterations_;
    }
  }

  void pivot(std::size_t prow, std::size_t pcol) {
    const Num zero = Traits::from_double(0.0);
    Num p = at(prow, pcol);
    NAT_DCHECK(!near_zero(p));
    // Normalize the pivot row.
    for (std::size_t j = 0; j <= cols_; ++j) at(prow, j) = at(prow, j) / p;
    at(prow, pcol) = Traits::from_double(1.0);
    // Eliminate the pivot column elsewhere.
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == prow) continue;
      Num f = at(r, pcol);
      if (Traits::is_zero(f, 0.0)) continue;
      for (std::size_t j = 0; j <= cols_; ++j) {
        at(r, j) -= f * at(prow, j);
      }
      at(r, pcol) = zero;
    }
    Num f = objrow_[pcol];
    if (!Traits::is_zero(f, 0.0)) {
      for (std::size_t j = 0; j <= cols_; ++j) {
        objrow_[j] -= f * at(prow, j);
      }
      objrow_[pcol] = zero;
    }
    basis_[prow] = static_cast<int>(pcol);
  }

  Status phase1() {
    const Num zero = Traits::from_double(0.0);
    if (art_begin_ == cols_) return Status::kOptimal;  // no artificials
    std::vector<Num> d(cols_, zero);
    for (std::size_t j = art_begin_; j < cols_; ++j) {
      d[j] = Traits::from_double(1.0);
    }
    reset_objrow(d);
    Status st = iterate([](std::size_t) { return true; });
    if (st != Status::kOptimal) return st;
    // Phase-1 objective value is -objrow_[cols_].
    Num p1 = zero - objrow_[cols_];
    bool infeasible;
    if constexpr (Traits::exact) {
      infeasible = !Traits::is_zero(p1, 0.0);
    } else {
      infeasible = !Traits::is_zero(p1, opt_.feas_tol);
    }
    if (infeasible) return Status::kInfeasible;
    drive_out_artificials();
    return Status::kOptimal;
  }

  /// Pivots basic artificials (all at level 0 after a feasible phase 1)
  /// onto non-artificial columns, deleting redundant rows.
  void drive_out_artificials() {
    for (std::size_t r = 0; r < rows_;) {
      if (static_cast<std::size_t>(basis_[r]) < art_begin_) {
        ++r;
        continue;
      }
      std::ptrdiff_t col = -1;
      for (std::size_t j = 0; j < art_begin_; ++j) {
        if (!near_zero(at(r, j))) {
          col = static_cast<std::ptrdiff_t>(j);
          break;
        }
      }
      if (col >= 0) {
        pivot(r, static_cast<std::size_t>(col));
        ++r;
      } else {
        // Row is zero on all real columns: redundant constraint. Remove.
        remove_row(r);
      }
    }
  }

  void remove_row(std::size_t r) {
    std::size_t last = rows_ - 1;
    if (r != last) {
      for (std::size_t j = 0; j <= cols_; ++j) at(r, j) = at(last, j);
      basis_[r] = basis_[last];
    }
    basis_.pop_back();
    --rows_;
    tab_.resize(rows_ * stride_);
  }

  Status phase2() {
    reset_objrow(cost_);
    // Artificials may never re-enter.
    const std::size_t ab = art_begin_;
    return iterate([ab](std::size_t j) { return j < ab; });
  }

  void extract(const Model& model, GenericSolution<Num>& sol) {
    const Num zero = Traits::from_double(0.0);
    std::vector<Num> xs(cols_, zero);
    for (std::size_t r = 0; r < rows_; ++r) {
      xs[basis_[r]] = rhs(r);
    }
    sol.x.assign(model.num_variables(), zero);
    sol.objective = zero;
    for (int i = 0; i < model.num_variables(); ++i) {
      const VarMap& vm = varmap_[i];
      Num v = vm.shift + xs[vm.col_pos];
      if (vm.col_neg >= 0) v -= xs[vm.col_neg];
      sol.x[i] = v;
      sol.objective += Traits::from_double(model.variable(i).objective) * v;
    }
  }

  Options opt_;
  std::vector<Num> tab_;      // rows_ x (cols_+1), last column = rhs
  std::vector<Num> objrow_;   // reduced costs + negated objective value
  std::vector<Num> cost_;     // phase-2 costs per standardized column
  std::vector<int> basis_;    // basic column per row
  std::vector<VarMap> varmap_;
  Num obj_shift_{};
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
  std::size_t art_begin_ = 0;
  int structural_ = 0;
  std::int64_t iterations_ = 0;
  bool use_bland_ = false;
};

}  // namespace nat::lp
