// Exact rational LP solver front-end.
//
// Same two-phase simplex as the double backend, instantiated over
// nat::num::Rational with exact sign tests. Intended for small LPs:
// certifying integrality-gap values exactly (EXPERIMENTS.md E2/E3) and
// property-testing the floating-point backend against ground truth.
#pragma once

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "numeric/rational.hpp"

namespace nat::lp {

using ExactSolution = GenericSolution<num::Rational>;

struct RationalTraits {
  using Num = num::Rational;
  static constexpr bool exact = true;
  static Num from_double(double v) {
    return num::Rational::from_double_exact(v);
  }
  static double to_double(const Num& v) { return v.to_double(); }
  static bool is_zero(const Num& v, double /*tol*/) { return v.is_zero(); }
  static bool less(const Num& a, const Num& b, double /*tol*/) {
    return a < b;
  }
};

/// Solves `model` (minimization) exactly. Model coefficients are
/// converted from double losslessly (doubles are binary rationals).
/// `cancel`, when given, is polled once per pivot (util/cancel.hpp).
ExactSolution solve_exact(const Model& model,
                          const util::CancelToken* cancel = nullptr);

}  // namespace nat::lp
