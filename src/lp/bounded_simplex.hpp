// Bounded-variable primal simplex (Dantzig's upper-bounding technique).
//
// A second floating-point backend that treats finite upper bounds
// natively: nonbasic variables may sit at either bound, a ratio test
// can end in a *bound flip* without any pivot, and no `x <= u` rows are
// ever materialized. On this repository's LPs — where every x(i) has
// the bound L(i) and every time-indexed x(t) <= 1 — this removes a
// large slice of the row count that the plain tableau backend
// (lp/dense_simplex.*) pays for.
//
// Same two-phase structure as the plain backend (artificials, Dantzig
// pricing with a permanent Bland fallback). Differentially tested
// against both other backends on random LP sweeps.
#pragma once

#include "lp/dense_simplex.hpp"
#include "lp/model.hpp"

namespace nat::lp {

/// Solves `model` (minimization) with the bounded-variable simplex.
/// Status/objective agree with lp::solve up to tolerances.
Solution solve_bounded(const Model& model, const SolveOptions& options = {});

}  // namespace nat::lp
