#include "lp/backend.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "lp/bounded_simplex.hpp"
#include "lp/sparse_simplex.hpp"
#include "obs/counters.hpp"
#include "util/check.hpp"

namespace nat::lp {

BackendKind parse_backend(const char* name) {
  if (name == nullptr || *name == '\0') return BackendKind::kSparse;
  if (std::strcmp(name, "sparse") == 0) return BackendKind::kSparse;
  if (std::strcmp(name, "dense") == 0) return BackendKind::kDense;
  if (std::strcmp(name, "bounded") == 0) return BackendKind::kBounded;
  if (std::strcmp(name, "check") == 0) return BackendKind::kCheck;
  NAT_CHECK_MSG(false, "NAT_LP_BACKEND: unknown backend '"
                           << name
                           << "' (expected sparse|dense|bounded|check)");
  return BackendKind::kSparse;
}

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSparse: return "sparse";
    case BackendKind::kDense: return "dense";
    case BackendKind::kBounded: return "bounded";
    case BackendKind::kCheck: return "check";
  }
  return "?";
}

BackendKind default_backend() {
  static const BackendKind kind = parse_backend(std::getenv("NAT_LP_BACKEND"));
  return kind;
}

Solution solve_with(BackendKind kind, const Model& model,
                    const SolveOptions& options) {
  switch (kind) {
    case BackendKind::kSparse:
      return solve_sparse(model, options);
    case BackendKind::kDense:
      return solve(model, options);
    case BackendKind::kBounded:
      return solve_bounded(model, options);
    case BackendKind::kCheck: {
      Solution sparse = solve_sparse(model, options);
      Solution dense = solve(model, options);
      static obs::Counter& c_checks = obs::counter("lp.backend.checks");
      c_checks.add(1);
      NAT_CHECK_MSG(sparse.status == dense.status,
                    "lp backend check: status mismatch (sparse="
                        << to_string(sparse.status) << ", dense="
                        << to_string(dense.status) << ")");
      if (sparse.status == Status::kOptimal) {
        const double diff = std::abs(sparse.objective - dense.objective);
        NAT_CHECK_MSG(
            diff <= kCheckRelTol * (1.0 + std::abs(dense.objective)),
            "lp backend check: objective mismatch (sparse="
                << sparse.objective << ", dense=" << dense.objective << ")");
      }
      return sparse;
    }
  }
  NAT_CHECK_MSG(false, "unreachable backend kind");
  return {};
}

Solution solve_auto(const Model& model, const SolveOptions& options) {
  return solve_with(default_backend(), model, options);
}

}  // namespace nat::lp
