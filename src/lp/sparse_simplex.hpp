// Sparse revised simplex (bounded variables, product-form inverse).
//
// The third floating-point backend, and the default for every LP hot
// path in this repository (see lp/backend.hpp for the NAT_LP_BACKEND
// switch). The LP (1) constraint matrix is tree-structured and
// extremely sparse — coverage, capacity, per-job-cap, and ceiling rows
// each touch a handful of the columns — so the dense tableau backends
// pay O(rows · cols) per pivot for arithmetic that is almost entirely
// zeros. This backend stores the standardized matrix in CSC form and
// keeps the basis inverse as an eta file (product-form updates in the
// Bartels–Golub tradition: one eta per pivot, periodic refactorization
// from the basis columns with partial pivoting), so one iteration costs
//   BTRAN + pricing       O(nnz(eta file) + nnz(A))
//   FTRAN + ratio test    O(nnz(eta file) + rows)
// instead of the dense backends' O(rows · cols) elimination.
//
// Shares the bounded-variable machinery with lp/bounded_simplex.*:
// nonbasic variables sit at either bound, the ratio test can end in a
// bound flip without a pivot, and no `x <= u` rows are materialized.
// Pricing is Dantzig with a permanent Bland fallback after a stall
// threshold (finite termination on degenerate/cycling-prone LPs).
// Differentially tested against the dense and bounded backends on the
// LP corpus and random sweeps (tests/test_sparse_simplex.cpp).
//
// Warm starts (docs/INCREMENTAL.md): solve_sparse_warm accepts a Basis
// exported from a previous solve of a *similar* model, factorizes it
// (patching linearly dependent or missing columns), restores primal
// feasibility with a bounded dual-simplex phase when rhs/bound edits
// moved the old vertex out of the box, then finishes with the regular
// primal phase 2. Any anomaly — dimension mismatch, singular basis,
// dual stall — falls back to the cold two-phase path, so a warm call
// is never less robust than a cold one. The ladder is observable via
// lp.sparse.warm_hit / warm_repair / cold_fallback.
//
// The optional canonicalization pass pivots across the optimal face to
// the vertex minimizing a fixed generic secondary objective, so warm
// and cold solves of the same model land on the *same* vertex — the
// property the incremental session layer (activetime/session.*) relies
// on for bit-identical re-solves.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/dense_simplex.hpp"
#include "lp/model.hpp"

namespace nat::lp {

/// Deterministic per-solve statistics (also accumulated into the
/// lp.sparse.* obs counters; the struct exists so benches and tests can
/// read one solve's numbers without diffing the global registry).
struct SparseStats {
  std::int64_t pivots = 0;
  std::int64_t bound_flips = 0;
  std::int64_t degenerate = 0;
  std::int64_t refactorizations = 0;
  std::int64_t eta_nonzeros = 0;  // eta-file size at termination
  // Warm-start ladder (solve_sparse_warm; all zero on cold solves).
  std::int64_t warm_hit = 0;       // imported basis was still optimal
  std::int64_t warm_repair = 0;    // warm path succeeded after pivots
  std::int64_t cold_fallback = 0;  // basis unusable, cold solve ran
  std::int64_t dual_pivots = 0;    // bounded dual-simplex repair pivots
  std::int64_t canonical_pivots = 0;  // optimal-face canonicalization
};

/// Nonbasic variables sit at a bound; everything else is basic. The
/// status of slack/artificial columns is not recorded — an import
/// completes the basis with logical columns deterministically.
enum class VarStatus : std::uint8_t { kAtLower = 0, kAtUpper = 1, kBasic = 2 };

/// Exportable basis snapshot: one status per *model* variable. The
/// snapshot is meaningful across models of the same family when the
/// caller maps variable indices by content (activetime/session.cpp).
struct Basis {
  std::vector<VarStatus> variables;
  bool empty() const { return variables.empty(); }
};

struct WarmOptions {
  const Basis* warm = nullptr;    // import hint; nullptr = cold solve
  Basis* export_basis = nullptr;  // filled on optimal termination
  bool canonical = false;         // pivot to the canonical optimal vertex
};

/// Solves `model` (minimization) with the sparse revised simplex.
/// Status/objective agree with lp::solve and lp::solve_bounded up to
/// tolerances.
Solution solve_sparse(const Model& model, const SolveOptions& options = {},
                      SparseStats* stats = nullptr);

/// solve_sparse plus warm start / basis export / canonicalization.
Solution solve_sparse_warm(const Model& model, const SolveOptions& options,
                           const WarmOptions& warm,
                           SparseStats* stats = nullptr);

}  // namespace nat::lp
