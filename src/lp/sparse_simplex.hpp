// Sparse revised simplex (bounded variables, product-form inverse).
//
// The third floating-point backend, and the default for every LP hot
// path in this repository (see lp/backend.hpp for the NAT_LP_BACKEND
// switch). The LP (1) constraint matrix is tree-structured and
// extremely sparse — coverage, capacity, per-job-cap, and ceiling rows
// each touch a handful of the columns — so the dense tableau backends
// pay O(rows · cols) per pivot for arithmetic that is almost entirely
// zeros. This backend stores the standardized matrix in CSC form and
// keeps the basis inverse as an eta file (product-form updates in the
// Bartels–Golub tradition: one eta per pivot, periodic refactorization
// from the basis columns with partial pivoting), so one iteration costs
//   BTRAN + pricing       O(nnz(eta file) + nnz(A))
//   FTRAN + ratio test    O(nnz(eta file) + rows)
// instead of the dense backends' O(rows · cols) elimination.
//
// Shares the bounded-variable machinery with lp/bounded_simplex.*:
// nonbasic variables sit at either bound, the ratio test can end in a
// bound flip without a pivot, and no `x <= u` rows are materialized.
// Pricing is Dantzig with a permanent Bland fallback after a stall
// threshold (finite termination on degenerate/cycling-prone LPs).
// Differentially tested against the dense and bounded backends on the
// LP corpus and random sweeps (tests/test_sparse_simplex.cpp).
#pragma once

#include <cstdint>

#include "lp/dense_simplex.hpp"
#include "lp/model.hpp"

namespace nat::lp {

/// Deterministic per-solve statistics (also accumulated into the
/// lp.sparse.* obs counters; the struct exists so benches and tests can
/// read one solve's numbers without diffing the global registry).
struct SparseStats {
  std::int64_t pivots = 0;
  std::int64_t bound_flips = 0;
  std::int64_t degenerate = 0;
  std::int64_t refactorizations = 0;
  std::int64_t eta_nonzeros = 0;  // eta-file size at termination
};

/// Solves `model` (minimization) with the sparse revised simplex.
/// Status/objective agree with lp::solve and lp::solve_bounded up to
/// tolerances.
Solution solve_sparse(const Model& model, const SolveOptions& options = {},
                      SparseStats* stats = nullptr);

}  // namespace nat::lp
