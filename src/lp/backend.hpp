// Floating-point LP backend selection (NAT_LP_BACKEND).
//
// Every LP hot path in the repository — the strong LP of solve_nested,
// the time-indexed LPs, and the LP-based exact B&B baseline — solves
// through solve_auto() so one environment switch picks the backend:
//
//   NAT_LP_BACKEND=sparse   sparse revised simplex (the default)
//   NAT_LP_BACKEND=dense    dense two-phase tableau (lp/dense_simplex)
//   NAT_LP_BACKEND=bounded  dense bounded-variable tableau
//   NAT_LP_BACKEND=check    sparse, differentially checked against the
//                           dense backend on every solve (status must
//                           match; objectives within kCheckRelTol) —
//                           the dense backend stays the oracle
//
// The variable is read once per process (first solve_auto call).
#pragma once

#include "lp/dense_simplex.hpp"
#include "lp/model.hpp"

namespace nat::lp {

enum class BackendKind { kSparse, kDense, kBounded, kCheck };

/// Relative objective tolerance of the `check` backend's differential
/// comparison (scaled by 1 + |objective|).
inline constexpr double kCheckRelTol = 1e-7;

/// Parses a NAT_LP_BACKEND value; NAT_CHECK-fails on unknown names.
BackendKind parse_backend(const char* name);

const char* backend_name(BackendKind kind);

/// The process-wide default (NAT_LP_BACKEND, read once; kSparse when
/// unset).
BackendKind default_backend();

/// Solves with an explicit backend.
Solution solve_with(BackendKind kind, const Model& model,
                    const SolveOptions& options = {});

/// Solves with the process-wide default backend.
Solution solve_auto(const Model& model, const SolveOptions& options = {});

}  // namespace nat::lp
