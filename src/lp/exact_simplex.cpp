#include "lp/exact_simplex.hpp"

namespace nat::lp {

ExactSolution solve_exact(const Model& model,
                          const util::CancelToken* cancel) {
  TableauSimplex<RationalTraits> solver;
  TableauSimplex<RationalTraits>::Options opt;
  // Exact arithmetic: Bland from the start would be safest but slow;
  // the stall threshold flips to Bland automatically, which guarantees
  // termination. Tolerances are ignored by RationalTraits.
  opt.cancel = cancel;
  return solver.solve(model, opt);
}

}  // namespace nat::lp
