#include "lp/sparse_simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"

namespace nat::lp {

namespace {

constexpr double kInfU = std::numeric_limits<double>::infinity();
// Entries below this are dropped when an eta is harvested: they are
// numerical dust and would only bloat the eta file.
constexpr double kDropTol = 1e-12;
// A transformed pivot entry smaller than this triggers a fresh
// refactorization before the pivot is accepted.
constexpr double kUnstablePivot = 1e-7;
// Refactorization cadence: whichever comes first of this many pivots
// or the eta file outgrowing a small multiple of the row count.
constexpr std::int64_t kRefactorInterval = 100;

// Generic secondary weight for the canonicalization pass: a splitmix64
// hash of the variable index mapped into [1, 2). Integer arithmetic +
// one exact conversion, so the weights are bit-identical across
// platforms, and hashing makes weight coincidences (two vertices of the
// optimal face with equal secondary value) practically impossible.
double canonical_weight(int var) {
  std::uint64_t z = static_cast<std::uint64_t>(var) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return 1.0 + static_cast<double>(z >> 11) * 0x1.0p-53;
}

class SparseSimplex {
 public:
  Solution run(const Model& model, const SolveOptions& options,
               const WarmOptions& warm, SparseStats* stats) {
    tol_ = options.tol;
    feas_tol_ = options.feas_tol;
    cancel_ = options.cancel;
    build(model);
    max_iterations_ = options.max_iterations >= 0
                          ? options.max_iterations
                          : 200 * static_cast<std::int64_t>(rows_ + cols_) +
                                2000;
    bland_after_ = 4 * static_cast<std::int64_t>(rows_ + cols_) + 200;

    Solution sol;
    Status st = Status::kIterLimit;
    bool warm_done = false;
    if (warm.warm != nullptr && !warm.warm->empty()) {
      bool clean = false;
      const std::int64_t moves0 =
          stats_.pivots + stats_.bound_flips + stats_.dual_pivots;
      if (try_warm(model, *warm.warm, clean, st)) {
        warm_done = true;
        const std::int64_t moves =
            stats_.pivots + stats_.bound_flips + stats_.dual_pivots - moves0;
        if (clean && moves == 0) {
          ++stats_.warm_hit;
        } else {
          ++stats_.warm_repair;
        }
      } else {
        ++stats_.cold_fallback;
        reset_to_initial_basis();
      }
    }
    if (!warm_done) {
      st = phase1();
      if (st == Status::kOptimal) {
        st = phase2();
      } else if (st == Status::kUnbounded) {
        st = Status::kInfeasible;  // phase 1 is bounded below by 0
      }
    }
    if (st == Status::kOptimal && warm.canonical) canonical_phase();
    sol.status = st;
    sol.iterations = iterations_;
    if (st == Status::kOptimal) {
      extract(model, sol);
      if (warm.export_basis != nullptr) export_to(model, *warm.export_basis);
    }
    stats_.eta_nonzeros = static_cast<std::int64_t>(eta_nnz_);
    if (stats) *stats = stats_;
    flush_counters();
    return sol;
  }

 private:
  struct VarMap {
    int col_pos = -1;
    int col_neg = -1;
    double shift = 0.0;
  };

  /// One product-form update: the entering column after FTRAN,
  /// split into the pivot entry and the other nonzeros.
  struct Eta {
    int prow = -1;
    double pivot = 0.0;
    std::vector<std::pair<int, double>> rest;  // (row, value), row != prow
  };

  // --- standardization -----------------------------------------------------
  // Identical semantics to lp/bounded_simplex.cpp (shift lower bounds,
  // split free variables, normalize rhs >= 0, slack for inequalities,
  // artificial where no +1 slack can start the basis), but the matrix
  // lands in CSC instead of a dense tableau.
  void build(const Model& model) {
    varmap_.assign(model.num_variables(), VarMap{});
    std::vector<double> ub;
    int next = 0;
    for (int i = 0; i < model.num_variables(); ++i) {
      const Variable& v = model.variable(i);
      VarMap& vm = varmap_[i];
      if (std::isfinite(v.lower)) {
        vm.shift = v.lower;
        vm.col_pos = next++;
        ub.push_back(std::isfinite(v.upper) ? v.upper - v.lower : kInfU);
      } else {
        NAT_CHECK_MSG(!std::isfinite(v.upper),
                      "free variable with finite upper bound unsupported");
        vm.col_pos = next++;
        vm.col_neg = next++;
        ub.push_back(kInfU);
        ub.push_back(kInfU);
      }
    }
    structural_ = next;
    rows_ = static_cast<std::size_t>(model.num_rows());

    // Per-row standardized coefficients, duplicates merged sparsely.
    struct StdRow {
      double rhs = 0.0;
      std::vector<std::pair<int, double>> coeffs;  // sorted by column
      double slack_sign = 0.0;                     // 0 for equality
    };
    std::vector<StdRow> srows(rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      const Row& row = model.row(static_cast<int>(r));
      StdRow& sr = srows[r];
      sr.rhs = row.rhs;
      auto& cs = sr.coeffs;
      for (const auto& [var, coeff] : row.coeffs) {
        const VarMap& vm = varmap_[var];
        sr.rhs -= coeff * vm.shift;
        cs.push_back({vm.col_pos, coeff});
        if (vm.col_neg >= 0) cs.push_back({vm.col_neg, -coeff});
      }
      std::sort(cs.begin(), cs.end());
      std::size_t w = 0;
      for (std::size_t k = 0; k < cs.size();) {
        double sum = cs[k].second;
        std::size_t k2 = k + 1;
        while (k2 < cs.size() && cs[k2].first == cs[k].first) {
          sum += cs[k2++].second;
        }
        if (sum != 0.0) cs[w++] = {cs[k].first, sum};
        k = k2;
      }
      cs.resize(w);

      Sense sense = row.sense;
      if (sr.rhs < 0.0) {
        sr.rhs = -sr.rhs;
        for (auto& [c, v] : cs) v = -v;
        if (sense == Sense::kLe) sense = Sense::kGe;
        else if (sense == Sense::kGe) sense = Sense::kLe;
      }
      if (sense == Sense::kLe) sr.slack_sign = 1.0;
      else if (sense == Sense::kGe) sr.slack_sign = -1.0;
    }

    // Column layout: [structural | slacks | artificials]. A +1 slack
    // starts the basis of its row; -1 slacks and equalities get an
    // artificial.
    int n_slack = 0, n_art = 0;
    for (const StdRow& sr : srows) {
      if (sr.slack_sign != 0.0) ++n_slack;
      if (sr.slack_sign <= 0.0) ++n_art;
    }
    art_begin_ = static_cast<std::size_t>(structural_ + n_slack);
    cols_ = art_begin_ + static_cast<std::size_t>(n_art);
    ub.resize(cols_, kInfU);
    ub_ = std::move(ub);

    // CSC assembly: structural columns from the rows, then the unit
    // slack/artificial columns.
    std::vector<int> col_nnz(cols_, 0);
    for (const StdRow& sr : srows) {
      for (const auto& [c, v] : sr.coeffs) {
        (void)v;
        ++col_nnz[c];
      }
    }
    int slack = structural_;
    int art = static_cast<int>(art_begin_);
    slack_col_.assign(rows_, -1);
    art_col_.assign(rows_, -1);
    for (std::size_t r = 0; r < rows_; ++r) {
      if (srows[r].slack_sign != 0.0) {
        slack_col_[r] = slack;
        ++col_nnz[slack++];
      }
      if (srows[r].slack_sign <= 0.0) {
        art_col_[r] = art;
        ++col_nnz[art++];
      }
    }
    col_ptr_.assign(cols_ + 1, 0);
    for (std::size_t j = 0; j < cols_; ++j) {
      col_ptr_[j + 1] = col_ptr_[j] + col_nnz[j];
    }
    col_row_.assign(static_cast<std::size_t>(col_ptr_[cols_]), 0);
    col_val_.assign(col_row_.size(), 0.0);
    std::vector<int> fill(col_ptr_.begin(), col_ptr_.end() - 1);
    b_.assign(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
      b_[r] = srows[r].rhs;
      for (const auto& [c, v] : srows[r].coeffs) {
        col_row_[fill[c]] = static_cast<int>(r);
        col_val_[fill[c]++] = v;
      }
      if (slack_col_[r] >= 0) {
        col_row_[fill[slack_col_[r]]] = static_cast<int>(r);
        col_val_[fill[slack_col_[r]]++] = srows[r].slack_sign;
      }
      if (art_col_[r] >= 0) {
        col_row_[fill[art_col_[r]]] = static_cast<int>(r);
        col_val_[fill[art_col_[r]]++] = 1.0;
      }
    }

    // Initial basis: +1 slack where available, artificial otherwise;
    // the basis matrix is the identity, so the eta file starts empty.
    basis_.assign(rows_, -1);
    basic_.assign(cols_, false);
    at_upper_.assign(cols_, false);
    beta_ = b_;
    for (std::size_t r = 0; r < rows_; ++r) {
      const int bcol = srows[r].slack_sign > 0.0 ? slack_col_[r] : art_col_[r];
      basis_[r] = bcol;
      basic_[bcol] = true;
    }
    initial_basis_ = basis_;

    cost_.assign(cols_, 0.0);
    c2_.assign(cols_, 0.0);
    for (int i = 0; i < model.num_variables(); ++i) {
      const double c = model.variable(i).objective;
      const double w = canonical_weight(i);
      c2_[varmap_[i].col_pos] = w;
      if (varmap_[i].col_neg >= 0) c2_[varmap_[i].col_neg] = -w;
      if (c == 0.0) continue;
      cost_[varmap_[i].col_pos] += c;
      if (varmap_[i].col_neg >= 0) cost_[varmap_[i].col_neg] -= c;
    }

    etas_.clear();
    eta_nnz_ = 0;
    pivots_since_refactor_ = 0;
    iterations_ = 0;
    use_bland_ = false;
    stats_ = SparseStats{};
    work_.assign(rows_, 0.0);
    duals_.assign(rows_, 0.0);
  }

  // --- eta-file basis inverse ---------------------------------------------

  /// In-place v <- B^{-1} v.
  void ftran(std::vector<double>& v) const {
    for (const Eta& e : etas_) {
      const double t = v[e.prow];
      if (t == 0.0) continue;
      const double s = t / e.pivot;
      v[e.prow] = s;
      for (const auto& [i, a] : e.rest) v[i] -= a * s;
    }
  }

  /// In-place y^T <- y^T B^{-1}.
  void btran(std::vector<double>& y) const {
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      double acc = y[it->prow];
      for (const auto& [i, a] : it->rest) acc -= a * y[i];
      y[it->prow] = acc / it->pivot;
    }
  }

  /// Harvests an eta from the FTRAN'd column `w` with pivot row `prow`
  /// and pushes it onto the file.
  void append_eta(const std::vector<double>& w, std::size_t prow) {
    Eta e;
    e.prow = static_cast<int>(prow);
    e.pivot = w[prow];
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == prow) continue;
      if (std::abs(w[r]) > kDropTol) e.rest.push_back({static_cast<int>(r),
                                                       w[r]});
    }
    eta_nnz_ += e.rest.size() + 1;
    etas_.push_back(std::move(e));
  }

  void load_column(std::size_t j, std::vector<double>& v) const {
    std::fill(v.begin(), v.end(), 0.0);
    for (int k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      v[col_row_[k]] = col_val_[k];
    }
  }

  double column_dot(std::size_t j, const std::vector<double>& y) const {
    double d = 0.0;
    for (int k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      d += col_val_[k] * y[col_row_[k]];
    }
    return d;
  }

  /// Re-inverts the current basis from its columns: the eta file is
  /// rebuilt by driving the basis columns in one by one (product-form
  /// Gaussian elimination), choosing each pivot row by largest
  /// magnitude among the rows not yet assigned (partial pivoting).
  /// Columns are processed sparsest-first — the bases here are close to
  /// triangular, so this ordering keeps the fill (and therefore every
  /// later FTRAN/BTRAN) near the nonzero count of the basis itself.
  /// Basic values are recomputed from scratch afterwards, which also
  /// resets accumulated floating-point drift.
  void refactorize() {
    etas_.clear();
    eta_nnz_ = 0;
    pivots_since_refactor_ = 0;
    ++stats_.refactorizations;

    std::vector<int> order(basis_);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const int na = col_ptr_[a + 1] - col_ptr_[a];
      const int nb = col_ptr_[b + 1] - col_ptr_[b];
      return na != nb ? na < nb : a < b;
    });
    std::vector<char> row_done(rows_, 0);
    for (int j : order) {
      load_column(static_cast<std::size_t>(j), work_);
      ftran(work_);
      std::ptrdiff_t prow = -1;
      double best = 0.0;
      for (std::size_t r = 0; r < rows_; ++r) {
        if (row_done[r]) continue;
        const double a = std::abs(work_[r]);
        if (a > best) {
          best = a;
          prow = static_cast<std::ptrdiff_t>(r);
        }
      }
      NAT_CHECK_MSG(prow >= 0 && best > kDropTol,
                    "sparse simplex: basis singular during refactorization");
      append_eta(work_, static_cast<std::size_t>(prow));
      row_done[prow] = 1;
      basis_[prow] = j;
    }
    recompute_beta();
  }

  /// beta <- B^{-1} (b - A_N x_N) with nonbasics at their bounds.
  void recompute_beta() {
    std::vector<double>& v = beta_;
    v = b_;
    for (std::size_t j = 0; j < cols_; ++j) {
      if (basic_[j] || !at_upper_[j]) continue;
      const double u = ub_[j];
      if (!std::isfinite(u) || u == 0.0) continue;
      for (int k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
        v[col_row_[k]] -= u * col_val_[k];
      }
    }
    ftran(v);
  }

  // --- iteration -----------------------------------------------------------

  enum class PivotOutcome { kPivoted, kFlipped, kUnbounded, kRetry };

  /// Bounded ratio test plus basis update for entering column `j`
  /// (same rules and tie-breaks as the bounded dense backend): moving
  /// the entering variable by t, basic values move along
  /// -t * sign * w. Shared by the primal phases and the
  /// canonicalization pass. kRetry means the eta file was stale and a
  /// refactorization ran; the caller re-prices from fresh duals.
  PivotOutcome pivot_step(std::size_t j, bool decreasing) {
    load_column(j, work_);
    ftran(work_);

    const double sign = decreasing ? -1.0 : 1.0;
    double limit = ub_[j];  // own bound: ends in a flip
    std::ptrdiff_t leave = -1;
    bool leave_at_upper = false;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double a = sign * work_[r];
      double cap = kInfU;
      bool blocks_at_upper = false;
      if (a > tol_) {
        cap = beta_[r] / a;  // basic hits its lower bound 0
      } else if (a < -tol_) {
        const double u = ub_[basis_[r]];
        if (std::isfinite(u)) {
          cap = (u - beta_[r]) / (-a);
          blocks_at_upper = true;
        }
      }
      if (cap < limit - tol_ ||
          (cap < limit + tol_ && leave >= 0 && basis_[r] < basis_[leave])) {
        if (cap <= limit + tol_) {
          limit = std::max(cap, 0.0);
          leave = static_cast<std::ptrdiff_t>(r);
          leave_at_upper = blocks_at_upper;
        }
      }
    }
    if (!std::isfinite(limit)) return PivotOutcome::kUnbounded;

    if (leave < 0) {
      // Bound flip: no basis change, no eta.
      NAT_DCHECK(std::isfinite(ub_[j]));
      for (std::size_t r = 0; r < rows_; ++r) {
        beta_[r] -= ub_[j] * sign * work_[r];
      }
      at_upper_[j] = !at_upper_[j];
      ++iterations_;
      ++stats_.bound_flips;
      return PivotOutcome::kFlipped;
    }

    const std::size_t prow = static_cast<std::size_t>(leave);
    if (std::abs(work_[prow]) < kUnstablePivot && !etas_.empty()) {
      // The transformed pivot is numerically shaky and the eta file
      // is stale; re-invert and redo the iteration from fresh duals.
      refactorize();
      return PivotOutcome::kRetry;
    }

    for (std::size_t r = 0; r < rows_; ++r) {
      beta_[r] -= limit * sign * work_[r];
    }
    const int leaving = basis_[prow];
    at_upper_[leaving] = leave_at_upper;
    basic_[leaving] = false;
    append_eta(work_, prow);
    basis_[prow] = static_cast<int>(j);
    basic_[j] = true;
    at_upper_[j] = false;
    beta_[prow] = decreasing ? ub_[j] - limit : limit;
    ++iterations_;
    ++stats_.pivots;
    ++pivots_since_refactor_;
    if (limit <= tol_) ++stats_.degenerate;
    return PivotOutcome::kPivoted;
  }

  template <class Allow>
  Status iterate(const std::vector<double>& cost, const Allow& allow) {
    for (;;) {
      util::poll_cancel(cancel_);
      if (iterations_ >= max_iterations_) return Status::kIterLimit;
      if (!use_bland_ && iterations_ >= bland_after_) use_bland_ = true;
      if (pivots_since_refactor_ >= kRefactorInterval ||
          eta_nnz_ > 8 * rows_ + 512) {
        refactorize();
      }

      // BTRAN the basic costs into duals, then price every nonbasic
      // column with one sparse dot product.
      std::fill(duals_.begin(), duals_.end(), 0.0);
      for (std::size_t r = 0; r < rows_; ++r) duals_[r] = cost[basis_[r]];
      btran(duals_);

      std::ptrdiff_t enter = -1;
      bool decreasing = false;  // entering from its upper bound
      double best = 0.0;
      for (std::size_t j = 0; j < cols_; ++j) {
        if (!allow(j) || basic_[j]) continue;
        if (ub_[j] <= tol_) continue;  // fixed at 0
        const double d = cost[j] - column_dot(j, duals_);
        const bool improving = at_upper_[j] ? d > tol_ : d < -tol_;
        if (!improving) continue;
        if (use_bland_) {
          enter = static_cast<std::ptrdiff_t>(j);
          decreasing = at_upper_[j];
          break;
        }
        const double score = std::abs(d);
        if (score > best) {
          best = score;
          enter = static_cast<std::ptrdiff_t>(j);
          decreasing = at_upper_[j];
        }
      }
      if (enter < 0) return Status::kOptimal;

      switch (pivot_step(static_cast<std::size_t>(enter), decreasing)) {
        case PivotOutcome::kUnbounded:
          return Status::kUnbounded;
        case PivotOutcome::kPivoted:
        case PivotOutcome::kFlipped:
        case PivotOutcome::kRetry:
          continue;
      }
    }
  }

  Status phase1() {
    std::vector<double> cost1(cols_, 0.0);
    bool any_art = false;
    for (std::size_t j = art_begin_; j < cols_; ++j) {
      cost1[j] = 1.0;
      any_art = true;
    }
    if (!any_art) return Status::kOptimal;  // slack basis is feasible
    Status st = iterate(cost1, [](std::size_t) { return true; });
    if (st != Status::kOptimal) return st;
    double p1 = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (static_cast<std::size_t>(basis_[r]) >= art_begin_) {
        p1 += std::max(0.0, beta_[r]);
      }
    }
    for (std::size_t j = art_begin_; j < cols_; ++j) {
      if (!basic_[j] && at_upper_[j]) p1 += ub_[j];
    }
    if (p1 > feas_tol_) return Status::kInfeasible;
    return Status::kOptimal;
  }

  Status phase2() {
    // Artificials are pinned to zero instead of being driven out: a
    // basic artificial (redundant row) stays at level 0 forever — the
    // ratio test blocks any move that would change it, and the entering
    // filter keeps nonbasic ones out. No row deletion is needed in
    // revised form.
    for (std::size_t j = art_begin_; j < cols_; ++j) {
      ub_[j] = 0.0;
      at_upper_[j] = false;
    }
    for (std::size_t r = 0; r < rows_; ++r) {
      if (static_cast<std::size_t>(basis_[r]) >= art_begin_ &&
          std::abs(beta_[r]) <= feas_tol_) {
        beta_[r] = 0.0;
      }
    }
    const std::size_t ab = art_begin_;
    return iterate(cost_, [ab](std::size_t j) { return j < ab; });
  }

  // --- warm start ----------------------------------------------------------

  /// Restores the pristine slack/artificial starting basis (and the
  /// artificial upper bounds that a warm attempt pinned), so the cold
  /// two-phase path can run after a failed import.
  void reset_to_initial_basis() {
    etas_.clear();
    eta_nnz_ = 0;
    pivots_since_refactor_ = 0;
    basis_ = initial_basis_;
    std::fill(basic_.begin(), basic_.end(), false);
    for (int j : basis_) basic_[j] = true;
    std::fill(at_upper_.begin(), at_upper_.end(), false);
    for (std::size_t j = art_begin_; j < cols_; ++j) ub_[j] = kInfU;
    beta_ = b_;
  }

  /// Factorizes the requested structural basis columns, dropping any
  /// that turn out linearly dependent (counted in `drops`) and
  /// completing the basis with each uncovered row's slack/artificial.
  /// Returns false when no nonsingular completion exists.
  bool import_factorize(const std::vector<int>& want, int* drops) {
    etas_.clear();
    eta_nnz_ = 0;
    pivots_since_refactor_ = 0;
    ++stats_.refactorizations;
    std::fill(basic_.begin(), basic_.end(), false);
    std::fill(basis_.begin(), basis_.end(), -1);
    std::vector<char> row_done(rows_, 0);

    std::vector<int> order(want);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const int na = col_ptr_[a + 1] - col_ptr_[a];
      const int nb = col_ptr_[b + 1] - col_ptr_[b];
      return na != nb ? na < nb : a < b;
    });

    std::size_t assigned = 0;
    auto place = [&](int j) -> bool {
      load_column(static_cast<std::size_t>(j), work_);
      ftran(work_);
      std::ptrdiff_t prow = -1;
      double best = 0.0;
      for (std::size_t r = 0; r < rows_; ++r) {
        if (row_done[r]) continue;
        const double a = std::abs(work_[r]);
        if (a > best) {
          best = a;
          prow = static_cast<std::ptrdiff_t>(r);
        }
      }
      if (prow < 0 || best <= kDropTol) return false;
      append_eta(work_, static_cast<std::size_t>(prow));
      row_done[prow] = 1;
      basis_[prow] = j;
      basic_[j] = true;
      ++assigned;
      return true;
    };

    for (int j : order) {
      if (assigned == rows_ || !place(j)) ++*drops;
    }
    for (std::size_t r = 0; r < rows_; ++r) {
      if (row_done[r]) continue;
      // The row's own logical column usually pivots at row r, but the
      // etas accumulated so far can move or cancel it; try the slack,
      // then the artificial, and give up (cold fallback) if neither
      // completes the factorization.
      bool filled = false;
      for (int j : {slack_col_[r], art_col_[r]}) {
        if (j < 0 || basic_[j]) continue;
        if (place(j)) {
          filled = true;
          break;
        }
      }
      if (!filled) return false;
    }
    return assigned == rows_;
  }

  /// Bounded dual simplex: drives basic values back inside their
  /// bounds after an import whose rhs/bounds drifted from the exporting
  /// model (window edits). Returns false on a stall or iteration cap —
  /// the caller then cold-solves, so this phase never has to handle
  /// pathological bases gracefully, only cheaply.
  bool dual_phase() {
    const std::int64_t cap = 4 * static_cast<std::int64_t>(rows_ + cols_) + 200;
    std::int64_t steps = 0;
    std::vector<double> rho(rows_, 0.0);
    for (;;) {
      util::poll_cancel(cancel_);
      if (steps++ >= cap || iterations_ >= max_iterations_) return false;
      if (pivots_since_refactor_ >= kRefactorInterval ||
          eta_nnz_ > 8 * rows_ + 512) {
        refactorize();
      }

      // Most violated basic variable leaves.
      std::ptrdiff_t lrow = -1;
      double viol = feas_tol_;
      bool upper_viol = false;
      for (std::size_t r = 0; r < rows_; ++r) {
        if (-beta_[r] > viol) {
          viol = -beta_[r];
          lrow = static_cast<std::ptrdiff_t>(r);
          upper_viol = false;
        }
        const double u = ub_[basis_[r]];
        if (std::isfinite(u) && beta_[r] - u > viol) {
          viol = beta_[r] - u;
          lrow = static_cast<std::ptrdiff_t>(r);
          upper_viol = true;
        }
      }
      if (lrow < 0) return true;  // primal feasible

      std::fill(duals_.begin(), duals_.end(), 0.0);
      for (std::size_t r = 0; r < rows_; ++r) duals_[r] = cost_[basis_[r]];
      btran(duals_);
      std::fill(rho.begin(), rho.end(), 0.0);
      rho[lrow] = 1.0;
      btran(rho);

      // Dual ratio test over the pivot row; sigma flips the row so a
      // lower violation and an upper violation share one rule. Ties go
      // to the smallest column (deterministic, Bland-compatible).
      const double sigma = upper_viol ? -1.0 : 1.0;
      std::ptrdiff_t enter = -1;
      double best_ratio = kInfU;
      for (std::size_t j = 0; j < art_begin_; ++j) {
        if (basic_[j] || ub_[j] <= tol_) continue;
        const double a = sigma * column_dot(j, rho);
        double ratio;
        if (!at_upper_[j] && a < -tol_) {
          const double d = cost_[j] - column_dot(j, duals_);
          ratio = std::max(d, 0.0) / (-a);
        } else if (at_upper_[j] && a > tol_) {
          const double d = cost_[j] - column_dot(j, duals_);
          ratio = std::max(-d, 0.0) / a;
        } else {
          continue;
        }
        if (ratio < best_ratio - 1e-12) {
          best_ratio = ratio;
          enter = static_cast<std::ptrdiff_t>(j);
        }
      }
      if (enter < 0) return false;  // dual unbounded or stuck

      const std::size_t j = static_cast<std::size_t>(enter);
      load_column(j, work_);
      ftran(work_);
      const double piv = work_[static_cast<std::size_t>(lrow)];
      if (std::abs(piv) < kUnstablePivot) {
        if (!etas_.empty()) {
          refactorize();
          continue;
        }
        return false;
      }

      // Entering deviation from its resting bound; the leaving
      // variable lands exactly on the bound it violated.
      const double target =
          upper_viol ? ub_[basis_[static_cast<std::size_t>(lrow)]] : 0.0;
      const double delta = (beta_[static_cast<std::size_t>(lrow)] - target) /
                           piv;
      for (std::size_t r = 0; r < rows_; ++r) beta_[r] -= delta * work_[r];
      const int leaving = basis_[static_cast<std::size_t>(lrow)];
      basic_[leaving] = false;
      at_upper_[leaving] = upper_viol;
      append_eta(work_, static_cast<std::size_t>(lrow));
      basis_[static_cast<std::size_t>(lrow)] = static_cast<int>(j);
      basic_[j] = true;
      const double base =
          at_upper_[j] && std::isfinite(ub_[j]) ? ub_[j] : 0.0;
      beta_[static_cast<std::size_t>(lrow)] = base + delta;
      at_upper_[j] = false;
      ++iterations_;
      ++pivots_since_refactor_;
      ++stats_.dual_pivots;
    }
  }

  /// Warm path: import the hinted basis, restore primal feasibility
  /// with the dual phase, then finish with the regular primal phase 2.
  /// `clean` reports a drop-free import. Returns false when the cold
  /// path must run instead; `st_out` is only meaningful on true.
  bool try_warm(const Model& model, const Basis& hint, bool& clean,
                Status& st_out) {
    if (static_cast<int>(hint.variables.size()) != model.num_variables()) {
      return false;
    }
    std::vector<int> want;
    want.reserve(hint.variables.size());
    for (int i = 0; i < model.num_variables(); ++i) {
      const VarMap& vm = varmap_[i];
      switch (hint.variables[i]) {
        case VarStatus::kBasic:
          want.push_back(vm.col_pos);
          break;
        case VarStatus::kAtUpper:
          if (std::isfinite(ub_[vm.col_pos])) at_upper_[vm.col_pos] = true;
          break;
        case VarStatus::kAtLower:
          break;
      }
      // A free variable's negative split column stays nonbasic at
      // zero; the LPs this path serves have no free variables.
    }
    int drops = 0;
    if (!import_factorize(want, &drops)) return false;
    clean = drops == 0;

    // Phase-2 semantics from the start: artificials pinned at zero.
    // A basic artificial forced above zero by the import (the old
    // basis no longer spans this row's equality) is primal-infeasible
    // and the dual phase drives it out like any other bound violation.
    for (std::size_t j = art_begin_; j < cols_; ++j) {
      ub_[j] = 0.0;
      at_upper_[j] = false;
    }
    recompute_beta();
    for (std::size_t r = 0; r < rows_; ++r) {
      if (static_cast<std::size_t>(basis_[r]) >= art_begin_ &&
          std::abs(beta_[r]) <= feas_tol_) {
        beta_[r] = 0.0;
      }
    }
    if (!dual_phase()) return false;
    const std::size_t ab = art_begin_;
    const Status st = iterate(cost_, [ab](std::size_t j) { return j < ab; });
    if (st == Status::kIterLimit) return false;
    st_out = st;  // optimal, or a genuine unbounded ray from a
                  // feasible point
    return true;
  }

  /// Pivots across the optimal face to the vertex minimizing the fixed
  /// secondary objective c2 (entering candidates are restricted to
  /// zero-reduced-cost columns, so the primal objective is preserved).
  /// Warm and cold solves of one model therefore terminate at the same
  /// vertex, which is what makes incremental re-solves bit-identical
  /// downstream of the LP.
  void canonical_phase() {
    constexpr double kFaceTol = 1e-7;
    const std::int64_t budget =
        16 * static_cast<std::int64_t>(rows_ + cols_) + 400;
    std::vector<double> duals2(rows_, 0.0);
    std::int64_t stall = 0;
    bool bland = false;
    for (std::int64_t it = 0; it < budget; ++it) {
      util::poll_cancel(cancel_);
      if (pivots_since_refactor_ >= kRefactorInterval ||
          eta_nnz_ > 8 * rows_ + 512) {
        refactorize();
      }
      std::fill(duals_.begin(), duals_.end(), 0.0);
      for (std::size_t r = 0; r < rows_; ++r) duals_[r] = cost_[basis_[r]];
      btran(duals_);
      std::fill(duals2.begin(), duals2.end(), 0.0);
      for (std::size_t r = 0; r < rows_; ++r) duals2[r] = c2_[basis_[r]];
      btran(duals2);

      std::ptrdiff_t enter = -1;
      bool decreasing = false;
      double best = 0.0;
      for (std::size_t j = 0; j < art_begin_; ++j) {
        if (basic_[j] || ub_[j] <= tol_) continue;
        const double d = cost_[j] - column_dot(j, duals_);
        if (std::abs(d) > kFaceTol) continue;  // would leave the face
        const double d2 = c2_[j] - column_dot(j, duals2);
        const bool improving = at_upper_[j] ? d2 > tol_ : d2 < -tol_;
        if (!improving) continue;
        if (bland) {
          enter = static_cast<std::ptrdiff_t>(j);
          decreasing = at_upper_[j];
          break;
        }
        if (std::abs(d2) > best) {
          best = std::abs(d2);
          enter = static_cast<std::ptrdiff_t>(j);
          decreasing = at_upper_[j];
        }
      }
      if (enter < 0) return;

      switch (pivot_step(static_cast<std::size_t>(enter), decreasing)) {
        case PivotOutcome::kUnbounded:
          return;  // defensive: the face is bounded in these LPs
        case PivotOutcome::kPivoted:
        case PivotOutcome::kFlipped:
          ++stats_.canonical_pivots;
          if (++stall > 2 * static_cast<std::int64_t>(rows_ + cols_) + 100) {
            bland = true;  // anti-cycling on a degenerate face
          }
          break;
        case PivotOutcome::kRetry:
          break;
      }
    }
  }

  void export_to(const Model& model, Basis& out) const {
    out.variables.assign(model.num_variables(), VarStatus::kAtLower);
    for (int i = 0; i < model.num_variables(); ++i) {
      const VarMap& vm = varmap_[i];
      if (basic_[vm.col_pos] || (vm.col_neg >= 0 && basic_[vm.col_neg])) {
        out.variables[i] = VarStatus::kBasic;
      } else if (at_upper_[vm.col_pos]) {
        out.variables[i] = VarStatus::kAtUpper;
      }
    }
  }

  void extract(const Model& model, Solution& sol) {
    std::vector<double> xs(cols_, 0.0);
    for (std::size_t j = 0; j < cols_; ++j) {
      if (!basic_[j] && at_upper_[j] && std::isfinite(ub_[j])) xs[j] = ub_[j];
    }
    for (std::size_t r = 0; r < rows_; ++r) xs[basis_[r]] = beta_[r];
    sol.x.assign(model.num_variables(), 0.0);
    sol.objective = 0.0;
    for (int i = 0; i < model.num_variables(); ++i) {
      const VarMap& vm = varmap_[i];
      double v = vm.shift + xs[vm.col_pos];
      if (vm.col_neg >= 0) v -= xs[vm.col_neg];
      sol.x[i] = v;
      sol.objective += model.variable(i).objective * v;
    }
  }

  void flush_counters() const {
    static obs::Counter& c_solves = obs::counter("lp.sparse.solves");
    static obs::Counter& c_pivots = obs::counter("lp.sparse.pivots");
    static obs::Counter& c_flips = obs::counter("lp.sparse.bound_flips");
    static obs::Counter& c_degen = obs::counter("lp.sparse.degenerate");
    static obs::Counter& c_refac = obs::counter("lp.sparse.refactorizations");
    static obs::Counter& c_whit = obs::counter("lp.sparse.warm_hit");
    static obs::Counter& c_wrep = obs::counter("lp.sparse.warm_repair");
    static obs::Counter& c_cold = obs::counter("lp.sparse.cold_fallback");
    static obs::Counter& c_dual = obs::counter("lp.sparse.dual_pivots");
    static obs::Counter& c_canon = obs::counter("lp.sparse.canonical_pivots");
    c_solves.add(1);
    c_pivots.add(stats_.pivots);
    c_flips.add(stats_.bound_flips);
    c_degen.add(stats_.degenerate);
    c_refac.add(stats_.refactorizations);
    // Warm counters are added even when zero so they register on the
    // first sparse solve and show up in every obs report (the golden
    // report-keys test relies on this).
    c_whit.add(stats_.warm_hit);
    c_wrep.add(stats_.warm_repair);
    c_cold.add(stats_.cold_fallback);
    c_dual.add(stats_.dual_pivots);
    c_canon.add(stats_.canonical_pivots);
  }

  // Standardized problem (CSC).
  std::vector<int> col_ptr_, col_row_;
  std::vector<double> col_val_;
  std::vector<int> slack_col_, art_col_;  // per row; -1 when absent
  std::vector<double> b_;                 // standardized rhs
  std::vector<double> ub_;                // per column; lower bound is 0
  std::vector<double> cost_;              // phase-2 costs
  std::vector<double> c2_;                // canonicalization weights
  std::vector<int> initial_basis_;        // pristine slack/artificial basis
  std::vector<VarMap> varmap_;
  std::size_t rows_ = 0, cols_ = 0, art_begin_ = 0;
  int structural_ = 0;

  // Basis state.
  std::vector<Eta> etas_;
  std::size_t eta_nnz_ = 0;
  std::int64_t pivots_since_refactor_ = 0;
  std::vector<int> basis_;
  std::vector<bool> basic_;
  std::vector<bool> at_upper_;
  std::vector<double> beta_;

  // Scratch.
  std::vector<double> work_, duals_;

  double tol_ = 1e-9, feas_tol_ = 1e-7;
  std::int64_t iterations_ = 0, max_iterations_ = 0, bland_after_ = 0;
  bool use_bland_ = false;
  const util::CancelToken* cancel_ = nullptr;
  SparseStats stats_;
};

}  // namespace

Solution solve_sparse(const Model& model, const SolveOptions& options,
                      SparseStats* stats) {
  SparseSimplex solver;
  return solver.run(model, options, WarmOptions{}, stats);
}

Solution solve_sparse_warm(const Model& model, const SolveOptions& options,
                           const WarmOptions& warm, SparseStats* stats) {
  SparseSimplex solver;
  return solver.run(model, options, warm, stats);
}

}  // namespace nat::lp
