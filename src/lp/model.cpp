#include "lp/model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace nat::lp {

int Model::add_variable(std::string name, double lower, double upper,
                        double objective) {
  NAT_CHECK_MSG(lower <= upper,
                "variable '" << name << "': lower " << lower << " > upper "
                             << upper);
  NAT_CHECK_MSG(!std::isnan(lower) && !std::isnan(upper) &&
                    std::isfinite(objective),
                "variable '" << name << "': bad bounds/objective");
  vars_.push_back(Variable{std::move(name), lower, upper, objective});
  return static_cast<int>(vars_.size()) - 1;
}

void Model::set_objective(int var, double coeff) {
  NAT_CHECK(var >= 0 && var < num_variables());
  NAT_CHECK(std::isfinite(coeff));
  vars_[var].objective = coeff;
}

void Model::set_variable_bounds(int var, double lower, double upper) {
  NAT_CHECK(var >= 0 && var < num_variables());
  NAT_CHECK_MSG(lower <= upper, "set_variable_bounds: lower " << lower
                                    << " > upper " << upper);
  NAT_CHECK(!std::isnan(lower) && !std::isnan(upper));
  vars_[var].lower = lower;
  vars_[var].upper = upper;
}

int Model::add_row(Sense sense, double rhs,
                   std::vector<std::pair<int, double>> coeffs,
                   std::string name) {
  NAT_CHECK_MSG(std::isfinite(rhs), "row '" << name << "': non-finite rhs");
  for (const auto& [var, coeff] : coeffs) {
    NAT_CHECK_MSG(var >= 0 && var < num_variables(),
                  "row '" << name << "': bad variable index " << var);
    NAT_CHECK_MSG(std::isfinite(coeff),
                  "row '" << name << "': non-finite coefficient");
  }
  rows_.push_back(Row{std::move(name), sense, rhs, std::move(coeffs)});
  return static_cast<int>(rows_.size()) - 1;
}

double Model::objective_value(const std::vector<double>& x) const {
  NAT_CHECK(static_cast<int>(x.size()) == num_variables());
  double obj = 0.0;
  for (int i = 0; i < num_variables(); ++i) obj += vars_[i].objective * x[i];
  return obj;
}

double Model::max_violation(const std::vector<double>& x) const {
  NAT_CHECK(static_cast<int>(x.size()) == num_variables());
  double viol = 0.0;
  for (int i = 0; i < num_variables(); ++i) {
    viol = std::max(viol, vars_[i].lower - x[i]);
    if (std::isfinite(vars_[i].upper)) viol = std::max(viol, x[i] - vars_[i].upper);
  }
  for (const Row& row : rows_) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : row.coeffs) lhs += coeff * x[var];
    switch (row.sense) {
      case Sense::kLe: viol = std::max(viol, lhs - row.rhs); break;
      case Sense::kGe: viol = std::max(viol, row.rhs - lhs); break;
      case Sense::kEq: viol = std::max(viol, std::abs(lhs - row.rhs)); break;
    }
  }
  return viol;
}

}  // namespace nat::lp
