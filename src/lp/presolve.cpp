#include "lp/presolve.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace nat::lp {

namespace {

constexpr double kFixTol = 1e-12;   // lower == upper detection
constexpr double kFeasTol = 1e-9;   // consistency of empty rows / bounds

struct WorkVar {
  double lower, upper, objective;
  bool alive = true;
};

struct WorkRow {
  Sense sense;
  double rhs;
  std::vector<std::pair<int, double>> coeffs;  // merged, alive vars only
  bool alive = true;
};

}  // namespace

Presolved presolve(const Model& model) {
  Presolved out;
  const int n = model.num_variables();

  std::vector<WorkVar> vars;
  vars.reserve(n);
  for (int i = 0; i < n; ++i) {
    const Variable& v = model.variable(i);
    vars.push_back(WorkVar{v.lower, v.upper, v.objective, true});
  }
  std::vector<WorkRow> rows;
  rows.reserve(model.num_rows());
  for (const Row& r : model.rows()) {
    WorkRow w{r.sense, r.rhs, {}, true};
    // Merge duplicate variable entries up front.
    std::vector<double> acc(n, 0.0);
    std::vector<int> touched;
    for (const auto& [var, coeff] : r.coeffs) {
      if (acc[var] == 0.0 && coeff != 0.0) touched.push_back(var);
      acc[var] += coeff;
    }
    std::sort(touched.begin(), touched.end());
    for (int var : touched) {
      if (acc[var] != 0.0) w.coeffs.push_back({var, acc[var]});
    }
    rows.push_back(std::move(w));
  }

  auto fixed = [&](int i) {
    return vars[i].upper - vars[i].lower <= kFixTol;
  };

  // Iterate the reduction rules to a fixed point.
  bool changed = true;
  while (changed && !out.infeasible) {
    changed = false;
    // Bound sanity.
    for (int i = 0; i < n && !out.infeasible; ++i) {
      if (vars[i].lower > vars[i].upper + kFeasTol) out.infeasible = true;
    }
    if (out.infeasible) break;

    for (WorkRow& row : rows) {
      if (!row.alive) continue;
      // Substitute currently-fixed variables into the row.
      std::vector<std::pair<int, double>> remaining;
      for (const auto& [var, coeff] : row.coeffs) {
        if (fixed(var)) {
          row.rhs -= coeff * vars[var].lower;
          changed = true;
        } else {
          remaining.push_back({var, coeff});
        }
      }
      row.coeffs = std::move(remaining);

      if (row.coeffs.empty()) {
        // Empty row: consistency check, then drop.
        const bool ok = (row.sense == Sense::kLe && row.rhs >= -kFeasTol) ||
                        (row.sense == Sense::kGe && row.rhs <= kFeasTol) ||
                        (row.sense == Sense::kEq &&
                         std::abs(row.rhs) <= kFeasTol);
        if (!ok) {
          out.infeasible = true;
          return out;
        }
        row.alive = false;
        changed = true;
        continue;
      }

      if (row.coeffs.size() == 1) {
        // Singleton row: tighten the variable's bounds and drop.
        const auto [var, coeff] = row.coeffs.front();
        const double bound = row.rhs / coeff;
        const bool upper_side =
            (row.sense == Sense::kLe) == (coeff > 0.0);
        if (row.sense == Sense::kEq) {
          vars[var].lower = std::max(vars[var].lower, bound);
          vars[var].upper = std::min(vars[var].upper, bound);
        } else if (upper_side) {
          vars[var].upper = std::min(vars[var].upper, bound);
        } else {
          vars[var].lower = std::max(vars[var].lower, bound);
        }
        if (vars[var].lower > vars[var].upper + kFeasTol) {
          out.infeasible = true;
          return out;
        }
        row.alive = false;
        changed = true;
      }
    }
  }

  // Assemble the reduced model and the variable map.
  out.vars.resize(n);
  for (int i = 0; i < n; ++i) {
    if (fixed(i)) {
      out.vars[i].fixed = true;
      out.vars[i].value = vars[i].lower;
      ++out.vars_removed;
    } else {
      out.vars[i].reduced_index = out.reduced.add_variable(
          model.variable(i).name, vars[i].lower, vars[i].upper,
          vars[i].objective);
    }
  }
  for (const WorkRow& row : rows) {
    if (!row.alive) {
      ++out.rows_removed;
      continue;
    }
    std::vector<std::pair<int, double>> coeffs;
    for (const auto& [var, coeff] : row.coeffs) {
      NAT_DCHECK(!out.vars[var].fixed);
      coeffs.push_back({out.vars[var].reduced_index, coeff});
    }
    out.reduced.add_row(row.sense, row.rhs, std::move(coeffs));
  }
  return out;
}

std::vector<double> Presolved::postsolve(
    const std::vector<double>& reduced_x) const {
  NAT_CHECK(static_cast<int>(reduced_x.size()) ==
            reduced.num_variables());
  std::vector<double> x(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i) {
    x[i] = vars[i].fixed ? vars[i].value
                         : reduced_x[vars[i].reduced_index];
  }
  return x;
}

Solution solve_with_presolve(const Model& model,
                             const SolveOptions& options) {
  Presolved pre = presolve(model);
  if (pre.infeasible) {
    Solution s;
    s.status = Status::kInfeasible;
    return s;
  }
  Solution reduced = solve(pre.reduced, options);
  if (reduced.status != Status::kOptimal) return reduced;
  Solution out;
  out.status = Status::kOptimal;
  out.iterations = reduced.iterations;
  out.x = pre.postsolve(reduced.x);
  out.objective = model.objective_value(out.x);
  return out;
}

}  // namespace nat::lp
