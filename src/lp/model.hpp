// Linear-program model builder (minimization).
//
// A Model is a plain description: variables with bounds and objective
// coefficients, plus linear rows with a sense and right-hand side. The
// two solver backends (dense floating-point simplex and exact rational
// simplex) both consume this representation. All LPs in this
// repository have integer input data, so double coefficients are exact
// and the rational backend can recover them losslessly.
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace nat::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { kLe, kGe, kEq };

struct Variable {
  std::string name;
  double lower = 0.0;
  double upper = kInf;
  double objective = 0.0;
};

struct Row {
  std::string name;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
  // (variable index, coefficient); indices must be valid, coefficients
  // may repeat a variable (they are summed during standardization).
  std::vector<std::pair<int, double>> coeffs;
};

class Model {
 public:
  /// Adds a variable and returns its index.
  int add_variable(std::string name, double lower = 0.0, double upper = kInf,
                   double objective = 0.0);

  /// Sets (overwrites) the objective coefficient of a variable.
  void set_objective(int var, double coeff);

  /// Tightens/overwrites a variable's bounds (used by branch-and-bound
  /// to branch on fractional variables without rebuilding the model).
  void set_variable_bounds(int var, double lower, double upper);

  /// Adds a row and returns its index.
  int add_row(Sense sense, double rhs,
              std::vector<std::pair<int, double>> coeffs,
              std::string name = {});

  int num_variables() const { return static_cast<int>(vars_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  const Variable& variable(int i) const { return vars_.at(i); }
  const Row& row(int i) const { return rows_.at(i); }
  const std::vector<Variable>& variables() const { return vars_; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Evaluates the objective at a point (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  /// Maximum violation of any row/bound at a point (0 when feasible).
  double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<Variable> vars_;
  std::vector<Row> rows_;
};

}  // namespace nat::lp
