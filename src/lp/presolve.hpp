// LP presolve: cheap reductions applied before the simplex.
//
// Implemented rules (iterated to a fixed point):
//   * fixed variables (lower == upper) are substituted out;
//   * empty rows are checked for consistency and dropped;
//   * singleton rows (one variable) become bound tightenings and are
//     dropped;
//   * crossing bounds are detected as infeasibility immediately.
//
// The result carries a postsolve map so a solution of the reduced
// model lifts back to the original variable space. solve_with_presolve
// is a drop-in replacement for lp::solve.
#pragma once

#include <vector>

#include "lp/dense_simplex.hpp"
#include "lp/model.hpp"

namespace nat::lp {

struct Presolved {
  Model reduced;
  bool infeasible = false;   // detected before any simplex ran
  int rows_removed = 0;
  int vars_removed = 0;

  /// Lifts a reduced-model solution back to original variables.
  std::vector<double> postsolve(const std::vector<double>& reduced_x) const;

  // Per original variable: fixed value, or index into the reduced model.
  struct VarState {
    bool fixed = false;
    double value = 0.0;  // valid when fixed
    int reduced_index = -1;
  };
  std::vector<VarState> vars;
};

Presolved presolve(const Model& model);

/// presolve + solve + postsolve. Status and objective match lp::solve
/// (up to tolerances); the solution vector covers all original
/// variables.
Solution solve_with_presolve(const Model& model,
                             const SolveOptions& options = {});

}  // namespace nat::lp
