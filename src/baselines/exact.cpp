#include "baselines/exact.hpp"

#include <algorithm>
#include <bit>

#include "activetime/feasibility.hpp"
#include "activetime/oracle.hpp"
#include "activetime/tree.hpp"
#include "baselines/greedy.hpp"
#include "util/check.hpp"

namespace nat::at::baselines {

namespace {

class RegionSearch {
 public:
  RegionSearch(const LaminarForest& forest, std::int64_t node_budget,
               const util::CancelToken* cancel)
      : forest_(forest), oracle_(forest), budget_(node_budget),
        cancel_(cancel) {
    oracle_.set_cancel(cancel);
    const int m = forest.num_nodes();
    order_ = forest.postorder();
    pos_of_.assign(m, -1);
    for (std::size_t p = 0; p < order_.size(); ++p) {
      pos_of_[order_[p]] = static_cast<int>(p);
    }
    // Subtree sizes in postorder: subtree(i) occupies the contiguous
    // positions (pos(i) - size(i), pos(i)].
    size_.assign(m, 1);
    for (int i : order_) {
      for (int c : forest.node(i).children) size_[i] += size_[c];
    }
    // Per-subtree lower bounds: volume / g and the longest job.
    sub_lb_.assign(m, 0);
    for (int i : order_) {
      std::int64_t volume = 0;
      std::int64_t longest = 0;
      for (int d : forest.subtree(i)) {
        for (int j : forest.node(d).jobs) {
          volume += forest.jobs()[j].processing;
          longest = std::max(longest, forest.jobs()[j].processing);
        }
      }
      sub_lb_[i] = std::max((volume + forest.g() - 1) / forest.g(), longest);
    }
  }

  std::int64_t global_lower_bound() const {
    std::int64_t lb = 0;
    for (int r : forest_.roots()) lb += sub_lb_[r];
    return lb;
  }

  /// Tries to fit everything in at most `k` open slots. Returns the
  /// count vector on success. Sets exhausted() when the budget ran out.
  std::optional<std::vector<Time>> fit(std::int64_t k) {
    k_ = k;
    counts_.assign(forest_.num_nodes(), 0);
    exhausted_ = false;
    if (dfs(0, k)) return counts_;
    return std::nullopt;
  }

  bool exhausted() const { return exhausted_; }
  std::int64_t nodes_explored() const { return nodes_; }

 private:
  bool dfs(std::size_t pos, std::int64_t remaining) {
    if (pos == order_.size()) {
      return oracle_.feasible(counts_);
    }
    const int i = order_[pos];
    const Time cap = std::min<Time>(forest_.node(i).length(), remaining);
    for (Time c = cap; c >= 0; --c) {
      if (++nodes_ > budget_) {
        exhausted_ = true;
        return false;
      }
      // Deadline poll, amortized: most loop turns also hit an oracle
      // query (which polls on entry); this catches pruning-only runs.
      if ((nodes_ & 255) == 0) util::poll_cancel(cancel_);
      counts_[i] = c;
      // Subtree of i is fully assigned now; enforce its lower bound.
      std::int64_t sub_sum = 0;
      for (int p = static_cast<int>(pos) - size_[i] + 1;
           p <= static_cast<int>(pos); ++p) {
        sub_sum += counts_[order_[p]];
      }
      if (sub_sum < sub_lb_[i]) continue;
      // Relaxation: assigned regions at their counts, the rest full.
      // Successive relaxed vectors share almost every entry, so the
      // warm-started oracle pays only for the decremented prefix.
      std::vector<Time> relaxed = counts_;
      for (std::size_t p = pos + 1; p < order_.size(); ++p) {
        relaxed[order_[p]] = forest_.node(order_[p]).length();
      }
      if (!oracle_.feasible(relaxed)) continue;
      if (dfs(pos + 1, remaining - c)) return true;
      if (exhausted_) return false;
    }
    counts_[i] = 0;
    return false;
  }

  const LaminarForest& forest_;
  FeasibilityOracle oracle_;
  std::vector<int> order_;
  std::vector<int> pos_of_;
  std::vector<int> size_;
  std::vector<std::int64_t> sub_lb_;
  std::vector<Time> counts_;
  std::int64_t k_ = 0;
  std::int64_t budget_ = 0;
  std::int64_t nodes_ = 0;
  bool exhausted_ = false;
  const util::CancelToken* cancel_ = nullptr;
};

}  // namespace

std::optional<ExactResult> exact_opt_laminar(const Instance& instance,
                                             const ExactOptions& options) {
  instance.validate();
  if (instance.jobs.empty()) return ExactResult{};

  LaminarForest forest = LaminarForest::build(instance);
  forest.canonicalize();

  // Upper bound from greedy; also certifies feasibility. The scan is
  // the most expensive pre-search phase, so it shares the deadline.
  GreedyResult greedy = greedy_minimal_feasible(
      instance, DeactivationOrder::kRightToLeft, 0, options.cancel);
  const std::int64_t ub = greedy.active_slots;

  RegionSearch search(forest, options.node_budget, options.cancel);
  for (std::int64_t k = search.global_lower_bound(); k <= ub; ++k) {
    auto counts = search.fit(k);
    if (search.exhausted()) return std::nullopt;
    if (!counts.has_value()) continue;
    ExactResult result;
    result.nodes_explored = search.nodes_explored();
    auto sched = schedule_with_counts(forest, *counts);
    NAT_CHECK(sched.has_value());
    result.schedule = std::move(*sched);
    validate_schedule(instance, result.schedule);
    result.optimum = result.schedule.active_slots();
    NAT_CHECK_MSG(result.optimum <= k, "schedule used more slots than k");
    return result;
  }
  // The greedy solution itself is optimal.
  ExactResult result;
  result.nodes_explored = search.nodes_explored();
  result.schedule = greedy.schedule;
  result.optimum = ub;
  return result;
}

std::int64_t exact_opt_common_window(const Instance& instance) {
  instance.validate();
  if (instance.jobs.empty()) return 0;
  const Interval window = instance.jobs.front().window();
  std::int64_t volume = 0;
  std::int64_t longest = 0;
  for (const Job& job : instance.jobs) {
    NAT_CHECK_MSG(job.window() == window,
                  "exact_opt_common_window requires one shared window");
    volume += job.processing;
    longest = std::max(longest, job.processing);
  }
  const std::int64_t opt =
      std::max((volume + instance.g - 1) / instance.g, longest);
  NAT_CHECK_MSG(opt <= window.length(), "instance is infeasible");
  return opt;
}

std::optional<std::int64_t> exact_opt_brute_force(const Instance& instance,
                                                  int max_horizon) {
  instance.validate();
  if (instance.jobs.empty()) return 0;
  // Candidate slots: union of windows.
  std::vector<Time> slots;
  for (const Job& job : instance.jobs) {
    for (Time t = job.release; t < job.deadline; ++t) slots.push_back(t);
  }
  std::sort(slots.begin(), slots.end());
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  const int T = static_cast<int>(slots.size());
  if (T > max_horizon) return std::nullopt;
  NAT_CHECK_MSG(feasible_with_slots(instance, slots),
                "brute force: instance is infeasible");

  int best = T;
  const std::uint32_t full = (T >= 32) ? 0xffffffffu : ((1u << T) - 1);
  for (std::uint32_t mask = 0; mask <= full; ++mask) {
    const int k = std::popcount(mask);
    if (k >= best) continue;
    std::vector<Time> open;
    for (int b = 0; b < T; ++b) {
      if (mask & (1u << b)) open.push_back(slots[b]);
    }
    if (feasible_with_slots(instance, open)) best = k;
    if (mask == full) break;  // avoid wrap when T == 32
  }
  return best;
}

}  // namespace nat::at::baselines
