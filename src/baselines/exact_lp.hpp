// Exact optimum via LP-based branch and bound.
//
// A second exact solver, complementary to the count-DFS in exact.*:
// the search relaxes integrality of the region counts x(i) and uses
// the *strengthened LP (1)* as the bound — far tighter than the
// volume/longest-job bounds of the DFS — branching on a fractional
// x(i) into x(i) <= ⌊v⌋ and x(i) >= ⌈v⌉ (pure bound changes, handled
// natively by the bounded-variable backend).
//
// Correctness of the leaves: if the LP is feasible with every x(i)
// integral, the fractional y can be rerouted integrally (the y-part of
// LP (1) with x fixed is a transportation LP with integral capacities,
// whose extreme points are integral — equivalently, our max-flow
// oracle accepts the counts), so every integral LP point is a genuine
// schedule. The oracle double-checks each incumbent anyway.
#pragma once

#include <cstdint>
#include <optional>

#include "activetime/instance.hpp"
#include "activetime/schedule.hpp"

namespace nat::at::baselines {

struct LpBnbOptions {
  std::int64_t node_budget = 200'000;  // LP solves allowed
};

struct LpBnbResult {
  std::int64_t optimum = 0;
  Schedule schedule;
  std::int64_t lp_solves = 0;
};

/// Exact OPT for a laminar instance; nullopt when the budget ran out.
std::optional<LpBnbResult> exact_opt_lp_bnb(const Instance& instance,
                                            const LpBnbOptions& options = {});

}  // namespace nat::at::baselines
