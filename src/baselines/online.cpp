#include "baselines/online.hpp"

#include <algorithm>

#include "activetime/feasibility.hpp"
#include "flow/dinic.hpp"
#include "obs/counters.hpp"
#include "util/check.hpp"

namespace nat::at::baselines {

// One slot-level flow network serves the whole horizon sweep, in the
// style of the warm FeasibilityOracle (activetime/oracle.*): source →
// job (cap 0 until released, then p_j) → slot within the window
// (cap 1) → sink (cap g; 0 once the slot is declined). Each per-slot
// feasibility probe is a capacity retune plus a warm max-flow
// augmentation from the previous flow instead of a fresh network and a
// from-scratch Dinic — the sweep drops from quadratic in the horizon
// to one network build plus H incremental probes. Decisions are
// bit-identical to the rebuild-per-slot formulation because max-flow
// saturation is an exact test.
OnlineResult lazy_online(const Instance& instance) {
  instance.validate();
  OnlineResult result;
  if (instance.jobs.empty()) return result;
  const Interval horizon = instance.horizon();
  const int n = static_cast<int>(instance.jobs.size());
  const int slots = static_cast<int>(horizon.length());

  flow::MaxFlowGraph graph(2 + n + slots);
  const int source = 0;
  const int sink = 1 + n + slots;
  const auto job_node = [&](int j) { return 1 + j; };
  const auto slot_node = [&](Time t) {
    return 1 + n + static_cast<int>(t - horizon.lo);
  };

  std::vector<int> job_edge(static_cast<std::size_t>(n), -1);
  std::vector<int> slot_edge(static_cast<std::size_t>(slots), -1);
  std::int64_t total_volume = 0;
  for (int j = 0; j < n; ++j) {
    const Job& job = instance.jobs[static_cast<std::size_t>(j)];
    job_edge[static_cast<std::size_t>(j)] =
        graph.add_edge(source, job_node(j), job.processing);
    total_volume += job.processing;
    for (Time t = job.release; t < job.deadline; ++t) {
      graph.add_edge(job_node(j), slot_node(t), 1);
    }
  }
  for (Time t = horizon.lo; t < horizon.hi; ++t) {
    slot_edge[static_cast<std::size_t>(t - horizon.lo)] =
        graph.add_edge(slot_node(t), sink, instance.g);
  }

  // Offline precheck on the same network: every job present, every
  // slot open.
  NAT_CHECK_MSG(graph.max_flow(source, sink) == total_volume,
                "lazy_online: instance is infeasible");
  graph.reset_flow_keep_topology();

  // Online sweep: jobs appear when released (source cap 0 → p_j).
  for (int j = 0; j < n; ++j) {
    graph.set_capacity(job_edge[static_cast<std::size_t>(j)], 0);
  }
  std::vector<int> by_release(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) by_release[static_cast<std::size_t>(j)] = j;
  std::sort(by_release.begin(), by_release.end(), [&](int a, int b) {
    return instance.jobs[static_cast<std::size_t>(a)].release <
           instance.jobs[static_cast<std::size_t>(b)].release;
  });

  static obs::Counter& c_probes = obs::counter("at.online.probes");
  std::vector<Time> chosen;
  std::int64_t released_volume = 0;
  std::size_t next_arrival = 0;
  for (Time t = horizon.lo; t < horizon.hi; ++t) {
    while (next_arrival < by_release.size() &&
           instance.jobs[static_cast<std::size_t>(
                             by_release[next_arrival])].release <= t) {
      const int j = by_release[next_arrival++];
      const Job& job = instance.jobs[static_cast<std::size_t>(j)];
      graph.set_capacity(job_edge[static_cast<std::size_t>(j)],
                         job.processing);
      released_volume += job.processing;
    }
    // Slot t goes dark tentatively; it stays dark forever unless the
    // probe below proves it essential. Pre-release slots (no visible
    // volume yet) are declined without a probe — the rebuild-per-slot
    // formulation likewise never opens a slot before the first arrival
    // and excludes every past unchosen slot from later tests.
    const int se = slot_edge[static_cast<std::size_t>(t - horizon.lo)];
    graph.set_capacity(se, 0);
    if (released_volume == 0) continue;

    // Can the visible jobs still finish if slot t stays dark?
    c_probes.add(1);
    graph.max_flow(source, sink);
    if (graph.flow_value() < released_volume) {
      // No: open slot t (restore its capacity) and keep sweeping from
      // the current warm flow.
      chosen.push_back(t);
      graph.set_capacity(se, instance.g);
    }
  }

  auto sched = schedule_with_slots(instance, chosen);
  result.open_slots = std::move(chosen);
  if (!sched.has_value()) {
    // Laziness was punished: an arrival made a previously-declined
    // slot essential (see the header for the impossibility argument).
    result.feasible = false;
    result.active_slots =
        static_cast<std::int64_t>(result.open_slots.size());
    return result;
  }
  result.schedule = std::move(*sched);
  result.active_slots = result.schedule.active_slots();
  return result;
}

}  // namespace nat::at::baselines
