#include "baselines/online.hpp"

#include <algorithm>

#include "activetime/feasibility.hpp"
#include "util/check.hpp"

namespace nat::at::baselines {

OnlineResult lazy_online(const Instance& instance) {
  instance.validate();
  OnlineResult result;
  if (instance.jobs.empty()) return result;
  const Interval horizon = instance.horizon();

  {
    std::vector<Time> all;
    for (Time t = horizon.lo; t < horizon.hi; ++t) all.push_back(t);
    NAT_CHECK_MSG(feasible_with_slots(instance, all),
                  "lazy_online: instance is infeasible");
  }

  std::vector<Time> chosen;
  for (Time t = horizon.lo; t < horizon.hi; ++t) {
    // Jobs visible at time t.
    Instance known;
    known.g = instance.g;
    for (const Job& job : instance.jobs) {
      if (job.release <= t) known.jobs.push_back(job);
    }
    if (known.jobs.empty()) continue;
    // Can the visible jobs still finish if slot t stays dark?
    std::vector<Time> without = chosen;
    for (Time u = t + 1; u < horizon.hi; ++u) without.push_back(u);
    if (!feasible_with_slots(known, without)) {
      chosen.push_back(t);
    }
  }

  auto sched = schedule_with_slots(instance, chosen);
  result.open_slots = std::move(chosen);
  if (!sched.has_value()) {
    // Laziness was punished: an arrival made a previously-declined
    // slot essential (see the header for the impossibility argument).
    result.feasible = false;
    result.active_slots =
        static_cast<std::int64_t>(result.open_slots.size());
    return result;
  }
  result.schedule = std::move(*sched);
  result.active_slots = result.schedule.active_slots();
  return result;
}

}  // namespace nat::at::baselines
