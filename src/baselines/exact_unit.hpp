// Exact polynomial-time optimum for laminar instances with *unit*
// processing times — the case Chang–Gabow–Khuller [2] showed solvable
// in polynomial time (our specialization exploits laminarity for a
// particularly simple algorithm).
//
// For unit jobs, a slot set S is feasible iff for every tree node i
//   |S ∩ K(i)| >= ceil(n_i / g),            n_i = |J(Des(i))|.
// Necessity: the n_i unit jobs under i can only use slots inside K(i),
// at most g per slot. Sufficiency: a capacitated Hall argument — any
// deficient job set is dominated by the union of the maximal windows
// it touches, which are disjoint, so per-node inequalities imply all
// subset inequalities.
//
// Minimizing |S| under laminar lower bounds is a classic bottom-up
// greedy: walk the tree in postorder and, at each node, open just
// enough additional slots inside K(i) to reach ceil(n_i / g); slots
// opened for descendants count toward every ancestor, and any slot of
// K(i) serves i and all its ancestors equally. Optimality follows from
// the laminar exchange argument (any solution must invest ceil(n_i/g)
// inside each K(i); the greedy never opens a slot that is not forced
// by some tight constraint) — and is re-verified against the
// branch-and-bound oracle in the test suite.
#pragma once

#include <cstdint>
#include <optional>

#include "activetime/instance.hpp"
#include "activetime/schedule.hpp"

namespace nat::at::baselines {

struct ExactUnitResult {
  std::int64_t optimum = 0;
  Schedule schedule;
};

/// Exact OPT for a laminar all-unit instance. NAT_CHECKs that every
/// processing time is 1, that the instance is laminar and feasible.
ExactUnitResult exact_opt_unit_laminar(const Instance& instance);

}  // namespace nat::at::baselines
