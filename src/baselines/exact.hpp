// Exact optimum for small instances (the OPT oracle behind every
// approximation-ratio table).
//
// The nested problem is NP-complete (Section 6 of the paper), so this
// is a branch-and-bound over per-region open counts of the canonical
// laminar forest:
//   * slots inside one exclusive region are interchangeable, collapsing
//     the 2^T slot subsets to Π(L(i)+1) count vectors;
//   * K is swept upward from a lower bound (first feasible K = OPT);
//   * pruning: per-subtree lower bounds (volume, longest job) and a
//     relaxation flow test (assigned regions at their counts, remaining
//     regions fully open).
//
// A slot-subset brute force over tiny horizons cross-checks the B&B in
// tests and also serves non-laminar instances.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "activetime/instance.hpp"
#include "activetime/schedule.hpp"
#include "util/cancel.hpp"

namespace nat::at::baselines {

struct ExactOptions {
  // Abort (return nullopt) after visiting this many search nodes.
  std::int64_t node_budget = 20'000'000;
  // Cooperative cancellation/deadline (util/cancel.hpp): polled every
  // few hundred branch-and-bound nodes and at every oracle query; a
  // fired token aborts the search with CancelledError.
  const util::CancelToken* cancel = nullptr;
};

struct ExactResult {
  std::int64_t optimum = 0;
  Schedule schedule;
  std::int64_t nodes_explored = 0;
};

/// Exact OPT for a laminar instance; nullopt if the budget ran out.
std::optional<ExactResult> exact_opt_laminar(const Instance& instance,
                                             const ExactOptions& options = {});

/// Exact OPT by slot-subset enumeration; requires a horizon of at most
/// `max_horizon` slots. Works for any (also non-laminar) instance.
std::optional<std::int64_t> exact_opt_brute_force(const Instance& instance,
                                                  int max_horizon = 22);

/// Closed-form OPT for instances whose jobs all share one window:
/// max(ceil(volume / g), max_j p_j). Sufficiency follows from the cut
/// condition (each job fits in S slots, total fits in g*S); necessity
/// is immediate. NAT_CHECKs the common-window precondition.
std::int64_t exact_opt_common_window(const Instance& instance);

}  // namespace nat::at::baselines
