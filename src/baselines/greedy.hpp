// Greedy deactivation baselines (the "problem history" algorithms).
//
// Start with every slot of the job-window union open and repeatedly
// close a slot whose removal keeps the instance feasible (flow test).
// Any such *minimal feasible* solution is a 3-approximation
// [Chang–Khuller–Mukherjee]; Kumar–Khuller showed a careful slot order
// achieves 2. Their brief announcement does not fully specify the
// rule, so this module exposes pluggable deactivation orders
// (DESIGN.md §5 documents the substitution): the right-to-left scan is
// benchmarked as the careful variant.
#pragma once

#include <cstdint>
#include <vector>

#include "activetime/instance.hpp"
#include "activetime/schedule.hpp"
#include "util/cancel.hpp"

namespace nat::at::baselines {

enum class DeactivationOrder {
  kLeftToRight,
  kRightToLeft,
  kRandom,
  // Density-aware heuristics: try to close slots reachable by few job
  // windows first (they are cheap to give up early) or by many first.
  kSparsestFirst,
  kDensestFirst,
};

const char* to_string(DeactivationOrder order);

struct GreedyResult {
  std::vector<Time> open_slots;  // the minimal feasible slot set
  Schedule schedule;
  std::int64_t active_slots = 0;
};

/// Runs greedy deactivation. NAT_CHECKs that the instance is feasible.
/// `seed` is used only by kRandom. The deactivation scan runs one flow
/// test per candidate slot — on wide instances that is the dominant
/// cost — so it polls `cancel` (util/cancel.hpp) before every test.
GreedyResult greedy_minimal_feasible(
    const Instance& instance,
    DeactivationOrder order = DeactivationOrder::kRightToLeft,
    std::uint64_t seed = 0, const util::CancelToken* cancel = nullptr);

/// True iff `open_slots` is minimal feasible: feasible, and closing any
/// single slot breaks feasibility. (Test helper for the 3-approx
/// precondition.)
bool is_minimal_feasible(const Instance& instance,
                         const std::vector<Time>& open_slots);

}  // namespace nat::at::baselines
