#include "baselines/exact_unit.hpp"

#include <algorithm>

#include "activetime/feasibility.hpp"
#include "activetime/tree.hpp"
#include "util/check.hpp"

namespace nat::at::baselines {

ExactUnitResult exact_opt_unit_laminar(const Instance& instance) {
  instance.validate();
  if (instance.jobs.empty()) return {};
  for (const Job& job : instance.jobs) {
    NAT_CHECK_MSG(job.processing == 1,
                  "exact_opt_unit_laminar requires unit jobs");
  }
  // Note: no canonicalization — the rigid-leaf transform is unnecessary
  // for the counting argument, and the raw window tree keeps n_i
  // counts aligned with the original windows.
  LaminarForest forest = LaminarForest::build(instance);

  const int m = forest.num_nodes();
  std::vector<Time> open(m, 0);

  // n_i and per-subtree opened totals, maintained bottom-up.
  std::vector<std::int64_t> jobs_below(m, 0);
  std::vector<Time> opened_below(m, 0);
  for (int i : forest.postorder()) {
    jobs_below[i] = static_cast<std::int64_t>(forest.node(i).jobs.size());
    for (int c : forest.node(i).children) jobs_below[i] += jobs_below[c];
    opened_below[i] = open[i];
    for (int c : forest.node(i).children) opened_below[i] += opened_below[c];

    const Time need =
        (jobs_below[i] + forest.g() - 1) / forest.g();  // ceil(n_i / g)
    NAT_CHECK_MSG(need <= forest.node(i).interval.length(),
                  "infeasible unit instance at node " << i << ": "
                      << jobs_below[i] << " jobs need " << need
                      << " slots in " << forest.node(i).interval);
    Time deficit = need - opened_below[i];
    // Open `deficit` more slots anywhere inside K(i): walk the subtree
    // and take spare region capacity (placement within K(i) is
    // irrelevant to i and to every ancestor). Slots added below an
    // already-processed node keep its subtree total current via the
    // parent-chain walk.
    for (int d : forest.subtree(i)) {
      if (deficit <= 0) break;
      const Time spare = forest.node(d).length() - open[d];
      const Time take = std::min(spare, deficit);
      if (take <= 0) continue;
      open[d] += take;
      for (int v = d;; v = forest.node(v).parent) {
        opened_below[v] += take;
        if (v == i) break;
      }
      deficit -= take;
    }
    NAT_CHECK_MSG(deficit <= 0, "could not place forced slots");
  }

  ExactUnitResult result;
  auto schedule = schedule_with_counts(forest, open);
  NAT_CHECK_MSG(schedule.has_value(),
                "unit greedy produced an infeasible count vector");
  result.schedule = std::move(*schedule);
  validate_schedule(instance, result.schedule);
  for (int i = 0; i < m; ++i) result.optimum += open[i];
  NAT_CHECK_MSG(result.schedule.active_slots() == result.optimum,
                "extraction dropped a forced slot");
  return result;
}

}  // namespace nat::at::baselines
