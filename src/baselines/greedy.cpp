#include "baselines/greedy.hpp"

#include <algorithm>

#include "activetime/feasibility.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace nat::at::baselines {

const char* to_string(DeactivationOrder order) {
  switch (order) {
    case DeactivationOrder::kLeftToRight: return "left-to-right";
    case DeactivationOrder::kRightToLeft: return "right-to-left";
    case DeactivationOrder::kRandom: return "random";
    case DeactivationOrder::kSparsestFirst: return "sparsest-first";
    case DeactivationOrder::kDensestFirst: return "densest-first";
  }
  return "?";
}

GreedyResult greedy_minimal_feasible(const Instance& instance,
                                     DeactivationOrder order,
                                     std::uint64_t seed,
                                     const util::CancelToken* cancel) {
  obs::Span span_total("greedy_minimal_feasible");
  instance.validate();
  // Candidate slots: union of job windows.
  std::vector<Time> open;
  for (const Job& job : instance.jobs) {
    for (Time t = job.release; t < job.deadline; ++t) open.push_back(t);
  }
  std::sort(open.begin(), open.end());
  open.erase(std::unique(open.begin(), open.end()), open.end());
  NAT_CHECK_MSG(feasible_with_slots(instance, open),
                "greedy: instance is infeasible");

  std::vector<Time> scan = open;
  switch (order) {
    case DeactivationOrder::kLeftToRight:
      break;
    case DeactivationOrder::kRightToLeft:
      std::reverse(scan.begin(), scan.end());
      break;
    case DeactivationOrder::kRandom: {
      util::Rng rng(seed);
      for (std::size_t i = scan.size(); i > 1; --i) {
        std::swap(scan[i - 1],
                  scan[static_cast<std::size_t>(rng.uniform_int(
                      0, static_cast<std::int64_t>(i) - 1))]);
      }
      break;
    }
    case DeactivationOrder::kSparsestFirst:
    case DeactivationOrder::kDensestFirst: {
      // Number of job windows covering each slot; stable sort keeps
      // the left-to-right order within equal densities.
      auto density = [&instance](Time t) {
        std::int64_t d = 0;
        for (const Job& job : instance.jobs) {
          d += job.window().contains(t) ? 1 : 0;
        }
        return d;
      };
      std::vector<std::pair<std::int64_t, Time>> keyed;
      keyed.reserve(scan.size());
      for (Time t : scan) keyed.push_back({density(t), t});
      std::stable_sort(keyed.begin(), keyed.end(),
                       [order](const auto& a, const auto& b) {
                         return order == DeactivationOrder::kSparsestFirst
                                    ? a.first < b.first
                                    : a.first > b.first;
                       });
      for (std::size_t k = 0; k < scan.size(); ++k) scan[k] = keyed[k].second;
      break;
    }
  }

  std::int64_t closed = 0;
  {
    obs::Span span("greedy_minimal_feasible/deactivation");
    for (Time t : scan) {
      util::poll_cancel(cancel);
      std::vector<Time> without;
      without.reserve(open.size() - 1);
      for (Time u : open) {
        if (u != t) without.push_back(u);
      }
      if (feasible_with_slots(instance, without)) {
        open = std::move(without);
        ++closed;
      }
    }
  }
  static obs::Counter& c_closed = obs::counter("baselines.greedy.closed");
  static obs::Counter& c_kept = obs::counter("baselines.greedy.kept");
  c_closed.add(closed);
  c_kept.add(static_cast<std::int64_t>(open.size()));

  GreedyResult result;
  result.open_slots = open;
  auto sched = schedule_with_slots(instance, open);
  NAT_CHECK(sched.has_value());
  result.schedule = std::move(*sched);
  result.active_slots = result.schedule.active_slots();
  return result;
}

bool is_minimal_feasible(const Instance& instance,
                         const std::vector<Time>& open_slots) {
  if (!feasible_with_slots(instance, open_slots)) return false;
  for (Time t : open_slots) {
    std::vector<Time> without;
    for (Time u : open_slots) {
      if (u != t) without.push_back(u);
    }
    if (feasible_with_slots(instance, without)) return false;
  }
  return true;
}

}  // namespace nat::at::baselines
