// Online lazy-activation heuristic — and a demonstration of why
// laziness is not feasibility-safe under online arrivals.
//
// Model: time advances slot by slot; the algorithm sees only jobs
// already released and must irrevocably decide whether to power the
// current slot. The lazy rule activates slot t exactly when the jobs
// known so far could no longer finish using the already-activated
// past plus every future slot.
//
// The rule is safe against the jobs it knows, but a later arrival can
// crowd the shared future: with g = 1, defer slot 0 for job A
// (p=2, window [0,4)) — justified, A fits in [1,4) — then job B
// (p=2, window [1,4)) arrives and the remaining capacity 3 < demand 4
// is unfixable, even though the full instance was feasible. The same
// trap defeats *every* online rule that ever declines a slot an
// adversary can later make essential, which is why the online
// literature the paper's survey cites works in relaxed models. We keep
// the heuristic as an honest baseline: results carry a `feasible`
// flag, and the experiment measures both the activation cost and the
// failure rate (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <vector>

#include "activetime/instance.hpp"
#include "activetime/schedule.hpp"

namespace nat::at::baselines {

struct OnlineResult {
  bool feasible = true;          // false: laziness was punished
  std::vector<Time> open_slots;  // decisions actually made
  Schedule schedule;             // valid only when feasible
  std::int64_t active_slots = 0;
};

/// Runs the lazy online heuristic over the instance horizon.
/// NAT_CHECKs that the *offline* instance is feasible; the result's
/// `feasible` flag reports whether laziness survived the arrivals.
OnlineResult lazy_online(const Instance& instance);

}  // namespace nat::at::baselines
