#include "baselines/exact_lp.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "activetime/feasibility.hpp"
#include "activetime/lp_relaxation.hpp"
#include "activetime/tree.hpp"
#include "baselines/greedy.hpp"
#include "lp/backend.hpp"
#include "util/check.hpp"

namespace nat::at::baselines {

namespace {

constexpr double kIntTol = 1e-6;

struct BranchNode {
  // Bound overrides per tree node; -1 means "unchanged".
  std::vector<Time> lo, hi;
};

}  // namespace

std::optional<LpBnbResult> exact_opt_lp_bnb(const Instance& instance,
                                            const LpBnbOptions& options) {
  instance.validate();
  if (instance.jobs.empty()) return LpBnbResult{};

  LaminarForest forest = LaminarForest::build(instance);
  forest.canonicalize();
  const int m = forest.num_nodes();

  StrongLp lp = build_strong_lp(forest);

  // Incumbent from greedy (also certifies feasibility).
  GreedyResult greedy = greedy_minimal_feasible(instance);
  std::int64_t best = greedy.active_slots;
  std::vector<Time> best_counts;

  LpBnbResult result;
  std::vector<BranchNode> stack;
  {
    BranchNode root;
    root.lo.assign(m, 0);
    root.hi.resize(m);
    for (int i = 0; i < m; ++i) root.hi[i] = forest.node(i).length();
    stack.push_back(std::move(root));
  }

  while (!stack.empty()) {
    if (result.lp_solves >= options.node_budget) return std::nullopt;
    BranchNode node = std::move(stack.back());
    stack.pop_back();

    for (int i = 0; i < m; ++i) {
      lp.model.set_variable_bounds(lp.x_var[i],
                                   static_cast<double>(node.lo[i]),
                                   static_cast<double>(node.hi[i]));
    }
    lp::Solution sol = lp::solve_auto(lp.model);
    ++result.lp_solves;
    if (sol.status != lp::Status::kOptimal) continue;  // infeasible branch
    const std::int64_t lower =
        static_cast<std::int64_t>(std::ceil(sol.objective - kIntTol));
    if (lower >= best) continue;  // bound prune

    // Most fractional region.
    int branch_var = -1;
    double frac_dist = kIntTol;
    for (int i = 0; i < m; ++i) {
      const double v = sol.x[lp.x_var[i]];
      const double dist = std::abs(v - std::round(v));
      if (dist > frac_dist) {
        frac_dist = dist;
        branch_var = i;
      }
    }
    if (branch_var < 0) {
      // Integral point: a genuine solution (verified via flow below).
      std::vector<Time> counts(m);
      std::int64_t total = 0;
      for (int i = 0; i < m; ++i) {
        counts[i] = static_cast<Time>(std::llround(sol.x[lp.x_var[i]]));
        total += counts[i];
      }
      if (total < best && feasible_with_counts(forest, counts)) {
        best = total;
        best_counts = std::move(counts);
      }
      continue;
    }

    const double v = sol.x[lp.x_var[branch_var]];
    BranchNode down = node, up = node;
    down.hi[branch_var] =
        std::min<Time>(down.hi[branch_var],
                       static_cast<Time>(std::floor(v)));
    up.lo[branch_var] = std::max<Time>(
        up.lo[branch_var], static_cast<Time>(std::ceil(v)));
    // Explore the round-up side first: it tends to reach feasible
    // integral points quickly and tightens `best` early.
    stack.push_back(std::move(down));
    stack.push_back(std::move(up));
  }

  result.optimum = best;
  if (best_counts.empty()) {
    // The greedy incumbent was already optimal.
    result.schedule = greedy.schedule;
  } else {
    auto sched = schedule_with_counts(forest, best_counts);
    NAT_CHECK(sched.has_value());
    result.schedule = std::move(*sched);
  }
  validate_schedule(instance, result.schedule);
  NAT_CHECK(result.schedule.active_slots() <= result.optimum);
  return result;
}

}  // namespace nat::at::baselines
