// Stateful session protocol over the incremental delta re-solve engine
// (activetime/session.hpp), in the JSONL style of the batch service.
//
// Where solve_batch treats every line as an independent cell, a
// SessionManager threads lines through named long-lived SolverSessions:
//
//   {"op":"open",  "session":"a", "g":2, "jobs":[[r,d,p],...]}
//   {"op":"delta", "session":"a", "kind":"add",    "job":[r,d,p]}
//   {"op":"delta", "session":"a", "kind":"remove", "index":3}
//   {"op":"delta", "session":"a", "kind":"extend", "index":3,
//                                 "window":[lo,hi]}
//   {"op":"delta", "session":"a", "kind":"shrink", "index":3,
//                                 "window":[lo,hi]}
//   {"op":"delta", "session":"a", "kind":"retime", "index":3,
//                                 "interval":[p_lo,p_hi]}
//   {"op":"close", "session":"a"}
//
// "add" jobs (and "open" rows) may carry 5 elements
// [r, d, p, p_lo, p_hi] to attach a processing-time uncertainty box;
// "retime" widens/narrows an existing box (docs/ROBUST.md).
//
// Each line is processed inside its own fault boundary, mirroring the
// batch cells: a malformed line, an unknown session, or a rejected
// delta becomes a structured error record and the stream continues. A
// rejected delta additionally leaves its session on the pre-delta
// instance (SolverSession::apply rolls back), so one bad edit never
// poisons the session it targeted. Records echo the solve numbers plus
// the session's incremental counters (groups re-solved vs reused, LP
// warm-start ladder) so drivers can watch the engine work.
//
// Schema details: docs/INCREMENTAL.md. Counters: at.service.session_*.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "activetime/session.hpp"
#include "obs/report.hpp"
#include "service/batch.hpp"

namespace nat::service {

/// One processed protocol line (the session analogue of CellResult).
struct SessionOpResult {
  int index = -1;              // line position in the stream
  std::string session;         // session name ("" if the line had none)
  std::string op;              // "open", "delta", "close" ("" on parse fail)
  CellStatus status = CellStatus::kError;
  std::string backend;         // pipeline tag of the solve ("nested" |
                               // "general" | "greedy"; "" when no solve
                               // ran, e.g. close ops and failures)
  std::string failure_class;   // taxonomy key ("" on success)
  std::string error;           // full diagnostic ("" on success)
  int jobs = -1;               // session job count after the op
  std::int64_t active_slots = -1;
  double lp_value = -1.0;
  // Incremental-engine deltas for this op (session stats diff).
  std::int64_t groups_resolved = -1;
  std::int64_t groups_reused = -1;
  std::int64_t lp_warm_hits = -1;
  std::int64_t lp_warm_repairs = -1;
  std::int64_t lp_cold_fallbacks = -1;
  std::int64_t wall_ns = 0;
};

/// Parses the "kind"/"job"/"index"/"window" fields of a delta line.
/// Throws util::CheckError on malformed input. Exposed for the delta
/// fuzz family, which replays protocol lines through a session.
at::Delta parse_delta(const obs::Json& line);

/// One processed-line record as a Json object (the daemon layers its
/// envelope fields on top before framing).
obs::Json session_op_record(const SessionOpResult& r);

/// One compact JSONL record for a processed line.
std::string session_op_to_json(const SessionOpResult& r);

/// Owns the named sessions of one protocol stream. Lines are processed
/// strictly in order (sessions are stateful, so there is no pool here —
/// parallelism across *sessions* belongs to the caller).
class SessionManager {
 public:
  explicit SessionManager(at::SessionOptions options = {});
  ~SessionManager();

  /// Processes one JSONL line inside a fault boundary. Never throws.
  /// When `cancel` is non-null it is polled by the targeted session's
  /// solve for the duration of this op (the daemon passes per-request
  /// deadline tokens); a cancellation becomes a "timeout"/"cancelled"
  /// record and, for deltas, rolls the session back.
  SessionOpResult process_line(const std::string& line, int index,
                               const util::CancelToken* cancel = nullptr);

  int open_sessions() const { return static_cast<int>(sessions_.size()); }

 private:
  at::SessionOptions options_;
  std::map<std::string, std::unique_ptr<at::SolverSession>> sessions_;
};

}  // namespace nat::service
