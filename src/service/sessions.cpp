#include "service/sessions.hpp"

#include <utility>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "service/jsonl.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace nat::service {

namespace {

at::Interval parse_window(const obs::Json& line) {
  const obs::Json* w = line.find("window");
  NAT_CHECK_MSG(w != nullptr && w->is_array() && w->size() == 2 &&
                    w->at(0).is_number() && w->at(1).is_number(),
                "delta line: \"window\" must be [lo, hi]");
  return at::Interval{w->at(0).as_int(), w->at(1).as_int()};
}

int parse_index(const obs::Json& line) {
  const obs::Json* idx = line.find("index");
  NAT_CHECK_MSG(idx != nullptr && idx->is_number(),
                "delta line: missing numeric \"index\"");
  return static_cast<int>(idx->as_int());
}

/// Clears a per-op cancel token off the session on every exit path, so
/// a long-lived session never keeps a pointer to a token that dies
/// with the request.
struct CancelScope {
  at::SolverSession& session;
  ~CancelScope() { session.set_cancel(nullptr); }
};

}  // namespace

at::Delta parse_delta(const obs::Json& line) {
  const obs::Json* kind = line.find("kind");
  NAT_CHECK_MSG(kind != nullptr && kind->type() == obs::Json::Type::kString,
                "delta line: missing string \"kind\"");
  const std::string& k = kind->as_string();
  if (k == "add") {
    const obs::Json* j = line.find("job");
    bool ok = j != nullptr && j->is_array() && (j->size() == 3 ||
                                                j->size() == 5);
    for (std::size_t f = 0; ok && f < j->size(); ++f) {
      ok = j->at(f).is_number();
    }
    NAT_CHECK_MSG(ok,
                  "delta line: \"job\" must be [release, deadline, "
                  "processing] or [release, deadline, processing, p_lo, "
                  "p_hi]");
    at::Job job;
    job.release = j->at(0).as_int();
    job.deadline = j->at(1).as_int();
    job.processing = j->at(2).as_int();
    if (j->size() == 5) {
      job.processing_lo = j->at(3).as_int();
      job.processing_hi = j->at(4).as_int();
    }
    return at::AddJob{job};
  }
  if (k == "remove") return at::RemoveJob{parse_index(line)};
  if (k == "extend") return at::ExtendWindow{parse_index(line),
                                             parse_window(line)};
  if (k == "shrink") return at::ShrinkWindow{parse_index(line),
                                             parse_window(line)};
  if (k == "retime") {
    // Widen or narrow a job's [p_lo, p_hi] uncertainty box
    // (docs/ROBUST.md): {"kind":"retime","index":i,"interval":[lo,hi]}.
    const obs::Json* iv = line.find("interval");
    NAT_CHECK_MSG(iv != nullptr && iv->is_array() && iv->size() == 2 &&
                      iv->at(0).is_number() && iv->at(1).is_number(),
                  "delta line: \"interval\" must be [p_lo, p_hi]");
    return at::Retime{parse_index(line), iv->at(0).as_int(),
                      iv->at(1).as_int()};
  }
  NAT_CHECK_MSG(false, "delta line: unknown kind \"" << k << "\"");
}

obs::Json session_op_record(const SessionOpResult& r) {
  obs::Json j = obs::Json::object();
  j["index"] = static_cast<std::int64_t>(r.index);
  if (!r.session.empty()) j["session"] = r.session;
  if (!r.op.empty()) j["op"] = r.op;
  j["status"] = to_string(r.status);
  if (!r.backend.empty()) j["backend"] = r.backend;
  if (!r.failure_class.empty()) j["failure_class"] = r.failure_class;
  if (!r.error.empty()) j["error"] = r.error;
  if (r.jobs >= 0) j["jobs"] = static_cast<std::int64_t>(r.jobs);
  if (r.active_slots >= 0) j["active_slots"] = r.active_slots;
  if (r.lp_value >= 0.0) j["lp_value"] = r.lp_value;
  if (r.groups_resolved >= 0) {
    j["groups_resolved"] = r.groups_resolved;
    j["groups_reused"] = r.groups_reused;
    j["lp_warm_hits"] = r.lp_warm_hits;
    j["lp_warm_repairs"] = r.lp_warm_repairs;
    j["lp_cold_fallbacks"] = r.lp_cold_fallbacks;
  }
  j["wall_ms"] = static_cast<double>(r.wall_ns) / 1e6;
  return j;
}

std::string session_op_to_json(const SessionOpResult& r) {
  return session_op_record(r).dump();
}

SessionManager::SessionManager(at::SessionOptions options)
    : options_(options) {}

SessionManager::~SessionManager() = default;

SessionOpResult SessionManager::process_line(const std::string& line,
                                             int index,
                                             const util::CancelToken* cancel) {
  const util::Stopwatch sw;
  obs::Span span("service.session_op");
  static obs::Counter& c_ops = obs::counter("at.service.session_ops");
  static obs::Counter& c_errors = obs::counter("at.service.session_errors");
  c_ops.add(1);

  SessionOpResult r;
  r.index = index;

  const auto fail = [&](std::string failure_class,
                        std::string error) -> SessionOpResult& {
    r.status = CellStatus::kError;
    r.failure_class = std::move(failure_class);
    r.error = std::move(error);
    r.wall_ns = sw.nanos();
    c_errors.add(1);
    return r;
  };

  obs::Json parsed;
  try {
    parsed = obs::Json::parse(line);
    NAT_CHECK_MSG(parsed.is_object(), "session line is not a JSON object");
    const obs::Json* session = parsed.find("session");
    NAT_CHECK_MSG(session != nullptr &&
                      session->type() == obs::Json::Type::kString &&
                      !session->as_string().empty(),
                  "session line: missing string \"session\"");
    r.session = session->as_string();
    const obs::Json* op = parsed.find("op");
    NAT_CHECK_MSG(op != nullptr && op->type() == obs::Json::Type::kString,
                  "session line: missing string \"op\"");
    r.op = op->as_string();
  } catch (const std::exception& e) {
    return fail("input:parse", e.what());
  }

  try {
    if (r.op == "open") {
      if (sessions_.count(r.session) != 0) {
        return fail("session:exists",
                    "session \"" + r.session + "\" is already open");
      }
      at::Instance instance;
      try {
        instance = parse_json_instance(line);
      } catch (const std::exception& e) {
        return fail("input:parse", e.what());
      }
      try {
        instance.validate();
      } catch (const std::exception& e) {
        return fail("input:validate", e.what());
      }
      at::SessionOptions op_options = options_;
      op_options.cancel = cancel;
      auto session =
          std::make_unique<at::SolverSession>(std::move(instance), op_options);
      const at::SessionResult& res = session->solve();
      session->set_cancel(nullptr);
      const at::SessionStats& stats = session->stats();
      r.jobs = session->num_jobs();
      r.backend = at::to_string(res.backend);
      r.active_slots = res.active_slots;
      r.lp_value = res.lp_value;
      r.groups_resolved = stats.groups_resolved;
      r.groups_reused = stats.groups_reused;
      r.lp_warm_hits = stats.lp_warm_hits;
      r.lp_warm_repairs = stats.lp_warm_repairs;
      r.lp_cold_fallbacks = stats.lp_cold_fallbacks;
      sessions_.emplace(r.session, std::move(session));
      static obs::Counter& c_opens = obs::counter("at.service.session_opens");
      c_opens.add(1);
    } else if (r.op == "delta") {
      const auto it = sessions_.find(r.session);
      if (it == sessions_.end()) {
        return fail("session:unknown",
                    "session \"" + r.session + "\" is not open");
      }
      at::SolverSession& session = *it->second;
      at::Delta delta;
      try {
        delta = parse_delta(parsed);
      } catch (const std::exception& e) {
        return fail("input:parse", e.what());
      }
      session.set_cancel(cancel);
      const CancelScope cancel_scope{session};
      const at::SessionStats before = session.stats();
      const at::SessionResult& res = session.apply(delta);
      const at::SessionStats& after = session.stats();
      r.jobs = session.num_jobs();
      r.backend = at::to_string(res.backend);
      r.active_slots = res.active_slots;
      r.lp_value = res.lp_value;
      r.groups_resolved = after.groups_resolved - before.groups_resolved;
      r.groups_reused = after.groups_reused - before.groups_reused;
      r.lp_warm_hits = after.lp_warm_hits - before.lp_warm_hits;
      r.lp_warm_repairs = after.lp_warm_repairs - before.lp_warm_repairs;
      r.lp_cold_fallbacks =
          after.lp_cold_fallbacks - before.lp_cold_fallbacks;
      static obs::Counter& c_deltas = obs::counter("at.service.session_deltas");
      c_deltas.add(1);
    } else if (r.op == "close") {
      const auto it = sessions_.find(r.session);
      if (it == sessions_.end()) {
        return fail("session:unknown",
                    "session \"" + r.session + "\" is not open");
      }
      r.jobs = it->second->num_jobs();
      sessions_.erase(it);
    } else {
      return fail("input:op", "session line: unknown op \"" + r.op + "\"");
    }
  } catch (const util::CancelledError& e) {
    SessionOpResult& failed = fail(classify_cancelled(e.what()), e.what());
    failed.status = CellStatus::kTimeout;
    return failed;
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    return fail(classify_solver_failure(what), what);
  } catch (const std::exception& e) {
    return fail("error:exception", e.what());
  }

  r.status = CellStatus::kSolved;
  r.wall_ns = sw.nanos();
  return r;
}

}  // namespace nat::service
