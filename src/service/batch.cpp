#include "service/batch.hpp"

#include <atomic>
#include <mutex>
#include <utility>

#include "activetime/robust.hpp"
#include "baselines/exact.hpp"
#include "baselines/greedy.hpp"
#include "io/serialize.hpp"
#include "obs/counters.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "service/jsonl.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace nat::service {

const char* to_string(CellStatus status) {
  switch (status) {
    case CellStatus::kSolved: return "solved";
    case CellStatus::kError: return "error";
    case CellStatus::kTimeout: return "timeout";
    case CellStatus::kSkipped: return "skipped";
  }
  return "?";
}

at::Instance parse_json_instance(const std::string& text) {
  const obs::Json j = obs::Json::parse(text);
  NAT_CHECK_MSG(j.is_object(), "cell payload is not a JSON object");
  const obs::Json* g = j.find("g");
  NAT_CHECK_MSG(g != nullptr && g->is_number(),
                "cell payload: missing numeric \"g\"");
  const obs::Json* jobs = j.find("jobs");
  NAT_CHECK_MSG(jobs != nullptr && jobs->is_array(),
                "cell payload: missing \"jobs\" array");
  // Same cap as io::read_instance: a hostile payload must not drive
  // allocation (the JSON is already parsed, so this bounds Job storage).
  NAT_CHECK_MSG(jobs->size() <= 10'000'000,
                "cell payload: job count " << jobs->size()
                                           << " exceeds the cap");
  at::Instance instance;
  instance.g = g->as_int();
  instance.jobs.reserve(jobs->size());
  for (std::size_t k = 0; k < jobs->size(); ++k) {
    const obs::Json& row = jobs->at(k);
    bool ok = row.is_array() && (row.size() == 3 || row.size() == 5);
    for (std::size_t f = 0; ok && f < row.size(); ++f) {
      ok = row.at(f).is_number();
    }
    NAT_CHECK_MSG(ok, "cell payload: job "
                          << k
                          << " must be [release, deadline, processing] or "
                             "[release, deadline, processing, p_lo, p_hi]");
    at::Job job;
    job.release = row.at(0).as_int();
    job.deadline = row.at(1).as_int();
    job.processing = row.at(2).as_int();
    if (row.size() == 5) {
      job.processing_lo = row.at(3).as_int();
      job.processing_hi = row.at(4).as_int();
    }
    instance.jobs.push_back(job);
  }
  return instance;
}

obs::Json cell_record(const CellResult& cell) {
  obs::Json j = obs::Json::object();
  j["index"] = static_cast<std::int64_t>(cell.index);
  j["id"] = cell.id;
  j["status"] = to_string(cell.status);
  if (!cell.solver.empty()) j["solver"] = cell.solver;
  if (!cell.backend.empty()) j["backend"] = cell.backend;
  if (!cell.failure_class.empty()) j["failure_class"] = cell.failure_class;
  if (!cell.error.empty()) j["error"] = cell.error;
  if (cell.jobs >= 0) j["jobs"] = static_cast<std::int64_t>(cell.jobs);
  if (cell.active_slots >= 0) j["active_slots"] = cell.active_slots;
  if (cell.lp_value >= 0.0) j["lp_value"] = cell.lp_value;
  if (cell.robust_hi >= 0) {
    j["robust_lo"] = cell.robust_lo;
    j["robust_hi"] = cell.robust_hi;
  }
  j["wall_ms"] = static_cast<double>(cell.wall_ns) / 1e6;
  return j;
}

std::string cell_to_json(const CellResult& cell) {
  return cell_record(cell).dump();
}

namespace {

/// Fills the failure fields of `r` and stamps the wall clock.
CellResult& fail(CellResult& r, CellStatus status, std::string failure_class,
                 std::string error, const util::Stopwatch& sw) {
  r.status = status;
  r.failure_class = std::move(failure_class);
  r.error = std::move(error);
  r.wall_ns = sw.nanos();
  return r;
}

/// solve_batch's per-cell wrapper: the keep_going stop check in front
/// of the shared fault boundary. Never throws.
CellResult run_cell(const BatchItem& item, int index,
                    const BatchOptions& options,
                    const std::atomic<bool>* stop) {
  if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
    const util::Stopwatch sw;
    CellResult r;
    r.index = index;
    r.id = item.id.empty() ? "cell-" + std::to_string(index) : item.id;
    return fail(r, CellStatus::kSkipped, "skipped",
                "skipped: an earlier cell failed with keep_going off", sw);
  }
  return solve_cell(item, index, options);
}

}  // namespace

CellResult solve_cell(const BatchItem& item, int index,
                      const BatchOptions& options,
                      const util::CancelToken* cancel) {
  const util::Stopwatch sw;
  obs::Span span("service.cell");
  CellResult r;
  r.index = index;
  r.id = item.id.empty() ? "cell-" + std::to_string(index) : item.id;

  util::CancelToken own_token;
  if (cancel == nullptr && options.timeout_ms > 0) {
    own_token.set_timeout_ms(options.timeout_ms);
    cancel = &own_token;
  }

  at::Instance instance;
  try {
    instance = item.format == BatchItem::Format::kJson
                   ? parse_json_instance(item.text)
                   : io::instance_from_string(item.text);
  } catch (const std::exception& e) {
    return fail(r, CellStatus::kError, "input:parse", e.what(), sw);
  }
  try {
    instance.validate();
  } catch (const std::exception& e) {
    return fail(r, CellStatus::kError, "input:validate", e.what(), sw);
  }
  r.jobs = instance.num_jobs();

  const std::string& solver = options.solver;
  r.solver = solver;
  if (solver == "auto") {
    // Provisional tag so failure records name the dispatched path; a
    // successful solve overwrites it with the backend that actually ran.
    r.solver = instance.is_laminar() ? "nested" : "general";
  }
  if ((solver == "nested" || solver == "exact") && !instance.is_laminar()) {
    return fail(r, CellStatus::kError, "input:laminar",
                "the " + solver + " solver requires nested (laminar) windows",
                sw);
  }
  if (options.robust && solver != "auto") {
    return fail(r, CellStatus::kError, "input:solver",
                "robust mode requires solver \"auto\" (got \"" + solver +
                    "\")",
                sw);
  }

  try {
    if (options.robust) {
      at::RobustSolverOptions robust;
      robust.base.nested = options.nested;
      robust.base.general = options.general;
      robust.cancel = cancel;
      const at::RobustSolveResult res = at::solve_robust(instance, robust);
      r.solver = to_string(res.nominal.backend);
      r.backend = to_string(res.nominal.backend);
      r.active_slots = res.nominal.active_slots;
      r.lp_value = res.nominal.lp_value;
      r.robust_lo = res.robust_lo;
      r.robust_hi = res.robust_hi;
    } else if (solver == "auto") {
      at::ActiveTimeOptions dispatch;
      dispatch.nested = options.nested;
      dispatch.general = options.general;
      dispatch.cancel = cancel;
      const at::ActiveTimeResult res = at::solve_active_time(instance,
                                                             dispatch);
      r.solver = to_string(res.backend);  // the path auto resolved to
      r.backend = to_string(res.backend);
      r.active_slots = res.active_slots;
      r.lp_value = res.lp_value;
    } else if (solver == "nested") {
      at::NestedSolverOptions nested = options.nested;
      nested.cancel = cancel;
      const at::NestedSolveResult res = at::solve_nested(instance, nested);
      r.backend = "nested";
      r.active_slots = res.active_slots;
      r.lp_value = res.lp_value;
    } else if (solver == "general") {
      at::GeneralSolverOptions general = options.general;
      general.cancel = cancel;
      const at::GeneralSolveResult res = at::solve_general(instance, general);
      r.backend = res.lp_failed ? "greedy" : "general";
      r.active_slots = res.active_slots;
      r.lp_value = res.lp_failed ? -1.0 : res.lp_value;
    } else if (solver == "greedy") {
      const auto res = at::baselines::greedy_minimal_feasible(
          instance, at::baselines::DeactivationOrder::kRightToLeft, 0, cancel);
      r.backend = "greedy";
      r.active_slots = res.active_slots;
    } else if (solver == "exact") {
      at::baselines::ExactOptions exact;
      exact.node_budget = options.exact_node_budget;
      exact.cancel = cancel;
      const auto res = at::baselines::exact_opt_laminar(instance, exact);
      if (!res.has_value()) {
        return fail(r, CellStatus::kError, "exact:node_budget",
                    "branch-and-bound node budget exhausted", sw);
      }
      r.backend = "exact";
      r.active_slots = res->optimum;
    } else {
      return fail(r, CellStatus::kError, "input:solver",
                  "unknown solver \"" + solver + "\"", sw);
    }
  } catch (const util::CancelledError& e) {
    return fail(r, CellStatus::kTimeout, classify_cancelled(e.what()),
                e.what(), sw);
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    return fail(r, CellStatus::kError, classify_solver_failure(what), what,
                sw);
  } catch (const std::exception& e) {
    return fail(r, CellStatus::kError, "error:exception", e.what(), sw);
  }

  r.status = CellStatus::kSolved;
  r.wall_ns = sw.nanos();
  return r;
}

BatchReport solve_batch(const std::vector<BatchItem>& items,
                        const BatchOptions& options,
                        const CellCallback& on_cell) {
  NAT_CHECK_MSG(options.solver == "auto" || options.solver == "nested" ||
                    options.solver == "general" || options.solver == "greedy" ||
                    options.solver == "exact",
                "unknown batch solver \"" << options.solver << "\"");
  obs::Span span("service.batch");

  BatchReport report;
  report.cells.resize(items.size());
  if (items.empty()) return report;

  std::atomic<bool> stop{false};
  const std::atomic<bool>* stop_ptr = options.keep_going ? nullptr : &stop;
  std::mutex emit_mu;  // serializes the streaming callback

  util::ThreadPool pool(options.threads);
  util::parallel_for(
      pool, 0, items.size(),
      [&](std::size_t i) {
        CellResult cell =
            run_cell(items[i], static_cast<int>(i), options, stop_ptr);
        if (!options.keep_going && cell.status != CellStatus::kSolved &&
            cell.status != CellStatus::kSkipped) {
          stop.store(true, std::memory_order_relaxed);
        }
        if (on_cell) {
          std::lock_guard lk(emit_mu);
          on_cell(cell);
        }
        report.cells[i] = std::move(cell);
      },
      /*grain=*/1);

  for (const CellResult& cell : report.cells) {
    switch (cell.status) {
      case CellStatus::kSolved: ++report.solved; break;
      case CellStatus::kError: ++report.errors; break;
      case CellStatus::kTimeout: ++report.timeouts; break;
      case CellStatus::kSkipped: ++report.skipped; break;
    }
  }

  static obs::Counter& c_batches = obs::counter("at.service.batches");
  static obs::Counter& c_cells = obs::counter("at.service.cells");
  static obs::Counter& c_solved = obs::counter("at.service.solved");
  static obs::Counter& c_errors = obs::counter("at.service.errors");
  static obs::Counter& c_timeouts = obs::counter("at.service.timeouts");
  static obs::Counter& c_skipped = obs::counter("at.service.skipped");
  c_batches.add(1);
  c_cells.add(static_cast<std::int64_t>(items.size()));
  c_solved.add(report.solved);
  c_errors.add(report.errors);
  c_timeouts.add(report.timeouts);
  c_skipped.add(report.skipped);
  return report;
}

}  // namespace nat::service
