#include "service/jsonl.hpp"

#include <istream>
#include <ostream>

#include "verify/verify.hpp"

namespace nat::service {

bool is_jsonl_record(const std::string& line) {
  const auto first = line.find_first_not_of(" \t\r");
  return first != std::string::npos && line[first] != '#';
}

bool read_jsonl_record(std::istream& in, std::string* line) {
  while (std::getline(in, *line)) {
    if (!is_jsonl_record(*line)) continue;
    if (!line->empty() && line->back() == '\r') line->pop_back();
    return true;
  }
  return false;
}

void write_jsonl_record(std::ostream& out, const obs::Json& record) {
  write_jsonl_record(out, record.dump());
}

void write_jsonl_record(std::ostream& out, const std::string& dumped) {
  out << dumped << '\n' << std::flush;
}

std::string classify_solver_failure(const std::string& what) {
  return what.find("instance is infeasible") != std::string::npos
             ? "infeasible"
             : verify::classify_failure(what);
}

std::string classify_cancelled(const std::string& what) {
  return what.find("deadline") != std::string::npos ? "timeout" : "cancelled";
}

}  // namespace nat::service
