// Fault-isolated batch solving: many (instance, solver) cells fanned
// out across a thread pool, where one bad cell produces a structured
// error record instead of poisoning its neighbors or the process.
//
// The unit of work is a *cell*: one instance payload plus the solver
// choice of the batch. Each cell is parsed, validated, solved, and
// classified entirely inside its own try/catch on a pool worker:
//
//   * a malformed payload     -> status "error",   class "input:parse"
//   * an invalid instance     -> status "error",   class "input:validate"
//   * an infeasible instance  -> status "error",   class "check:<file>:<line>"
//   * a verify-layer failure  -> status "error",   class "verify:<stage>"
//   * a per-cell deadline hit -> status "timeout", class "timeout"
//   * everything else         -> status "solved" with the solve numbers
//
// Failure classes follow the docs/CORRECTNESS.md taxonomy via
// verify::classify_failure, so a batch record points at the same key a
// fuzzer repro would. Cancellation is cooperative (util/cancel.hpp):
// each cell gets its own CancelToken armed with options.timeout_ms and
// threaded through the solver's pivot/oracle/B&B loops, so a hung cell
// degrades to a "timeout" record while the rest of the batch proceeds.
//
// Schema, cancellation semantics, and the pool's concurrency contract
// are documented in docs/SERVICE.md. Counters: at.service.*.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "activetime/instance.hpp"
#include "activetime/solver.hpp"
#include "obs/report.hpp"

namespace nat::util {
class CancelToken;
}  // namespace nat::util

namespace nat::service {

enum class CellStatus { kSolved, kError, kTimeout, kSkipped };

const char* to_string(CellStatus status);

/// One instance payload. The payload stays *unparsed* text on purpose:
/// parsing happens inside the cell's fault boundary, so a hostile
/// payload fails that cell and nothing else.
struct BatchItem {
  enum class Format {
    kJson,    // one JSON object: {"id": ..., "g": g, "jobs": [[r,d,p],...]}
    kNative,  // the "activetime v1" text format of io/serialize.hpp
  };
  std::string id;    // echoed in the record; defaults to "cell-<index>"
  std::string text;  // the payload
  Format format = Format::kJson;
};
// JSON job rows may also be 5-element [r, d, p, p_lo, p_hi] to carry a
// processing-time uncertainty interval (docs/ROBUST.md); native
// payloads use the "activetime v2" format for the same.

struct CellResult {
  int index = -1;              // position in the batch
  std::string id;
  CellStatus status = CellStatus::kError;
  std::string solver;          // solver that ran ("" if never reached)
  std::string backend;         // pipeline that produced the numbers:
                               // "nested" | "general" | "greedy" |
                               // "exact" ("" if the solve never ran)
  std::string failure_class;   // taxonomy key ("" on success)
  std::string error;           // full diagnostic ("" on success)
  std::int64_t active_slots = -1;  // cost; -1 when not solved
  double lp_value = -1.0;          // LP lower bound; < 0 when unused
  int jobs = -1;                   // parsed job count; -1 if parse failed
  std::int64_t wall_ns = 0;        // cell wall time (parse + solve)
  // Robust-mode certificate (docs/ROBUST.md); robust_hi < 0 means the
  // robust solve did not run (emission is keyed on robust_hi >= 0).
  double robust_lo = -1.0;         // best-case LP lower bound LP(p_lo)
  std::int64_t robust_hi = -1;     // worst-case upper bound
};

struct BatchOptions {
  // "auto" dispatches on laminarity (at::solve_active_time): nested
  // 9/5 pipeline for laminar instances, the general LP-rounding
  // 2-approx otherwise (greedy when its LP fails). "nested", "general",
  // "greedy", "exact" force that solver (nested/exact reject
  // non-laminar instances with an input:laminar error record).
  std::string solver = "auto";
  // Per-cell deadline in milliseconds; 0 disables. A cell that exceeds
  // it yields a kTimeout record.
  std::int64_t timeout_ms = 0;
  // Worker threads for the batch pool; 0 = hardware concurrency.
  std::size_t threads = 0;
  // When false, the first non-solved cell marks every cell that has
  // not started yet as kSkipped (cells already running finish).
  bool keep_going = true;
  // Base options for the nested solver (per-cell cancel is overlaid).
  at::NestedSolverOptions nested;
  // Base options for the general 2-approx solver (same overlay).
  at::GeneralSolverOptions general;
  // Node budget for the exact solver.
  std::int64_t exact_node_budget = 20'000'000;
  // Robust interval-time mode (docs/ROBUST.md): every cell routes
  // through at::solve_robust, records gain robust_lo / robust_hi, and
  // a worst-case-infeasible box fails its cell with the usual
  // infeasibility class. Requires solver == "auto" (solve_robust owns
  // the per-corner dispatch); point cells take the degenerate path,
  // which is bit-identical to the non-robust solve.
  bool robust = false;
};

struct BatchReport {
  std::vector<CellResult> cells;  // in batch (index) order
  int solved = 0;
  int errors = 0;
  int timeouts = 0;
  int skipped = 0;
};

/// Called once per finished cell, in *completion* order, serialized
/// (never concurrently). Used by the CLI to stream JSONL records.
using CellCallback = std::function<void(const CellResult&)>;

/// Solves every cell on a private pool of options.threads workers and
/// returns the records in batch order. Never throws on a bad cell —
/// cell failures come back as records; only batch-level misuse (e.g. an
/// unknown options.solver) throws.
BatchReport solve_batch(const std::vector<BatchItem>& items,
                        const BatchOptions& options = {},
                        const CellCallback& on_cell = {});

/// Runs ONE cell inside its fault boundary and never throws: the
/// parse/validate/solve/classify pipeline of solve_batch, exposed so
/// stateless daemon requests ride the exact same code path as batch
/// cells. When `cancel` is non-null it is polled instead of a
/// cell-private deadline token (options.timeout_ms is ignored) — the
/// daemon arms its tokens at enqueue time so queue wait counts against
/// the request deadline.
CellResult solve_cell(const BatchItem& item, int index,
                      const BatchOptions& options,
                      const util::CancelToken* cancel = nullptr);

/// Parses one JSON cell payload:
///   {"id": "...", "g": 2, "jobs": [[release, deadline, processing], ...]}
/// ("id" is optional — solve_batch takes the id from BatchItem). Job
/// rows may also be 5-element [r, d, p, p_lo, p_hi] interval jobs.
/// Throws util::CheckError on malformed input.
at::Instance parse_json_instance(const std::string& text);

/// One cell record as a Json object (docs/SERVICE.md schema). The
/// daemon layers its envelope fields (tenant, queue/solve timings) on
/// top of this before framing.
obs::Json cell_record(const CellResult& cell);

/// One compact JSONL record for a cell (docs/SERVICE.md schema).
std::string cell_to_json(const CellResult& cell);

}  // namespace nat::service
