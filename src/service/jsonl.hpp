// Shared JSONL plumbing for the protocol front-ends (batch cells,
// session streams, the solver daemon).
//
// Every JSONL surface in this repo follows the same framing rules:
// one record per line, blank lines and "#" comments are skipped on
// input so hand-edited scripts stay readable, a trailing CR is
// tolerated (files written on Windows), and output records are
// compact-dumped obs::Json objects (whose dump() does the string
// escaping) followed by '\n' and a flush so a consumer on the other
// end of a pipe or socket sees each record as soon as it is terminal.
//
// The failure-classification helpers here are the other half of the
// shared contract: batch.cpp, sessions.cpp, and the daemon all map a
// solver CheckError to the docs/CORRECTNESS.md taxonomy and a
// CancelledError to "timeout" vs "cancelled" the same way, so a record
// class means the same thing no matter which protocol produced it.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/report.hpp"

namespace nat::service {

/// True when `line` carries a record: not blank (spaces/tabs/CR only)
/// and not a "#" comment.
bool is_jsonl_record(const std::string& line);

/// Reads the next record line into *line, skipping blanks/comments and
/// stripping one trailing CR. Returns false at end of stream.
bool read_jsonl_record(std::istream& in, std::string* line);

/// Writes one framed record: compact dump + '\n' + flush.
void write_jsonl_record(std::ostream& out, const obs::Json& record);

/// Same framing for a record that is already serialized.
void write_jsonl_record(std::ostream& out, const std::string& dumped);

/// Maps a util::CheckError message to its record class: "infeasible"
/// for the solver's infeasibility check, otherwise the
/// docs/CORRECTNESS.md taxonomy key via verify::classify_failure.
std::string classify_solver_failure(const std::string& what);

/// Maps a util::CancelledError message to its record class: "timeout"
/// when the token's deadline fired, "cancelled" for an explicit
/// cancel() (e.g. daemon shutdown).
std::string classify_cancelled(const std::string& what);

}  // namespace nat::service
