// Schedule representation and validation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "activetime/instance.hpp"

namespace nat::at {

/// A concrete schedule: for each job, the sorted distinct slot times it
/// runs at. A slot is active iff some job runs at it.
struct Schedule {
  std::vector<std::vector<Time>> assignment;  // one entry per job

  /// Number of distinct active slot times.
  std::int64_t active_slots() const;
  /// Sorted distinct active slot times.
  std::vector<Time> active_times() const;
};

/// Checks that `schedule` is feasible for `instance`:
/// every job gets exactly p_j distinct slots inside its window, and no
/// slot carries more than g jobs. Returns false and fills `why` (if
/// non-null) on the first violation found.
bool is_valid_schedule(const Instance& instance, const Schedule& schedule,
                       std::string* why = nullptr);

/// Throwing variant of is_valid_schedule (util::CheckError).
void validate_schedule(const Instance& instance, const Schedule& schedule);

}  // namespace nat::at
