// End-to-end 9/5-approximation for nested active-time scheduling
// (Theorem 4.15): canonicalize → strengthened LP → Lemma 3.1 transform
// → Algorithm 1 rounding → flow-certified schedule extraction.
#pragma once

#include <cstdint>
#include <vector>

#include "activetime/general.hpp"
#include "activetime/instance.hpp"
#include "activetime/lp_relaxation.hpp"
#include "activetime/schedule.hpp"
#include "activetime/tree.hpp"
#include "util/cancel.hpp"
#include "verify/verify.hpp"

namespace nat::at {

struct NestedSolverOptions {
  StrongLpOptions lp;          // ceiling-constraint / aggregation flags
  // Exact-arithmetic self-check level (see verify/verify.hpp).
  // kDefault resolves via NAT_VERIFY, else full in Debug builds and off
  // in Release — the Release hot path pays nothing.
  verify::VerifyLevel verify_level = verify::VerifyLevel::kDefault;
  // Declared double-path rounding radius for the validators.
  double verify_radius = verify::kDefaultRadius;
  // Ablation: skip the Lemma 3.1 transform and Algorithm 1, rounding
  // every region up instead (valid but without the 9/5 guarantee).
  bool naive_rounding = false;
  // Engineering addition (not in the paper): after rounding, close
  // opened region slots while the flow oracle stays feasible. Only ever
  // removes slots, so the 9/5 guarantee is preserved; off by default so
  // the default pipeline is the paper's algorithm verbatim.
  bool trim_rounded = false;
  // LP backend: the bounded-variable simplex handles x(i) <= L(i)
  // bounds natively (no bound rows) and is usually faster on large
  // instances; both backends produce the same optimum.
  bool bounded_lp_backend = false;
  // Cooperative cancellation/deadline (util/cancel.hpp): polled at
  // every simplex pivot, oracle query, repair step, and trim step, so
  // a fired token aborts the solve with CancelledError at the next
  // poll. The caller owns the token; nullptr disables polling.
  const util::CancelToken* cancel = nullptr;
};

struct NestedSolveResult {
  Schedule schedule;            // feasible for the *original* instance
  std::int64_t active_slots = 0;
  double lp_value = 0.0;        // optimum of the strengthened LP
  std::vector<double> x_fractional;  // transformed LP solution, per node
  std::vector<Time> x_rounded;       // integral open counts, per node
  std::vector<int> topmost;          // the set I
  // Extra region slots opened because floating-point slack made the
  // rounded vector flow-infeasible. Expected (and asserted in tests to
  // be) zero; reported for transparency.
  int repairs = 0;
  std::int64_t lp_iterations = 0;
};

/// Solves a laminar instance. NAT_CHECKs laminarity and feasibility
/// (the instance must fit when every slot is open).
NestedSolveResult solve_nested(const Instance& instance,
                               const NestedSolverOptions& options = {});

class FeasibilityOracle;

/// Opens additional region slots until `counts` is flow-feasible.
/// Only ever triggered by floating-point slack in the LP; returns the
/// number of increments. Shared by solve_nested and the incremental
/// session (activetime/session.*).
int repair_open_counts(const LaminarForest& forest, FeasibilityOracle& oracle,
                       std::vector<Time>& counts);

/// Value of the strengthened LP alone (lower bound on OPT).
double strong_lp_value(const Instance& instance,
                       const StrongLpOptions& options = {});

/// --- Laminarity auto-dispatch --------------------------------------------

/// Which pipeline actually solved the instance. Every service record
/// (batch cell, session op, daemon response) carries the tag as its
/// `backend` field.
enum class Backend {
  kNested,   // laminar: the 9/5 pipeline (solve_nested)
  kGeneral,  // non-laminar: the LP-rounding 2-approx (solve_general)
  kGreedy,   // non-laminar, LP failed: greedy deactivation fallback
};

const char* to_string(Backend backend);

struct ActiveTimeOptions {
  NestedSolverOptions nested;    // used on the laminar path
  GeneralSolverOptions general;  // used on the non-laminar path
  // Convenience: when set, overrides the cancel token of both paths.
  const util::CancelToken* cancel = nullptr;
};

struct ActiveTimeResult {
  Backend backend = Backend::kNested;
  Schedule schedule;
  std::int64_t active_slots = 0;
  double lp_value = 0.0;  // strengthened LP (nested) / natural LP (general)
  int repairs = 0;
  std::int64_t lp_iterations = 0;
};

/// Front-end dispatcher: tests Instance::is_laminar() (O(n log n)) and
/// routes laminar instances to solve_nested — bit-identical to calling
/// it directly — and everything else to solve_general. `backend`
/// records which path ran; at.dispatch.* counters track the split.
ActiveTimeResult solve_active_time(const Instance& instance,
                                   const ActiveTimeOptions& options = {});

}  // namespace nat::at
