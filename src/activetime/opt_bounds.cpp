#include "activetime/opt_bounds.hpp"

#include <algorithm>

#include "activetime/oracle.hpp"
#include "util/check.hpp"

namespace nat::at {

bool opt_le_1(const LaminarForest& forest, int node) {
  std::vector<int> bearing;  // job-bearing nodes under `node`
  std::int64_t count = 0;
  for (int v : forest.subtree(node)) {
    if (forest.node(v).jobs.empty()) continue;
    bearing.push_back(v);
    for (int j : forest.node(v).jobs) {
      if (forest.jobs()[j].processing != 1) return false;
      ++count;
    }
  }
  if (count == 0) return true;
  if (count > forest.g()) return false;
  // Chain test: every job-bearing node must be an ancestor of the
  // (then unique) deepest one.
  int deepest = bearing.front();
  for (int v : bearing) {
    if (forest.depth(v) > forest.depth(deepest)) deepest = v;
  }
  for (int v : bearing) {
    if (!forest.is_ancestor(v, deepest)) return false;
  }
  return true;
}

bool opt_le_2(const LaminarForest& forest, int node) {
  if (opt_le_1(forest, node)) return true;
  // Quick necessary conditions.
  std::int64_t volume = 0;
  for (int v : forest.subtree(node)) {
    for (int j : forest.node(v).jobs) {
      const std::int64_t p = forest.jobs()[j].processing;
      if (p > 2) return false;
      volume += p;
    }
  }
  if (volume > 2 * forest.g()) return false;

  const std::vector<int> des = forest.subtree(node);
  // One subtree-scoped oracle serves every candidate pair: consecutive
  // queries differ in at most four entries, so each probe is a tiny
  // capacity diff plus a warm-started augmentation instead of a fresh
  // graph build (this sweep is the strong LP's ceiling-constraint
  // bottleneck).
  FeasibilityOracle oracle(forest, node);
  std::vector<Time> open(forest.num_nodes(), 0);
  auto pair_feasible = [&](int a, Time ca, int b, Time cb) {
    open[a] += ca;
    open[b] += cb;
    const bool ok = oracle.feasible(open);
    open[a] -= ca;
    open[b] -= cb;
    return ok;
  };
  // Two slots in one region, or one in each of two regions.
  for (std::size_t ia = 0; ia < des.size(); ++ia) {
    const int a = des[ia];
    const Time la = forest.node(a).length();
    if (la >= 2 && pair_feasible(a, 2, a, 0)) return true;
    if (la < 1) continue;
    for (std::size_t ib = ia + 1; ib < des.size(); ++ib) {
      const int b = des[ib];
      if (forest.node(b).length() < 1) continue;
      if (pair_feasible(a, 1, b, 1)) return true;
    }
  }
  return false;
}

int opt_lower_bound(const LaminarForest& forest, int node) {
  if (opt_le_1(forest, node)) return 1;
  if (opt_le_2(forest, node)) return 2;
  return 3;
}

}  // namespace nat::at
