#include "activetime/opt_bounds.hpp"

#include <algorithm>

#include "flow/dinic.hpp"
#include "util/check.hpp"

namespace nat::at {

namespace {

/// Feasibility of the subtree's jobs when region `a` has `ca` open
/// slots and region `b` has `cb` (a == b allowed with cb == 0).
bool subtree_feasible(const LaminarForest& forest,
                      const std::vector<int>& des,
                      const std::vector<int>& node_pos, int a, Time ca, int b,
                      Time cb) {
  // Collect jobs and total volume.
  std::int64_t volume = 0;
  int n = 0;
  for (int v : des) n += static_cast<int>(forest.node(v).jobs.size());
  if (n == 0) return true;

  const int m = static_cast<int>(des.size());
  flow::MaxFlowGraph graph(n + m + 2);
  const int s = n + m;
  const int t = n + m + 1;

  std::vector<Time> open(des.size(), 0);
  open[node_pos[a]] += ca;
  open[node_pos[b]] += cb;
  for (int k = 0; k < m; ++k) {
    if (open[k] > 0) {
      graph.add_edge(n + k, t, forest.g() * open[k]);
    }
  }
  int job_id = 0;
  for (int v : des) {
    for (int j : forest.node(v).jobs) {
      const std::int64_t p = forest.jobs()[j].processing;
      volume += p;
      graph.add_edge(s, job_id, p);
      // Job can use regions of Des(k(j)) — within the subtree those are
      // exactly descendants of v.
      for (int d : forest.subtree(v)) {
        const int k = node_pos[d];
        if (open[k] > 0) graph.add_edge(job_id, n + k, open[k]);
      }
      ++job_id;
    }
  }
  return graph.max_flow(s, t) == volume;
}

}  // namespace

bool opt_le_1(const LaminarForest& forest, int node) {
  std::vector<int> bearing;  // job-bearing nodes under `node`
  std::int64_t count = 0;
  for (int v : forest.subtree(node)) {
    if (forest.node(v).jobs.empty()) continue;
    bearing.push_back(v);
    for (int j : forest.node(v).jobs) {
      if (forest.jobs()[j].processing != 1) return false;
      ++count;
    }
  }
  if (count == 0) return true;
  if (count > forest.g()) return false;
  // Chain test: every job-bearing node must be an ancestor of the
  // (then unique) deepest one.
  int deepest = bearing.front();
  for (int v : bearing) {
    if (forest.depth(v) > forest.depth(deepest)) deepest = v;
  }
  for (int v : bearing) {
    if (!forest.is_ancestor(v, deepest)) return false;
  }
  return true;
}

bool opt_le_2(const LaminarForest& forest, int node) {
  if (opt_le_1(forest, node)) return true;
  // Quick necessary conditions.
  std::int64_t volume = 0;
  for (int v : forest.subtree(node)) {
    for (int j : forest.node(v).jobs) {
      const std::int64_t p = forest.jobs()[j].processing;
      if (p > 2) return false;
      volume += p;
    }
  }
  if (volume > 2 * forest.g()) return false;

  const std::vector<int> des = forest.subtree(node);
  std::vector<int> node_pos(forest.num_nodes(), -1);
  for (std::size_t k = 0; k < des.size(); ++k) {
    node_pos[des[k]] = static_cast<int>(k);
  }
  // Two slots in one region, or one in each of two regions.
  for (std::size_t ia = 0; ia < des.size(); ++ia) {
    const int a = des[ia];
    const Time la = forest.node(a).length();
    if (la >= 2 && subtree_feasible(forest, des, node_pos, a, 2, a, 0)) {
      return true;
    }
    if (la < 1) continue;
    for (std::size_t ib = ia + 1; ib < des.size(); ++ib) {
      const int b = des[ib];
      if (forest.node(b).length() < 1) continue;
      if (subtree_feasible(forest, des, node_pos, a, 1, b, 1)) return true;
    }
  }
  return false;
}

int opt_lower_bound(const LaminarForest& forest, int node) {
  if (opt_le_1(forest, node)) return 1;
  if (opt_le_2(forest, node)) return 2;
  return 3;
}

}  // namespace nat::at
