#include "activetime/opt_bounds.hpp"

#include <algorithm>

#include "activetime/oracle.hpp"
#include "obs/counters.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace nat::at {

bool opt_le_1(const LaminarForest& forest, int node) {
  std::vector<int> bearing;  // job-bearing nodes under `node`
  std::int64_t count = 0;
  for (int v : forest.subtree(node)) {
    if (forest.node(v).jobs.empty()) continue;
    bearing.push_back(v);
    for (int j : forest.node(v).jobs) {
      if (forest.jobs()[j].processing != 1) return false;
      ++count;
    }
  }
  if (count == 0) return true;
  if (count > forest.g()) return false;
  // Chain test: every job-bearing node must be an ancestor of the
  // (then unique) deepest one.
  int deepest = bearing.front();
  for (int v : bearing) {
    if (forest.depth(v) > forest.depth(deepest)) deepest = v;
  }
  for (int v : bearing) {
    if (!forest.is_ancestor(v, deepest)) return false;
  }
  return true;
}

bool opt_le_2(const LaminarForest& forest, int node) {
  if (opt_le_1(forest, node)) return true;
  // Quick necessary conditions.
  std::int64_t volume = 0;
  for (int v : forest.subtree(node)) {
    for (int j : forest.node(v).jobs) {
      const std::int64_t p = forest.jobs()[j].processing;
      if (p > 2) return false;
      volume += p;
    }
  }
  if (volume > 2 * forest.g()) return false;

  const std::vector<int> des = forest.subtree(node);
  // One subtree-scoped oracle serves every candidate pair: consecutive
  // queries differ in at most four entries, so each probe is a tiny
  // capacity diff plus a warm-started augmentation instead of a fresh
  // graph build (this sweep is the strong LP's ceiling-constraint
  // bottleneck).
  FeasibilityOracle oracle(forest, node);
  std::vector<Time> open(forest.num_nodes(), 0);
  auto pair_feasible = [&](int a, Time ca, int b, Time cb) {
    open[a] += ca;
    open[b] += cb;
    const bool ok = oracle.feasible(open);
    open[a] -= ca;
    open[b] -= cb;
    return ok;
  };
  // Two slots in one region, or one in each of two regions.
  for (std::size_t ia = 0; ia < des.size(); ++ia) {
    const int a = des[ia];
    const Time la = forest.node(a).length();
    if (la >= 2 && pair_feasible(a, 2, a, 0)) return true;
    if (la < 1) continue;
    for (std::size_t ib = ia + 1; ib < des.size(); ++ib) {
      const int b = des[ib];
      if (forest.node(b).length() < 1) continue;
      if (pair_feasible(a, 1, b, 1)) return true;
    }
  }
  return false;
}

int opt_lower_bound(const LaminarForest& forest, int node) {
  if (opt_le_1(forest, node)) return 1;
  if (opt_le_2(forest, node)) return 2;
  return 3;
}

std::vector<int> ceiling_lower_bounds(const LaminarForest& forest) {
  return ceiling_lower_bounds(forest, util::global_pool());
}

std::vector<int> ceiling_lower_bounds(const LaminarForest& forest,
                                      util::ThreadPool& pool) {
  static obs::Counter& c_serial = obs::counter("at.ceiling_sweep.serial");
  static obs::Counter& c_pooled = obs::counter("at.ceiling_sweep.pooled");
  static obs::Counter& c_nodes = obs::counter("at.ceiling_sweep.nodes");

  const int m = forest.num_nodes();
  std::vector<int> lower(static_cast<std::size_t>(m), 1);
  c_nodes.add(m);

  const std::size_t workers = pool.thread_count();
  const bool serial = m < kCeilingSweepSerialCutoff || workers <= 1 ||
                      util::ThreadPool::in_worker();
  if (serial) {
    for (int i = 0; i < m; ++i) lower[i] = opt_lower_bound(forest, i);
    c_serial.add(1);
    return lower;
  }

  // About four chunks per worker balances load (subtree sizes are very
  // uneven: the root's sweep dwarfs the leaves') against dispatch cost.
  const std::size_t n = static_cast<std::size_t>(m);
  const std::size_t grain = std::max(
      kCeilingSweepMinGrain, (n + 4 * workers - 1) / (4 * workers));
  const std::size_t chunks = (n + grain - 1) / grain;
  util::parallel_for(
      pool, 0, chunks,
      [&](std::size_t c) {
        const std::size_t begin = c * grain;
        const std::size_t end = std::min(n, begin + grain);
        std::vector<int> arena(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          arena[i - begin] = opt_lower_bound(forest, static_cast<int>(i));
        }
        std::copy(arena.begin(), arena.end(),
                  lower.begin() + static_cast<std::ptrdiff_t>(begin));
      },
      /*grain=*/1);
  c_pooled.add(1);
  return lower;
}

}  // namespace nat::at
