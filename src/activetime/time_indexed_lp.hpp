// Time-indexed LP relaxations for general active-time instances:
//
//  * the *natural* LP (x(t) per slot, y(t,j) assignments) whose
//    integrality gap is 2 (Section 1 of the paper);
//  * the Călinescu–Wang LP (Figure 3), which adds ceiling rows
//      Σ_{t∈I} x(t) >= ⌈Σ_j q_j(I) / g⌉
//    over intervals I, where q_j(I) is the volume job j is forced to
//    place inside I even with everything outside I open.
//
// Jobs with identical (window, processing) are aggregated into
// symmetric classes (same argument as the tree LP builder). The slot
// set is the instance horizon; interval generation can be restricted
// to event-aligned endpoints (releases/deadlines) to keep row counts
// manageable — the full set is O(T²).
#pragma once

#include <cstdint>
#include <vector>

#include "activetime/instance.hpp"
#include "lp/dense_simplex.hpp"
#include "lp/model.hpp"

namespace nat::at {

enum class CeilingIntervals {
  kNone,          // natural LP
  kEventAligned,  // endpoints restricted to {r_j} ∪ {d_j}
  kAll,           // every [t1, t2) within the horizon
};

struct TimeIndexedClass {
  Job job;        // representative (window + processing)
  int count = 0;  // number of identical jobs aggregated
  // (slot index into `slots`, model variable) for each window slot.
  std::vector<std::pair<int, int>> y_vars;
};

struct TimeIndexedLp {
  lp::Model model;
  std::vector<Time> slots;   // horizon slot times, index-aligned with x_var
  std::vector<int> x_var;    // one per slot
  std::vector<TimeIndexedClass> classes;
  int num_ceiling_rows = 0;
};

/// Builds the natural LP (`intervals == kNone`) or the CW LP.
TimeIndexedLp build_time_indexed_lp(
    const Instance& instance,
    CeilingIntervals intervals = CeilingIntervals::kNone);

/// q_j(I): volume job j must place inside I even if every slot outside
/// I is open: max(0, p_j - |window_j \ I|).
std::int64_t forced_volume(const Job& job, const Interval& interval);

/// Convenience: optimum of the natural LP.
double natural_lp_value(const Instance& instance);
/// Convenience: optimum of the CW LP with the given interval set.
double cw_lp_value(const Instance& instance,
                   CeilingIntervals intervals = CeilingIntervals::kAll);

}  // namespace nat::at
