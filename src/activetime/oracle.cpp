#include "activetime/oracle.hpp"

#include "obs/counters.hpp"
#include "util/check.hpp"

namespace nat::at {

FeasibilityOracle::FeasibilityOracle(const LaminarForest& forest, int root)
    : forest_(forest) {
  static obs::Counter& c_builds = obs::counter("at.oracle.builds");
  c_builds.add(1);

  const int m = forest.num_nodes();
  if (root < 0) {
    scope_.resize(m);
    for (int i = 0; i < m; ++i) scope_[i] = i;
  } else {
    scope_ = forest.subtree(root);
  }
  region_node_.assign(m, -1);
  sink_edge_.assign(m, -1);
  region_arcs_.assign(m, {});
  open_.assign(m, 0);

  // Scoped jobs, in scope order (preorder for subtrees).
  std::vector<std::pair<int, int>> jobs;  // (forest node, job id)
  for (int v : scope_) {
    for (int j : forest.node(v).jobs) jobs.push_back({v, j});
  }
  const int n = static_cast<int>(jobs.size());
  const int mr = static_cast<int>(scope_.size());
  graph_ = flow::MaxFlowGraph(n + mr + 2);
  s_ = n + mr;
  t_ = n + mr + 1;
  for (int k = 0; k < mr; ++k) region_node_[scope_[k]] = n + k;

  // Regions start closed: sink edges and job arcs carry capacity 0 and
  // are retuned per query. Zero-length regions can never open, so they
  // get no edges at all.
  for (int k = 0; k < mr; ++k) {
    const int i = scope_[k];
    if (forest.node(i).length() > 0) {
      sink_edge_[i] = graph_.add_edge(n + k, t_, 0);
    }
  }
  for (int jn = 0; jn < n; ++jn) {
    const auto [v, j] = jobs[jn];
    const std::int64_t p = forest.jobs()[j].processing;
    volume_ += p;
    graph_.add_edge(s_, jn, p);
    // Scopes are subtree-closed, so Des(k(j)) stays inside the scope.
    for (int d : forest.subtree(v)) {
      if (forest.node(d).length() == 0) continue;
      const int e = graph_.add_edge(jn, region_node_[d], 0);
      region_arcs_[d].push_back({jn, e});
    }
  }
}

std::int64_t FeasibilityOracle::apply_region(int i, Time value) {
  cut_dirty_ = true;
  if (sink_edge_[i] < 0) {
    NAT_CHECK_MSG(value == 0, "region " << i << " has no open slots");
    return 0;
  }
  std::int64_t cancelled =
      graph_.set_capacity(sink_edge_[i], forest_.g() * value);
  for (const auto& [jn, e] : region_arcs_[i]) {
    cancelled += graph_.set_capacity(e, value);
  }
  return cancelled;
}

void FeasibilityOracle::augment() {
  cut_dirty_ = true;
  const std::int64_t pushed = graph_.max_flow(s_, t_);
  static obs::Counter& c_pushed = obs::counter("at.oracle.flow_augmented");
  c_pushed.add(pushed);
}

bool FeasibilityOracle::feasible(const std::vector<Time>& open) {
  util::poll_cancel(cancel_);
  NAT_CHECK(static_cast<int>(open.size()) == forest_.num_nodes());
  static obs::Counter& c_queries = obs::counter("at.oracle.queries");
  static obs::Counter& c_warm = obs::counter("at.oracle.warm_queries");
  static obs::Counter& c_cached = obs::counter("at.oracle.cached_queries");
  static obs::Counter& c_updated = obs::counter("at.oracle.regions_updated");
  static obs::Counter& c_cancel = obs::counter("at.oracle.flow_cancelled");
  c_queries.add(1);
  if (queried_) c_warm.add(1);

  int updated = 0;
  std::int64_t cancelled = 0;
  for (int i : scope_) {
    NAT_CHECK_MSG(open[i] >= 0 && open[i] <= forest_.node(i).length(),
                  "region " << i << ": open count " << open[i]
                            << " out of [0, " << forest_.node(i).length()
                            << "]");
    if (open[i] == open_[i]) continue;
    cancelled += apply_region(i, open[i]);
    open_[i] = open[i];
    ++updated;
  }
  if (updated == 0 && queried_) {
    // The retained flow is already maximal for this exact vector.
    c_cached.add(1);
    return deficit() == 0;
  }
  c_updated.add(updated);
  if (cancelled > 0) c_cancel.add(cancelled);
  queried_ = true;
  augment();
  return deficit() == 0;
}

bool FeasibilityOracle::feasible_if_incremented(int i) {
  util::poll_cancel(cancel_);
  NAT_CHECK(i >= 0 && i < forest_.num_nodes());
  NAT_CHECK_MSG(region_node_[i] >= 0, "region " << i << " out of scope");
  NAT_CHECK_MSG(open_[i] < forest_.node(i).length(),
                "region " << i << " is already fully open");
  static obs::Counter& c_probes = obs::counter("at.oracle.probes");
  c_probes.add(1);

  [[maybe_unused]] const std::int64_t pre = graph_.flow_value();
  apply_region(i, open_[i] + 1);
  augment();
  const bool ok = deficit() == 0;
  // Revert: the decrease strands exactly what the probe routed through
  // the extra slot; a final augmentation restores maximality for the
  // unchanged current vector.
  apply_region(i, open_[i]);
  augment();
  NAT_DCHECK(graph_.flow_value() == pre);
  return ok;
}

const std::vector<bool>& FeasibilityOracle::cut_source_side() {
  if (cut_dirty_) {
    cut_side_ = graph_.min_cut_source_side(s_);
    cut_dirty_ = false;
  }
  return cut_side_;
}

bool FeasibilityOracle::increment_can_help(int i) {
  NAT_CHECK(i >= 0 && i < forest_.num_nodes());
  if (region_node_[i] < 0 || sink_edge_[i] < 0) return false;
  const std::vector<bool>& side = cut_source_side();
  // A +1 on region i grows its sink edge by g and each job arc by 1.
  // Only edges crossing the certified cut can raise its capacity: the
  // sink edge crosses iff the region sits on the source side; a job
  // arc crosses iff its job does while the region does not.
  if (side[region_node_[i]]) return true;
  for (const auto& [jn, e] : region_arcs_[i]) {
    if (side[jn]) return true;
  }
  return false;
}

}  // namespace nat::at
