// Algorithm 1: rounding the transformed fractional solution.
//
// Start from x̃(i) = ⌊x(i)⌋ on the topmost set I (all other nodes are
// already integral: full descendants at L(i), empty ancestors at 0).
// Then walk Anc(I) bottom-to-top; at each node, while the subtree's
// rounded total stays within (9/5)·(fractional subtree total), round
// one still-floored node of the subtree up to its ceiling. The paper
// proves the result is feasible (Section 4) and never exceeds
// (9/5)·x([m]) slots (Lemma 3.3).
#pragma once

#include <cstdint>
#include <vector>

#include "activetime/lp_transform.hpp"
#include "activetime/tree.hpp"

namespace nat::at {

struct RoundingResult {
  std::vector<Time> x_tilde;  // integral open count per node
  std::int64_t total = 0;     // Σ x̃(i)
};

/// Rounds a *transformed* solution (see push_down_transform). `topmost`
/// must be topmost_positive(forest, x).
RoundingResult round_solution(const LaminarForest& forest,
                              const std::vector<double>& x,
                              const std::vector<int>& topmost);

/// Floor/ceil with kFracEps slack: eps_floor(2.9999995) == 3.
std::int64_t eps_floor(double v);
std::int64_t eps_ceil(double v);

/// Test-only fault injection for the differential fuzzer
/// (bench/fuzz_differential, tests/test_verify): when enabled, each
/// Algorithm 1 round-up opens one slot more than the "+1" its 9/5
/// budget condition reserved — an off-by-one between the budget
/// accounting and the amount actually rounded, which breaches the
/// Lemma 3.3 budget (and floor/ceil membership) on instances with
/// tight fractional mass. The exact-arithmetic verify layer must catch
/// it; never enable outside tests/fuzzing.
void set_rounding_budget_fault(bool on);
bool rounding_budget_fault();

}  // namespace nat::at
