#include "activetime/triples.hpp"

#include <algorithm>

#include "activetime/lp_transform.hpp"
#include "util/check.hpp"

namespace nat::at {

namespace {

/// The other child of i's parent, or -1.
int brother(const LaminarForest& forest, int i) {
  const int p = forest.node(i).parent;
  if (p < 0) return -1;
  for (int c : forest.node(p).children) {
    if (c != i) return c;
  }
  return -1;
}

}  // namespace

TripleAnalysis build_triples(const LaminarForest& forest,
                             const std::vector<double>& x,
                             const std::vector<Time>& x_tilde,
                             const std::vector<int>& topmost) {
  const int m = forest.num_nodes();
  TripleAnalysis out;
  out.type.assign(m, NodeType::kNotInI);

  auto subtree_x = [&](int i) {
    double s = 0.0;
    for (int d : forest.subtree(i)) s += x[d];
    return s;
  };
  auto subtree_xt = [&](int i) {
    Time s = 0;
    for (int d : forest.subtree(i)) s += x_tilde[d];
    return s;
  };

  for (int i : topmost) {
    const double sx = subtree_x(i);
    if (sx > 1.0 + kFracEps && sx < 4.0 / 3.0 - kFracEps) {
      const Time sxt = subtree_xt(i);
      if (sxt == 1) {
        out.type[i] = NodeType::kC1;
        ++out.num_c1;
      } else {
        NAT_CHECK_MSG(sxt == 2, "type-C node with x~(Des) = " << sxt);
        out.type[i] = NodeType::kC2;
        ++out.num_c2;
      }
    } else {
      out.type[i] = NodeType::kB;
      ++out.num_b;
    }
  }

  // Algorithm 2. Process Anc(I) nodes with >= 3 topmost descendants
  // bottom-to-top; greedily cover each uncovered C1 with two unused C2s
  // from the same subtree, honoring C1C2 brother pairs.
  std::vector<bool> covered(m, false), used(m, false);
  std::vector<int> anc;
  {
    std::vector<bool> seen(m, false);
    for (int i : topmost) {
      for (int a = i; a >= 0; a = forest.node(a).parent) {
        if (seen[a]) break;
        seen[a] = true;
        anc.push_back(a);
      }
    }
    std::sort(anc.begin(), anc.end(), [&](int a, int b) {
      return forest.depth(a) > forest.depth(b);
    });
  }
  std::vector<bool> in_topmost(m, false);
  for (int i : topmost) in_topmost[i] = true;

  for (int a : anc) {
    const std::vector<int> des = forest.subtree(a);
    int topmost_in_des = 0;
    for (int d : des) topmost_in_des += in_topmost[d] ? 1 : 0;
    if (topmost_in_des < 3) continue;

    for (;;) {
      // An uncovered C1 in Des(a).
      int i1 = -1;
      for (int d : des) {
        if (out.type[d] == NodeType::kC1 && !covered[d]) {
          i1 = d;
          break;
        }
      }
      if (i1 < 0) break;

      auto is_free_c2 = [&](int d) {
        return out.type[d] == NodeType::kC2 && !used[d];
      };
      // Honor the brother pair: if i1's brother is an unused C2, it
      // must be i2.
      int i2 = -1;
      const int bro = brother(forest, i1);
      if (bro >= 0 && is_free_c2(bro)) i2 = bro;
      // Remaining picks must not steal the C2 brother of another
      // uncovered C1 unless nothing else is available.
      auto pick = [&](int exclude1, int exclude2) {
        int fallback = -1;
        for (int d : des) {
          if (!is_free_c2(d) || d == exclude1 || d == exclude2) continue;
          const int b = brother(forest, d);
          const bool paired =
              b >= 0 && out.type[b] == NodeType::kC1 && !covered[b];
          if (!paired) return d;
          if (fallback < 0) fallback = d;
        }
        return fallback;
      };
      if (i2 < 0) i2 = pick(i1, -1);
      int i3 = pick(i1, i2);
      if (i2 < 0 || i3 < 0) {
        out.ran_out_of_c2 = true;  // Lemma 4.9 says this cannot happen
        return out;
      }
      covered[i1] = true;
      used[i2] = true;
      used[i3] = true;
      out.triples.push_back({i1, i2, i3});
    }
  }
  return out;
}

}  // namespace nat::at
