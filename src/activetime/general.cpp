#include "activetime/general.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "activetime/feasibility.hpp"
#include "flow/dinic.hpp"
#include "lp/backend.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace nat::at {

const char* to_string(GeneralRounding rounding) {
  switch (rounding) {
    case GeneralRounding::kThreshold: return "threshold";
    case GeneralRounding::kSweep: return "sweep";
    case GeneralRounding::kGreedy: return "greedy";
  }
  return "?";
}

namespace {

/// Warm slot-level feasibility oracle over the full horizon: the
/// job→slot network of feasibility.cpp built once per solve, slot→sink
/// capacities retuned in place (g when open, 0 when closed), max-flow
/// warm-started between queries. The general-instance sibling of the
/// region-level FeasibilityOracle (oracle.hpp).
class SlotOracle {
 public:
  SlotOracle(const Instance& instance, std::vector<Time> slots,
             const util::CancelToken* cancel)
      : instance_(&instance),
        slots_(std::move(slots)),
        cancel_(cancel),
        graph_(instance.num_jobs() + static_cast<int>(slots_.size()) + 2) {
    const int n = instance.num_jobs();
    const int S = num_slots();
    s_ = n + S;
    t_ = n + S + 1;
    for (int j = 0; j < n; ++j) {
      graph_.add_edge(s_, j, instance.jobs[j].processing);
    }
    sink_edge_.resize(S);
    for (int k = 0; k < S; ++k) {
      sink_edge_[k] = graph_.add_edge(n + k, t_, 0);  // every slot closed
    }
    // Sparse job→slot arcs: a half-open window covers a contiguous run
    // of the sorted slot array, so per job we keep [first, last) slot
    // indices instead of the former dense n×S matrix (whose n*S index
    // products overflow 32 bits near the job-count cap on wide
    // horizons, and whose memory is quadratic for no reason).
    job_slot_range_.resize(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const Interval w = instance.jobs[j].window();
      const auto first = std::lower_bound(slots_.begin(), slots_.end(), w.lo);
      const auto last = std::lower_bound(first, slots_.end(), w.hi);
      job_slot_range_[j] = {static_cast<int>(first - slots_.begin()),
                            static_cast<int>(last - slots_.begin())};
      for (auto it = first; it != last; ++it) {
        graph_.add_edge(j, n + static_cast<int>(it - slots_.begin()), 1);
      }
    }
    open_.assign(S, 0);
    total_volume_ = instance.total_volume();
  }

  int num_slots() const { return static_cast<int>(slots_.size()); }
  bool is_open(int k) const { return open_[k] != 0; }
  std::int64_t open_count() const { return open_count_; }

  void set_open(int k, bool open) {
    if (is_open(k) == open) return;
    open_[k] = open ? 1 : 0;
    open_count_ += open ? 1 : -1;
    graph_.set_capacity(sink_edge_[k], open ? instance_->g : 0);
  }

  void apply(const std::vector<char>& open) {
    NAT_CHECK(static_cast<int>(open.size()) == num_slots());
    for (int k = 0; k < num_slots(); ++k) set_open(k, open[k] != 0);
  }

  /// Warm max-flow saturation test for the current open set.
  bool feasible() {
    util::poll_cancel(cancel_);
    static obs::Counter& c = obs::counter("at.general.oracle_checks");
    c.add(1);
    graph_.max_flow(s_, t_);
    return graph_.flow_value() == total_volume_;
  }

  /// After an infeasible feasible(): true iff opening closed slot `k`
  /// creates an augmenting path — some min-cut-source-side job's window
  /// contains it, so s→…→j (residual) →k (cap 1, unused) →t (cap g)
  /// strictly grows the flow.
  bool open_can_help(int k, const std::vector<bool>& cut) const {
    const int n = instance_->num_jobs();
    for (int j = 0; j < n; ++j) {
      const auto& [first, last] = job_slot_range_[j];
      if (cut[j] && first <= k && k < last) return true;
    }
    return false;
  }

  std::vector<bool> cut_source_side() const {
    return graph_.min_cut_source_side(s_);
  }

  std::vector<Time> open_slots() const {
    std::vector<Time> out;
    for (int k = 0; k < num_slots(); ++k) {
      if (open_[k]) out.push_back(slots_[k]);
    }
    return out;
  }

 private:
  const Instance* instance_;
  std::vector<Time> slots_;
  const util::CancelToken* cancel_;
  flow::MaxFlowGraph graph_;
  int s_ = 0, t_ = 0;
  std::vector<int> sink_edge_;
  // Per-job [first, last) covered range of the sorted slot array.
  std::vector<std::pair<int, int>> job_slot_range_;
  std::vector<char> open_;
  std::int64_t open_count_ = 0;
  std::int64_t total_volume_ = 0;
};

/// Opens slots (in `priority` order, cut-guided) until feasible.
/// Every opened slot strictly increases the max flow, so the loop
/// terminates within num_slots() iterations on a feasible instance.
int repair_open_slots(SlotOracle& oracle, const std::vector<int>& priority,
                      const util::CancelToken* cancel) {
  int repairs = 0;
  static obs::Counter& c_skips = obs::counter("at.general.cut_skips");
  while (!oracle.feasible()) {
    util::poll_cancel(cancel);
    const std::vector<bool> cut = oracle.cut_source_side();
    int chosen = -1;
    for (int k : priority) {
      if (oracle.is_open(k)) continue;
      if (!oracle.open_can_help(k, cut)) {
        c_skips.add(1);
        continue;
      }
      chosen = k;
      break;
    }
    // A helpful closed slot always exists: otherwise every window slot
    // of every deficit job is already open and the instance would be
    // infeasible outright, which the precheck excluded.
    NAT_CHECK_MSG(chosen >= 0, "general repair: no slot can help");
    oracle.set_open(chosen, true);
    ++repairs;
    NAT_CHECK_MSG(repairs <= oracle.num_slots(),
                  "general repair failed to converge");
  }
  return repairs;
}

/// Closes slots (in `order`) while the oracle stays feasible. One pass
/// reaches minimality: feasibility is monotone in the open set.
void trim_open_slots(SlotOracle& oracle, const std::vector<int>& order,
                     const util::CancelToken* cancel) {
  for (int k : order) {
    if (!oracle.is_open(k)) continue;
    util::poll_cancel(cancel);
    oracle.set_open(k, false);
    if (!oracle.feasible()) oracle.set_open(k, true);
  }
}

constexpr double kEps = 1e-9;

}  // namespace

GeneralSolveResult solve_general(const Instance& instance,
                                 const GeneralSolverOptions& options) {
  GeneralSolveResult result;
  if (instance.jobs.empty()) return result;

  obs::Span span_total("solve_general");
  static obs::Counter& c_solves = obs::counter("at.general.solves");
  c_solves.add(1);

  const Interval horizon = instance.horizon();
  std::vector<Time> slots;
  slots.reserve(static_cast<std::size_t>(horizon.length()));
  for (Time t = horizon.lo; t < horizon.hi; ++t) slots.push_back(t);
  const int T = static_cast<int>(slots.size());

  SlotOracle oracle(instance, slots, options.cancel);

  // Feasibility of the instance itself (every slot open).
  {
    obs::Span span("solve_general/feasibility_precheck");
    for (int k = 0; k < T; ++k) oracle.set_open(k, true);
    NAT_CHECK_MSG(oracle.feasible(), "instance is infeasible");
  }

  // Greedy deactivation on the warm oracle: start all-open, close
  // right-to-left while feasible — a minimal feasible set (3-approx).
  // Used when the LP fails and as the last-resort budget fallback.
  std::vector<int> right_to_left(T);
  std::iota(right_to_left.rbegin(), right_to_left.rend(), 0);
  const auto run_greedy = [&] {
    obs::Span span("solve_general/greedy");
    std::vector<char> all(T, 1);
    oracle.apply(all);
    trim_open_slots(oracle, right_to_left, options.cancel);
    return oracle.open_count();
  };

  TimeIndexedLp lp = [&] {
    obs::Span span("solve_general/lp_build");
    return build_time_indexed_lp(instance, options.intervals);
  }();
  NAT_CHECK(static_cast<int>(lp.slots.size()) == T);
  lp::Solution lps = [&] {
    obs::Span span("solve_general/lp_solve");
    lp::SolveOptions lp_options;
    lp_options.cancel = options.cancel;
    return lp::solve_auto(lp.model, lp_options);
  }();

  std::vector<Time> best_slots;
  if (lps.status != lp::Status::kOptimal) {
    static obs::Counter& c_fail = obs::counter("at.general.lp_failures");
    c_fail.add(1);
    result.lp_failed = true;
    result.rounding = GeneralRounding::kGreedy;
    run_greedy();
    best_slots = oracle.open_slots();
  } else {
    result.lp_value = lps.objective;
    result.lp_iterations = lps.iterations;

    std::vector<double> x(T);
    for (int k = 0; k < T; ++k) x[k] = lps.x[lp.x_var[k]];

    // Deterministic orders keyed on the LP solution: repair prefers the
    // largest-x closed slots (the fractional support first), trim
    // removes the smallest-x slots first. Ties break on slot index.
    std::vector<int> by_x_desc(T), by_x_asc(T);
    std::iota(by_x_desc.begin(), by_x_desc.end(), 0);
    by_x_asc = by_x_desc;
    std::sort(by_x_desc.begin(), by_x_desc.end(), [&](int a, int b) {
      return x[a] != x[b] ? x[a] > x[b] : a < b;
    });
    std::sort(by_x_asc.begin(), by_x_asc.end(), [&](int a, int b) {
      return x[a] != x[b] ? x[a] < x[b] : a < b;
    });

    const auto run_candidate = [&](const std::vector<char>& open,
                                   int* repairs) {
      oracle.apply(open);
      *repairs = repair_open_slots(oracle, by_x_desc, options.cancel);
      if (options.trim) trim_open_slots(oracle, by_x_asc, options.cancel);
      return oracle.open_count();
    };
    // ALG <= 2·LP, with double-path slack mirroring the rational
    // certificate (verify::check_general_budget).
    const auto within_budget = [&](std::int64_t count) {
      const double slack = options.verify_radius * (T + 2) *
                           std::max(1.0, std::abs(result.lp_value));
      return static_cast<double>(count) <= 2.0 * result.lp_value + slack;
    };

    // Threshold candidate: the x >= 1/2 support.
    std::vector<char> threshold(T, 0);
    for (int k = 0; k < T; ++k) {
      if (x[k] >= 0.5 - kEps) threshold[k] = 1;
    }
    {
      obs::Span span("solve_general/round_threshold");
      int repairs = 0;
      const std::int64_t count = run_candidate(threshold, &repairs);
      result.rounding = GeneralRounding::kThreshold;
      result.repairs = repairs;
      best_slots = oracle.open_slots();
      (void)count;
    }

    if (!within_budget(static_cast<std::int64_t>(best_slots.size()))) {
      // Sweep candidate: open a slot whenever the doubled cumulative LP
      // mass crosses an integer — at most floor(2·LP) slots, meeting
      // every interval lower bound ceil(q(I)/g) (docs/GENERAL.md).
      obs::Span span("solve_general/round_sweep");
      std::vector<char> sweep(T, 0);
      double cum = 0.0;
      std::int64_t crossed = 0;
      for (int k = 0; k < T; ++k) {
        cum += x[k];
        const auto up =
            static_cast<std::int64_t>(std::floor(2.0 * cum + kEps));
        if (up > crossed) {
          sweep[k] = 1;
          crossed = up;
        }
      }
      int repairs = 0;
      const std::int64_t count = run_candidate(sweep, &repairs);
      if (count < static_cast<std::int64_t>(best_slots.size())) {
        result.rounding = GeneralRounding::kSweep;
        result.repairs = repairs;
        best_slots = oracle.open_slots();
      }
    }

    if (!within_budget(static_cast<std::int64_t>(best_slots.size()))) {
      const std::int64_t count = run_greedy();
      if (count < static_cast<std::int64_t>(best_slots.size())) {
        result.rounding = GeneralRounding::kGreedy;
        result.repairs = 0;
        best_slots = oracle.open_slots();
      }
    }
  }

  static obs::Counter& c_repairs = obs::counter("at.general.repairs");
  c_repairs.add(result.repairs);
  switch (result.rounding) {
    case GeneralRounding::kThreshold: {
      static obs::Counter& c = obs::counter("at.general.round.threshold");
      c.add(1);
      break;
    }
    case GeneralRounding::kSweep: {
      static obs::Counter& c = obs::counter("at.general.round.sweep");
      c.add(1);
      break;
    }
    case GeneralRounding::kGreedy: {
      static obs::Counter& c = obs::counter("at.general.round.greedy");
      c.add(1);
      break;
    }
  }

  result.open_slots = std::move(best_slots);
  obs::Span span_extract("solve_general/extract");
  auto schedule = schedule_with_slots(instance, result.open_slots);
  NAT_CHECK_MSG(schedule.has_value(), "post-rounding extraction failed");
  result.schedule = std::move(*schedule);
  validate_schedule(instance, result.schedule);
  result.active_slots = result.schedule.active_slots();

  const verify::VerifyLevel vlevel =
      verify::resolve_level(options.verify_level);
  if (vlevel != verify::VerifyLevel::kOff) {
    obs::Span span("solve_general/verify_schedule");
    verify::require(
        "schedule",
        verify::check_schedule(instance, result.schedule, result.active_slots,
                               static_cast<std::int64_t>(
                                   result.open_slots.size())));
  }
  if (vlevel == verify::VerifyLevel::kFull && !result.lp_failed) {
    obs::Span span("solve_general/verify_budget");
    verify::require("general_budget",
                    verify::check_general_budget(result.active_slots,
                                                 result.lp_value, T,
                                                 options.verify_radius));
  }
  return result;
}

}  // namespace nat::at
