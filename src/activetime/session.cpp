#include "activetime/session.hpp"

#include <algorithm>
#include <numeric>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "activetime/feasibility.hpp"
#include "activetime/general.hpp"
#include "activetime/lp_transform.hpp"
#include "activetime/oracle.hpp"
#include "activetime/rounding.hpp"
#include "activetime/solver.hpp"
#include "util/check.hpp"

namespace nat::at {

namespace {

template <class... Ts>
struct Overload : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overload(Ts...) -> Overload<Ts...>;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t group_key(std::int64_t g, const std::vector<Job>& jobs) {
  std::uint64_t h = mix(0x243F6A8885A308D3ull, static_cast<std::uint64_t>(g));
  for (const Job& j : jobs) {
    h = mix(h, static_cast<std::uint64_t>(j.release));
    h = mix(h, static_cast<std::uint64_t>(j.deadline));
    h = mix(h, static_cast<std::uint64_t>(j.processing));
    h = mix(h, static_cast<std::uint64_t>(j.processing_lo));
    h = mix(h, static_cast<std::uint64_t>(j.processing_hi));
  }
  return h;
}

/// Content key per LP variable, stable across models of overlapping
/// instances: a node is identified by its interval, virtual flag, and
/// occurrence rank (canonicalization can create several virtual nodes
/// with the same hull), a class by its node, processing time, and
/// member count. Keys that fail to map between two models simply lose
/// their warm hint — mapping is a performance channel, never a
/// correctness one.
std::vector<std::string> variable_keys(const LaminarForest& forest,
                                       const StrongLp& lp) {
  std::vector<std::string> nd(forest.num_nodes());
  std::unordered_map<std::string, int> seen;
  for (int i = 0; i < forest.num_nodes(); ++i) {
    const TreeNode& n = forest.node(i);
    std::string base = std::to_string(n.interval.lo) + ":" +
                       std::to_string(n.interval.hi) +
                       (n.is_virtual ? ":v" : ":r");
    const int occ = seen[base]++;
    nd[i] = base + ":" + std::to_string(occ);
  }
  std::vector<std::string> keys(
      static_cast<std::size_t>(lp.model.num_variables()));
  for (int i = 0; i < forest.num_nodes(); ++i) {
    keys[static_cast<std::size_t>(lp.x_var[i])] = "x|" + nd[i];
  }
  for (std::size_t c = 0; c < lp.classes.size(); ++c) {
    const JobClass& jc = lp.classes[c];
    const std::string ckey = nd[jc.node] + "|p" +
                             std::to_string(jc.processing) + "|n" +
                             std::to_string(jc.count());
    for (const auto& [node, var] : lp.y_vars[c]) {
      keys[static_cast<std::size_t>(var)] = "y|" + ckey + "|" + nd[node];
    }
  }
  return keys;
}

Interval union_window(const std::vector<Job>& jobs) {
  Interval w = jobs.front().window();
  for (const Job& j : jobs) {
    w.lo = std::min(w.lo, j.release);
    w.hi = std::max(w.hi, j.deadline);
  }
  return w;
}

Time overlap_length(const Interval& a, const Interval& b) {
  return std::max<Time>(0, std::min(a.hi, b.hi) - std::max(a.lo, b.lo));
}

}  // namespace

std::vector<std::vector<int>> window_groups(const Instance& instance) {
  const int n = static_cast<int>(instance.jobs.size());
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const Job& ja = instance.jobs[static_cast<std::size_t>(a)];
    const Job& jb = instance.jobs[static_cast<std::size_t>(b)];
    if (ja.release != jb.release) return ja.release < jb.release;
    if (ja.deadline != jb.deadline) return ja.deadline > jb.deadline;
    return a < b;
  });
  std::vector<std::vector<int>> groups;
  Time hi = 0;
  for (int j : order) {
    const Job& job = instance.jobs[static_cast<std::size_t>(j)];
    if (groups.empty() || job.release >= hi) {
      groups.emplace_back();
      hi = job.deadline;
    }
    groups.back().push_back(j);
    hi = std::max(hi, job.deadline);
  }
  for (auto& g : groups) std::sort(g.begin(), g.end());
  return groups;
}

SolverSession::SolverSession(Instance initial, SessionOptions options)
    : instance_(std::move(initial)), options_(options) {
  instance_.validate();
}

const SessionResult& SolverSession::solve() {
  if (!solved_) resolve();
  return result_;
}

const SessionResult& SolverSession::apply(const Delta& delta) {
  if (!solved_) resolve();  // baseline to roll back to
  Instance backup = instance_;
  try {
    std::visit(
        Overload{
            [&](const AddJob& d) { instance_.jobs.push_back(d.job); },
            [&](const RemoveJob& d) {
              NAT_CHECK_MSG(d.job >= 0 && d.job < num_jobs(),
                            "RemoveJob: index out of range");
              instance_.jobs.erase(instance_.jobs.begin() + d.job);
            },
            [&](const ExtendWindow& d) {
              NAT_CHECK_MSG(d.job >= 0 && d.job < num_jobs(),
                            "ExtendWindow: index out of range");
              Job& j = instance_.jobs[static_cast<std::size_t>(d.job)];
              NAT_CHECK_MSG(
                  d.window.lo <= j.release && d.window.hi >= j.deadline,
                  "ExtendWindow: new window must contain the old one");
              j.release = d.window.lo;
              j.deadline = d.window.hi;
            },
            [&](const ShrinkWindow& d) {
              NAT_CHECK_MSG(d.job >= 0 && d.job < num_jobs(),
                            "ShrinkWindow: index out of range");
              Job& j = instance_.jobs[static_cast<std::size_t>(d.job)];
              NAT_CHECK_MSG(
                  d.window.lo >= j.release && d.window.hi <= j.deadline,
                  "ShrinkWindow: new window must fit inside the old one");
              j.release = d.window.lo;
              j.deadline = d.window.hi;
            },
            [&](const Retime& d) {
              NAT_CHECK_MSG(d.job >= 0 && d.job < num_jobs(),
                            "Retime: index out of range");
              Job& j = instance_.jobs[static_cast<std::size_t>(d.job)];
              j.processing_lo = d.processing_lo;
              j.processing_hi = d.processing_hi;
            },
        },
        delta);
    instance_.validate();
    resolve();
  } catch (...) {
    instance_ = std::move(backup);
    throw;
  }
  return result_;
}

void SolverSession::resolve() {
  ++stats_.solves;
  const auto groups = window_groups(instance_);

  // Pass 1: match groups against the cache by content.
  struct Planned {
    std::uint64_t key = 0;
    std::vector<Job> jobs;
    Interval window{0, 0};
    const GroupSolve* reuse = nullptr;
  };
  std::vector<Planned> plan(groups.size());
  std::unordered_set<std::uint64_t> matched;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    Planned& p = plan[gi];
    p.jobs.reserve(groups[gi].size());
    for (int m : groups[gi]) {
      p.jobs.push_back(instance_.jobs[static_cast<std::size_t>(m)]);
    }
    p.window = union_window(p.jobs);
    p.key = group_key(instance_.g, p.jobs);
    auto it = cache_.find(p.key);
    if (it != cache_.end() && it->second.jobs == p.jobs) {
      p.reuse = &it->second;
      matched.insert(p.key);
    }
  }
  // Displaced entries become warm hints for the dirty groups.
  std::vector<const GroupSolve*> leftovers;
  for (const auto& [key, entry] : cache_) {
    if (!matched.count(key)) leftovers.push_back(&entry);
  }

  SessionResult res;
  res.backend = Backend::kNested;
  res.schedule.assignment.resize(instance_.jobs.size());
  std::unordered_map<std::uint64_t, GroupSolve> next;
  next.reserve(groups.size());
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    ++stats_.groups_total;
    GroupSolve entry;
    if (plan[gi].reuse != nullptr) {
      ++stats_.groups_reused;
      entry = *plan[gi].reuse;
    } else {
      ++stats_.groups_resolved;
      // Best hint: the displaced entry with the largest window overlap
      // (deterministic tie-break on window position). Hints only steer
      // warm starts — the canonicalizing LP lands on the same vertex
      // with any hint or none.
      const GroupSolve* hint = nullptr;
      Time best = 0;
      for (const GroupSolve* cand : leftovers) {
        const Time ov = overlap_length(cand->window, plan[gi].window);
        if (ov > best ||
            (ov == best && hint != nullptr && ov > 0 &&
             (cand->window.lo < hint->window.lo ||
              (cand->window.lo == hint->window.lo &&
               cand->window.hi < hint->window.hi)))) {
          best = ov;
          hint = cand;
        }
      }
      entry = solve_group(groups[gi], hint);
    }
    const auto& members = groups[gi];
    NAT_DCHECK(entry.slots.size() == members.size());
    for (std::size_t p = 0; p < members.size(); ++p) {
      res.schedule.assignment[static_cast<std::size_t>(members[p])] =
          entry.slots[p];
    }
    res.lp_value += entry.lp_value;
    res.repairs += entry.repairs;
    // Most-degraded backend wins: greedy > general > nested.
    if (entry.backend == Backend::kGreedy ||
        (entry.backend == Backend::kGeneral &&
         res.backend == Backend::kNested)) {
      res.backend = entry.backend;
    }
    next.emplace(plan[gi].key, std::move(entry));
  }
  res.active_slots = res.schedule.active_slots();
  if (options_.validate_schedules && !instance_.jobs.empty()) {
    validate_schedule(instance_, res.schedule);
  }
  cache_ = std::move(next);
  result_ = std::move(res);
  solved_ = true;
}

SolverSession::GroupSolve SolverSession::solve_group(
    const std::vector<int>& members, const GroupSolve* hint) {
  GroupSolve out;
  out.jobs.reserve(members.size());
  for (int m : members) {
    out.jobs.push_back(instance_.jobs[static_cast<std::size_t>(m)]);
  }
  out.window = union_window(out.jobs);

  Instance sub;
  sub.g = instance_.g;
  sub.jobs = out.jobs;

  if (!sub.is_laminar()) {
    // Crossing windows: dispatch this group to the general 2-approx
    // backend. No basis is exported (the time-indexed LP's variables do
    // not map onto the strong LP's), so a later re-solve of this group
    // starts cold — mapping is a performance channel, never a
    // correctness one, and the content cache still dedupes repeats.
    ++stats_.oracle_builds;
    GeneralSolverOptions general;
    general.cancel = options_.cancel;
    const GeneralSolveResult res = solve_general(sub, general);
    out.backend = res.lp_failed ? Backend::kGreedy : Backend::kGeneral;
    out.lp_value = res.lp_value;
    out.repairs = res.repairs;
    out.active_slots = res.active_slots;
    out.slots = res.schedule.assignment;
    return out;
  }

  LaminarForest forest = LaminarForest::build(sub);
  forest.canonicalize();

  FeasibilityOracle oracle(forest);
  oracle.set_cancel(options_.cancel);
  ++stats_.oracle_builds;
  std::vector<Time> full(static_cast<std::size_t>(forest.num_nodes()));
  for (int i = 0; i < forest.num_nodes(); ++i) {
    full[static_cast<std::size_t>(i)] = forest.node(i).length();
  }
  NAT_CHECK_MSG(oracle.feasible(full), "instance is infeasible");

  StrongLp lp = build_strong_lp(forest, options_.lp);
  out.var_keys = variable_keys(forest, lp);

  lp::SolveOptions lp_options;
  lp_options.cancel = options_.cancel;
  lp::WarmOptions warm;
  warm.canonical = true;
  warm.export_basis = &out.basis;
  lp::Basis mapped;
  if (hint != nullptr && !hint->basis.empty() &&
      hint->var_keys.size() == hint->basis.variables.size()) {
    std::unordered_map<std::string_view, lp::VarStatus> old_status;
    old_status.reserve(hint->var_keys.size());
    for (std::size_t v = 0; v < hint->var_keys.size(); ++v) {
      old_status.emplace(hint->var_keys[v], hint->basis.variables[v]);
    }
    mapped.variables.assign(out.var_keys.size(), lp::VarStatus::kAtLower);
    for (std::size_t v = 0; v < out.var_keys.size(); ++v) {
      auto it = old_status.find(out.var_keys[v]);
      if (it != old_status.end()) mapped.variables[v] = it->second;
    }
    warm.warm = &mapped;
  }
  lp::SparseStats lp_stats;
  lp::Solution sol =
      lp::solve_sparse_warm(lp.model, lp_options, warm, &lp_stats);
  NAT_CHECK_MSG(sol.status == lp::Status::kOptimal,
                "strong LP did not solve: " << lp::to_string(sol.status));
  stats_.lp_warm_hits += lp_stats.warm_hit;
  stats_.lp_warm_repairs += lp_stats.warm_repair;
  stats_.lp_cold_fallbacks += lp_stats.cold_fallback;
  out.lp_value = sol.objective;

  FractionalSolution frac = unpack(lp, sol);
  push_down_transform(forest, lp, frac);
  const std::vector<int> topmost = topmost_positive(forest, frac.x);
  RoundingResult rounded = round_solution(forest, frac.x, topmost);
  std::vector<Time> counts = std::move(rounded.x_tilde);
  out.repairs = repair_open_counts(forest, oracle, counts);

  auto schedule = schedule_with_counts(forest, counts);
  NAT_CHECK_MSG(schedule.has_value(), "post-repair extraction failed");
  out.active_slots = schedule->active_slots();
  out.slots = std::move(schedule->assignment);
  return out;
}

}  // namespace nat::at
