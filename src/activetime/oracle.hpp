// Incremental region-level feasibility oracle (warm-started Lemma 4.1).
//
// feasibility.cpp's feasible_with_counts() rebuilds the region network
// and solves max-flow from zero on every call. The solver's repair and
// trim loops, the branch-and-bound baseline, and the OPT_i separation
// probes of the strong LP all ask long *sequences* of such queries
// whose open-count vectors differ in a handful of entries. This oracle
// builds the network once, keeps the flow of the previous answer, and
// turns each query into a capacity diff plus a warm-started Dinic
// augmentation: a +1 on one region is a single augmentation attempt, a
// -1 cancels at most the stranded units (flow/dinic.hpp
// set_capacity()). Feasibility is a value test — the retained flow is
// maximal after every public call, so `flow == total volume` answers
// the query exactly as a fresh solve would.
//
// The oracle can also be scoped to one subtree (opt_bounds.cpp's
// OPT_i <= 2 separation): only the subtree's jobs and regions enter
// the network, and queries still take full-length vectors (entries
// outside the scope are ignored).
//
// Warm-start invariants and the cancellation argument are documented
// in docs/PERFORMANCE.md; at.oracle.* counters expose the reuse rate.
#pragma once

#include <cstdint>
#include <vector>

#include "activetime/tree.hpp"
#include "flow/dinic.hpp"
#include "util/cancel.hpp"

namespace nat::at {

class FeasibilityOracle {
 public:
  /// Builds the region network for `forest`, scoped to subtree(`root`)
  /// (jobs and regions), or to the whole forest when root < 0. All
  /// regions start closed (open count 0).
  explicit FeasibilityOracle(const LaminarForest& forest, int root = -1);

  /// True iff the scoped jobs fit when region i has open[i] open
  /// slots. `open` is indexed by forest node id (full length);
  /// entries outside the scope are ignored. Diffs against the
  /// previously queried vector and augments the retained flow.
  bool feasible(const std::vector<Time>& open);

  /// Probe: would the last queried vector become feasible with one
  /// more open slot in region `i`? Leaves the oracle's state (current
  /// vector, retained flow) unchanged. Requires i in scope with
  /// open[i] < L(i).
  bool feasible_if_incremented(int i);

  /// After a feasible() that returned false: necessary condition for a
  /// +1 on region `i` to be able to restore feasibility, read off the
  /// min cut of the retained maximal flow. If this returns false, the
  /// increment provably cannot help (the certified cut's capacity does
  /// not grow); if true, it might — probe to find out. Regions outside
  /// the scope always return false.
  bool increment_can_help(int i);

  /// Unrouted volume under the last queried vector (0 iff feasible).
  std::int64_t deficit() const { return volume_ - graph_.flow_value(); }

  /// Total processing volume of the scoped jobs.
  std::int64_t volume() const { return volume_; }

  /// The open-count vector of the last feasible() call (all zeros
  /// before the first).
  const std::vector<Time>& current_open() const { return open_; }

  const LaminarForest& forest() const { return forest_; }

  /// Cooperative cancellation: `token` (owned by the caller, may be
  /// nullptr) is polled at every public query, so long repair / trim /
  /// branch-and-bound query sequences abort at the next query once the
  /// token fires. The oracle may be left mid-sequence but structurally
  /// intact; callers abandon it after a cancellation.
  void set_cancel(const util::CancelToken* token) { cancel_ = token; }

 private:
  /// Retunes region i's sink edge and job arcs to `value` open slots;
  /// returns the flow cancelled by stranding decreases.
  std::int64_t apply_region(int i, Time value);
  /// Augments to maximality; updates counters.
  void augment();
  const std::vector<bool>& cut_source_side();

  const LaminarForest& forest_;
  flow::MaxFlowGraph graph_;
  int s_ = 0, t_ = 0;
  std::int64_t volume_ = 0;

  std::vector<int> scope_;         // forest node ids in scope (preorder)
  std::vector<int> region_node_;   // forest node id -> graph node, -1 out
  std::vector<int> sink_edge_;     // forest node id -> region→t edge, -1
  // forest node id -> (job graph node, job→region edge id) arcs.
  std::vector<std::vector<std::pair<int, int>>> region_arcs_;

  std::vector<Time> open_;         // last queried vector (full length)
  bool queried_ = false;           // becomes true at the first feasible()
  bool cut_dirty_ = true;
  std::vector<bool> cut_side_;     // cached min-cut source side
  const util::CancelToken* cancel_ = nullptr;
};

}  // namespace nat::at
