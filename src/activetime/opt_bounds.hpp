// Decision procedures for the LP's ceiling constraints (7)/(8):
// "OPT_i >= 2" and "OPT_i >= 3", where OPT_i is the minimum number of
// open slots needed to schedule all jobs of Des(i) (inside K(i)).
//
// The paper notes both checks "can be done easily"; concretely:
//  * OPT_i <= 1 iff all jobs under i are unit, there are at most g of
//    them, and the job-bearing nodes form a chain (so all windows share
//    the innermost interval, where the single slot goes);
//  * OPT_i <= 2 is decided by enumerating placements of two slots over
//    the exclusive regions of Des(i) — slots within one region are
//    interchangeable — and testing each with the region flow oracle.
#pragma once

#include <cstddef>
#include <vector>

#include "activetime/tree.hpp"

namespace nat::util {
class ThreadPool;
}  // namespace nat::util

namespace nat::at {

bool opt_le_1(const LaminarForest& forest, int node);
bool opt_le_2(const LaminarForest& forest, int node);

/// Lower bound on OPT_i implied by the two tests: 1, 2, or 3.
/// (Every subtree holds at least one job, so OPT_i >= 1 always.)
int opt_lower_bound(const LaminarForest& forest, int node);

/// Forests below this node count run the ceiling sweep serially: the
/// per-node bound is microseconds on small subtrees, so pool dispatch
/// costs more than it saves (measured in bench_oracle's sweep cells).
inline constexpr int kCeilingSweepSerialCutoff = 96;

/// Minimum nodes per pooled sweep chunk.
inline constexpr std::size_t kCeilingSweepMinGrain = 8;

/// opt_lower_bound for every node, fanned out across the global pool.
///
/// Deterministic: the result is the same vector for every worker count
/// (work is partitioned by node index; each chunk writes a disjoint
/// slice). Falls back to a plain serial loop when the forest is small
/// (< kCeilingSweepSerialCutoff), the pool has a single worker (on a
/// single-core machine the global pool always does), or the caller is
/// itself a pool worker — in all those regimes the pooled path only
/// adds dispatch and cache-line contention overhead.
///
/// Chunks are sized adaptively (about four per worker, at least
/// kCeilingSweepMinGrain nodes) and each chunk accumulates into a
/// chunk-local arena before one write-back into its slice, so workers
/// never interleave stores on shared cache lines mid-sweep.
std::vector<int> ceiling_lower_bounds(const LaminarForest& forest);

/// Same sweep on an explicit pool (benchmarks and worker-count tests).
std::vector<int> ceiling_lower_bounds(const LaminarForest& forest,
                                      util::ThreadPool& pool);

}  // namespace nat::at
