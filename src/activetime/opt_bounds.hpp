// Decision procedures for the LP's ceiling constraints (7)/(8):
// "OPT_i >= 2" and "OPT_i >= 3", where OPT_i is the minimum number of
// open slots needed to schedule all jobs of Des(i) (inside K(i)).
//
// The paper notes both checks "can be done easily"; concretely:
//  * OPT_i <= 1 iff all jobs under i are unit, there are at most g of
//    them, and the job-bearing nodes form a chain (so all windows share
//    the innermost interval, where the single slot goes);
//  * OPT_i <= 2 is decided by enumerating placements of two slots over
//    the exclusive regions of Des(i) — slots within one region are
//    interchangeable — and testing each with the region flow oracle.
#pragma once

#include "activetime/tree.hpp"

namespace nat::at {

bool opt_le_1(const LaminarForest& forest, int node);
bool opt_le_2(const LaminarForest& forest, int node);

/// Lower bound on OPT_i implied by the two tests: 1, 2, or 3.
/// (Every subtree holds at least one job, so OPT_i >= 1 always.)
int opt_lower_bound(const LaminarForest& forest, int node);

}  // namespace nat::at
