#include "activetime/robust.hpp"

#include <algorithm>
#include <vector>

#include "activetime/feasibility.hpp"
#include "activetime/oracle.hpp"
#include "activetime/time_indexed_lp.hpp"
#include "activetime/tree.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace nat::at {

namespace {

/// Lemma 4.1 worst-case feasibility: does the p_hi corner fit with
/// every slot open? Laminar corners ride the warm region-level
/// FeasibilityOracle (every region count at L(i)); general corners use
/// the slot-level network of feasibility.cpp.
bool worst_case_feasible(const Instance& hi,
                         const util::CancelToken* cancel) {
  if (hi.jobs.empty()) return true;
  util::poll_cancel(cancel);
  if (hi.is_laminar()) {
    LaminarForest forest = LaminarForest::build(hi);
    FeasibilityOracle oracle(forest);
    oracle.set_cancel(cancel);
    std::vector<Time> open(static_cast<std::size_t>(forest.num_nodes()));
    for (int i = 0; i < forest.num_nodes(); ++i) {
      open[static_cast<std::size_t>(i)] = forest.node(i).length();
    }
    return oracle.feasible(open);
  }
  const Interval horizon = hi.horizon();
  std::vector<Time> slots;
  slots.reserve(static_cast<std::size_t>(horizon.length()));
  for (Time t = horizon.lo; t < horizon.hi; ++t) slots.push_back(t);
  return feasible_with_slots(hi, slots);
}

/// LP lower bound of a point corner: the strengthened LP when laminar
/// (the bound the 9/5 pipeline is stated against), the natural
/// time-indexed LP otherwise. Both are valid relaxations, so the value
/// is <= OPT(corner).
double corner_lp_value(const Instance& corner, const StrongLpOptions& lp) {
  if (corner.jobs.empty()) return 0.0;
  if (corner.is_laminar()) return strong_lp_value(corner, lp);
  return natural_lp_value(corner);
}

}  // namespace

RobustSolveResult solve_robust(const Instance& instance,
                               const RobustSolverOptions& options) {
  instance.validate();

  ActiveTimeOptions base = options.base;
  if (options.cancel != nullptr) base.cancel = options.cancel;
  const util::CancelToken* cancel = base.cancel;

  RobustSolveResult result;
  if (!instance.has_processing_intervals()) {
    // Point instance: exactly one realization, so the nominal solve is
    // the whole certificate. This path is bit-identical to calling
    // solve_active_time directly (the differential fuzz leg pins it).
    static obs::Counter& c = obs::counter("at.robust.degenerate");
    c.add(1);
    result.degenerate = true;
    result.nominal = solve_active_time(instance, base);
    result.robust_lo = result.nominal.lp_value;
    result.robust_hi = result.nominal.active_slots;
    result.hi_backend = result.nominal.backend;
    return result;
  }

  obs::Span span_total("solve_robust");
  static obs::Counter& c_solves = obs::counter("at.robust.solves");
  c_solves.add(1);

  // Worst-case feasibility first: if the p_hi corner fits with every
  // slot open, every realization in the box fits (feasibility is
  // antitone in each p_j). The message carries "instance is
  // infeasible" so the service layers classify it as such.
  const Instance hi = instance.hi_corner();
  {
    obs::Span span("solve_robust/worst_case_feasibility");
    NAT_CHECK_MSG(worst_case_feasible(hi, cancel),
                  "instance is infeasible at the worst-case (p_hi) corner");
  }

  // Nominal solve. The solvers only ever read `processing`, so passing
  // the interval-carrying instance gives the same schedule as its
  // stripped point version.
  result.nominal = solve_active_time(instance, base);

  // Best-case lower bound: LP(p_lo) <= OPT(p_lo) <= OPT(p) for every
  // realization p in the box (OPT is monotone in each p_j).
  const Instance lo = instance.lo_corner();
  {
    obs::Span span("solve_robust/lo_corner_lp");
    result.robust_lo = corner_lp_value(lo, base.nested.lp);
  }

  // Worst-case upper bound: ALG(p_hi) >= OPT(p_hi) >= OPT(p), so that
  // many slots always suffice. The roundings are not provably monotone
  // in p, so clamp with the nominal cost to keep ALG(p) <= robust_hi
  // exact.
  {
    obs::Span span("solve_robust/hi_corner_solve");
    const ActiveTimeResult hi_result = solve_active_time(hi, base);
    result.hi_backend = hi_result.backend;
    result.robust_hi =
        std::max(hi_result.active_slots, result.nominal.active_slots);
  }

  const verify::VerifyLevel vlevel =
      verify::resolve_level(options.verify_level);
  if (vlevel == verify::VerifyLevel::kFull) {
    obs::Span span("solve_robust/verify_sandwich");
    const std::int64_t lp_terms =
        lo.horizon().length() + lo.num_jobs() + 1;
    verify::require("robust_sandwich",
                    verify::check_robust_sandwich(
                        result.robust_lo, result.nominal.active_slots,
                        result.robust_hi, lp_terms, options.verify_radius));
  }
  return result;
}

}  // namespace nat::at
