// Robust active-time scheduling over interval processing times
// (docs/ROBUST.md).
//
// Jobs may carry an uncertainty box [p_lo, p_hi] around their nominal
// processing time (job.hpp). solve_robust certifies the whole box from
// its two cost corners:
//
//  * worst-case feasibility — the p_hi corner is checked against the
//    all-slots-open Lemma 4.1 flow network before anything else runs
//    (laminar corners ride the warm region-level FeasibilityOracle;
//    general corners use the slot-level network). If the worst corner
//    fits, every realization in the box fits, since feasibility is
//    antitone in every p_j;
//  * best-case lower bound `robust_lo` — the LP relaxation of the p_lo
//    corner (strengthened LP when laminar, natural time-indexed LP
//    otherwise). LP(p_lo) <= OPT(p_lo) <= OPT(p) for every realization
//    p in the box, because OPT is monotone in each p_j;
//  * worst-case upper bound `robust_hi` — the algorithmic cost of the
//    p_hi corner, clamped from below by the nominal cost. ALG(p_hi) >=
//    OPT(p_hi) >= OPT(p) for every realization, so `robust_hi` open
//    slots always suffice (the clamp covers the fact that the rounding
//    heuristics are not provably monotone in p).
//
// The verify layer re-certifies the sandwich
// LP(p_lo) <= ALG(p) <= robust_hi in rational arithmetic at kFull
// (verify::check_robust_sandwich). Point instances (no intervals) take
// a degenerate path that is bit-identical to solve_active_time.
#pragma once

#include <cstdint>

#include "activetime/instance.hpp"
#include "activetime/solver.hpp"
#include "util/cancel.hpp"
#include "verify/verify.hpp"

namespace nat::at {

struct RobustSolverOptions {
  // Options forwarded to the nominal and hi-corner solves.
  ActiveTimeOptions base;
  // Exact-arithmetic certificate level for the sandwich.
  verify::VerifyLevel verify_level = verify::VerifyLevel::kDefault;
  double verify_radius = verify::kDefaultRadius;
  // Convenience: when set, overrides the cancel token of every phase.
  const util::CancelToken* cancel = nullptr;
};

struct RobustSolveResult {
  // The nominal solve — identical to solve_active_time(instance).
  ActiveTimeResult nominal;
  // Best-case LP lower bound: LP(p_lo) <= OPT(p) for every realization.
  double robust_lo = 0.0;
  // Worst-case upper bound: max(ALG(p), ALG(p_hi)) slots always
  // suffice. Equals the nominal cost on point instances.
  std::int64_t robust_hi = 0;
  // Backend that solved the p_hi corner (== nominal.backend when
  // degenerate).
  Backend hi_backend = Backend::kNested;
  // True when the instance carries no uncertainty intervals and the
  // degenerate (pure point) path ran.
  bool degenerate = false;
};

/// Solves the nominal instance and certifies the uncertainty box.
/// Throws util::CheckError "instance is infeasible" when the worst-case
/// (p_hi) corner does not fit with every slot open.
RobustSolveResult solve_robust(const Instance& instance,
                               const RobustSolverOptions& options = {});

}  // namespace nat::at
