// Lemma 3.1: push-down transformation of a fractional LP solution.
//
// Rewrites (x, y) — preserving LP feasibility and the objective — so
// that whenever a strict descendant i2 of i1 is not fully open
// (x(i2) < L(i2)), the ancestor carries nothing (x(i1) = 0). Open mass
// moves downward together with a proportional share of each job
// assignment, exactly as in the lemma's proof.
//
// Implementation: one post-order pass; each node pushes its mass into
// the non-full regions of its subtree, deepest candidates first. When a
// node finishes, either it is empty or its strict subtree is fully
// open, which is precisely the lemma's fixed point (see the proof
// sketch in DESIGN.md §3).
//
// Also defines the "topmost positive set" I of Section 3.2 and the
// Claim 1 property checks used by the test suite.
#pragma once

#include <vector>

#include "activetime/lp_relaxation.hpp"
#include "activetime/tree.hpp"

namespace nat::at {

/// Comparison slack for fractional slot masses (LP solved in doubles).
inline constexpr double kFracEps = 1e-6;

/// Applies the Lemma 3.1 transform in place.
void push_down_transform(const LaminarForest& forest, const StrongLp& lp,
                         FractionalSolution& sol);

/// The set I: nodes with x(i) > eps all of whose strict ancestors have
/// x ≈ 0. Sorted ascending by node id.
std::vector<int> topmost_positive(const LaminarForest& forest,
                                  const std::vector<double>& x,
                                  double eps = kFracEps);

/// Verifies properties (1a)–(1e) of Claim 1 for a transformed solution;
/// returns an empty string when all hold, else a description.
std::string check_claim1(const LaminarForest& forest,
                         const std::vector<double>& x,
                         const std::vector<int>& topmost,
                         double eps = kFracEps);

}  // namespace nat::at
