// Executable versions of the paper's feasibility characterization
// (Section 4.1):
//
//   Lemma 4.1: an integral open-count vector x~ schedules all jobs iff
//   for every job subset J',
//       Σ_i min(|J'(Anc(i))|, g) * x~(i)  >=  p(J').          (9)
//
//   Lemma 4.3: it suffices to check subsets J' in which every job
//   individually overflows its cheap regions:
//       p_j > x~({i ∈ Des(k(j)) : |J'(Anc(i))| <= g})  for all j ∈ J'.
//
// These are analysis tools: the production feasibility oracle is the
// max-flow test (activetime/feasibility.*); this module exposes the
// combinatorial side so the test suite can certify the equivalence on
// exhaustive subset sweeps, and so infeasibility comes with a witness.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "activetime/tree.hpp"

namespace nat::at {

/// Left-hand side of (9) for the given job subset (indices into
/// forest.jobs()).
std::int64_t lemma41_lhs(const LaminarForest& forest,
                         const std::vector<Time>& counts,
                         const std::vector<int>& job_subset);

/// Total processing volume of the subset — the right-hand side of (9).
std::int64_t lemma41_rhs(const LaminarForest& forest,
                         const std::vector<int>& job_subset);

/// Exhaustively searches all 2^n job subsets for a violator of (9);
/// returns one (smallest first in enumeration order) or nullopt when
/// the condition holds everywhere. Requires n <= 20.
std::optional<std::vector<int>> find_violating_subset(
    const LaminarForest& forest, const std::vector<Time>& counts);

/// x~({i ∈ Des(k(j)) : |J'(Anc(i))| <= g}) — the "cheap capacity" job j
/// sees under the subset. Lemma 4.3 prunes jobs with p_j <= this.
std::int64_t lemma43_cheap_capacity(const LaminarForest& forest,
                                    const std::vector<Time>& counts,
                                    const std::vector<int>& job_subset,
                                    int job);

/// True iff the subset satisfies the Lemma 4.3 minimality property
/// (every member job overflows the regions where the subset is small).
bool satisfies_lemma43_property(const LaminarForest& forest,
                                const std::vector<Time>& counts,
                                const std::vector<int>& job_subset);

}  // namespace nat::at
