// Algorithm 2: construction of C1/C2 triples.
//
// This is *analysis* machinery — the paper uses it only to prove the
// rounded vector feasible (Section 4) — but building it executably
// lets the test suite check the structural lemmas on real LP runs:
//   * node classification: type-B when x(Des(i)) ∈ {1} ∪ [4/3, ∞),
//     type-C when x(Des(i)) ∈ (1, 4/3), subdivided into C1/C2 by the
//     rounded subtree total x̃(Des(i)) ∈ {1, 2};
//   * Lemma 4.7: with ≤2 type-C nodes and ≥1 type-B, every C is C2;
//   * Lemma 4.9: the pairing never runs out of unused C2 nodes;
//   * Lemma 4.11: each triple is either two C2s under the C1's parent,
//     or a C1C2 brother pair plus a C2 under the grandparent.
#pragma once

#include <array>
#include <vector>

#include "activetime/tree.hpp"

namespace nat::at {

enum class NodeType { kNotInI, kB, kC1, kC2 };

struct TripleAnalysis {
  std::vector<NodeType> type;                 // per tree node
  std::vector<std::array<int, 3>> triples;    // (C1, C2, C2)
  bool ran_out_of_c2 = false;                 // Lemma 4.9 would be violated
  int num_b = 0, num_c1 = 0, num_c2 = 0;
};

/// Classifies the topmost nodes and runs Algorithm 2 on a transformed
/// + rounded solution.
TripleAnalysis build_triples(const LaminarForest& forest,
                             const std::vector<double>& x,
                             const std::vector<Time>& x_tilde,
                             const std::vector<int>& topmost);

}  // namespace nat::at
