#include "activetime/time_indexed_lp.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "lp/backend.hpp"
#include "util/check.hpp"

namespace nat::at {

std::int64_t forced_volume(const Job& job, const Interval& interval) {
  const Interval w = job.window();
  const Time inter_lo = std::max(w.lo, interval.lo);
  const Time inter_hi = std::min(w.hi, interval.hi);
  const Time inside = std::max<Time>(0, inter_hi - inter_lo);
  const Time outside = w.length() - inside;
  return std::max<std::int64_t>(0, job.processing - outside);
}

TimeIndexedLp build_time_indexed_lp(const Instance& instance,
                                    CeilingIntervals intervals) {
  instance.validate();
  TimeIndexedLp out;
  const Interval horizon = instance.horizon();
  for (Time t = horizon.lo; t < horizon.hi; ++t) out.slots.push_back(t);
  const int T = static_cast<int>(out.slots.size());

  // x(t) in [0, 1].
  out.x_var.resize(T);
  for (int k = 0; k < T; ++k) {
    std::ostringstream name;
    name << "x_t" << out.slots[k];
    out.x_var[k] = out.model.add_variable(name.str(), 0.0, 1.0, 1.0);
  }

  // Symmetric job classes by (window, processing).
  struct Cls {
    Job job;
    int count = 0;
  };
  std::map<std::tuple<Time, Time, std::int64_t>, Cls> classes;
  for (const Job& job : instance.jobs) {
    auto& c = classes[{job.release, job.deadline, job.processing}];
    c.job = job;
    ++c.count;
  }

  std::vector<std::vector<std::pair<int, double>>> capacity(T);
  int cls_id = 0;
  for (const auto& [key, cls] : classes) {
    (void)key;
    TimeIndexedClass out_cls;
    out_cls.job = cls.job;
    out_cls.count = cls.count;
    std::vector<std::pair<int, double>> coverage;
    for (int k = 0; k < T; ++k) {
      if (!cls.job.window().contains(out.slots[k])) continue;
      std::ostringstream name;
      name << "y_t" << out.slots[k] << "_c" << cls_id;
      int v = out.model.add_variable(name.str(), 0.0, lp::kInf, 0.0);
      out_cls.y_vars.push_back({k, v});
      coverage.push_back({v, 1.0});
      capacity[k].push_back({v, 1.0});
      // y(t, j) <= x(t), aggregated over the class.
      out.model.add_row(
          lp::Sense::kLe, 0.0,
          {{v, 1.0}, {out.x_var[k], -static_cast<double>(cls.count)}});
    }
    out.model.add_row(lp::Sense::kGe,
                      static_cast<double>(cls.count) *
                          static_cast<double>(cls.job.processing),
                      std::move(coverage));
    out.classes.push_back(std::move(out_cls));
    ++cls_id;
  }
  for (int k = 0; k < T; ++k) {
    if (capacity[k].empty()) continue;
    auto row = capacity[k];
    row.push_back({out.x_var[k], -static_cast<double>(instance.g)});
    out.model.add_row(lp::Sense::kLe, 0.0, std::move(row));
  }

  if (intervals == CeilingIntervals::kNone) return out;

  // Ceiling rows over the chosen interval family.
  std::vector<Time> endpoints;
  if (intervals == CeilingIntervals::kAll) {
    for (Time t = horizon.lo; t <= horizon.hi; ++t) endpoints.push_back(t);
  } else {
    for (const Job& job : instance.jobs) {
      endpoints.push_back(job.release);
      endpoints.push_back(job.deadline);
    }
    std::sort(endpoints.begin(), endpoints.end());
    endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                    endpoints.end());
  }
  for (std::size_t a = 0; a < endpoints.size(); ++a) {
    for (std::size_t b = a + 1; b < endpoints.size(); ++b) {
      const Interval iv{endpoints[a], endpoints[b]};
      std::int64_t forced = 0;
      for (const Job& job : instance.jobs) forced += forced_volume(job, iv);
      if (forced == 0) continue;
      const std::int64_t rhs = (forced + instance.g - 1) / instance.g;
      std::vector<std::pair<int, double>> row;
      for (int k = 0; k < static_cast<int>(out.slots.size()); ++k) {
        if (iv.contains(out.slots[k])) row.push_back({out.x_var[k], 1.0});
      }
      out.model.add_row(lp::Sense::kGe, static_cast<double>(rhs),
                        std::move(row));
      ++out.num_ceiling_rows;
    }
  }
  return out;
}

double natural_lp_value(const Instance& instance) {
  TimeIndexedLp lp = build_time_indexed_lp(instance, CeilingIntervals::kNone);
  lp::Solution sol = lp::solve_auto(lp.model);
  NAT_CHECK_MSG(sol.status == lp::Status::kOptimal,
                "natural LP: " << lp::to_string(sol.status));
  return sol.objective;
}

double cw_lp_value(const Instance& instance, CeilingIntervals intervals) {
  TimeIndexedLp lp = build_time_indexed_lp(instance, intervals);
  lp::Solution sol = lp::solve_auto(lp.model);
  NAT_CHECK_MSG(sol.status == lp::Status::kOptimal,
                "CW LP: " << lp::to_string(sol.status));
  return sol.objective;
}

}  // namespace nat::at
