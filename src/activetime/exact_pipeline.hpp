// Fully exact 9/5 pipeline: LP (1) solved by the rational simplex, the
// Lemma 3.1 transform and Algorithm 1 executed in exact rational
// arithmetic. No epsilons anywhere — every comparison in the transform
// and the rounding is an exact sign test, so the Lemma 3.3 budget
// 9x/5 >= x~ + 1 is evaluated precisely and the output is *provably*
// the paper's algorithm, not a floating-point approximation of it.
//
// Intended for certification and for small/medium instances (rational
// simplex cost); the double pipeline (solver.hpp) is the production
// path, and the test suite cross-checks the two.
#pragma once

#include <cstdint>
#include <vector>

#include "activetime/instance.hpp"
#include "activetime/schedule.hpp"
#include "numeric/rational.hpp"
#include "util/cancel.hpp"

namespace nat::at {

struct ExactPipelineOptions {
  // Cooperative cancellation/deadline (util/cancel.hpp): polled at
  // every rational-simplex pivot, at every oracle query, and between
  // pipeline stages. The rational LP dominates the runtime, so a fired
  // token aborts within one exact pivot.
  const util::CancelToken* cancel = nullptr;
};

struct ExactPipelineResult {
  Schedule schedule;
  std::int64_t active_slots = 0;
  num::Rational lp_value;
  std::vector<num::Rational> x_fractional;  // transformed, per node
  std::vector<Time> x_rounded;
  std::vector<int> topmost;
};

/// Runs the exact pipeline. NAT_CHECKs laminarity / feasibility and —
/// since arithmetic is exact — that the rounded vector is feasible
/// outright (Theorem 4.5 holds with no repair loop at all).
ExactPipelineResult solve_nested_exact(
    const Instance& instance, const ExactPipelineOptions& options = {});

}  // namespace nat::at
