#include "activetime/instance.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace nat::at {

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << '[' << iv.lo << ',' << iv.hi << ')';
}

std::ostream& operator<<(std::ostream& os, const Job& job) {
  return os << "job(p=" << job.processing << ", w=" << job.window() << ')';
}

void Instance::validate() const {
  NAT_CHECK_MSG(g >= 1, "instance: g must be >= 1, got " << g);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const Job& job = jobs[j];
    NAT_CHECK_MSG(job.processing >= 1,
                  "job " << j << ": processing must be >= 1");
    NAT_CHECK_MSG(job.deadline >= job.release + job.processing,
                  "job " << j << ": window " << job.window()
                         << " shorter than processing " << job.processing);
    if (job.has_processing_interval()) {
      NAT_CHECK_MSG(job.processing_lo >= 1,
                    "job " << j << ": processing_lo must be >= 1");
      NAT_CHECK_MSG(job.processing_lo <= job.processing &&
                        job.processing <= job.processing_hi,
                    "job " << j << ": processing interval ["
                           << job.processing_lo << "," << job.processing_hi
                           << "] must bracket processing "
                           << job.processing);
      NAT_CHECK_MSG(job.deadline >= job.release + job.processing_hi,
                    "job " << j << ": window " << job.window()
                           << " shorter than worst-case processing "
                           << job.processing_hi);
    }
  }
}

bool Instance::has_processing_intervals() const {
  for (const Job& job : jobs) {
    if (job.has_processing_interval()) return true;
  }
  return false;
}

Instance Instance::lo_corner() const {
  Instance corner;
  corner.g = g;
  corner.jobs = jobs;
  for (Job& job : corner.jobs) {
    if (job.has_processing_interval()) job.processing = job.processing_lo;
    job.processing_lo = 0;
    job.processing_hi = 0;
  }
  return corner;
}

Instance Instance::hi_corner() const {
  Instance corner;
  corner.g = g;
  corner.jobs = jobs;
  for (Job& job : corner.jobs) {
    if (job.has_processing_interval()) job.processing = job.processing_hi;
    job.processing_lo = 0;
    job.processing_hi = 0;
  }
  return corner;
}

Interval Instance::horizon() const {
  if (jobs.empty()) return {};
  Interval h{jobs.front().release, jobs.front().deadline};
  for (const Job& job : jobs) {
    h.lo = std::min(h.lo, job.release);
    h.hi = std::max(h.hi, job.deadline);
  }
  return h;
}

std::int64_t Instance::total_volume() const {
  std::int64_t v = 0;
  for (const Job& job : jobs) v += job.processing;
  return v;
}

bool Instance::is_laminar() const {
  // O(n log n): sweep windows by (lo asc, hi desc) with a stack of the
  // currently-open ancestors. Each window must either start after the
  // innermost open window ends (disjoint — pop it) or nest inside it;
  // a partial overlap fails. Equal windows nest, matching the pairwise
  // definition (disjoint / a ⊆ b / b ⊆ a).
  std::vector<Interval> windows;
  windows.reserve(jobs.size());
  for (const Job& job : jobs) windows.push_back(job.window());
  std::sort(windows.begin(), windows.end(), [](const Interval& a,
                                               const Interval& b) {
    return a.lo != b.lo ? a.lo < b.lo : a.hi > b.hi;
  });
  std::vector<Interval> open;
  for (const Interval& w : windows) {
    while (!open.empty() && open.back().hi <= w.lo) open.pop_back();
    if (!open.empty() && w.hi > open.back().hi) return false;
    open.push_back(w);
  }
  return true;
}

std::int64_t Instance::volume_lower_bound() const {
  return (total_volume() + g - 1) / g;
}

std::string summary(const Instance& instance) {
  std::ostringstream os;
  os << "n=" << instance.num_jobs() << " g=" << instance.g << " horizon="
     << instance.horizon() << " volume=" << instance.total_volume();
  return os.str();
}

}  // namespace nat::at
