// Active-time problem instance: jobs plus the per-slot parallelism g.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "activetime/job.hpp"

namespace nat::at {

struct Instance {
  std::int64_t g = 1;      // jobs schedulable per active slot
  std::vector<Job> jobs;

  int num_jobs() const { return static_cast<int>(jobs.size()); }

  /// Throws util::CheckError when malformed (g < 1, p < 1, a window
  /// shorter than its job's processing time, or an uncertainty
  /// interval violating 1 <= p_lo <= p <= p_hi <= window length).
  void validate() const;

  /// True when any job carries a [p_lo, p_hi] uncertainty interval
  /// (docs/ROBUST.md). Point instances — the common case — return
  /// false and never touch the robust machinery.
  bool has_processing_intervals() const;

  /// The best-case corner: every interval job at p = p_lo, point jobs
  /// unchanged. Intervals are stripped so the corner is a point
  /// instance the solvers accept as-is.
  Instance lo_corner() const;

  /// The worst-case corner: every interval job at p = p_hi.
  Instance hi_corner() const;

  /// [min release, max deadline); empty interval when there are no jobs.
  Interval horizon() const;

  /// Total processing volume of all jobs.
  std::int64_t total_volume() const;

  /// True iff every pair of job windows is nested or disjoint.
  bool is_laminar() const;

  /// ceil(total volume / g): trivial lower bound on active slots.
  std::int64_t volume_lower_bound() const;
};

/// Returns a human-readable one-line summary ("n=5 g=2 horizon=[0,10)").
std::string summary(const Instance& instance);

}  // namespace nat::at
