#include "activetime/exact_pipeline.hpp"

#include <algorithm>

#include "activetime/feasibility.hpp"
#include "activetime/lp_relaxation.hpp"
#include "activetime/oracle.hpp"
#include "activetime/tree.hpp"
#include "lp/exact_simplex.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "verify/verify.hpp"

namespace nat::at {

namespace {

using num::Rational;

/// Exact Lemma 3.1 transform (same structure as the double version in
/// lp_transform.cpp, with exact sign tests; y is not tracked — the
/// rounding only consumes x, and feasibility is re-proved by flow).
///
/// Single postorder pass. Each processed subtree keeps an intrusive
/// linked list of its nodes with spare capacity (x < L), ordered
/// descendant-before-ancestor — the only order Lemma 3.1 needs:
/// consuming the list front-first fills every spare descendant of a
/// node before the node itself, so a positive node can never end up
/// above a non-full one; nodes in different branches are incomparable
/// and may be filled in any order. At node i the children's lists are
/// concatenated in O(#children) and positive mass at i is poured into
/// the list front-first, dropping each candidate as it fills. A
/// dropped candidate never comes back, so the transform is
/// O(n + moves) = O(n), replacing the per-node rebuild-and-sort of the
/// full descendant set that was quadratic on deep forests.
void exact_push_down(const LaminarForest& forest,
                     std::vector<Rational>& x) {
  const int m = forest.num_nodes();
  std::vector<int> next(m, -1), head(m, -1), tail(m, -1);
  for (int i : forest.postorder()) {
    // Children precede i in postorder, so their lists are final.
    int h = -1, t = -1;
    for (int c : forest.node(i).children) {
      if (head[c] < 0) continue;
      if (h < 0) {
        h = head[c];
      } else {
        next[t] = head[c];
      }
      t = tail[c];
    }
    while (x[i].sign() > 0 && h >= 0) {
      const int d = h;
      const Rational spare = Rational(forest.node(d).length()) - x[d];
      NAT_DCHECK(spare.sign() > 0);
      const Rational theta = std::min(spare, x[i]);
      x[d] += theta;
      x[i] -= theta;
      if (theta == spare) h = next[d];  // d is full: drop it for good
    }
    if (h < 0) t = -1;
    // i itself becomes a candidate for its ancestors; it is an
    // ancestor of everything in its list, so it goes last.
    if (Rational(forest.node(i).length()) - x[i] > Rational(0)) {
      if (h < 0) {
        h = i;
      } else {
        next[t] = i;
      }
      t = i;
      next[i] = -1;
    }
    head[i] = h;
    tail[i] = t;
  }
}

std::vector<int> exact_topmost(const LaminarForest& forest,
                               const std::vector<Rational>& x) {
  std::vector<int> out;
  for (int i = 0; i < forest.num_nodes(); ++i) {
    if (x[i].sign() <= 0) continue;
    bool top = true;
    for (int a = forest.node(i).parent; a >= 0; a = forest.node(a).parent) {
      if (x[a].sign() > 0) {
        top = false;
        break;
      }
    }
    if (top) out.push_back(i);
  }
  return out;
}

/// Exact Algorithm 1.
std::vector<Time> exact_round(const LaminarForest& forest,
                              const std::vector<Rational>& x,
                              const std::vector<int>& topmost) {
  const int m = forest.num_nodes();
  std::vector<Time> xt(m, 0);
  std::vector<bool> in_topmost(m, false);
  for (int i : topmost) in_topmost[i] = true;
  for (int i = 0; i < m; ++i) {
    if (in_topmost[i]) {
      xt[i] = x[i].floor().to_int64();
    } else {
      NAT_CHECK_MSG(x[i].is_integer(),
                    "exact pipeline: node outside I is fractional");
      xt[i] = x[i].num().to_int64();
    }
  }

  std::vector<int> anc;
  {
    std::vector<bool> seen(m, false);
    for (int i : topmost) {
      for (int a = i; a >= 0; a = forest.node(a).parent) {
        if (seen[a]) break;
        seen[a] = true;
        anc.push_back(a);
      }
    }
    std::sort(anc.begin(), anc.end(), [&](int a, int b) {
      return forest.depth(a) > forest.depth(b);
    });
  }

  const Rational nine_fifths = Rational::from_int64(9, 5);
  for (int i : anc) {
    const std::vector<int> des = forest.subtree(i);
    Rational frac_sum;
    std::int64_t rounded_sum = 0;
    std::vector<int> flooreds;
    for (int d : des) {
      frac_sum += x[d];
      rounded_sum += xt[d];
      if (Rational(xt[d]) < x[d]) flooreds.push_back(d);
    }
    // Exact while-condition of Algorithm 1: 9x/5 >= x~ + 1.
    while (!flooreds.empty() &&
           nine_fifths * frac_sum >= Rational(rounded_sum + 1)) {
      const int d = flooreds.back();
      flooreds.pop_back();
      const std::int64_t up = x[d].ceil().to_int64();
      rounded_sum += up - xt[d];
      xt[d] = up;
    }
  }
  return xt;
}

}  // namespace

ExactPipelineResult solve_nested_exact(const Instance& instance,
                                       const ExactPipelineOptions& options) {
  ExactPipelineResult result;
  if (instance.jobs.empty()) return result;

  obs::Span span_total("solve_nested_exact");

  LaminarForest forest = [&] {
    obs::Span span("solve_nested_exact/tree_build");
    LaminarForest f = LaminarForest::build(instance);
    f.canonicalize();
    return f;
  }();
  {
    FeasibilityOracle oracle(forest);
    oracle.set_cancel(options.cancel);
    std::vector<Time> full(forest.num_nodes());
    for (int i = 0; i < forest.num_nodes(); ++i) {
      full[i] = forest.node(i).length();
    }
    NAT_CHECK_MSG(oracle.feasible(full), "instance is infeasible");
  }

  StrongLp lp = [&] {
    obs::Span span("solve_nested_exact/lp_build");
    return build_strong_lp(forest);
  }();
  lp::ExactSolution sol = [&] {
    obs::Span span("solve_nested_exact/lp_solve");
    return lp::solve_exact(lp.model, options.cancel);
  }();
  NAT_CHECK_MSG(sol.status == lp::Status::kOptimal,
                "exact LP did not solve: " << lp::to_string(sol.status));
  result.lp_value = sol.objective;

  std::vector<Rational> x(forest.num_nodes());
  for (int i = 0; i < forest.num_nodes(); ++i) {
    x[i] = sol.x[lp.x_var[i]];
    NAT_CHECK_MSG(x[i].sign() >= 0 &&
                      x[i] <= Rational(forest.node(i).length()),
                  "exact LP variable out of bounds at node " << i);
  }

  util::poll_cancel(options.cancel);
  {
    obs::Span span("solve_nested_exact/push_down");
    exact_push_down(forest, x);
  }
  // Certify the Lemma 3.1 fixed point exactly.
  for (int i = 0; i < forest.num_nodes(); ++i) {
    if (x[i].sign() <= 0) continue;
    for (int d : forest.subtree(i)) {
      if (d == i) continue;
      NAT_CHECK_MSG(x[d] == Rational(forest.node(d).length()),
                    "exact transform missed the fixed point");
    }
  }
  result.x_fractional = x;
  result.topmost = exact_topmost(forest, x);
  {
    obs::Span span("solve_nested_exact/rounding");
    result.x_rounded = exact_round(forest, x, result.topmost);
  }
  // Claim 1, floor/ceil membership, and the Lemma 3.3 per-root 9/5
  // budget — certified with zero tolerance.
  verify::require("exact_rounding",
                  verify::check_rounding_exact(forest, x, result.x_rounded,
                                               result.topmost));

  // Theorem 4.5: no repairs permitted in exact arithmetic.
  obs::Span span_extract("solve_nested_exact/extract");
  auto schedule = schedule_with_counts(forest, result.x_rounded);
  NAT_CHECK_MSG(schedule.has_value(),
                "exact rounding produced an infeasible vector — this "
                "would contradict Theorem 4.5");
  result.schedule = std::move(*schedule);
  validate_schedule(instance, result.schedule);
  result.active_slots = result.schedule.active_slots();

  // Final schedule in integer arithmetic: coverage, windows, per-slot
  // load <= g, and the active count stays within the opened budget.
  std::int64_t rounded_total = 0;
  for (Time t : result.x_rounded) rounded_total += t;
  verify::require("exact_schedule",
                  verify::check_schedule(instance, result.schedule,
                                         result.active_slots,
                                         rounded_total));
  return result;
}

}  // namespace nat::at
